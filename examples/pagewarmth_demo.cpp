// Tiered-memory page placement demo (§7.2): page access histories are
// classified hot/cold through the Kleio high-level API (the LSTM runs
// in lakeD's TensorFlow-like runtime on the GPU) and the resulting
// placement is scored against the history-based baseline and the
// clairvoyant oracle.

#include <cstdio>
#include <vector>

#include "core/lake.h"
#include "mem/pagewarmth.h"
#include "ml/backends.h"
#include "ml/lstm_train.h"

using namespace lake;

int
main()
{
    core::Lake lake;
    Rng rng(99);

    // A population of pages with latent behaviours (steady-hot, cold,
    // periodic, drifting) observed for 32 scheduling intervals.
    const std::size_t kPages = 2000;
    ml::LstmConfig cfg = ml::LstmConfig::kleio();
    auto pages = mem::generatePageHistories(kPages, cfg.seq_len, rng);

    // Train the model offline (user space), as Kleio does; a smaller
    // hidden width keeps the demo quick.
    cfg.hidden = 16;
    ml::Lstm model(cfg, rng);
    {
        auto train_pages =
            mem::generatePageHistories(2500, cfg.seq_len, rng);
        std::vector<ml::LstmSample> train;
        for (const auto &p : train_pages) {
            ml::LstmSample s;
            for (float c : p.counts)
                s.seq.push_back(c / 40.0f);
            s.label = p.next_count >= mem::kHotThreshold ? 1 : 0;
            train.push_back(std::move(s));
        }
        ml::LstmTrainConfig tc;
        tc.epochs = 10;
        tc.batch = 32;
        tc.lr = 0.1f;
        double loss = ml::trainLstm(model, train, tc, rng);
        std::printf("trained Kleio LSTM offline: %zu params, final "
                    "loss %.3f\n", model.paramCount(), loss);
    }

    // Kernel side calls one high-level API; lakeD owns the model.
    ml::KleioService kleio(lake.daemon(), model);

    std::vector<float> batch = mem::toLstmBatch(pages, cfg.seq_len);
    Nanos t0 = lake.clock().now();
    std::vector<int> lstm_hot = kleio.classify(lake.lib(), batch, kPages);
    std::printf("kleio.infer over %zu pages took %.1f ms of virtual "
                "time (one high-level RPC)\n\n",
                kPages, toMs(lake.clock().now() - t0));

    // Score three placements against the oracle.
    mem::TierSpec tiers;
    std::vector<float> lstm_scores(kPages), hist_scores(kPages),
        random_scores(kPages);
    for (std::size_t p = 0; p < kPages; ++p) {
        // The binary LSTM verdict ranks first; the recent-history EWMA
        // breaks ties among predicted-hot (and predicted-cold) pages so
        // the capacity cutoff stays meaningful.
        double ewma = 0.0;
        for (float c : pages[p].counts)
            ewma = 0.6 * ewma + 0.4 * c;
        hist_scores[p] = static_cast<float>(ewma);
        lstm_scores[p] = static_cast<float>(lstm_hot[p]) * 1000.0f +
                         static_cast<float>(ewma);
        random_scores[p] = static_cast<float>(rng.uniform01());
    }

    std::printf("%-22s %16s %18s\n", "placement", "avg access (ns)",
                "slowdown vs oracle");
    auto report = [&](const char *name, const std::vector<float> &s) {
        auto outcome = mem::scorePlacement(pages, s, tiers);
        std::printf("%-22s %16.1f %17.2fx\n", name,
                    outcome.avg_access_ns, outcome.slowdown_vs_oracle);
    };
    report("history EWMA", hist_scores);
    report("Kleio LSTM", lstm_scores);
    report("random", random_scores);

    // Where the LSTM actually earns its keep: periodic pages, whose
    // phase the reactive EWMA cannot see.
    std::size_t periodic = 0, lstm_ok = 0, hist_ok = 0;
    for (std::size_t p = 0; p < kPages; ++p) {
        if (pages[p].behavior != mem::PageBehavior::Periodic)
            continue;
        ++periodic;
        bool hot = pages[p].next_count >= mem::kHotThreshold;
        lstm_ok += (lstm_hot[p] == 1) == hot;
        hist_ok += mem::historyPredictsHot(pages[p]) == hot;
    }
    std::printf("\nperiodic pages (%zu): LSTM predicts next-interval "
                "warmth at %.1f%%, history EWMA at %.1f%%\n", periodic,
                100.0 * lstm_ok / periodic, 100.0 * hist_ok / periodic);

    std::printf("\nThe trained LSTM learns the periodic pages the "
                "reactive EWMA mispredicts — Kleio's motivating case — "
                "while the kernel only ever issued one high-level RPC "
                "per interval.\n");
    return 0;
}
