// End-to-end I/O latency prediction (§5.5 + §7.1): the feature
// registry flow of Listings 4/5 against live storage.
//
// Trains a LinnOS-style model offline, installs it behind a feature
// registry with CPU and LAKE/GPU classifiers and a batch-threshold
// policy, then replays a stressed mixed workload across three NVMes
// with hedged rerouting of predicted-slow reads.

#include <cstdio>

#include "storage/e2e.h"
#include "storage/linnos.h"

using namespace lake;
using namespace lake::storage;

int
main()
{
    // ---- offline training (the paper's per-device training step) ----
    std::printf("collecting training data (replaying Azure x3 against "
                "one NVMe)...\n");
    LinnosDataset data = collectLinnosData(
        TraceSpec::azure().rerated(3.0), NvmeSpec::samsung980Pro(),
        800_ms, 0.85, 7);
    std::printf("  %zu reads observed, slow threshold %.0f us, "
                "%.1f%% labelled slow\n",
                data.samples.size(), data.threshold_us,
                100.0 * data.slow_fraction);

    Rng rng(1);
    ml::Mlp model = trainLinnosModel(data, /*extra_layers=*/0,
                                     /*epochs=*/6, 0.05f, rng);
    std::printf("  trained LinnOS model: %zu parameters\n\n",
                model.paramCount());

    // ---- end-to-end runs --------------------------------------------
    std::vector<TraceSpec> mixed = {TraceSpec::azure().rerated(3.0),
                                    TraceSpec::bingI().rerated(3.0),
                                    TraceSpec::cosmos().rerated(3.0)};

    E2eConfig cfg;
    cfg.duration = 500_ms;
    cfg.threshold_us = data.threshold_us;

    std::printf("%-10s %12s %10s %10s %10s %12s\n", "mode",
                "avg lat(us)", "p95", "p99", "rerouted", "gpu batches");
    for (E2eMode mode :
         {E2eMode::Baseline, E2eMode::CpuNn, E2eMode::LakeNn}) {
        cfg.mode = mode;
        cfg.model = mode == E2eMode::Baseline ? nullptr : &model;
        E2eResult r = runE2e(mixed, cfg);
        std::printf("%-10s %12.1f %10.1f %10.1f %9llu %12llu\n",
                    e2eModeName(mode), r.avg_read_lat_us,
                    r.p95_read_lat_us, r.p99_read_lat_us,
                    static_cast<unsigned long long>(r.rerouted),
                    static_cast<unsigned long long>(r.gpu_batches));
    }

    std::printf("\nThe ML modes trade a little average-case overhead "
                "(inference on the issue path) for large tail savings: "
                "reads that would have hit a GC storm or a deep queue "
                "are reissued to a sibling device.\n");
    return 0;
}
