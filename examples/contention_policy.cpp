// Contention management (§4.2/§4.3): installing the Fig. 3 policy, in
// both its native and eBPF-bytecode forms, and watching LAKE modulate
// between CPU and GPU as a user process takes and releases the GPU.

#include <cstdio>

#include "core/lake.h"
#include "policy/bpf.h"
#include "policy/policy.h"

using namespace lake;

namespace {

const char *
decide(policy::ExecPolicy &p, Clock &clock, std::size_t batch)
{
    policy::PolicyInput in;
    in.batch_size = batch;
    in.now = clock.now();
    return policy::engineName(p.decide(in));
}

} // namespace

int
main()
{
    core::Lake lake;
    Clock &clock = lake.clock();
    gpu::Device &dev = lake.device();

    // ---- native form of the Fig. 3 policy ----------------------------
    policy::ContentionAwarePolicy::Config cfg;
    cfg.probe_interval = 5_ms;   // "...5 ms elapsed since last check..."
    cfg.avg_window = 4;          // moving average of utilization
    cfg.exec_threshold = 40.0;   // % GPU busy considered contended
    cfg.batch_threshold = 8;     // Table 3 crossover for the NN
    policy::ContentionAwarePolicy native(lake.nvmlProbe(), cfg);

    // ---- the same policy as eBPF bytecode ----------------------------
    // The verifier statically checks it: forward-only jumps, bounded
    // context accesses, registered helpers only.
    policy::BpfVm vm;
    auto program = policy::buildFig3Program(40.0, 8);
    Status verdict = vm.verify(program, policy::kCtxSlotCount);
    std::printf("eBPF policy: %zu instructions, verifier says %s\n\n",
                program.size(), verdict.toString().c_str());
    policy::BpfPolicy::Config bcfg;
    bcfg.probe_interval = 5_ms;
    bcfg.avg_window = 4;
    policy::BpfPolicy bytecode(vm, program, lake.nvmlProbe(), bcfg);

    // ---- scenario -----------------------------------------------------
    std::printf("%-26s %8s %10s %10s\n", "phase", "util%",
                "native", "bytecode");

    auto show = [&](const char *phase, std::size_t batch) {
        double util = dev.utilization(clock.now(), 20_ms);
        std::printf("%-26s %7.0f%% %10s %10s\n", phase, util,
                    decide(native, clock, batch),
                    decide(bytecode, clock, batch));
    };

    show("idle GPU, batch 16", 16);
    show("idle GPU, batch 2", 2); // below the profitability crossover

    // A user process saturates the GPU for 100 ms.
    for (int i = 0; i < 20; ++i) {
        dev.reserveCompute(clock.now(), 5_ms);
        clock.advance(5_ms);
        policy::PolicyInput in;
        in.batch_size = 16;
        in.now = clock.now();
        native.decide(in);
        bytecode.decide(in);
    }
    show("user process on GPU", 16);

    // The user process exits; utilization decays across probe windows.
    for (int i = 0; i < 6; ++i) {
        clock.advance(5_ms);
        policy::PolicyInput in;
        in.batch_size = 16;
        in.now = clock.now();
        native.decide(in);
        bytecode.decide(in);
    }
    show("user process exited", 16);

    std::printf("\nBoth forms agree at every decision point: bytecode "
                "policies are how kernel developers install new "
                "contention behaviour without rebuilding LAKE.\n");
    return 0;
}
