// Encrypted file system demo (§7.7): mount the AES-GCM eCryptfs over
// the modeled lower FS with different cipher engines, store and verify
// a file, and compare the engines' virtual-time cost.

#include <cstdio>
#include <cstring>
#include <vector>

#include "core/lake.h"
#include "crypto/engines.h"
#include "fs/ecryptfs.h"

using namespace lake;

int
main()
{
    core::Lake lake;
    std::uint8_t key[32];
    for (int i = 0; i < 32; ++i)
        key[i] = static_cast<std::uint8_t>(0xA5 ^ i);

    // An 8 MiB "database file" with recognizable content.
    std::vector<std::uint8_t> db(8 << 20);
    for (std::size_t i = 0; i < db.size(); ++i)
        db[i] = static_cast<std::uint8_t>((i * 2654435761u) >> 24);

    gpu::CpuSpec cpu_spec = lake.config().cpu;
    crypto::CpuCipher sw(key, 32, lake.clock(), cpu_spec);
    crypto::AesNiCipher ni(key, 32, lake.clock(), cpu_spec);
    crypto::LakeGpuCipher gpu_eng(key, 32, lake.lib(), 1 << 20);

    std::printf("%-8s %14s %14s %14s\n", "engine", "write (ms)",
                "read (ms)", "verified");

    crypto::CipherEngine *engines[] = {&sw, &ni, &gpu_eng};
    for (crypto::CipherEngine *engine : engines) {
        fs::ECryptFs fs(*engine, lake.clock(), fs::LowerFsModel::testbed(),
                        128 << 10);

        Nanos t0 = lake.clock().now();
        Status st = fs.writeFile("/db/users.tbl", db.data(), db.size());
        double write_ms = toMs(lake.clock().now() - t0);
        if (!st.isOk()) {
            std::printf("write failed: %s\n", st.toString().c_str());
            return 1;
        }

        t0 = lake.clock().now();
        auto back = fs.readFile("/db/users.tbl");
        double read_ms = toMs(lake.clock().now() - t0);

        bool ok = back.isOk() && back.value() == db;
        std::printf("%-8s %14.2f %14.2f %14s\n", engine->name(),
                    write_ms, read_ms, ok ? "yes" : "NO");
        if (!ok)
            return 1;
    }

    // Stored bytes are ciphertext: demonstrate tamper detection.
    {
        fs::ECryptFs fs(sw, lake.clock(), fs::LowerFsModel::testbed(),
                        64 << 10);
        fs.writeFile("/secret", db.data(), 4096);
        std::printf("\nstored size of 4 KiB file: %zu bytes "
                    "(ciphertext + per-extent IV/tag)\n",
                    fs.storedSize("/secret"));
    }

    std::printf("GPU busy time accumulated on the device: %.1f ms\n",
                toMs(lake.device().computeBusy().totalBusy()));
    return 0;
}
