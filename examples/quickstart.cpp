// Quickstart: boot LAKE and drive the GPU from "kernel space".
//
// This is the flow of the paper's hello_driver module: a kernel-side
// client allocates staging buffers in lakeShm, calls the remoted CUDA
// driver API exported by lakeLib, and lakeD executes the work on the
// accelerator. Run it and read the printed trace to see what each step
// costs in virtual time.

#include <cstdio>

#include "core/lake.h"

using namespace lake;

int
main()
{
    // 1. Boot the runtime: lakeShm, the Netlink command channel, lakeD,
    //    lakeLib and the simulated A100, all sharing one virtual clock.
    core::Lake lake;
    auto &lib = lake.lib();      // the kernel-space view (lakeLib)
    auto &arena = lake.arena();  // lakeShm

    std::printf("booted: %s, %zu MiB lakeShm, %s channel\n",
                lake.device().spec().name.c_str(),
                arena.capacity() >> 20,
                channel::kindName(lake.channel().kind()));

    // 2. Allocate a staging buffer in shared memory. Both kernel space
    //    and lakeD address these bytes directly: zero copies.
    const std::uint64_t n = 1 << 16;
    shm::ShmOffset h_buf = arena.alloc(n * sizeof(float));
    auto *buf = static_cast<float *>(arena.at(h_buf));

    // 3. Remote cuMemAlloc: the command crosses to lakeD over Netlink.
    gpu::DevicePtr d_x = 0, d_y = 0;
    lib.cuMemAlloc(&d_x, n * sizeof(float));
    lib.cuMemAlloc(&d_y, n * sizeof(float));
    std::printf("after cuMemAlloc x2: t = %.1f us, device mem = %zu KiB\n",
                toUs(lake.clock().now()), lake.device().memUsed() >> 10);

    // 4. Fill x and y and push them to the device through lakeShm.
    for (std::uint64_t i = 0; i < n; ++i)
        buf[i] = 1.0f;
    lib.cuMemcpyHtoDShm(d_x, h_buf, n * sizeof(float));
    for (std::uint64_t i = 0; i < n; ++i)
        buf[i] = 2.0f;
    lib.cuMemcpyHtoDShm(d_y, h_buf, n * sizeof(float));
    std::printf("after uploads:      t = %.1f us\n",
                toUs(lake.clock().now()));

    // 5. Launch saxpy: y = 3*x + y. The launch is a one-way command;
    //    errors (if any) surface at the next synchronizing call.
    gpu::LaunchConfig cfg;
    cfg.kernel = "saxpy";
    cfg.grid_x = static_cast<std::uint32_t>((n + 255) / 256);
    cfg.block_x = 256;
    cfg.argF(3.0f).arg(d_x).arg(d_y).arg(n, nullptr);
    lib.cuLaunchKernel(cfg);
    gpu::CuResult sync = lib.cuCtxSynchronize();
    std::printf("after launch+sync:  t = %.1f us (%s)\n",
                toUs(lake.clock().now()), gpu::cuResultName(sync));

    // 6. Read the result back and verify.
    lib.cuMemcpyDtoHShm(h_buf, d_y, n * sizeof(float));
    bool ok = true;
    for (std::uint64_t i = 0; i < n; ++i)
        ok = ok && buf[i] == 5.0f;
    std::printf("result: y[i] == 5.0 for all %llu elements: %s\n",
                static_cast<unsigned long long>(n), ok ? "yes" : "NO");

    // 7. Clean up.
    lib.cuMemFree(d_x);
    lib.cuMemFree(d_y);
    arena.free(h_buf);
    std::printf("done: %llu remoted commands, %llu bytes over the "
                "channel (bulk data went through lakeShm)\n",
                static_cast<unsigned long long>(
                    lake.daemon().commandsHandled()),
                static_cast<unsigned long long>(
                    lake.channel().bytesSent()));
    return ok ? 0 : 1;
}
