# Empty dependencies file for lake_base.
# This may be replaced when dependencies are built.
