file(REMOVE_RECURSE
  "CMakeFiles/lake_base.dir/logging.cc.o"
  "CMakeFiles/lake_base.dir/logging.cc.o.d"
  "CMakeFiles/lake_base.dir/rng.cc.o"
  "CMakeFiles/lake_base.dir/rng.cc.o.d"
  "CMakeFiles/lake_base.dir/stats.cc.o"
  "CMakeFiles/lake_base.dir/stats.cc.o.d"
  "CMakeFiles/lake_base.dir/status.cc.o"
  "CMakeFiles/lake_base.dir/status.cc.o.d"
  "liblake_base.a"
  "liblake_base.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lake_base.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
