file(REMOVE_RECURSE
  "liblake_base.a"
)
