file(REMOVE_RECURSE
  "liblake_sim.a"
)
