# Empty dependencies file for lake_sim.
# This may be replaced when dependencies are built.
