file(REMOVE_RECURSE
  "CMakeFiles/lake_sim.dir/resource.cc.o"
  "CMakeFiles/lake_sim.dir/resource.cc.o.d"
  "CMakeFiles/lake_sim.dir/simulator.cc.o"
  "CMakeFiles/lake_sim.dir/simulator.cc.o.d"
  "liblake_sim.a"
  "liblake_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lake_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
