file(REMOVE_RECURSE
  "CMakeFiles/lake_remote.dir/daemon.cc.o"
  "CMakeFiles/lake_remote.dir/daemon.cc.o.d"
  "CMakeFiles/lake_remote.dir/lakelib.cc.o"
  "CMakeFiles/lake_remote.dir/lakelib.cc.o.d"
  "CMakeFiles/lake_remote.dir/wire.cc.o"
  "CMakeFiles/lake_remote.dir/wire.cc.o.d"
  "liblake_remote.a"
  "liblake_remote.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lake_remote.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
