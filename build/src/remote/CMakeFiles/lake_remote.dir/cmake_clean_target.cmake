file(REMOVE_RECURSE
  "liblake_remote.a"
)
