# Empty dependencies file for lake_remote.
# This may be replaced when dependencies are built.
