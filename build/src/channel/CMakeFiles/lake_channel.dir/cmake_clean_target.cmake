file(REMOVE_RECURSE
  "liblake_channel.a"
)
