# Empty dependencies file for lake_channel.
# This may be replaced when dependencies are built.
