file(REMOVE_RECURSE
  "CMakeFiles/lake_channel.dir/channel.cc.o"
  "CMakeFiles/lake_channel.dir/channel.cc.o.d"
  "liblake_channel.a"
  "liblake_channel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lake_channel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
