file(REMOVE_RECURSE
  "liblake_sched.a"
)
