file(REMOVE_RECURSE
  "CMakeFiles/lake_sched.dir/mllb.cc.o"
  "CMakeFiles/lake_sched.dir/mllb.cc.o.d"
  "liblake_sched.a"
  "liblake_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lake_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
