# Empty dependencies file for lake_sched.
# This may be replaced when dependencies are built.
