
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/storage/e2e.cc" "src/storage/CMakeFiles/lake_storage.dir/e2e.cc.o" "gcc" "src/storage/CMakeFiles/lake_storage.dir/e2e.cc.o.d"
  "/root/repo/src/storage/linnos.cc" "src/storage/CMakeFiles/lake_storage.dir/linnos.cc.o" "gcc" "src/storage/CMakeFiles/lake_storage.dir/linnos.cc.o.d"
  "/root/repo/src/storage/nvme.cc" "src/storage/CMakeFiles/lake_storage.dir/nvme.cc.o" "gcc" "src/storage/CMakeFiles/lake_storage.dir/nvme.cc.o.d"
  "/root/repo/src/storage/trace.cc" "src/storage/CMakeFiles/lake_storage.dir/trace.cc.o" "gcc" "src/storage/CMakeFiles/lake_storage.dir/trace.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/base/CMakeFiles/lake_base.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/lake_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/lake_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/registry/CMakeFiles/lake_registry.dir/DependInfo.cmake"
  "/root/repo/build/src/policy/CMakeFiles/lake_policy.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/lake_core.dir/DependInfo.cmake"
  "/root/repo/build/src/remote/CMakeFiles/lake_remote.dir/DependInfo.cmake"
  "/root/repo/build/src/gpu/CMakeFiles/lake_gpu.dir/DependInfo.cmake"
  "/root/repo/build/src/shm/CMakeFiles/lake_shm.dir/DependInfo.cmake"
  "/root/repo/build/src/channel/CMakeFiles/lake_channel.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
