file(REMOVE_RECURSE
  "liblake_storage.a"
)
