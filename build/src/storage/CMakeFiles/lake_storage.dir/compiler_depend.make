# Empty compiler generated dependencies file for lake_storage.
# This may be replaced when dependencies are built.
