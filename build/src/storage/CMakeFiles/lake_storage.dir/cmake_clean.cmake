file(REMOVE_RECURSE
  "CMakeFiles/lake_storage.dir/e2e.cc.o"
  "CMakeFiles/lake_storage.dir/e2e.cc.o.d"
  "CMakeFiles/lake_storage.dir/linnos.cc.o"
  "CMakeFiles/lake_storage.dir/linnos.cc.o.d"
  "CMakeFiles/lake_storage.dir/nvme.cc.o"
  "CMakeFiles/lake_storage.dir/nvme.cc.o.d"
  "CMakeFiles/lake_storage.dir/trace.cc.o"
  "CMakeFiles/lake_storage.dir/trace.cc.o.d"
  "liblake_storage.a"
  "liblake_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lake_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
