file(REMOVE_RECURSE
  "CMakeFiles/lake_shm.dir/arena.cc.o"
  "CMakeFiles/lake_shm.dir/arena.cc.o.d"
  "liblake_shm.a"
  "liblake_shm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lake_shm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
