# Empty compiler generated dependencies file for lake_shm.
# This may be replaced when dependencies are built.
