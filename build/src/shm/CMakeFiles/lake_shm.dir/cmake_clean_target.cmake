file(REMOVE_RECURSE
  "liblake_shm.a"
)
