file(REMOVE_RECURSE
  "liblake_core.a"
)
