# Empty dependencies file for lake_core.
# This may be replaced when dependencies are built.
