file(REMOVE_RECURSE
  "CMakeFiles/lake_core.dir/lake.cc.o"
  "CMakeFiles/lake_core.dir/lake.cc.o.d"
  "liblake_core.a"
  "liblake_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lake_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
