# Empty compiler generated dependencies file for lake_fs.
# This may be replaced when dependencies are built.
