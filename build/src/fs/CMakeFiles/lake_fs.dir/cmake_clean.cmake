file(REMOVE_RECURSE
  "CMakeFiles/lake_fs.dir/ecryptfs.cc.o"
  "CMakeFiles/lake_fs.dir/ecryptfs.cc.o.d"
  "CMakeFiles/lake_fs.dir/prefetch.cc.o"
  "CMakeFiles/lake_fs.dir/prefetch.cc.o.d"
  "liblake_fs.a"
  "liblake_fs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lake_fs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
