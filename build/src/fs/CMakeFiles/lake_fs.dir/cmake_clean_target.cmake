file(REMOVE_RECURSE
  "liblake_fs.a"
)
