
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mem/pagewarmth.cc" "src/mem/CMakeFiles/lake_mem.dir/pagewarmth.cc.o" "gcc" "src/mem/CMakeFiles/lake_mem.dir/pagewarmth.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/base/CMakeFiles/lake_base.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/lake_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/remote/CMakeFiles/lake_remote.dir/DependInfo.cmake"
  "/root/repo/build/src/gpu/CMakeFiles/lake_gpu.dir/DependInfo.cmake"
  "/root/repo/build/src/channel/CMakeFiles/lake_channel.dir/DependInfo.cmake"
  "/root/repo/build/src/shm/CMakeFiles/lake_shm.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
