file(REMOVE_RECURSE
  "liblake_mem.a"
)
