# Empty compiler generated dependencies file for lake_mem.
# This may be replaced when dependencies are built.
