file(REMOVE_RECURSE
  "CMakeFiles/lake_mem.dir/pagewarmth.cc.o"
  "CMakeFiles/lake_mem.dir/pagewarmth.cc.o.d"
  "liblake_mem.a"
  "liblake_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lake_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
