file(REMOVE_RECURSE
  "liblake_gpu.a"
)
