# Empty compiler generated dependencies file for lake_gpu.
# This may be replaced when dependencies are built.
