file(REMOVE_RECURSE
  "CMakeFiles/lake_gpu.dir/context.cc.o"
  "CMakeFiles/lake_gpu.dir/context.cc.o.d"
  "CMakeFiles/lake_gpu.dir/device.cc.o"
  "CMakeFiles/lake_gpu.dir/device.cc.o.d"
  "CMakeFiles/lake_gpu.dir/kernels.cc.o"
  "CMakeFiles/lake_gpu.dir/kernels.cc.o.d"
  "CMakeFiles/lake_gpu.dir/nvml.cc.o"
  "CMakeFiles/lake_gpu.dir/nvml.cc.o.d"
  "liblake_gpu.a"
  "liblake_gpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lake_gpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
