
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gpu/context.cc" "src/gpu/CMakeFiles/lake_gpu.dir/context.cc.o" "gcc" "src/gpu/CMakeFiles/lake_gpu.dir/context.cc.o.d"
  "/root/repo/src/gpu/device.cc" "src/gpu/CMakeFiles/lake_gpu.dir/device.cc.o" "gcc" "src/gpu/CMakeFiles/lake_gpu.dir/device.cc.o.d"
  "/root/repo/src/gpu/kernels.cc" "src/gpu/CMakeFiles/lake_gpu.dir/kernels.cc.o" "gcc" "src/gpu/CMakeFiles/lake_gpu.dir/kernels.cc.o.d"
  "/root/repo/src/gpu/nvml.cc" "src/gpu/CMakeFiles/lake_gpu.dir/nvml.cc.o" "gcc" "src/gpu/CMakeFiles/lake_gpu.dir/nvml.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/base/CMakeFiles/lake_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
