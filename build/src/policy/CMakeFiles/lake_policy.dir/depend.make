# Empty dependencies file for lake_policy.
# This may be replaced when dependencies are built.
