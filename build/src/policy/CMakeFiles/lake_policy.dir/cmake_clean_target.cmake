file(REMOVE_RECURSE
  "liblake_policy.a"
)
