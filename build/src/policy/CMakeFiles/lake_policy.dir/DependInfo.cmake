
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/policy/bpf.cc" "src/policy/CMakeFiles/lake_policy.dir/bpf.cc.o" "gcc" "src/policy/CMakeFiles/lake_policy.dir/bpf.cc.o.d"
  "/root/repo/src/policy/mlgate.cc" "src/policy/CMakeFiles/lake_policy.dir/mlgate.cc.o" "gcc" "src/policy/CMakeFiles/lake_policy.dir/mlgate.cc.o.d"
  "/root/repo/src/policy/policy.cc" "src/policy/CMakeFiles/lake_policy.dir/policy.cc.o" "gcc" "src/policy/CMakeFiles/lake_policy.dir/policy.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/base/CMakeFiles/lake_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
