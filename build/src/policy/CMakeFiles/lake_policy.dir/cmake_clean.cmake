file(REMOVE_RECURSE
  "CMakeFiles/lake_policy.dir/bpf.cc.o"
  "CMakeFiles/lake_policy.dir/bpf.cc.o.d"
  "CMakeFiles/lake_policy.dir/mlgate.cc.o"
  "CMakeFiles/lake_policy.dir/mlgate.cc.o.d"
  "CMakeFiles/lake_policy.dir/policy.cc.o"
  "CMakeFiles/lake_policy.dir/policy.cc.o.d"
  "liblake_policy.a"
  "liblake_policy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lake_policy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
