# Empty dependencies file for lake_crypto.
# This may be replaced when dependencies are built.
