file(REMOVE_RECURSE
  "liblake_crypto.a"
)
