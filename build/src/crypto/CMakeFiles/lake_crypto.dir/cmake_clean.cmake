file(REMOVE_RECURSE
  "CMakeFiles/lake_crypto.dir/aes.cc.o"
  "CMakeFiles/lake_crypto.dir/aes.cc.o.d"
  "CMakeFiles/lake_crypto.dir/engines.cc.o"
  "CMakeFiles/lake_crypto.dir/engines.cc.o.d"
  "CMakeFiles/lake_crypto.dir/gcm.cc.o"
  "CMakeFiles/lake_crypto.dir/gcm.cc.o.d"
  "liblake_crypto.a"
  "liblake_crypto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lake_crypto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
