file(REMOVE_RECURSE
  "CMakeFiles/lake_ml.dir/backends.cc.o"
  "CMakeFiles/lake_ml.dir/backends.cc.o.d"
  "CMakeFiles/lake_ml.dir/gpu_kernels.cc.o"
  "CMakeFiles/lake_ml.dir/gpu_kernels.cc.o.d"
  "CMakeFiles/lake_ml.dir/knn.cc.o"
  "CMakeFiles/lake_ml.dir/knn.cc.o.d"
  "CMakeFiles/lake_ml.dir/lstm.cc.o"
  "CMakeFiles/lake_ml.dir/lstm.cc.o.d"
  "CMakeFiles/lake_ml.dir/lstm_train.cc.o"
  "CMakeFiles/lake_ml.dir/lstm_train.cc.o.d"
  "CMakeFiles/lake_ml.dir/matrix.cc.o"
  "CMakeFiles/lake_ml.dir/matrix.cc.o.d"
  "CMakeFiles/lake_ml.dir/mlp.cc.o"
  "CMakeFiles/lake_ml.dir/mlp.cc.o.d"
  "liblake_ml.a"
  "liblake_ml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lake_ml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
