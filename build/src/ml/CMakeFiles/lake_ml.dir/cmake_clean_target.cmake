file(REMOVE_RECURSE
  "liblake_ml.a"
)
