# Empty compiler generated dependencies file for lake_ml.
# This may be replaced when dependencies are built.
