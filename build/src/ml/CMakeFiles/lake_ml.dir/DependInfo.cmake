
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ml/backends.cc" "src/ml/CMakeFiles/lake_ml.dir/backends.cc.o" "gcc" "src/ml/CMakeFiles/lake_ml.dir/backends.cc.o.d"
  "/root/repo/src/ml/gpu_kernels.cc" "src/ml/CMakeFiles/lake_ml.dir/gpu_kernels.cc.o" "gcc" "src/ml/CMakeFiles/lake_ml.dir/gpu_kernels.cc.o.d"
  "/root/repo/src/ml/knn.cc" "src/ml/CMakeFiles/lake_ml.dir/knn.cc.o" "gcc" "src/ml/CMakeFiles/lake_ml.dir/knn.cc.o.d"
  "/root/repo/src/ml/lstm.cc" "src/ml/CMakeFiles/lake_ml.dir/lstm.cc.o" "gcc" "src/ml/CMakeFiles/lake_ml.dir/lstm.cc.o.d"
  "/root/repo/src/ml/lstm_train.cc" "src/ml/CMakeFiles/lake_ml.dir/lstm_train.cc.o" "gcc" "src/ml/CMakeFiles/lake_ml.dir/lstm_train.cc.o.d"
  "/root/repo/src/ml/matrix.cc" "src/ml/CMakeFiles/lake_ml.dir/matrix.cc.o" "gcc" "src/ml/CMakeFiles/lake_ml.dir/matrix.cc.o.d"
  "/root/repo/src/ml/mlp.cc" "src/ml/CMakeFiles/lake_ml.dir/mlp.cc.o" "gcc" "src/ml/CMakeFiles/lake_ml.dir/mlp.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/base/CMakeFiles/lake_base.dir/DependInfo.cmake"
  "/root/repo/build/src/gpu/CMakeFiles/lake_gpu.dir/DependInfo.cmake"
  "/root/repo/build/src/remote/CMakeFiles/lake_remote.dir/DependInfo.cmake"
  "/root/repo/build/src/channel/CMakeFiles/lake_channel.dir/DependInfo.cmake"
  "/root/repo/build/src/shm/CMakeFiles/lake_shm.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
