# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("base")
subdirs("sim")
subdirs("shm")
subdirs("channel")
subdirs("gpu")
subdirs("remote")
subdirs("policy")
subdirs("registry")
subdirs("ml")
subdirs("crypto")
subdirs("storage")
subdirs("fs")
subdirs("sched")
subdirs("mem")
subdirs("malware")
subdirs("core")
