file(REMOVE_RECURSE
  "liblake_registry.a"
)
