
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/registry/manager.cc" "src/registry/CMakeFiles/lake_registry.dir/manager.cc.o" "gcc" "src/registry/CMakeFiles/lake_registry.dir/manager.cc.o.d"
  "/root/repo/src/registry/model_store.cc" "src/registry/CMakeFiles/lake_registry.dir/model_store.cc.o" "gcc" "src/registry/CMakeFiles/lake_registry.dir/model_store.cc.o.d"
  "/root/repo/src/registry/registry.cc" "src/registry/CMakeFiles/lake_registry.dir/registry.cc.o" "gcc" "src/registry/CMakeFiles/lake_registry.dir/registry.cc.o.d"
  "/root/repo/src/registry/schema.cc" "src/registry/CMakeFiles/lake_registry.dir/schema.cc.o" "gcc" "src/registry/CMakeFiles/lake_registry.dir/schema.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/base/CMakeFiles/lake_base.dir/DependInfo.cmake"
  "/root/repo/build/src/policy/CMakeFiles/lake_policy.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
