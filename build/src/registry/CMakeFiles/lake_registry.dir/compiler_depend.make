# Empty compiler generated dependencies file for lake_registry.
# This may be replaced when dependencies are built.
