file(REMOVE_RECURSE
  "CMakeFiles/lake_registry.dir/manager.cc.o"
  "CMakeFiles/lake_registry.dir/manager.cc.o.d"
  "CMakeFiles/lake_registry.dir/model_store.cc.o"
  "CMakeFiles/lake_registry.dir/model_store.cc.o.d"
  "CMakeFiles/lake_registry.dir/registry.cc.o"
  "CMakeFiles/lake_registry.dir/registry.cc.o.d"
  "CMakeFiles/lake_registry.dir/schema.cc.o"
  "CMakeFiles/lake_registry.dir/schema.cc.o.d"
  "liblake_registry.a"
  "liblake_registry.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lake_registry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
