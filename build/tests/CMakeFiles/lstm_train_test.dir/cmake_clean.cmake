file(REMOVE_RECURSE
  "CMakeFiles/lstm_train_test.dir/lstm_train_test.cc.o"
  "CMakeFiles/lstm_train_test.dir/lstm_train_test.cc.o.d"
  "lstm_train_test"
  "lstm_train_test.pdb"
  "lstm_train_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lstm_train_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
