# Empty dependencies file for lstm_train_test.
# This may be replaced when dependencies are built.
