# Empty compiler generated dependencies file for ml_backends_test.
# This may be replaced when dependencies are built.
