file(REMOVE_RECURSE
  "CMakeFiles/ml_backends_test.dir/ml_backends_test.cc.o"
  "CMakeFiles/ml_backends_test.dir/ml_backends_test.cc.o.d"
  "ml_backends_test"
  "ml_backends_test.pdb"
  "ml_backends_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ml_backends_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
