# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/base_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/shm_test[1]_include.cmake")
include("/root/repo/build/tests/channel_test[1]_include.cmake")
include("/root/repo/build/tests/gpu_test[1]_include.cmake")
include("/root/repo/build/tests/remote_test[1]_include.cmake")
include("/root/repo/build/tests/policy_test[1]_include.cmake")
include("/root/repo/build/tests/registry_test[1]_include.cmake")
include("/root/repo/build/tests/ml_test[1]_include.cmake")
include("/root/repo/build/tests/lstm_train_test[1]_include.cmake")
include("/root/repo/build/tests/ml_backends_test[1]_include.cmake")
include("/root/repo/build/tests/crypto_test[1]_include.cmake")
include("/root/repo/build/tests/storage_test[1]_include.cmake")
include("/root/repo/build/tests/fs_test[1]_include.cmake")
include("/root/repo/build/tests/sched_test[1]_include.cmake")
include("/root/repo/build/tests/mem_test[1]_include.cmake")
include("/root/repo/build/tests/malware_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
