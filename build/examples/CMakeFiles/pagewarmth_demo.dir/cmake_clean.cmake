file(REMOVE_RECURSE
  "CMakeFiles/pagewarmth_demo.dir/pagewarmth_demo.cpp.o"
  "CMakeFiles/pagewarmth_demo.dir/pagewarmth_demo.cpp.o.d"
  "pagewarmth_demo"
  "pagewarmth_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pagewarmth_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
