# Empty compiler generated dependencies file for pagewarmth_demo.
# This may be replaced when dependencies are built.
