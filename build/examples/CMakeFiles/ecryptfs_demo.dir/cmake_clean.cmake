file(REMOVE_RECURSE
  "CMakeFiles/ecryptfs_demo.dir/ecryptfs_demo.cpp.o"
  "CMakeFiles/ecryptfs_demo.dir/ecryptfs_demo.cpp.o.d"
  "ecryptfs_demo"
  "ecryptfs_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ecryptfs_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
