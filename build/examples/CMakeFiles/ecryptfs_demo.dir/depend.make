# Empty dependencies file for ecryptfs_demo.
# This may be replaced when dependencies are built.
