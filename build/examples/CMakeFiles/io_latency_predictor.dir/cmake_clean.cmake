file(REMOVE_RECURSE
  "CMakeFiles/io_latency_predictor.dir/io_latency_predictor.cpp.o"
  "CMakeFiles/io_latency_predictor.dir/io_latency_predictor.cpp.o.d"
  "io_latency_predictor"
  "io_latency_predictor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/io_latency_predictor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
