# Empty compiler generated dependencies file for io_latency_predictor.
# This may be replaced when dependencies are built.
