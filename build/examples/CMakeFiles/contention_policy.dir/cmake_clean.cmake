file(REMOVE_RECURSE
  "CMakeFiles/contention_policy.dir/contention_policy.cpp.o"
  "CMakeFiles/contention_policy.dir/contention_policy.cpp.o.d"
  "contention_policy"
  "contention_policy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/contention_policy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
