# Empty compiler generated dependencies file for contention_policy.
# This may be replaced when dependencies are built.
