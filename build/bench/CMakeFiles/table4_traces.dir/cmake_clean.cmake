file(REMOVE_RECURSE
  "CMakeFiles/table4_traces.dir/table4_traces.cc.o"
  "CMakeFiles/table4_traces.dir/table4_traces.cc.o.d"
  "table4_traces"
  "table4_traces.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_traces.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
