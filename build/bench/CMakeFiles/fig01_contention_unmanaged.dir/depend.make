# Empty dependencies file for fig01_contention_unmanaged.
# This may be replaced when dependencies are built.
