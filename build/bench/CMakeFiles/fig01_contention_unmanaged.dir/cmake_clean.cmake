file(REMOVE_RECURSE
  "CMakeFiles/fig01_contention_unmanaged.dir/fig01_contention_unmanaged.cc.o"
  "CMakeFiles/fig01_contention_unmanaged.dir/fig01_contention_unmanaged.cc.o.d"
  "fig01_contention_unmanaged"
  "fig01_contention_unmanaged.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig01_contention_unmanaged.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
