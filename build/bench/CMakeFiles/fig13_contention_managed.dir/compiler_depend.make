# Empty compiler generated dependencies file for fig13_contention_managed.
# This may be replaced when dependencies are built.
