file(REMOVE_RECURSE
  "CMakeFiles/fig13_contention_managed.dir/fig13_contention_managed.cc.o"
  "CMakeFiles/fig13_contention_managed.dir/fig13_contention_managed.cc.o.d"
  "fig13_contention_managed"
  "fig13_contention_managed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_contention_managed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
