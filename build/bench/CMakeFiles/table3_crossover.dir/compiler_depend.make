# Empty compiler generated dependencies file for table3_crossover.
# This may be replaced when dependencies are built.
