file(REMOVE_RECURSE
  "CMakeFiles/table3_crossover.dir/table3_crossover.cc.o"
  "CMakeFiles/table3_crossover.dir/table3_crossover.cc.o.d"
  "table3_crossover"
  "table3_crossover.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_crossover.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
