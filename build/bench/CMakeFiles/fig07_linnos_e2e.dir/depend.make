# Empty dependencies file for fig07_linnos_e2e.
# This may be replaced when dependencies are built.
