file(REMOVE_RECURSE
  "CMakeFiles/fig07_linnos_e2e.dir/fig07_linnos_e2e.cc.o"
  "CMakeFiles/fig07_linnos_e2e.dir/fig07_linnos_e2e.cc.o.d"
  "fig07_linnos_e2e"
  "fig07_linnos_e2e.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_linnos_e2e.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
