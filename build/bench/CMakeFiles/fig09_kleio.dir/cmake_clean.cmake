file(REMOVE_RECURSE
  "CMakeFiles/fig09_kleio.dir/fig09_kleio.cc.o"
  "CMakeFiles/fig09_kleio.dir/fig09_kleio.cc.o.d"
  "fig09_kleio"
  "fig09_kleio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_kleio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
