# Empty compiler generated dependencies file for fig09_kleio.
# This may be replaced when dependencies are built.
