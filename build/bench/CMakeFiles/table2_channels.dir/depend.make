# Empty dependencies file for table2_channels.
# This may be replaced when dependencies are built.
