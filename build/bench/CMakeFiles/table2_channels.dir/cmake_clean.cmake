file(REMOVE_RECURSE
  "CMakeFiles/table2_channels.dir/table2_channels.cc.o"
  "CMakeFiles/table2_channels.dir/table2_channels.cc.o.d"
  "table2_channels"
  "table2_channels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_channels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
