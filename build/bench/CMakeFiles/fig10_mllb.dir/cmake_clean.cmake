file(REMOVE_RECURSE
  "CMakeFiles/fig10_mllb.dir/fig10_mllb.cc.o"
  "CMakeFiles/fig10_mllb.dir/fig10_mllb.cc.o.d"
  "fig10_mllb"
  "fig10_mllb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_mllb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
