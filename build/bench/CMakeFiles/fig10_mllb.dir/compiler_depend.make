# Empty compiler generated dependencies file for fig10_mllb.
# This may be replaced when dependencies are built.
