# Empty dependencies file for fig11_prefetch.
# This may be replaced when dependencies are built.
