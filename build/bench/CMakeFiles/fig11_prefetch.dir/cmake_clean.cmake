file(REMOVE_RECURSE
  "CMakeFiles/fig11_prefetch.dir/fig11_prefetch.cc.o"
  "CMakeFiles/fig11_prefetch.dir/fig11_prefetch.cc.o.d"
  "fig11_prefetch"
  "fig11_prefetch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_prefetch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
