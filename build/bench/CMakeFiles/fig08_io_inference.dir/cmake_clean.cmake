file(REMOVE_RECURSE
  "CMakeFiles/fig08_io_inference.dir/fig08_io_inference.cc.o"
  "CMakeFiles/fig08_io_inference.dir/fig08_io_inference.cc.o.d"
  "fig08_io_inference"
  "fig08_io_inference.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_io_inference.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
