# Empty dependencies file for fig08_io_inference.
# This may be replaced when dependencies are built.
