file(REMOVE_RECURSE
  "CMakeFiles/fig14_ecryptfs.dir/fig14_ecryptfs.cc.o"
  "CMakeFiles/fig14_ecryptfs.dir/fig14_ecryptfs.cc.o.d"
  "fig14_ecryptfs"
  "fig14_ecryptfs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_ecryptfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
