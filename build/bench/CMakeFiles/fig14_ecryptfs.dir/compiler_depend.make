# Empty compiler generated dependencies file for fig14_ecryptfs.
# This may be replaced when dependencies are built.
