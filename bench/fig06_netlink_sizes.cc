// Reproduces Fig. 6: round-trip overhead of sending Netlink messages of
// different sizes. Messages really travel through the channel (bytes
// copied both ways); times come off the virtual clock.

#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "channel/channel.h"

int
main()
{
    using namespace lake;
    using namespace lake::channel;

    bench::banner("Fig. 6", "Netlink round-trip time vs command size");

    Clock clock;
    Channel chan(Kind::Netlink, clock);
    using Dir = Channel::Dir;

    std::printf("%-14s %14s\n", "Size (bytes)", "Round trip (us)");
    for (std::size_t size :
         {128u, 256u, 512u, 1024u, 2048u, 4096u, 8192u, 16384u, 32768u}) {
        // A real command round trip: request of the swept size, small
        // status response (as lakeD replies).
        Nanos t0 = clock.now();
        chan.send(Dir::KernelToUser, std::vector<std::uint8_t>(size));
        chan.recv(Dir::KernelToUser);
        chan.send(Dir::UserToKernel, std::vector<std::uint8_t>(64));
        chan.recv(Dir::UserToKernel);
        Nanos rt = clock.now() - t0;
        std::printf("%-14zu %14.2f\n", size, toUs(rt));
    }

    bench::expectation(
        "flat ~28-33 us through 4K, then linear growth: 67.8 us @8K, "
        "127.8 @16K, 256.9 @32K — large transfers belong in lakeShm");
    return 0;
}
