// Reproduces Table 4: characteristics of the generated traces (based on
// LinnOS's, re-rated to double IOPS for Azure and Bing-I).

#include <cstdio>

#include "bench_util.h"
#include "storage/trace.h"

int
main()
{
    using namespace lake;
    using namespace lake::storage;

    bench::banner("Table 4",
                  "generated trace characteristics (measured over 4 s)");

    std::printf("%-10s %10s %12s %12s %12s %12s\n", "Trace", "Avg IOPS",
                "Read KB", "Write KB", "MinArr(us)", "MaxArr(us)");

    Rng rng(2023);
    for (const TraceSpec &spec :
         {TraceSpec::azure(), TraceSpec::bingI(), TraceSpec::cosmos()}) {
        auto trace = generateTrace(spec, 4_s, rng);
        TraceStats s = measureTrace(trace);
        std::printf("%-10s %10.0f %12.1f %12.1f %12.1f %12.1f\n",
                    spec.name.c_str(), s.iops, s.read_kb_mean,
                    s.write_kb_mean, toUs(s.min_arrival),
                    toUs(s.max_arrival));
    }

    bench::expectation(
        "Azure 26k IOPS 30/19 KB arr 0..324us; Bing-I 4.8k 73/59 KB "
        "0..1.8ms; Cosmos 2.5k 657/609 KB 0..1.6ms");
    return 0;
}
