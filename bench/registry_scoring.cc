// Host-time benchmark of the async batched scoring service
// (registry::ScoreServer, DESIGN.md §7) against per-call synchronous
// scoring — the Fig. 3 profitability argument applied to the registry
// itself.
//
// Four same-subsystem registries (the case study's per-device layout)
// share one LinnOS MLP, and every arm's timed loop runs the complete
// capture→commit→score data path an instrumentation site pays — the
// arms differ only in dispatch shape and storage plane. The sync arm
// captures into the legacy hashmap plane, commits, gathers the
// committed vector out of the ring, and calls scoreFeatures per
// vector: every I/O pays a full batch-1 classifier dispatch. The
// async arm runs the same legacy capture/commit/gather but submits
// through the ScoreServer, which coalesces across the registries into
// max_batch-deep dispatches on the ThreadPool-parallel GEMM
// substrate; throughput is host-measured, and the queue latency each
// vector paid for its batching win is virtual-time exact.
//
// The third arm runs the same workload over the zero-copy SoA data
// plane (DESIGN.md §12): column-indexed captures into shm-carved
// SoaStores, commit-time LinnOS float encoding, and submitView()
// batches that reach the GEMM substrate as strided MatrixViews — no
// per-vector gather, no per-flush pack. A metrics-instrumented
// ablation then isolates the pack cost: bytes staged per scored
// vector and capture ns per feature, legacy vs SoA.
//
// All arms classify identical vectors with the same model, so the
// bench also cross-checks the scatter: every async score must equal
// the sync score of the same vector, and every vector must be scored
// exactly once. Results land in BENCH_scoring.json with provenance;
// --smoke shrinks the run for CI.

#include <chrono>
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "base/rng.h"
#include "base/stats.h"
#include "base/time.h"
#include "bench_util.h"
#include "ml/backends.h"
#include "ml/mlp.h"
#include "obs/metrics.h"
#include "registry/manager.h"
#include "registry/scoreserver.h"
#include "shm/arena.h"
#include "storage/linnos.h"

using namespace lake;

namespace {

constexpr std::size_t kDevices = 4;
constexpr const char *kSys = "bio_latency_prediction";

double
now()
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

/** The LinnOS feature names, as the e2e path declares them. */
const std::array<std::string, storage::kLinnosHistory> kLatFeature = {
    "io_lat0", "io_lat1", "io_lat2", "io_lat3"};

/** Builds the 31-feature matrix from registry feature vectors. */
ml::Matrix
featurize(const std::vector<registry::FeatureVector> &fvs)
{
    ml::Matrix x(fvs.size(), storage::kLinnosFeatures);
    for (std::size_t r = 0; r < fvs.size(); ++r) {
        std::array<std::uint32_t, storage::kLinnosHistory> hist{};
        for (std::size_t h = 0; h < storage::kLinnosHistory; ++h)
            hist[h] = static_cast<std::uint32_t>(
                fvs[r].get(kLatFeature[h]));
        storage::encodeLinnosFeatures(
            static_cast<std::uint32_t>(fvs[r].get("pend_ios")), hist,
            x.row(r));
    }
    return x;
}

} // namespace

int
main(int argc, char **argv)
{
    bool smoke = false;
    const char *out_path = "BENCH_scoring.json";
    for (int i = 1; i < argc; ++i) {
        if (std::string(argv[i]) == "--smoke")
            smoke = true;
        else
            out_path = argv[i];
    }

    const std::size_t vectors = smoke ? 2000 : 20000;
    const std::size_t max_batch = 64;

    bench::banner("BENCH scoring",
                  "async coalesced ScoreServer vs per-call sync "
                  "registry inference (LinnOS MLP, 4 registries)");

    Clock clock;
    gpu::CpuSpec cpu_spec = gpu::CpuSpec::xeonGold6226R();
    ml::KernelCpu kernel_cpu(clock, cpu_spec);
    Rng model_rng(42);
    ml::Mlp model(ml::MlpConfig::linnos(), model_rng);
    ml::CpuMlp mlp(model, kernel_cpu);

    registry::RegistryManager mgr(clock);
    registry::Classifier classify =
        [&mlp](const std::vector<registry::FeatureVector> &fvs) {
            ml::Matrix x = featurize(fvs);
            std::vector<int> c = mlp.classify(x);
            return std::vector<float>(c.begin(), c.end());
        };
    std::vector<std::string> names;
    for (std::size_t d = 0; d < kDevices; ++d) {
        names.push_back("nvme" + std::to_string(d));
        registry::Schema schema;
        schema.add("pend_ios");
        for (const std::string &f : kLatFeature)
            schema.add(f);
        Status st = mgr.createRegistry(names[d], kSys, schema, 8);
        if (!st.isOk()) {
            std::fprintf(stderr, "createRegistry: %s\n",
                         st.toString().c_str());
            return 1;
        }
        st = mgr.find(names[d], kSys)
                 ->registerClassifier(registry::Arch::Cpu, classify);
        if (!st.isOk()) {
            std::fprintf(stderr, "registerClassifier: %s\n",
                         st.toString().c_str());
            return 1;
        }
    }

    // Capture handles onto the legacy hashmap plane: both legacy arms
    // capture, commit, and gather through them, so their timed loops
    // pay the same data-plane shape an instrumentation site does.
    std::vector<registry::Registry *> legacy_regs;
    std::vector<registry::CaptureHandle> legacy_caps;
    for (std::size_t d = 0; d < kDevices; ++d) {
        legacy_regs.push_back(mgr.find(names[d], kSys));
        legacy_caps.push_back(mgr.captureHandle(names[d], kSys));
        legacy_caps[d].beginFvCapture(0);
    }

    // One simulated I/O completion: the same feature draws on every
    // plane (schema column 0 is pend_ios, 1..4 the latency history),
    // so a fixed seed replays the identical vector stream through the
    // sync, async, and SoA arms and scores can be compared bitwise.
    auto capture_one = [&](registry::CaptureHandle &cap, Rng &rng) {
        cap.captureFeatureCol(
            0, static_cast<std::uint64_t>(rng.uniformInt(0, 31)));
        for (std::size_t h = 0; h < storage::kLinnosHistory; ++h)
            cap.captureFeatureCol(
                static_cast<std::uint32_t>(1 + h),
                static_cast<std::uint64_t>(rng.uniformInt(50, 2000)));
    };

    // Untimed warmup: every arm runs a few hundred dispatches before
    // its timed loop so none pays the others' cold caches.
    const std::size_t kWarmup = 512;

    // ---- sync arm: capture -> commit -> gather -> score, batch 1 ----
    std::vector<float> sync_scores(vectors);
    Rng warm_rng(99);
    for (std::size_t i = 0; i < kWarmup; ++i) {
        std::size_t d = i % kDevices;
        capture_one(legacy_caps[d], warm_rng);
        Nanos t = clock.now();
        legacy_caps[d].commitFvCapture(t);
        std::vector<registry::FeatureVector> got =
            legacy_regs[d]->getFeatures(t);
        legacy_regs[d]->scoreFeatures(got, t);
        clock.advance(1_us);
    }
    Rng fv_rng(7);
    double t0 = now();
    for (std::size_t i = 0; i < vectors; ++i) {
        std::size_t d = i % kDevices;
        capture_one(legacy_caps[d], fv_rng);
        Nanos t = clock.now();
        legacy_caps[d].commitFvCapture(t);
        // The gather: copy the just-committed vector out of the ring.
        std::vector<registry::FeatureVector> got =
            legacy_regs[d]->getFeatures(t);
        if (got.size() != 1) {
            std::fprintf(stderr, "sync gather %zu: got %zu vectors\n",
                         i, got.size());
            return 1;
        }
        sync_scores[i] = legacy_regs[d]->scoreFeatures(got, t)[0];
        clock.advance(1_us);
    }
    double sync_s = now() - t0;
    double sync_rate = static_cast<double>(vectors) / sync_s;

    // ---- async arm: ScoreServer coalesces across the registries -----
    registry::ScoringConfig cfg;
    cfg.enabled = true;
    cfg.max_batch = max_batch;
    cfg.queue_capacity = max_batch * 4;
    cfg.applyEnv();
    Status st = mgr.enableScoring(cfg);
    if (!st.isOk()) {
        std::fprintf(stderr, "enableScoring: %s\n",
                     st.toString().c_str());
        return 1;
    }
    registry::ScoreServer *server = mgr.scorer();

    // One-pointer capture: the completion callback must fit in
    // std::function's inline buffer, or every submit would time a
    // heap allocation that no real instrumentation site pays.
    struct AsyncCtx
    {
        std::size_t scored = 0;
        std::size_t mismatches = 0;
        PercentileTracker queue_us;
        RunningStat batch_sizes;
        const std::vector<float> *expect = nullptr;
    } ctx;
    ctx.expect = &sync_scores;
    Rng warm_rng2(99);
    for (std::size_t i = 0; i < kWarmup; ++i) {
        std::size_t d = i % kDevices;
        capture_one(legacy_caps[d], warm_rng2);
        Nanos t = clock.now();
        legacy_caps[d].commitFvCapture(t);
        server->submit(names[d], kSys, legacy_regs[d]->getFeatures(t),
                       0, nullptr);
        clock.advance(1_us);
    }
    server->flushAll(clock.now());
    const std::uint64_t warm_flushes = server->flushes();
    Rng fv_rng2(7);
    t0 = now();
    for (std::size_t i = 0; i < vectors; ++i) {
        std::size_t d = i % kDevices;
        capture_one(legacy_caps[d], fv_rng2);
        Nanos t = clock.now();
        legacy_caps[d].commitFvCapture(t);
        // Same capture/commit/gather as the sync arm; only the
        // dispatch differs — the gathered vector moves into the queue.
        Status sub = server->submit(
            names[d], kSys, legacy_regs[d]->getFeatures(t), 0,
            [&ctx, i](const registry::ScoreResult &r) {
                ++ctx.scored;
                if (!r.status.isOk() || r.scores.size() != 1 ||
                    r.scores[0] != (*ctx.expect)[i])
                    ++ctx.mismatches;
                ctx.queue_us.add(toUs(r.scored - r.enqueued));
                ctx.batch_sizes.add(static_cast<double>(r.batch));
            });
        if (!sub.isOk()) {
            std::fprintf(stderr, "submit %zu: %s\n", i,
                         sub.toString().c_str());
            return 1;
        }
        // Virtual arrival spacing, so queue latency is non-degenerate.
        clock.advance(1_us);
    }
    server->flushAll(clock.now());
    double async_s = now() - t0;
    double async_rate = static_cast<double>(vectors) / async_s;
    double speedup = async_rate / sync_rate;

    // ---- SoA arm: columnar capture -> zero-copy view scoring --------
    // A second manager on the SoA plane running the same
    // capture→commit→score loop: column captures land in shm, the
    // commit seals the slot, and submitView() hands the server a
    // pinned window — no per-vector gather, no per-flush pack.
    shm::ShmArena arena(32ull << 20);
    registry::RegistryManager soa_mgr(clock);
    registry::SoaConfig soa_cfg;
    soa_cfg.enabled = true;
    soa_cfg.slack = max_batch * 2;
    soa_cfg.applyEnv();
    st = soa_mgr.enableSoa(soa_cfg, &arena);
    if (!st.isOk()) {
        std::fprintf(stderr, "enableSoa: %s\n", st.toString().c_str());
        return 1;
    }
    registry::ViewClassifier view_classify =
        [&mlp](const registry::FvBatchView &v) {
            std::vector<int> c = mlp.classify(v.matrixViews());
            return std::vector<float>(c.begin(), c.end());
        };
    std::vector<registry::Registry *> soa_regs;
    std::vector<registry::CaptureHandle> soa_caps;
    for (std::size_t d = 0; d < kDevices; ++d) {
        registry::Schema schema;
        schema.add("pend_ios");
        for (const std::string &f : kLatFeature)
            schema.add(f);
        st = soa_mgr.createRegistry(names[d], kSys, schema,
                                    max_batch * 4);
        if (!st.isOk()) {
            std::fprintf(stderr, "createRegistry(soa): %s\n",
                         st.toString().c_str());
            return 1;
        }
        registry::Registry *reg = soa_mgr.find(names[d], kSys);
        // Seal-time encoder: the LinnOS digit encoding runs once per
        // commit; scoring reads finished float rows out of shm.
        reg->soa()->setFloatEncoder(
            storage::kLinnosFeatures,
            [](const registry::SoaStore::RowReader &row, float *out) {
                std::array<std::uint32_t, storage::kLinnosHistory>
                    hist{};
                for (std::size_t h = 0; h < storage::kLinnosHistory;
                     ++h)
                    hist[h] = static_cast<std::uint32_t>(
                        row.value(static_cast<std::uint32_t>(1 + h)));
                storage::encodeLinnosFeatures(
                    static_cast<std::uint32_t>(row.value(0)), hist,
                    out);
            });
        st = reg->registerViewClassifier(registry::Arch::Cpu,
                                         view_classify);
        if (!st.isOk()) {
            std::fprintf(stderr, "registerViewClassifier: %s\n",
                         st.toString().c_str());
            return 1;
        }
        soa_regs.push_back(reg);
        soa_caps.push_back(soa_mgr.captureHandle(names[d], kSys));
        soa_caps[d].beginFvCapture(0);
    }
    st = soa_mgr.enableScoring(cfg);
    if (!st.isOk()) {
        std::fprintf(stderr, "enableScoring(soa): %s\n",
                     st.toString().c_str());
        return 1;
    }
    registry::ScoreServer *soa_server = soa_mgr.scorer();

    AsyncCtx ctx2;
    ctx2.expect = &sync_scores;
    // Same seed replay as the legacy arms, so every SoA score must
    // equal the sync score of the same vector.
    Rng warm_rng3(99);
    for (std::size_t i = 0; i < kWarmup; ++i) {
        std::size_t d = i % kDevices;
        capture_one(soa_caps[d], warm_rng3);
        soa_caps[d].commitFvCapture(clock.now());
        soa_server->submitView(names[d], kSys, soa_regs[d]->tailView(1),
                               0, nullptr);
        clock.advance(1_us);
    }
    soa_server->flushAll(clock.now());
    const std::uint64_t soa_warm_flushes = soa_server->flushes();
    Rng fv_rng3(7);
    t0 = now();
    for (std::size_t i = 0; i < vectors; ++i) {
        std::size_t d = i % kDevices;
        capture_one(soa_caps[d], fv_rng3);
        soa_caps[d].commitFvCapture(clock.now());
        Status sub = soa_server->submitView(
            names[d], kSys, soa_regs[d]->tailView(1), 0,
            [&ctx2, i](const registry::ScoreResult &r) {
                ++ctx2.scored;
                if (!r.status.isOk() || r.scores.size() != 1 ||
                    r.scores[0] != (*ctx2.expect)[i])
                    ++ctx2.mismatches;
                ctx2.queue_us.add(toUs(r.scored - r.enqueued));
                ctx2.batch_sizes.add(static_cast<double>(r.batch));
            });
        if (!sub.isOk()) {
            std::fprintf(stderr, "submitView %zu: %s\n", i,
                         sub.toString().c_str());
            return 1;
        }
        clock.advance(1_us);
    }
    soa_server->flushAll(clock.now());
    double soa_s = now() - t0;
    double soa_rate = static_cast<double>(vectors) / soa_s;
    double soa_speedup = soa_rate / async_rate;

    // ---- pack-cost ablation (metrics-instrumented, untimed) ---------
    // Bytes staged per scored vector and capture ns per feature,
    // legacy vs SoA. Runs after the timed arms so the metric hooks
    // (steady_clock capture timers) never perturb the throughput
    // numbers.
    auto &met = obs::Metrics::global();
    met.setEnabled(true);
    const std::size_t abl_n = smoke ? 500 : 2000;

    std::uint64_t pack0 = met.reg_pack_bytes.get();
    Rng abl_rng0(1234);
    for (std::size_t i = 0; i < abl_n; ++i) {
        std::size_t d = i % kDevices;
        capture_one(legacy_caps[d], abl_rng0);
        Nanos t = clock.now();
        legacy_caps[d].commitFvCapture(t);
        std::vector<registry::FeatureVector> got =
            legacy_regs[d]->getFeatures(t);
        legacy_regs[d]->scoreFeatures(got, t);
        clock.advance(1_us);
    }
    double pack_legacy =
        static_cast<double>(met.reg_pack_bytes.get() - pack0) /
        static_cast<double>(abl_n);

    pack0 = met.reg_pack_bytes.get();
    Rng abl_rng(1234);
    for (std::size_t i = 0; i < abl_n; ++i) {
        std::size_t d = i % kDevices;
        capture_one(soa_caps[d], abl_rng);
        soa_caps[d].commitFvCapture(clock.now());
        soa_server->submitView(names[d], kSys, soa_regs[d]->tailView(1),
                               0, nullptr);
        clock.advance(1_us);
    }
    soa_server->flushAll(clock.now());
    double pack_soa =
        static_cast<double>(met.reg_pack_bytes.get() - pack0) /
        static_cast<double>(abl_n);

    const std::size_t cap_features = abl_n * 5;
    std::uint64_t cap0 = met.reg_capture_ns.get();
    Rng cap_rng(77);
    for (std::size_t i = 0; i < abl_n; ++i)
        capture_one(soa_caps[i % kDevices], cap_rng);
    double capture_ns_soa =
        static_cast<double>(met.reg_capture_ns.get() - cap0) /
        static_cast<double>(cap_features);

    registry::CaptureHandle legacy_cap = mgr.captureHandle(names[0], kSys);
    legacy_cap.beginFvCapture(clock.now());
    cap0 = met.reg_capture_ns.get();
    Rng cap_rng2(77);
    for (std::size_t i = 0; i < abl_n; ++i)
        capture_one(legacy_cap, cap_rng2);
    double capture_ns_legacy =
        static_cast<double>(met.reg_capture_ns.get() - cap0) /
        static_cast<double>(cap_features);
    met.setEnabled(false);

    std::printf("%-22s %12s %14s %12s\n", "arm", "vectors",
                "vectors/sec", "host sec");
    std::printf("%-22s %12zu %14.0f %12.3f\n", "sync per-call", vectors,
                sync_rate, sync_s);
    std::printf("%-22s %12zu %14.0f %12.3f\n", "async coalesced",
                vectors, async_rate, async_s);
    std::printf("%-22s %12zu %14.0f %12.3f\n", "async soa zero-copy",
                vectors, soa_rate, soa_s);
    std::printf("\nsoa vs async %.2fx   pack bytes/vector legacy %.1f "
                "soa %.1f   capture ns/feature legacy %.1f soa %.1f\n",
                soa_speedup, pack_legacy, pack_soa, capture_ns_legacy,
                capture_ns_soa);
    std::printf("\nspeedup %.2fx   flushes %llu   avg batch %.1f   "
                "p99 queue %.1f us (virtual)   mismatches %zu\n",
                speedup,
                static_cast<unsigned long long>(server->flushes() -
                                                warm_flushes),
                ctx.batch_sizes.mean(), ctx.queue_us.percentile(99.0),
                ctx.mismatches);
    bench::expectation(
        "coalesced batches amortize per-dispatch overhead onto the "
        "blocked GEMM path (the cached-pack substrate narrows the gap "
        "by making per-call dispatch cheaper too); the SoA plane "
        "removes the gather/pack step entirely (0 bytes staged per "
        "scored vector) for >= 1.3x scored-vectors/sec over the async "
        "baseline even while paying capture+commit in its timed loop");

    bench::JsonWriter j;
    j.beginObject();
    j.key("bench").value("registry_scoring");
    j.key("smoke").value(smoke ? "true" : "false");
    j.key("config").beginObject();
    j.key("vectors").value(vectors);
    j.key("registries").value(kDevices);
    j.key("max_batch").value(cfg.max_batch);
    j.key("queue_capacity").value(cfg.queue_capacity);
    j.key("max_delay_us").value(
        static_cast<std::size_t>(cfg.max_delay / 1000));
    j.endObject();
    j.key("sync").beginObject();
    j.key("vectors_per_sec").value(sync_rate);
    j.key("host_seconds").value(sync_s);
    j.endObject();
    j.key("async").beginObject();
    j.key("vectors_per_sec").value(async_rate);
    j.key("host_seconds").value(async_s);
    j.key("flushes").value(
        static_cast<std::size_t>(server->flushes() - warm_flushes));
    j.key("avg_batch").value(ctx.batch_sizes.mean());
    j.key("p50_queue_us_virtual").value(ctx.queue_us.percentile(50.0));
    j.key("p99_queue_us_virtual").value(ctx.queue_us.percentile(99.0));
    j.endObject();
    j.key("soa").beginObject();
    j.key("vectors_per_sec").value(soa_rate);
    j.key("host_seconds").value(soa_s);
    j.key("flushes").value(static_cast<std::size_t>(
        soa_server->flushes() - soa_warm_flushes));
    j.key("avg_batch").value(ctx2.batch_sizes.mean());
    j.key("p50_queue_us_virtual").value(ctx2.queue_us.percentile(50.0));
    j.key("p99_queue_us_virtual").value(ctx2.queue_us.percentile(99.0));
    j.key("speedup_vs_async").value(soa_speedup);
    j.endObject();
    j.key("ablation").beginObject();
    j.key("pack_bytes_per_vector_legacy").value(pack_legacy);
    j.key("pack_bytes_per_vector_soa").value(pack_soa);
    j.key("capture_ns_per_feature_legacy").value(capture_ns_legacy);
    j.key("capture_ns_per_feature_soa").value(capture_ns_soa);
    j.endObject();
    j.key("speedup").value(speedup);
    j.key("scored").value(ctx.scored);
    j.key("mismatches").value(ctx.mismatches);
    j.key("soa_scored").value(ctx2.scored);
    j.key("soa_mismatches").value(ctx2.mismatches);
    bench::provenance(j);
    j.endObject();
    if (!j.writeFile(out_path)) {
        std::fprintf(stderr, "cannot write %s\n", out_path);
        return 1;
    }
    std::printf("wrote %s\n", out_path);

    // The smoke gate is correctness, not speed: every vector scored
    // exactly once on every arm, every score identical to its sync
    // counterpart, and the SoA path staged zero pack bytes.
    if (ctx.scored != vectors || ctx.mismatches != 0) {
        std::fprintf(stderr,
                     "FAIL: scored %zu/%zu vectors, %zu mismatches\n",
                     ctx.scored, vectors, ctx.mismatches);
        return 1;
    }
    if (ctx2.scored != vectors || ctx2.mismatches != 0) {
        std::fprintf(stderr,
                     "FAIL: soa scored %zu/%zu vectors, %zu mismatches\n",
                     ctx2.scored, vectors, ctx2.mismatches);
        return 1;
    }
    if (pack_soa != 0.0) {
        std::fprintf(stderr,
                     "FAIL: soa path staged %.1f pack bytes/vector\n",
                     pack_soa);
        return 1;
    }
    return 0;
}
