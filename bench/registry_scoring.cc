// Host-time benchmark of the async batched scoring service
// (registry::ScoreServer, DESIGN.md §7) against per-call synchronous
// scoring — the Fig. 3 profitability argument applied to the registry
// itself.
//
// Four same-subsystem registries (the case study's per-device layout)
// share one LinnOS MLP. The sync arm calls scoreFeatures once per
// arriving feature vector: every I/O pays a full batch-1 classifier
// dispatch. The async arm submits the same vectors through the
// ScoreServer, which coalesces them across the registries into
// max_batch-deep dispatches that land on the ThreadPool-parallel GEMM
// substrate; throughput is host-measured, and the queue latency each
// vector paid for its batching win is virtual-time exact.
//
// Both arms classify identical vectors with the same model, so the
// bench also cross-checks the scatter: every async score must equal
// the sync score of the same vector, and every vector must be scored
// exactly once. Results land in BENCH_scoring.json with provenance;
// --smoke shrinks the run for CI.

#include <chrono>
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "base/rng.h"
#include "base/stats.h"
#include "base/time.h"
#include "bench_util.h"
#include "ml/backends.h"
#include "ml/mlp.h"
#include "registry/manager.h"
#include "registry/scoreserver.h"
#include "storage/linnos.h"

using namespace lake;

namespace {

constexpr std::size_t kDevices = 4;
constexpr const char *kSys = "bio_latency_prediction";

double
now()
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

/** The LinnOS feature names, as the e2e path declares them. */
const std::array<std::string, storage::kLinnosHistory> kLatFeature = {
    "io_lat0", "io_lat1", "io_lat2", "io_lat3"};

/** Builds the 31-feature matrix from registry feature vectors. */
ml::Matrix
featurize(const std::vector<registry::FeatureVector> &fvs)
{
    ml::Matrix x(fvs.size(), storage::kLinnosFeatures);
    for (std::size_t r = 0; r < fvs.size(); ++r) {
        std::array<std::uint32_t, storage::kLinnosHistory> hist{};
        for (std::size_t h = 0; h < storage::kLinnosHistory; ++h)
            hist[h] = static_cast<std::uint32_t>(
                fvs[r].get(kLatFeature[h]));
        storage::encodeLinnosFeatures(
            static_cast<std::uint32_t>(fvs[r].get("pend_ios")), hist,
            x.row(r));
    }
    return x;
}

/** One synthetic committed vector with plausible LinnOS features. */
registry::FeatureVector
makeFv(Rng &rng)
{
    registry::FeatureVector fv;
    fv.values[registry::featureKey("pend_ios")] = {
        rng.uniformInt(0, 31)};
    for (const std::string &f : kLatFeature)
        fv.values[registry::featureKey(f)] = {rng.uniformInt(50, 2000)};
    return fv;
}

} // namespace

int
main(int argc, char **argv)
{
    bool smoke = false;
    const char *out_path = "BENCH_scoring.json";
    for (int i = 1; i < argc; ++i) {
        if (std::string(argv[i]) == "--smoke")
            smoke = true;
        else
            out_path = argv[i];
    }

    const std::size_t vectors = smoke ? 2000 : 20000;
    const std::size_t max_batch = 64;

    bench::banner("BENCH scoring",
                  "async coalesced ScoreServer vs per-call sync "
                  "registry inference (LinnOS MLP, 4 registries)");

    Clock clock;
    gpu::CpuSpec cpu_spec = gpu::CpuSpec::xeonGold6226R();
    ml::KernelCpu kernel_cpu(clock, cpu_spec);
    Rng model_rng(42);
    ml::Mlp model(ml::MlpConfig::linnos(), model_rng);
    ml::CpuMlp mlp(model, kernel_cpu);

    registry::RegistryManager mgr(clock);
    registry::Classifier classify =
        [&mlp](const std::vector<registry::FeatureVector> &fvs) {
            ml::Matrix x = featurize(fvs);
            std::vector<int> c = mlp.classify(x);
            return std::vector<float>(c.begin(), c.end());
        };
    std::vector<std::string> names;
    for (std::size_t d = 0; d < kDevices; ++d) {
        names.push_back("nvme" + std::to_string(d));
        registry::Schema schema;
        schema.add("pend_ios");
        for (const std::string &f : kLatFeature)
            schema.add(f);
        Status st = mgr.createRegistry(names[d], kSys, schema, 8);
        if (!st.isOk()) {
            std::fprintf(stderr, "createRegistry: %s\n",
                         st.toString().c_str());
            return 1;
        }
        st = mgr.find(names[d], kSys)
                 ->registerClassifier(registry::Arch::Cpu, classify);
        if (!st.isOk()) {
            std::fprintf(stderr, "registerClassifier: %s\n",
                         st.toString().c_str());
            return 1;
        }
    }

    // Identical workload for both arms: vectors round-robin across the
    // registries, exactly like per-device I/O completions would. The
    // async arm gets its own same-seed copy so each submission can
    // *move* its vector in — the ownership handoff a capture path
    // would use — without the harness timing a deep copy.
    Rng fv_rng(7);
    std::vector<registry::FeatureVector> workload;
    workload.reserve(vectors);
    for (std::size_t i = 0; i < vectors; ++i)
        workload.push_back(makeFv(fv_rng));
    Rng fv_rng2(7);
    std::vector<registry::FeatureVector> workload2;
    workload2.reserve(vectors);
    for (std::size_t i = 0; i < vectors; ++i)
        workload2.push_back(makeFv(fv_rng2));

    // Untimed warmup vectors: both arms run a few hundred dispatches
    // before their timed loop so neither pays the other's cold caches
    // (the sync arm otherwise runs cold and the async arm warm).
    const std::size_t kWarmup = 512;
    Rng warm_rng(99);
    std::vector<registry::FeatureVector> warm;
    warm.reserve(kWarmup);
    for (std::size_t i = 0; i < kWarmup; ++i)
        warm.push_back(makeFv(warm_rng));

    // ---- sync arm: one scoreFeatures call per vector ----------------
    std::vector<float> sync_scores(vectors);
    std::vector<registry::FeatureVector> one(1);
    for (std::size_t i = 0; i < kWarmup; ++i) {
        registry::Registry *reg = mgr.find(names[i % kDevices], kSys);
        std::swap(one[0], warm[i]);
        reg->scoreFeatures(one, clock.now());
        std::swap(one[0], warm[i]);
    }
    double t0 = now();
    for (std::size_t i = 0; i < vectors; ++i) {
        registry::Registry *reg = mgr.find(names[i % kDevices], kSys);
        std::swap(one[0], workload[i]);
        sync_scores[i] = reg->scoreFeatures(one, clock.now())[0];
        std::swap(one[0], workload[i]);
    }
    double sync_s = now() - t0;
    double sync_rate = static_cast<double>(vectors) / sync_s;

    // ---- async arm: ScoreServer coalesces across the registries -----
    registry::ScoringConfig cfg;
    cfg.enabled = true;
    cfg.max_batch = max_batch;
    cfg.queue_capacity = max_batch * 4;
    cfg.applyEnv();
    Status st = mgr.enableScoring(cfg);
    if (!st.isOk()) {
        std::fprintf(stderr, "enableScoring: %s\n",
                     st.toString().c_str());
        return 1;
    }
    registry::ScoreServer *server = mgr.scorer();

    // One-pointer capture: the completion callback must fit in
    // std::function's inline buffer, or every submit would time a
    // heap allocation that no real instrumentation site pays.
    struct AsyncCtx
    {
        std::size_t scored = 0;
        std::size_t mismatches = 0;
        PercentileTracker queue_us;
        RunningStat batch_sizes;
        const std::vector<float> *expect = nullptr;
    } ctx;
    ctx.expect = &sync_scores;
    for (std::size_t i = 0; i < kWarmup; ++i) {
        std::vector<registry::FeatureVector> sub_fvs;
        sub_fvs.push_back(std::move(warm[i]));
        server->submit(names[i % kDevices], kSys, std::move(sub_fvs), 0,
                       nullptr);
        clock.advance(1_us);
    }
    server->flushAll(clock.now());
    const std::uint64_t warm_flushes = server->flushes();
    t0 = now();
    for (std::size_t i = 0; i < vectors; ++i) {
        std::vector<registry::FeatureVector> sub_fvs;
        sub_fvs.push_back(std::move(workload2[i]));
        Status sub = server->submit(
            names[i % kDevices], kSys, std::move(sub_fvs), 0,
            [&ctx, i](const registry::ScoreResult &r) {
                ++ctx.scored;
                if (!r.status.isOk() || r.scores.size() != 1 ||
                    r.scores[0] != (*ctx.expect)[i])
                    ++ctx.mismatches;
                ctx.queue_us.add(toUs(r.scored - r.enqueued));
                ctx.batch_sizes.add(static_cast<double>(r.batch));
            });
        if (!sub.isOk()) {
            std::fprintf(stderr, "submit %zu: %s\n", i,
                         sub.toString().c_str());
            return 1;
        }
        // Virtual arrival spacing, so queue latency is non-degenerate.
        clock.advance(1_us);
    }
    server->flushAll(clock.now());
    double async_s = now() - t0;
    double async_rate = static_cast<double>(vectors) / async_s;
    double speedup = async_rate / sync_rate;

    std::printf("%-22s %12s %14s %12s\n", "arm", "vectors",
                "vectors/sec", "host sec");
    std::printf("%-22s %12zu %14.0f %12.3f\n", "sync per-call", vectors,
                sync_rate, sync_s);
    std::printf("%-22s %12zu %14.0f %12.3f\n", "async coalesced",
                vectors, async_rate, async_s);
    std::printf("\nspeedup %.2fx   flushes %llu   avg batch %.1f   "
                "p99 queue %.1f us (virtual)   mismatches %zu\n",
                speedup,
                static_cast<unsigned long long>(server->flushes() -
                                                warm_flushes),
                ctx.batch_sizes.mean(), ctx.queue_us.percentile(99.0),
                ctx.mismatches);
    bench::expectation(
        "coalesced batches amortize per-dispatch overhead onto the "
        "blocked GEMM path: >= 3x scored-vectors/sec at "
        "batch-profitable load; enqueue-to-scored virtual latency is "
        "the coalescing wait plus the modeled batch inference time");

    bench::JsonWriter j;
    j.beginObject();
    j.key("bench").value("registry_scoring");
    j.key("smoke").value(smoke ? "true" : "false");
    j.key("config").beginObject();
    j.key("vectors").value(vectors);
    j.key("registries").value(kDevices);
    j.key("max_batch").value(cfg.max_batch);
    j.key("queue_capacity").value(cfg.queue_capacity);
    j.key("max_delay_us").value(
        static_cast<std::size_t>(cfg.max_delay / 1000));
    j.endObject();
    j.key("sync").beginObject();
    j.key("vectors_per_sec").value(sync_rate);
    j.key("host_seconds").value(sync_s);
    j.endObject();
    j.key("async").beginObject();
    j.key("vectors_per_sec").value(async_rate);
    j.key("host_seconds").value(async_s);
    j.key("flushes").value(
        static_cast<std::size_t>(server->flushes() - warm_flushes));
    j.key("avg_batch").value(ctx.batch_sizes.mean());
    j.key("p50_queue_us_virtual").value(ctx.queue_us.percentile(50.0));
    j.key("p99_queue_us_virtual").value(ctx.queue_us.percentile(99.0));
    j.endObject();
    j.key("speedup").value(speedup);
    j.key("scored").value(ctx.scored);
    j.key("mismatches").value(ctx.mismatches);
    bench::provenance(j);
    j.endObject();
    if (!j.writeFile(out_path)) {
        std::fprintf(stderr, "cannot write %s\n", out_path);
        return 1;
    }
    std::printf("wrote %s\n", out_path);

    // The smoke gate is correctness, not speed: every vector scored
    // exactly once, every score identical to its sync counterpart.
    if (ctx.scored != vectors || ctx.mismatches != 0) {
        std::fprintf(stderr,
                     "FAIL: scored %zu/%zu vectors, %zu mismatches\n",
                     ctx.scored, vectors, ctx.mismatches);
        return 1;
    }
    return 0;
}
