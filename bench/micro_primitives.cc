// Host-time microbenchmarks (google-benchmark) for LAKE's core
// primitives: command serialization, the lakeShm allocator, the
// lock-free feature map, the policy VM, the AES-GCM cipher, and the
// full remoted-call path. These measure the *simulator's* real cost,
// complementing the virtual-time figure harnesses.

#include <benchmark/benchmark.h>

#include <vector>

#include "base/lockfree_map.h"
#include "base/ring_buffer.h"
#include "core/lake.h"
#include "crypto/gcm.h"
#include "ml/compute.h"
#include "ml/knn.h"
#include "ml/mlp.h"
#include "policy/bpf.h"
#include "registry/registry.h"
#include "remote/wire.h"
#include "sim/simulator.h"

namespace {

using namespace lake;

void
BM_WireEncodeCommand(benchmark::State &state)
{
    for (auto _ : state) {
        remote::Encoder enc =
            remote::makeCommand(remote::ApiId::CuLaunchKernel, 1);
        enc.str("mlp_forward").u32(4).u32(256).u32(4);
        for (int i = 0; i < 4; ++i)
            enc.u64(0x1000 + i);
        enc.u32(0);
        benchmark::DoNotOptimize(enc.take());
    }
}
BENCHMARK(BM_WireEncodeCommand);

void
BM_WireDecodeCommand(benchmark::State &state)
{
    remote::Encoder enc =
        remote::makeCommand(remote::ApiId::CuLaunchKernel, 1);
    enc.str("mlp_forward").u32(4).u32(256).u32(4);
    for (int i = 0; i < 4; ++i)
        enc.u64(0x1000 + i);
    enc.u32(0);
    std::vector<std::uint8_t> buf = enc.take();

    for (auto _ : state) {
        remote::Decoder dec(buf);
        remote::CommandHead head = remote::readHead(dec);
        benchmark::DoNotOptimize(head);
        std::string kernel = dec.str();
        benchmark::DoNotOptimize(kernel);
        for (int i = 0; i < 3; ++i)
            benchmark::DoNotOptimize(dec.u32());
    }
}
BENCHMARK(BM_WireDecodeCommand);

void
BM_ShmAllocFree(benchmark::State &state)
{
    shm::ShmArena arena(64 << 20);
    std::size_t size = state.range(0);
    for (auto _ : state) {
        shm::ShmOffset off = arena.alloc(size);
        benchmark::DoNotOptimize(off);
        arena.free(off);
    }
}
BENCHMARK(BM_ShmAllocFree)->Arg(64)->Arg(4096)->Arg(1 << 20);

// Best-fit throughput against a fragmented arena: the free list is
// pre-seeded with Arg(0) free blocks of staggered sizes, then the hot
// loop allocs/frees a mid-sized block. The seed allocator scanned the
// whole free list per alloc (O(n) in the block count); the size-ordered
// index makes the flat portion of this curve — check the Arg(16) vs
// Arg(4096) rates.
void
BM_ShmAllocFragmented(benchmark::State &state)
{
    const std::size_t blocks = state.range(0);
    shm::ShmArena arena((blocks + 2) * 8192);

    // Alternate live/dead allocations so the dead ones cannot coalesce:
    // every second block stays allocated, pinning its neighbours apart.
    std::vector<shm::ShmOffset> dead, live;
    for (std::size_t i = 0; i < blocks; ++i) {
        // Varied sizes so the free index holds many distinct keys.
        dead.push_back(arena.alloc(64 + 16 * (i % 128)));
        live.push_back(arena.alloc(64));
    }
    for (shm::ShmOffset off : dead)
        arena.free(off);

    for (auto _ : state) {
        shm::ShmOffset off = arena.alloc(1024);
        benchmark::DoNotOptimize(off);
        arena.free(off);
    }
    state.SetItemsProcessed(state.iterations()); // alloc+free pairs
}
BENCHMARK(BM_ShmAllocFragmented)->Arg(16)->Arg(256)->Arg(4096);

void
BM_LockFreeMapAdd(benchmark::State &state)
{
    LockFreeMap map(64);
    for (auto _ : state)
        benchmark::DoNotOptimize(map.add(42, 1));
}
BENCHMARK(BM_LockFreeMapAdd);

void
BM_RegistryCaptureCommit(benchmark::State &state)
{
    registry::Schema schema;
    schema.add("pend_ios");
    schema.add("lat", 8, 4);
    registry::Registry reg("sda1", "bio", schema, 64);
    reg.beginFvCapture(0);
    Nanos ts = 1;
    for (auto _ : state) {
        reg.captureFeatureIncr("pend_ios", 1);
        reg.captureFeature("lat", 250);
        reg.commitFvCapture(ts++);
    }
}
BENCHMARK(BM_RegistryCaptureCommit);

void
BM_BpfFig3Policy(benchmark::State &state)
{
    policy::BpfVm vm;
    auto prog = policy::buildFig3Program(40.0, 8);
    std::vector<std::uint64_t> ctx(policy::kCtxSlotCount, 0);
    ctx[policy::kCtxBatchSize] = 16;
    ctx[policy::kCtxGpuUtilX100] = 2500;
    for (auto _ : state)
        benchmark::DoNotOptimize(vm.run(prog, ctx));
}
BENCHMARK(BM_BpfFig3Policy);

void
BM_AesGcmEncrypt4K(benchmark::State &state)
{
    std::uint8_t key[32] = {1, 2, 3};
    std::uint8_t iv[12] = {9};
    crypto::AesGcm gcm(key, 32);
    std::vector<std::uint8_t> plain(4096, 0x5a), cipher(4096);
    std::uint8_t tag[16];
    for (auto _ : state) {
        gcm.encrypt(iv, plain.data(), plain.size(), nullptr, 0,
                    cipher.data(), tag);
        benchmark::DoNotOptimize(cipher.data());
    }
    state.SetBytesProcessed(state.iterations() * 4096);
}
BENCHMARK(BM_AesGcmEncrypt4K);

void
BM_MlpForwardLinnos(benchmark::State &state)
{
    Rng rng(1);
    ml::Mlp net(ml::MlpConfig::linnos(), rng);
    ml::Matrix x(state.range(0), 31);
    for (std::size_t i = 0; i < x.size(); ++i)
        x.data()[i] = 0.3f;
    for (auto _ : state)
        benchmark::DoNotOptimize(net.forward(x));
}
BENCHMARK(BM_MlpForwardLinnos)->Arg(1)->Arg(32)->Arg(256);

// Seed scalar affine loop, preserved as the GEMM host-time baseline;
// compare against BM_GemmBlocked256 (ratio is the substrate speedup).
void
BM_GemmScalar256(benchmark::State &state)
{
    const std::size_t n = 256, in = 256, out = 256;
    Rng rng(7);
    std::vector<float> x(n * in), w(out * in), b(out), y(n * out);
    for (float &v : x)
        v = static_cast<float>(rng.uniform(-1.0, 1.0));
    for (float &v : w)
        v = static_cast<float>(rng.uniform(-1.0, 1.0));
    for (auto _ : state) {
        for (std::size_t r = 0; r < n; ++r) {
            const float *xin = x.data() + r * in;
            float *yout = y.data() + r * out;
            for (std::size_t o = 0; o < out; ++o) {
                const float *wrow = w.data() + o * in;
                float acc = b[o];
                for (std::size_t i = 0; i < in; ++i)
                    acc += wrow[i] * xin[i];
                yout[o] = acc;
            }
        }
        benchmark::DoNotOptimize(y.data());
    }
    state.SetItemsProcessed(state.iterations()); // GEMMs
}
BENCHMARK(BM_GemmScalar256);

void
BM_GemmBlocked256(benchmark::State &state)
{
    const std::size_t n = 256, in = 256, out = 256;
    Rng rng(7);
    std::vector<float> x(n * in), w(out * in), b(out), y(n * out);
    for (float &v : x)
        v = static_cast<float>(rng.uniform(-1.0, 1.0));
    for (float &v : w)
        v = static_cast<float>(rng.uniform(-1.0, 1.0));
    for (auto _ : state) {
        ml::compute::affine(x.data(), n, in, w.data(), out, b.data(),
                            y.data());
        benchmark::DoNotOptimize(y.data());
    }
    state.SetItemsProcessed(state.iterations()); // GEMMs
}
BENCHMARK(BM_GemmBlocked256);

// kNN at the Fig. 12 shape (16K refs x 1024 dims, k=16). items/s is
// queries/s for both variants, so the two rates compare directly even
// though the scalar one runs a single query per iteration.
void
BM_KnnScalarQueryFig12(benchmark::State &state)
{
    const std::size_t refs_n = 16384, dim = 1024, k = 16;
    Rng rng(11);
    std::vector<float> ref(dim), q(dim);
    ml::Knn knn(dim, k);
    for (std::size_t r = 0; r < refs_n; ++r) {
        for (float &v : ref)
            v = static_cast<float>(rng.uniform(0.0, 1.0));
        knn.add(ref.data(), static_cast<int>(r % 2));
    }
    for (float &v : q)
        v = static_cast<float>(rng.uniform(0.0, 1.0));
    for (auto _ : state)
        benchmark::DoNotOptimize(knn.classify(q.data()));
    state.SetItemsProcessed(state.iterations()); // queries
}
BENCHMARK(BM_KnnScalarQueryFig12);

void
BM_KnnBatchedFig12(benchmark::State &state)
{
    const std::size_t refs_n = 16384, dim = 1024, k = 16;
    const std::size_t queries_n = 256;
    Rng rng(11);
    std::vector<float> ref(dim), queries(queries_n * dim);
    ml::Knn knn(dim, k);
    for (std::size_t r = 0; r < refs_n; ++r) {
        for (float &v : ref)
            v = static_cast<float>(rng.uniform(0.0, 1.0));
        knn.add(ref.data(), static_cast<int>(r % 2));
    }
    for (float &v : queries)
        v = static_cast<float>(rng.uniform(0.0, 1.0));
    for (auto _ : state)
        benchmark::DoNotOptimize(knn.classifyBatch(queries.data(),
                                                   queries_n));
    state.SetItemsProcessed(state.iterations() * queries_n); // queries
}
BENCHMARK(BM_KnnBatchedFig12);

void
BM_SimulatorEventChurn(benchmark::State &state)
{
    for (auto _ : state) {
        sim::Simulator simr;
        int fired = 0;
        for (int i = 0; i < 1000; ++i)
            simr.schedule(static_cast<Nanos>(i), [&] { ++fired; });
        simr.run();
        benchmark::DoNotOptimize(fired);
    }
}
BENCHMARK(BM_SimulatorEventChurn);

void
BM_FullRemotedMemAlloc(benchmark::State &state)
{
    core::Lake lake;
    for (auto _ : state) {
        gpu::DevicePtr p = 0;
        lake.lib().cuMemAlloc(&p, 4096);
        lake.lib().cuMemFree(p);
        benchmark::DoNotOptimize(p);
    }
}
BENCHMARK(BM_FullRemotedMemAlloc);

} // namespace

BENCHMARK_MAIN();
