// Host-time benchmark of the vectorized ML compute substrate
// (ml/compute.h + base::ThreadPool) against the seed's scalar loops:
//
//  - GEMM: 256x256x256 Matrix::affine-shaped y = x*W^T + b
//  - kNN:  Fig. 12 shape — 4096 queries vs 16384 refs, 1024 dims, k=16
//
// Each is measured at 1, 2 and LAKE_CPU_THREADS (hardware) threads and
// written to BENCH_mlcompute.json so the perf trajectory is tracked
// from this PR onward. These are *host* seconds; the virtual-time
// figure benches are unaffected by any of this machinery.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <vector>

#include "base/rng.h"
#include "base/thread_pool.h"
#include "bench_util.h"
#include "ml/compute.h"
#include "ml/knn.h"

using namespace lake;

namespace {

double
now()
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

/** The seed's scalar affine loop, kept verbatim as the baseline. */
void
scalarAffine(const float *x, std::size_t n, std::size_t in,
             const float *w, std::size_t out, const float *b, float *y)
{
    for (std::size_t r = 0; r < n; ++r) {
        const float *xin = x + r * in;
        float *yout = y + r * out;
        for (std::size_t o = 0; o < out; ++o) {
            const float *wrow = w + o * in;
            float acc = b[o];
            for (std::size_t i = 0; i < in; ++i)
                acc += wrow[i] * xin[i];
            yout[o] = acc;
        }
    }
}

/** Runs @p fn repeatedly for >= @p min_sec; returns seconds per call. */
template <typename Fn>
double
timeIt(Fn &&fn, double min_sec)
{
    fn(); // warm caches and the pool
    double best = 1e300;
    double start = now();
    do {
        double t0 = now();
        fn();
        best = std::min(best, now() - t0);
    } while (now() - start < min_sec);
    return best;
}

/** Thread counts to sweep: 1, 2, and the configured count if distinct. */
std::vector<std::size_t>
threadSweep()
{
    std::vector<std::size_t> t{1, 2};
    std::size_t n = base::ThreadPool::configuredThreads();
    if (n != 1 && n != 2)
        t.push_back(n);
    return t;
}

} // namespace

int
main(int argc, char **argv)
{
    const char *out_path = argc > 1 ? argv[1] : "BENCH_mlcompute.json";
    bench::banner("mlcompute",
                  "host-time GFLOP/s and queries/s of the vectorized "
                  "compute substrate vs the seed scalar loops");

    Rng rng(41);
    bench::JsonWriter json;
    json.beginObject();
    json.key("bench").value("mlcompute");
    bench::provenance(json);
    json.key("unit_note")
        .value("host time; virtual-time figure benches are unaffected");

    // --- GEMM: 256 x 256 x 256 --------------------------------------
    {
        const std::size_t n = 256, in = 256, out = 256;
        const double flops = 2.0 * n * in * out;
        std::vector<float> x(n * in), w(out * in), b(out), y(n * out);
        for (float &v : x)
            v = static_cast<float>(rng.uniform(-1.0, 1.0));
        for (float &v : w)
            v = static_cast<float>(rng.uniform(-1.0, 1.0));
        for (float &v : b)
            v = static_cast<float>(rng.uniform(-1.0, 1.0));

        double scalar_s = timeIt(
            [&] {
                scalarAffine(x.data(), n, in, w.data(), out, b.data(),
                             y.data());
            },
            1.0);
        double scalar_gflops = flops / scalar_s / 1e9;
        std::printf("%-28s %10.2f GFLOP/s\n", "GEMM 256^3 seed scalar",
                    scalar_gflops);

        json.key("gemm").beginObject();
        json.key("n").value(n).key("in").value(in).key("out").value(out);
        json.key("scalar_gflops").value(scalar_gflops);
        json.key("blocked").beginArray();
        for (std::size_t threads : threadSweep()) {
            base::ThreadPool::resetGlobal(threads);
            double s = timeIt(
                [&] {
                    ml::compute::affine(x.data(), n, in, w.data(), out,
                                        b.data(), y.data());
                },
                1.0);
            double gflops = flops / s / 1e9;
            std::printf("GEMM 256^3 blocked @%zu thr %8.2f GFLOP/s "
                        "(%.1fx)\n",
                        threads, gflops, scalar_s / s);
            json.beginObject();
            json.key("threads").value(threads);
            json.key("gflops").value(gflops);
            json.key("speedup_vs_scalar").value(scalar_s / s);
            json.endObject();
        }
        json.endArray().endObject();
    }

    // --- kNN: Fig. 12 shape -----------------------------------------
    {
        const std::size_t refs_n = 16384, dim = 1024, k = 16;
        const std::size_t queries_n = 4096;
        // The scalar baseline is ~40x slower, so it scans a query
        // subset; per-query cost is constant, making rates comparable.
        const std::size_t scalar_queries = 48;

        std::vector<float> refs(refs_n * dim), queries(queries_n * dim);
        for (float &v : refs)
            v = static_cast<float>(rng.uniform(0.0, 1.0));
        for (float &v : queries)
            v = static_cast<float>(rng.uniform(0.0, 1.0));
        ml::Knn knn(dim, k);
        for (std::size_t r = 0; r < refs_n; ++r)
            knn.add(refs.data() + r * dim, static_cast<int>(r % 2));

        double scalar_s = now();
        for (std::size_t q = 0; q < scalar_queries; ++q)
            knn.classify(queries.data() + q * dim);
        scalar_s = (now() - scalar_s) /
                   static_cast<double>(scalar_queries);
        double scalar_qps = 1.0 / scalar_s;
        std::printf("%-28s %10.1f queries/s\n",
                    "kNN fig12 seed scalar", scalar_qps);

        json.key("knn").beginObject();
        json.key("queries").value(queries_n);
        json.key("refs").value(refs_n);
        json.key("dim").value(dim);
        json.key("k").value(k);
        json.key("scalar_sampled_queries").value(scalar_queries);
        json.key("scalar_qps").value(scalar_qps);
        json.key("batched").beginArray();
        for (std::size_t threads : threadSweep()) {
            base::ThreadPool::resetGlobal(threads);
            double t0 = now();
            auto labels = knn.classifyBatch(queries.data(), queries_n);
            double s = (now() - t0) / static_cast<double>(queries_n);
            double qps = 1.0 / s;
            std::printf("kNN fig12 batched @%zu thr %9.1f queries/s "
                        "(%.1fx)\n",
                        threads, qps, scalar_s / s);
            json.beginObject();
            json.key("threads").value(threads);
            json.key("qps").value(qps);
            json.key("speedup_vs_scalar").value(scalar_s / s);
            json.endObject();
        }
        json.endArray().endObject();
    }

    base::ThreadPool::resetGlobal(0);
    json.endObject();
    bool wrote = json.writeFile(out_path);
    if (!wrote)
        std::fprintf(stderr, "failed to write %s\n", out_path);
    else
        std::printf("\nwrote %s\n", out_path);

    bench::expectation(
        "blocked GEMM >= 4x the seed scalar loop at 256^3 and batched "
        "kNN >= 3x at the Fig. 12 shape, single-threaded; more with "
        "threads on multi-core hosts");
    return wrote ? 0 : 1;
}
