// Reproduces Fig. 7: average read latency of five workloads on a
// 3-NVMe array without I/O rerouting (baseline), with LinnOS-style
// rerouting through CPU inference, and with LAKE's batched CPU/GPU
// inference — for the original NN and the +1/+2 augmented models.
//
// Workloads: each named trace replayed on every NVMe ("Azure*",
// "Cosmos*", "Bing-I*"), a mixed workload with a different trace per
// device, and "Mixed+" with every trace re-rated to 3x IOPS.

#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "obs/obs.h"
#include "storage/e2e.h"
#include "storage/linnos.h"

using namespace lake;
using namespace lake::storage;

int
main()
{
    bench::banner("Fig. 7",
                  "end-to-end average read latency (us) with ML-driven "
                  "I/O rerouting");

    const Nanos kDuration = 400_ms;

    // Train the three model variants on a stressed workload trace, the
    // paper's offline-training step.
    Rng rng(2023);
    LinnosDataset train = collectLinnosData(
        TraceSpec::azure().rerated(3.0), NvmeSpec::samsung980Pro(),
        600_ms, 0.85, 7);
    std::vector<ml::Mlp> models;
    for (std::size_t extra = 0; extra <= 2; ++extra)
        models.push_back(trainLinnosModel(train, extra, 5, 0.05f, rng));
    const std::size_t gpu_threshold[3] = {8, 3, 2}; // Fig. 8 crossovers

    struct Workload
    {
        const char *name;
        std::vector<TraceSpec> traces;
    };
    std::vector<Workload> workloads = {
        {"Azure*", {TraceSpec::azure(), TraceSpec::azure(),
                    TraceSpec::azure()}},
        {"Cosmos*", {TraceSpec::cosmos(), TraceSpec::cosmos(),
                     TraceSpec::cosmos()}},
        {"Bing-I*", {TraceSpec::bingI(), TraceSpec::bingI(),
                     TraceSpec::bingI()}},
        {"Mixed", {TraceSpec::azure(), TraceSpec::bingI(),
                   TraceSpec::cosmos()}},
        {"Mixed+", {TraceSpec::azure().rerated(3.0),
                    TraceSpec::bingI().rerated(3.0),
                    TraceSpec::cosmos().rerated(3.0)}},
    };

    std::printf("%-9s %9s", "workload", "Baseline");
    for (const char *col : {"NN cpu", "NN LAKE", "NN+1cpu", "NN+1LAKE",
                            "NN+2cpu", "NN+2LAKE"})
        std::printf(" %9s", col);
    std::printf("  (reroute%%/gpu-batch%%)\n");

    for (const Workload &w : workloads) {
        E2eConfig base;
        base.mode = E2eMode::Baseline;
        base.duration = kDuration;
        base.threshold_us = train.threshold_us;
        E2eResult br = runE2e(w.traces, base);
        std::printf("%-9s %9.1f", w.name, br.avg_read_lat_us);

        double last_reroute = 0.0, last_gpu = 0.0;
        for (std::size_t v = 0; v < models.size(); ++v) {
            for (E2eMode mode : {E2eMode::CpuNn, E2eMode::LakeNn}) {
                E2eConfig cfg = base;
                cfg.mode = mode;
                cfg.model = &models[v];
                cfg.gpu_batch_threshold = gpu_threshold[v];
                E2eResult r = runE2e(w.traces, cfg);
                std::printf(" %9.1f", r.avg_read_lat_us);
                if (mode == E2eMode::LakeNn) {
                    last_reroute =
                        r.reads ? 100.0 * static_cast<double>(
                                              r.rerouted) /
                                      static_cast<double>(r.reads)
                                : 0.0;
                    last_gpu = r.inference_batches
                                   ? 100.0 *
                                         static_cast<double>(
                                             r.gpu_batches) /
                                         static_cast<double>(
                                             r.inference_batches)
                                   : 0.0;
                }
            }
        }
        std::printf("  (%.1f%%/%.0f%%)\n", last_reroute, last_gpu);
    }

    // Opt-in streamed arm (LAKE_STREAMS=K): reruns the NN-LAKE column
    // with the streaming DMA orchestrator (DESIGN.md §10) splitting
    // each inference batch across K streams with pooled buffers.
    // Nothing prints unless the environment asks, so the default
    // stdout stays byte-identical.
    remote::StreamingConfig scfg;
    scfg.applyEnv();
    if (scfg.enabled) {
        std::printf("\nstreaming DMA arm (LAKE_STREAMS=%u)\n",
                    scfg.streams);
        std::printf("%-9s %9s %9s\n", "workload", "NN LAKE", "NN strm");
        for (const Workload &w : workloads) {
            E2eConfig cfg;
            cfg.mode = E2eMode::LakeNn;
            cfg.duration = kDuration;
            cfg.threshold_us = train.threshold_us;
            cfg.model = &models[0];
            cfg.gpu_batch_threshold = gpu_threshold[0];
            E2eResult plain = runE2e(w.traces, cfg);
            cfg.streaming = scfg;
            E2eResult strm = runE2e(w.traces, cfg);
            std::printf("%-9s %9.1f %9.1f\n", w.name,
                        plain.avg_read_lat_us, strm.avg_read_lat_us);
        }
    }

    bench::expectation(
        "single-trace workloads on modern NVMes see little or no "
        "benefit (the NN cost can even hurt); mixed workloads that "
        "stress devices in dissimilar ways improve under both LinnOS "
        "and LAKE, and the ML benefit is preserved under GPU "
        "acceleration; LAKE gains on high-IOPS workloads from batching");

    // Opt-in tracing: when LAKE_OBS_TRACE names a file, the Lake
    // instances runE2e boots recorded the remoting lifecycle (the
    // configure() env hook enables the tracer); dump the Chrome trace
    // there. Reported on stderr so stdout stays byte-identical.
    if (const char *trace_path = obs::envTracePath()) {
        Status s = obs::writeChromeTrace(trace_path);
        std::fprintf(stderr, "%s\n",
                     s.isOk() ? (std::string("wrote trace ") + trace_path)
                                    .c_str()
                              : s.message().c_str());
    }
    return 0;
}
