// Reproduces Fig. 10: time taken to predict load-balancing decisions
// using MLLB for variable batch sizes (CPU, LAKE with pre-staged data,
// LAKE with synchronous copies).

#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "core/lake.h"
#include "ml/backends.h"
#include "sched/mllb.h"

using namespace lake;

int
main()
{
    bench::banner("Fig. 10",
                  "MLLB load-balance inference time vs batch size (us)");

    core::Lake lake;
    Rng rng(17);

    // A trained model, produced the way the paper's MLLB port was:
    // offline against observed balancing decisions.
    auto data = sched::buildMllbDataset(4000, 16, 5.0, rng);
    ml::Mlp model = sched::trainMllbModel(data, 12, 0.05f, rng);

    ml::CpuMlp cpu(model, lake.kernelCpu());
    ml::LakeMlp gpu(model, lake.lib(), false, 1024);
    ml::LakeMlp gpu_sync(model, lake.lib(), true, 1024);

    std::printf("%-7s %11s %11s %13s\n", "tasks", "CPU", "LAKE",
                "LAKE (sync.)");
    for (std::size_t batch : {1u,  2u,  4u,   8u,   16u, 32u,
                              64u, 128u, 256u, 512u, 1024u}) {
        ml::Matrix x(batch, sched::kMllbFeatures);
        for (std::size_t i = 0; i < x.size(); ++i)
            x.data()[i] = static_cast<float>(rng.uniform(0.0, 1.0));

        Nanos t0 = lake.clock().now();
        cpu.classify(x);
        double cpu_us = toUs(lake.clock().now() - t0);

        t0 = lake.clock().now();
        gpu.classify(x);
        double gpu_us = toUs(lake.clock().now() - t0);

        t0 = lake.clock().now();
        gpu_sync.classify(x);
        double sync_us = toUs(lake.clock().now() - t0);

        std::printf("%-7zu %11.1f %11.1f %13.1f\n", batch, cpu_us,
                    gpu_us, sync_us);
    }

    bench::expectation(
        "GPU profitable only past ~256 tasks (the model is tiny, so the "
        "CPU stays cheap); current many-core servers easily exceed that "
        "threshold (90% of Google servers ran up to 4500 threads)");
    return 0;
}
