#!/usr/bin/env bash
# One-command sanitizer run for the LAKE test suite.
#
#   bench/sanitize.sh [thread|address|undefined|address+undefined] [ctest args...]
#
# Configures a dedicated build tree under build-san-<name>/, builds the
# tests, and runs ctest. Extra arguments go to ctest verbatim, so
#
#   bench/sanitize.sh address -L faults
#
# runs just the fault-injection / malformed-command corpus under ASan.
set -euo pipefail

SAN="${1:-address}"
shift || true

case "$SAN" in
    thread|address|undefined|address+undefined) ;;
    *)
        echo "usage: $0 [thread|address|undefined|address+undefined] [ctest args...]" >&2
        exit 2
        ;;
esac

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
# '+' is awkward in directory names; normalize for the build tree only.
BUILD="$ROOT/build-san-${SAN//+/-}"

cmake -S "$ROOT" -B "$BUILD" -DCMAKE_BUILD_TYPE=RelWithDebInfo \
      -DLAKE_SANITIZE="$SAN"
cmake --build "$BUILD" -j "$(nproc)"
ctest --test-dir "$BUILD" --output-on-failure "$@"

# Smoke-size perf benches (ctest -L perf), e.g. the remoting-pipeline
# bench: under sanitizers the timings are meaningless, but the runs
# drive the batched fast path end to end, so a wire/allocator bug
# surfaces here even if no unit test names it.
ctest --test-dir "$BUILD" --output-on-failure -L perf

# The observability suite (ctest -L obs) exercises the tracer's
# cross-thread ring merge and the lock-free metrics families — exactly
# the code TSan/ASan should sweep even though the default-off path
# makes it invisible to the rest of the suite.
ctest --test-dir "$BUILD" --output-on-failure -L obs

# The registry suite (ctest -L registry) hammers multi-threaded
# capture-while-commit and concurrent ScoreServer submission — the
# lock-free capture map plus the scoring service's two-lock flush path
# are precisely what `bench/sanitize.sh thread` exists to sweep.
ctest --test-dir "$BUILD" --output-on-failure -L registry

# The streaming-DMA suite (ctest -L dma) drives the buffer pool's
# recycle/credit paths, the fault-injected sync that must release
# credits without leaking, and the dma_streaming smoke bench — the
# carve-out arithmetic and retire-on-failure path are what ASan/UBSan
# should sweep here.
ctest --test-dir "$BUILD" --output-on-failure -L dma

# The serving suite (ctest -L serve) runs the open-loop traffic
# generator with offer() and pump() racing from multiple threads
# against the ScoreServer's inline flush — the generator's
# pick-under-lock/submit-outside-lock dance and the completion
# callbacks re-entering its mutex are what `bench/sanitize.sh thread`
# exists to sweep, and the serve_slo smoke adds a full admission +
# DRR + shed sweep on top.
ctest --test-dir "$BUILD" --output-on-failure -L serve

# The SoA data-plane suite (ctest -L soa) stresses the columnar
# capture plane: relaxed-atomic column lanes written from many threads
# while a capture is open, slot recycling deferred behind pinned batch
# views across window wraps and truncates, and the registry_scoring
# smoke's capture→commit→submitView fast path — the atomic_ref lanes
# and the pin/unpin lifecycle are exactly what `bench/sanitize.sh
# thread -L soa` (and ASan for the shm carve-out arithmetic) exist to
# sweep.
ctest --test-dir "$BUILD" --output-on-failure -L soa

# The fleet suite (ctest -L fleet) runs K lakeD shards dispatching
# concurrently from per-thread serving stacks through the shared
# FleetRouter — the policy-mutex/shard-mutex lock order, the relaxed
# pending-depth atomics, and the per-shard health latches are what
# `bench/sanitize.sh thread -L fleet` exists to sweep, and the
# fleet_scaling smoke adds the CuSetDevice muxing path under load.
ctest --test-dir "$BUILD" --output-on-failure -L fleet
