// Reproduces Fig. 9: time to predict page warmth through Kleio (the
// 2-layer-LSTM TensorFlow model) for variable batch sizes, via LAKE's
// high-level API. Data movement is synchronous inside the TF-style
// handler, hence a single "LAKE (sync.)" series, as in the paper; a
// TF-on-CPU reference line shows why Table 3 puts the crossover at 1.

#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "core/lake.h"
#include "mem/pagewarmth.h"
#include "ml/backends.h"

using namespace lake;

int
main()
{
    bench::banner("Fig. 9",
                  "Kleio page-warmth inference time vs batch size (ms)");

    core::Lake lake;
    Rng rng(13);

    ml::LstmConfig cfg = ml::LstmConfig::kleio();
    ml::Lstm model(cfg, rng);
    ml::KleioService kleio(lake.daemon(), model);

    // TF-on-CPU reference: same runtime overheads, CPU-rate compute.
    double cpu_ms_per_page =
        toMs(static_cast<Nanos>(model.flopsPerSample() /
                                lake.config().cpu.effective_gflops));

    std::printf("%-8s %14s %14s\n", "pages", "LAKE (sync.)",
                "TF-CPU (ref)");
    for (std::size_t pages = 20; pages <= 1160; pages += 120) {
        auto histories = mem::generatePageHistories(pages, cfg.seq_len,
                                                    rng);
        std::vector<float> batch =
            mem::toLstmBatch(histories, cfg.seq_len);

        Nanos t0 = lake.clock().now();
        kleio.classify(lake.lib(), batch, pages);
        double lake_ms = toMs(lake.clock().now() - t0);

        double cpu_ms = toMs(ml::KleioService::kTfCallOverhead) +
                        cpu_ms_per_page * static_cast<double>(pages);
        std::printf("%-8zu %14.1f %14.1f\n", pages, lake_ms, cpu_ms);
    }

    bench::expectation(
        "LAKE grows from ~100 ms at 20 pages to ~300 ms at 1160 (fixed "
        "TF invocation overhead plus per-page graph executions); the "
        "CPU runtime is slower at every batch, so the crossover is 1");
    return 0;
}
