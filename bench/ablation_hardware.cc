// Ablations for the design choices DESIGN.md calls out, centred on the
// paper's hardware-evolution finding (§7.1): ML profitability is
// hardware-dependent. Three sweeps:
//
//  (a) GPU generation: the LinnOS crossover point on the testbed A100
//      versus a modest PCIe-3.0 part (higher overheads shift the
//      crossover right).
//  (b) Storage generation: the end-to-end benefit of rerouting on
//      LinnOS-era enterprise SSDs versus modern 980 Pros (the original
//      LinnOS result re-emerges on old devices).
//  (c) Transport choice: the cost of one remoted inference over each
//      §6 channel (why LAKE picked Netlink).

#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "core/lake.h"
#include "ml/backends.h"
#include "storage/e2e.h"
#include "storage/linnos.h"

using namespace lake;

namespace {

std::size_t
crossoverOn(core::Lake &lake, Rng &rng)
{
    ml::Mlp model(ml::MlpConfig::linnos(), rng);
    ml::CpuMlp cpu(model, lake.kernelCpu());
    ml::LakeMlp gpu(model, lake.lib(), false, 1024);
    for (std::size_t b = 1; b <= 256; ++b) {
        ml::Matrix x(b, 31);
        Nanos t0 = lake.clock().now();
        cpu.classify(x);
        Nanos cpu_t = lake.clock().now() - t0;
        t0 = lake.clock().now();
        gpu.classify(x);
        Nanos gpu_t = lake.clock().now() - t0;
        if (gpu_t < cpu_t)
            return b;
    }
    return 0;
}

} // namespace

int
main()
{
    bench::banner("Ablations",
                  "hardware-dependence of ML profitability (§7.1) and "
                  "transport choice (§6)");

    Rng rng(3);

    // ---- (a) GPU generation ------------------------------------------
    std::printf("(a) LinnOS-NN crossover batch by accelerator:\n");
    {
        core::Lake a100;
        std::printf("    %-36s %zu\n", a100.device().spec().name.c_str(),
                    crossoverOn(a100, rng));

        core::LakeConfig cfg;
        cfg.device = gpu::DeviceSpec::modest();
        core::Lake modest(cfg);
        std::printf("    %-36s %zu\n",
                    modest.device().spec().name.c_str(),
                    crossoverOn(modest, rng));
    }

    // ---- (b) storage generation ----------------------------------------
    std::printf("\n(b) end-to-end rerouting benefit by SSD generation "
                "(Azure* on every device, avg read latency, us):\n");
    {
        // Uniform workload (the same trace on every device): rerouting
        // can only win by dodging *transient* per-device slowness.
        std::vector<storage::TraceSpec> uniform(
            3, storage::TraceSpec::azure());

        std::printf("    %-28s %10s %10s %9s\n", "device", "baseline",
                    "NN cpu", "change");
        for (bool modern : {false, true}) {
            storage::NvmeSpec dev =
                modern ? storage::NvmeSpec::samsung980Pro()
                       : storage::NvmeSpec::enterprise2019();

            storage::LinnosDataset data = storage::collectLinnosData(
                storage::TraceSpec::azure().rerated(modern ? 3.0 : 1.0),
                dev, 600_ms, 0.85, 7);
            Rng trng(5);
            ml::Mlp model =
                storage::trainLinnosModel(data, 0, 5, 0.05f, trng);

            storage::E2eConfig cfg;
            cfg.duration = 300_ms;
            cfg.device = dev;
            cfg.mode = storage::E2eMode::Baseline;
            storage::E2eResult base = storage::runE2e(uniform, cfg);
            cfg.mode = storage::E2eMode::CpuNn;
            cfg.model = &model;
            storage::E2eResult nn = storage::runE2e(uniform, cfg);

            std::printf("    %-28s %10.1f %10.1f %8.1f%%\n",
                        dev.name.c_str(), base.avg_read_lat_us,
                        nn.avg_read_lat_us,
                        100.0 * (nn.avg_read_lat_us /
                                     base.avg_read_lat_us -
                                 1.0));
        }
    }

    // ---- (c') ML-use modulation (§7.1 future work) ---------------------
    std::printf("\n(c) MlGate: avg read latency (us) on a device with "
                "no learnable slowness:\n");
    {
        std::vector<storage::TraceSpec> calm(
            3, storage::TraceSpec::bingI());
        storage::NvmeSpec placid = storage::NvmeSpec::samsung980Pro();
        placid.gc_trigger_bytes = ~0ull >> 1; // storms off
        placid.write_interference = 0.0;
        placid.tail_prob = 0.0;

        storage::LinnosDataset data = storage::collectLinnosData(
            storage::TraceSpec::azure().rerated(3.0),
            storage::NvmeSpec::samsung980Pro(), 400_ms, 0.85, 7);
        Rng trng(9);
        ml::Mlp model =
            storage::trainLinnosModel(data, 0, 4, 0.05f, trng);

        storage::E2eConfig cfg;
        cfg.duration = 300_ms;
        cfg.device = placid;
        cfg.model = &model;
        cfg.gate.window = 128;
        cfg.gate.min_positive_rate = 0.02;

        for (storage::E2eMode mode :
             {storage::E2eMode::Baseline, storage::E2eMode::LakeNn,
              storage::E2eMode::LakeAdaptive}) {
            cfg.mode = mode;
            storage::E2eResult r = storage::runE2e(calm, cfg);
            std::printf("    %-14s %8.1f", storage::e2eModeName(mode),
                        r.avg_read_lat_us);
            if (mode == storage::E2eMode::LakeAdaptive) {
                std::printf("   (gate closed %zux, %llu reads skipped "
                            "inference)",
                            static_cast<std::size_t>(r.gate_closures),
                            static_cast<unsigned long long>(
                                r.gated_batches));
            }
            std::printf("\n");
        }
    }

    // ---- (d) transport choice ------------------------------------------
    std::printf("\n(d) one remoted batch-32 inference by command "
                "transport (us):\n");
    for (channel::Kind kind :
         {channel::Kind::Signal, channel::Kind::DevRw,
          channel::Kind::Netlink, channel::Kind::Mmap}) {
        core::LakeConfig cfg;
        cfg.channel = kind;
        core::Lake lake(cfg);
        ml::Mlp model(ml::MlpConfig::linnos(), rng);
        ml::LakeMlp gpu(model, lake.lib(), false, 32);
        ml::Matrix x(32, 31);

        Nanos t0 = lake.clock().now();
        gpu.classify(x);
        std::printf("    %-12s %8.1f%s\n", channel::kindName(kind),
                    toUs(lake.clock().now() - t0),
                    channel::defaultModel(kind).spins
                        ? "   (burns a CPU spinning)"
                        : "");
    }

    bench::expectation(
        "(a) older GPUs shift the crossover right (acceleration pays "
        "off later); (b) on LinnOS-era SSDs rerouting slashes average "
        "latency — the original LinnOS result — while modern devices "
        "absorb the load and shrink the benefit; (c) the modulation "
        "gate recovers the baseline when ML cannot help (the paper's "
        "§7.1 future work); (d) Netlink is the fastest transport that "
        "does not spin");
    return 0;
}
