#ifndef LAKE_BENCH_BENCH_UTIL_H
#define LAKE_BENCH_BENCH_UTIL_H

/**
 * @file
 * Shared output helpers for the figure/table reproduction harnesses.
 * Every bench prints a self-describing header naming the paper artifact
 * it regenerates, then fixed-width rows that read like the original.
 * JsonWriter additionally emits machine-readable result files
 * (BENCH_<name>.json) so perf trajectories can be tracked across PRs.
 */

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

namespace lake::bench {

/** Prints the banner naming the reproduced artifact. */
inline void
banner(const char *artifact, const char *description)
{
    std::printf("==============================================================================\n");
    std::printf("%s — %s\n", artifact, description);
    std::printf("==============================================================================\n");
}

/** Prints a footer summarizing the expected shape from the paper. */
inline void
expectation(const char *text)
{
    std::printf("------------------------------------------------------------------------------\n");
    std::printf("paper shape: %s\n\n", text);
}

/**
 * Minimal streaming JSON writer: enough for flat-ish benchmark result
 * objects, with correct comma placement and number formatting. Usage:
 *
 *   JsonWriter j;
 *   j.beginObject();
 *   j.key("gflops").value(12.5);
 *   j.key("runs").beginArray().value(1).value(2).endArray();
 *   j.endObject();
 *   j.writeFile("BENCH_foo.json");
 */
class JsonWriter
{
  public:
    JsonWriter() { comma_.push_back(false); }

    JsonWriter &
    beginObject()
    {
        sep();
        out_ += '{';
        comma_.push_back(false);
        return *this;
    }

    JsonWriter &
    endObject()
    {
        out_ += '}';
        comma_.pop_back();
        return *this;
    }

    JsonWriter &
    beginArray()
    {
        sep();
        out_ += '[';
        comma_.push_back(false);
        return *this;
    }

    JsonWriter &
    endArray()
    {
        out_ += ']';
        comma_.pop_back();
        return *this;
    }

    /** Emits an object key; the next value belongs to it. */
    JsonWriter &
    key(const char *k)
    {
        sep();
        quoted(k);
        out_ += ':';
        pending_key_ = true;
        return *this;
    }

    JsonWriter &
    value(double v)
    {
        sep();
        char buf[40];
        std::snprintf(buf, sizeof(buf), "%.6g", v);
        out_ += buf;
        return *this;
    }

    JsonWriter &
    value(std::size_t v)
    {
        sep();
        out_ += std::to_string(v);
        return *this;
    }

    JsonWriter &
    value(const char *s)
    {
        sep();
        quoted(s);
        return *this;
    }

    /**
     * Splices pre-serialized JSON in as a value, verbatim. Lets a
     * harness embed a document produced elsewhere (e.g. the
     * obs::metricsJsonObject() block) without re-walking it.
     */
    JsonWriter &
    rawValue(const std::string &json)
    {
        sep();
        out_ += json;
        return *this;
    }

    /** The serialized document so far. */
    const std::string &str() const { return out_; }

    /** Writes the document to @p path. @return false on I/O failure. */
    bool
    writeFile(const char *path) const
    {
        std::FILE *f = std::fopen(path, "w");
        if (!f)
            return false;
        bool ok = std::fwrite(out_.data(), 1, out_.size(), f) ==
                  out_.size();
        ok = std::fputc('\n', f) != EOF && ok;
        ok = std::fclose(f) == 0 && ok;
        return ok;
    }

  private:
    void
    sep()
    {
        if (pending_key_) {
            pending_key_ = false;
            return;
        }
        if (comma_.back())
            out_ += ',';
        comma_.back() = true;
    }

    void
    quoted(const char *s)
    {
        out_ += '"';
        for (; *s; ++s) {
            if (*s == '"' || *s == '\\')
                out_ += '\\';
            out_ += *s;
        }
        out_ += '"';
    }

    std::string out_;
    std::vector<char> comma_; ///< per-nesting "needs a comma" flag
    bool pending_key_ = false;
};

// Build provenance, stamped by bench/CMakeLists.txt at configure time.
// The fallbacks keep the header usable outside that build (e.g. a
// hand-compiled bench), clearly marked as unstamped.
#ifndef LAKE_BUILD_GIT_REV
#define LAKE_BUILD_GIT_REV "unknown"
#endif
#ifndef LAKE_BUILD_TYPE
#define LAKE_BUILD_TYPE "unknown"
#endif
#ifndef LAKE_BUILD_FLAGS
#define LAKE_BUILD_FLAGS "unknown"
#endif
#ifndef LAKE_BUILD_NATIVE_ARCH
#define LAKE_BUILD_NATIVE_ARCH "unknown"
#endif

/**
 * Appends a "build" object recording how this binary was produced:
 * compiler, flags, build type, LAKE_NATIVE_ARCH, the git revision the
 * tree was configured at, and the LAKE_CPU_THREADS environment in
 * force. Every BENCH_*.json carries it so two result files can be
 * compared knowing whether the toolchain or ISA tuning moved between
 * them (a real trap: an -march=native binary vs a portable one differ
 * 2x on SIMD-heavy paths with zero source change).
 */
inline JsonWriter &
provenance(JsonWriter &j)
{
    j.key("build").beginObject();
    j.key("compiler").value(__VERSION__);
    j.key("build_type").value(LAKE_BUILD_TYPE);
    j.key("flags").value(LAKE_BUILD_FLAGS);
    j.key("native_arch").value(LAKE_BUILD_NATIVE_ARCH);
    j.key("git_rev").value(LAKE_BUILD_GIT_REV);
    const char *threads = std::getenv("LAKE_CPU_THREADS");
    j.key("lake_cpu_threads").value(threads && *threads ? threads
                                                        : "default");
    j.endObject();
    return j;
}

} // namespace lake::bench

#endif // LAKE_BENCH_BENCH_UTIL_H
