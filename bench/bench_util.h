#ifndef LAKE_BENCH_BENCH_UTIL_H
#define LAKE_BENCH_BENCH_UTIL_H

/**
 * @file
 * Shared output helpers for the figure/table reproduction harnesses.
 * Every bench prints a self-describing header naming the paper artifact
 * it regenerates, then fixed-width rows that read like the original.
 */

#include <cstdio>
#include <string>

namespace lake::bench {

/** Prints the banner naming the reproduced artifact. */
inline void
banner(const char *artifact, const char *description)
{
    std::printf("==============================================================================\n");
    std::printf("%s — %s\n", artifact, description);
    std::printf("==============================================================================\n");
}

/** Prints a footer summarizing the expected shape from the paper. */
inline void
expectation(const char *text)
{
    std::printf("------------------------------------------------------------------------------\n");
    std::printf("paper shape: %s\n\n", text);
}

} // namespace lake::bench

#endif // LAKE_BENCH_BENCH_UTIL_H
