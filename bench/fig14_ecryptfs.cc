// Reproduces Fig. 14: I/O throughput of the AES-GCM eCryptfs across
// block sizes, encrypting/decrypting on the CPU, with AES-NI, on a GPU
// through LAKE, and with GPU+AES-NI combined.

#include <cstdio>
#include <memory>
#include <vector>

#include "bench_util.h"
#include "core/lake.h"
#include "crypto/engines.h"
#include "fs/ecryptfs.h"

using namespace lake;

namespace {

constexpr std::size_t kFileBytes = 8 << 20;

struct Throughput
{
    double write_mbps;
    double read_mbps;
};

Throughput
measure(crypto::CipherEngine &engine, Clock &clock,
        std::size_t block_bytes, const std::vector<std::uint8_t> &data)
{
    fs::ECryptFs fs(engine, clock, fs::LowerFsModel::testbed(),
                    block_bytes);
    Nanos t0 = clock.now();
    Status st = fs.writeFile("/bench", data.data(), data.size());
    LAKE_ASSERT(st.isOk(), "write failed");
    double write_s = toSec(clock.now() - t0);

    t0 = clock.now();
    auto back = fs.readFile("/bench");
    LAKE_ASSERT(back.isOk(), "read failed");
    LAKE_ASSERT(back.value() == data, "data corrupted");
    double read_s = toSec(clock.now() - t0);

    double mb = static_cast<double>(data.size()) / 1e6;
    return {mb / write_s, mb / read_s};
}

} // namespace

int
main()
{
    bench::banner("Fig. 14",
                  "eCryptfs sequential throughput (MB/s) vs block size "
                  "and cipher engine");

    core::Lake lake;
    std::uint8_t key[32];
    for (int i = 0; i < 32; ++i)
        key[i] = static_cast<std::uint8_t>(i * 7 + 3);
    gpu::CpuSpec cpu_spec = lake.config().cpu;

    std::vector<std::uint8_t> data(kFileBytes);
    for (std::size_t i = 0; i < data.size(); ++i)
        data[i] = static_cast<std::uint8_t>(i * 131 + 17);

    crypto::CpuCipher cpu(key, 32, lake.clock(), cpu_spec);
    crypto::AesNiCipher ni(key, 32, lake.clock(), cpu_spec);
    crypto::LakeGpuCipher gpu(key, 32, lake.lib(), 4 << 20);
    crypto::HybridCipher hybrid(key, 32, lake.lib(), lake.clock(),
                                cpu_spec, 4 << 20);

    std::printf("%-8s | %8s %8s | %8s %8s | %8s %8s | %8s %8s\n",
                "block", "CPU rd", "CPU wr", "NI rd", "NI wr",
                "LAKE rd", "LAKE wr", "HYB rd", "HYB wr");

    for (std::size_t block = 4 << 10; block <= (4u << 20); block *= 2) {
        Throughput c = measure(cpu, lake.clock(), block, data);
        Throughput n = measure(ni, lake.clock(), block, data);
        Throughput g = measure(gpu, lake.clock(), block, data);
        Throughput h = measure(hybrid, lake.clock(), block, data);
        std::printf(
            "%5zuK   | %8.0f %8.0f | %8.0f %8.0f | %8.0f %8.0f "
            "| %8.0f %8.0f\n",
            block / 1024, c.read_mbps, c.write_mbps, n.read_mbps,
            n.write_mbps, g.read_mbps, g.write_mbps, h.read_mbps,
            h.write_mbps);
    }

    // Opt-in streamed arm (LAKE_STREAMS=K): reruns the LAKE column
    // with the cipher's batched path — extents pipelined depth-1
    // across K streams from pooled [ctl|data] slots, double-buffered
    // against the lower FS (DESIGN.md §10). Prints nothing unless the
    // environment asks, so the default stdout stays byte-identical.
    remote::StreamingConfig scfg;
    scfg.applyEnv();
    if (scfg.enabled) {
        remote::StreamOrchestrator orch(lake.lib(), lake.clock(), scfg);
        gpu.enableStreaming(&orch);
        std::printf("\nstreaming DMA arm (LAKE_STREAMS=%u)\n",
                    scfg.streams);
        std::printf("%-8s | %8s %8s\n", "block", "STRM rd", "STRM wr");
        for (std::size_t block = 4 << 10; block <= (4u << 20);
             block *= 2) {
            Throughput s = measure(gpu, lake.clock(), block, data);
            std::printf("%5zuK   | %8.0f %8.0f\n", block / 1024,
                        s.read_mbps, s.write_mbps);
        }
        gpu.enableStreaming(nullptr);
    }

    bench::expectation(
        "CPU flat ~142 MB/s read / 136 write (crypto-bound); AES-NI "
        "peaks ~670/560; LAKE overtakes AES-NI once per-extent remoting "
        "amortizes (paper: 16KB reads / 128KB writes; here: hundreds of "
        "KB) and plateaus ~840/836; GPU+AES-NI adds ~31%/22% over LAKE");
    return 0;
}
