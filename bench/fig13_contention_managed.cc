// Reproduces Fig. 13: kernel and user-space throughput, normalized
// against peak, under the adaptive contention-averse policy of Fig. 3.
// The kernel I/O latency classifier runs alone on the GPU; a user
// hashing process arrives, takes the GPU, and LAKE's policy moves the
// classifier to the CPU; when the user process exits the policy
// reclaims the GPU.

#include <algorithm>
#include <cstdio>
#include <functional>
#include <vector>

#include "bench_util.h"
#include "base/stats.h"
#include "core/lake.h"
#include "gpu/kernels.h"
#include "policy/policy.h"
#include "sim/simulator.h"

using namespace lake;

int
main()
{
    bench::banner("Fig. 13",
                  "normalized throughput under the adaptive "
                  "contention-averse policy");

    constexpr Nanos kT1 = 5_s;   // user process launches (CPU phase)
    constexpr Nanos kT2 = 7_s;   // user hashing hits the GPU
    constexpr Nanos kT3 = 20_s;  // user process exits
    constexpr Nanos kEnd = 28_s;
    constexpr Nanos kBucket = 500_ms;
    constexpr std::uint64_t kHashBatch = 2048;

    core::Lake lake;
    gpu::Device &dev = lake.device();
    gpu::registerBuiltinKernels();
    sim::Simulator simr;

    RateMeter user_tput(kBucket);
    RateMeter kernel_tput(kBucket);
    std::vector<std::pair<double, const char *>> engine_log;

    // The Fig. 3 policy, probing the device's NVML-style utilization.
    policy::ContentionAwarePolicy::Config pcfg;
    pcfg.probe_interval = 5_ms;
    pcfg.avg_window = 4;
    pcfg.exec_threshold = 40.0;
    pcfg.batch_threshold = 8;
    policy::ContentionAwarePolicy policy(
        [&](Nanos now) { return dev.utilization(now, 20_ms); }, pcfg);

    // Kernel classifier: a 256-I/O batch every 2 ms, engine by policy.
    constexpr std::size_t kBatch = 256;
    constexpr Nanos kGpuBatchCost = 10_us + 9_us;   // launch + compute
    constexpr Nanos kCpuBatchCost = 256 * 15_us;    // 15 us/inference
    policy::Engine last_engine = policy::Engine::Gpu;

    std::function<void()> classifier = [&] {
        if (simr.now() >= kEnd)
            return;
        policy::PolicyInput in;
        in.batch_size = kBatch;
        in.now = simr.now();
        policy::Engine e = policy.decide(in);
        if (e != last_engine) {
            engine_log.emplace_back(toSec(simr.now()),
                                    policy::engineName(e));
            last_engine = e;
        }
        if (e == policy::Engine::Gpu) {
            gpu::EngineSpan span =
                dev.reserveCompute(simr.now(), kGpuBatchCost);
            simr.schedule(span.end, [&] {
                kernel_tput.record(simr.now(),
                                   static_cast<double>(kBatch));
            });
            simr.scheduleIn(2_ms, classifier);
        } else {
            // CPU fallback: slower, so batches take longer than the
            // 2 ms cadence and throughput sags — but the GPU is freed.
            simr.scheduleIn(std::max<Nanos>(kCpuBatchCost, 2_ms), [&] {
                kernel_tput.record(simr.now(),
                                   static_cast<double>(kBatch));
                classifier();
            });
        }
    };
    simr.schedule(0, classifier);

    // User process: hashes pages on the GPU between T2 and T3.
    gpu::LaunchConfig hash_cfg;
    hash_cfg.kernel = "page_hash";
    hash_cfg.args = {0, 0, kHashBatch};
    Nanos hash_cost = dev.spec().launch_overhead +
                      gpu::KernelRegistry::global().cost(dev, hash_cfg);
    std::function<void()> user_loop = [&] {
        if (simr.now() >= kT3)
            return;
        gpu::EngineSpan span = dev.reserveCompute(simr.now(), hash_cost);
        simr.schedule(span.end, [&] {
            user_tput.record(simr.now(), static_cast<double>(kHashBatch));
            user_loop();
        });
    };
    simr.schedule(kT2, user_loop);

    simr.runUntil(kEnd);

    // Normalize each series against its own peak bucket.
    auto user = user_tput.series();
    auto kernel = kernel_tput.series();
    double user_peak = 1.0, kernel_peak = 1.0;
    for (auto &p : user)
        user_peak = std::max(user_peak, p.rate);
    for (auto &p : kernel)
        kernel_peak = std::max(kernel_peak, p.rate);

    std::printf("T1 = %.0f s user process launches, T2 = %.0f s it "
                "starts hashing on the GPU, T3 = %.0f s it exits\n\n",
                toSec(kT1), toSec(kT2), toSec(kT3));
    std::printf("%-9s %14s %18s\n", "time (s)", "hashing (u)",
                "I/O predictor (k)");
    std::size_t buckets =
        static_cast<std::size_t>(kEnd / kBucket);
    for (std::size_t i = 0; i < buckets; ++i) {
        double u = i < user.size() ? user[i].rate / user_peak : 0.0;
        double k = i < kernel.size() ? kernel[i].rate / kernel_peak : 0.0;
        std::printf("%-9.1f %14.2f %18.2f\n", toSec(i * kBucket), u, k);
    }

    std::printf("\npolicy engine switches:\n");
    for (auto &[t, name] : engine_log)
        std::printf("  t=%.2fs -> %s\n", t, name);

    bench::expectation(
        "classifier runs at full throughput on the idle GPU; when the "
        "user app claims the GPU the policy detects pressure and falls "
        "back to the CPU (kernel throughput sags, user throughput "
        "stays near peak); after T3 the policy reclaims the GPU");
    return 0;
}
