// Reproduces Fig. 11: time to predict file-system readahead
// configurations (KML) for variable batch sizes, plus the end-to-end
// payoff KML's 2.3x RocksDB claim rests on (adaptive vs fixed
// readahead over mixed access patterns).

#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "core/lake.h"
#include "fs/prefetch.h"
#include "ml/backends.h"

using namespace lake;

int
main()
{
    bench::banner("Fig. 11",
                  "KML readahead classification time vs batch size (us)");

    core::Lake lake;
    Rng rng(19);

    auto dataset = fs::buildPrefetchDataset(100, 256, rng);
    ml::Mlp model = fs::trainPrefetchModel(dataset, 20, 0.05f, rng);

    ml::CpuMlp cpu(model, lake.kernelCpu());
    ml::LakeMlp gpu(model, lake.lib(), false, 1024);
    ml::LakeMlp gpu_sync(model, lake.lib(), true, 1024);

    std::printf("%-7s %11s %11s %13s\n", "batch", "CPU", "LAKE",
                "LAKE (sync.)");
    for (std::size_t batch : {1u,  2u,  4u,   8u,   16u, 32u,
                              64u, 128u, 256u, 512u, 1024u}) {
        ml::Matrix x(batch, fs::kPrefetchFeatures);
        for (std::size_t i = 0; i < x.size(); ++i)
            x.data()[i] = static_cast<float>(rng.uniform(0.0, 1.0));

        Nanos t0 = lake.clock().now();
        cpu.classify(x);
        double cpu_us = toUs(lake.clock().now() - t0);
        t0 = lake.clock().now();
        gpu.classify(x);
        double gpu_us = toUs(lake.clock().now() - t0);
        t0 = lake.clock().now();
        gpu_sync.classify(x);
        double sync_us = toUs(lake.clock().now() - t0);

        std::printf("%-7zu %11.1f %11.1f %13.1f\n", batch, cpu_us,
                    gpu_us, sync_us);
    }

    // End-to-end flavour: classify each stream, apply the per-class
    // readahead, and compare against fixed kernel readahead.
    std::printf("\nadaptive vs fixed readahead (page-cache hits, mixed "
                "patterns):\n");
    std::printf("%-12s %12s %12s %12s\n", "pattern", "fixed-64",
                "adaptive", "disk I/Os");
    for (std::size_t cls = 0; cls < fs::kPatternClasses; ++cls) {
        auto stream = fs::generateAccesses(
            static_cast<fs::AccessPattern>(cls), 4096, 1 << 20, rng);
        float feats[fs::kPrefetchFeatures];
        fs::extractPrefetchFeatures(stream, feats);
        ml::Matrix x(1, fs::kPrefetchFeatures);
        std::copy(feats, feats + fs::kPrefetchFeatures, x.row(0));
        int pred = model.classify(x)[0];

        auto fixed = fs::simulateReadahead(stream, 64, 8192);
        auto adaptive = fs::simulateReadahead(
            stream, fs::kReadaheadPages[pred], 8192);
        std::printf("%-12s %11.1f%% %11.1f%% %6llu vs %llu\n",
                    fs::patternName(static_cast<fs::AccessPattern>(cls)),
                    100.0 * fixed.hit_rate, 100.0 * adaptive.hit_rate,
                    static_cast<unsigned long long>(fixed.disk_reads),
                    static_cast<unsigned long long>(
                        adaptive.disk_reads));
    }

    bench::expectation(
        "GPU profitable past ~64 classifications; per-pattern readahead "
        "matches fixed readahead on sequential streams while cutting "
        "wasted disk I/O on random/strided ones (KML's 2.3x RocksDB "
        "mechanism)");
    return 0;
}
