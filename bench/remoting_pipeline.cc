// Host-time and virtual-time benchmark of the pipelined remoting fast
// path (remote::PipelineConfig): a one-way-heavy workload — bursts of
// kernel launches and async lakeShm memcpys closed by a stream sync —
// runs unbatched and then batched, and the two runs are compared on
//
//  - host-time commands/sec, and
//  - virtual-time doorbells and elapsed time (the modeled §6 crossing
//    cost a batch message pays once instead of per command).
//
// The host-time half needs one piece of honesty the default in-process
// rig cannot provide: core::Lake wires the doorbell to a plain function
// call, so a "message" costs mere nanoseconds and batching has nothing
// to amortize — while in the real system every doorbell is a Netlink
// sendmsg plus a daemon wakeup through the kernel. This bench therefore
// builds its own rig whose doorbell pays a real AF_UNIX datagram
// send+recv (two actual syscalls, measured and reported) before waking
// lakeD, so host commands/sec reflects what coalescing buys on the
// crossing the paper's Table 2 prices. Virtual-time numbers come from
// the unchanged CostModel and are doorbell-count exact.
//
// Results land in BENCH_remoting.json (with build provenance) so the
// speedup is tracked across PRs. --smoke shrinks the run for CI.

#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>

#include <sys/socket.h>
#include <unistd.h>

#include "bench_util.h"
#include "channel/channel.h"
#include "gpu/device.h"
#include "gpu/kernels.h"
#include "gpu/spec.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "remote/daemon.h"
#include "remote/lakelib.h"
#include "remote/streampool.h"
#include "shm/arena.h"

using namespace lake;

namespace {

double
now()
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

/**
 * A zero-cost kernel, so the measurement isolates remoting overhead:
 * every host nanosecond spent per command is wire, channel, doorbell,
 * or dispatch work, not simulated compute. The real-system analogue is
 * the null kernel launch used to measure API crossing cost.
 */
void
registerNoopKernel()
{
    gpu::KernelRegistry::global().add(
        "noop",
        [](gpu::Device &, const gpu::LaunchConfig &) {
            return gpu::CuResult::Success;
        },
        [](const gpu::Device &, const gpu::LaunchConfig &) -> Nanos {
            return 0;
        });
}

/**
 * A LAKE stack whose doorbell performs a real kernel crossing: one
 * AF_UNIX datagram send+recv per ring, the syscall-pair cost of the
 * Netlink doorbell (minus scheduling, so it underestimates the real
 * thing), then wakes lakeD.
 */
struct Rig
{
    Clock clock;
    shm::ShmArena arena;
    gpu::Device device;
    channel::Channel chan;
    remote::LakeDaemon daemon;
    remote::LakeLib lib;
    int sock[2] = {-1, -1};

    Rig()
        : arena(1 << 20), device(gpu::DeviceSpec::a100()),
          chan(channel::Kind::Netlink, clock),
          daemon(chan, arena, device, clock),
          lib(chan, arena, [this] { ring(); })
    {
        if (socketpair(AF_UNIX, SOCK_DGRAM, 0, sock) != 0) {
            std::fprintf(stderr, "socketpair failed; doorbells will "
                                 "cost no host time\n");
            sock[0] = sock[1] = -1;
        }
    }

    ~Rig()
    {
        if (sock[0] >= 0)
            close(sock[0]);
        if (sock[1] >= 0)
            close(sock[1]);
    }

    Rig(const Rig &) = delete;
    Rig &operator=(const Rig &) = delete;

    void
    ring()
    {
        if (sock[0] >= 0) {
            char b = 1;
            (void)!send(sock[0], &b, 1, 0);
            (void)!recv(sock[1], &b, 1, 0);
        }
        daemon.processPending();
    }

    /** Host cost of the bare syscall pair, for the report. */
    double
    doorbellNs(std::size_t iters)
    {
        if (sock[0] < 0)
            return 0.0;
        char b = 1;
        double t0 = now();
        for (std::size_t i = 0; i < iters; ++i) {
            (void)!send(sock[0], &b, 1, 0);
            (void)!recv(sock[1], &b, 1, 0);
        }
        return (now() - t0) / static_cast<double>(iters) * 1e9;
    }
};

struct RunResult
{
    double host_sec = 0;       ///< best wall-clock over repetitions
    std::size_t commands = 0;  ///< one-way commands issued per run
    std::uint64_t doorbells = 0;
    std::uint64_t messages = 0;
    std::uint64_t batches = 0;
    Nanos virt_elapsed = 0;
};

/**
 * Boots a fresh rig and drives @p bursts bursts of @p burst_len
 * one-way commands (3 in 4 noop launches, 1 in 4 async 64-byte lakeShm
 * HtoD copies) closed by one cuStreamSynchronize. Returns counters
 * from the last repetition and the best host time across @p reps.
 *
 * With @p streams > 0 the burst additionally runs through a
 * StreamOrchestrator: the copy share stages from pooled shm slots and
 * the whole burst round-robins across the orchestrator's streams, the
 * combined pipelining+streaming fast path of DESIGN.md §10.
 */
RunResult
runWorkload(bool pipelined, std::size_t max_batch, std::size_t bursts,
            std::size_t burst_len, std::size_t reps,
            std::uint32_t streams = 0)
{
    RunResult out;
    for (std::size_t rep = 0; rep < reps; ++rep) {
        Rig rig;
        if (pipelined) {
            remote::PipelineConfig p;
            p.enabled = true;
            p.max_batch = max_batch;
            rig.lib.setPipeline(p);
        }
        std::unique_ptr<remote::StreamOrchestrator> orch;
        if (streams > 0) {
            remote::StreamingConfig sc;
            sc.enabled = true;
            sc.streams = streams;
            sc.pool_buffers = 4;
            sc.class_bytes = 64;
            sc.size_classes = 1;
            orch = std::make_unique<remote::StreamOrchestrator>(
                rig.lib, rig.clock, sc);
        }

        // Setup (untimed): a device buffer and a staging shm buffer
        // for the async-copy share of the burst.
        gpu::DevicePtr dev = 0;
        if (rig.lib.cuMemAlloc(&dev, 4096) != gpu::CuResult::Success) {
            std::fprintf(stderr, "setup cuMemAlloc failed\n");
            return out;
        }
        shm::ShmOffset stage = rig.arena.alloc(64);
        std::memset(rig.arena.at(stage), 0x5a, 64);

        gpu::LaunchConfig launch;
        launch.kernel = "noop";

        std::uint64_t doorbells0 = rig.lib.doorbells();
        std::uint64_t messages0 = rig.chan.messagesSent();
        Nanos virt0 = rig.clock.now();

        double t0 = now();
        for (std::size_t b = 0; b < bursts; ++b) {
            for (std::size_t i = 0; i < burst_len; ++i) {
                gpu::StreamId s = orch ? orch->nextStream() : 0;
                if (i % 4 == 3) {
                    if (orch) {
                        remote::StreamOrchestrator::Buffer *buf =
                            orch->acquire(64);
                        if (buf != nullptr) {
                            std::memset(rig.arena.at(buf->shm), 0x5a,
                                        64);
                            orch->stageIn(buf, dev, 64, s);
                        } else {
                            rig.lib.cuMemcpyHtoDShmAsync(dev, stage,
                                                         64, s);
                        }
                    } else {
                        rig.lib.cuMemcpyHtoDShmAsync(dev, stage, 64,
                                                     s);
                    }
                } else {
                    rig.lib.cuLaunchKernel(launch, s);
                }
            }
            if (orch) {
                for (std::uint32_t k = 0; k < streams; ++k)
                    orch->syncStream(orch->streamAt(k));
            } else {
                rig.lib.cuStreamSynchronize(0);
            }
        }
        double sec = now() - t0;

        out.commands = bursts * burst_len;
        out.doorbells = rig.lib.doorbells() - doorbells0;
        out.messages = rig.chan.messagesSent() - messages0;
        out.batches = rig.lib.batchesFlushed();
        out.virt_elapsed = rig.clock.now() - virt0;
        out.host_sec = rep == 0 ? sec : std::min(out.host_sec, sec);

        // When the metrics registry is live (the extra unmeasured
        // observability rep only — measured runs keep it off), mirror
        // both sides' counters before the rig dies.
        if (obs::Metrics::global().enabled()) {
            rig.lib.publishMetrics();
            rig.daemon.publishMetrics();
            if (orch)
                orch->publishMetrics();
        }
    }
    return out;
}

void
printRun(const char *label, const RunResult &r)
{
    std::printf("%-12s %12.0f cmds/s   %8llu doorbells   %8llu msgs   "
                "%10.1f virt-us\n",
                label,
                static_cast<double>(r.commands) / r.host_sec,
                static_cast<unsigned long long>(r.doorbells),
                static_cast<unsigned long long>(r.messages),
                static_cast<double>(r.virt_elapsed) / 1000.0);
}

void
jsonRun(bench::JsonWriter &json, const char *key, const RunResult &r)
{
    json.key(key).beginObject();
    json.key("commands_per_sec_host")
        .value(static_cast<double>(r.commands) / r.host_sec);
    json.key("host_sec").value(r.host_sec);
    json.key("commands").value(r.commands);
    json.key("doorbells").value(static_cast<std::size_t>(r.doorbells));
    json.key("messages").value(static_cast<std::size_t>(r.messages));
    json.key("batches").value(static_cast<std::size_t>(r.batches));
    json.key("virtual_elapsed_us")
        .value(static_cast<double>(r.virt_elapsed) / 1000.0);
    json.endObject();
}

} // namespace

int
main(int argc, char **argv)
{
    bool smoke = false;
    const char *out_path = "BENCH_remoting.json";
    for (int i = 1; i < argc; ++i) {
        if (std::string(argv[i]) == "--smoke")
            smoke = true;
        else
            out_path = argv[i];
    }

    bench::banner("remoting_pipeline",
                  "host-time commands/sec and virtual-time doorbells, "
                  "batched vs unbatched one-way traffic");
    registerNoopKernel();

    const std::size_t max_batch = 64;
    const std::size_t burst_len = 256;
    const std::size_t bursts = smoke ? 40 : 400;
    const std::size_t reps = smoke ? 2 : 5;

    double doorbell_ns;
    {
        Rig probe;
        doorbell_ns = probe.doorbellNs(smoke ? 20000 : 200000);
    }
    std::printf("doorbell syscall pair: %.0f ns host\n\n", doorbell_ns);

    RunResult un = runWorkload(false, max_batch, bursts, burst_len, reps);
    RunResult ba = runWorkload(true, max_batch, bursts, burst_len, reps);
    RunResult st =
        runWorkload(true, max_batch, bursts, burst_len, reps, 4);
    if (un.commands == 0 || ba.commands == 0 || st.commands == 0)
        return 1;

    printRun("unbatched", un);
    printRun("batched", ba);
    printRun("pipe+stream", st);

    double speedup = (static_cast<double>(ba.commands) / ba.host_sec) /
                     (static_cast<double>(un.commands) / un.host_sec);
    double doorbell_ratio = static_cast<double>(un.doorbells) /
                            static_cast<double>(ba.doorbells);
    double virt_ratio = static_cast<double>(un.virt_elapsed) /
                        static_cast<double>(ba.virt_elapsed);
    double stream_virt_ratio = static_cast<double>(un.virt_elapsed) /
                               static_cast<double>(st.virt_elapsed);
    std::printf("\nhost speedup %.2fx   doorbell reduction %.1fx   "
                "virtual-time reduction %.2fx (pipe+stream %.2fx)\n",
                speedup, doorbell_ratio, virt_ratio,
                stream_virt_ratio);

    bench::JsonWriter json;
    json.beginObject();
    json.key("bench").value("remoting_pipeline");
    bench::provenance(json);
    json.key("workload").beginObject();
    json.key("bursts").value(bursts);
    json.key("burst_len").value(burst_len);
    json.key("max_batch").value(max_batch);
    json.key("mix").value("3/4 noop launches, 1/4 async 64B shm HtoD");
    json.key("doorbell_syscall_ns").value(doorbell_ns);
    json.key("doorbell_note")
        .value("each doorbell pays a real AF_UNIX dgram send+recv; "
               "underestimates the real Netlink crossing, which also "
               "pays scheduling");
    json.key("smoke").value(smoke ? "true" : "false");
    json.endObject();
    jsonRun(json, "unbatched", un);
    jsonRun(json, "batched", ba);
    jsonRun(json, "pipelined_streamed", st);
    json.key("host_speedup").value(speedup);
    json.key("doorbell_reduction").value(doorbell_ratio);
    json.key("virtual_time_reduction").value(virt_ratio);
    json.key("streamed_virtual_time_reduction").value(stream_virt_ratio);

    // One extra, unmeasured repetition per mode with the metrics
    // registry enabled populates the per-stage (rpc/send/dispatch/
    // execute) per-API latency histograms. Every measured run above
    // kept observability off, so the numbers it reports are identical
    // to a build without the instrumentation.
    obs::Metrics::global().reset();
    obs::Metrics::global().setEnabled(true);
    runWorkload(false, max_batch, smoke ? 4 : 20, burst_len, 1);
    runWorkload(true, max_batch, smoke ? 4 : 20, burst_len, 1);
    runWorkload(true, max_batch, smoke ? 4 : 20, burst_len, 1, 4);
    obs::Metrics::global().setEnabled(false);
    json.key("metrics").rawValue(obs::metricsJsonObject());
    json.endObject();

    bool wrote = json.writeFile(out_path);
    if (!wrote)
        std::fprintf(stderr, "failed to write %s\n", out_path);
    else
        std::printf("wrote %s\n", out_path);

    bench::expectation(
        "batched >= 5x unbatched host commands/sec and ~max_batch-fold "
        "fewer doorbells: one message and one syscall-backed wakeup "
        "amortize over the whole batch, host and virtual time alike");
    return wrote ? 0 : 1;
}
