// Open-loop SLO benchmark of the multi-tenant serving front end
// (serve::TrafficGenerator, DESIGN.md §11).
//
// Hundreds of simulated tenants offer Poisson traffic at a sweep of
// load points (0.5x .. 2.0x of the calibrated classifier capacity)
// against four registry shards behind the coalescing ScoreServer; a
// trace-driven arm adds a 10x-hot tenant at saturation to show the
// token bucket + DRR clamping it to a fair share. Every run emits a
// serve_slo_<tag>_summary.json (p50/p99/p999 latency, goodput, reject
// rate) and a serve_slo_<tag>_timeseries.csv (queue depth and
// utilization over virtual time); the sweep lands in
// BENCH_serving.json with provenance.
//
// The smoke gates are behavioral, not speed: conservation (every
// arrival accounted exactly once), admission/shedding engaging at
// overload and staying out of the way below capacity, and per-tenant
// completion fairness at and past saturation — max/min <= 1.5x on the
// uniform arms, hot-tenant-over-median-cold <= 1.5x on the skew arm
// (the raw max/min there also counts Poisson starvation of the
// smallest cold tenant, which no scheduler can serve work it was
// never offered).

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdio>
#include <queue>
#include <string>
#include <utility>
#include <vector>

#include "base/rng.h"
#include "base/time.h"
#include "bench_util.h"
#include "ml/backends.h"
#include "ml/mlp.h"
#include "registry/manager.h"
#include "serve/serve.h"
#include "serve/traffic.h"
#include "storage/linnos.h"

using namespace lake;

namespace {

constexpr std::size_t kShards = 4;
constexpr const char *kSys = "serve_slo";

const std::array<std::string, storage::kLinnosHistory> kLatFeature = {
    "io_lat0", "io_lat1", "io_lat2", "io_lat3"};

/** Builds the 31-feature matrix from registry feature vectors. */
ml::Matrix
featurize(const std::vector<registry::FeatureVector> &fvs)
{
    ml::Matrix x(fvs.size(), storage::kLinnosFeatures);
    for (std::size_t r = 0; r < fvs.size(); ++r) {
        std::array<std::uint32_t, storage::kLinnosHistory> hist{};
        for (std::size_t h = 0; h < storage::kLinnosHistory; ++h)
            hist[h] =
                static_cast<std::uint32_t>(fvs[r].get(kLatFeature[h]));
        storage::encodeLinnosFeatures(
            static_cast<std::uint32_t>(fvs[r].get("pend_ios")), hist,
            x.row(r));
    }
    return x;
}

/** One LinnOS-shaped request with plausible feature values. */
registry::FeatureVector
makeFv(Rng &rng, Nanos now)
{
    registry::FeatureVector fv;
    fv.ts_begin = now;
    fv.ts_end = now;
    fv.values[registry::featureKey("pend_ios")] = {rng.uniformInt(0, 31)};
    for (const std::string &f : kLatFeature)
        fv.values[registry::featureKey(f)] = {rng.uniformInt(50, 2000)};
    return fv;
}

/** The serving stack of one run: shards + classifier + ScoreServer. */
struct Stack
{
    Clock clock;
    gpu::CpuSpec cpu_spec = gpu::CpuSpec::xeonGold6226R();
    ml::KernelCpu kernel_cpu{clock, cpu_spec};
    Rng model_rng{42};
    ml::Mlp model{ml::MlpConfig::linnos(), model_rng};
    ml::CpuMlp mlp{model, kernel_cpu};
    registry::RegistryManager mgr{clock};
    std::vector<std::string> shards;
    /** Virtual ns the classifier has executed (utilization probe). */
    Nanos busy = 0;

    bool
    init(registry::ScoringConfig scfg)
    {
        registry::Classifier classify =
            [this](const std::vector<registry::FeatureVector> &fvs) {
                ml::Matrix x = featurize(fvs);
                Nanos t0 = clock.now();
                std::vector<int> c = mlp.classify(x);
                busy += clock.now() - t0;
                return std::vector<float>(c.begin(), c.end());
            };
        registry::Schema schema;
        schema.add("pend_ios");
        for (const std::string &f : kLatFeature)
            schema.add(f);
        for (std::size_t i = 0; i < kShards; ++i) {
            shards.push_back("shard" + std::to_string(i));
            if (!mgr.createRegistry(shards.back(), kSys, schema, 8)
                     .isOk())
                return false;
            if (!mgr.find(shards.back(), kSys)
                     ->registerClassifier(registry::Arch::Cpu, classify)
                     .isOk())
                return false;
        }
        scfg.enabled = true;
        return mgr.enableScoring(scfg).isOk();
    }
};

/** Result of one load point. */
struct RunResult
{
    std::string tag;
    double load = 0.0;
    double offered_rps = 0.0;
    Nanos duration = 0;
    serve::ServeSummary s;
    double fairness = 0.0;  //!< max/min per-tenant completions
    double hot_ratio = 0.0; //!< tenant 0 over median of the rest
    double mean_util = 0.0;
};

/**
 * Calibrates the per-vector virtual inference cost at the serving
 * batch size, so the sweep's load points are fractions of the actual
 * modeled capacity rather than magic numbers.
 */
double
calibrateCapacityRps(std::size_t batch)
{
    Stack st;
    if (!st.init({}))
        return 0.0;
    Rng rng(7);
    std::vector<registry::FeatureVector> fvs;
    for (std::size_t i = 0; i < batch; ++i)
        fvs.push_back(makeFv(rng, 0));
    registry::Registry *reg = st.mgr.find(st.shards[0], kSys);
    Nanos t0 = st.clock.now();
    reg->scoreFeatures(fvs, t0);
    Nanos per_vector = (st.clock.now() - t0) / batch;
    return per_vector == 0 ? 0.0 : 1e9 / static_cast<double>(per_vector);
}

/**
 * Writes a 10x-hot-tenant Poisson schedule as a serving trace file, so
 * the skew arm also exercises the trace-driven arrival path.
 */
bool
writeSkewTrace(const std::string &path, std::size_t tenants,
               double cold_rps, double hot_rps, Nanos duration)
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f)
        return false;
    std::fprintf(f, "# serve_slo skew arm: tenant 0 at %.0f rps, "
                    "others at %.0f rps\n",
                 hot_rps, cold_rps);
    using Event = std::pair<Nanos, std::size_t>;
    std::priority_queue<Event, std::vector<Event>, std::greater<Event>>
        heap;
    Rng rng(0x5eedull);
    auto gap = [&rng](double rps) {
        return static_cast<Nanos>(rng.exponential(1e9 / rps));
    };
    for (std::size_t t = 0; t < tenants; ++t)
        heap.push({gap(t == 0 ? hot_rps : cold_rps), t});
    while (!heap.empty() && heap.top().first < duration) {
        auto [at, tenant] = heap.top();
        heap.pop();
        std::fprintf(f, "%llu %zu\n",
                     static_cast<unsigned long long>(at / 1000), tenant);
        heap.push({at + gap(tenant == 0 ? hot_rps : cold_rps), tenant});
    }
    std::fclose(f);
    return true;
}

/** Emits serve_slo_<tag>_summary.json for one run. */
bool
writeRunSummary(const RunResult &r)
{
    bench::JsonWriter j;
    j.beginObject();
    j.key("run").value(r.tag.c_str());
    j.key("load").value(r.load);
    j.key("offered_rps").value(r.offered_rps);
    j.key("duration_ms").value(toMs(r.duration));
    j.key("arrivals").value(r.s.arrivals);
    j.key("admits").value(r.s.admits);
    j.key("bucket_rejects").value(r.s.bucket_rejects);
    j.key("queue_sheds").value(r.s.queue_sheds);
    j.key("backpressure").value(r.s.backpressure);
    j.key("completions").value(r.s.completions);
    j.key("failures").value(r.s.failures);
    j.key("p50_us").value(r.s.p50_us);
    j.key("p99_us").value(r.s.p99_us);
    j.key("p999_us").value(r.s.p999_us);
    j.key("goodput_rps").value(r.s.goodput_rps);
    j.key("reject_rate").value(r.s.reject_rate);
    j.key("tenant_fairness_maxmin").value(r.fairness);
    j.key("hot_over_median").value(r.hot_ratio);
    j.key("mean_utilization_pct").value(r.mean_util);
    j.endObject();
    return j.writeFile(("serve_slo_" + r.tag + "_summary.json").c_str());
}

/** Emits serve_slo_<tag>_timeseries.csv for one run. */
bool
writeRunTimeseries(const std::string &tag,
                   const std::vector<serve::ServeSample> &samples)
{
    std::string path = "serve_slo_" + tag + "_timeseries.csv";
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f)
        return false;
    std::fprintf(f, "time_ms,queue_depth,server_pending,"
                    "utilization_pct,admits,completions,sheds\n");
    for (const serve::ServeSample &s : samples)
        std::fprintf(f, "%.3f,%zu,%zu,%.2f,%llu,%llu,%llu\n", toMs(s.at),
                     s.queue_depth, s.server_pending, s.utilization,
                     static_cast<unsigned long long>(s.admits),
                     static_cast<unsigned long long>(s.completions),
                     static_cast<unsigned long long>(s.sheds));
    std::fclose(f);
    return true;
}

/** Runs one load point; @p trace_path switches to trace arrivals. */
RunResult
runOne(const std::string &tag, double load, double capacity_rps,
       std::size_t tenants, std::size_t target_arrivals,
       const std::string &trace_path = "")
{
    RunResult r;
    r.tag = tag;
    r.load = load;
    r.offered_rps = load * capacity_rps;
    double seconds =
        static_cast<double>(target_arrivals) / r.offered_rps;
    r.duration = static_cast<Nanos>(seconds * 1e9);

    registry::ScoringConfig scfg;
    scfg.max_batch = 32;
    scfg.queue_capacity = 256;
    Stack st;
    if (!st.init(scfg)) {
        std::fprintf(stderr, "%s: stack init failed\n", tag.c_str());
        return r;
    }

    serve::ServeConfig cfg;
    cfg.enabled = true;
    cfg.tenants = tenants;
    cfg.rate_rps = r.offered_rps / static_cast<double>(tenants);
    cfg.seed = 0x1a4e + static_cast<std::uint64_t>(load * 1000.0);
    // Each tenant may admit 1.25x its fair share of *capacity*: below
    // saturation the bucket is invisible, past it the bucket carries
    // the first wave of rejection and the bounded queue the rest.
    cfg.bucket_rate = 1.25 * capacity_rps / static_cast<double>(tenants);
    cfg.bucket_burst = 8.0;
    cfg.queue_capacity = 32;
    cfg.drr_quantum = 4;
    cfg.pump_interval = 50_us;
    cfg.shards = kShards;
    cfg.trace_path = trace_path;
    cfg.applyEnv();

    serve::TrafficGenerator gen(st.mgr, st.clock, cfg, kSys, st.shards);
    Rng fv_rng(0xfeedull);
    gen.setRequestFactory(
        [&fv_rng](std::size_t, Nanos now) { return makeFv(fv_rng, now); });

    // Utilization = classifier-busy share of each sample window.
    Nanos last_busy = 0, last_now = 0;
    gen.enableSampling(
        r.duration / 100, [&st, &last_busy, &last_now]() {
            Nanos now = st.clock.now();
            Nanos dbusy = st.busy - last_busy;
            Nanos dt = now - last_now;
            last_busy = st.busy;
            last_now = now;
            return dt == 0 ? 0.0
                           : 100.0 * static_cast<double>(dbusy) /
                                 static_cast<double>(dt);
        });

    gen.run(r.duration);
    r.s = gen.summary(r.duration);
    r.fairness = r.s.min_tenant_completions > 0.0
                     ? r.s.max_tenant_completions /
                           r.s.min_tenant_completions
                     : 0.0;
    {
        // Hot-tenant share: tenant 0 (the skew arm's hot tenant)
        // against the median of everyone else — the fairness claim
        // DRR + the bucket actually make under skewed offered load.
        const std::vector<serve::Tenant> &ts = gen.tenantStates();
        std::vector<double> comps;
        for (std::size_t i = 1; i < ts.size(); ++i)
            comps.push_back(static_cast<double>(ts[i].completions));
        std::sort(comps.begin(), comps.end());
        double median = comps.empty() ? 0.0 : comps[comps.size() / 2];
        r.hot_ratio =
            median > 0.0
                ? static_cast<double>(ts[0].completions) / median
                : 0.0;
    }
    r.mean_util = r.duration == 0
                      ? 0.0
                      : 100.0 * static_cast<double>(st.busy) /
                            static_cast<double>(st.clock.now());
    if (!writeRunSummary(r))
        std::fprintf(stderr, "%s: cannot write summary\n", tag.c_str());
    if (!writeRunTimeseries(tag, gen.timeseries()))
        std::fprintf(stderr, "%s: cannot write timeseries\n",
                     tag.c_str());
    return r;
}

} // namespace

int
main(int argc, char **argv)
{
    bool smoke = false;
    const char *out_path = "BENCH_serving.json";
    for (int i = 1; i < argc; ++i) {
        if (std::string(argv[i]) == "--smoke")
            smoke = true;
        else
            out_path = argv[i];
    }

    std::size_t tenants = smoke ? 40 : 200;
    const std::size_t target_arrivals = smoke ? 15000 : 150000;
    {
        // Honor LAKE_SERVE_TENANTS sweep-wide: the per-tenant rate
        // math and the generated skew trace must agree with the count
        // runOne's own applyEnv() will land on, or the trace names
        // tenants that do not exist.
        serve::ServeConfig probe;
        probe.tenants = tenants;
        probe.applyEnv();
        tenants = probe.tenants;
    }

    bench::banner("BENCH serving",
                  "open-loop multi-tenant SLO sweep: token-bucket "
                  "admission + DRR dispatch over the coalescing "
                  "ScoreServer (LinnOS MLP, 4 shards)");

    double capacity_rps = calibrateCapacityRps(32);
    if (capacity_rps <= 0.0) {
        std::fprintf(stderr, "capacity calibration failed\n");
        return 1;
    }
    std::printf("calibrated capacity %.0f vectors/sec (virtual, "
                "batch-32 CPU inference)\n\n",
                capacity_rps);

    const double loads[] = {0.5, 0.8, 1.2, 2.0};
    std::vector<RunResult> runs;
    for (double load : loads)
        runs.push_back(runOne("load" + std::to_string(load).substr(0, 3),
                              load, capacity_rps, tenants,
                              target_arrivals));

    // Skew arm: tenant 0 offers 10x a cold tenant's rate, total load
    // ~1.2x capacity, arrivals from a generated trace file.
    {
        double load = 1.2;
        double offered = load * capacity_rps;
        double cold = offered / (static_cast<double>(tenants) + 9.0);
        double hot = 10.0 * cold;
        double seconds = static_cast<double>(target_arrivals) / offered;
        if (!writeSkewTrace("serve_slo_skew.trace", tenants, cold, hot,
                            static_cast<Nanos>(seconds * 1e9))) {
            std::fprintf(stderr, "cannot write skew trace\n");
            return 1;
        }
        runs.push_back(runOne("skew", load, capacity_rps, tenants,
                              target_arrivals, "serve_slo_skew.trace"));
    }

    std::printf("%-8s %10s %10s %10s %10s %10s %8s %8s %8s %9s\n",
                "run", "offered/s", "goodput/s", "p50 us", "p99 us",
                "p999 us", "reject", "maxmin", "hot/med", "util %");
    for (const RunResult &r : runs)
        std::printf("%-8s %10.0f %10.0f %10.1f %10.1f %10.1f %7.1f%% "
                    "%8.2f %8.2f %9.1f\n",
                    r.tag.c_str(), r.offered_rps, r.s.goodput_rps,
                    r.s.p50_us, r.s.p99_us, r.s.p999_us,
                    100.0 * r.s.reject_rate, r.fairness, r.hot_ratio,
                    r.mean_util);
    bench::expectation(
        "below capacity goodput tracks offered load with flat p99; "
        "past capacity goodput plateaus at the calibrated ceiling "
        "while the token bucket and bounded queues shed the excess, "
        "and DRR keeps per-tenant completions within 1.5x even "
        "against a 10x-hot tenant");

    bench::JsonWriter j;
    j.beginObject();
    j.key("bench").value("serve_slo");
    j.key("smoke").value(smoke ? "true" : "false");
    j.key("config").beginObject();
    j.key("tenants").value(tenants);
    j.key("shards").value(kShards);
    j.key("target_arrivals").value(target_arrivals);
    j.key("capacity_rps").value(capacity_rps);
    j.key("max_batch").value(static_cast<std::size_t>(32));
    j.key("queue_capacity").value(static_cast<std::size_t>(32));
    j.key("bucket_fair_multiple").value(1.25);
    j.endObject();
    j.key("runs").beginArray();
    for (const RunResult &r : runs) {
        j.beginObject();
        j.key("run").value(r.tag.c_str());
        j.key("load").value(r.load);
        j.key("offered_rps").value(r.offered_rps);
        j.key("arrivals").value(r.s.arrivals);
        j.key("completions").value(r.s.completions);
        j.key("goodput_rps").value(r.s.goodput_rps);
        j.key("p50_us").value(r.s.p50_us);
        j.key("p99_us").value(r.s.p99_us);
        j.key("p999_us").value(r.s.p999_us);
        j.key("reject_rate").value(r.s.reject_rate);
        j.key("bucket_rejects").value(r.s.bucket_rejects);
        j.key("queue_sheds").value(r.s.queue_sheds);
        j.key("backpressure").value(r.s.backpressure);
        j.key("tenant_fairness_maxmin").value(r.fairness);
        j.key("hot_over_median").value(r.hot_ratio);
        j.key("mean_utilization_pct").value(r.mean_util);
        j.endObject();
    }
    j.endArray();
    bench::provenance(j);
    j.endObject();
    if (!j.writeFile(out_path)) {
        std::fprintf(stderr, "cannot write %s\n", out_path);
        return 1;
    }
    std::printf("wrote %s\n", out_path);

    // Behavioral gates (the smoke run's pass criteria).
    bool ok = true;
    for (const RunResult &r : runs) {
        // shed_oldest mode: every arrival is either bucket-rejected or
        // admitted, and every admit ends exactly one of completed /
        // failed / shed-for-a-newer-request / still queued.
        if (r.s.arrivals != r.s.admits + r.s.bucket_rejects ||
            r.s.admits != r.s.completions + r.s.failures +
                              r.s.queue_sheds + r.s.queued_residual) {
            std::fprintf(stderr, "FAIL %s: conservation broken\n",
                         r.tag.c_str());
            ok = false;
        }
        if (r.s.completions == 0) {
            std::fprintf(stderr, "FAIL %s: no completions\n",
                         r.tag.c_str());
            ok = false;
        }
    }
    // Below capacity nothing should be refused...
    if (runs[0].s.reject_rate > 0.01) {
        std::fprintf(stderr,
                     "FAIL load0.5: %.1f%% rejected below capacity\n",
                     100.0 * runs[0].s.reject_rate);
        ok = false;
    }
    // ...past capacity admission control and shedding must engage.
    const RunResult &over = runs[3];
    if (over.s.bucket_rejects == 0 || over.s.queue_sheds == 0 ||
        over.s.reject_rate < 0.2) {
        std::fprintf(stderr,
                     "FAIL load2.0: overload did not shed "
                     "(rejects=%llu sheds=%llu rate=%.2f)\n",
                     static_cast<unsigned long long>(
                         over.s.bucket_rejects),
                     static_cast<unsigned long long>(over.s.queue_sheds),
                     over.s.reject_rate);
        ok = false;
    }
    // Fairness at and past saturation: max/min on the uniform arms...
    for (std::size_t i : {std::size_t{2}, std::size_t{3}}) {
        if (runs[i].fairness > 1.5 || runs[i].fairness == 0.0) {
            std::fprintf(stderr, "FAIL %s: tenant max/min %.2f\n",
                         runs[i].tag.c_str(), runs[i].fairness);
            ok = false;
        }
    }
    // ...and hot-over-median-cold on the skew arm, where the raw
    // max/min also counts the Poisson-starved smallest cold tenant.
    const RunResult &skew = runs.back();
    if (skew.hot_ratio > 1.5 || skew.hot_ratio == 0.0) {
        std::fprintf(stderr,
                     "FAIL %s: hot tenant %.2fx the median cold "
                     "tenant\n",
                     skew.tag.c_str(), skew.hot_ratio);
        ok = false;
    }
    return ok ? 0 : 1;
}
