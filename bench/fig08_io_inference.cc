// Reproduces Fig. 8: I/O latency prediction time for variable batch
// sizes on CPU and GPU through LAKE (including data copying), for the
// LinnOS model and its +1 / +2 augmented variants. Also prints the
// §7.1 worked example (batch-8 amortization at 256k IOPS).

#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "core/lake.h"
#include "ml/backends.h"

using namespace lake;

namespace {

ml::Matrix
randomBatch(std::size_t n, Rng &rng)
{
    ml::Matrix x(n, 31);
    for (std::size_t i = 0; i < x.size(); ++i)
        x.data()[i] = static_cast<float>(rng.uniform(0.0, 0.9));
    return x;
}

} // namespace

int
main()
{
    bench::banner("Fig. 8",
                  "I/O latency prediction time vs batch size "
                  "(us, LAKE includes data movement)");

    const std::vector<std::size_t> batches = {1,  2,  4,   8,   16,  32,
                                              64, 128, 256, 512, 1024};

    core::Lake lake;
    Rng rng(7);

    std::printf("%-7s", "batch");
    for (const char *col : {"CPU", "CPU+1", "CPU+2", "LAKE", "LAKE+1",
                            "LAKE+2"})
        std::printf(" %9s", col);
    std::printf("\n");

    // Build the three model variants and both backends for each.
    std::vector<ml::Mlp> models;
    for (std::size_t extra = 0; extra <= 2; ++extra)
        models.emplace_back(ml::MlpConfig::linnos(extra), rng);

    std::vector<std::unique_ptr<ml::CpuMlp>> cpu;
    std::vector<std::unique_ptr<ml::LakeMlp>> gpu;
    for (auto &m : models) {
        cpu.push_back(std::make_unique<ml::CpuMlp>(m, lake.kernelCpu()));
        gpu.push_back(
            std::make_unique<ml::LakeMlp>(m, lake.lib(), false, 1024));
    }

    double cpu_t1 = 0.0, gpu_t8 = 0.0;
    for (std::size_t batch : batches) {
        ml::Matrix x = randomBatch(batch, rng);
        std::printf("%-7zu", batch);
        for (int v = 0; v < 3; ++v) {
            Nanos t0 = lake.clock().now();
            cpu[v]->classify(x);
            double us = toUs(lake.clock().now() - t0);
            if (v == 0 && batch == 1)
                cpu_t1 = us;
            std::printf(" %9.1f", us);
        }
        for (int v = 0; v < 3; ++v) {
            Nanos t0 = lake.clock().now();
            gpu[v]->classify(x);
            double us = toUs(lake.clock().now() - t0);
            if (v == 0 && batch == 8)
                gpu_t8 = us;
            std::printf(" %9.1f", us);
        }
        std::printf("\n");
    }

    // §7.1's worked example: at 256k IOPS (4 us inter-arrival), batch 8.
    double wait_us = 8 * 4.0;
    double serial_cpu = 8 * cpu_t1;
    double batched_gpu = wait_us + gpu_t8;
    std::printf("\n§7.1 example @256k IOPS: 8 x CPU inference = %.0f us;"
                " wait 8 arrivals (%.0f us) + GPU batch = %.0f us"
                " -> %.0f%% reduction\n",
                serial_cpu, wait_us, batched_gpu,
                100.0 * (1.0 - batched_gpu / serial_cpu));

    double cpu_1024 = 0.0, gpu_1024 = 0.0;
    {
        ml::Matrix x = randomBatch(1024, rng);
        Nanos t0 = lake.clock().now();
        cpu[0]->classify(x);
        cpu_1024 = toUs(lake.clock().now() - t0);
        t0 = lake.clock().now();
        gpu[0]->classify(x);
        gpu_1024 = toUs(lake.clock().now() - t0);
    }
    std::printf("large-batch inference time reduction (1024): %.1f%%\n",
                100.0 * (1.0 - gpu_1024 / cpu_1024));

    bench::expectation(
        "CPU grows linearly (~15 us per inference); LAKE is flat ~58 us "
        "until compute dominates; crossover at 8 for the base NN, 3 and "
        "2 for +1/+2; acceleration cuts inference time by up to ~95%");
    return 0;
}
