// Reproduces Table 2: average call time and latency to send a doorbell
// message from kernel to user, per communication mechanism.

#include <cstdio>

#include "bench_util.h"
#include "channel/channel.h"

int
main()
{
    using namespace lake;
    using namespace lake::channel;

    bench::banner("Table 2",
                  "doorbell call time / latency per kernel-user channel");

    std::printf("%-16s %14s %14s %8s\n", "Mechanism", "Call time (us)",
                "Latency (us)", "Spins?");
    for (Kind k : {Kind::Signal, Kind::DevRw, Kind::Netlink, Kind::Mmap}) {
        CostModel m = defaultModel(k);
        std::printf("%-16s %14.0f %14.0f %8s\n", kindName(k),
                    toUs(m.doorbell_call), toUs(m.doorbell_latency),
                    m.spins ? "yes" : "no");
    }

    bench::expectation(
        "signal 56/56, device r/w 6/57, netlink 11/54, mmap 6/6; mmap is "
        "fastest but burns a CPU spinning, so LAKE uses Netlink");
    return 0;
}
