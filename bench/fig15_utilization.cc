// Reproduces Fig. 15: CPU and GPU utilization while sequentially
// reading (and decrypting) a large file on eCryptfs with a 2 MB block
// size, using CPU-only crypto, AES-NI, and LAKE.
//
// The host executes a 64 MiB file for tractability; virtual-time
// utilization ratios are independent of the file length in steady
// state, and reported durations are scaled to the paper's 2 GiB.

#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "core/lake.h"
#include "crypto/engines.h"
#include "fs/ecryptfs.h"

using namespace lake;

namespace {

constexpr std::size_t kRealBytes = 64 << 20;
constexpr double kScaleTo2GiB =
    static_cast<double>(2ull << 30) / kRealBytes;

struct UtilRow
{
    const char *label;
    double duration_s;   //!< scaled to the 2 GiB read
    double kernel_cpu;   //!< kernel-context CPU %
    double daemon_cpu;   //!< lakeD (user-space API handler) CPU %
    double gpu;          //!< GPU compute %
};

} // namespace

int
main()
{
    bench::banner("Fig. 15",
                  "utilization while decrypting a 2 GiB file on "
                  "eCryptfs, 2 MB blocks");

    std::uint8_t key[32];
    for (int i = 0; i < 32; ++i)
        key[i] = static_cast<std::uint8_t>(i + 11);

    std::vector<std::uint8_t> data(kRealBytes);
    for (std::size_t i = 0; i < data.size(); ++i)
        data[i] = static_cast<std::uint8_t>(i * 29 + 5);

    std::vector<UtilRow> rows;

    auto run = [&](const char *label, bool lake_engine, bool use_ni) {
        core::Lake lake;
        gpu::CpuSpec cpu_spec = lake.config().cpu;
        std::unique_ptr<crypto::CipherEngine> engine;
        if (lake_engine) {
            engine = std::make_unique<crypto::LakeGpuCipher>(
                key, 32, lake.lib(), 2 << 20);
        } else if (use_ni) {
            engine = std::make_unique<crypto::AesNiCipher>(
                key, 32, lake.clock(), cpu_spec);
        } else {
            engine = std::make_unique<crypto::CpuCipher>(
                key, 32, lake.clock(), cpu_spec);
        }

        fs::ECryptFs fs(*engine, lake.clock(),
                        fs::LowerFsModel::testbed(), 2 << 20);
        Status st = fs.writeFile("/big", data.data(), data.size());
        LAKE_ASSERT(st.isOk(), "write failed");

        Nanos t0 = lake.clock().now();
        std::uint64_t gpu_busy0 =
            lake.device().computeBusy().totalBusy();
        std::uint64_t cmds0 = lake.daemon().commandsHandled();
        auto back = fs.readFile("/big");
        LAKE_ASSERT(back.isOk(), "read failed");
        Nanos elapsed = lake.clock().now() - t0;

        UtilRow row;
        row.label = label;
        row.duration_s = toSec(elapsed) * kScaleTo2GiB;
        double gpu_busy = static_cast<double>(
            lake.device().computeBusy().totalBusy() - gpu_busy0);
        row.gpu = 100.0 * gpu_busy / static_cast<double>(elapsed);

        if (lake_engine) {
            // Kernel CPU: per-extent issue work + channel send costs.
            std::uint64_t cmds =
                lake.daemon().commandsHandled() - cmds0;
            double kernel_ns =
                static_cast<double>(cmds) * 16_us; // marshal+doorbell
            double daemon_ns =
                static_cast<double>(cmds) * 11_us; // decode+dispatch
            row.kernel_cpu =
                100.0 * kernel_ns / static_cast<double>(elapsed);
            row.daemon_cpu =
                100.0 * daemon_ns / static_cast<double>(elapsed);
        } else {
            row.kernel_cpu =
                100.0 *
                static_cast<double>(fs.stats().crypto_busy) /
                static_cast<double>(elapsed);
            row.daemon_cpu = 0.0;
        }
        rows.push_back(row);
    };

    run("CPU", false, false);
    run("AES-NI", false, true);
    run("LAKE", true, false);

    std::printf("%-8s %12s %12s %10s %8s\n", "engine", "duration (s)",
                "kernel CPU%", "lakeD CPU%", "GPU%");
    for (const UtilRow &r : rows) {
        std::printf("%-8s %12.1f %12.1f %10.1f %8.1f\n", r.label,
                    r.duration_s, r.kernel_cpu, r.daemon_cpu, r.gpu);
    }

    bench::expectation(
        "the CPU engine is crypto-bound (high kernel CPU for ~17 s); "
        "AES-NI shows a shorter, lower peak (~24%); LAKE finishes "
        "fastest with ~20% total CPU (kernel + lakeD) and the work "
        "shifted to the GPU — a ~64% CPU utilization reduction");
    return 0;
}
