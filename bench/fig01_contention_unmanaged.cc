// Reproduces Fig. 1: throughput of a GPU-accelerated user-space page
// hashing application, with and without unmanaged kernel-space
// contention for GPU compute. At T1 the kernel's ML page-warmth
// classifier starts sharing the GPU; at T2 the I/O latency predictor
// joins. No contention policy is installed — this is the pathology
// LAKE's policy framework exists to prevent.

#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "base/stats.h"
#include "core/lake.h"
#include "gpu/kernels.h"
#include "ml/gpu_kernels.h"
#include "sim/simulator.h"

using namespace lake;

namespace {

constexpr Nanos kT1 = 3_s;       // page-warmth classifier starts
constexpr Nanos kT2 = 6_s;       // I/O latency predictor starts
constexpr Nanos kEnd = 10_s;
constexpr Nanos kBucket = 250_ms;
constexpr std::uint64_t kHashBatch = 2048; // pages per user launch

/** Runs the timeline; kernel work is injected only when enabled. */
std::vector<RateMeter::Point>
run(bool contended)
{
    core::Lake lake;
    gpu::Device &dev = lake.device();
    gpu::registerBuiltinKernels();
    ml::registerMlKernels();
    sim::Simulator simr;
    RateMeter user_tput(kBucket);

    // Cost of one user hashing launch, from the registered model.
    gpu::LaunchConfig hash_cfg;
    hash_cfg.kernel = "page_hash";
    hash_cfg.args = {0, 0, kHashBatch};
    Nanos hash_cost = dev.spec().launch_overhead +
                      gpu::KernelRegistry::global().cost(dev, hash_cfg);

    // User app: launches back to back; each completion records pages.
    // All self-rescheduling closures must outlive simr.run(), so they
    // live at function scope.
    std::function<void()> user_loop;
    std::function<void()> warmth;
    std::function<void()> predictor;

    user_loop = [&] {
        if (simr.now() >= kEnd)
            return;
        gpu::EngineSpan span = dev.reserveCompute(simr.now(), hash_cost);
        simr.schedule(span.end, [&] {
            user_tput.record(simr.now(), static_cast<double>(kHashBatch));
            user_loop();
        });
    };
    simr.schedule(0, user_loop);

    if (contended) {
        // Kernel page-warmth classifier: a hefty LSTM batch every 5 ms.
        constexpr Nanos kWarmthCost = 3200_us; // ~1024-page Kleio batch
        warmth = [&] {
            if (simr.now() >= kEnd)
                return;
            dev.reserveCompute(simr.now(), kWarmthCost);
            simr.scheduleIn(5_ms, warmth);
        };
        simr.schedule(kT1, warmth);

        // Kernel I/O latency predictor: small NN batches every 500 us.
        predictor = [&] {
            if (simr.now() >= kEnd)
                return;
            dev.reserveCompute(simr.now(),
                               dev.spec().launch_overhead + 15_us);
            simr.scheduleIn(500_us, predictor);
        };
        simr.schedule(kT2, predictor);
    }

    simr.run();
    return user_tput.series();
}

} // namespace

int
main()
{
    bench::banner("Fig. 1",
                  "user-space page-hashing throughput under unmanaged "
                  "kernel GPU contention (pages/s)");

    auto base = run(false);
    auto contended = run(true);

    std::printf("T0 = 0 s (user app starts), T1 = %.0f s (page-warmth "
                "classifier), T2 = %.0f s (I/O latency predictor)\n\n",
                toSec(kT1), toSec(kT2));
    std::printf("%-9s %16s %16s %10s\n", "time (s)", "uncontended",
                "contended", "drop");

    double worst = 0.0;
    std::size_t rows = std::min(base.size(), contended.size());
    for (std::size_t i = 0; i < rows; ++i) {
        double drop = base[i].rate > 0
                          ? 100.0 * (1.0 - contended[i].rate /
                                               base[i].rate)
                          : 0.0;
        worst = std::max(worst, drop);
        std::printf("%-9.2f %16.3e %16.3e %9.1f%%\n",
                    toSec(base[i].time), base[i].rate,
                    contended[i].rate, drop);
    }
    std::printf("\nworst-case user throughput degradation: %.0f%%\n",
                worst);

    bench::expectation(
        "~2e7 pages/s uncontended; throughput destabilizes at T1 and "
        "degrades by up to 68% once both kernel users contend");
    return 0;
}
