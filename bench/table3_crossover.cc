// Reproduces Table 3: the crossover point (batch size where GPU
// execution through LAKE becomes faster than the in-kernel CPU) for
// each identified application, found by sweeping batch sizes against
// the live backends.

#include <cstdio>
#include <functional>
#include <memory>
#include <vector>

#include "bench_util.h"
#include "core/lake.h"
#include "crypto/engines.h"
#include "fs/ecryptfs.h"
#include "mem/pagewarmth.h"
#include "ml/backends.h"

using namespace lake;

namespace {

/** Returns the first swept batch where gpu_time < cpu_time (0 if none). */
std::size_t
findCrossover(const std::vector<std::size_t> &sweep,
              const std::function<double(std::size_t)> &cpu_time,
              const std::function<double(std::size_t)> &gpu_time)
{
    for (std::size_t b : sweep) {
        if (gpu_time(b) < cpu_time(b))
            return b;
    }
    return 0;
}

ml::Matrix
randomBatch(std::size_t n, std::size_t width, Rng &rng)
{
    ml::Matrix x(n, width);
    for (std::size_t i = 0; i < x.size(); ++i)
        x.data()[i] = static_cast<float>(rng.uniform(0.0, 0.9));
    return x;
}

} // namespace

int
main()
{
    bench::banner("Table 3",
                  "crossover batch size where the GPU becomes profitable");

    core::Lake lake;
    Rng rng(11);
    const std::vector<std::size_t> pow2 = {1,  2,  4,   8,   16,  32,
                                           64, 128, 256, 512, 1024};

    std::printf("%-24s %-16s %10s %12s\n", "Application", "Model",
                "Crossover", "(paper)");

    // --- I/O latency prediction: LinnOS NN -----------------------------
    {
        ml::Mlp model(ml::MlpConfig::linnos(), rng);
        ml::CpuMlp cpu(model, lake.kernelCpu());
        ml::LakeMlp gpu(model, lake.lib(), false, 1024);
        auto cpu_t = [&](std::size_t b) {
            ml::Matrix x = randomBatch(b, 31, rng);
            Nanos t0 = lake.clock().now();
            cpu.classify(x);
            return toUs(lake.clock().now() - t0);
        };
        auto gpu_t = [&](std::size_t b) {
            ml::Matrix x = randomBatch(b, 31, rng);
            Nanos t0 = lake.clock().now();
            gpu.classify(x);
            return toUs(lake.clock().now() - t0);
        };
        std::printf("%-24s %-16s %10zu %12s\n", "I/O latency prediction",
                    "NN 256x2", findCrossover(pow2, cpu_t, gpu_t), "8");
    }

    // --- Page warmth: Kleio LSTM (high-level API) ----------------------
    {
        ml::LstmConfig cfg = ml::LstmConfig::kleio();
        ml::Lstm model(cfg, rng);
        ml::CpuLstm cpu(model, lake.kernelCpu());
        ml::KleioService kleio(lake.daemon(), model);
        std::size_t per = cfg.seq_len * cfg.input;
        auto mkseqs = [&](std::size_t b) {
            std::vector<float> s(b * per);
            for (auto &v : s)
                v = static_cast<float>(rng.uniform(0.0, 1.0));
            return s;
        };
        // The CPU alternative is TensorFlow on the CPU — there is no
        // hand-written in-kernel LSTM — so it pays the same runtime
        // invocation overhead plus CPU-rate compute.
        auto cpu_t = [&](std::size_t b) {
            auto s = mkseqs(b);
            Nanos t0 = lake.clock().now();
            cpu.classify(s, b);
            return toUs(lake.clock().now() - t0) +
                   toUs(ml::KleioService::kTfCallOverhead);
        };
        auto gpu_t = [&](std::size_t b) {
            auto s = mkseqs(b);
            Nanos t0 = lake.clock().now();
            kleio.classify(lake.lib(), s, b);
            return toUs(lake.clock().now() - t0);
        };
        std::printf("%-24s %-16s %10zu %12s\n", "Page warmth",
                    "LSTM 2x256", findCrossover(pow2, cpu_t, gpu_t), "1");
    }

    // --- Load balancing: MLLB ------------------------------------------
    {
        ml::Mlp model(ml::MlpConfig::mllb(), rng);
        ml::CpuMlp cpu(model, lake.kernelCpu());
        ml::LakeMlp gpu(model, lake.lib(), false, 1024);
        auto cpu_t = [&](std::size_t b) {
            ml::Matrix x = randomBatch(b, model.config().input, rng);
            Nanos t0 = lake.clock().now();
            cpu.classify(x);
            return toUs(lake.clock().now() - t0);
        };
        auto gpu_t = [&](std::size_t b) {
            ml::Matrix x = randomBatch(b, model.config().input, rng);
            Nanos t0 = lake.clock().now();
            gpu.classify(x);
            return toUs(lake.clock().now() - t0);
        };
        std::printf("%-24s %-16s %10zu %12s\n", "Load balancing",
                    "NN (MLLB)", findCrossover(pow2, cpu_t, gpu_t),
                    "256");
    }

    // --- Filesystem prefetching: KML -----------------------------------
    {
        ml::Mlp model(ml::MlpConfig::kml(), rng);
        ml::CpuMlp cpu(model, lake.kernelCpu());
        ml::LakeMlp gpu(model, lake.lib(), false, 1024);
        auto cpu_t = [&](std::size_t b) {
            ml::Matrix x = randomBatch(b, model.config().input, rng);
            Nanos t0 = lake.clock().now();
            cpu.classify(x);
            return toUs(lake.clock().now() - t0);
        };
        auto gpu_t = [&](std::size_t b) {
            ml::Matrix x = randomBatch(b, model.config().input, rng);
            Nanos t0 = lake.clock().now();
            gpu.classify(x);
            return toUs(lake.clock().now() - t0);
        };
        std::printf("%-24s %-16s %10zu %12s\n", "Filesystem prefetching",
                    "NN (KML)", findCrossover(pow2, cpu_t, gpu_t), "64");
    }

    // --- Malware detection: kNN ----------------------------------------
    // Fig. 12's x axis is the *feature count*, so the crossover here is
    // the dimensionality at which shipping one per-process anomaly
    // check (against its 256-sample reference window) to the GPU wins.
    {
        std::size_t crossover_dim = 0;
        for (std::size_t dim : pow2) {
            ml::Knn model(dim, 16);
            std::vector<float> pt(dim);
            for (int i = 0; i < 256; ++i) {
                for (auto &v : pt)
                    v = static_cast<float>(rng.uniform(0.0, 1.0));
                model.add(pt.data(), i % 2);
            }
            ml::CpuKnn cpu(model, lake.kernelCpu());
            ml::LakeKnn gpu(model, lake.lib(), false, 4);
            std::vector<float> q(dim);
            for (auto &v : q)
                v = static_cast<float>(rng.uniform(0.0, 1.0));

            Nanos t0 = lake.clock().now();
            cpu.classify(q.data(), 1);
            Nanos cpu_t = lake.clock().now() - t0;
            t0 = lake.clock().now();
            gpu.classify(q.data(), 1);
            Nanos gpu_t = lake.clock().now() - t0;
            if (gpu_t < cpu_t) {
                crossover_dim = dim;
                break;
            }
        }
        std::printf("%-24s %-16s %10zu %12s\n", "Malware detection",
                    "k-NN (features)", crossover_dim, "128");
    }

    // --- Filesystem encryption: block size crossover vs AES-NI ---------
    {
        std::uint8_t key[32];
        for (int i = 0; i < 32; ++i)
            key[i] = static_cast<std::uint8_t>(i);
        gpu::CpuSpec spec = gpu::CpuSpec::xeonGold6226R();
        crypto::AesNiCipher ni(key, 32, lake.clock(), spec);
        crypto::LakeGpuCipher gpu_eng(key, 32, lake.lib(), 4 << 20);
        std::uint8_t iv[12] = {};
        std::vector<std::uint8_t> buf(4 << 20), out(4 << 20);
        std::uint8_t tag[16];

        std::size_t crossover_bytes = 0;
        for (std::size_t bytes = 4096; bytes <= (4u << 20); bytes *= 2) {
            Nanos t0 = lake.clock().now();
            ni.encryptExtent(iv, buf.data(), bytes, out.data(), tag);
            Nanos ni_t = lake.clock().now() - t0;
            t0 = lake.clock().now();
            gpu_eng.encryptExtent(iv, buf.data(), bytes, out.data(), tag);
            Nanos gpu_t = lake.clock().now() - t0;
            if (gpu_t < ni_t) {
                crossover_bytes = bytes;
                break;
            }
        }
        std::printf("%-24s %-16s %9zuK %12s\n", "Filesystem encryption",
                    "AES-GCM vs NI", crossover_bytes / 1024, "16/128KB");
    }

    bench::expectation(
        "crossover exists for every workload and is model-dependent: "
        "small for heavy models (LSTM ~1, NN+2 ~2), larger for cheap "
        "models (MLLB ~256); encryption crosses AES-NI in the tens of "
        "KB per block");
    return 0;
}
