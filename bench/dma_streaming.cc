// Streaming DMA orchestration ablation (DESIGN.md §10): virtual-time
// throughput of a transfer-bound extent mix — HtoD, a memory-rate
// kernel, DtoH per item — across {1, 2, 4} streams, pooled buffers vs
// a fresh lakeShm + cuMemAlloc/cuMemFree per item. The grid isolates
// what each mechanism buys:
//
//  - pooling removes the per-item alloc/free RPC pair and all
//    steady-state arena traffic (counted: the pooled arms must show 0
//    shm allocations inside the timed loop);
//  - extra streams let the copy engine run extent i+1's HtoD while the
//    compute engine runs kernel i, per the per-stream FIFO timelines.
//
// A second section measures scatter-gather coalescing: n small feature
// vectors staged as one strided copy (gatherIn) vs n individual async
// copies, each paying the per-transfer overhead.
//
// Results land in BENCH_dma.json (with build provenance). --smoke
// shrinks the run for CI (`ctest -L dma`).

#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "base/logging.h"
#include "bench_util.h"
#include "channel/channel.h"
#include "gpu/device.h"
#include "gpu/kernels.h"
#include "gpu/spec.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "remote/daemon.h"
#include "remote/lakelib.h"
#include "remote/streampool.h"
#include "shm/arena.h"

using namespace lake;

namespace {

constexpr std::size_t kExtent = 64 << 10;

/**
 * A memory-rate kernel sized so compute roughly balances the two
 * copies of an extent: cost = bytes / 4 ns (a ~4 GB/s effective
 * touch rate). Balanced stages are where overlap pays most — a
 * transfer-bound mix per the §10 contract.
 */
void
registerScaleKernel()
{
    gpu::KernelRegistry::global().add(
        "dma_scale",
        [](gpu::Device &, const gpu::LaunchConfig &) {
            return gpu::CuResult::Success;
        },
        [](const gpu::Device &, const gpu::LaunchConfig &cfg) -> Nanos {
            return cfg.u64Arg(1) / 4;
        });
}

/** In-process LAKE stack (virtual-time measurement only). */
struct Rig
{
    Clock clock;
    shm::ShmArena arena;
    gpu::Device device;
    channel::Channel chan;
    remote::LakeDaemon daemon;
    remote::LakeLib lib;

    Rig()
        : arena(16 << 20), device(gpu::DeviceSpec::a100()),
          chan(channel::Kind::Netlink, clock),
          daemon(chan, arena, device, clock),
          lib(chan, arena, [this] { daemon.processPending(); })
    {
        // Streaming rides the PR 3 pipelined fast path; every arm runs
        // with the same pipeline setting so the grid isolates
        // pooling/streams, not batching.
        remote::PipelineConfig p;
        p.enabled = true;
        p.max_batch = 64;
        lib.setPipeline(p);
    }
};

struct ArmResult
{
    std::uint32_t streams = 0;
    bool pooled = false;
    Nanos virt_elapsed = 0;
    double mbps = 0.0;
    std::uint64_t steady_shm_allocs = 0; //!< arena allocs in timed loop
    std::uint64_t credit_stalls = 0;
    double stalled_us = 0.0;
    std::uint64_t syncs = 0;
};

/**
 * Pooled arm: per item, acquire a pooled slot, stage the extent in,
 * run dma_scale, stage it back out, round-robining across the
 * orchestrator's streams. Flow control is entirely credit-based —
 * acquire() stalls in virtual time when the ring runs dry.
 */
ArmResult
runPooled(std::uint32_t streams, std::size_t items)
{
    Rig rig;
    remote::StreamingConfig sc;
    sc.enabled = true;
    sc.streams = streams;
    sc.pool_buffers = 2 * streams; // depth-2 per stream (§10 sizing)
    sc.class_bytes = kExtent;
    sc.size_classes = 1;
    remote::StreamOrchestrator orch(rig.lib, rig.clock, sc);

    // Setup (untimed): one device slab per stream, allocated once —
    // the analogue of the pool on the device side.
    std::vector<gpu::DevicePtr> dev(streams, 0);
    for (auto &d : dev)
        if (rig.lib.cuMemAlloc(&d, kExtent) != gpu::CuResult::Success) {
            std::fprintf(stderr, "pooled arm: cuMemAlloc failed\n");
            return {};
        }

    std::uint64_t allocs0 = obs::Metrics::global().shm_allocs.get();
    Nanos t0 = rig.clock.now();
    for (std::size_t i = 0; i < items; ++i) {
        std::uint32_t k = static_cast<std::uint32_t>(i) % streams;
        gpu::StreamId s = orch.streamAt(k);
        remote::StreamOrchestrator::Buffer *buf = orch.acquire(kExtent);
        LAKE_ASSERT(buf != nullptr, "pool acquire failed");
        std::memset(rig.arena.at(buf->shm), static_cast<int>(i), 64);
        orch.stageIn(buf, dev[k], kExtent, s);
        gpu::LaunchConfig launch;
        launch.kernel = "dma_scale";
        launch.grid_x = kExtent / 4096;
        launch.block_x = 256;
        launch.arg(dev[k]).arg(kExtent, nullptr);
        rig.lib.cuLaunchKernel(launch, s);
        orch.stageOut(buf, dev[k], kExtent, s);
    }
    orch.drain();

    ArmResult r;
    r.streams = streams;
    r.pooled = true;
    r.virt_elapsed = rig.clock.now() - t0;
    r.mbps = static_cast<double>(items * kExtent) / 1e6 /
             toSec(r.virt_elapsed);
    r.steady_shm_allocs =
        obs::Metrics::global().shm_allocs.get() - allocs0;
    r.credit_stalls = orch.stats().credit_stalls;
    r.stalled_us = static_cast<double>(orch.stats().stalled_ns) / 1000.0;
    r.syncs = orch.stats().syncs;
    if (obs::Metrics::global().enabled())
        orch.publishMetrics();
    return r;
}

/**
 * Unpooled (malloc) arm: the classic data path — every item allocates
 * a fresh lakeShm buffer and a fresh device buffer (a two-way
 * cuMemAlloc RPC), stages through them asynchronously, and frees both
 * once its stream synchronizes. Depth-1 per stream, so extra streams
 * still overlap; what this arm cannot avoid is the per-item alloc/free
 * RPC pair and arena churn.
 */
ArmResult
runUnpooled(std::uint32_t streams, std::size_t items)
{
    Rig rig;

    struct Pending
    {
        bool valid = false;
        gpu::DevicePtr dev = 0;
        shm::ShmOffset shm = shm::kNullOffset;
    };
    std::vector<Pending> pending(streams);
    std::uint64_t syncs = 0;

    std::uint64_t allocs0 = obs::Metrics::global().shm_allocs.get();
    Nanos t0 = rig.clock.now();
    for (std::size_t i = 0; i < items; ++i) {
        std::uint32_t k = static_cast<std::uint32_t>(i) % streams;
        gpu::StreamId s =
            remote::StreamOrchestrator::kStreamBase + k;
        if (pending[k].valid) {
            rig.lib.cuStreamSynchronize(s);
            ++syncs;
            rig.lib.cuMemFree(pending[k].dev);
            rig.arena.free(pending[k].shm);
            pending[k].valid = false;
        }
        shm::ShmOffset shm = rig.arena.alloc(kExtent);
        LAKE_ASSERT(shm != shm::kNullOffset, "arena exhausted");
        gpu::DevicePtr dev = 0;
        if (rig.lib.cuMemAlloc(&dev, kExtent) !=
            gpu::CuResult::Success) {
            std::fprintf(stderr, "unpooled arm: cuMemAlloc failed\n");
            return {};
        }
        std::memset(rig.arena.at(shm), static_cast<int>(i), 64);
        rig.lib.cuMemcpyHtoDShmAsync(dev, shm, kExtent, s);
        gpu::LaunchConfig launch;
        launch.kernel = "dma_scale";
        launch.grid_x = kExtent / 4096;
        launch.block_x = 256;
        launch.arg(dev).arg(kExtent, nullptr);
        rig.lib.cuLaunchKernel(launch, s);
        rig.lib.cuMemcpyDtoHShmAsync(shm, dev, kExtent, s);
        pending[k] = {true, dev, shm};
    }
    for (std::uint32_t k = 0; k < streams; ++k) {
        if (!pending[k].valid)
            continue;
        rig.lib.cuStreamSynchronize(
            remote::StreamOrchestrator::kStreamBase + k);
        ++syncs;
        rig.lib.cuMemFree(pending[k].dev);
        rig.arena.free(pending[k].shm);
    }

    ArmResult r;
    r.streams = streams;
    r.pooled = false;
    r.virt_elapsed = rig.clock.now() - t0;
    r.mbps = static_cast<double>(items * kExtent) / 1e6 /
             toSec(r.virt_elapsed);
    r.steady_shm_allocs =
        obs::Metrics::global().shm_allocs.get() - allocs0;
    r.syncs = syncs;
    return r;
}

struct GatherResult
{
    Nanos individual = 0;
    Nanos gathered = 0;
};

/**
 * Scatter-gather section: 64 LinnOS-sized feature vectors (124 B)
 * uploaded as 64 individual async copies vs one gatherIn — the
 * coalescing the feature-registry scoring path uses.
 */
GatherResult
runGather(std::size_t rounds)
{
    constexpr std::size_t kVecs = 64;
    constexpr std::size_t kVecBytes = 124;
    GatherResult out;

    {
        Rig rig;
        gpu::DevicePtr dev = 0;
        rig.lib.cuMemAlloc(&dev, kVecs * kVecBytes);
        shm::ShmOffset stage = rig.arena.alloc(kVecs * kVecBytes);
        Nanos t0 = rig.clock.now();
        for (std::size_t r = 0; r < rounds; ++r) {
            for (std::size_t v = 0; v < kVecs; ++v)
                rig.lib.cuMemcpyHtoDShmAsync(
                    dev + v * kVecBytes, stage + v * kVecBytes,
                    kVecBytes, 1);
            rig.lib.cuStreamSynchronize(1);
        }
        out.individual = rig.clock.now() - t0;
        rig.arena.free(stage);
    }

    {
        Rig rig;
        remote::StreamingConfig sc;
        sc.enabled = true;
        sc.streams = 1;
        sc.pool_buffers = 2;
        sc.class_bytes = kVecs * kVecBytes;
        sc.size_classes = 1;
        remote::StreamOrchestrator orch(rig.lib, rig.clock, sc);
        gpu::DevicePtr dev = 0;
        rig.lib.cuMemAlloc(&dev, kVecs * kVecBytes);
        std::vector<std::uint8_t> vec(kVecBytes, 0x3c);
        const void *srcs[kVecs];
        std::size_t lens[kVecs];
        for (std::size_t v = 0; v < kVecs; ++v) {
            srcs[v] = vec.data();
            lens[v] = kVecBytes;
        }
        gpu::StreamId s = orch.streamAt(0);
        Nanos t0 = rig.clock.now();
        for (std::size_t r = 0; r < rounds; ++r) {
            remote::StreamOrchestrator::Buffer *buf =
                orch.acquire(kVecs * kVecBytes);
            LAKE_ASSERT(buf != nullptr, "gather acquire failed");
            orch.gatherIn(buf, dev, srcs, lens, kVecs, s);
            orch.syncStream(s);
        }
        out.gathered = rig.clock.now() - t0;
    }
    return out;
}

void
jsonArm(bench::JsonWriter &json, const ArmResult &r)
{
    json.beginObject();
    json.key("streams").value(static_cast<std::size_t>(r.streams));
    json.key("pooled").rawValue(r.pooled ? "true" : "false");
    json.key("virtual_elapsed_us")
        .value(static_cast<double>(r.virt_elapsed) / 1000.0);
    json.key("throughput_mbps").value(r.mbps);
    json.key("steady_state_shm_allocs")
        .value(static_cast<std::size_t>(r.steady_shm_allocs));
    json.key("credit_stalls")
        .value(static_cast<std::size_t>(r.credit_stalls));
    json.key("stalled_us").value(r.stalled_us);
    json.key("syncs").value(static_cast<std::size_t>(r.syncs));
    json.endObject();
}

} // namespace

int
main(int argc, char **argv)
{
    bool smoke = false;
    const char *out_path = "BENCH_dma.json";
    for (int i = 1; i < argc; ++i) {
        if (std::string(argv[i]) == "--smoke")
            smoke = true;
        else
            out_path = argv[i];
    }

    bench::banner("dma_streaming",
                  "virtual-time throughput of the streaming DMA fast "
                  "path: streams x pooled-vs-malloc ablation");
    registerScaleKernel();

    // Count arena traffic through the obs registry: this bench
    // measures virtual time only, which metrics never perturb.
    obs::Metrics::global().reset();
    obs::Metrics::global().setEnabled(true);

    const std::size_t items = smoke ? 64 : 512;
    const std::size_t gather_rounds = smoke ? 8 : 64;

    std::printf("%4zu x %zuKB extents (HtoD + dma_scale + DtoH)\n\n",
                items, kExtent >> 10);
    std::printf("%-10s %8s %12s %14s %10s %8s\n", "arm", "streams",
                "virt-us", "MB/s", "shm-allocs", "stalls");

    std::vector<ArmResult> arms;
    for (std::uint32_t s : {1u, 2u, 4u}) {
        ArmResult m = runUnpooled(s, items);
        ArmResult p = runPooled(s, items);
        if (m.virt_elapsed == 0 || p.virt_elapsed == 0)
            return 1;
        for (const ArmResult &r : {m, p})
            std::printf("%-10s %8u %12.1f %14.1f %10llu %8llu\n",
                        r.pooled ? "pooled" : "malloc", r.streams,
                        static_cast<double>(r.virt_elapsed) / 1000.0,
                        r.mbps,
                        static_cast<unsigned long long>(
                            r.steady_shm_allocs),
                        static_cast<unsigned long long>(
                            r.credit_stalls));
        arms.push_back(m);
        arms.push_back(p);
    }

    const ArmResult &base = arms.front();  // 1-stream malloc
    const ArmResult &best = arms.back();   // 4-stream pooled
    double speedup = best.mbps / base.mbps;
    std::printf("\n4-stream pooled vs 1-stream malloc: %.2fx "
                "(pooled steady-state shm allocs: %llu)\n",
                speedup,
                static_cast<unsigned long long>(
                    best.steady_shm_allocs));

    GatherResult g = runGather(gather_rounds);
    double gather_ratio = static_cast<double>(g.individual) /
                          static_cast<double>(g.gathered);
    std::printf("gather coalescing: 64 x 124B vectors, %.1f virt-us "
                "individual vs %.1f gathered (%.1fx)\n",
                static_cast<double>(g.individual) / 1000.0,
                static_cast<double>(g.gathered) / 1000.0,
                gather_ratio);

    obs::Metrics::global().setEnabled(false);

    bench::JsonWriter json;
    json.beginObject();
    json.key("bench").value("dma_streaming");
    bench::provenance(json);
    json.key("workload").beginObject();
    json.key("items").value(items);
    json.key("extent_bytes").value(kExtent);
    json.key("mix").value("per item: HtoD extent + dma_scale kernel "
                          "(bytes/4ns) + DtoH extent");
    json.key("pipelined").rawValue("true");
    json.key("smoke").value(smoke ? "true" : "false");
    json.endObject();
    json.key("arms").beginArray();
    for (const ArmResult &r : arms)
        jsonArm(json, r);
    json.endArray();
    json.key("speedup_4s_pooled_vs_1s_malloc").value(speedup);
    json.key("pooled_steady_state_shm_allocs")
        .value(static_cast<std::size_t>(best.steady_shm_allocs));
    json.key("gather").beginObject();
    json.key("vectors").value(static_cast<std::size_t>(64));
    json.key("vector_bytes").value(static_cast<std::size_t>(124));
    json.key("rounds").value(gather_rounds);
    json.key("individual_virt_us")
        .value(static_cast<double>(g.individual) / 1000.0);
    json.key("gathered_virt_us")
        .value(static_cast<double>(g.gathered) / 1000.0);
    json.key("coalescing_ratio").value(gather_ratio);
    json.endObject();
    json.key("metrics").rawValue(obs::metricsJsonObject());
    json.endObject();

    bool wrote = json.writeFile(out_path);
    if (!wrote)
        std::fprintf(stderr, "failed to write %s\n", out_path);
    else
        std::printf("wrote %s\n", out_path);

    bench::expectation(
        "pooled arms show zero steady-state shm allocations (the pool "
        "recycles its carve-out); stream count scales throughput until "
        "the copy engine saturates; 4-stream pooled >= 2x the 1-stream "
        "malloc baseline; gathered submission amortizes the per-copy "
        "overhead across the whole feature batch");
    return wrote ? 0 : 1;
}
