#ifndef LAKE_CRYPTO_AES_H
#define LAKE_CRYPTO_AES_H

/**
 * @file
 * AES block cipher (FIPS 197), 128- and 256-bit keys.
 *
 * The eCryptfs case study (§7.7) needs a real cipher so encrypted file
 * contents round-trip bit-exactly across the CPU, AES-NI and GPU
 * engines. Only block *encryption* is implemented — CTR and GCM never
 * run the inverse cipher.
 */

#include <array>
#include <cstddef>
#include <cstdint>

namespace lake::crypto {

/** AES key schedule + block encryption. */
class Aes
{
  public:
    /** Block size in bytes. */
    static constexpr std::size_t kBlockBytes = 16;

    /**
     * Expands @p key of @p key_bytes (16 for AES-128, 32 for AES-256).
     * Panics on any other key length.
     */
    Aes(const std::uint8_t *key, std::size_t key_bytes);

    /** Encrypts one 16-byte block (in-place safe: in may equal out). */
    void encryptBlock(const std::uint8_t in[16], std::uint8_t out[16]) const;

    /** Number of rounds (10 for AES-128, 14 for AES-256). */
    int rounds() const { return rounds_; }

  private:
    int rounds_;
    /** Round keys: 4*(rounds+1) 32-bit words. */
    std::array<std::uint32_t, 60> round_keys_{};
};

} // namespace lake::crypto

#endif // LAKE_CRYPTO_AES_H
