#ifndef LAKE_CRYPTO_GCM_H
#define LAKE_CRYPTO_GCM_H

/**
 * @file
 * AES-GCM (NIST SP 800-38D).
 *
 * The paper "modified eCryptfs to use AES-GCM instead of CBC because it
 * is parallelizable" (§7.7) — CTR keystream blocks are independent,
 * which is what the GPU engine exploits. 96-bit IVs only (the standard
 * fast path).
 */

#include <cstddef>
#include <cstdint>
#include <vector>

#include "crypto/aes.h"

namespace lake::crypto {

/** Authentication tag length in bytes. */
constexpr std::size_t kGcmTagBytes = 16;
/** Supported IV length in bytes. */
constexpr std::size_t kGcmIvBytes = 12;

/**
 * AES-GCM authenticated encryption with one key.
 */
class AesGcm
{
  public:
    /** @param key, key_bytes as Aes */
    AesGcm(const std::uint8_t *key, std::size_t key_bytes);

    /**
     * Encrypts @p len bytes of @p plain into @p cipher (may alias) and
     * writes the 16-byte tag.
     * @param iv 12-byte nonce — never reuse under one key
     * @param aad optional additional authenticated data (may be null)
     */
    void encrypt(const std::uint8_t *iv, const std::uint8_t *plain,
                 std::size_t len, const std::uint8_t *aad,
                 std::size_t aad_len, std::uint8_t *cipher,
                 std::uint8_t tag[kGcmTagBytes]) const;

    /**
     * Decrypts and authenticates.
     * @return true when the tag verifies; on failure @p plain is
     *         zeroed (release-of-unverified-plaintext is a classic
     *         GCM misuse).
     */
    bool decrypt(const std::uint8_t *iv, const std::uint8_t *cipher,
                 std::size_t len, const std::uint8_t *aad,
                 std::size_t aad_len,
                 const std::uint8_t tag[kGcmTagBytes],
                 std::uint8_t *plain) const;

  private:
    /** GHASH over aad and text, returning the pre-tag hash. */
    void ghash(const std::uint8_t *aad, std::size_t aad_len,
               const std::uint8_t *text, std::size_t text_len,
               std::uint8_t out[16]) const;

    /** CTR keystream application starting at counter block @p j. */
    void ctr(std::uint8_t j[16], const std::uint8_t *in, std::size_t len,
             std::uint8_t *out) const;

    Aes aes_;
    std::uint8_t h_[16]; //!< hash subkey E(K, 0^128)
};

} // namespace lake::crypto

#endif // LAKE_CRYPTO_GCM_H
