#ifndef LAKE_CRYPTO_ENGINES_H
#define LAKE_CRYPTO_ENGINES_H

/**
 * @file
 * Cipher execution engines: the four bars of Fig. 14.
 *
 * All engines produce bit-identical AES-GCM output; they differ in
 * where the work runs and what virtual time it costs:
 *
 *  - CpuCipher:    scalar kernel crypto (the paper's "CPU" line)
 *  - AesNiCipher:  AES-NI instructions (same core, ~6x throughput)
 *  - LakeGpuCipher: extents shipped to the GPU through LAKE ("LAKE")
 *  - HybridCipher: GPU and AES-NI operate on disjoint halves of every
 *    extent concurrently ("GPU+AES-NI"), the +31%/+22% configuration
 *
 * Each engine implements the Linux crypto-API-style interface the
 * modified eCryptfs consumes (encryptExtent / decryptExtent).
 */

#include <cstdint>
#include <memory>
#include <vector>

#include "base/time.h"
#include "crypto/gcm.h"
#include "gpu/spec.h"
#include "remote/lakelib.h"

namespace lake::crypto {

/** Interface eCryptfs programs against (a Linux crypto API cipher). */
class CipherEngine
{
  public:
    virtual ~CipherEngine() = default;

    /** Encrypts one extent; writes ciphertext and tag. */
    virtual void encryptExtent(const std::uint8_t iv[kGcmIvBytes],
                               const std::uint8_t *plain, std::size_t len,
                               std::uint8_t *cipher,
                               std::uint8_t tag[kGcmTagBytes]) = 0;

    /** Decrypts one extent. @return tag verification result. */
    virtual bool decryptExtent(const std::uint8_t iv[kGcmIvBytes],
                               const std::uint8_t *cipher, std::size_t len,
                               const std::uint8_t tag[kGcmTagBytes],
                               std::uint8_t *plain) = 0;

    /** Engine name as the figures label it. */
    virtual const char *name() const = 0;
};

/** Scalar software AES-GCM in kernel context. */
class CpuCipher final : public CipherEngine
{
  public:
    /** Fixed per-extent overhead (crypto API dispatch + scatterlist). */
    static constexpr Nanos kPerExtent = 2_us;

    CpuCipher(const std::uint8_t *key, std::size_t key_bytes, Clock &clock,
              gpu::CpuSpec spec);

    void encryptExtent(const std::uint8_t iv[kGcmIvBytes],
                       const std::uint8_t *plain, std::size_t len,
                       std::uint8_t *cipher,
                       std::uint8_t tag[kGcmTagBytes]) override;
    bool decryptExtent(const std::uint8_t iv[kGcmIvBytes],
                       const std::uint8_t *cipher, std::size_t len,
                       const std::uint8_t tag[kGcmTagBytes],
                       std::uint8_t *plain) override;
    const char *name() const override { return "CPU"; }

  private:
    AesGcm gcm_;
    Clock &clock_;
    gpu::CpuSpec spec_;
};

/** AES-NI-accelerated AES-GCM (same data path, different cost). */
class AesNiCipher final : public CipherEngine
{
  public:
    /** Fixed per-extent overhead. */
    static constexpr Nanos kPerExtent = 1500_ns;

    AesNiCipher(const std::uint8_t *key, std::size_t key_bytes,
                Clock &clock, gpu::CpuSpec spec);

    void encryptExtent(const std::uint8_t iv[kGcmIvBytes],
                       const std::uint8_t *plain, std::size_t len,
                       std::uint8_t *cipher,
                       std::uint8_t tag[kGcmTagBytes]) override;
    bool decryptExtent(const std::uint8_t iv[kGcmIvBytes],
                       const std::uint8_t *cipher, std::size_t len,
                       const std::uint8_t tag[kGcmTagBytes],
                       std::uint8_t *plain) override;
    const char *name() const override { return "AES-NI"; }

  private:
    AesGcm gcm_;
    Clock &clock_;
    gpu::CpuSpec spec_;
};

/**
 * GPU AES-GCM through LAKE: the "aes_gcm" kernel runs on device
 * buffers; extents stream through lakeShm.
 */
class LakeGpuCipher final : public CipherEngine
{
  public:
    /**
     * @param key, key_bytes cipher key (uploaded to the device once)
     * @param lib        kernel-side stubs
     * @param max_extent largest extent the FS will pass (device buffer
     *                   sizing)
     */
    LakeGpuCipher(const std::uint8_t *key, std::size_t key_bytes,
                  remote::LakeLib &lib, std::size_t max_extent);
    ~LakeGpuCipher() override;

    LakeGpuCipher(const LakeGpuCipher &) = delete;
    LakeGpuCipher &operator=(const LakeGpuCipher &) = delete;

    void encryptExtent(const std::uint8_t iv[kGcmIvBytes],
                       const std::uint8_t *plain, std::size_t len,
                       std::uint8_t *cipher,
                       std::uint8_t tag[kGcmTagBytes]) override;
    bool decryptExtent(const std::uint8_t iv[kGcmIvBytes],
                       const std::uint8_t *cipher, std::size_t len,
                       const std::uint8_t tag[kGcmTagBytes],
                       std::uint8_t *plain) override;
    const char *name() const override { return "LAKE"; }

  private:
    /** Shared transform: ships one extent through the GPU. */
    bool run(bool encrypt, const std::uint8_t iv[kGcmIvBytes],
             const std::uint8_t *in, std::size_t len, std::uint8_t *out,
             std::uint8_t tag[kGcmTagBytes]);

    remote::LakeLib &lib_;
    shm::ShmArena &arena_;
    std::size_t key_bytes_;
    std::size_t max_extent_;
    gpu::DevicePtr d_ctl_ = 0;  //!< key + iv + tag control block
    gpu::DevicePtr d_buf_ = 0;  //!< extent data
    shm::ShmOffset h_buf_ = shm::kNullOffset;
    shm::ShmOffset h_ctl_ = shm::kNullOffset;
};

/**
 * GPU + AES-NI: each extent is split proportionally to the two
 * engines' throughputs and processed concurrently; elapsed time is the
 * slower half (the GPU path also pays its LAKE transport).
 */
class HybridCipher final : public CipherEngine
{
  public:
    HybridCipher(const std::uint8_t *key, std::size_t key_bytes,
                 remote::LakeLib &lib, Clock &clock, gpu::CpuSpec cpu,
                 std::size_t max_extent);

    void encryptExtent(const std::uint8_t iv[kGcmIvBytes],
                       const std::uint8_t *plain, std::size_t len,
                       std::uint8_t *cipher,
                       std::uint8_t tag[kGcmTagBytes]) override;
    bool decryptExtent(const std::uint8_t iv[kGcmIvBytes],
                       const std::uint8_t *cipher, std::size_t len,
                       const std::uint8_t tag[kGcmTagBytes],
                       std::uint8_t *plain) override;
    const char *name() const override { return "GPU+AES-NI"; }

  private:
    AesGcm gcm_;      //!< performs the real transform
    LakeGpuCipher gpu_;
    Clock &clock_;
    gpu::CpuSpec cpu_;
};

/** Registers the "aes_gcm" GPU kernel; idempotent. */
void registerCryptoKernels();

} // namespace lake::crypto

#endif // LAKE_CRYPTO_ENGINES_H
