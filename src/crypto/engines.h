#ifndef LAKE_CRYPTO_ENGINES_H
#define LAKE_CRYPTO_ENGINES_H

/**
 * @file
 * Cipher execution engines: the four bars of Fig. 14.
 *
 * All engines produce bit-identical AES-GCM output; they differ in
 * where the work runs and what virtual time it costs:
 *
 *  - CpuCipher:    scalar kernel crypto (the paper's "CPU" line)
 *  - AesNiCipher:  AES-NI instructions (same core, ~6x throughput)
 *  - LakeGpuCipher: extents shipped to the GPU through LAKE ("LAKE")
 *  - HybridCipher: GPU and AES-NI operate on disjoint halves of every
 *    extent concurrently ("GPU+AES-NI"), the +31%/+22% configuration
 *
 * Each engine implements the Linux crypto-API-style interface the
 * modified eCryptfs consumes (encryptExtent / decryptExtent).
 */

#include <cstdint>
#include <memory>
#include <vector>

#include "base/time.h"
#include "crypto/gcm.h"
#include "gpu/spec.h"
#include "remote/lakelib.h"
#include "remote/streampool.h"

namespace lake::crypto {

/**
 * One extent of a batch transform (the scatterlist entry of the Linux
 * crypto API's batched submission path).
 */
struct ExtentOp
{
    const std::uint8_t *iv = nullptr; //!< kGcmIvBytes bytes
    const std::uint8_t *in = nullptr; //!< plaintext (encrypt) / ciphertext
    std::size_t len = 0;
    std::uint8_t *out = nullptr;
    /** Tag: output for encrypt, expected value for decrypt. */
    std::uint8_t tag[kGcmTagBytes] = {};
    /** Per-extent result (decrypt: tag verification). */
    bool ok = false;
};

/** Interface eCryptfs programs against (a Linux crypto API cipher). */
class CipherEngine
{
  public:
    virtual ~CipherEngine() = default;

    /** Encrypts one extent; writes ciphertext and tag. */
    virtual void encryptExtent(const std::uint8_t iv[kGcmIvBytes],
                               const std::uint8_t *plain, std::size_t len,
                               std::uint8_t *cipher,
                               std::uint8_t tag[kGcmTagBytes]) = 0;

    /** Decrypts one extent. @return tag verification result. */
    virtual bool decryptExtent(const std::uint8_t iv[kGcmIvBytes],
                               const std::uint8_t *cipher, std::size_t len,
                               const std::uint8_t tag[kGcmTagBytes],
                               std::uint8_t *plain) = 0;

    /**
     * True when the engine has a genuinely pipelined batch path.
     * eCryptfs only takes its batched submission route for such
     * engines, so engines using the default per-extent loops keep
     * their exact serial virtual-time trajectory.
     */
    virtual bool batched() const { return false; }

    /** Encrypts a batch; default is the serial per-extent loop. */
    virtual void encryptBatch(ExtentOp *ops, std::size_t n);

    /**
     * Decrypts a batch (default: serial loop).
     * @return true iff every extent authenticated (per-op ok is set).
     */
    virtual bool decryptBatch(ExtentOp *ops, std::size_t n);

    /** Engine name as the figures label it. */
    virtual const char *name() const = 0;
};

/** Scalar software AES-GCM in kernel context. */
class CpuCipher final : public CipherEngine
{
  public:
    /** Fixed per-extent overhead (crypto API dispatch + scatterlist). */
    static constexpr Nanos kPerExtent = 2_us;

    CpuCipher(const std::uint8_t *key, std::size_t key_bytes, Clock &clock,
              gpu::CpuSpec spec);

    void encryptExtent(const std::uint8_t iv[kGcmIvBytes],
                       const std::uint8_t *plain, std::size_t len,
                       std::uint8_t *cipher,
                       std::uint8_t tag[kGcmTagBytes]) override;
    bool decryptExtent(const std::uint8_t iv[kGcmIvBytes],
                       const std::uint8_t *cipher, std::size_t len,
                       const std::uint8_t tag[kGcmTagBytes],
                       std::uint8_t *plain) override;
    const char *name() const override { return "CPU"; }

  private:
    AesGcm gcm_;
    Clock &clock_;
    gpu::CpuSpec spec_;
};

/** AES-NI-accelerated AES-GCM (same data path, different cost). */
class AesNiCipher final : public CipherEngine
{
  public:
    /** Fixed per-extent overhead. */
    static constexpr Nanos kPerExtent = 1500_ns;

    AesNiCipher(const std::uint8_t *key, std::size_t key_bytes,
                Clock &clock, gpu::CpuSpec spec);

    void encryptExtent(const std::uint8_t iv[kGcmIvBytes],
                       const std::uint8_t *plain, std::size_t len,
                       std::uint8_t *cipher,
                       std::uint8_t tag[kGcmTagBytes]) override;
    bool decryptExtent(const std::uint8_t iv[kGcmIvBytes],
                       const std::uint8_t *cipher, std::size_t len,
                       const std::uint8_t tag[kGcmTagBytes],
                       std::uint8_t *plain) override;
    const char *name() const override { return "AES-NI"; }

  private:
    AesGcm gcm_;
    Clock &clock_;
    gpu::CpuSpec spec_;
};

/**
 * GPU AES-GCM through LAKE: the "aes_gcm" kernel runs on device
 * buffers; extents stream through lakeShm.
 */
class LakeGpuCipher final : public CipherEngine
{
  public:
    /**
     * @param key, key_bytes cipher key (uploaded to the device once)
     * @param lib        kernel-side stubs
     * @param max_extent largest extent the FS will pass (device buffer
     *                   sizing)
     */
    LakeGpuCipher(const std::uint8_t *key, std::size_t key_bytes,
                  remote::LakeLib &lib, std::size_t max_extent);
    ~LakeGpuCipher() override;

    LakeGpuCipher(const LakeGpuCipher &) = delete;
    LakeGpuCipher &operator=(const LakeGpuCipher &) = delete;

    void encryptExtent(const std::uint8_t iv[kGcmIvBytes],
                       const std::uint8_t *plain, std::size_t len,
                       std::uint8_t *cipher,
                       std::uint8_t tag[kGcmTagBytes]) override;
    bool decryptExtent(const std::uint8_t iv[kGcmIvBytes],
                       const std::uint8_t *cipher, std::size_t len,
                       const std::uint8_t tag[kGcmTagBytes],
                       std::uint8_t *plain) override;
    const char *name() const override { return "LAKE"; }

    /**
     * Opts into streaming DMA orchestration (DESIGN.md §10): batch
     * transforms then software-pipeline extents depth-1 across the
     * orchestrator's streams — each extent's [ctl|data] block rides
     * one coalesced HtoD from a pooled lakeShm slot into a per-stream
     * device slab, so extent i+1's upload overlaps extent i's
     * "aes_gcm" and extent i-1's download. Allocates one device slab
     * per stream here (never per extent). Pass nullptr to revert.
     */
    void enableStreaming(remote::StreamOrchestrator *orch);

    bool batched() const override { return orch_ != nullptr; }
    void encryptBatch(ExtentOp *ops, std::size_t n) override;
    bool decryptBatch(ExtentOp *ops, std::size_t n) override;

  private:
    /** Shared transform: ships one extent through the GPU. */
    bool run(bool encrypt, const std::uint8_t iv[kGcmIvBytes],
             const std::uint8_t *in, std::size_t len, std::uint8_t *out,
             std::uint8_t tag[kGcmTagBytes]);

    /** Pipelined batch transform over the orchestrator's streams. */
    bool runBatch(bool encrypt, ExtentOp *ops, std::size_t n);

    remote::LakeLib &lib_;
    shm::ShmArena &arena_;
    std::size_t key_bytes_;
    std::size_t max_extent_;
    gpu::DevicePtr d_ctl_ = 0;  //!< key + iv + tag control block
    gpu::DevicePtr d_buf_ = 0;  //!< extent data
    shm::ShmOffset h_buf_ = shm::kNullOffset;
    shm::ShmOffset h_ctl_ = shm::kNullOffset;
    remote::StreamOrchestrator *orch_ = nullptr;
    /** Per-stream [ctl|data] device slabs (streaming mode only). */
    std::vector<gpu::DevicePtr> d_slab_;
    std::uint8_t key_[32] = {};
};

/**
 * GPU + AES-NI: each extent is split proportionally to the two
 * engines' throughputs and processed concurrently; elapsed time is the
 * slower half (the GPU path also pays its LAKE transport).
 */
class HybridCipher final : public CipherEngine
{
  public:
    HybridCipher(const std::uint8_t *key, std::size_t key_bytes,
                 remote::LakeLib &lib, Clock &clock, gpu::CpuSpec cpu,
                 std::size_t max_extent);

    void encryptExtent(const std::uint8_t iv[kGcmIvBytes],
                       const std::uint8_t *plain, std::size_t len,
                       std::uint8_t *cipher,
                       std::uint8_t tag[kGcmTagBytes]) override;
    bool decryptExtent(const std::uint8_t iv[kGcmIvBytes],
                       const std::uint8_t *cipher, std::size_t len,
                       const std::uint8_t tag[kGcmTagBytes],
                       std::uint8_t *plain) override;
    const char *name() const override { return "GPU+AES-NI"; }

  private:
    AesGcm gcm_;      //!< performs the real transform
    LakeGpuCipher gpu_;
    Clock &clock_;
    gpu::CpuSpec cpu_;
};

/** Registers the "aes_gcm" GPU kernel; idempotent. */
void registerCryptoKernels();

} // namespace lake::crypto

#endif // LAKE_CRYPTO_ENGINES_H
