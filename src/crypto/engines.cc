#include "crypto/engines.h"

#include <algorithm>
#include <cstring>

#include "base/logging.h"
#include "gpu/kernels.h"

namespace lake::crypto {

using gpu::CuResult;

namespace {

/** Control block layout in device memory for the "aes_gcm" kernel. */
constexpr std::size_t kCtlKeyOff = 0;   // 32 bytes (max key)
constexpr std::size_t kCtlIvOff = 32;   // 12 bytes
constexpr std::size_t kCtlEncOff = 44;  // 1 byte: 1=encrypt
constexpr std::size_t kCtlTagOff = 48;  // 16 bytes (in or out)
constexpr std::size_t kCtlOkOff = 64;   // 1 byte result
constexpr std::size_t kCtlBytes = 80;

/**
 * Streaming-mode slot layout: the control block occupies [0, kCtlSlot)
 * and extent data starts at kCtlSlot, so one coalesced copy moves both
 * (the scatter-gather win applied to the cipher path).
 */
constexpr std::size_t kCtlSlot = 128;

void
check(CuResult r, const char *what)
{
    LAKE_ASSERT(r == CuResult::Success, "%s failed: %s", what,
                gpu::cuResultName(r));
}

CuResult
aesGcmBody(gpu::Device &dev, const gpu::LaunchConfig &cfg)
{
    if (cfg.args.size() != 4)
        return CuResult::InvalidValue;
    std::uint64_t len = cfg.u64Arg(2);
    std::uint64_t key_bytes = cfg.u64Arg(3);
    if (key_bytes != 16 && key_bytes != 32)
        return CuResult::InvalidValue;

    auto *ctl = static_cast<std::uint8_t *>(
        dev.resolve(cfg.u64Arg(0), kCtlBytes));
    auto *buf =
        static_cast<std::uint8_t *>(dev.resolve(cfg.u64Arg(1), len));
    if (!ctl || !buf)
        return CuResult::LaunchFailed;

    AesGcm gcm(ctl + kCtlKeyOff, key_bytes);
    const std::uint8_t *iv = ctl + kCtlIvOff;
    if (ctl[kCtlEncOff]) {
        gcm.encrypt(iv, buf, len, nullptr, 0, buf, ctl + kCtlTagOff);
        ctl[kCtlOkOff] = 1;
    } else {
        bool ok = gcm.decrypt(iv, buf, len, nullptr, 0, ctl + kCtlTagOff,
                              buf);
        ctl[kCtlOkOff] = ok ? 1 : 0;
    }
    return CuResult::Success;
}

Nanos
aesGcmCost(const gpu::Device &dev, const gpu::LaunchConfig &cfg)
{
    std::uint64_t len = cfg.args.size() == 4 ? cfg.u64Arg(2) : 0;
    return static_cast<Nanos>(static_cast<double>(len) /
                              dev.spec().aes_gbps);
}

} // namespace

void
CipherEngine::encryptBatch(ExtentOp *ops, std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i) {
        encryptExtent(ops[i].iv, ops[i].in, ops[i].len, ops[i].out,
                      ops[i].tag);
        ops[i].ok = true;
    }
}

bool
CipherEngine::decryptBatch(ExtentOp *ops, std::size_t n)
{
    bool all = true;
    for (std::size_t i = 0; i < n; ++i) {
        ops[i].ok = decryptExtent(ops[i].iv, ops[i].in, ops[i].len,
                                  ops[i].tag, ops[i].out);
        all = all && ops[i].ok;
    }
    return all;
}

void
registerCryptoKernels()
{
    static bool done = false;
    if (done)
        return;
    done = true;
    gpu::KernelRegistry::global().add("aes_gcm", aesGcmBody, aesGcmCost);
}

CpuCipher::CpuCipher(const std::uint8_t *key, std::size_t key_bytes,
                     Clock &clock, gpu::CpuSpec spec)
    : gcm_(key, key_bytes), clock_(clock), spec_(std::move(spec))
{
}

void
CpuCipher::encryptExtent(const std::uint8_t iv[kGcmIvBytes],
                         const std::uint8_t *plain, std::size_t len,
                         std::uint8_t *cipher,
                         std::uint8_t tag[kGcmTagBytes])
{
    clock_.advance(kPerExtent +
                   static_cast<Nanos>(static_cast<double>(len) /
                                      spec_.aes_sw_gbps));
    gcm_.encrypt(iv, plain, len, nullptr, 0, cipher, tag);
}

bool
CpuCipher::decryptExtent(const std::uint8_t iv[kGcmIvBytes],
                         const std::uint8_t *cipher, std::size_t len,
                         const std::uint8_t tag[kGcmTagBytes],
                         std::uint8_t *plain)
{
    clock_.advance(kPerExtent +
                   static_cast<Nanos>(static_cast<double>(len) /
                                      spec_.aes_sw_gbps));
    return gcm_.decrypt(iv, cipher, len, nullptr, 0, tag, plain);
}

AesNiCipher::AesNiCipher(const std::uint8_t *key, std::size_t key_bytes,
                         Clock &clock, gpu::CpuSpec spec)
    : gcm_(key, key_bytes), clock_(clock), spec_(std::move(spec))
{
}

void
AesNiCipher::encryptExtent(const std::uint8_t iv[kGcmIvBytes],
                           const std::uint8_t *plain, std::size_t len,
                           std::uint8_t *cipher,
                           std::uint8_t tag[kGcmTagBytes])
{
    clock_.advance(kPerExtent +
                   static_cast<Nanos>(static_cast<double>(len) /
                                      spec_.aes_ni_gbps));
    gcm_.encrypt(iv, plain, len, nullptr, 0, cipher, tag);
}

bool
AesNiCipher::decryptExtent(const std::uint8_t iv[kGcmIvBytes],
                           const std::uint8_t *cipher, std::size_t len,
                           const std::uint8_t tag[kGcmTagBytes],
                           std::uint8_t *plain)
{
    clock_.advance(kPerExtent +
                   static_cast<Nanos>(static_cast<double>(len) /
                                      spec_.aes_ni_gbps));
    return gcm_.decrypt(iv, cipher, len, nullptr, 0, tag, plain);
}

LakeGpuCipher::LakeGpuCipher(const std::uint8_t *key,
                             std::size_t key_bytes, remote::LakeLib &lib,
                             std::size_t max_extent)
    : lib_(lib), arena_(lib.arena()), key_bytes_(key_bytes),
      max_extent_(max_extent)
{
    registerCryptoKernels();
    LAKE_ASSERT(key_bytes == 16 || key_bytes == 32, "bad key length");
    LAKE_ASSERT(max_extent_ > 0, "max_extent must be positive");

    check(lib_.cuMemAlloc(&d_ctl_, kCtlBytes), "cuMemAlloc(ctl)");
    check(lib_.cuMemAlloc(&d_buf_, max_extent_), "cuMemAlloc(buf)");
    h_buf_ = arena_.alloc(max_extent_);
    h_ctl_ = arena_.alloc(kCtlBytes);
    LAKE_ASSERT(h_buf_ != shm::kNullOffset && h_ctl_ != shm::kNullOffset,
                "lakeShm exhausted");

    // Stage the key once; iv/flags are refreshed per extent.
    auto *ctl = static_cast<std::uint8_t *>(arena_.at(h_ctl_));
    std::memset(ctl, 0, kCtlBytes);
    std::memcpy(ctl + kCtlKeyOff, key, key_bytes);
    std::memcpy(key_, key, key_bytes);
    check(lib_.cuMemcpyHtoDShm(d_ctl_, h_ctl_, kCtlBytes), "upload key");
}

LakeGpuCipher::~LakeGpuCipher()
{
    lib_.cuMemFree(d_ctl_);
    lib_.cuMemFree(d_buf_);
    for (gpu::DevicePtr d : d_slab_)
        lib_.cuMemFree(d);
    arena_.free(h_buf_);
    arena_.free(h_ctl_);
}

void
LakeGpuCipher::enableStreaming(remote::StreamOrchestrator *orch)
{
    if (orch == orch_)
        return;
    for (gpu::DevicePtr d : d_slab_)
        lib_.cuMemFree(d);
    d_slab_.clear();
    orch_ = orch;
    if (orch_ == nullptr)
        return;
    // One [ctl|data] slab per stream, allocated here and never again:
    // the steady-state batch path performs zero cuMemAlloc/Free calls.
    d_slab_.resize(orch_->streams(), 0);
    for (std::size_t k = 0; k < d_slab_.size(); ++k)
        check(lib_.cuMemAlloc(&d_slab_[k], kCtlSlot + max_extent_),
              "cuMemAlloc(slab)");
}

bool
LakeGpuCipher::run(bool encrypt, const std::uint8_t iv[kGcmIvBytes],
                   const std::uint8_t *in, std::size_t len,
                   std::uint8_t *out, std::uint8_t tag[kGcmTagBytes])
{
    LAKE_ASSERT(len > 0 && len <= max_extent_,
                "extent %zu outside 1..%zu", len, max_extent_);

    auto *ctl = static_cast<std::uint8_t *>(arena_.at(h_ctl_));
    std::memcpy(ctl + kCtlIvOff, iv, kGcmIvBytes);
    ctl[kCtlEncOff] = encrypt ? 1 : 0;
    if (!encrypt)
        std::memcpy(ctl + kCtlTagOff, tag, kGcmTagBytes);

    std::memcpy(arena_.at(h_buf_), in, len);

    check(lib_.cuMemcpyHtoDShmAsync(d_ctl_, h_ctl_, kCtlBytes, 0),
          "ctl HtoD");
    check(lib_.cuMemcpyHtoDShmAsync(d_buf_, h_buf_, len, 0), "buf HtoD");

    gpu::LaunchConfig cfg;
    cfg.kernel = "aes_gcm";
    cfg.grid_x = static_cast<std::uint32_t>((len + 4095) / 4096);
    cfg.block_x = 256;
    cfg.arg(d_ctl_).arg(d_buf_)
        .arg(static_cast<std::uint64_t>(len), nullptr)
        .arg(static_cast<std::uint64_t>(key_bytes_), nullptr);
    check(lib_.cuLaunchKernel(cfg, 0), "launch aes_gcm");

    check(lib_.cuMemcpyDtoHShm(h_buf_, d_buf_, len), "buf DtoH");
    check(lib_.cuMemcpyDtoHShm(h_ctl_, d_ctl_, kCtlBytes), "ctl DtoH");

    std::memcpy(out, arena_.at(h_buf_), len);
    ctl = static_cast<std::uint8_t *>(arena_.at(h_ctl_));
    if (encrypt)
        std::memcpy(tag, ctl + kCtlTagOff, kGcmTagBytes);
    bool ok = ctl[kCtlOkOff] == 1;
    if (!encrypt && !ok)
        std::memset(out, 0, len);
    return ok;
}

bool
LakeGpuCipher::runBatch(bool encrypt, ExtentOp *ops, std::size_t n)
{
    // Depth-1 software pipeline per stream: position i uses stream
    // i % K, and before reusing a stream we sync it and complete the
    // extent that was in flight there. With K streams, extent i+1's
    // coalesced upload overlaps extent i's kernel and extent i-1's
    // download on the modeled engine timelines.
    std::uint32_t streams = orch_->streams();
    struct Pending
    {
        std::size_t idx = 0;
        remote::StreamOrchestrator::Buffer *buf = nullptr;
    };
    std::vector<Pending> pend(streams);
    bool all = true;

    // Reads the retired slot (read-after-sync window: always called
    // right after syncStream, before any further acquire).
    auto complete = [&](Pending &p, gpu::CuResult sync_r) {
        ExtentOp &op = ops[p.idx];
        auto *slot = static_cast<std::uint8_t *>(arena_.at(p.buf->shm));
        if (sync_r != CuResult::Success) {
            op.ok = false;
            std::memset(op.out, 0, op.len);
        } else {
            std::memcpy(op.out, slot + kCtlSlot, op.len);
            if (encrypt)
                std::memcpy(op.tag, slot + kCtlTagOff, kGcmTagBytes);
            op.ok = slot[kCtlOkOff] == 1;
            if (!encrypt && !op.ok)
                std::memset(op.out, 0, op.len);
        }
        all = all && op.ok;
        p.buf = nullptr;
    };

    for (std::size_t i = 0; i < n; ++i) {
        std::uint32_t k = static_cast<std::uint32_t>(i % streams);
        gpu::StreamId s = orch_->streamAt(k);
        if (pend[k].buf != nullptr)
            complete(pend[k], orch_->syncStream(s));

        ExtentOp &op = ops[i];
        LAKE_ASSERT(op.len > 0 && op.len <= max_extent_,
                    "extent %zu outside 1..%zu", op.len, max_extent_);
        auto *buf = orch_->acquire(kCtlSlot + op.len);
        if (buf == nullptr) {
            // Slot bigger than the pool's largest class: this extent
            // takes the classic serial path (h_ctl_/h_buf_ still fit).
            if (encrypt) {
                run(true, op.iv, op.in, op.len, op.out, op.tag);
                op.ok = true;
            } else {
                op.ok = run(false, op.iv, op.in, op.len, op.out, op.tag);
                all = all && op.ok;
            }
            continue;
        }

        auto *slot = static_cast<std::uint8_t *>(arena_.at(buf->shm));
        std::memset(slot, 0, kCtlSlot);
        std::memcpy(slot + kCtlKeyOff, key_, key_bytes_);
        std::memcpy(slot + kCtlIvOff, op.iv, kGcmIvBytes);
        slot[kCtlEncOff] = encrypt ? 1 : 0;
        if (!encrypt)
            std::memcpy(slot + kCtlTagOff, op.tag, kGcmTagBytes);
        std::memcpy(slot + kCtlSlot, op.in, op.len);

        // ONE coalesced HtoD moves ctl + data; the serial path pays
        // two transfers (and two transfer overheads) per extent.
        Status st = orch_->stageIn(buf, d_slab_[k], kCtlSlot + op.len, s);
        LAKE_ASSERT(st.isOk(), "stageIn: %s", st.toString().c_str());

        gpu::LaunchConfig cfg;
        cfg.kernel = "aes_gcm";
        cfg.grid_x = static_cast<std::uint32_t>((op.len + 4095) / 4096);
        cfg.block_x = 256;
        cfg.arg(d_slab_[k]).arg(d_slab_[k] + kCtlSlot)
            .arg(static_cast<std::uint64_t>(op.len), nullptr)
            .arg(static_cast<std::uint64_t>(key_bytes_), nullptr);
        check(lib_.cuLaunchKernel(cfg, s), "launch aes_gcm");

        st = orch_->stageOut(buf, d_slab_[k], kCtlSlot + op.len, s);
        LAKE_ASSERT(st.isOk(), "stageOut: %s", st.toString().c_str());
        pend[k] = {i, buf};
    }

    for (std::uint32_t k = 0; k < streams; ++k)
        if (pend[k].buf != nullptr)
            complete(pend[k], orch_->syncStream(orch_->streamAt(k)));
    return all;
}

void
LakeGpuCipher::encryptBatch(ExtentOp *ops, std::size_t n)
{
    if (orch_ == nullptr || n <= 1) {
        CipherEngine::encryptBatch(ops, n);
        return;
    }
    bool ok = runBatch(true, ops, n);
    LAKE_ASSERT(ok, "GPU batch encrypt failed (degraded transport?)");
}

bool
LakeGpuCipher::decryptBatch(ExtentOp *ops, std::size_t n)
{
    if (orch_ == nullptr || n <= 1)
        return CipherEngine::decryptBatch(ops, n);
    return runBatch(false, ops, n);
}

void
LakeGpuCipher::encryptExtent(const std::uint8_t iv[kGcmIvBytes],
                             const std::uint8_t *plain, std::size_t len,
                             std::uint8_t *cipher,
                             std::uint8_t tag[kGcmTagBytes])
{
    bool ok = run(true, iv, plain, len, cipher, tag);
    LAKE_ASSERT(ok, "GPU encrypt cannot fail");
}

bool
LakeGpuCipher::decryptExtent(const std::uint8_t iv[kGcmIvBytes],
                             const std::uint8_t *cipher, std::size_t len,
                             const std::uint8_t tag[kGcmTagBytes],
                             std::uint8_t *plain)
{
    std::uint8_t tag_in[kGcmTagBytes];
    std::memcpy(tag_in, tag, kGcmTagBytes);
    return run(false, iv, cipher, len, plain, tag_in);
}

HybridCipher::HybridCipher(const std::uint8_t *key, std::size_t key_bytes,
                           remote::LakeLib &lib, Clock &clock,
                           gpu::CpuSpec cpu, std::size_t max_extent)
    : gcm_(key, key_bytes), gpu_(key, key_bytes, lib, max_extent),
      clock_(clock), cpu_(std::move(cpu))
{
}

namespace {

/**
 * Share of each extent handled by AES-NI while the GPU takes the rest;
 * ~0.85 GB/s of NI against an effective ~2.5 GB/s GPU pipeline.
 */
constexpr double kNiShare = 0.25;

/** Splits an extent at a 16-byte boundary. */
std::size_t
splitPoint(std::size_t len)
{
    std::size_t s = static_cast<std::size_t>(kNiShare *
                                             static_cast<double>(len));
    return std::min(len, (s / 16) * 16);
}

/** Derives the GPU half's IV from the extent IV. */
void
secondIv(const std::uint8_t iv[kGcmIvBytes], std::uint8_t out[kGcmIvBytes])
{
    std::memcpy(out, iv, kGcmIvBytes);
    out[kGcmIvBytes - 1] ^= 0x5a;
}

} // namespace

void
HybridCipher::encryptExtent(const std::uint8_t iv[kGcmIvBytes],
                            const std::uint8_t *plain, std::size_t len,
                            std::uint8_t *cipher,
                            std::uint8_t tag[kGcmTagBytes])
{
    std::size_t ni_len = splitPoint(len);
    std::size_t gpu_len = len - ni_len;

    // GPU half runs first so its elapsed time is observable; the NI
    // half executes concurrently on the CPU, so only the excess of its
    // modeled time over the GPU's is charged afterwards.
    Nanos t0 = clock_.now();
    std::uint8_t tag_gpu[kGcmTagBytes] = {};
    if (gpu_len > 0) {
        std::uint8_t iv2[kGcmIvBytes];
        secondIv(iv, iv2);
        gpu_.encryptExtent(iv2, plain + ni_len, gpu_len, cipher + ni_len,
                           tag_gpu);
    }
    Nanos gpu_elapsed = clock_.now() - t0;

    std::uint8_t tag_ni[kGcmTagBytes] = {};
    if (ni_len > 0) {
        gcm_.encrypt(iv, plain, ni_len, nullptr, 0, cipher, tag_ni);
        Nanos t_ni = AesNiCipher::kPerExtent +
                     static_cast<Nanos>(static_cast<double>(ni_len) /
                                        cpu_.aes_ni_gbps);
        if (t_ni > gpu_elapsed)
            clock_.advance(t_ni - gpu_elapsed);
    }

    for (std::size_t i = 0; i < kGcmTagBytes; ++i)
        tag[i] = static_cast<std::uint8_t>(tag_ni[i] ^ tag_gpu[i]);
}

bool
HybridCipher::decryptExtent(const std::uint8_t iv[kGcmIvBytes],
                            const std::uint8_t *cipher, std::size_t len,
                            const std::uint8_t tag[kGcmTagBytes],
                            std::uint8_t *plain)
{
    std::size_t ni_len = splitPoint(len);
    std::size_t gpu_len = len - ni_len;

    // Recover each half's authentic tag by re-encrypting the recovered
    // plaintext, then verify the stored combined tag.
    Nanos t0 = clock_.now();
    std::uint8_t tag_gpu[kGcmTagBytes] = {};
    if (gpu_len > 0) {
        std::uint8_t iv2[kGcmIvBytes];
        secondIv(iv, iv2);
        // Decrypt without a per-half tag: CTR is its own inverse, so
        // encrypting the ciphertext yields the plaintext...
        std::vector<std::uint8_t> tmp(gpu_len);
        std::uint8_t scratch_tag[kGcmTagBytes];
        gpu_.encryptExtent(iv2, cipher + ni_len, gpu_len, tmp.data(),
                           scratch_tag);
        std::memcpy(plain + ni_len, tmp.data(), gpu_len);
        // ...and the authentic tag is GHASH over the ciphertext, which
        // re-encrypting the plaintext reproduces.
        AesGcm host(gcm_);
        std::vector<std::uint8_t> check_ct(gpu_len);
        host.encrypt(iv2, plain + ni_len, gpu_len, nullptr, 0,
                     check_ct.data(), tag_gpu);
    }
    Nanos gpu_elapsed = clock_.now() - t0;

    std::uint8_t tag_ni[kGcmTagBytes] = {};
    if (ni_len > 0) {
        std::vector<std::uint8_t> check_ct(ni_len);
        // CTR inverse for the NI half.
        std::uint8_t tmp_tag[kGcmTagBytes];
        gcm_.encrypt(iv, cipher, ni_len, nullptr, 0, check_ct.data(),
                     tmp_tag);
        std::memcpy(plain, check_ct.data(), ni_len);
        gcm_.encrypt(iv, plain, ni_len, nullptr, 0, check_ct.data(),
                     tag_ni);
        Nanos t_ni = AesNiCipher::kPerExtent +
                     static_cast<Nanos>(static_cast<double>(ni_len) /
                                        cpu_.aes_ni_gbps);
        if (t_ni > gpu_elapsed)
            clock_.advance(t_ni - gpu_elapsed);
    }

    std::uint8_t diff = 0;
    for (std::size_t i = 0; i < kGcmTagBytes; ++i)
        diff |= static_cast<std::uint8_t>(tag[i] ^ tag_ni[i] ^ tag_gpu[i]);
    if (diff != 0) {
        std::memset(plain, 0, len);
        return false;
    }
    return true;
}

} // namespace lake::crypto
