#include "crypto/gcm.h"

#include <algorithm>
#include <cstring>

#include "base/logging.h"

namespace lake::crypto {

namespace {

/** GF(2^128) multiply: x = x * y in GCM's bit-reflected field. */
void
gf128Mul(std::uint8_t x[16], const std::uint8_t y[16])
{
    std::uint8_t z[16] = {};
    std::uint8_t v[16];
    std::memcpy(v, y, 16);

    for (int i = 0; i < 128; ++i) {
        int byte = i / 8;
        int bit = 7 - (i % 8);
        if ((x[byte] >> bit) & 1) {
            for (int j = 0; j < 16; ++j)
                z[j] ^= v[j];
        }
        // v = v >> 1, with reduction by R = 0xe1 || 0^120.
        bool lsb = v[15] & 1;
        for (int j = 15; j > 0; --j)
            v[j] = static_cast<std::uint8_t>((v[j] >> 1) |
                                             ((v[j - 1] & 1) << 7));
        v[0] >>= 1;
        if (lsb)
            v[0] ^= 0xe1;
    }
    std::memcpy(x, z, 16);
}

void
inc32(std::uint8_t block[16])
{
    for (int i = 15; i >= 12; --i) {
        if (++block[i] != 0)
            break;
    }
}

void
putBe64(std::uint8_t *out, std::uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        out[i] = static_cast<std::uint8_t>(v >> (8 * (7 - i)));
}

} // namespace

AesGcm::AesGcm(const std::uint8_t *key, std::size_t key_bytes)
    : aes_(key, key_bytes)
{
    std::uint8_t zero[16] = {};
    aes_.encryptBlock(zero, h_);
}

void
AesGcm::ghash(const std::uint8_t *aad, std::size_t aad_len,
              const std::uint8_t *text, std::size_t text_len,
              std::uint8_t out[16]) const
{
    std::uint8_t y[16] = {};
    auto absorb = [&](const std::uint8_t *data, std::size_t len) {
        for (std::size_t off = 0; off < len; off += 16) {
            std::size_t n = std::min<std::size_t>(16, len - off);
            for (std::size_t i = 0; i < n; ++i)
                y[i] ^= data[off + i];
            gf128Mul(y, h_);
        }
    };
    if (aad_len)
        absorb(aad, aad_len);
    if (text_len)
        absorb(text, text_len);

    std::uint8_t lens[16];
    putBe64(lens, static_cast<std::uint64_t>(aad_len) * 8);
    putBe64(lens + 8, static_cast<std::uint64_t>(text_len) * 8);
    for (int i = 0; i < 16; ++i)
        y[i] ^= lens[i];
    gf128Mul(y, h_);
    std::memcpy(out, y, 16);
}

void
AesGcm::ctr(std::uint8_t j[16], const std::uint8_t *in, std::size_t len,
            std::uint8_t *out) const
{
    std::uint8_t keystream[16];
    for (std::size_t off = 0; off < len; off += 16) {
        inc32(j);
        aes_.encryptBlock(j, keystream);
        std::size_t n = std::min<std::size_t>(16, len - off);
        for (std::size_t i = 0; i < n; ++i)
            out[off + i] = static_cast<std::uint8_t>(in[off + i] ^
                                                     keystream[i]);
    }
}

void
AesGcm::encrypt(const std::uint8_t *iv, const std::uint8_t *plain,
                std::size_t len, const std::uint8_t *aad,
                std::size_t aad_len, std::uint8_t *cipher,
                std::uint8_t tag[kGcmTagBytes]) const
{
    // J0 = IV || 0^31 || 1 for 96-bit IVs.
    std::uint8_t j0[16] = {};
    std::memcpy(j0, iv, kGcmIvBytes);
    j0[15] = 1;

    std::uint8_t j[16];
    std::memcpy(j, j0, 16);
    ctr(j, plain, len, cipher);

    std::uint8_t s[16];
    ghash(aad, aad_len, cipher, len, s);

    std::uint8_t ek_j0[16];
    aes_.encryptBlock(j0, ek_j0);
    for (int i = 0; i < 16; ++i)
        tag[i] = static_cast<std::uint8_t>(s[i] ^ ek_j0[i]);
}

bool
AesGcm::decrypt(const std::uint8_t *iv, const std::uint8_t *cipher,
                std::size_t len, const std::uint8_t *aad,
                std::size_t aad_len, const std::uint8_t tag[kGcmTagBytes],
                std::uint8_t *plain) const
{
    std::uint8_t j0[16] = {};
    std::memcpy(j0, iv, kGcmIvBytes);
    j0[15] = 1;

    std::uint8_t s[16];
    ghash(aad, aad_len, cipher, len, s);
    std::uint8_t ek_j0[16];
    aes_.encryptBlock(j0, ek_j0);

    std::uint8_t diff = 0;
    for (int i = 0; i < 16; ++i)
        diff |= static_cast<std::uint8_t>(tag[i] ^ s[i] ^ ek_j0[i]);

    std::uint8_t j[16];
    std::memcpy(j, j0, 16);
    ctr(j, cipher, len, plain);

    if (diff != 0) {
        std::memset(plain, 0, len);
        return false;
    }
    return true;
}

} // namespace lake::crypto
