#ifndef LAKE_POLICY_MLGATE_H
#define LAKE_POLICY_MLGATE_H

/**
 * @file
 * ML-use modulation: the paper's §7.1 future work, implemented.
 *
 * "Given that even the original CPU-based model actually harms
 * performance when applications do not stress the device, some
 * mechanism to modulate the use of ML even on the CPU is a likely
 * necessity. We believe the same framework LAKE provides ... can be
 * used to implement policies that avoid using ML when it does not
 * help."
 *
 * MlGate watches the model's recent positive rate (e.g. the fraction
 * of I/Os predicted slow). When a full window of decisions produces
 * almost no positives, inference is not earning its latency: the gate
 * closes and the subsystem skips ML entirely. While closed, the gate
 * periodically lets probe batches through to detect regime changes
 * (a device starting to struggle) and reopens on fresh positives.
 */

#include <cstddef>

#include "base/time.h"

namespace lake::policy {

/**
 * Hysteresis gate over a model's usefulness signal.
 */
class MlGate
{
  public:
    /** Tunables. */
    struct Config
    {
        /** Positive rate below which ML is considered not to help. */
        double min_positive_rate = 0.005;
        /** Decisions in the closing window. */
        std::size_t window = 512;
        /** While closed, let a probe through this often. */
        Nanos probe_interval = 100_ms;
        /** Positives needed in a probe to reopen. */
        std::size_t reopen_positives = 1;
    };

    MlGate() : MlGate(Config{}) {}
    explicit MlGate(Config config);

    /**
     * Should this batch run inference?
     * @return true when open, or when a probe is due while closed
     */
    bool shouldInfer(Nanos now);

    /** Reports a scored batch's outcome (positives out of total). */
    void observe(std::size_t positives, std::size_t total, Nanos now);

    /** True when ML is currently switched off. */
    bool gated() const { return gated_; }

    /**
     * Non-consuming peek: is a probe due? Lets callers route work
     * toward the inference path only when shouldInfer would let it
     * through (e.g. bypass batch formation entirely while gated).
     */
    bool
    probeDue(Nanos now) const
    {
        return gated_ &&
               (probe_outstanding_ ||
                (now >= last_probe_ &&
                 now - last_probe_ >= cfg_.probe_interval));
    }

    /** Times the gate has closed. */
    std::size_t closures() const { return closures_; }
    /** Times the gate has reopened after a probe. */
    std::size_t reopenings() const { return reopenings_; }

  private:
    Config cfg_;
    bool gated_ = false;
    std::size_t closures_ = 0;
    std::size_t reopenings_ = 0;

    /** Open-state window accounting. */
    std::size_t window_total_ = 0;
    std::size_t window_positives_ = 0;

    /** Closed-state probe accounting. */
    Nanos last_probe_ = 0;
    bool probe_outstanding_ = false;
};

} // namespace lake::policy

#endif // LAKE_POLICY_MLGATE_H
