#ifndef LAKE_POLICY_BPF_H
#define LAKE_POLICY_BPF_H

/**
 * @file
 * An eBPF-like virtual machine for installable policies.
 *
 * §4.2: "LAKE allows developers to write and install such policies
 * using eBPF." This is a faithful miniature of that pipeline: policies
 * are bytecode programs over 64-bit registers, statically checked by a
 * verifier (forward-only jumps, bounded length, valid context accesses
 * and helper calls — so every accepted program provably terminates) and
 * interpreted against a read-only context the framework fills per
 * decision.
 */

#include <array>
#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "base/status.h"
#include "base/time.h"
#include "policy/policy.h"

namespace lake::policy {

/** Opcodes of the policy VM (a pragmatic eBPF subset). */
enum class BpfOp : std::uint8_t
{
    MovImm,  //!< dst = imm
    MovReg,  //!< dst = src
    AddImm,  //!< dst += imm
    AddReg,  //!< dst += src
    SubImm,  //!< dst -= imm
    SubReg,  //!< dst -= src
    MulImm,  //!< dst *= imm
    MulReg,  //!< dst *= src
    DivImm,  //!< dst /= imm (dst = 0 when imm == 0, eBPF semantics)
    DivReg,  //!< dst /= src (dst = 0 when src == 0)
    ModImm,  //!< dst %= imm (dst unchanged when imm == 0)
    ModReg,  //!< dst %= src
    AndImm,  //!< dst &= imm
    OrImm,   //!< dst |= imm
    XorImm,  //!< dst ^= imm
    LshImm,  //!< dst <<= imm
    RshImm,  //!< dst >>= imm (logical)
    Neg,     //!< dst = -dst
    LdCtx,   //!< dst = ctx[imm] (verifier bounds-checks imm)
    Ja,      //!< pc += off
    JeqImm,  //!< if (dst == imm) pc += off
    JeqReg,  //!< if (dst == src) pc += off
    JneImm,  //!< if (dst != imm) pc += off
    JgtImm,  //!< if (dst >  imm) pc += off (unsigned)
    JgtReg,  //!< if (dst >  src) pc += off
    JgeImm,  //!< if (dst >= imm) pc += off
    JltImm,  //!< if (dst <  imm) pc += off
    JleImm,  //!< if (dst <= imm) pc += off
    Call,    //!< r0 = helper[imm](r1..r5)
    Exit,    //!< return r0
};

/** One instruction. */
struct BpfInsn
{
    BpfOp op;
    std::uint8_t dst = 0;  //!< destination register (0..10)
    std::uint8_t src = 0;  //!< source register
    std::int32_t off = 0;  //!< jump offset (instructions, relative)
    std::int64_t imm = 0;  //!< immediate
};

/**
 * A helper callable from bytecode: receives r1..r5, returns r0.
 */
using BpfHelper =
    std::function<std::uint64_t(const std::array<std::uint64_t, 5> &)>;

/**
 * Verifier + interpreter.
 */
class BpfVm
{
  public:
    /** Number of general registers (r0..r10). */
    static constexpr std::size_t kNumRegs = 11;
    /** Maximum accepted program length. */
    static constexpr std::size_t kMaxInsns = 4096;

    BpfVm() = default;

    /** Registers a helper under @p id (before verification). */
    void registerHelper(std::uint32_t id, BpfHelper fn);

    /**
     * Statically checks @p prog against a context of @p ctx_words
     * 64-bit slots. Rejections name the offending instruction.
     */
    Status verify(const std::vector<BpfInsn> &prog,
                  std::size_t ctx_words) const;

    /**
     * Runs a *verified* program. @return r0.
     * Panics on conditions the verifier excludes (internal bug).
     */
    std::uint64_t run(const std::vector<BpfInsn> &prog,
                      const std::vector<std::uint64_t> &ctx) const;

  private:
    std::unordered_map<std::uint32_t, BpfHelper> helpers_;
};

/**
 * Convenience assembler for building policy programs in tests and
 * examples without hand-writing struct literals.
 */
class BpfProgramBuilder
{
  public:
    BpfProgramBuilder &movImm(std::uint8_t dst, std::int64_t imm);
    BpfProgramBuilder &movReg(std::uint8_t dst, std::uint8_t src);
    BpfProgramBuilder &addImm(std::uint8_t dst, std::int64_t imm);
    BpfProgramBuilder &ldCtx(std::uint8_t dst, std::int64_t slot);
    BpfProgramBuilder &jltImm(std::uint8_t dst, std::int64_t imm,
                              std::int32_t off);
    BpfProgramBuilder &jgeImm(std::uint8_t dst, std::int64_t imm,
                              std::int32_t off);
    BpfProgramBuilder &call(std::uint32_t helper);
    BpfProgramBuilder &exit();
    /** Appends an arbitrary instruction. */
    BpfProgramBuilder &emit(BpfInsn insn);

    /** The assembled program. */
    std::vector<BpfInsn> take() { return std::move(prog_); }

  private:
    std::vector<BpfInsn> prog_;
};

/**
 * Context-slot layout the framework presents to policy bytecode.
 */
enum BpfCtxSlot : std::size_t
{
    kCtxBatchSize = 0,      //!< pending batch size
    kCtxNowMs,              //!< virtual time, milliseconds
    kCtxInterArrivalUsX100, //!< mean inter-arrival, centi-microseconds
    kCtxGpuUtilX100,        //!< smoothed GPU utilization, centi-percent
    kCtxSlotCount,
};

/**
 * Adapts a verified bytecode program into an ExecPolicy.
 *
 * The adapter maintains the rate-limited utilization moving average
 * (the stateful part eBPF would keep in a map) and exposes it via
 * kCtxGpuUtilX100; the program returns 0 for CPU, nonzero for GPU.
 */
class BpfPolicy final : public ExecPolicy
{
  public:
    /** Probe rate-limit / smoothing knobs (as ContentionAwarePolicy). */
    struct Config
    {
        Nanos probe_interval = 5_ms;
        std::size_t avg_window = 4;
    };

    /**
     * @param vm      VM with helpers registered; shared, not owned
     * @param program verified policy bytecode
     * @param probe   utilization source (may be null: util reads as 0)
     */
    BpfPolicy(const BpfVm &vm, std::vector<BpfInsn> program,
              UtilProbe probe, Config config);

    Engine decide(const PolicyInput &in) override;
    const char *name() const override { return "bpf"; }

  private:
    const BpfVm &vm_;
    std::vector<BpfInsn> program_;
    UtilProbe probe_;
    Config cfg_;
    MovingAverage avg_;
    Nanos last_probe_ = 0;
    bool probed_once_ = false;
};

/**
 * Assembles the Fig. 3 policy as bytecode:
 *   if (util < exec_threshold && batch >= batch_threshold) return GPU;
 *   return CPU;
 */
std::vector<BpfInsn> buildFig3Program(double exec_threshold_pct,
                                      std::size_t batch_threshold);

} // namespace lake::policy

#endif // LAKE_POLICY_BPF_H
