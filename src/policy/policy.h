#ifndef LAKE_POLICY_POLICY_H
#define LAKE_POLICY_POLICY_H

/**
 * @file
 * Execution policies: CPU-vs-accelerator decisioning.
 *
 * §4.2/§4.3: "LAKE allows on-the-fly switch between execution on CPU and
 * accelerator, at the function call granularity... through custom
 * execution policies" which also manage contention. A policy sees the
 * pending batch size and (rate-limited) GPU utilization and picks an
 * engine; the framework invokes it automatically before dispatching
 * inference (registry::score_features) or any LAKE-accelerated call.
 */

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "base/stats.h"
#include "base/time.h"

namespace lake::policy {

/** Where to run the next call. */
enum class Engine
{
    Cpu,
    Gpu,
};

/** Printable engine name. */
const char *engineName(Engine e);

/** Everything a policy may consult for one decision. */
struct PolicyInput
{
    /** Number of inputs in the batch about to be processed. */
    std::size_t batch_size = 0;
    /** Current virtual time. */
    Nanos now = 0;
    /** Mean inter-arrival time of recent work, microseconds (0 if n/a). */
    double inter_arrival_us = 0.0;
};

/**
 * Rate-limited GPU utilization probe, supplied by the framework.
 * Implementations typically call the LAKE-remoted NVML API and therefore
 * cost real (virtual) time — which is exactly why policies rate-limit.
 */
using UtilProbe = std::function<double(Nanos now)>;

/** Base class for execution policies. */
class ExecPolicy
{
  public:
    virtual ~ExecPolicy() = default;

    /** Picks the engine for one call. */
    virtual Engine decide(const PolicyInput &in) = 0;

    /** Diagnostic name. */
    virtual const char *name() const = 0;
};

/** Unconditionally CPU (the no-accelerator baseline). */
class AlwaysCpuPolicy final : public ExecPolicy
{
  public:
    Engine decide(const PolicyInput &) override { return Engine::Cpu; }
    const char *name() const override { return "always-cpu"; }
};

/** Unconditionally GPU (ignores profitability and contention). */
class AlwaysGpuPolicy final : public ExecPolicy
{
  public:
    Engine decide(const PolicyInput &) override { return Engine::Gpu; }
    const char *name() const override { return "always-gpu"; }
};

/**
 * Pure profitability policy: GPU once the batch reaches the crossover
 * point for the workload (Table 3), CPU below it.
 */
class BatchThresholdPolicy final : public ExecPolicy
{
  public:
    /** @param batch_threshold minimum batch size for the GPU to win */
    explicit BatchThresholdPolicy(std::size_t batch_threshold);

    Engine decide(const PolicyInput &in) override;
    const char *name() const override { return "batch-threshold"; }

    /** The installed crossover point. */
    std::size_t threshold() const { return batch_threshold_; }

  private:
    std::size_t batch_threshold_;
};

/**
 * Degradation guard: wraps any policy and forces CPU execution while
 * the remoting path is unhealthy.
 *
 * The ISSUE-2 failure contract: when repeated remoting failures latch
 * the LAKE core into degraded mode, every accelerated call site must
 * keep working on the CPU. Reusing the Fig. 3 policy plumbing — this
 * is just another ExecPolicy — means nothing at the call sites
 * changes; the registry dispatch simply stops picking the GPU.
 */
class FallbackPolicy final : public ExecPolicy
{
  public:
    /** Health probe: true while remoting is degraded. */
    using Predicate = std::function<bool()>;
    /** Invoked whenever a GPU decision is overridden to CPU. */
    using Notify = std::function<void()>;

    /**
     * @param inner       the real policy, consulted when healthy
     * @param degraded    health probe (required)
     * @param on_fallback fallback-counter hook (may be null)
     */
    FallbackPolicy(std::unique_ptr<ExecPolicy> inner, Predicate degraded,
                   Notify on_fallback = nullptr);

    Engine decide(const PolicyInput &in) override;
    const char *name() const override { return "fallback"; }

    /**
     * Decisions forced to CPU while degraded. The counter is atomic so
     * a ScoreServer flush (which consults the policy from whichever
     * thread triggered the flush) can race a reader on the owner
     * thread without undefined behaviour.
     */
    std::uint64_t
    overrides() const
    {
        return overrides_.load(std::memory_order_relaxed);
    }
    /** The wrapped policy. */
    ExecPolicy &inner() { return *inner_; }

  private:
    std::unique_ptr<ExecPolicy> inner_;
    Predicate degraded_;
    Notify on_fallback_;
    std::atomic<std::uint64_t> overrides_{0};
};

/** Tunables of the Fig. 3 pseudocode. */
struct ContentionConfig
{
    /** Minimum time between NVML queries ("...5 ms elapsed..."). */
    Nanos probe_interval = 5_ms;
    /** Moving-average window (number of readings). */
    std::size_t avg_window = 4;
    /** Smoothed utilization (%) above which the GPU is contended. */
    double exec_threshold = 40.0;
    /** Profitability crossover batch size. */
    std::size_t batch_threshold = 8;
    /**
     * Max staleness of the smoothed window, in probe intervals:
     * when more than `stale_windows * probe_interval` elapsed since
     * the last probe, the moving-average window is dropped and
     * rebuilt from a fresh reading. Without this, the first
     * decision after a long idle gap averages readings of
     * arbitrary age against one fresh probe — a burst arriving
     * after the gap would be steered by utilization observed
     * before the gap. 0 disables the reset.
     */
    std::size_t stale_windows = 8;
};

/**
 * One device's rate-limited, staleness-bounded smoothed utilization:
 * the per-probe state of the Fig. 3 policy (moving average + last
 * probe time) factored out so a multi-device policy can hold one per
 * device instead of blending every device's readings into a single
 * stale signal (the pre-fleet bug).
 */
class UtilSmoother
{
  public:
    explicit UtilSmoother(const ContentionConfig &cfg) : avg_(cfg.avg_window)
    {
    }

    /**
     * One Fig. 3 probe step at @p now: applies the staleness reset,
     * rate-limits the (costly, remoted) @p probe call, and returns the
     * smoothed value.
     */
    double sample(const UtilProbe &probe, Nanos now,
                  const ContentionConfig &cfg);

    /** Current smoothed utilization (no probe). */
    double value() const { return avg_.value(); }

    void
    reset()
    {
        avg_.reset();
        probed_once_ = false;
    }

  private:
    MovingAverage avg_;
    Nanos last_probe_ = 0;
    bool probed_once_ = false;
};

/**
 * The Fig. 3 policy: contention management + profitability.
 *
 * Queries GPU utilization at most once per rate-limit period, smooths
 * readings with a moving average, and uses the GPU only when both the
 * smoothed utilization is below the contention threshold and the batch
 * is big enough to be profitable.
 */
class ContentionAwarePolicy final : public ExecPolicy
{
  public:
    using Config = ContentionConfig;

    /**
     * @param probe  utilization source (remoted NVML)
     * @param config thresholds
     */
    ContentionAwarePolicy(UtilProbe probe, Config config);

    Engine decide(const PolicyInput &in) override;
    const char *name() const override { return "contention-aware"; }

    /** Most recent smoothed utilization, for telemetry. */
    double smoothedUtilization() const { return smoother_.value(); }

  private:
    UtilProbe probe_;
    Config cfg_;
    UtilSmoother smoother_;
};

/** A placement: the engine and, when Gpu, which fleet device. */
struct Placement
{
    Engine engine = Engine::Cpu;
    std::size_t device = 0;
};

/**
 * The Fig. 3 policy extended across a device fleet: one UtilSmoother
 * per device (bugfix: a single blended MovingAverage cannot steer
 * between devices), a pending-dispatch depth signal per device, and
 * sticky placement so a registry's captures keep landing on the device
 * that already holds its model.
 *
 * Thread-safe: shard worker threads may call place()/decide()
 * concurrently. Lock order is policy mutex -> shard mutex (the probes
 * call into their owning shard); callers must never hold a shard
 * mutex while calling in here.
 */
class FleetPlacementPolicy final : public ExecPolicy
{
  public:
    /** Pending (dispatched, uncompleted) batches on one device. */
    using DepthProbe = std::function<std::size_t(std::size_t device)>;
    /** True when a device must not be chosen (its shard is degraded). */
    using DeviceVeto = std::function<bool(std::size_t device)>;

    struct Config
    {
        ContentionConfig contention;
        /**
         * Utilization-points equivalent of one pending batch: the
         * placement score is `smoothed_util + depth_weight * depth`,
         * so queue depth breaks ties between equally idle devices.
         */
        double depth_weight = 5.0;
    };

    /** @param probes one utilization source per fleet device */
    FleetPlacementPolicy(std::vector<UtilProbe> probes, Config config);

    void setDepthProbe(DepthProbe p) { depth_ = std::move(p); }
    void setVeto(DeviceVeto v) { veto_ = std::move(v); }

    /**
     * Picks CPU or a device for one call, preferring @p sticky (the
     * caller's current placement). Samples the sticky device's
     * smoother on every decision — the exact Fig. 3 probe cadence —
     * and hunts across the other devices only when the sticky one is
     * contended, so a single-device fleet is decision-identical to
     * ContentionAwarePolicy.
     */
    Placement place(const PolicyInput &in, std::size_t sticky);

    Engine decide(const PolicyInput &in) override;
    const char *name() const override { return "fleet-placement"; }

    std::size_t deviceCount() const { return probes_.size(); }

    /** Device @p d's current smoothed utilization (telemetry). */
    double smoothedUtilization(std::size_t d);

  private:
    std::vector<UtilProbe> probes_;
    Config cfg_;
    std::vector<UtilSmoother> smoothers_;
    DepthProbe depth_;
    DeviceVeto veto_;
    /** decide()'s sticky seed when the caller tracks no placement. */
    std::atomic<std::size_t> last_device_{0};
    std::mutex mu_; //!< guards smoothers_ (probes run under it)
};

} // namespace lake::policy

#endif // LAKE_POLICY_POLICY_H
