#include "policy/mlgate.h"

namespace lake::policy {

MlGate::MlGate(Config config) : cfg_(config) {}

bool
MlGate::shouldInfer(Nanos now)
{
    if (!gated_)
        return true;
    // Clamped interval: `now` earlier than the closing observation's
    // timestamp must read as "no time elapsed", not wrap to a huge
    // unsigned span that releases a probe immediately.
    if (now >= last_probe_ && now - last_probe_ >= cfg_.probe_interval) {
        last_probe_ = now;
        probe_outstanding_ = true;
        return true;
    }
    return false;
}

void
MlGate::observe(std::size_t positives, std::size_t total, Nanos now)
{
    if (total == 0)
        return;

    if (gated_) {
        if (!probe_outstanding_)
            return; // stray observation; probes are one-shot
        probe_outstanding_ = false;
        if (positives >= cfg_.reopen_positives) {
            gated_ = false;
            ++reopenings_;
            window_total_ = 0;
            window_positives_ = 0;
        }
        return;
    }

    window_total_ += total;
    window_positives_ += positives;
    if (window_total_ >= cfg_.window) {
        double rate = static_cast<double>(window_positives_) /
                      static_cast<double>(window_total_);
        if (rate < cfg_.min_positive_rate) {
            gated_ = true;
            ++closures_;
            last_probe_ = now;
        }
        window_total_ = 0;
        window_positives_ = 0;
    }
}

} // namespace lake::policy
