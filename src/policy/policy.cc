#include "policy/policy.h"

#include <utility>

#include "base/logging.h"

namespace lake::policy {

const char *
engineName(Engine e)
{
    return e == Engine::Cpu ? "CPU" : "GPU";
}

BatchThresholdPolicy::BatchThresholdPolicy(std::size_t batch_threshold)
    : batch_threshold_(batch_threshold)
{
}

Engine
BatchThresholdPolicy::decide(const PolicyInput &in)
{
    return in.batch_size >= batch_threshold_ ? Engine::Gpu : Engine::Cpu;
}

ContentionAwarePolicy::ContentionAwarePolicy(UtilProbe probe, Config config)
    : probe_(std::move(probe)), cfg_(config), avg_(config.avg_window)
{
    LAKE_ASSERT(probe_ != nullptr,
                "contention policy needs a utilization probe");
}

Engine
ContentionAwarePolicy::decide(const PolicyInput &in)
{
    // Rate-limit the (remoted, hence costly) NVML query.
    if (!probed_once_ || in.now - last_probe_ >= cfg_.probe_interval) {
        double util = probe_(in.now);
        avg_.add(util);
        last_probe_ = in.now;
        probed_once_ = true;
    }

    bool uncontended = avg_.value() < cfg_.exec_threshold;
    bool profitable = in.batch_size >= cfg_.batch_threshold;
    return (uncontended && profitable) ? Engine::Gpu : Engine::Cpu;
}

} // namespace lake::policy
