#include "policy/policy.h"

#include <utility>

#include "base/logging.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace lake::policy {
namespace {

/** Shared decision bookkeeping for every policy flavour. */
void
observeDecision(const char *policy, const PolicyInput &in, Engine out,
                std::uint64_t util_permille, bool have_util)
{
    auto &m = obs::Metrics::global();
    if (m.enabled()) {
        (out == Engine::Gpu ? m.policy_decide_gpu : m.policy_decide_cpu).add();
        if (have_util)
            m.policy_util_permille.record(util_permille);
    }
    auto &tr = obs::Tracer::global();
    if (tr.enabled())
        tr.instant(obs::Side::Runtime, "policy", policy, in.now, obs::kNoId,
                   out == Engine::Gpu ? "gpu" : "cpu", 1,
                   have_util ? "util_permille" : nullptr, util_permille);
}

} // namespace

const char *
engineName(Engine e)
{
    return e == Engine::Cpu ? "CPU" : "GPU";
}

BatchThresholdPolicy::BatchThresholdPolicy(std::size_t batch_threshold)
    : batch_threshold_(batch_threshold)
{
}

Engine
BatchThresholdPolicy::decide(const PolicyInput &in)
{
    Engine out = in.batch_size >= batch_threshold_ ? Engine::Gpu : Engine::Cpu;
    observeDecision("policy.batch_threshold", in, out, 0, false);
    return out;
}

FallbackPolicy::FallbackPolicy(std::unique_ptr<ExecPolicy> inner,
                               Predicate degraded, Notify on_fallback)
    : inner_(std::move(inner)), degraded_(std::move(degraded)),
      on_fallback_(std::move(on_fallback))
{
    LAKE_ASSERT(inner_ != nullptr, "fallback policy needs an inner policy");
    LAKE_ASSERT(degraded_ != nullptr, "fallback policy needs a predicate");
}

Engine
FallbackPolicy::decide(const PolicyInput &in)
{
    // Consult the health probe first: while degraded, skip the inner
    // policy entirely — a ContentionAwarePolicy would otherwise issue
    // remoted NVML probes over the very path that is failing.
    if (degraded_()) {
        std::uint64_t overrides =
            overrides_.fetch_add(1, std::memory_order_relaxed) + 1;
        if (on_fallback_)
            on_fallback_();
        auto &m = obs::Metrics::global();
        if (m.enabled())
            m.policy_fallback_overrides.add();
        auto &tr = obs::Tracer::global();
        if (tr.enabled())
            tr.instant(obs::Side::Runtime, "policy", "policy.fallback_cpu",
                       in.now, obs::kNoId, "overrides", overrides);
        return Engine::Cpu;
    }
    return inner_->decide(in);
}

ContentionAwarePolicy::ContentionAwarePolicy(UtilProbe probe, Config config)
    : probe_(std::move(probe)), cfg_(config), avg_(config.avg_window)
{
    LAKE_ASSERT(probe_ != nullptr,
                "contention policy needs a utilization probe");
}

Engine
ContentionAwarePolicy::decide(const PolicyInput &in)
{
    // Clamped elapsed time since the last probe: the sync scoring path
    // hands the policy a caller-supplied `now`, and two call sites
    // racing through scoreSync can consult it with non-monotone times.
    // Unclamped, `in.now - last_probe_` wraps to a huge unsigned value
    // and defeats both the rate limit and the staleness bound below.
    Nanos elapsed =
        in.now >= last_probe_ ? in.now - last_probe_ : 0;
    // A window whose readings predate a long idle gap says nothing
    // about the GPU the next burst will meet: drop it and re-probe
    // fresh rather than averaging stale contention into the decision.
    if (probed_once_ && cfg_.stale_windows > 0 &&
        elapsed > cfg_.stale_windows * cfg_.probe_interval) {
        avg_.reset();
        probed_once_ = false;
    }
    // Rate-limit the (remoted, hence costly) NVML query.
    if (!probed_once_ || elapsed >= cfg_.probe_interval) {
        double util = probe_(in.now);
        avg_.add(util);
        last_probe_ = in.now;
        probed_once_ = true;
    }

    bool uncontended = avg_.value() < cfg_.exec_threshold;
    bool profitable = in.batch_size >= cfg_.batch_threshold;
    Engine out = (uncontended && profitable) ? Engine::Gpu : Engine::Cpu;
    // The smoothed utilization is the input the paper's Fig. 3 policy
    // acts on; export it in permille so the trace stays integer-only.
    observeDecision("policy.contention_aware", in, out,
                    static_cast<std::uint64_t>(avg_.value() * 10.0), true);
    return out;
}

} // namespace lake::policy
