#include "policy/policy.h"

#include <utility>

#include "base/logging.h"

namespace lake::policy {

const char *
engineName(Engine e)
{
    return e == Engine::Cpu ? "CPU" : "GPU";
}

BatchThresholdPolicy::BatchThresholdPolicy(std::size_t batch_threshold)
    : batch_threshold_(batch_threshold)
{
}

Engine
BatchThresholdPolicy::decide(const PolicyInput &in)
{
    return in.batch_size >= batch_threshold_ ? Engine::Gpu : Engine::Cpu;
}

FallbackPolicy::FallbackPolicy(std::unique_ptr<ExecPolicy> inner,
                               Predicate degraded, Notify on_fallback)
    : inner_(std::move(inner)), degraded_(std::move(degraded)),
      on_fallback_(std::move(on_fallback))
{
    LAKE_ASSERT(inner_ != nullptr, "fallback policy needs an inner policy");
    LAKE_ASSERT(degraded_ != nullptr, "fallback policy needs a predicate");
}

Engine
FallbackPolicy::decide(const PolicyInput &in)
{
    // Consult the health probe first: while degraded, skip the inner
    // policy entirely — a ContentionAwarePolicy would otherwise issue
    // remoted NVML probes over the very path that is failing.
    if (degraded_()) {
        ++overrides_;
        if (on_fallback_)
            on_fallback_();
        return Engine::Cpu;
    }
    return inner_->decide(in);
}

ContentionAwarePolicy::ContentionAwarePolicy(UtilProbe probe, Config config)
    : probe_(std::move(probe)), cfg_(config), avg_(config.avg_window)
{
    LAKE_ASSERT(probe_ != nullptr,
                "contention policy needs a utilization probe");
}

Engine
ContentionAwarePolicy::decide(const PolicyInput &in)
{
    // Rate-limit the (remoted, hence costly) NVML query.
    if (!probed_once_ || in.now - last_probe_ >= cfg_.probe_interval) {
        double util = probe_(in.now);
        avg_.add(util);
        last_probe_ = in.now;
        probed_once_ = true;
    }

    bool uncontended = avg_.value() < cfg_.exec_threshold;
    bool profitable = in.batch_size >= cfg_.batch_threshold;
    return (uncontended && profitable) ? Engine::Gpu : Engine::Cpu;
}

} // namespace lake::policy
