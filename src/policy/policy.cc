#include "policy/policy.h"

#include <utility>

#include "base/logging.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace lake::policy {
namespace {

/** Shared decision bookkeeping for every policy flavour. */
void
observeDecision(const char *policy, const PolicyInput &in, Engine out,
                std::uint64_t util_permille, bool have_util)
{
    auto &m = obs::Metrics::global();
    if (m.enabled()) {
        (out == Engine::Gpu ? m.policy_decide_gpu : m.policy_decide_cpu).add();
        if (have_util)
            m.policy_util_permille.record(util_permille);
    }
    auto &tr = obs::Tracer::global();
    if (tr.enabled())
        tr.instant(obs::Side::Runtime, "policy", policy, in.now, obs::kNoId,
                   out == Engine::Gpu ? "gpu" : "cpu", 1,
                   have_util ? "util_permille" : nullptr, util_permille);
}

} // namespace

const char *
engineName(Engine e)
{
    return e == Engine::Cpu ? "CPU" : "GPU";
}

BatchThresholdPolicy::BatchThresholdPolicy(std::size_t batch_threshold)
    : batch_threshold_(batch_threshold)
{
}

Engine
BatchThresholdPolicy::decide(const PolicyInput &in)
{
    Engine out = in.batch_size >= batch_threshold_ ? Engine::Gpu : Engine::Cpu;
    observeDecision("policy.batch_threshold", in, out, 0, false);
    return out;
}

FallbackPolicy::FallbackPolicy(std::unique_ptr<ExecPolicy> inner,
                               Predicate degraded, Notify on_fallback)
    : inner_(std::move(inner)), degraded_(std::move(degraded)),
      on_fallback_(std::move(on_fallback))
{
    LAKE_ASSERT(inner_ != nullptr, "fallback policy needs an inner policy");
    LAKE_ASSERT(degraded_ != nullptr, "fallback policy needs a predicate");
}

Engine
FallbackPolicy::decide(const PolicyInput &in)
{
    // Consult the health probe first: while degraded, skip the inner
    // policy entirely — a ContentionAwarePolicy would otherwise issue
    // remoted NVML probes over the very path that is failing.
    if (degraded_()) {
        std::uint64_t overrides =
            overrides_.fetch_add(1, std::memory_order_relaxed) + 1;
        if (on_fallback_)
            on_fallback_();
        auto &m = obs::Metrics::global();
        if (m.enabled())
            m.policy_fallback_overrides.add();
        auto &tr = obs::Tracer::global();
        if (tr.enabled())
            tr.instant(obs::Side::Runtime, "policy", "policy.fallback_cpu",
                       in.now, obs::kNoId, "overrides", overrides);
        return Engine::Cpu;
    }
    return inner_->decide(in);
}

double
UtilSmoother::sample(const UtilProbe &probe, Nanos now,
                     const ContentionConfig &cfg)
{
    // Clamped elapsed time since the last probe: the sync scoring path
    // hands the policy a caller-supplied `now`, and two call sites
    // racing through scoreSync can consult it with non-monotone times.
    // Unclamped, `now - last_probe_` wraps to a huge unsigned value
    // and defeats both the rate limit and the staleness bound below.
    Nanos elapsed = now >= last_probe_ ? now - last_probe_ : 0;
    // A window whose readings predate a long idle gap says nothing
    // about the GPU the next burst will meet: drop it and re-probe
    // fresh rather than averaging stale contention into the decision.
    if (probed_once_ && cfg.stale_windows > 0 &&
        elapsed > cfg.stale_windows * cfg.probe_interval) {
        avg_.reset();
        probed_once_ = false;
    }
    // Rate-limit the (remoted, hence costly) NVML query.
    if (!probed_once_ || elapsed >= cfg.probe_interval) {
        double util = probe(now);
        avg_.add(util);
        last_probe_ = now;
        probed_once_ = true;
    }
    return avg_.value();
}

ContentionAwarePolicy::ContentionAwarePolicy(UtilProbe probe, Config config)
    : probe_(std::move(probe)), cfg_(config), smoother_(config)
{
    LAKE_ASSERT(probe_ != nullptr,
                "contention policy needs a utilization probe");
}

Engine
ContentionAwarePolicy::decide(const PolicyInput &in)
{
    double util = smoother_.sample(probe_, in.now, cfg_);
    bool uncontended = util < cfg_.exec_threshold;
    bool profitable = in.batch_size >= cfg_.batch_threshold;
    Engine out = (uncontended && profitable) ? Engine::Gpu : Engine::Cpu;
    // The smoothed utilization is the input the paper's Fig. 3 policy
    // acts on; export it in permille so the trace stays integer-only.
    observeDecision("policy.contention_aware", in, out,
                    static_cast<std::uint64_t>(util * 10.0), true);
    return out;
}

FleetPlacementPolicy::FleetPlacementPolicy(std::vector<UtilProbe> probes,
                                           Config config)
    : probes_(std::move(probes)), cfg_(config)
{
    LAKE_ASSERT(!probes_.empty(),
                "fleet placement needs at least one device probe");
    for (const UtilProbe &p : probes_)
        LAKE_ASSERT(p != nullptr, "fleet placement probe is null");
    smoothers_.resize(probes_.size(), UtilSmoother(cfg_.contention));
}

Placement
FleetPlacementPolicy::place(const PolicyInput &in, std::size_t sticky)
{
    std::lock_guard<std::mutex> lock(mu_);
    if (sticky >= probes_.size())
        sticky = 0;

    auto vetoed = [&](std::size_t d) { return veto_ && veto_(d); };
    auto depthOf = [&](std::size_t d) {
        return depth_ ? depth_(d) : std::size_t{0};
    };
    auto scoreOf = [&](std::size_t d) {
        double util = smoothers_[d].sample(probes_[d], in.now, cfg_.contention);
        return util + cfg_.depth_weight * static_cast<double>(depthOf(d));
    };

    const double threshold = cfg_.contention.exec_threshold;
    bool profitable = in.batch_size >= cfg_.contention.batch_threshold;
    Placement out{Engine::Cpu, sticky};

    if (!vetoed(sticky)) {
        // Sample the sticky device first, on *every* decision — the
        // Fig. 3 probe cadence — so a one-device fleet is
        // decision-identical to ContentionAwarePolicy.
        double score = scoreOf(sticky);
        if (profitable && score < threshold) {
            out = {Engine::Gpu, sticky};
        } else if (profitable) {
            // Sticky device contended: hunt for the least-loaded other
            // device, accepting it only when genuinely uncontended —
            // a migration re-uploads the model, so it must buy real
            // headroom, not a marginal score difference.
            std::size_t best = sticky;
            double best_score = score;
            for (std::size_t d = 0; d < probes_.size(); ++d) {
                if (d == sticky || vetoed(d))
                    continue;
                double s = scoreOf(d);
                if (s < best_score) {
                    best = d;
                    best_score = s;
                }
            }
            if (best != sticky && best_score < threshold)
                out = {Engine::Gpu, best};
        }
    } else if (profitable) {
        // Degraded sticky shard: never probe over its failing path;
        // adopt the healthiest other device instead.
        std::size_t best = probes_.size();
        double best_score = 0.0;
        for (std::size_t d = 0; d < probes_.size(); ++d) {
            if (vetoed(d))
                continue;
            double s = scoreOf(d);
            if (best == probes_.size() || s < best_score) {
                best = d;
                best_score = s;
            }
        }
        if (best != probes_.size() && best_score < threshold)
            out = {Engine::Gpu, best};
    }

    if (out.engine == Engine::Gpu)
        last_device_.store(out.device, std::memory_order_relaxed);
    observeDecision("policy.fleet_placement", in, out.engine,
                    static_cast<std::uint64_t>(
                        smoothers_[out.device].value() * 10.0),
                    true);
    return out;
}

Engine
FleetPlacementPolicy::decide(const PolicyInput &in)
{
    return place(in, last_device_.load(std::memory_order_relaxed)).engine;
}

double
FleetPlacementPolicy::smoothedUtilization(std::size_t d)
{
    std::lock_guard<std::mutex> lock(mu_);
    return d < smoothers_.size() ? smoothers_[d].value() : 0.0;
}

} // namespace lake::policy
