#include "policy/bpf.h"

#include <utility>

#include "base/logging.h"

namespace lake::policy {

namespace {

/** Instruction classes the verifier reasons about. */
bool
isJump(BpfOp op)
{
    switch (op) {
      case BpfOp::Ja:
      case BpfOp::JeqImm:
      case BpfOp::JeqReg:
      case BpfOp::JneImm:
      case BpfOp::JgtImm:
      case BpfOp::JgtReg:
      case BpfOp::JgeImm:
      case BpfOp::JltImm:
      case BpfOp::JleImm:
        return true;
      default:
        return false;
    }
}

bool
usesSrc(BpfOp op)
{
    switch (op) {
      case BpfOp::MovReg:
      case BpfOp::AddReg:
      case BpfOp::SubReg:
      case BpfOp::MulReg:
      case BpfOp::DivReg:
      case BpfOp::ModReg:
      case BpfOp::JeqReg:
      case BpfOp::JgtReg:
        return true;
      default:
        return false;
    }
}

} // namespace

void
BpfVm::registerHelper(std::uint32_t id, BpfHelper fn)
{
    LAKE_ASSERT(fn != nullptr, "null bpf helper %u", id);
    helpers_[id] = std::move(fn);
}

Status
BpfVm::verify(const std::vector<BpfInsn> &prog, std::size_t ctx_words) const
{
    if (prog.empty())
        return Status(Code::InvalidArgument, "empty program");
    if (prog.size() > kMaxInsns)
        return Status(Code::InvalidArgument, "program too long");

    for (std::size_t pc = 0; pc < prog.size(); ++pc) {
        const BpfInsn &insn = prog[pc];
        auto reject = [pc](const std::string &why) {
            return Status(Code::InvalidArgument,
                          detail::format("insn %zu: %s", pc, why.c_str()));
        };

        if (insn.dst >= kNumRegs)
            return reject("bad dst register");
        if (usesSrc(insn.op) && insn.src >= kNumRegs)
            return reject("bad src register");

        if (isJump(insn.op)) {
            if (insn.off <= 0)
                return reject("backward or zero jump (loops forbidden)");
            std::size_t target = pc + 1 + static_cast<std::size_t>(insn.off);
            if (target >= prog.size())
                return reject("jump past end of program");
        }

        switch (insn.op) {
          case BpfOp::LdCtx:
            if (insn.imm < 0 ||
                static_cast<std::size_t>(insn.imm) >= ctx_words) {
                return reject("context access out of bounds");
            }
            break;
          case BpfOp::LshImm:
          case BpfOp::RshImm:
            if (insn.imm < 0 || insn.imm > 63)
                return reject("shift amount out of range");
            break;
          case BpfOp::Call:
            if (!helpers_.count(static_cast<std::uint32_t>(insn.imm)))
                return reject("call to unregistered helper");
            break;
          default:
            break;
        }
    }

    if (prog.back().op != BpfOp::Exit)
        return Status(Code::InvalidArgument,
                      "program must end with Exit");
    return Status::ok();
}

std::uint64_t
BpfVm::run(const std::vector<BpfInsn> &prog,
           const std::vector<std::uint64_t> &ctx) const
{
    std::array<std::uint64_t, kNumRegs> regs{};
    std::size_t pc = 0;

    // Forward-only jumps bound execution by program length, but keep a
    // belt-and-braces fuel counter against verifier bugs.
    std::size_t fuel = prog.size() + 1;

    while (pc < prog.size()) {
        LAKE_ASSERT(fuel-- > 0, "bpf fuel exhausted: verifier bug");
        const BpfInsn &insn = prog[pc];
        std::uint64_t &dst = regs[insn.dst];
        std::uint64_t srcv = regs[insn.src];
        auto imm = static_cast<std::uint64_t>(insn.imm);
        bool taken = false;

        switch (insn.op) {
          case BpfOp::MovImm: dst = imm; break;
          case BpfOp::MovReg: dst = srcv; break;
          case BpfOp::AddImm: dst += imm; break;
          case BpfOp::AddReg: dst += srcv; break;
          case BpfOp::SubImm: dst -= imm; break;
          case BpfOp::SubReg: dst -= srcv; break;
          case BpfOp::MulImm: dst *= imm; break;
          case BpfOp::MulReg: dst *= srcv; break;
          case BpfOp::DivImm: dst = imm ? dst / imm : 0; break;
          case BpfOp::DivReg: dst = srcv ? dst / srcv : 0; break;
          case BpfOp::ModImm: dst = imm ? dst % imm : dst; break;
          case BpfOp::ModReg: dst = srcv ? dst % srcv : dst; break;
          case BpfOp::AndImm: dst &= imm; break;
          case BpfOp::OrImm:  dst |= imm; break;
          case BpfOp::XorImm: dst ^= imm; break;
          case BpfOp::LshImm: dst <<= insn.imm; break;
          case BpfOp::RshImm: dst >>= insn.imm; break;
          case BpfOp::Neg:    dst = ~dst + 1; break;
          case BpfOp::LdCtx:
            dst = ctx.at(static_cast<std::size_t>(insn.imm));
            break;
          case BpfOp::Ja:     taken = true; break;
          case BpfOp::JeqImm: taken = dst == imm; break;
          case BpfOp::JeqReg: taken = dst == srcv; break;
          case BpfOp::JneImm: taken = dst != imm; break;
          case BpfOp::JgtImm: taken = dst > imm; break;
          case BpfOp::JgtReg: taken = dst > srcv; break;
          case BpfOp::JgeImm: taken = dst >= imm; break;
          case BpfOp::JltImm: taken = dst < imm; break;
          case BpfOp::JleImm: taken = dst <= imm; break;
          case BpfOp::Call: {
            auto it = helpers_.find(static_cast<std::uint32_t>(insn.imm));
            LAKE_ASSERT(it != helpers_.end(),
                        "unverified helper call %lld",
                        static_cast<long long>(insn.imm));
            std::array<std::uint64_t, 5> args{regs[1], regs[2], regs[3],
                                              regs[4], regs[5]};
            regs[0] = it->second(args);
            break;
          }
          case BpfOp::Exit:
            return regs[0];
        }

        pc += 1;
        if (taken && isJump(insn.op))
            pc += static_cast<std::size_t>(insn.off);
    }
    panic("bpf program ran off the end: verifier bug");
}

BpfProgramBuilder &
BpfProgramBuilder::movImm(std::uint8_t dst, std::int64_t imm)
{
    return emit({BpfOp::MovImm, dst, 0, 0, imm});
}

BpfProgramBuilder &
BpfProgramBuilder::movReg(std::uint8_t dst, std::uint8_t src)
{
    return emit({BpfOp::MovReg, dst, src, 0, 0});
}

BpfProgramBuilder &
BpfProgramBuilder::addImm(std::uint8_t dst, std::int64_t imm)
{
    return emit({BpfOp::AddImm, dst, 0, 0, imm});
}

BpfProgramBuilder &
BpfProgramBuilder::ldCtx(std::uint8_t dst, std::int64_t slot)
{
    return emit({BpfOp::LdCtx, dst, 0, 0, slot});
}

BpfProgramBuilder &
BpfProgramBuilder::jltImm(std::uint8_t dst, std::int64_t imm,
                          std::int32_t off)
{
    return emit({BpfOp::JltImm, dst, 0, off, imm});
}

BpfProgramBuilder &
BpfProgramBuilder::jgeImm(std::uint8_t dst, std::int64_t imm,
                          std::int32_t off)
{
    return emit({BpfOp::JgeImm, dst, 0, off, imm});
}

BpfProgramBuilder &
BpfProgramBuilder::call(std::uint32_t helper)
{
    return emit({BpfOp::Call, 0, 0, 0, helper});
}

BpfProgramBuilder &
BpfProgramBuilder::exit()
{
    return emit({BpfOp::Exit, 0, 0, 0, 0});
}

BpfProgramBuilder &
BpfProgramBuilder::emit(BpfInsn insn)
{
    prog_.push_back(insn);
    return *this;
}

BpfPolicy::BpfPolicy(const BpfVm &vm, std::vector<BpfInsn> program,
                     UtilProbe probe, Config config)
    : vm_(vm), program_(std::move(program)), probe_(std::move(probe)),
      cfg_(config), avg_(config.avg_window)
{
    Status st = vm_.verify(program_, kCtxSlotCount);
    if (!st.isOk())
        fatal("rejected bpf policy: %s", st.toString().c_str());
}

Engine
BpfPolicy::decide(const PolicyInput &in)
{
    // Same clamp as ContentionAwarePolicy::decide: a non-monotone
    // caller-supplied `now` must not wrap the interval check and defeat
    // the probe rate limit.
    if (probe_ &&
        (!probed_once_ ||
         (in.now >= last_probe_ &&
          in.now - last_probe_ >= cfg_.probe_interval))) {
        avg_.add(probe_(in.now));
        last_probe_ = in.now;
        probed_once_ = true;
    }

    std::vector<std::uint64_t> ctx(kCtxSlotCount, 0);
    ctx[kCtxBatchSize] = in.batch_size;
    ctx[kCtxNowMs] = in.now / 1'000'000ull;
    ctx[kCtxInterArrivalUsX100] =
        static_cast<std::uint64_t>(in.inter_arrival_us * 100.0);
    ctx[kCtxGpuUtilX100] =
        static_cast<std::uint64_t>(avg_.value() * 100.0);

    return vm_.run(program_, ctx) != 0 ? Engine::Gpu : Engine::Cpu;
}

std::vector<BpfInsn>
buildFig3Program(double exec_threshold_pct, std::size_t batch_threshold)
{
    // r1 = util_x100; r2 = batch
    // if (r1 >= exec_threshold_x100) return 0    (contended -> CPU)
    // if (r2 <  batch_threshold)     return 0    (unprofitable -> CPU)
    // return 1                                    (GPU)
    auto exec_x100 = static_cast<std::int64_t>(exec_threshold_pct * 100.0);
    BpfProgramBuilder b;
    b.ldCtx(1, kCtxGpuUtilX100)                                   // 0
        .ldCtx(2, kCtxBatchSize)                                  // 1
        .movImm(0, 0)                                             // 2
        .jgeImm(1, exec_x100, 2)          // 3: contended -> 6    (CPU)
        .jltImm(2, static_cast<std::int64_t>(batch_threshold), 1)
                                          // 4: small batch -> 6  (CPU)
        .movImm(0, 1)                     // 5: GPU
        .exit();                          // 6: return r0
    return b.take();
}

} // namespace lake::policy
