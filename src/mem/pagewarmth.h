#ifndef LAKE_MEM_PAGEWARMTH_H
#define LAKE_MEM_PAGEWARMTH_H

/**
 * @file
 * Kleio-style page-warmth classification for tiered memory (§7.2).
 *
 * Kleio observes each page's access counts over scheduling intervals
 * and predicts whether the page will be hot next interval, informing
 * fast-tier placement. This module provides: a page-access generator
 * with latent per-page behaviours (steady-hot, cold, periodic,
 * drifting), sequence extraction for the LSTM, a history-based
 * baseline placer (the paper's comparison point [58]), and a tiered
 * memory cost model that scores a placement.
 */

#include <cstdint>
#include <vector>

#include "base/rng.h"
#include "base/time.h"
#include "ml/lstm.h"

namespace lake::mem {

/** Latent behaviour of a page. */
enum class PageBehavior : int
{
    SteadyHot = 0, //!< consistently accessed
    Cold,          //!< almost never accessed
    Periodic,      //!< hot every k-th interval (phase-shifted)
    Drifting,      //!< warming up or cooling down over the window
};

/** One page's observed history and next-interval ground truth. */
struct PageHistory
{
    std::vector<float> counts;  //!< accesses per interval (seq_len long)
    float next_count = 0.0f;    //!< accesses in the *next* interval
    PageBehavior behavior = PageBehavior::Cold;
};

/**
 * Generates @p pages histories of @p seq_len intervals with a mix of
 * behaviours.
 */
std::vector<PageHistory> generatePageHistories(std::size_t pages,
                                               std::size_t seq_len,
                                               Rng &rng);

/** Count above which an interval makes a page "hot". */
constexpr float kHotThreshold = 8.0f;

/**
 * History-based baseline (the HMA-style scheduler Kleio improves on):
 * predicts hot iff the exponentially-weighted recent history is hot.
 */
bool historyPredictsHot(const PageHistory &page);

/** Tiered-memory cost model. */
struct TierSpec
{
    /** Fraction of pages that fit in the fast tier. */
    double fast_capacity_fraction = 0.25;
    Nanos fast_access = 80_ns;   //!< DRAM
    Nanos slow_access = 400_ns;  //!< NVM / CXL-far tier
};

/** Placement quality over one interval. */
struct PlacementOutcome
{
    double avg_access_ns = 0.0;
    /** Hot pages left in the slow tier. */
    double hot_misplaced_fraction = 0.0;
    /** Ratio to the clairvoyant placement's average access time. */
    double slowdown_vs_oracle = 1.0;
};

/**
 * Scores a placement: pages ranked by @p hot_score occupy the fast
 * tier up to capacity; the next interval's accesses pay the resulting
 * latencies, compared against a clairvoyant oracle.
 * @param hot_score one score per page; higher = keep fast
 */
PlacementOutcome scorePlacement(const std::vector<PageHistory> &pages,
                                const std::vector<float> &hot_score,
                                const TierSpec &tiers);

/** Flattens histories into an LSTM input batch (seq-major per page). */
std::vector<float> toLstmBatch(const std::vector<PageHistory> &pages,
                               std::size_t seq_len);

} // namespace lake::mem

#endif // LAKE_MEM_PAGEWARMTH_H
