#include "mem/pagewarmth.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "base/logging.h"

namespace lake::mem {

std::vector<PageHistory>
generatePageHistories(std::size_t pages, std::size_t seq_len, Rng &rng)
{
    std::vector<PageHistory> out;
    out.reserve(pages);

    for (std::size_t p = 0; p < pages; ++p) {
        PageHistory page;
        page.counts.resize(seq_len);
        double roll = rng.uniform01();
        if (roll < 0.20)
            page.behavior = PageBehavior::SteadyHot;
        else if (roll < 0.60)
            page.behavior = PageBehavior::Cold;
        else if (roll < 0.80)
            page.behavior = PageBehavior::Periodic;
        else
            page.behavior = PageBehavior::Drifting;

        auto sample = [&](std::size_t t) -> float {
            switch (page.behavior) {
              case PageBehavior::SteadyHot:
                return static_cast<float>(rng.uniform(12.0, 40.0));
              case PageBehavior::Cold:
                return rng.chance(0.05)
                           ? static_cast<float>(rng.uniform(1.0, 4.0))
                           : 0.0f;
              case PageBehavior::Periodic: {
                std::size_t k = 3 + (p % 4);
                std::size_t phase = p % k;
                return (t % k) == phase
                           ? static_cast<float>(rng.uniform(15.0, 35.0))
                           : static_cast<float>(rng.uniform(0.0, 2.0));
              }
              case PageBehavior::Drifting: {
                // Linear ramp up (even pages) or down (odd pages).
                double frac = static_cast<double>(t) /
                              static_cast<double>(seq_len);
                double level = (p % 2 == 0) ? frac : 1.0 - frac;
                return static_cast<float>(level * 30.0 +
                                          rng.uniform(0.0, 3.0));
              }
            }
            return 0.0f;
        };

        for (std::size_t t = 0; t < seq_len; ++t)
            page.counts[t] = sample(t);
        page.next_count = sample(seq_len);
        out.push_back(std::move(page));
    }
    return out;
}

bool
historyPredictsHot(const PageHistory &page)
{
    // Exponentially-weighted moving average over the window — the
    // reactive policy of history-based tiering.
    double ewma = 0.0;
    for (float c : page.counts)
        ewma = 0.6 * ewma + 0.4 * static_cast<double>(c);
    return ewma >= kHotThreshold;
}

PlacementOutcome
scorePlacement(const std::vector<PageHistory> &pages,
               const std::vector<float> &hot_score, const TierSpec &tiers)
{
    LAKE_ASSERT(pages.size() == hot_score.size(),
                "scores/pages size mismatch");
    PlacementOutcome out;
    if (pages.empty())
        return out;

    std::size_t fast_slots = static_cast<std::size_t>(
        tiers.fast_capacity_fraction * static_cast<double>(pages.size()));

    auto placementCost = [&](const std::vector<std::size_t> &ranked) {
        double total = 0.0, accesses = 0.0;
        std::size_t hot_slow = 0, hot_total = 0;
        std::vector<bool> fast(pages.size(), false);
        for (std::size_t i = 0; i < ranked.size() && i < fast_slots; ++i)
            fast[ranked[i]] = true;
        for (std::size_t p = 0; p < pages.size(); ++p) {
            double c = pages[p].next_count;
            accesses += c;
            total += c * static_cast<double>(fast[p] ? tiers.fast_access
                                                     : tiers.slow_access);
            if (pages[p].next_count >= kHotThreshold) {
                ++hot_total;
                if (!fast[p])
                    ++hot_slow;
            }
        }
        double avg = accesses > 0.0 ? total / accesses : 0.0;
        double miss = hot_total > 0 ? static_cast<double>(hot_slow) /
                                          static_cast<double>(hot_total)
                                    : 0.0;
        return std::make_pair(avg, miss);
    };

    // Candidate placement: rank by the provided scores.
    std::vector<std::size_t> ranked(pages.size());
    std::iota(ranked.begin(), ranked.end(), 0);
    std::stable_sort(ranked.begin(), ranked.end(),
                     [&](std::size_t a, std::size_t b) {
                         return hot_score[a] > hot_score[b];
                     });
    auto [avg, miss] = placementCost(ranked);

    // Oracle: rank by the true next-interval counts.
    std::vector<std::size_t> oracle(pages.size());
    std::iota(oracle.begin(), oracle.end(), 0);
    std::stable_sort(oracle.begin(), oracle.end(),
                     [&](std::size_t a, std::size_t b) {
                         return pages[a].next_count > pages[b].next_count;
                     });
    auto [oracle_avg, oracle_miss] = placementCost(oracle);
    (void)oracle_miss;

    out.avg_access_ns = avg;
    out.hot_misplaced_fraction = miss;
    out.slowdown_vs_oracle = oracle_avg > 0.0 ? avg / oracle_avg : 1.0;
    return out;
}

std::vector<float>
toLstmBatch(const std::vector<PageHistory> &pages, std::size_t seq_len)
{
    std::vector<float> out;
    out.reserve(pages.size() * seq_len);
    for (const PageHistory &p : pages) {
        LAKE_ASSERT(p.counts.size() == seq_len, "history length mismatch");
        // Normalize counts into the LSTM's comfortable range.
        for (float c : p.counts)
            out.push_back(c / 40.0f);
    }
    return out;
}

} // namespace lake::mem
