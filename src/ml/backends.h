#ifndef LAKE_ML_BACKENDS_H
#define LAKE_ML_BACKENDS_H

/**
 * @file
 * Execution backends for the in-kernel models.
 *
 * Each model gets two wrappers mirroring the paper's pairs of bars:
 *
 *  - Cpu*: the model runs in kernel context between kernel_fpu_begin /
 *    kernel_fpu_end; virtual time is charged from the CpuSpec.
 *  - Lake*: the model runs on the GPU through the full LAKE path
 *    (lakeShm staging, lakeLib commands, lakeD execution). Each wrapper
 *    supports the two data-movement regimes of the figures: "LAKE"
 *    (inputs staged asynchronously ahead of execution, copies off the
 *    critical path) and "LAKE (sync.)" (copies paid inline).
 */

#include <cstdint>
#include <vector>

#include "base/status.h"
#include "base/time.h"
#include "gpu/spec.h"
#include "ml/knn.h"
#include "ml/lstm.h"
#include "ml/mlp.h"
#include "remote/daemon.h"
#include "remote/lakelib.h"
#include "remote/streampool.h"
#include "shm/arena.h"

namespace lake::ml {

/**
 * Kernel-context CPU compute: charges modeled time for float work.
 */
class KernelCpu
{
  public:
    /** kernel_fpu_begin/end bracket cost per charged region. */
    static constexpr Nanos kFpuBracket = 300_ns;

    /**
     * @param clock clock to charge
     * @param spec  CPU performance envelope
     */
    KernelCpu(Clock &clock, gpu::CpuSpec spec)
        : clock_(clock), spec_(std::move(spec))
    {}

    /** Charges @p flops of scalar float work plus the FPU bracket. */
    void
    charge(double flops)
    {
        clock_.advance(kFpuBracket +
                       static_cast<Nanos>(flops / spec_.effective_gflops));
    }

    /** The clock being charged. */
    Clock &clock() { return clock_; }
    /** The CPU model. */
    const gpu::CpuSpec &spec() const { return spec_; }

  private:
    Clock &clock_;
    gpu::CpuSpec spec_;
};

/** CPU-resident MLP classifier (LinnOS / MLLB / KML on-CPU bars). */
class CpuMlp
{
  public:
    /** @param model shared model; must outlive the wrapper */
    CpuMlp(const Mlp &model, KernelCpu &cpu) : model_(model), cpu_(cpu) {}

    /** Classifies a batch, charging CPU time. */
    std::vector<int> classify(const Matrix &x);

    /**
     * Zero-copy variant over strided windows (SoA slot batches). The
     * views' rows form one batch: virtual time is charged exactly as a
     * single classify(Matrix) of the same total row count (one FPU
     * bracket), and scores are bit-identical to packing the rows.
     */
    std::vector<int> classify(const std::vector<MatrixView> &xs);

  private:
    const Mlp &model_;
    KernelCpu &cpu_;
};

/**
 * GPU MLP classifier through LAKE.
 *
 * Construction uploads the serialized model to device memory via
 * lakeShm (one-time cost); classify() stages the batch and launches
 * "mlp_forward".
 */
class LakeMlp
{
  public:
    /**
     * @param model     model to upload (copied into device memory)
     * @param lib       kernel-side stub library
     * @param sync_copy true = "LAKE (sync.)": input copy paid inline
     * @param max_batch largest batch classify() will ever see
     */
    LakeMlp(const Mlp &model, remote::LakeLib &lib, bool sync_copy,
            std::size_t max_batch);
    ~LakeMlp();

    LakeMlp(const LakeMlp &) = delete;
    LakeMlp &operator=(const LakeMlp &) = delete;

    /** Classifies a batch on the GPU; asserts on remoting failure. */
    std::vector<int> classify(const Matrix &x);

    /**
     * Classifies a batch on the GPU, propagating remoting failures
     * (timeouts, corrupt responses, degraded transport) as a Status
     * instead of asserting — the caller decides whether to fall back
     * to the CPU model.
     */
    Result<std::vector<int>> tryClassify(const Matrix &x);

    /**
     * Opts into streaming DMA orchestration (DESIGN.md §10): each
     * batch is split into per-stream chunks whose feature rows are
     * gathered into pooled lakeShm buffers and round-robined across
     * the orchestrator's streams, so chunk i+1's upload overlaps chunk
     * i's forward pass. Steady state performs zero arena alloc/free
     * and zero cuMemAlloc/cuMemFree calls. Pass nullptr to revert to
     * the classic single-stream path. Ignored in sync_copy mode (the
     * "LAKE (sync.)" bar pays copies inline by definition).
     */
    void enableStreaming(remote::StreamOrchestrator *orch)
    {
        orch_ = orch;
    }

  private:
    /** Multi-stream chunked classify (enableStreaming path). */
    Result<std::vector<int>> tryClassifyStreamed(const Matrix &x);

    remote::LakeLib &lib_;
    shm::ShmArena &arena_;
    std::uint32_t input_w_;
    std::uint32_t output_w_;
    bool sync_copy_;
    std::size_t max_batch_;
    remote::StreamOrchestrator *orch_ = nullptr;
    gpu::DevicePtr d_model_ = 0;
    gpu::DevicePtr d_in_ = 0;
    gpu::DevicePtr d_out_ = 0;
    shm::ShmOffset h_in_ = shm::kNullOffset;
    shm::ShmOffset h_out_ = shm::kNullOffset;
};

/** CPU k-NN classifier. */
class CpuKnn
{
  public:
    CpuKnn(const Knn &model, KernelCpu &cpu) : model_(model), cpu_(cpu) {}

    /** Classifies @p n queries, charging CPU time. */
    std::vector<int> classify(const float *queries, std::size_t n);

  private:
    const Knn &model_;
    KernelCpu &cpu_;
};

/** GPU k-NN through LAKE; references uploaded at construction. */
class LakeKnn
{
  public:
    /**
     * @param host_sample_stride evaluate every Nth reference on the
     *        simulation host (modeled device time still covers the
     *        full scan); 1 = exact results
     */
    LakeKnn(const Knn &model, remote::LakeLib &lib, bool sync_copy,
            std::size_t max_queries, std::size_t host_sample_stride = 1);
    ~LakeKnn();

    LakeKnn(const LakeKnn &) = delete;
    LakeKnn &operator=(const LakeKnn &) = delete;

    /** Classifies @p n queries on the GPU; asserts on failure. */
    std::vector<int> classify(const float *queries, std::size_t n);

    /** Status-propagating variant of classify (see LakeMlp). */
    Result<std::vector<int>> tryClassify(const float *queries,
                                         std::size_t n);

  private:
    remote::LakeLib &lib_;
    shm::ShmArena &arena_;
    std::size_t dim_;
    std::size_t k_;
    std::size_t n_refs_;
    bool sync_copy_;
    std::size_t max_queries_;
    std::size_t host_stride_;
    gpu::DevicePtr d_refs_ = 0;
    gpu::DevicePtr d_labels_ = 0;
    gpu::DevicePtr d_queries_ = 0;
    gpu::DevicePtr d_out_ = 0;
    shm::ShmOffset h_io_ = shm::kNullOffset;
};

/** CPU LSTM classifier (page-warmth on-CPU reference). */
class CpuLstm
{
  public:
    CpuLstm(const Lstm &model, KernelCpu &cpu) : model_(model), cpu_(cpu) {}

    /** Classifies @p batch samples (concatenated), charging CPU time. */
    std::vector<int> classify(const std::vector<float> &seqs,
                              std::size_t batch);

  private:
    const Lstm &model_;
    KernelCpu &cpu_;
};

/**
 * The Kleio page-warmth path: a *high-level* API (§4.4).
 *
 * Kernel space does not drive CUDA for the LSTM; it calls one remoted
 * "kleio.infer" API. lakeD's handler owns the TensorFlow-like runtime:
 * it stages the batch onto the GPU, runs "lstm_forward", and charges
 * the framework overhead Fig. 9 exhibits.
 */
class KleioService
{
  public:
    /** Modeled fixed TensorFlow invocation overhead per call. */
    static constexpr Nanos kTfCallOverhead = 95_ms;

    /**
     * Modeled per-page TF cost: Kleio keeps a *per-page* model, so a
     * batch of N pages is N graph executions — the source of Fig. 9's
     * near-linear growth.
     */
    static constexpr Nanos kTfPerSampleCost = 170_us;

    /**
     * Installs the "kleio.infer" handler into @p daemon and uploads the
     * model to device memory.
     * @return the service object the kernel side uses
     */
    KleioService(remote::LakeDaemon &daemon, const Lstm &model);

    /**
     * Kernel-side entry: classifies @p batch page histories. Data moves
     * through lakeShm; the call itself is one high-level RPC.
     */
    std::vector<int> classify(remote::LakeLib &lib,
                              const std::vector<float> &seqs,
                              std::size_t batch);

  private:
    remote::LakeDaemon &daemon_;
    LstmConfig config_;
    gpu::DevicePtr d_model_ = 0;
};

} // namespace lake::ml

#endif // LAKE_ML_BACKENDS_H
