#ifndef LAKE_ML_GPU_KERNELS_H
#define LAKE_ML_GPU_KERNELS_H

/**
 * @file
 * GPU kernels backing the ML models.
 *
 * Registers three kernels with the simulated device (the CUDA ports the
 * paper describes building for LinnOS, MLLB, KML and the kNN detector):
 *
 *  - "mlp_forward":  args = model ptr, input ptr, logits ptr, batch.
 *    The model is an Mlp::serialize() blob resident in device memory.
 *  - "lstm_forward": args = model ptr, input ptr, label ptr, batch.
 *    The model is an Lstm::serialize() blob; input is batch samples of
 *    seq_len x input floats; output is one int32 class per sample.
 *  - "knn_query":    args = refs ptr, labels ptr, queries ptr, out ptr,
 *    n_refs, n_queries, dim, k. Output is one int32 label per query.
 */

namespace lake::ml {

/** Registers the ML kernels; idempotent. */
void registerMlKernels();

} // namespace lake::ml

#endif // LAKE_ML_GPU_KERNELS_H
