#include "ml/mlp.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "base/logging.h"
#include "ml/compute.h"

namespace lake::ml {

namespace {

/** Argmax per row of a logits matrix. */
std::vector<int>
argmaxRows(const Matrix &logits)
{
    std::vector<int> out(logits.rows());
    for (std::size_t r = 0; r < logits.rows(); ++r) {
        const float *row = logits.row(r);
        out[r] = static_cast<int>(
            std::max_element(row, row + logits.cols()) - row);
    }
    return out;
}

} // namespace

MlpConfig
MlpConfig::linnos(std::size_t extra_layers)
{
    MlpConfig c;
    c.input = 31;
    c.hidden.assign(1 + extra_layers, 256);
    c.output = 2;
    return c;
}

MlpConfig
MlpConfig::mllb()
{
    // Width calibrated so the CPU/GPU crossover lands at Table 3's 256
    // tasks given the kernel-space CPU model.
    MlpConfig c;
    c.input = 22;
    c.hidden = {6};
    c.output = 2;
    return c;
}

MlpConfig
MlpConfig::kml()
{
    // Width calibrated so the CPU/GPU crossover lands at Table 3's 64
    // classifications given the kernel-space CPU model.
    MlpConfig c;
    c.input = 31;
    c.hidden = {18};
    c.output = 4;
    return c;
}

std::vector<std::uint32_t>
Mlp::dims() const
{
    std::vector<std::uint32_t> d;
    d.push_back(config_.input);
    for (std::uint32_t h : config_.hidden)
        d.push_back(h);
    d.push_back(config_.output);
    return d;
}

Mlp::Mlp(MlpConfig config) : config_(std::move(config))
{
    LAKE_ASSERT(config_.input > 0 && config_.output > 0,
                "mlp needs nonzero input/output widths");
}

Mlp::Mlp(MlpConfig config, Rng &rng) : Mlp(std::move(config))
{
    std::vector<std::uint32_t> d = dims();
    for (std::size_t l = 0; l + 1 < d.size(); ++l) {
        double scale = std::sqrt(2.0 / d[l]);
        weights_.push_back(Matrix::randn(d[l + 1], d[l], rng, scale));
        biases_.emplace_back(d[l + 1], 0.0f);
    }
    repack();
}

void
Mlp::repack()
{
    packed_.resize(weights_.size());
    packed_bias_.resize(weights_.size());
    packed_out_.resize(weights_.size());
    for (std::size_t l = 0; l < weights_.size(); ++l) {
        const Matrix &w = weights_[l]; // out x in
        std::size_t padded = compute::padTile(w.rows());
        packed_[l].assign(w.cols() * padded, 0.0f);
        for (std::size_t o = 0; o < w.rows(); ++o)
            for (std::size_t i = 0; i < w.cols(); ++i)
                packed_[l][i * padded + o] = w.at(o, i);
        packed_bias_[l].assign(padded, 0.0f);
        std::copy(biases_[l].begin(), biases_[l].end(),
                  packed_bias_[l].begin());
        packed_out_[l] = padded;
    }
}

void
Mlp::layerForward(std::size_t l, const float *x, std::size_t n,
                  std::size_t x_stride, float *y) const
{
    const std::size_t in = weights_[l].cols();
    const std::size_t out = weights_[l].rows();
    const std::size_t padded = packed_out_[l];
    if (padded == out) {
        compute::affinePacked(x, n, in, x_stride, packed_[l].data(),
                              out, packed_bias_[l].data(), y);
        return;
    }
    // Narrow layer: compute into a tile-padded scratch, then drop the
    // zero columns. Each real element's reduction is untouched.
    Matrix pad(n, padded);
    compute::affinePacked(x, n, in, x_stride, packed_[l].data(), padded,
                          packed_bias_[l].data(), pad.data());
    for (std::size_t r = 0; r < n; ++r)
        std::copy(pad.row(r), pad.row(r) + out, y + r * out);
}

Matrix
Mlp::forward(const Matrix &x) const
{
    LAKE_ASSERT(x.cols() == config_.input,
                "mlp input width %zu != expected %u", x.cols(),
                config_.input);
    Matrix a = x;
    for (std::size_t l = 0; l < weights_.size(); ++l) {
        Matrix next(a.rows(), weights_[l].rows());
        layerForward(l, a.data(), a.rows(), a.cols(), next.data());
        a = std::move(next);
        if (l + 1 < weights_.size()) { // hidden layers: ReLU
            for (std::size_t i = 0; i < a.rows(); ++i)
                for (std::size_t j = 0; j < a.cols(); ++j)
                    a.at(i, j) = std::max(0.0f, a.at(i, j));
        }
    }
    return a;
}

Matrix
Mlp::forward(const std::vector<MatrixView> &xs) const
{
    std::size_t n = 0;
    for (const MatrixView &v : xs) {
        LAKE_ASSERT(v.rows() == 0 || v.cols() == config_.input,
                    "mlp view width %zu != expected %u", v.cols(),
                    config_.input);
        n += v.rows();
    }

    // Layer 0 consumes each strided window in place, writing into the
    // stacked activation matrix. Each row's reduction is identical to
    // the contiguous path (the strided kernels only change where rows
    // start), so results are bit-identical to packing first — and the
    // cached weight transpose is shared across the views, so a
    // multi-registry flush packs nothing at all.
    Matrix a(n, weights_[0].rows());
    std::size_t r0 = 0;
    for (const MatrixView &v : xs) {
        if (v.rows() == 0)
            continue;
        layerForward(0, v.data(), v.rows(), v.stride(), a.row(r0));
        r0 += v.rows();
    }

    for (std::size_t l = 0; l < weights_.size(); ++l) {
        if (l > 0) {
            Matrix next(a.rows(), weights_[l].rows());
            layerForward(l, a.data(), a.rows(), a.cols(), next.data());
            a = std::move(next);
        }
        if (l + 1 < weights_.size()) { // hidden layers: ReLU
            for (std::size_t i = 0; i < a.rows(); ++i)
                for (std::size_t j = 0; j < a.cols(); ++j)
                    a.at(i, j) = std::max(0.0f, a.at(i, j));
        }
    }
    return a;
}

std::vector<int>
Mlp::classify(const Matrix &x) const
{
    return argmaxRows(forward(x));
}

std::vector<int>
Mlp::classify(const std::vector<MatrixView> &xs) const
{
    return argmaxRows(forward(xs));
}

Matrix
softmax(const Matrix &logits)
{
    Matrix p(logits.rows(), logits.cols());
    for (std::size_t r = 0; r < logits.rows(); ++r) {
        const float *in = logits.row(r);
        float *out = p.row(r);
        float mx = *std::max_element(in, in + logits.cols());
        float sum = 0.0f;
        for (std::size_t c = 0; c < logits.cols(); ++c) {
            out[c] = std::exp(in[c] - mx);
            sum += out[c];
        }
        for (std::size_t c = 0; c < logits.cols(); ++c)
            out[c] /= sum;
    }
    return p;
}

double
Mlp::trainStep(const Matrix &x, const std::vector<int> &labels, float lr)
{
    LAKE_ASSERT(labels.size() == x.rows(), "labels/batch size mismatch");
    std::size_t n = x.rows();

    // Forward, keeping post-activation values per layer.
    std::vector<Matrix> acts;
    acts.push_back(x);
    for (std::size_t l = 0; l < weights_.size(); ++l) {
        Matrix a = Matrix::affine(acts.back(), weights_[l], biases_[l]);
        if (l + 1 < weights_.size()) {
            for (std::size_t i = 0; i < a.rows(); ++i)
                for (std::size_t j = 0; j < a.cols(); ++j)
                    a.at(i, j) = std::max(0.0f, a.at(i, j));
        }
        acts.push_back(std::move(a));
    }

    // Softmax cross-entropy loss and its gradient w.r.t. the logits.
    Matrix probs = softmax(acts.back());
    double loss = 0.0;
    Matrix delta(n, config_.output); // dL/dlogits
    for (std::size_t r = 0; r < n; ++r) {
        int y = labels[r];
        LAKE_ASSERT(y >= 0 && static_cast<std::uint32_t>(y) <
                                  config_.output,
                    "label %d out of range", y);
        loss += -std::log(std::max(probs.at(r, y), 1e-12f));
        for (std::size_t c = 0; c < config_.output; ++c) {
            float t = (static_cast<int>(c) == y) ? 1.0f : 0.0f;
            delta.at(r, c) = (probs.at(r, c) - t) / static_cast<float>(n);
        }
    }

    // Backward through each layer, applying SGD updates in place.
    for (std::size_t li = weights_.size(); li-- > 0;) {
        const Matrix &a_in = acts[li];
        Matrix &w = weights_[li];
        std::vector<float> &b = biases_[li];

        // Propagate to the previous layer before mutating w.
        Matrix next_delta;
        if (li > 0) {
            next_delta = Matrix(n, w.cols());
            for (std::size_t r = 0; r < n; ++r) {
                for (std::size_t i = 0; i < w.cols(); ++i) {
                    float acc = 0.0f;
                    for (std::size_t o = 0; o < w.rows(); ++o)
                        acc += delta.at(r, o) * w.at(o, i);
                    // ReLU gate of the previous layer's activation.
                    next_delta.at(r, i) =
                        acts[li].at(r, i) > 0.0f ? acc : 0.0f;
                }
            }
        }

        // dW = delta^T * a_in; db = column sums of delta.
        for (std::size_t o = 0; o < w.rows(); ++o) {
            float db = 0.0f;
            for (std::size_t r = 0; r < n; ++r)
                db += delta.at(r, o);
            b[o] -= lr * db;
            for (std::size_t i = 0; i < w.cols(); ++i) {
                float dw = 0.0f;
                for (std::size_t r = 0; r < n; ++r)
                    dw += delta.at(r, o) * a_in.at(r, i);
                w.at(o, i) -= lr * dw;
            }
        }

        if (li > 0)
            delta = std::move(next_delta);
    }

    repack();
    return loss / static_cast<double>(n);
}

double
Mlp::accuracy(const Matrix &x, const std::vector<int> &labels) const
{
    std::vector<int> pred = classify(x);
    std::size_t hits = 0;
    for (std::size_t i = 0; i < pred.size(); ++i)
        hits += pred[i] == labels[i] ? 1 : 0;
    return pred.empty() ? 0.0
                        : static_cast<double>(hits) /
                              static_cast<double>(pred.size());
}

double
Mlp::flopsPerSample() const
{
    double flops = 0.0;
    for (const Matrix &w : weights_)
        flops += 2.0 * static_cast<double>(w.rows()) * w.cols();
    return flops;
}

std::size_t
Mlp::paramCount() const
{
    std::size_t n = 0;
    for (std::size_t l = 0; l < weights_.size(); ++l)
        n += weights_[l].size() + biases_[l].size();
    return n;
}

std::vector<std::uint8_t>
Mlp::serialize() const
{
    std::vector<std::uint8_t> blob;
    auto put32 = [&blob](std::uint32_t v) {
        for (int i = 0; i < 4; ++i)
            blob.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    };
    auto putFloats = [&blob](const float *p, std::size_t n) {
        const auto *bytes = reinterpret_cast<const std::uint8_t *>(p);
        blob.insert(blob.end(), bytes, bytes + n * sizeof(float));
    };

    put32(0x4d4c504dU); // 'MLPM'
    put32(config_.input);
    put32(static_cast<std::uint32_t>(config_.hidden.size()));
    for (std::uint32_t h : config_.hidden)
        put32(h);
    put32(config_.output);
    for (std::size_t l = 0; l < weights_.size(); ++l) {
        putFloats(weights_[l].data(), weights_[l].size());
        putFloats(biases_[l].data(), biases_[l].size());
    }
    return blob;
}

Result<Mlp>
Mlp::deserialize(const std::vector<std::uint8_t> &blob)
{
    std::size_t pos = 0;
    auto get32 = [&](std::uint32_t *out) {
        if (pos + 4 > blob.size())
            return false;
        std::uint32_t v = 0;
        for (int i = 0; i < 4; ++i)
            v |= static_cast<std::uint32_t>(blob[pos + i]) << (8 * i);
        pos += 4;
        *out = v;
        return true;
    };

    auto bad = [](const char *why) {
        return Result<Mlp>(Status(Code::InvalidArgument, why));
    };

    std::uint32_t magic = 0;
    if (!get32(&magic) || magic != 0x4d4c504dU)
        return bad("bad MLP magic");

    MlpConfig cfg;
    std::uint32_t nhidden = 0;
    if (!get32(&cfg.input) || !get32(&nhidden) || nhidden > 64)
        return bad("bad MLP header");
    cfg.hidden.resize(nhidden);
    for (std::uint32_t &h : cfg.hidden) {
        if (!get32(&h))
            return bad("truncated hidden widths");
    }
    if (!get32(&cfg.output))
        return bad("truncated output width");
    if (cfg.input == 0 || cfg.output == 0)
        return bad("zero layer width");

    Mlp net(cfg);
    std::vector<std::uint32_t> d = net.dims();
    for (std::size_t l = 0; l + 1 < d.size(); ++l) {
        Matrix w(d[l + 1], d[l]);
        std::size_t wbytes = w.size() * sizeof(float);
        if (pos + wbytes > blob.size())
            return bad("truncated weights");
        std::memcpy(w.data(), blob.data() + pos, wbytes);
        pos += wbytes;

        std::vector<float> b(d[l + 1]);
        std::size_t bbytes = b.size() * sizeof(float);
        if (pos + bbytes > blob.size())
            return bad("truncated biases");
        std::memcpy(b.data(), blob.data() + pos, bbytes);
        pos += bbytes;

        net.weights_.push_back(std::move(w));
        net.biases_.push_back(std::move(b));
    }
    if (pos != blob.size())
        return bad("trailing bytes in MLP blob");
    net.repack();
    return Result<Mlp>(std::move(net));
}

} // namespace lake::ml
