#ifndef LAKE_ML_LSTM_TRAIN_H
#define LAKE_ML_LSTM_TRAIN_H

/**
 * @file
 * Backpropagation-through-time training for the stacked LSTM.
 *
 * Kleio trains its per-page LSTMs offline in user space; the kernel
 * only consumes the frozen model through LAKE's high-level API. This
 * module is that offline trainer: full BPTT across the sequence and
 * layer stack, softmax cross-entropy on the dense head, minibatch SGD
 * with gradient clipping. It lives outside the Lstm class because the
 * kernel-facing inference object never needs it.
 */

#include <cstddef>
#include <vector>

#include "base/rng.h"
#include "ml/lstm.h"

namespace lake::ml {

/** One labelled sequence. */
struct LstmSample
{
    std::vector<float> seq; //!< seq_len x input values
    int label = 0;
};

/** Training knobs. */
struct LstmTrainConfig
{
    std::size_t epochs = 10;
    std::size_t batch = 16;
    float lr = 0.05f;
    /** Per-minibatch global gradient-norm clip (0 = off). */
    float clip = 5.0f;
    /** Multiply lr by this after every epoch. */
    float lr_decay = 0.85f;
};

/**
 * Trains @p net in place with minibatch SGD + BPTT.
 * @return mean loss of the final epoch
 */
double trainLstm(Lstm &net, const std::vector<LstmSample> &data,
                 const LstmTrainConfig &config, Rng &rng);

/** Fraction of samples classified correctly. */
double lstmAccuracy(const Lstm &net, const std::vector<LstmSample> &data);

} // namespace lake::ml

#endif // LAKE_ML_LSTM_TRAIN_H
