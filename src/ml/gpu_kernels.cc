#include "ml/gpu_kernels.h"

#include <algorithm>
#include <cstring>
#include <vector>

#include "base/logging.h"
#include "gpu/kernels.h"
#include "ml/knn.h"
#include "ml/lstm.h"
#include "ml/mlp.h"

namespace lake::ml {

using gpu::CuResult;
using gpu::Device;
using gpu::LaunchConfig;

namespace {

/** Reads a little-endian u32 at @p pos from device-resident bytes. */
bool
peek32(const Device &dev, gpu::DevicePtr base, std::size_t pos,
       std::uint32_t *out)
{
    const void *p = dev.resolve(base + pos, 4);
    if (!p)
        return false;
    std::memcpy(out, p, 4);
    return true;
}

/**
 * Copies a device-resident model blob out for host-side execution of
 * the kernel body. @return empty vector when the pointer is bad.
 */
std::vector<std::uint8_t>
snapshotBlob(const Device &dev, gpu::DevicePtr ptr, std::size_t bytes)
{
    const void *p = dev.resolve(ptr, bytes);
    if (!p)
        return {};
    const auto *u8 = static_cast<const std::uint8_t *>(p);
    return std::vector<std::uint8_t>(u8, u8 + bytes);
}

/** Parses the MLP blob header into full layer widths. */
bool
mlpDims(const Device &dev, gpu::DevicePtr model,
        std::vector<std::uint32_t> *dims)
{
    std::uint32_t magic = 0, input = 0, nhidden = 0;
    if (!peek32(dev, model, 0, &magic) || magic != 0x4d4c504dU)
        return false;
    if (!peek32(dev, model, 4, &input) || !peek32(dev, model, 8, &nhidden))
        return false;
    if (nhidden > 64)
        return false;
    dims->clear();
    dims->push_back(input);
    for (std::uint32_t i = 0; i < nhidden; ++i) {
        std::uint32_t h = 0;
        if (!peek32(dev, model, 12 + 4 * i, &h))
            return false;
        dims->push_back(h);
    }
    std::uint32_t output = 0;
    if (!peek32(dev, model, 12 + 4 * nhidden, &output))
        return false;
    dims->push_back(output);
    return true;
}

/** Byte length of an MLP blob with the given widths. */
std::size_t
mlpBlobBytes(const std::vector<std::uint32_t> &dims)
{
    std::size_t bytes = 12 + 4 * (dims.size() - 2) + 4; // header
    for (std::size_t l = 0; l + 1 < dims.size(); ++l)
        bytes += (static_cast<std::size_t>(dims[l]) * dims[l + 1] +
                  dims[l + 1]) *
                 sizeof(float);
    return bytes;
}

double
mlpFlops(const std::vector<std::uint32_t> &dims)
{
    double flops = 0.0;
    for (std::size_t l = 0; l + 1 < dims.size(); ++l)
        flops += 2.0 * dims[l] * dims[l + 1];
    return flops;
}

CuResult
mlpForwardBody(Device &dev, const LaunchConfig &cfg)
{
    if (cfg.args.size() != 4)
        return CuResult::InvalidValue;
    gpu::DevicePtr model = cfg.u64Arg(0);
    std::uint64_t batch = cfg.u64Arg(3);

    std::vector<std::uint32_t> dims;
    if (!mlpDims(dev, model, &dims))
        return CuResult::LaunchFailed;
    std::vector<std::uint8_t> blob =
        snapshotBlob(dev, model, mlpBlobBytes(dims));
    if (blob.empty())
        return CuResult::LaunchFailed;
    Result<Mlp> net = Mlp::deserialize(blob);
    if (!net.isOk())
        return CuResult::LaunchFailed;

    std::uint32_t in_w = dims.front(), out_w = dims.back();
    const auto *in = static_cast<const float *>(
        dev.resolve(cfg.u64Arg(1), batch * in_w * sizeof(float)));
    auto *out = static_cast<float *>(
        dev.resolve(cfg.u64Arg(2), batch * out_w * sizeof(float)));
    if (!in || !out)
        return CuResult::LaunchFailed;

    Matrix x(batch, in_w);
    std::memcpy(x.data(), in, batch * in_w * sizeof(float));
    Matrix logits = net.value().forward(x);
    std::memcpy(out, logits.data(), batch * out_w * sizeof(float));
    return CuResult::Success;
}

Nanos
mlpForwardCost(const Device &dev, const LaunchConfig &cfg)
{
    std::vector<std::uint32_t> dims;
    if (cfg.args.size() != 4 || !mlpDims(dev, cfg.u64Arg(0), &dims))
        return 0;
    std::uint64_t batch = cfg.u64Arg(3);
    double flops = mlpFlops(dims) * static_cast<double>(batch);
    // Every weight is streamed from device memory at least once per
    // launch; small batches are bandwidth-bound on exactly this.
    std::size_t bytes = mlpBlobBytes(dims) +
                        batch * (dims.front() + dims.back()) *
                            sizeof(float);
    return dev.computeTime(flops, bytes);
}

CuResult
lstmForwardBody(Device &dev, const LaunchConfig &cfg)
{
    if (cfg.args.size() != 4)
        return CuResult::InvalidValue;
    gpu::DevicePtr model = cfg.u64Arg(0);
    std::uint64_t batch = cfg.u64Arg(3);

    std::uint32_t magic = 0;
    if (!peek32(dev, model, 0, &magic) || magic != 0x4c53544dU)
        return CuResult::LaunchFailed;
    // The LSTM blob length is not recoverable from the header alone
    // without replicating layer math; snapshot generously by probing
    // config fields.
    std::uint32_t input = 0, hidden = 0, layers = 0, output = 0, seq = 0;
    if (!peek32(dev, model, 4, &input) || !peek32(dev, model, 8, &hidden) ||
        !peek32(dev, model, 12, &layers) ||
        !peek32(dev, model, 16, &output) || !peek32(dev, model, 20, &seq)) {
        return CuResult::LaunchFailed;
    }
    std::size_t bytes = 24;
    for (std::uint32_t l = 0; l < layers; ++l) {
        std::size_t in = l == 0 ? input : hidden;
        bytes += (4ull * hidden * in + 4ull * hidden * hidden +
                  4ull * hidden) *
                 sizeof(float);
    }
    bytes += (static_cast<std::size_t>(output) * hidden + output) *
             sizeof(float);

    std::vector<std::uint8_t> blob = snapshotBlob(dev, model, bytes);
    if (blob.empty())
        return CuResult::LaunchFailed;
    Result<Lstm> net = Lstm::deserialize(blob);
    if (!net.isOk())
        return CuResult::LaunchFailed;

    std::size_t per = static_cast<std::size_t>(seq) * input;
    const auto *in_p = static_cast<const float *>(
        dev.resolve(cfg.u64Arg(1), batch * per * sizeof(float)));
    auto *out_p = static_cast<std::int32_t *>(
        dev.resolve(cfg.u64Arg(2), batch * sizeof(std::int32_t)));
    if (!in_p || !out_p)
        return CuResult::LaunchFailed;

    std::vector<float> seqs(in_p, in_p + batch * per);
    std::vector<int> labels = net.value().classifyBatch(seqs, batch);
    for (std::size_t i = 0; i < labels.size(); ++i)
        out_p[i] = labels[i];
    return CuResult::Success;
}

Nanos
lstmForwardCost(const Device &dev, const LaunchConfig &cfg)
{
    if (cfg.args.size() != 4)
        return 0;
    gpu::DevicePtr model = cfg.u64Arg(0);
    std::uint32_t input = 0, hidden = 0, layers = 0, seq = 0;
    if (!peek32(dev, model, 4, &input) || !peek32(dev, model, 8, &hidden) ||
        !peek32(dev, model, 12, &layers) || !peek32(dev, model, 20, &seq))
        return 0;
    std::uint64_t batch = cfg.u64Arg(3);

    double flops = 0.0;
    std::size_t weight_bytes = 0;
    for (std::uint32_t l = 0; l < layers; ++l) {
        double in = l == 0 ? input : hidden;
        flops += (2.0 * 4 * hidden * (in + hidden) + 10.0 * hidden) * seq;
        weight_bytes += static_cast<std::size_t>(
            (4.0 * hidden * in + 4.0 * hidden * hidden) * sizeof(float));
    }
    flops *= static_cast<double>(batch);
    // Recurrent nets re-stream the weights every timestep and cannot
    // batch across the time dimension, so the roofline is bandwidth:
    // weights x seq_len, amortized over at most a warp of samples.
    double sample_groups = std::max(1.0, static_cast<double>(batch) / 32.0);
    std::size_t bytes = static_cast<std::size_t>(
        static_cast<double>(weight_bytes) * seq * sample_groups);
    return dev.computeTime(flops, bytes);
}

CuResult
knnQueryBody(Device &dev, const LaunchConfig &cfg)
{
    if (cfg.args.size() != 8 && cfg.args.size() != 9)
        return CuResult::InvalidValue;
    std::uint64_t n_refs = cfg.u64Arg(4);
    std::uint64_t n_queries = cfg.u64Arg(5);
    std::uint64_t dim = cfg.u64Arg(6);
    std::uint64_t k = cfg.u64Arg(7);
    // Optional host-side sampling stride: the modeled device always
    // performs the full scan (see knnQueryCost), but the simulation
    // host may evaluate a strided reference subset to keep large
    // benchmark configurations tractable.
    std::uint64_t stride = cfg.args.size() == 9
                               ? std::max<std::uint64_t>(1, cfg.u64Arg(8))
                               : 1;

    const auto *refs = static_cast<const float *>(
        dev.resolve(cfg.u64Arg(0), n_refs * dim * sizeof(float)));
    const auto *labels = static_cast<const std::int32_t *>(
        dev.resolve(cfg.u64Arg(1), n_refs * sizeof(std::int32_t)));
    const auto *queries = static_cast<const float *>(
        dev.resolve(cfg.u64Arg(2), n_queries * dim * sizeof(float)));
    auto *out = static_cast<std::int32_t *>(
        dev.resolve(cfg.u64Arg(3), n_queries * sizeof(std::int32_t)));
    if (!refs || !labels || !queries || !out)
        return CuResult::LaunchFailed;

    Knn knn(dim, k);
    for (std::uint64_t r = 0; r < n_refs; r += stride)
        knn.add(refs + r * dim, labels[r]);
    // classifyBatch is the batched GEMM + top-k path, parallel over
    // queries on the host ThreadPool — the "GPU" functor really uses
    // all host cores while knnQueryCost charges device time.
    std::vector<int> result = knn.classifyBatch(queries, n_queries);
    for (std::uint64_t q = 0; q < n_queries; ++q)
        out[q] = result[q];
    return CuResult::Success;
}

Nanos
knnQueryCost(const Device &dev, const LaunchConfig &cfg)
{
    if (cfg.args.size() != 8 && cfg.args.size() != 9)
        return 0;
    std::uint64_t n_refs = cfg.u64Arg(4);
    std::uint64_t n_queries = cfg.u64Arg(5);
    std::uint64_t dim = cfg.u64Arg(6);
    double flops = 3.0 * static_cast<double>(dim) * n_refs * n_queries;
    // Batched distance evaluation is dense-GEMM-like and sustains well
    // above the latency-bound small-kernel rate; model 1.75x.
    flops /= 1.75;
    std::size_t bytes = (n_refs + n_queries) * dim * sizeof(float);
    return dev.computeTime(flops, bytes);
}

} // namespace

void
registerMlKernels()
{
    static bool done = false;
    if (done)
        return;
    done = true;
    gpu::KernelRegistry &r = gpu::KernelRegistry::global();
    r.add("mlp_forward", mlpForwardBody, mlpForwardCost);
    r.add("lstm_forward", lstmForwardBody, lstmForwardCost);
    r.add("knn_query", knnQueryBody, knnQueryCost);
}

} // namespace lake::ml
