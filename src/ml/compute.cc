#include "ml/compute.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "base/logging.h"
#include "base/thread_pool.h"

namespace lake::ml::compute {

namespace {

/** Rows per microkernel: one wt load feeds 4 accumulator streams. */
constexpr std::size_t kRowBlock = 4;
/** Register-tile width (floats): 4 x 16 accumulators live in SIMD regs. */
constexpr std::size_t kRegTile = 16;
/** parallelFor grain (rows) for GEMM row-block distribution. */
constexpr std::size_t kGemmGrain = 2 * kRowBlock;
/** parallelFor grain (queries) for the kNN top-k pass. */
constexpr std::size_t kKnnGrain = 8;

/**
 * 4-row x 16-column register-tile microkernel. The k-loop accumulates
 * the full depth into 4x16 local accumulators (vector registers after
 * vectorization), so each output element is loaded/stored exactly
 * once; each wt vector load feeds four independent accumulator
 * streams. Per (row, column) the reduction still runs over i in
 * ascending order, one product at a time — the seed scalar loop's
 * summation order — so tiling never changes results.
 */
inline void
micro4(const float *__restrict x0, const float *__restrict x1,
       const float *__restrict x2, const float *__restrict x3,
       std::size_t in, const float *__restrict wt, std::size_t out,
       std::size_t o, const float *__restrict bias,
       float *__restrict y0, float *__restrict y1, float *__restrict y2,
       float *__restrict y3)
{
    float a0[kRegTile], a1[kRegTile], a2[kRegTile], a3[kRegTile];
    for (std::size_t c = 0; c < kRegTile; ++c) {
        float bv = bias ? bias[o + c] : 0.0f;
        a0[c] = bv;
        a1[c] = bv;
        a2[c] = bv;
        a3[c] = bv;
    }
    for (std::size_t i = 0; i < in; ++i) {
        const float v0 = x0[i];
        const float v1 = x1[i];
        const float v2 = x2[i];
        const float v3 = x3[i];
        const float *__restrict wrow = wt + i * out + o;
        for (std::size_t c = 0; c < kRegTile; ++c) {
            const float wv = wrow[c];
            a0[c] += v0 * wv;
            a1[c] += v1 * wv;
            a2[c] += v2 * wv;
            a3[c] += v3 * wv;
        }
    }
    for (std::size_t c = 0; c < kRegTile; ++c) {
        y0[o + c] = a0[c];
        y1[o + c] = a1[c];
        y2[o + c] = a2[c];
        y3[o + c] = a3[c];
    }
}

/**
 * Generic tail kernel for the ragged edges (row block < 4 or column
 * tile < 16): same ascending-i accumulation, y resident in cache.
 */
inline void
tailKernel(const float *__restrict x, std::size_t nrows, std::size_t in,
           std::size_t x_stride, const float *__restrict wt,
           std::size_t out, std::size_t o0, std::size_t o1,
           const float *__restrict bias, float *__restrict y)
{
    for (std::size_t r = 0; r < nrows; ++r) {
        float *__restrict yr = y + r * out;
        for (std::size_t o = o0; o < o1; ++o)
            yr[o] = bias ? bias[o] : 0.0f;
    }
    for (std::size_t r = 0; r < nrows; ++r) {
        const float *__restrict xr = x + r * x_stride;
        float *__restrict yr = y + r * out;
        for (std::size_t i = 0; i < in; ++i) {
            const float a = xr[i];
            const float *__restrict wrow = wt + i * out;
            for (std::size_t o = o0; o < o1; ++o)
                yr[o] += a * wrow[o];
        }
    }
}

} // namespace

void
packTranspose(const float *w, std::size_t rows, std::size_t cols,
              float *wt)
{
    // Tiled transpose so both sides stay cache-friendly at kNN scale
    // (rows up to tens of thousands).
    constexpr std::size_t kT = 64;
    for (std::size_t r0 = 0; r0 < rows; r0 += kT) {
        std::size_t r1 = std::min(rows, r0 + kT);
        for (std::size_t c0 = 0; c0 < cols; c0 += kT) {
            std::size_t c1 = std::min(cols, c0 + kT);
            for (std::size_t r = r0; r < r1; ++r)
                for (std::size_t c = c0; c < c1; ++c)
                    wt[c * rows + r] = w[r * cols + c];
        }
    }
}

void
gemmBlock(const float *x, std::size_t n, std::size_t in,
          std::size_t x_stride, const float *wt, std::size_t out,
          const float *bias, float *y)
{
    const std::size_t full_rows = n - n % kRowBlock;
    const std::size_t full_cols = out - out % kRegTile;

    for (std::size_t r = 0; r < full_rows; r += kRowBlock) {
        const float *x0 = x + r * x_stride;
        float *y0 = y + r * out;
        for (std::size_t o = 0; o < full_cols; o += kRegTile)
            micro4(x0, x0 + x_stride, x0 + 2 * x_stride,
                   x0 + 3 * x_stride, in, wt, out, o, bias, y0,
                   y0 + out, y0 + 2 * out, y0 + 3 * out);
        if (full_cols < out)
            tailKernel(x0, kRowBlock, in, x_stride, wt, out, full_cols,
                       out, bias, y0);
    }
    if (full_rows < n)
        tailKernel(x + full_rows * x_stride, n - full_rows, in,
                   x_stride, wt, out, 0, out, bias,
                   y + full_rows * out);
}

void
gemmBlock(const float *x, std::size_t n, std::size_t in, const float *wt,
          std::size_t out, const float *bias, float *y)
{
    gemmBlock(x, n, in, in, wt, out, bias, y);
}

void
affine(const float *x, std::size_t n, std::size_t in,
       std::size_t x_stride, const float *w, std::size_t out,
       const float *bias, float *y)
{
    std::vector<float> wt(in * out);
    packTranspose(w, out, in, wt.data());
    base::ThreadPool::global().parallelFor(
        0, n, kGemmGrain, [&](std::size_t b, std::size_t e) {
            gemmBlock(x + b * x_stride, e - b, in, x_stride, wt.data(),
                      out, bias, y + b * out);
        });
}

void
affine(const float *x, std::size_t n, std::size_t in, const float *w,
       std::size_t out, const float *bias, float *y)
{
    affine(x, n, in, in, w, out, bias, y);
}

std::size_t
padTile(std::size_t out)
{
    return (out + kRegTile - 1) / kRegTile * kRegTile;
}

void
affinePacked(const float *x, std::size_t n, std::size_t in,
             std::size_t x_stride, const float *wt, std::size_t out,
             const float *bias, float *y)
{
    LAKE_ASSERT(out % kRegTile == 0,
                "affinePacked out=%zu is not tile-padded (see padTile)",
                out);
    base::ThreadPool::global().parallelFor(
        0, n, kGemmGrain, [&](std::size_t b, std::size_t e) {
            gemmBlock(x + b * x_stride, e - b, in, x_stride, wt, out,
                      bias, y + b * out);
        });
}

void
knnNeighbors(const float *queries, std::size_t n, std::size_t dim,
             std::size_t q_stride, const float *refs, std::size_t n_refs,
             std::size_t k, Neighbor *out)
{
    LAKE_ASSERT(k >= 1 && k <= n_refs,
                "knnNeighbors k=%zu outside 1..%zu", k, n_refs);
    base::ThreadPool &pool = base::ThreadPool::global();

    // ||r||^2 per reference, each summed independently in index order.
    std::vector<float> ref_n2(n_refs);
    pool.parallelFor(0, n_refs, 256, [&](std::size_t b, std::size_t e) {
        for (std::size_t r = b; r < e; ++r) {
            const float *__restrict p = refs + r * dim;
            float s = 0.0f;
            for (std::size_t i = 0; i < dim; ++i)
                s += p[i] * p[i];
            ref_n2[r] = s;
        }
    });

    // refs^T packed once: the cross-term GEMM streams it unit-stride.
    std::vector<float> rt(dim * n_refs);
    pool.parallelFor(0, dim, 64, [&](std::size_t b, std::size_t e) {
        for (std::size_t r = 0; r < n_refs; ++r)
            for (std::size_t c = b; c < e; ++c)
                rt[c * n_refs + r] = refs[r * dim + c];
    });

    pool.parallelFor(0, n, kKnnGrain, [&](std::size_t qb, std::size_t qe) {
        std::size_t rows = qe - qb;
        // Cross terms q.r for this query block: one GEMM tile.
        std::vector<float> dots(rows * n_refs);
        gemmBlock(queries + qb * q_stride, rows, dim, q_stride,
                  rt.data(), n_refs, nullptr, dots.data());

        // (d2, index) max-heap of the best k, scanned in index order
        // with strict comparison — identical selection (including tie
        // handling) to the scalar reference scan.
        std::vector<Neighbor> best;
        for (std::size_t q = qb; q < qe; ++q) {
            const float *__restrict qp = queries + q * q_stride;
            float q_n2 = 0.0f;
            for (std::size_t i = 0; i < dim; ++i)
                q_n2 += qp[i] * qp[i];

            const float *row = dots.data() + (q - qb) * n_refs;
            best.clear();
            best.reserve(k + 1);
            auto worse = [](const Neighbor &a, const Neighbor &b) {
                return a.d2 < b.d2 ||
                       (a.d2 == b.d2 && a.index < b.index);
            };
            for (std::size_t r = 0; r < n_refs; ++r) {
                float d2 = q_n2 + ref_n2[r] - 2.0f * row[r];
                Neighbor cand{d2, static_cast<std::int32_t>(r)};
                if (best.size() < k) {
                    best.push_back(cand);
                    std::push_heap(best.begin(), best.end(), worse);
                } else if (worse(cand, best.front())) {
                    std::pop_heap(best.begin(), best.end(), worse);
                    best.back() = cand;
                    std::push_heap(best.begin(), best.end(), worse);
                }
            }
            std::sort_heap(best.begin(), best.end(), worse);
            std::copy(best.begin(), best.end(), out + q * k);
        }
    });
}

void
knnNeighbors(const float *queries, std::size_t n, std::size_t dim,
             const float *refs, std::size_t n_refs, std::size_t k,
             Neighbor *out)
{
    knnNeighbors(queries, n, dim, dim, refs, n_refs, k, out);
}

} // namespace lake::ml::compute
