#include "ml/matrix.h"

#include "ml/compute.h"

namespace lake::ml {

Matrix
Matrix::randn(std::size_t rows, std::size_t cols, Rng &rng, double scale)
{
    Matrix m(rows, cols);
    for (std::size_t i = 0; i < m.size(); ++i)
        m.data_[i] = static_cast<float>(rng.normal(0.0, scale));
    return m;
}

Matrix
Matrix::affine(const Matrix &x, const Matrix &w, const std::vector<float> &b)
{
    LAKE_ASSERT(x.cols() == w.cols(),
                "affine shape mismatch: x %zux%zu, w %zux%zu", x.rows(),
                x.cols(), w.rows(), w.cols());
    LAKE_ASSERT(b.size() == w.rows(), "bias length mismatch");

    Matrix y(x.rows(), w.rows());
    compute::affine(x.data(), x.rows(), x.cols(), w.data(), w.rows(),
                    b.data(), y.data());
    return y;
}

Matrix
Matrix::affine(const MatrixView &x, const Matrix &w,
               const std::vector<float> &b)
{
    LAKE_ASSERT(x.cols() == w.cols(),
                "affine shape mismatch: view %zux%zu, w %zux%zu",
                x.rows(), x.cols(), w.rows(), w.cols());
    LAKE_ASSERT(b.size() == w.rows(), "bias length mismatch");

    Matrix y(x.rows(), w.rows());
    compute::affine(x.data(), x.rows(), x.cols(), x.stride(), w.data(),
                    w.rows(), b.data(), y.data());
    return y;
}

} // namespace lake::ml
