#include "ml/matrix.h"

namespace lake::ml {

Matrix
Matrix::randn(std::size_t rows, std::size_t cols, Rng &rng, double scale)
{
    Matrix m(rows, cols);
    for (std::size_t i = 0; i < m.size(); ++i)
        m.data_[i] = static_cast<float>(rng.normal(0.0, scale));
    return m;
}

Matrix
Matrix::affine(const Matrix &x, const Matrix &w, const std::vector<float> &b)
{
    LAKE_ASSERT(x.cols() == w.cols(),
                "affine shape mismatch: x %zux%zu, w %zux%zu", x.rows(),
                x.cols(), w.rows(), w.cols());
    LAKE_ASSERT(b.size() == w.rows(), "bias length mismatch");

    Matrix y(x.rows(), w.rows());
    for (std::size_t r = 0; r < x.rows(); ++r) {
        const float *xin = x.row(r);
        float *yout = y.row(r);
        for (std::size_t o = 0; o < w.rows(); ++o) {
            const float *wrow = w.row(o);
            float acc = b[o];
            for (std::size_t i = 0; i < x.cols(); ++i)
                acc += wrow[i] * xin[i];
            yout[o] = acc;
        }
    }
    return y;
}

} // namespace lake::ml
