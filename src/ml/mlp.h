#ifndef LAKE_ML_MLP_H
#define LAKE_ML_MLP_H

/**
 * @file
 * Multi-layer perceptron with SGD training.
 *
 * This is the model family of three of the paper's workloads: LinnOS's
 * I/O latency predictor ("two layers with 256 and 2 neurons" plus the
 * +1/+2 augmented variants of §7.1), MLLB's load balancer (§7.3), and
 * KML's readahead classifier (§7.4). Hidden layers are ReLU; the output
 * layer is linear, classified by argmax / trained with softmax
 * cross-entropy.
 */

#include <cstdint>
#include <vector>

#include "base/rng.h"
#include "base/status.h"
#include "ml/matrix.h"

namespace lake::ml {

/** Layer widths of an MLP. */
struct MlpConfig
{
    std::uint32_t input = 0;
    /** Hidden widths; empty = logistic regression. */
    std::vector<std::uint32_t> hidden;
    std::uint32_t output = 2;

    /**
     * LinnOS's model: 31 inputs (4 pending-I/O counts + latencies of
     * recent I/Os, digit-encoded), one 256 hidden layer, 2 outputs.
     * @param extra_layers the paper's +1/+2 augmentation: extra hidden
     *        layers with the same width as the first
     */
    static MlpConfig linnos(std::size_t extra_layers = 0);

    /** MLLB's load-balancer: 22 task/CPU features, compact hidden layer. */
    static MlpConfig mllb();

    /** KML's readahead classifier: 31 stats -> 4 pattern classes. */
    static MlpConfig kml();
};

/**
 * The network: weights, forward pass, and SGD training.
 */
class Mlp
{
  public:
    /** Randomly initialized network (He initialization). */
    Mlp(MlpConfig config, Rng &rng);

    /** Shape. */
    const MlpConfig &config() const { return config_; }

    /** Forward pass: (n x input) -> logits (n x output). */
    Matrix forward(const Matrix &x) const;

    /**
     * Zero-copy forward pass over strided windows: the rows of all
     * views (in order) form the batch. The first layer consumes each
     * view in place — no gather/pack into a contiguous Matrix — and
     * later layers run on the stacked activations. Bit-identical to
     * copying the rows into one Matrix and calling forward(Matrix).
     */
    Matrix forward(const std::vector<MatrixView> &xs) const;

    /** Argmax class per row. */
    std::vector<int> classify(const Matrix &x) const;

    /** Argmax over a zero-copy view batch (see forward(views)). */
    std::vector<int> classify(const std::vector<MatrixView> &xs) const;

    /**
     * One SGD minibatch step with softmax cross-entropy loss.
     * @return mean loss over the batch before the update
     */
    double trainStep(const Matrix &x, const std::vector<int> &labels,
                     float lr);

    /** Fraction of rows classified correctly. */
    double accuracy(const Matrix &x, const std::vector<int> &labels) const;

    /** FLOPs of one sample's forward pass (the cost models' input). */
    double flopsPerSample() const;

    /** Total parameter count. */
    std::size_t paramCount() const;

    /** Serializes config + weights (the ModelStore blob format). */
    std::vector<std::uint8_t> serialize() const;

    /** Reconstructs a network from serialize() output. */
    static Result<Mlp> deserialize(const std::vector<std::uint8_t> &blob);

    /** Per-layer weight matrices, each (out x in). */
    const std::vector<Matrix> &weights() const { return weights_; }
    /** Per-layer bias vectors. */
    const std::vector<std::vector<float>> &biases() const { return biases_; }

    /**
     * In-place parameter edit (tests, calibration tools): applies
     * @p fn to the raw weights and biases, then refreshes the packed
     * forward-pass weights. The only supported way to mutate
     * parameters from outside — editing through a const_cast of
     * weights() leaves inference running on stale packs.
     */
    template <typename Fn> void editParams(Fn &&fn)
    {
        fn(weights_, biases_);
        repack();
    }

  private:
    /** Uninitialized network (deserialize fills the parameters). */
    explicit Mlp(MlpConfig config);

    /** Widths including input and output. */
    std::vector<std::uint32_t> dims() const;

    /**
     * Rebuilds the packed forward-pass weights; runs whenever the
     * parameters change (construction, deserialize, trainStep). Each
     * layer's transpose is padded to a whole register tile of output
     * columns (zeros the forward pass discards), so inference never
     * re-packs per call and narrow output layers still run the
     * vectorized GEMM microkernel.
     */
    void repack();

    /** One packed layer: y(n x out) = x * W_l^T + b_l, x rows at
     *  @p x_stride. y rows are contiguous (stride = layer output). */
    void layerForward(std::size_t l, const float *x, std::size_t n,
                      std::size_t x_stride, float *y) const;

    MlpConfig config_;
    std::vector<Matrix> weights_;
    std::vector<std::vector<float>> biases_;
    std::vector<std::vector<float>> packed_;      //!< in x padded-out
    std::vector<std::vector<float>> packed_bias_; //!< zero-padded
    std::vector<std::size_t> packed_out_;         //!< padTile(out)
};

/** Row-wise softmax (exposed for loss computations in tests). */
Matrix softmax(const Matrix &logits);

} // namespace lake::ml

#endif // LAKE_ML_MLP_H
