#include "ml/backends.h"

#include <algorithm>
#include <cstring>

#include "base/logging.h"
#include "ml/gpu_kernels.h"
#include "remote/wire.h"

namespace lake::ml {

using gpu::CuResult;
using gpu::DevicePtr;

namespace {

/** Streams used to model pre-staged (overlapped) input copies. */
constexpr std::uint32_t kStageStream = 7;

void
check(CuResult r, const char *what)
{
    LAKE_ASSERT(r == CuResult::Success, "%s failed: %s", what,
                gpu::cuResultName(r));
}

/** Converts a failed driver call into a Status for tryClassify. */
Status
cuStatus(CuResult r, const char *what)
{
    if (r == CuResult::Success)
        return Status::ok();
    Code code = r == CuResult::Unavailable ? Code::Unavailable
                                           : Code::Internal;
    return Status(code, std::string(what) + " failed: " +
                            gpu::cuResultName(r));
}

} // namespace

std::vector<int>
CpuMlp::classify(const Matrix &x)
{
    // Wide square matmuls (the +1/+2 models' 256x256 layers) amortize
    // loop overhead and auto-vectorize where the skinny input layer
    // cannot; model that as up to 4x (SSE-width) higher efficiency,
    // which reproduces Fig. 8's gently-converging CPU curves.
    double flops_per_sample = model_.flopsPerSample();
    double efficiency =
        std::clamp(flops_per_sample / 17000.0, 1.0, 4.0);
    cpu_.charge(flops_per_sample * static_cast<double>(x.rows()) /
                efficiency);
    return model_.classify(x);
}

std::vector<int>
CpuMlp::classify(const std::vector<MatrixView> &xs)
{
    std::size_t rows = 0;
    for (const MatrixView &v : xs)
        rows += v.rows();
    double flops_per_sample = model_.flopsPerSample();
    double efficiency =
        std::clamp(flops_per_sample / 17000.0, 1.0, 4.0);
    cpu_.charge(flops_per_sample * static_cast<double>(rows) /
                efficiency);
    return model_.classify(xs);
}

LakeMlp::LakeMlp(const Mlp &model, remote::LakeLib &lib, bool sync_copy,
                 std::size_t max_batch)
    : lib_(lib), arena_(lib.arena()), input_w_(model.config().input),
      output_w_(model.config().output), sync_copy_(sync_copy),
      max_batch_(max_batch)
{
    registerMlKernels();
    LAKE_ASSERT(max_batch_ > 0, "max_batch must be positive");

    std::vector<std::uint8_t> blob = model.serialize();
    shm::ShmOffset h_blob = arena_.alloc(blob.size());
    LAKE_ASSERT(h_blob != shm::kNullOffset, "lakeShm exhausted");
    std::memcpy(arena_.at(h_blob), blob.data(), blob.size());

    check(lib_.cuMemAlloc(&d_model_, blob.size()), "cuMemAlloc(model)");
    check(lib_.cuMemcpyHtoDShm(d_model_, h_blob, blob.size()),
          "upload model");
    arena_.free(h_blob);

    std::size_t in_bytes = max_batch_ * input_w_ * sizeof(float);
    std::size_t out_bytes = max_batch_ * output_w_ * sizeof(float);
    check(lib_.cuMemAlloc(&d_in_, in_bytes), "cuMemAlloc(in)");
    check(lib_.cuMemAlloc(&d_out_, out_bytes), "cuMemAlloc(out)");
    h_in_ = arena_.alloc(in_bytes);
    h_out_ = arena_.alloc(out_bytes);
    LAKE_ASSERT(h_in_ != shm::kNullOffset && h_out_ != shm::kNullOffset,
                "lakeShm exhausted");
}

LakeMlp::~LakeMlp()
{
    lib_.cuMemFree(d_model_);
    lib_.cuMemFree(d_in_);
    lib_.cuMemFree(d_out_);
    arena_.free(h_in_);
    arena_.free(h_out_);
}

std::vector<int>
LakeMlp::classify(const Matrix &x)
{
    Result<std::vector<int>> r = tryClassify(x);
    LAKE_ASSERT(r.isOk(), "LakeMlp::classify: %s",
                r.status().toString().c_str());
    return r.takeValue();
}

Result<std::vector<int>>
LakeMlp::tryClassify(const Matrix &x)
{
    std::size_t batch = x.rows();
    LAKE_ASSERT(batch > 0 && batch <= max_batch_,
                "batch %zu outside 1..%zu", batch, max_batch_);
    LAKE_ASSERT(x.cols() == input_w_, "bad input width");

    if (orch_ != nullptr && !sync_copy_ && batch > 1)
        return tryClassifyStreamed(x);

    std::size_t in_bytes = batch * input_w_ * sizeof(float);
    std::size_t out_bytes = batch * output_w_ * sizeof(float);

    // In real deployments feature vectors are *built* in lakeShm, so
    // this staging memcpy does not exist; it is host bookkeeping only
    // and charges no virtual time.
    std::memcpy(arena_.at(h_in_), x.data(), in_bytes);

    if (sync_copy_) {
        if (Status s = cuStatus(lib_.cuMemcpyHtoDShm(d_in_, h_in_,
                                                     in_bytes),
                                "sync HtoD");
            !s.isOk())
            return s;
    } else {
        // Staged ahead of execution on a side stream: the transfer
        // overlaps batch formation and stays off the critical path.
        if (Status s = cuStatus(lib_.cuMemcpyHtoDShmAsync(
                                    d_in_, h_in_, in_bytes,
                                    kStageStream),
                                "async HtoD");
            !s.isOk())
            return s;
    }

    gpu::LaunchConfig cfg;
    cfg.kernel = "mlp_forward";
    cfg.grid_x = static_cast<std::uint32_t>((batch + 255) / 256);
    cfg.block_x = 256;
    cfg.arg(d_model_).arg(d_in_).arg(d_out_).arg(
        static_cast<std::uint64_t>(batch), nullptr);
    if (Status s = cuStatus(lib_.cuLaunchKernel(cfg, 0),
                            "launch mlp_forward");
        !s.isOk())
        return s;

    if (Status s = cuStatus(lib_.cuMemcpyDtoHShm(h_out_, d_out_,
                                                 out_bytes),
                            "DtoH");
        !s.isOk())
        return s;

    const float *logits = static_cast<const float *>(arena_.at(h_out_));
    std::vector<int> labels(batch);
    for (std::size_t r = 0; r < batch; ++r) {
        const float *row = logits + r * output_w_;
        int best = 0;
        for (std::uint32_t c = 1; c < output_w_; ++c)
            if (row[c] > row[best])
                best = static_cast<int>(c);
        labels[r] = best;
    }
    return labels;
}

Result<std::vector<int>>
LakeMlp::tryClassifyStreamed(const Matrix &x)
{
    std::size_t batch = x.rows();
    std::size_t in_row = input_w_ * sizeof(float);
    std::size_t out_row = output_w_ * sizeof(float);

    std::size_t chunks = std::min<std::size_t>(orch_->streams(), batch);
    std::size_t rows_per = (batch + chunks - 1) / chunks;

    // One pooled slot serves a chunk's input AND output: the gathered
    // rows upload first and the logits land in the same slot after the
    // forward pass (the commands execute in posted order daemon-side,
    // so the overwrite is sequenced after the HtoD).
    struct Chunk
    {
        std::size_t r0, rows;
        remote::StreamOrchestrator::Buffer *buf;
        gpu::StreamId stream;
    };
    std::vector<Chunk> staged;
    staged.reserve(chunks);
    std::vector<const void *> srcs(rows_per);
    std::vector<std::size_t> lens(rows_per, in_row);

    for (std::size_t c = 0; c < chunks; ++c) {
        std::size_t r0 = c * rows_per;
        if (r0 >= batch)
            break;
        std::size_t rows = std::min(rows_per, batch - r0);
        gpu::StreamId s = orch_->streamAt(c);

        auto *buf = orch_->acquire(rows * std::max(in_row, out_row));
        if (buf == nullptr) {
            // Chunk exceeds the largest size class (only possible on
            // the first, largest chunk: nothing staged yet). The
            // classic single-stream path still fits in h_in_/h_out_.
            LAKE_ASSERT(staged.empty(), "pool refused a smaller chunk");
            orch_->drain();
            remote::StreamOrchestrator *orch = orch_;
            orch_ = nullptr;
            Result<std::vector<int>> r = tryClassify(x);
            orch_ = orch;
            return r;
        }
        for (std::size_t i = 0; i < rows; ++i)
            srcs[i] = x.data() + (r0 + i) * input_w_;
        Status st = orch_->gatherIn(buf, d_in_ + r0 * in_row, srcs.data(),
                                    lens.data(), rows, s);
        LAKE_ASSERT(st.isOk(), "gatherIn: %s", st.toString().c_str());

        gpu::LaunchConfig cfg;
        cfg.kernel = "mlp_forward";
        cfg.grid_x = static_cast<std::uint32_t>((rows + 255) / 256);
        cfg.block_x = 256;
        cfg.arg(d_model_).arg(d_in_ + r0 * in_row)
            .arg(d_out_ + r0 * out_row)
            .arg(static_cast<std::uint64_t>(rows), nullptr);
        if (Status s2 = cuStatus(lib_.cuLaunchKernel(cfg, s),
                                 "launch mlp_forward");
            !s2.isOk()) {
            orch_->drain();
            return s2;
        }
        st = orch_->stageOut(buf, d_out_ + r0 * out_row, rows * out_row, s);
        LAKE_ASSERT(st.isOk(), "stageOut: %s", st.toString().c_str());
        staged.push_back({r0, rows, buf, s});
    }

    // Drain every chunk's stream before reading any logits; credits
    // come back even when a sync fails, so a transport fault cannot
    // leak pool buffers.
    gpu::CuResult first = gpu::CuResult::Success;
    for (const Chunk &c : staged) {
        gpu::CuResult r = orch_->syncStream(c.stream);
        if (first == gpu::CuResult::Success)
            first = r;
    }
    if (Status s = cuStatus(first, "stream sync"); !s.isOk())
        return s;

    // Read-after-sync window: the retired slots stay untouched until
    // the next acquire, which this call no longer performs.
    std::vector<int> labels(batch);
    for (const Chunk &c : staged) {
        const float *logits =
            static_cast<const float *>(arena_.at(c.buf->shm));
        for (std::size_t r = 0; r < c.rows; ++r) {
            const float *row = logits + r * output_w_;
            int best = 0;
            for (std::uint32_t col = 1; col < output_w_; ++col)
                if (row[col] > row[best])
                    best = static_cast<int>(col);
            labels[c.r0 + r] = best;
        }
    }
    return labels;
}

std::vector<int>
CpuKnn::classify(const float *queries, std::size_t n)
{
    // Virtual time still models the kernel-context scalar scan (the
    // paper's CPU bar); the host executes the batched GEMM + top-k
    // path underneath (Knn::classifyBatch -> compute::knnNeighbors).
    cpu_.charge(model_.flopsPerQuery() * static_cast<double>(n));
    return model_.classifyBatch(queries, n);
}

LakeKnn::LakeKnn(const Knn &model, remote::LakeLib &lib, bool sync_copy,
                 std::size_t max_queries, std::size_t host_sample_stride)
    : lib_(lib), arena_(lib.arena()), dim_(model.dim()), k_(model.k()),
      n_refs_(model.refCount()), sync_copy_(sync_copy),
      max_queries_(max_queries),
      host_stride_(std::max<std::size_t>(1, host_sample_stride))
{
    registerMlKernels();
    LAKE_ASSERT(max_queries_ > 0, "max_queries must be positive");

    std::size_t ref_bytes = model.refs().size() * sizeof(float);
    std::size_t label_bytes = model.labels().size() * sizeof(std::int32_t);

    shm::ShmOffset h_stage =
        arena_.alloc(std::max(ref_bytes, label_bytes));
    LAKE_ASSERT(h_stage != shm::kNullOffset, "lakeShm exhausted");

    check(lib_.cuMemAlloc(&d_refs_, ref_bytes), "cuMemAlloc(refs)");
    std::memcpy(arena_.at(h_stage), model.refs().data(), ref_bytes);
    check(lib_.cuMemcpyHtoDShm(d_refs_, h_stage, ref_bytes),
          "upload refs");

    check(lib_.cuMemAlloc(&d_labels_, label_bytes), "cuMemAlloc(labels)");
    std::memcpy(arena_.at(h_stage), model.labels().data(), label_bytes);
    check(lib_.cuMemcpyHtoDShm(d_labels_, h_stage, label_bytes),
          "upload labels");
    arena_.free(h_stage);

    std::size_t q_bytes = max_queries_ * dim_ * sizeof(float);
    check(lib_.cuMemAlloc(&d_queries_, q_bytes), "cuMemAlloc(queries)");
    check(lib_.cuMemAlloc(&d_out_, max_queries_ * sizeof(std::int32_t)),
          "cuMemAlloc(out)");
    h_io_ = arena_.alloc(q_bytes);
    LAKE_ASSERT(h_io_ != shm::kNullOffset, "lakeShm exhausted");
}

LakeKnn::~LakeKnn()
{
    lib_.cuMemFree(d_refs_);
    lib_.cuMemFree(d_labels_);
    lib_.cuMemFree(d_queries_);
    lib_.cuMemFree(d_out_);
    arena_.free(h_io_);
}

std::vector<int>
LakeKnn::classify(const float *queries, std::size_t n)
{
    Result<std::vector<int>> r = tryClassify(queries, n);
    LAKE_ASSERT(r.isOk(), "LakeKnn::classify: %s",
                r.status().toString().c_str());
    return r.takeValue();
}

Result<std::vector<int>>
LakeKnn::tryClassify(const float *queries, std::size_t n)
{
    LAKE_ASSERT(n > 0 && n <= max_queries_, "query count %zu outside 1..%zu",
                n, max_queries_);
    std::size_t q_bytes = n * dim_ * sizeof(float);
    std::memcpy(arena_.at(h_io_), queries, q_bytes);

    if (sync_copy_) {
        if (Status s = cuStatus(lib_.cuMemcpyHtoDShm(d_queries_, h_io_,
                                                     q_bytes),
                                "HtoD");
            !s.isOk())
            return s;
    } else {
        if (Status s = cuStatus(lib_.cuMemcpyHtoDShmAsync(
                                    d_queries_, h_io_, q_bytes,
                                    kStageStream),
                                "async HtoD");
            !s.isOk())
            return s;
    }

    gpu::LaunchConfig cfg;
    cfg.kernel = "knn_query";
    cfg.grid_x = static_cast<std::uint32_t>((n + 255) / 256);
    cfg.block_x = 256;
    cfg.arg(d_refs_).arg(d_labels_).arg(d_queries_).arg(d_out_);
    cfg.arg(static_cast<std::uint64_t>(n_refs_), nullptr)
        .arg(static_cast<std::uint64_t>(n), nullptr)
        .arg(static_cast<std::uint64_t>(dim_), nullptr)
        .arg(static_cast<std::uint64_t>(k_), nullptr);
    if (host_stride_ > 1)
        cfg.arg(static_cast<std::uint64_t>(host_stride_), nullptr);
    if (Status s = cuStatus(lib_.cuLaunchKernel(cfg, 0),
                            "launch knn_query");
        !s.isOk())
        return s;

    if (Status s = cuStatus(lib_.cuMemcpyDtoHShm(h_io_, d_out_,
                                                 n * sizeof(std::int32_t)),
                            "DtoH");
        !s.isOk())
        return s;
    const auto *out = static_cast<const std::int32_t *>(arena_.at(h_io_));
    return std::vector<int>(out, out + n);
}

std::vector<int>
CpuLstm::classify(const std::vector<float> &seqs, std::size_t batch)
{
    cpu_.charge(model_.flopsPerSample() * static_cast<double>(batch));
    return model_.classifyBatch(seqs, batch);
}

KleioService::KleioService(remote::LakeDaemon &daemon, const Lstm &model)
    : daemon_(daemon), config_(model.config())
{
    registerMlKernels();

    // lakeD owns the model (the TF runtime loaded it); upload directly
    // through the daemon's context — this never crosses the boundary.
    gpu::GpuContext &ctx = daemon_.gpuContext();
    std::vector<std::uint8_t> blob = model.serialize();
    check(ctx.memAlloc(&d_model_, blob.size()), "kleio model alloc");
    check(ctx.memcpyHtoD(d_model_, blob.data(), blob.size()),
          "kleio model upload");

    std::size_t per =
        static_cast<std::size_t>(config_.seq_len) * config_.input;
    DevicePtr d_model = d_model_;
    std::uint32_t seq_input = static_cast<std::uint32_t>(per);

    daemon_.registerHighLevel(
        "kleio.infer",
        [&daemon, d_model, seq_input](remote::Decoder &dec,
                                      remote::Encoder &resp) {
            shm::ShmOffset in_off = dec.u64();
            shm::ShmOffset out_off = dec.u64();
            std::uint64_t batch = dec.u64();

            gpu::GpuContext &gctx = daemon.gpuContext();
            std::size_t in_bytes = batch * seq_input * sizeof(float);

            // Per-page graph executions (Kleio keeps one model per
            // page): TF overhead scales with the batch.
            gctx.clock().advance(batch * kTfPerSampleCost);

            DevicePtr d_in = 0, d_out = 0;
            check(gctx.memAlloc(&d_in, in_bytes), "kleio d_in");
            check(gctx.memAlloc(&d_out, batch * sizeof(std::int32_t)),
                  "kleio d_out");
            // TensorFlow moves data synchronously (Fig. 9's caption).
            check(gctx.memcpyHtoD(d_in, daemon.arena().at(in_off),
                                  in_bytes),
                  "kleio HtoD");

            gpu::LaunchConfig cfg;
            cfg.kernel = "lstm_forward";
            cfg.grid_x = static_cast<std::uint32_t>((batch + 31) / 32);
            cfg.block_x = 32;
            cfg.arg(d_model).arg(d_in).arg(d_out).arg(batch, nullptr);
            check(gctx.launchKernel(cfg, 0), "kleio launch");

            check(gctx.memcpyDtoH(daemon.arena().at(out_off), d_out,
                                  batch * sizeof(std::int32_t)),
                  "kleio DtoH");
            gctx.memFree(d_in);
            gctx.memFree(d_out);
            resp.u64(batch);
        },
        kTfCallOverhead);
}

std::vector<int>
KleioService::classify(remote::LakeLib &lib, const std::vector<float> &seqs,
                       std::size_t batch)
{
    std::size_t per =
        static_cast<std::size_t>(config_.seq_len) * config_.input;
    LAKE_ASSERT(seqs.size() == per * batch, "kleio batch size mismatch");

    shm::ShmArena &arena = lib.arena();
    std::size_t in_bytes = seqs.size() * sizeof(float);
    shm::ShmOffset in_off = arena.alloc(in_bytes);
    shm::ShmOffset out_off = arena.alloc(batch * sizeof(std::int32_t));
    LAKE_ASSERT(in_off != shm::kNullOffset &&
                    out_off != shm::kNullOffset,
                "lakeShm exhausted");
    std::memcpy(arena.at(in_off), seqs.data(), in_bytes);

    remote::Encoder args;
    args.u64(in_off).u64(out_off).u64(batch);
    auto result = lib.highLevelCall("kleio.infer", args.take());
    LAKE_ASSERT(result.isOk(), "kleio.infer failed: %s",
                result.status().toString().c_str());

    const auto *out = static_cast<const std::int32_t *>(arena.at(out_off));
    std::vector<int> labels(out, out + batch);
    arena.free(in_off);
    arena.free(out_off);
    return labels;
}

} // namespace lake::ml
