#include "ml/knn.h"

#include <algorithm>
#include <map>
#include <vector>

#include "ml/compute.h"

namespace lake::ml {

namespace {

/** Heap order: front = farthest candidate, ties to the higher index. */
bool
nearer(const compute::Neighbor &a, const compute::Neighbor &b)
{
    return a.d2 < b.d2 || (a.d2 == b.d2 && a.index < b.index);
}

/**
 * Majority vote over @p k neighbours sorted by ascending distance.
 * A vote tie is broken by nearest neighbour: the tied label whose
 * closest reference is nearer wins (and a residual exact-distance tie
 * falls to the lower reference index, since that orders the sort).
 */
int
voteNearest(const compute::Neighbor *nb, std::size_t k,
            const std::vector<std::int32_t> &labels)
{
    // votes and best (lowest) rank per label; nb is sorted, so the
    // first occurrence of a label is its nearest reference.
    std::map<std::int32_t, std::pair<std::size_t, std::size_t>> tally;
    for (std::size_t i = 0; i < k; ++i) {
        std::int32_t label = labels[nb[i].index];
        auto [it, fresh] = tally.try_emplace(label, 0, i);
        ++it->second.first;
        (void)fresh;
    }
    std::int32_t winner = labels[nb[0].index];
    std::size_t winner_votes = 0, winner_rank = k;
    for (const auto &[label, vr] : tally) {
        auto [votes, rank] = vr;
        if (votes > winner_votes ||
            (votes == winner_votes && rank < winner_rank)) {
            winner = label;
            winner_votes = votes;
            winner_rank = rank;
        }
    }
    return winner;
}

} // namespace

Knn::Knn(std::size_t dim, std::size_t k) : dim_(dim), k_(k)
{
    LAKE_ASSERT(dim > 0 && k > 0, "knn needs positive dim and k");
}

void
Knn::add(const float *point, int label)
{
    refs_.insert(refs_.end(), point, point + dim_);
    labels_.push_back(label);
}

int
Knn::classify(const float *query) const
{
    LAKE_ASSERT(!labels_.empty(), "knn classify with no references");
    std::size_t k = std::min(k_, labels_.size());

    // Scalar reference scan (the oracle for the batched path): direct
    // squared distances, max-heap of the k best seen so far.
    std::vector<compute::Neighbor> best;
    best.reserve(k + 1);
    for (std::size_t r = 0; r < labels_.size(); ++r) {
        const float *ref = refs_.data() + r * dim_;
        float d2 = 0.0f;
        for (std::size_t i = 0; i < dim_; ++i) {
            float diff = query[i] - ref[i];
            d2 += diff * diff;
        }
        compute::Neighbor cand{d2, static_cast<std::int32_t>(r)};
        if (best.size() < k) {
            best.push_back(cand);
            std::push_heap(best.begin(), best.end(), nearer);
        } else if (nearer(cand, best.front())) {
            std::pop_heap(best.begin(), best.end(), nearer);
            best.back() = cand;
            std::push_heap(best.begin(), best.end(), nearer);
        }
    }
    std::sort_heap(best.begin(), best.end(), nearer);
    return voteNearest(best.data(), k, labels_);
}

std::vector<int>
Knn::classifyBatch(const float *queries, std::size_t n) const
{
    LAKE_ASSERT(!labels_.empty(), "knn classify with no references");
    if (n == 0)
        return {};
    std::size_t k = std::min(k_, labels_.size());

    // One GEMM (||q-r||^2 decomposition) plus a top-k pass per query,
    // parallel over queries — see compute::knnNeighbors.
    std::vector<compute::Neighbor> nb(n * k);
    compute::knnNeighbors(queries, n, dim_, refs_.data(), labels_.size(),
                          k, nb.data());

    std::vector<int> out(n);
    for (std::size_t q = 0; q < n; ++q)
        out[q] = voteNearest(nb.data() + q * k, k, labels_);
    return out;
}

std::vector<int>
Knn::classifyBatch(const MatrixView &queries) const
{
    LAKE_ASSERT(!labels_.empty(), "knn classify with no references");
    if (queries.rows() == 0)
        return {};
    LAKE_ASSERT(queries.cols() == dim_,
                "knn view width %zu != dim %zu", queries.cols(), dim_);
    std::size_t n = queries.rows();
    std::size_t k = std::min(k_, labels_.size());

    std::vector<compute::Neighbor> nb(n * k);
    compute::knnNeighbors(queries.data(), n, dim_, queries.stride(),
                          refs_.data(), labels_.size(), k, nb.data());

    std::vector<int> out(n);
    for (std::size_t q = 0; q < n; ++q)
        out[q] = voteNearest(nb.data() + q * k, k, labels_);
    return out;
}

double
Knn::flopsPerQuery() const
{
    // 3 ops per dimension per reference (sub, mul, add).
    return 3.0 * static_cast<double>(dim_) *
           static_cast<double>(labels_.size());
}

} // namespace lake::ml
