#include "ml/knn.h"

#include <algorithm>
#include <map>

namespace lake::ml {

Knn::Knn(std::size_t dim, std::size_t k) : dim_(dim), k_(k)
{
    LAKE_ASSERT(dim > 0 && k > 0, "knn needs positive dim and k");
}

void
Knn::add(const float *point, int label)
{
    refs_.insert(refs_.end(), point, point + dim_);
    labels_.push_back(label);
}

int
Knn::classify(const float *query) const
{
    LAKE_ASSERT(!labels_.empty(), "knn classify with no references");
    std::size_t k = std::min(k_, labels_.size());

    // Max-heap of the k best (distance, label) pairs seen so far.
    std::vector<std::pair<float, std::int32_t>> best;
    best.reserve(k + 1);

    for (std::size_t r = 0; r < labels_.size(); ++r) {
        const float *ref = refs_.data() + r * dim_;
        float d2 = 0.0f;
        for (std::size_t i = 0; i < dim_; ++i) {
            float diff = query[i] - ref[i];
            d2 += diff * diff;
        }
        if (best.size() < k) {
            best.emplace_back(d2, labels_[r]);
            std::push_heap(best.begin(), best.end());
        } else if (d2 < best.front().first) {
            std::pop_heap(best.begin(), best.end());
            best.back() = {d2, labels_[r]};
            std::push_heap(best.begin(), best.end());
        }
    }

    std::map<std::int32_t, std::size_t> votes;
    for (const auto &[d2, label] : best)
        ++votes[label];
    int winner = best.front().second;
    std::size_t winner_votes = 0;
    for (const auto &[label, count] : votes) {
        if (count > winner_votes) {
            winner = label;
            winner_votes = count;
        }
    }
    return winner;
}

std::vector<int>
Knn::classifyBatch(const float *queries, std::size_t n) const
{
    std::vector<int> out;
    out.reserve(n);
    for (std::size_t q = 0; q < n; ++q)
        out.push_back(classify(queries + q * dim_));
    return out;
}

double
Knn::flopsPerQuery() const
{
    // 3 ops per dimension per reference (sub, mul, add).
    return 3.0 * static_cast<double>(dim_) *
           static_cast<double>(labels_.size());
}

} // namespace lake::ml
