#include "ml/lstm_train.h"

#include <algorithm>
#include <cmath>

#include "base/logging.h"

namespace lake::ml {

namespace {

float
sigmoidf(float x)
{
    return 1.0f / (1.0f + std::exp(-x));
}

/** Per-layer parameter gradients. */
struct LayerGrads
{
    Matrix dwx;
    Matrix dwh;
    std::vector<float> db;
};

/** Everything the backward pass needs from one sample's forward pass. */
struct Tape
{
    // Indexed [layer][t]: gate activations and states, each H wide.
    std::vector<std::vector<std::vector<float>>> ig, fg, gg, og, c, h,
        tanh_c;
};

/** Runs forward over one sample, recording the tape. */
std::vector<float>
forwardTaped(const Lstm &net, const std::vector<float> &seq, Tape *tape)
{
    const LstmConfig &cfg = net.config();
    std::uint32_t H = cfg.hidden;
    std::uint32_t L = cfg.layers;
    std::uint32_t T = cfg.seq_len;

    auto init = [&](auto &v) {
        v.assign(L, std::vector<std::vector<float>>(
                        T, std::vector<float>(H, 0.0f)));
    };
    init(tape->ig);
    init(tape->fg);
    init(tape->gg);
    init(tape->og);
    init(tape->c);
    init(tape->h);
    init(tape->tanh_c);

    std::vector<std::vector<float>> h(L, std::vector<float>(H, 0.0f));
    std::vector<std::vector<float>> c(L, std::vector<float>(H, 0.0f));

    for (std::uint32_t t = 0; t < T; ++t) {
        const float *x = seq.data() +
                         static_cast<std::size_t>(t) * cfg.input;
        std::uint32_t xin = cfg.input;
        for (std::uint32_t l = 0; l < L; ++l) {
            const Matrix &wx = net.wx()[l];
            const Matrix &wh = net.wh()[l];
            const std::vector<float> &bias = net.bias()[l];

            for (std::uint32_t u = 0; u < H; ++u) {
                auto gate = [&](std::uint32_t g) {
                    const float *wxr = wx.row(g * H + u);
                    const float *whr = wh.row(g * H + u);
                    float acc = bias[g * H + u];
                    for (std::uint32_t i = 0; i < xin; ++i)
                        acc += wxr[i] * x[i];
                    for (std::uint32_t i = 0; i < H; ++i)
                        acc += whr[i] * h[l][i];
                    return acc;
                };
                float zi = gate(0), zf = gate(1), zg = gate(2),
                      zo = gate(3);
                tape->ig[l][t][u] = sigmoidf(zi);
                tape->fg[l][t][u] = sigmoidf(zf);
                tape->gg[l][t][u] = std::tanh(zg);
                tape->og[l][t][u] = sigmoidf(zo);
            }
            for (std::uint32_t u = 0; u < H; ++u) {
                c[l][u] = tape->fg[l][t][u] * c[l][u] +
                          tape->ig[l][t][u] * tape->gg[l][t][u];
                tape->c[l][t][u] = c[l][u];
                tape->tanh_c[l][t][u] = std::tanh(c[l][u]);
                h[l][u] = tape->og[l][t][u] * tape->tanh_c[l][t][u];
                tape->h[l][t][u] = h[l][u];
            }
            x = h[l].data();
            xin = H;
        }
    }

    std::vector<float> logits(cfg.output, 0.0f);
    const std::vector<float> &top = h[L - 1];
    for (std::uint32_t o = 0; o < cfg.output; ++o) {
        const float *w = net.headW().row(o);
        float acc = net.headB()[o];
        for (std::uint32_t i = 0; i < H; ++i)
            acc += w[i] * top[i];
        logits[o] = acc;
    }
    return logits;
}

/**
 * Backward pass for one sample; accumulates into the gradient buffers.
 * @return the sample's cross-entropy loss
 */
double
backwardOne(const Lstm &net, const LstmSample &sample,
            std::vector<LayerGrads> *grads, Matrix *dhead_w,
            std::vector<float> *dhead_b)
{
    const LstmConfig &cfg = net.config();
    std::uint32_t H = cfg.hidden;
    std::uint32_t L = cfg.layers;
    std::uint32_t T = cfg.seq_len;

    Tape tape;
    std::vector<float> logits = forwardTaped(net, sample.seq, &tape);

    // Softmax cross-entropy gradient on the head.
    float mx = *std::max_element(logits.begin(), logits.end());
    std::vector<float> probs(cfg.output);
    float sum = 0.0f;
    for (std::uint32_t o = 0; o < cfg.output; ++o) {
        probs[o] = std::exp(logits[o] - mx);
        sum += probs[o];
    }
    for (auto &p : probs)
        p /= sum;
    double loss = -std::log(std::max(
        1e-12, static_cast<double>(probs[sample.label])));

    std::vector<float> dlogits(cfg.output);
    for (std::uint32_t o = 0; o < cfg.output; ++o) {
        dlogits[o] = probs[o] - (static_cast<int>(o) == sample.label
                                     ? 1.0f
                                     : 0.0f);
    }

    // dh flowing into each layer at the *current* timestep, plus the
    // recurrent carriers dc/dh for the next-earlier step.
    std::vector<std::vector<float>> dh_next(L,
                                            std::vector<float>(H, 0.0f));
    std::vector<std::vector<float>> dc_next(L,
                                            std::vector<float>(H, 0.0f));

    // Head gradients (into the top layer's last hidden state).
    const std::vector<float> &top = tape.h[L - 1][T - 1];
    for (std::uint32_t o = 0; o < cfg.output; ++o) {
        (*dhead_b)[o] += dlogits[o];
        for (std::uint32_t i = 0; i < H; ++i) {
            dhead_w->at(o, i) += dlogits[o] * top[i];
            dh_next[L - 1][i] += dlogits[o] * net.headW().at(o, i);
        }
    }

    std::vector<float> dz(4 * H);
    // dx of the layer above, to be added to the lower layer's dh at
    // the same timestep.
    std::vector<float> dx_upper(H, 0.0f);

    for (std::uint32_t ti = T; ti-- > 0;) {
        std::fill(dx_upper.begin(), dx_upper.end(), 0.0f);
        for (std::uint32_t l = L; l-- > 0;) {
            std::uint32_t xin = l == 0 ? cfg.input : H;
            const float *x_in =
                l == 0 ? sample.seq.data() +
                             static_cast<std::size_t>(ti) * cfg.input
                       : tape.h[l - 1][ti].data();

            // Total dh at (l, ti): recurrent carrier + upper layer's dx.
            for (std::uint32_t u = 0; u < H; ++u)
                dh_next[l][u] += dx_upper[u];
            std::fill(dx_upper.begin(), dx_upper.end(), 0.0f);

            for (std::uint32_t u = 0; u < H; ++u) {
                float i_g = tape.ig[l][ti][u];
                float f_g = tape.fg[l][ti][u];
                float g_g = tape.gg[l][ti][u];
                float o_g = tape.og[l][ti][u];
                float tc = tape.tanh_c[l][ti][u];
                float c_prev =
                    ti > 0 ? tape.c[l][ti - 1][u] : 0.0f;

                float dh = dh_next[l][u];
                float dc = dc_next[l][u] + dh * o_g * (1.0f - tc * tc);

                float d_o = dh * tc;
                float d_i = dc * g_g;
                float d_g = dc * i_g;
                float d_f = dc * c_prev;

                dz[0 * H + u] = d_i * i_g * (1.0f - i_g);
                dz[1 * H + u] = d_f * f_g * (1.0f - f_g);
                dz[2 * H + u] = d_g * (1.0f - g_g * g_g);
                dz[3 * H + u] = d_o * o_g * (1.0f - o_g);

                dc_next[l][u] = dc * f_g; // carries to step ti-1
            }
            std::fill(dh_next[l].begin(), dh_next[l].end(), 0.0f);

            LayerGrads &lg = (*grads)[l];
            const Matrix &wx = net.wx()[l];
            const Matrix &wh = net.wh()[l];
            const std::vector<float> *h_prev =
                ti > 0 ? &tape.h[l][ti - 1] : nullptr;

            for (std::uint32_t g = 0; g < 4 * H; ++g) {
                float d = dz[g];
                if (d == 0.0f)
                    continue;
                lg.db[g] += d;
                float *dwx_row = lg.dwx.row(g);
                for (std::uint32_t i = 0; i < xin; ++i)
                    dwx_row[i] += d * x_in[i];
                if (h_prev) {
                    float *dwh_row = lg.dwh.row(g);
                    for (std::uint32_t i = 0; i < H; ++i)
                        dwh_row[i] += d * (*h_prev)[i];
                }
                // Propagate to the layer input and recurrent state.
                const float *wx_row = wx.row(g);
                if (l > 0) {
                    for (std::uint32_t i = 0; i < H; ++i)
                        dx_upper[i] += d * wx_row[i];
                }
                const float *wh_row = wh.row(g);
                for (std::uint32_t i = 0; i < H; ++i)
                    dh_next[l][i] += d * wh_row[i];
            }
        }
    }
    return loss;
}

} // namespace

double
trainLstm(Lstm &net, const std::vector<LstmSample> &data,
          const LstmTrainConfig &config, Rng &rng)
{
    LAKE_ASSERT(!data.empty(), "empty LSTM training set");
    const LstmConfig &cfg = net.config();
    std::uint32_t H = cfg.hidden;
    std::uint32_t L = cfg.layers;

    std::vector<std::size_t> order(data.size());
    for (std::size_t i = 0; i < order.size(); ++i)
        order[i] = i;

    float lr = config.lr;
    double last_epoch_loss = 0.0;

    for (std::size_t epoch = 0; epoch < config.epochs; ++epoch) {
        std::shuffle(order.begin(), order.end(), rng.engine());
        double epoch_loss = 0.0;

        for (std::size_t start = 0; start < order.size();
             start += config.batch) {
            std::size_t n =
                std::min(config.batch, order.size() - start);

            std::vector<LayerGrads> grads;
            for (std::uint32_t l = 0; l < L; ++l) {
                std::uint32_t xin = l == 0 ? cfg.input : H;
                grads.push_back(LayerGrads{
                    Matrix(4 * H, xin), Matrix(4 * H, H),
                    std::vector<float>(4 * H, 0.0f)});
            }
            Matrix dhead_w(cfg.output, H);
            std::vector<float> dhead_b(cfg.output, 0.0f);

            for (std::size_t i = 0; i < n; ++i) {
                epoch_loss += backwardOne(net, data[order[start + i]],
                                          &grads, &dhead_w, &dhead_b);
            }

            // Global-norm clip, then SGD.
            double norm2 = 0.0;
            for (const LayerGrads &lg : grads) {
                for (std::size_t i = 0; i < lg.dwx.size(); ++i)
                    norm2 += lg.dwx.data()[i] * lg.dwx.data()[i];
                for (std::size_t i = 0; i < lg.dwh.size(); ++i)
                    norm2 += lg.dwh.data()[i] * lg.dwh.data()[i];
                for (float v : lg.db)
                    norm2 += v * v;
            }
            for (std::size_t i = 0; i < dhead_w.size(); ++i)
                norm2 += dhead_w.data()[i] * dhead_w.data()[i];
            for (float v : dhead_b)
                norm2 += v * v;

            float scale = lr / static_cast<float>(n);
            if (config.clip > 0.0f) {
                double norm =
                    std::sqrt(norm2) / static_cast<double>(n);
                if (norm > config.clip)
                    scale *= config.clip / static_cast<float>(norm);
            }

            for (std::uint32_t l = 0; l < L; ++l) {
                Matrix &wx = net.mutableWx(l);
                Matrix &wh = net.mutableWh(l);
                std::vector<float> &b = net.mutableBias(l);
                for (std::size_t i = 0; i < wx.size(); ++i)
                    wx.data()[i] -= scale * grads[l].dwx.data()[i];
                for (std::size_t i = 0; i < wh.size(); ++i)
                    wh.data()[i] -= scale * grads[l].dwh.data()[i];
                for (std::size_t i = 0; i < b.size(); ++i)
                    b[i] -= scale * grads[l].db[i];
            }
            Matrix &hw = net.mutableHeadW();
            std::vector<float> &hb = net.mutableHeadB();
            for (std::size_t i = 0; i < hw.size(); ++i)
                hw.data()[i] -= scale * dhead_w.data()[i];
            for (std::size_t i = 0; i < hb.size(); ++i)
                hb[i] -= scale * dhead_b[i];
        }

        last_epoch_loss = epoch_loss / static_cast<double>(data.size());
        lr *= config.lr_decay;
    }
    return last_epoch_loss;
}

double
lstmAccuracy(const Lstm &net, const std::vector<LstmSample> &data)
{
    if (data.empty())
        return 0.0;
    std::size_t hits = 0;
    for (const LstmSample &s : data)
        hits += net.classify(s.seq) == s.label ? 1 : 0;
    return static_cast<double>(hits) / static_cast<double>(data.size());
}

} // namespace lake::ml
