#ifndef LAKE_ML_MATRIX_H
#define LAKE_ML_MATRIX_H

/**
 * @file
 * Dense row-major float matrix — the only tensor type the in-kernel
 * models need. affine() routes through the blocked, vectorized,
 * multithreaded compute layer (ml/compute.h) for *host* speed; the
 * CpuSpec calibration still models the unvectorized float routines a
 * kernel module runs between kernel_fpu_begin/end, so every *virtual*
 * time charge is unchanged from the seed scalar loops.
 */

#include <cstddef>
#include <vector>

#include "base/logging.h"
#include "base/rng.h"

namespace lake::ml {

/** Row-major 2-D float matrix. */
class Matrix
{
  public:
    /** Empty 0x0 matrix. */
    Matrix() = default;

    /** Zero-initialized rows x cols matrix. */
    Matrix(std::size_t rows, std::size_t cols)
        : rows_(rows), cols_(cols), data_(rows * cols, 0.0f)
    {}

    /** Number of rows. */
    std::size_t rows() const { return rows_; }
    /** Number of columns. */
    std::size_t cols() const { return cols_; }
    /** Total elements. */
    std::size_t size() const { return data_.size(); }

    /** Element access. */
    float &
    at(std::size_t r, std::size_t c)
    {
        LAKE_ASSERT(r < rows_ && c < cols_, "matrix index out of range");
        return data_[r * cols_ + c];
    }

    /** Const element access. */
    float
    at(std::size_t r, std::size_t c) const
    {
        LAKE_ASSERT(r < rows_ && c < cols_, "matrix index out of range");
        return data_[r * cols_ + c];
    }

    /** Raw storage (row-major). */
    float *data() { return data_.data(); }
    /** Const raw storage. */
    const float *data() const { return data_.data(); }

    /** Pointer to the start of row @p r. */
    float *row(std::size_t r) { return data_.data() + r * cols_; }
    /** Const pointer to the start of row @p r. */
    const float *row(std::size_t r) const
    {
        return data_.data() + r * cols_;
    }

    /**
     * Gaussian-initialized matrix (He-style scale for ReLU nets when
     * @p scale is sqrt(2/fan_in)).
     */
    static Matrix randn(std::size_t rows, std::size_t cols, Rng &rng,
                        double scale);

    /** y = x * W^T + b for every row of @p x; W is (out x in). */
    static Matrix affine(const Matrix &x, const Matrix &w,
                         const std::vector<float> &b);

  private:
    std::size_t rows_ = 0;
    std::size_t cols_ = 0;
    std::vector<float> data_;
};

} // namespace lake::ml

#endif // LAKE_ML_MATRIX_H
