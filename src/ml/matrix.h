#ifndef LAKE_ML_MATRIX_H
#define LAKE_ML_MATRIX_H

/**
 * @file
 * Dense row-major float matrix — the only tensor type the in-kernel
 * models need. affine() routes through the blocked, vectorized,
 * multithreaded compute layer (ml/compute.h) for *host* speed; the
 * CpuSpec calibration still models the unvectorized float routines a
 * kernel module runs between kernel_fpu_begin/end, so every *virtual*
 * time charge is unchanged from the seed scalar loops.
 *
 * MatrixView is the zero-copy companion: a non-owning window over
 * row-major float storage whose rows may be further apart than cols
 * (a row *stride*). The SoA feature plane hands committed slots to the
 * GEMM substrate as MatrixViews, so a coalesced score batch needs no
 * gather/pack step (DESIGN.md §12).
 */

#include <cstddef>
#include <vector>

#include "base/aligned.h"
#include "base/logging.h"
#include "base/rng.h"

namespace lake::ml {

/**
 * Non-owning strided window over row-major float data: row r starts at
 * data + r * stride and holds cols contiguous floats (stride >= cols).
 * Plain value type; the viewed storage must outlive every read.
 */
class MatrixView
{
  public:
    /** Empty 0x0 view. */
    MatrixView() = default;

    MatrixView(const float *data, std::size_t rows, std::size_t cols,
               std::size_t stride)
        : data_(data), rows_(rows), cols_(cols), stride_(stride)
    {
        LAKE_ASSERT(stride >= cols,
                    "view stride %zu below row width %zu", stride, cols);
    }

    std::size_t rows() const { return rows_; }
    std::size_t cols() const { return cols_; }
    /** Floats between consecutive row starts. */
    std::size_t stride() const { return stride_; }

    const float *data() const { return data_; }
    const float *row(std::size_t r) const
    {
        LAKE_ASSERT(r < rows_, "view row %zu out of range", r);
        return data_ + r * stride_;
    }
    float
    at(std::size_t r, std::size_t c) const
    {
        LAKE_ASSERT(r < rows_ && c < cols_, "view index out of range");
        return data_[r * stride_ + c];
    }

  private:
    const float *data_ = nullptr;
    std::size_t rows_ = 0;
    std::size_t cols_ = 0;
    std::size_t stride_ = 0;
};

/** Row-major 2-D float matrix, cache-line-aligned backing store. */
class Matrix
{
  public:
    /** Alignment of data() (and so of row(0)); see base/aligned.h. */
    static constexpr std::size_t kAlign = base::kCacheLine;
    static_assert(kAlign % alignof(float) == 0 && kAlign >= 64,
                  "matrix backing must be cache-line aligned");

    /** Empty 0x0 matrix. */
    Matrix() = default;

    /** Zero-initialized rows x cols matrix. */
    Matrix(std::size_t rows, std::size_t cols)
        : rows_(rows), cols_(cols), data_(rows * cols, 0.0f)
    {}

    /** Number of rows. */
    std::size_t rows() const { return rows_; }
    /** Number of columns. */
    std::size_t cols() const { return cols_; }
    /** Total elements. */
    std::size_t size() const { return data_.size(); }

    /** Element access. */
    float &
    at(std::size_t r, std::size_t c)
    {
        LAKE_ASSERT(r < rows_ && c < cols_, "matrix index out of range");
        return data_[r * cols_ + c];
    }

    /** Const element access. */
    float
    at(std::size_t r, std::size_t c) const
    {
        LAKE_ASSERT(r < rows_ && c < cols_, "matrix index out of range");
        return data_[r * cols_ + c];
    }

    /** Raw storage (row-major). */
    float *data() { return data_.data(); }
    /** Const raw storage. */
    const float *data() const { return data_.data(); }

    /** Pointer to the start of row @p r. */
    float *row(std::size_t r) { return data_.data() + r * cols_; }
    /** Const pointer to the start of row @p r. */
    const float *row(std::size_t r) const
    {
        return data_.data() + r * cols_;
    }

    /** Whole-matrix view (stride == cols). */
    MatrixView
    view() const
    {
        return MatrixView(data_.data(), rows_, cols_, cols_);
    }

    /**
     * Gaussian-initialized matrix (He-style scale for ReLU nets when
     * @p scale is sqrt(2/fan_in)).
     */
    static Matrix randn(std::size_t rows, std::size_t cols, Rng &rng,
                        double scale);

    /** y = x * W^T + b for every row of @p x; W is (out x in). */
    static Matrix affine(const Matrix &x, const Matrix &w,
                         const std::vector<float> &b);

    /** Strided-input overload: identical math, bit-identical results. */
    static Matrix affine(const MatrixView &x, const Matrix &w,
                         const std::vector<float> &b);

  private:
    std::size_t rows_ = 0;
    std::size_t cols_ = 0;
    base::AlignedVec<float> data_;
};

} // namespace lake::ml

#endif // LAKE_ML_MATRIX_H
