#ifndef LAKE_ML_LSTM_H
#define LAKE_ML_LSTM_H

/**
 * @file
 * Stacked LSTM classifier.
 *
 * Kleio (§7.2) "uses Tensorflow to construct a model with two LSTM
 * layers" to predict page warmth from a page's access history. This is
 * that model family: N LSTM layers over a feature sequence, last hidden
 * state through a dense head to class logits. Inference-only — Kleio
 * trains offline in user space; the kernel consumes the trained model
 * through LAKE's high-level API.
 */

#include <cstdint>
#include <vector>

#include "base/rng.h"
#include "base/status.h"
#include "ml/matrix.h"

namespace lake::ml {

/** Shape of a stacked-LSTM classifier. */
struct LstmConfig
{
    std::uint32_t input = 1;   //!< features per timestep
    std::uint32_t hidden = 64; //!< hidden width per layer
    std::uint32_t layers = 2;  //!< stacked LSTM layers
    std::uint32_t output = 2;  //!< classes from the dense head
    std::uint32_t seq_len = 32; //!< timesteps per sample

    /**
     * Kleio's page-warmth model: two LSTM layers over a page's recent
     * access-count history, binary hot/cold head.
     */
    static LstmConfig kleio();
};

/**
 * The network. Gate layout follows cuDNN order [i, f, g, o].
 */
class Lstm
{
  public:
    /** Randomly initialized (Xavier-ish, forget-gate bias +1). */
    Lstm(LstmConfig config, Rng &rng);

    /** Shape. */
    const LstmConfig &config() const { return config_; }

    /**
     * Forward pass over one sample.
     * @param seq seq_len x input values, timestep-major
     * @return class logits (output wide)
     */
    std::vector<float> forward(const std::vector<float> &seq) const;

    /** Argmax class of one sample. */
    int classify(const std::vector<float> &seq) const;

    /** Argmax class per sample of a batch (samples concatenated). */
    std::vector<int> classifyBatch(const std::vector<float> &seqs,
                                   std::size_t batch) const;

    /** FLOPs of one sample's forward pass. */
    double flopsPerSample() const;

    /** Total parameter count. */
    std::size_t paramCount() const;

    /** Serializes config + weights. */
    std::vector<std::uint8_t> serialize() const;
    /** Reconstructs from serialize() output. */
    static Result<Lstm> deserialize(const std::vector<std::uint8_t> &blob);

    /// @name Parameter access (GPU upload)
    /// @{
    /** Per-layer input weights, (4*hidden x in). */
    const std::vector<Matrix> &wx() const { return wx_; }
    /** Per-layer recurrent weights, (4*hidden x hidden). */
    const std::vector<Matrix> &wh() const { return wh_; }
    /** Per-layer gate biases, 4*hidden long. */
    const std::vector<std::vector<float>> &bias() const { return b_; }
    /** Dense head weights, (output x hidden). */
    const Matrix &headW() const { return head_w_; }
    /** Dense head bias. */
    const std::vector<float> &headB() const { return head_b_; }
    /// @}

    /// @name Mutable parameter access (offline training only)
    /// The kernel-facing inference path never mutates a model; these
    /// exist for the user-space trainer (ml/lstm_train.h) and tests.
    /// @{
    Matrix &mutableWx(std::size_t l) { return wx_[l]; }
    Matrix &mutableWh(std::size_t l) { return wh_[l]; }
    std::vector<float> &mutableBias(std::size_t l) { return b_[l]; }
    Matrix &mutableHeadW() { return head_w_; }
    std::vector<float> &mutableHeadB() { return head_b_; }
    /// @}

  private:
    explicit Lstm(LstmConfig config);

    LstmConfig config_;
    std::vector<Matrix> wx_;
    std::vector<Matrix> wh_;
    std::vector<std::vector<float>> b_;
    Matrix head_w_;
    std::vector<float> head_b_;
};

} // namespace lake::ml

#endif // LAKE_ML_LSTM_H
