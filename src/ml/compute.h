#ifndef LAKE_ML_COMPUTE_H
#define LAKE_ML_COMPUTE_H

/**
 * @file
 * Blocked, vectorized, multithreaded CPU compute for the ML models.
 *
 * Every CPU-side inference hot path (Matrix::affine, batched kNN, the
 * simulated-GPU kernel bodies) funnels through this layer. The kernels
 * are cache-blocked and written with independent accumulator streams
 * and __restrict pointers so the compiler auto-vectorizes them, and
 * they parallelize over output rows via base::ThreadPool.
 *
 * Host time only: nothing here touches virtual-time cost models. The
 * calibrated figure benches charge exactly the same Nanos as the seed
 * scalar loops did; this layer just makes the simulator's real
 * execution of that math fast (see bench/micro_primitives and
 * BENCH_mlcompute.json).
 *
 * Determinism: for every output element the reduction over the
 * k-dimension runs in ascending index order, one element at a time —
 * the same order as the seed scalar loops — and parallelism never
 * splits a reduction. Results are therefore bit-identical at any
 * LAKE_CPU_THREADS setting (and to the seed scalar code under
 * identical floating-point contraction rules).
 */

#include <cstddef>
#include <cstdint>

namespace lake::ml::compute {

/**
 * Packs the row-major matrix @p w (rows x cols) into its transpose
 * @p wt (cols x rows). The GEMM kernels read weights in transposed
 * layout so their inner loops are unit-stride over outputs.
 */
void packTranspose(const float *w, std::size_t rows, std::size_t cols,
                   float *wt);

/**
 * Single-threaded blocked GEMM block:
 *   y(n x out) = x(n x in) * wt(in x out) [+ bias]
 * @p wt is the *transposed* weight matrix (see packTranspose); @p bias
 * may be null for no bias. Tiled over output columns and the
 * k-dimension, with a 4-row microkernel of independent accumulator
 * streams.
 */
void gemmBlock(const float *x, std::size_t n, std::size_t in,
               const float *wt, std::size_t out, const float *bias,
               float *y);

/**
 * Strided-input gemmBlock: row r of @p x starts at x + r * x_stride
 * (x_stride >= in). With x_stride == in this *is* gemmBlock — the same
 * kernels run in the same order, so results are bit-identical. This is
 * the zero-copy entry the SoA feature plane's MatrixViews use: a
 * committed slot window feeds the register-tile microkernel directly,
 * no gather/pack step.
 */
void gemmBlock(const float *x, std::size_t n, std::size_t in,
               std::size_t x_stride, const float *wt, std::size_t out,
               const float *bias, float *y);

/**
 * y = x * w^T + bias over the global ThreadPool, parallel across row
 * blocks. @p w is row-major (out x in) exactly as Matrix stores layer
 * weights; it is packed once per call.
 */
void affine(const float *x, std::size_t n, std::size_t in, const float *w,
            std::size_t out, const float *bias, float *y);

/** Strided-input affine (see the strided gemmBlock). */
void affine(const float *x, std::size_t n, std::size_t in,
            std::size_t x_stride, const float *w, std::size_t out,
            const float *bias, float *y);

/** Output width rounded up to a whole register tile: the padded
 *  column count affinePacked() expects wt and bias to provide. */
std::size_t padTile(std::size_t out);

/**
 * y = x * wt [+ bias] with a caller-packed transposed weight: the
 * same parallel row-block GEMM as affine(), minus the per-call
 * transpose pack and scratch allocation. @p out must be a whole
 * number of register tiles (see padTile); a caller padding a narrow
 * layer fills the extra wt columns and bias entries with zeros and
 * ignores the padded outputs. Per real output element the reduction
 * runs in the same ascending-i order as affine(), so results are
 * bit-identical — padding only moves the ragged column tail off the
 * scalar edge kernel and onto the vectorized microkernel.
 */
void affinePacked(const float *x, std::size_t n, std::size_t in,
                  std::size_t x_stride, const float *wt, std::size_t out,
                  const float *bias, float *y);

/** One kNN candidate: squared distance and reference index. */
struct Neighbor
{
    float d2 = 0.0f;
    std::int32_t index = -1;
};

/**
 * Batched brute-force k-nearest-neighbours:
 * for each of @p n queries, writes its @p k nearest references
 * (ascending squared distance, ties broken by lower reference index)
 * to out + q * k.
 *
 * Uses the ||q - r||^2 = ||q||^2 + ||r||^2 - 2 q.r decomposition: the
 * cross terms become one blocked GEMM (queries x refs^T) and selection
 * is a single top-k pass per query, parallel over queries. @p k must
 * be <= @p n_refs.
 */
void knnNeighbors(const float *queries, std::size_t n, std::size_t dim,
                  const float *refs, std::size_t n_refs, std::size_t k,
                  Neighbor *out);

/**
 * Strided-query knnNeighbors: query q starts at queries + q * q_stride
 * (q_stride >= dim). q_stride == dim reproduces the contiguous path
 * bit-identically.
 */
void knnNeighbors(const float *queries, std::size_t n, std::size_t dim,
                  std::size_t q_stride, const float *refs,
                  std::size_t n_refs, std::size_t k, Neighbor *out);

} // namespace lake::ml::compute

#endif // LAKE_ML_COMPUTE_H
