#include "ml/lstm.h"

#include <cmath>
#include <cstring>

#include "base/logging.h"
#include "base/thread_pool.h"

namespace lake::ml {

namespace {

float
sigmoidf(float x)
{
    return 1.0f / (1.0f + std::exp(-x));
}

} // namespace

LstmConfig
LstmConfig::kleio()
{
    LstmConfig c;
    c.input = 1;     // access count per scheduling interval
    c.hidden = 64;   // sized for host-side simulation throughput; the
                     // TF-runtime cost model carries the timing
    c.layers = 2;
    c.output = 2;    // hot / cold
    c.seq_len = 32;  // history window of intervals
    return c;
}

Lstm::Lstm(LstmConfig config) : config_(config)
{
    LAKE_ASSERT(config_.input > 0 && config_.hidden > 0 &&
                    config_.layers > 0 && config_.output > 0 &&
                    config_.seq_len > 0,
                "lstm config has a zero dimension");
}

Lstm::Lstm(LstmConfig config, Rng &rng) : Lstm(config)
{
    for (std::uint32_t l = 0; l < config_.layers; ++l) {
        std::uint32_t in = l == 0 ? config_.input : config_.hidden;
        double sx = std::sqrt(1.0 / in);
        double sh = std::sqrt(1.0 / config_.hidden);
        wx_.push_back(Matrix::randn(4 * config_.hidden, in, rng, sx));
        wh_.push_back(
            Matrix::randn(4 * config_.hidden, config_.hidden, rng, sh));
        std::vector<float> bias(4 * config_.hidden, 0.0f);
        // Forget-gate bias +1: standard stabilization for fresh LSTMs.
        for (std::uint32_t i = config_.hidden; i < 2 * config_.hidden; ++i)
            bias[i] = 1.0f;
        b_.push_back(std::move(bias));
    }
    head_w_ = Matrix::randn(config_.output, config_.hidden, rng,
                            std::sqrt(1.0 / config_.hidden));
    head_b_.assign(config_.output, 0.0f);
}

std::vector<float>
Lstm::forward(const std::vector<float> &seq) const
{
    std::size_t expect =
        static_cast<std::size_t>(config_.seq_len) * config_.input;
    LAKE_ASSERT(seq.size() == expect, "lstm sample has %zu values, want %zu",
                seq.size(), expect);

    std::uint32_t H = config_.hidden;
    // Per-layer hidden and cell state.
    std::vector<std::vector<float>> h(config_.layers,
                                      std::vector<float>(H, 0.0f));
    std::vector<std::vector<float>> c(config_.layers,
                                      std::vector<float>(H, 0.0f));
    std::vector<float> gates(4 * H);

    for (std::uint32_t t = 0; t < config_.seq_len; ++t) {
        const float *x = seq.data() +
                         static_cast<std::size_t>(t) * config_.input;
        std::uint32_t xin = config_.input;

        for (std::uint32_t l = 0; l < config_.layers; ++l) {
            const Matrix &wx = wx_[l];
            const Matrix &wh = wh_[l];
            const std::vector<float> &bias = b_[l];

            for (std::uint32_t g = 0; g < 4 * H; ++g) {
                const float *wxr = wx.row(g);
                const float *whr = wh.row(g);
                float acc = bias[g];
                for (std::uint32_t i = 0; i < xin; ++i)
                    acc += wxr[i] * x[i];
                for (std::uint32_t i = 0; i < H; ++i)
                    acc += whr[i] * h[l][i];
                gates[g] = acc;
            }

            for (std::uint32_t i = 0; i < H; ++i) {
                float ig = sigmoidf(gates[i]);
                float fg = sigmoidf(gates[H + i]);
                float gg = std::tanh(gates[2 * H + i]);
                float og = sigmoidf(gates[3 * H + i]);
                c[l][i] = fg * c[l][i] + ig * gg;
                h[l][i] = og * std::tanh(c[l][i]);
            }

            x = h[l].data(); // next layer consumes this layer's output
            xin = H;
        }
    }

    // Dense head over the top layer's final hidden state.
    std::vector<float> logits(config_.output, 0.0f);
    const std::vector<float> &top = h[config_.layers - 1];
    for (std::uint32_t o = 0; o < config_.output; ++o) {
        const float *w = head_w_.row(o);
        float acc = head_b_[o];
        for (std::uint32_t i = 0; i < H; ++i)
            acc += w[i] * top[i];
        logits[o] = acc;
    }
    return logits;
}

int
Lstm::classify(const std::vector<float> &seq) const
{
    std::vector<float> logits = forward(seq);
    int best = 0;
    for (std::size_t i = 1; i < logits.size(); ++i)
        if (logits[i] > logits[best])
            best = static_cast<int>(i);
    return best;
}

std::vector<int>
Lstm::classifyBatch(const std::vector<float> &seqs, std::size_t batch) const
{
    std::size_t per =
        static_cast<std::size_t>(config_.seq_len) * config_.input;
    LAKE_ASSERT(seqs.size() == per * batch,
                "lstm batch has %zu values, want %zu", seqs.size(),
                per * batch);
    // Samples are independent: parallel over the batch, one label slot
    // per sample, so results are identical at any thread count.
    std::vector<int> out(batch);
    base::ThreadPool::global().parallelFor(
        0, batch, 1, [&](std::size_t b, std::size_t e) {
            for (std::size_t s = b; s < e; ++s) {
                std::vector<float> one(seqs.begin() + s * per,
                                       seqs.begin() + (s + 1) * per);
                out[s] = classify(one);
            }
        });
    return out;
}

double
Lstm::flopsPerSample() const
{
    double flops = 0.0;
    for (std::uint32_t l = 0; l < config_.layers; ++l) {
        double in = l == 0 ? config_.input : config_.hidden;
        // Gate matmuls (x and h paths) plus elementwise updates.
        double per_step = 2.0 * 4 * config_.hidden * (in + config_.hidden) +
                          10.0 * config_.hidden;
        flops += per_step * config_.seq_len;
    }
    flops += 2.0 * config_.output * config_.hidden; // head
    return flops;
}

std::size_t
Lstm::paramCount() const
{
    std::size_t n = 0;
    for (std::uint32_t l = 0; l < config_.layers; ++l)
        n += wx_[l].size() + wh_[l].size() + b_[l].size();
    n += head_w_.size() + head_b_.size();
    return n;
}

std::vector<std::uint8_t>
Lstm::serialize() const
{
    std::vector<std::uint8_t> blob;
    auto put32 = [&blob](std::uint32_t v) {
        for (int i = 0; i < 4; ++i)
            blob.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    };
    auto putFloats = [&blob](const float *p, std::size_t n) {
        const auto *bytes = reinterpret_cast<const std::uint8_t *>(p);
        blob.insert(blob.end(), bytes, bytes + n * sizeof(float));
    };

    put32(0x4c53544dU); // 'LSTM'
    put32(config_.input);
    put32(config_.hidden);
    put32(config_.layers);
    put32(config_.output);
    put32(config_.seq_len);
    for (std::uint32_t l = 0; l < config_.layers; ++l) {
        putFloats(wx_[l].data(), wx_[l].size());
        putFloats(wh_[l].data(), wh_[l].size());
        putFloats(b_[l].data(), b_[l].size());
    }
    putFloats(head_w_.data(), head_w_.size());
    putFloats(head_b_.data(), head_b_.size());
    return blob;
}

Result<Lstm>
Lstm::deserialize(const std::vector<std::uint8_t> &blob)
{
    std::size_t pos = 0;
    auto get32 = [&](std::uint32_t *out) {
        if (pos + 4 > blob.size())
            return false;
        std::uint32_t v = 0;
        for (int i = 0; i < 4; ++i)
            v |= static_cast<std::uint32_t>(blob[pos + i]) << (8 * i);
        pos += 4;
        *out = v;
        return true;
    };
    auto getFloats = [&](float *p, std::size_t n) {
        std::size_t bytes = n * sizeof(float);
        if (pos + bytes > blob.size())
            return false;
        std::memcpy(p, blob.data() + pos, bytes);
        pos += bytes;
        return true;
    };
    auto bad = [](const char *why) {
        return Result<Lstm>(Status(Code::InvalidArgument, why));
    };

    std::uint32_t magic = 0;
    if (!get32(&magic) || magic != 0x4c53544dU)
        return bad("bad LSTM magic");

    LstmConfig cfg;
    if (!get32(&cfg.input) || !get32(&cfg.hidden) || !get32(&cfg.layers) ||
        !get32(&cfg.output) || !get32(&cfg.seq_len)) {
        return bad("truncated LSTM header");
    }
    if (cfg.input == 0 || cfg.hidden == 0 || cfg.layers == 0 ||
        cfg.layers > 16 || cfg.output == 0 || cfg.seq_len == 0) {
        return bad("implausible LSTM config");
    }

    Lstm net(cfg);
    for (std::uint32_t l = 0; l < cfg.layers; ++l) {
        std::uint32_t in = l == 0 ? cfg.input : cfg.hidden;
        Matrix wx(4 * cfg.hidden, in);
        Matrix wh(4 * cfg.hidden, cfg.hidden);
        std::vector<float> bias(4 * cfg.hidden);
        if (!getFloats(wx.data(), wx.size()) ||
            !getFloats(wh.data(), wh.size()) ||
            !getFloats(bias.data(), bias.size())) {
            return bad("truncated LSTM weights");
        }
        net.wx_.push_back(std::move(wx));
        net.wh_.push_back(std::move(wh));
        net.b_.push_back(std::move(bias));
    }
    net.head_w_ = Matrix(cfg.output, cfg.hidden);
    net.head_b_.assign(cfg.output, 0.0f);
    if (!getFloats(net.head_w_.data(), net.head_w_.size()) ||
        !getFloats(net.head_b_.data(), net.head_b_.size())) {
        return bad("truncated LSTM head");
    }
    if (pos != blob.size())
        return bad("trailing bytes in LSTM blob");
    return Result<Lstm>(std::move(net));
}

} // namespace lake::ml
