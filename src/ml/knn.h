#ifndef LAKE_ML_KNN_H
#define LAKE_ML_KNN_H

/**
 * @file
 * k-nearest-neighbours classifier.
 *
 * The malware detector (§7.5) classifies processes by majority vote of
 * the 16 nearest reference points among 16,384, over feature vectors of
 * syscall frequencies and PMU counters. Brute-force distance scan — the
 * embarrassing parallelism is precisely what gives the GPU its ~1.5k×
 * advantage in Fig. 12.
 */

#include <cstdint>
#include <vector>

#include "base/logging.h"
#include "ml/matrix.h"

namespace lake::ml {

/**
 * Brute-force Euclidean k-NN over a fixed reference set.
 */
class Knn
{
  public:
    /**
     * @param dim feature dimensionality
     * @param k   neighbours voting per query
     */
    Knn(std::size_t dim, std::size_t k);

    /** Adds one labelled reference point (@p point is dim floats). */
    void add(const float *point, int label);

    /** Feature dimensionality. */
    std::size_t dim() const { return dim_; }
    /** Vote size. */
    std::size_t k() const { return k_; }
    /** Number of reference points. */
    std::size_t refCount() const { return labels_.size(); }

    /**
     * Majority label of the k nearest references to @p query, scalar
     * scan. A vote tie goes to the label with the nearest reference.
     */
    int classify(const float *query) const;

    /**
     * Classifies @p n queries (concatenated dim-float vectors) through
     * the batched path: one blocked GEMM over the ||q-r||^2
     * decomposition plus a top-k pass, parallel over queries (see
     * ml/compute.h). Same voting rule as classify().
     */
    std::vector<int> classifyBatch(const float *queries,
                                   std::size_t n) const;

    /**
     * Zero-copy batch classification over a strided window (see
     * ml/matrix.h MatrixView): query q starts at queries.row(q). With
     * stride == dim this is classifyBatch(queries.data(), rows),
     * bit-identically.
     */
    std::vector<int> classifyBatch(const MatrixView &queries) const;

    /** FLOPs of one query (distances + selection bookkeeping). */
    double flopsPerQuery() const;

    /** Flat reference matrix (refCount x dim), for GPU upload. */
    const std::vector<float> &refs() const { return refs_; }
    /** Reference labels. */
    const std::vector<std::int32_t> &labels() const { return labels_; }

  private:
    std::size_t dim_;
    std::size_t k_;
    std::vector<float> refs_;
    std::vector<std::int32_t> labels_;
};

} // namespace lake::ml

#endif // LAKE_ML_KNN_H
