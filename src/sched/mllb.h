#ifndef LAKE_SCHED_MLLB_H
#define LAKE_SCHED_MLLB_H

/**
 * @file
 * MLLB-style ML load balancing (§7.3).
 *
 * MLLB replaces the CFS can_migrate_task heuristic with a small
 * network over per-candidate features: source/destination load, queue
 * lengths, the task's own load contribution, cache hotness, NUMA
 * distance, and preferred-CPU hints. This module provides a miniature
 * multi-core run-queue model that produces migration candidates, the
 * 22-feature encoding, ground-truth labelling (would the migration
 * reduce imbalance net of cache/NUMA penalties?), and training.
 */

#include <cstdint>
#include <vector>

#include "base/rng.h"
#include "ml/mlp.h"

namespace lake::sched {

/** Feature width of the MLLB model. */
constexpr std::size_t kMllbFeatures = 22;

/** A runnable task in the mini scheduler. */
struct Task
{
    std::uint32_t load = 1024;   //!< CFS-style load weight
    std::uint32_t last_cpu = 0;  //!< where it last ran (cache hotness)
    std::uint64_t ran_recently = 0; //!< ns since it last ran on last_cpu
};

/**
 * A snapshot of N cores with run queues, able to emit labelled
 * migration candidates.
 */
class MiniScheduler
{
  public:
    /**
     * @param cores     core count (two NUMA nodes, split evenly)
     * @param avg_tasks mean runnable tasks per core
     */
    MiniScheduler(std::size_t cores, double avg_tasks, Rng &rng);

    /** Re-randomizes queues (a fresh imbalance episode). */
    void randomize(Rng &rng);

    /** One candidate migration with its feature encoding and label. */
    struct Candidate
    {
        std::vector<float> x; //!< kMllbFeatures wide
        int migrate = 0;      //!< ground truth: 1 = beneficial
    };

    /**
     * Samples a candidate: the busiest core as source, a random task
     * from it, and the least-loaded core as destination — the shape of
     * CFS's pull balancing.
     */
    Candidate sampleCandidate(Rng &rng) const;

    /** Total load on a core. */
    std::uint64_t coreLoad(std::size_t core) const;
    /** Core count. */
    std::size_t cores() const { return queues_.size(); }

  private:
    /** NUMA distance between two cores (1.0 same node, else penalty). */
    double numaDistance(std::size_t a, std::size_t b) const;

    std::vector<std::vector<Task>> queues_;
    double avg_tasks_ = 4.0;
};

/** Builds a labelled dataset of @p count candidates. */
std::vector<MiniScheduler::Candidate>
buildMllbDataset(std::size_t count, std::size_t cores, double avg_tasks,
                 Rng &rng);

/** Trains the MLLB migrate/don't-migrate classifier. */
ml::Mlp trainMllbModel(const std::vector<MiniScheduler::Candidate> &data,
                       std::size_t epochs, float lr, Rng &rng);

} // namespace lake::sched

#endif // LAKE_SCHED_MLLB_H
