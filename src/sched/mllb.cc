#include "sched/mllb.h"

#include <algorithm>
#include <cmath>

#include "base/logging.h"

namespace lake::sched {

MiniScheduler::MiniScheduler(std::size_t cores, double avg_tasks, Rng &rng)
    : queues_(cores)
{
    LAKE_ASSERT(cores >= 2, "need at least two cores to balance");
    avg_tasks_ = avg_tasks;
    randomize(rng);
}

void
MiniScheduler::randomize(Rng &rng)
{
    for (std::size_t c = 0; c < queues_.size(); ++c) {
        queues_[c].clear();
        // Poisson-ish count via exponential rounding; some cores end up
        // empty, some with bursts — the imbalance CFS chases.
        auto n = static_cast<std::size_t>(rng.exponential(avg_tasks_));
        for (std::size_t i = 0; i < n; ++i) {
            Task t;
            t.load = static_cast<std::uint32_t>(
                rng.lognormalByMoments(1024.0, 700.0));
            t.last_cpu = static_cast<std::uint32_t>(
                rng.chance(0.7) ? c
                                : rng.uniformInt(0, queues_.size() - 1));
            t.ran_recently =
                static_cast<std::uint64_t>(rng.exponential(2e6));
            queues_[c].push_back(t);
        }
    }
}

std::uint64_t
MiniScheduler::coreLoad(std::size_t core) const
{
    std::uint64_t sum = 0;
    for (const Task &t : queues_[core])
        sum += t.load;
    return sum;
}

double
MiniScheduler::numaDistance(std::size_t a, std::size_t b) const
{
    std::size_t half = queues_.size() / 2;
    return (a < half) == (b < half) ? 1.0 : 2.1; // remote node penalty
}

MiniScheduler::Candidate
MiniScheduler::sampleCandidate(Rng &rng) const
{
    // Busiest source, least-loaded destination.
    std::size_t src = 0, dst = 0;
    std::uint64_t src_load = 0, dst_load = ~0ull;
    for (std::size_t c = 0; c < queues_.size(); ++c) {
        std::uint64_t load = coreLoad(c);
        if (load > src_load && !queues_[c].empty()) {
            src_load = load;
            src = c;
        }
        if (load < dst_load) {
            dst_load = load;
            dst = c;
        }
    }
    if (queues_[src].empty() || src == dst) {
        // Degenerate snapshot; emit a trivially-negative candidate.
        Candidate cand;
        cand.x.assign(kMllbFeatures, 0.0f);
        cand.migrate = 0;
        return cand;
    }

    const Task &task =
        queues_[src][rng.uniformInt(0, queues_[src].size() - 1)];

    // --- feature encoding (22 floats, scaled to O(1)) ----------------
    Candidate cand;
    cand.x.assign(kMllbFeatures, 0.0f);
    auto &x = cand.x;
    double scale = 1.0 / 4096.0;
    double numa = numaDistance(src, dst);
    bool cache_hot =
        task.last_cpu == src && task.ran_recently < 500'000;

    x[0] = static_cast<float>(src_load * scale);
    x[1] = static_cast<float>(dst_load * scale);
    x[2] = static_cast<float>((src_load - dst_load) * scale);
    x[3] = static_cast<float>(task.load * scale);
    x[4] = static_cast<float>(queues_[src].size()) * 0.1f;
    x[5] = static_cast<float>(queues_[dst].size()) * 0.1f;
    x[6] = cache_hot ? 1.0f : 0.0f;
    x[7] = static_cast<float>(task.ran_recently) / 5e6f;
    x[8] = task.last_cpu == dst ? 1.0f : 0.0f;
    x[9] = static_cast<float>(numa - 1.0);
    x[10] = static_cast<float>(src) / queues_.size();
    x[11] = static_cast<float>(dst) / queues_.size();
    // Load distribution context: min/max/mean over all cores.
    std::uint64_t mn = ~0ull, mx = 0, total = 0;
    for (std::size_t c = 0; c < queues_.size(); ++c) {
        std::uint64_t l = coreLoad(c);
        mn = std::min(mn, l);
        mx = std::max(mx, l);
        total += l;
    }
    x[12] = static_cast<float>(mn * scale);
    x[13] = static_cast<float>(mx * scale);
    x[14] = static_cast<float>(total * scale / queues_.size());
    x[15] = static_cast<float>((src_load - task.load) * scale);
    x[16] = static_cast<float>((dst_load + task.load) * scale);
    // Imbalance before/after this specific migration.
    double before = static_cast<double>(src_load) - dst_load;
    double after = (static_cast<double>(src_load) - task.load) -
                   (static_cast<double>(dst_load) + task.load);
    x[17] = static_cast<float>(before * scale);
    x[18] = static_cast<float>(after * scale);
    x[19] = static_cast<float>(std::abs(after) * scale);
    x[20] = static_cast<float>(queues_.size()) / 64.0f;
    x[21] = 1.0f; // bias input

    // --- ground truth -------------------------------------------------
    // Migration helps when it strictly reduces pairwise imbalance and
    // the cache/NUMA penalty does not eat the gain.
    double gain = std::abs(before) - std::abs(after);
    double penalty = (cache_hot ? 900.0 : 0.0) + (numa - 1.0) * 700.0;
    cand.migrate = gain > penalty ? 1 : 0;
    return cand;
}

std::vector<MiniScheduler::Candidate>
buildMllbDataset(std::size_t count, std::size_t cores, double avg_tasks,
                 Rng &rng)
{
    MiniScheduler sched(cores, avg_tasks, rng);
    std::vector<MiniScheduler::Candidate> data;
    data.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
        if (i % 8 == 0)
            sched.randomize(rng);
        data.push_back(sched.sampleCandidate(rng));
    }
    return data;
}

ml::Mlp
trainMllbModel(const std::vector<MiniScheduler::Candidate> &data,
               std::size_t epochs, float lr, Rng &rng)
{
    LAKE_ASSERT(!data.empty(), "empty MLLB dataset");
    ml::Mlp net(ml::MlpConfig::mllb(), rng);

    constexpr std::size_t kBatch = 32;
    std::vector<std::size_t> order(data.size());
    for (std::size_t i = 0; i < order.size(); ++i)
        order[i] = i;

    for (std::size_t e = 0; e < epochs; ++e) {
        std::shuffle(order.begin(), order.end(), rng.engine());
        for (std::size_t start = 0; start < order.size();
             start += kBatch) {
            std::size_t n = std::min(kBatch, order.size() - start);
            ml::Matrix x(n, kMllbFeatures);
            std::vector<int> y(n);
            for (std::size_t i = 0; i < n; ++i) {
                const auto &s = data[order[start + i]];
                std::copy(s.x.begin(), s.x.end(), x.row(i));
                y[i] = s.migrate;
            }
            net.trainStep(x, y, lr);
        }
    }
    return net;
}

} // namespace lake::sched
