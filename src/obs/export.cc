#include "obs/export.h"

#include <cinttypes>
#include <cstdio>
#include <fstream>

namespace lake::obs {
namespace {

/** Escapes a string for a JSON literal (names are ASCII literals). */
std::string
escape(const char *s)
{
    std::string out;
    for (; s && *s; ++s) {
        char c = *s;
        if (c == '"' || c == '\\') {
            out.push_back('\\');
            out.push_back(c);
        } else if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof buf, "\\u%04x", c);
            out += buf;
        } else {
            out.push_back(c);
        }
    }
    return out;
}

void
appendU64(std::string &out, std::uint64_t v)
{
    char buf[24];
    std::snprintf(buf, sizeof buf, "%" PRIu64, v);
    out += buf;
}

/** Virtual ns rendered as microseconds with ns precision. */
void
appendMicros(std::string &out, Nanos t)
{
    char buf[40];
    std::snprintf(buf, sizeof buf, "%" PRIu64 ".%03u", t / 1000,
                  static_cast<unsigned>(t % 1000));
    out += buf;
}

const char *
sideName(Side s)
{
    switch (s) {
    case Side::Kernel:
        return "kernel (lakeLib)";
    case Side::Daemon:
        return "daemon (lakeD)";
    case Side::Runtime:
        return "runtime (policy/registry/shm)";
    case Side::Gpu:
        return "device engines";
    }
    return "?";
}

void
appendArgs(std::string &out, const TraceEvent &e)
{
    out += "\"args\":{";
    bool first = true;
    if (e.id != kNoId) {
        out += "\"seq\":";
        appendU64(out, e.id);
        first = false;
    }
    if (e.arg0_name) {
        if (!first)
            out += ",";
        out += "\"" + escape(e.arg0_name) + "\":";
        appendU64(out, e.arg0);
        first = false;
    }
    if (e.arg1_name) {
        if (!first)
            out += ",";
        out += "\"" + escape(e.arg1_name) + "\":";
        appendU64(out, e.arg1);
    }
    out += "}";
}

void
appendHistogram(std::string &out, const Histogram &h)
{
    out += "{\"count\":";
    appendU64(out, h.count());
    out += ",\"sum\":";
    appendU64(out, h.sum());
    out += ",\"max\":";
    appendU64(out, h.max());
    out += ",\"buckets\":[";
    bool first = true;
    for (int i = 0; i < Histogram::kBuckets; ++i) {
        std::uint64_t n = h.bucketCount(i);
        if (n == 0)
            continue;
        if (!first)
            out += ",";
        first = false;
        out += "{\"lo\":";
        appendU64(out, Histogram::bucketLo(i));
        out += ",\"n\":";
        appendU64(out, n);
        out += "}";
    }
    out += "]}";
}

Status
writeFile(const std::string &path, const std::string &body)
{
    std::ofstream f(path, std::ios::trunc);
    if (!f)
        return Status(Code::Internal, "cannot open " + path);
    f << body;
    f.close();
    if (!f)
        return Status(Code::Internal, "write failed: " + path);
    return Status::ok();
}

} // namespace

std::string
chromeTraceJson(const std::vector<TraceEvent> &events)
{
    std::string out;
    out.reserve(events.size() * 128 + 1024);
    out += "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[";
    // One process-name metadata record per side present in the trace.
    bool seen[5] = {};
    bool first = true;
    for (const TraceEvent &e : events) {
        auto pid = static_cast<unsigned>(e.side);
        if (pid < 5 && !seen[pid]) {
            seen[pid] = true;
            if (!first)
                out += ",";
            first = false;
            out += "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":";
            appendU64(out, pid);
            out += ",\"tid\":0,\"args\":{\"name\":\"";
            out += escape(sideName(e.side));
            out += "\"}}";
        }
    }
    for (const TraceEvent &e : events) {
        if (!first)
            out += ",";
        first = false;
        out += "{\"name\":\"" + escape(e.name) + "\"";
        out += ",\"cat\":\"" + escape(e.cat) + "\"";
        if (e.instant) {
            out += ",\"ph\":\"i\",\"s\":\"t\"";
        } else {
            out += ",\"ph\":\"X\",\"dur\":";
            appendMicros(out, e.dur);
        }
        out += ",\"pid\":";
        appendU64(out, static_cast<unsigned>(e.side));
        out += ",\"tid\":";
        appendU64(out, e.tid);
        out += ",\"ts\":";
        appendMicros(out, e.ts);
        out += ",";
        appendArgs(out, e);
        out += "}";
    }
    out += "]}\n";
    return out;
}

Status
writeChromeTrace(const std::string &path)
{
    return writeFile(path, chromeTraceJson(Tracer::global().snapshot()));
}

std::string
metricsJsonObject(const Metrics &m)
{
    std::string out = "{\"counters\":{";

    struct NamedCounter
    {
        const char *name;
        const Counter *c;
    };
    const NamedCounter fixed_counters[] = {
        {"shm.allocs", &m.shm_allocs},
        {"shm.frees", &m.shm_frees},
        {"shm.alloc_failures", &m.shm_alloc_failures},
        {"dma.acquires", &m.dma_acquires},
        {"dma.releases", &m.dma_releases},
        {"dma.credit_stalls", &m.dma_credit_stalls},
        {"dma.sheds", &m.dma_sheds},
        {"dma.gathers", &m.dma_gathers},
        {"dma.gathered_vectors", &m.dma_gathered_vectors},
        {"policy.decide_cpu", &m.policy_decide_cpu},
        {"policy.decide_gpu", &m.policy_decide_gpu},
        {"policy.fallback_overrides", &m.policy_fallback_overrides},
        {"registry.capture_begins", &m.reg_capture_begins},
        {"registry.features_captured", &m.reg_features_captured},
        {"registry.commits", &m.reg_commits},
        {"registry.scores", &m.reg_scores},
        {"registry.pack_bytes", &m.reg_pack_bytes},
        {"registry.capture_ns", &m.reg_capture_ns},
        {"registry.async_submits", &m.reg_async_submits},
        {"registry.async_sheds", &m.reg_async_sheds},
        {"registry.async_rejects", &m.reg_async_rejects},
        {"registry.score_flushes", &m.reg_score_flushes},
        {"serve.arrivals", &m.serve_arrivals},
        {"serve.admits", &m.serve_admits},
        {"serve.bucket_rejects", &m.serve_bucket_rejects},
        {"serve.queue_sheds", &m.serve_queue_sheds},
        {"serve.backpressure", &m.serve_backpressure},
        {"serve.completions", &m.serve_completions},
        {"serve.failures", &m.serve_failures},
    };
    bool first = true;
    for (const auto &[name, c] : fixed_counters) {
        if (!first)
            out += ",";
        first = false;
        out += "\"" + std::string(name) + "\":";
        appendU64(out, c->get());
    }
    for (const std::string &name : m.counterNames()) {
        if (!first)
            out += ",";
        first = false;
        out += "\"" + name + "\":";
        appendU64(out, m.findCounter(name)->get());
    }
    out += "},\"gauges\":{";
    out += "\"shm.used_bytes\":";
    appendU64(out, m.shm_used_bytes.get());
    out += ",\"shm.live_allocs\":";
    appendU64(out, m.shm_live_allocs.get());
    out += ",\"shm.arena_highwater\":";
    appendU64(out, m.shm_highwater_bytes.get());
    out += ",\"dma.pool_free\":";
    appendU64(out, m.dma_pool_free.get());
    out += ",\"dma.pool_buffers\":";
    appendU64(out, m.dma_pool_buffers.get());
    out += ",\"registry.score_queue_depth\":";
    appendU64(out, m.reg_score_queue_depth.get());
    out += ",\"serve.tenants\":";
    appendU64(out, m.serve_tenants.get());
    out += ",\"serve.queue_depth\":";
    appendU64(out, m.serve_queue_depth.get());
    for (const std::string &name : m.gaugeNames()) {
        out += ",\"" + name + "\":";
        appendU64(out, m.findGauge(name)->get());
    }
    out += "},\"histograms\":{";

    struct NamedHist
    {
        const char *name;
        const Histogram *h;
    };
    const NamedHist hists[] = {
        {"shm.alloc_bytes", &m.shm_alloc_bytes},
        {"dma.credit_stall_ns", &m.dma_credit_stall_ns},
        {"dma.overlap_permille", &m.dma_overlap_permille},
        {"policy.util_permille", &m.policy_util_permille},
        {"registry.fv_len", &m.reg_fv_len},
        {"registry.score_batch", &m.reg_score_batch},
        {"registry.score_queue_ns", &m.reg_score_queue_ns},
        {"serve.latency_ns", &m.serve_latency_ns},
        {"serve.batch", &m.serve_batch},
    };
    first = true;
    for (const auto &[name, h] : hists) {
        if (h->count() == 0)
            continue;
        if (!first)
            out += ",";
        first = false;
        out += "\"" + std::string(name) + "\":";
        appendHistogram(out, *h);
    }
    out += "},\"stages\":{";
    first = true;
    for (std::size_t s = 0; s < static_cast<std::size_t>(Stage::kCount); ++s) {
        const ApiHistograms &fam = m.stage(static_cast<Stage>(s));
        bool any = false;
        for (std::uint32_t a = 0; a < ApiHistograms::kMaxApi; ++a)
            if (fam.at(a).count() > 0 && fam.nameAt(a))
                any = true;
        if (!any)
            continue;
        if (!first)
            out += ",";
        first = false;
        out += "\"" + std::string(stageName(static_cast<Stage>(s))) + "\":{";
        bool first_api = true;
        for (std::uint32_t a = 0; a < ApiHistograms::kMaxApi; ++a) {
            if (fam.at(a).count() == 0 || !fam.nameAt(a))
                continue;
            if (!first_api)
                out += ",";
            first_api = false;
            out += "\"" + escape(fam.nameAt(a)) + "\":";
            appendHistogram(out, fam.at(a));
        }
        out += "}";
    }
    out += "}}";
    return out;
}

Status
writeMetricsJson(const std::string &path, const Metrics &m)
{
    return writeFile(path, metricsJsonObject(m) + "\n");
}

} // namespace lake::obs
