#include "obs/metrics.h"

namespace lake::obs {

const char *
stageName(Stage s)
{
    switch (s) {
    case Stage::Rpc:
        return "rpc";
    case Stage::Send:
        return "send";
    case Stage::Dispatch:
        return "dispatch";
    case Stage::Execute:
        return "execute";
    case Stage::kCount:
        break;
    }
    return "?";
}

Metrics &
Metrics::global()
{
    static Metrics m;
    return m;
}

Counter &
Metrics::counter(const std::string &name)
{
    std::lock_guard<std::mutex> lock(named_mu_);
    return counters_[name];
}

Gauge &
Metrics::gauge(const std::string &name)
{
    std::lock_guard<std::mutex> lock(named_mu_);
    return gauges_[name];
}

std::vector<std::string>
Metrics::counterNames() const
{
    std::lock_guard<std::mutex> lock(named_mu_);
    std::vector<std::string> out;
    out.reserve(counters_.size());
    for (const auto &[name, c] : counters_)
        out.push_back(name);
    return out;
}

std::vector<std::string>
Metrics::gaugeNames() const
{
    std::lock_guard<std::mutex> lock(named_mu_);
    std::vector<std::string> out;
    out.reserve(gauges_.size());
    for (const auto &[name, g] : gauges_)
        out.push_back(name);
    return out;
}

const Counter *
Metrics::findCounter(const std::string &name) const
{
    std::lock_guard<std::mutex> lock(named_mu_);
    auto it = counters_.find(name);
    return it == counters_.end() ? nullptr : &it->second;
}

const Gauge *
Metrics::findGauge(const std::string &name) const
{
    std::lock_guard<std::mutex> lock(named_mu_);
    auto it = gauges_.find(name);
    return it == gauges_.end() ? nullptr : &it->second;
}

void
Metrics::reset()
{
    shm_allocs.reset();
    shm_frees.reset();
    shm_alloc_failures.reset();
    shm_used_bytes.reset();
    shm_live_allocs.reset();
    shm_highwater_bytes.reset();
    shm_alloc_bytes.reset();
    dma_acquires.reset();
    dma_releases.reset();
    dma_credit_stalls.reset();
    dma_sheds.reset();
    dma_gathers.reset();
    dma_gathered_vectors.reset();
    dma_pool_free.reset();
    dma_pool_buffers.reset();
    dma_credit_stall_ns.reset();
    dma_overlap_permille.reset();
    policy_decide_cpu.reset();
    policy_decide_gpu.reset();
    policy_fallback_overrides.reset();
    policy_util_permille.reset();
    reg_capture_begins.reset();
    reg_features_captured.reset();
    reg_commits.reset();
    reg_scores.reset();
    reg_pack_bytes.reset();
    reg_capture_ns.reset();
    reg_fv_len.reset();
    reg_async_submits.reset();
    reg_async_sheds.reset();
    reg_async_rejects.reset();
    reg_score_flushes.reset();
    reg_score_queue_depth.reset();
    reg_score_batch.reset();
    reg_score_queue_ns.reset();
    serve_arrivals.reset();
    serve_admits.reset();
    serve_bucket_rejects.reset();
    serve_queue_sheds.reset();
    serve_backpressure.reset();
    serve_completions.reset();
    serve_failures.reset();
    serve_tenants.reset();
    serve_queue_depth.reset();
    serve_latency_ns.reset();
    serve_batch.reset();
    for (auto &s : stages_)
        s.reset();
    std::lock_guard<std::mutex> lock(named_mu_);
    for (auto &[name, c] : counters_)
        c.reset();
    for (auto &[name, g] : gauges_)
        g.reset();
}

} // namespace lake::obs
