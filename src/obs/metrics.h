#ifndef LAKE_OBS_METRICS_H
#define LAKE_OBS_METRICS_H

/**
 * @file
 * Central metrics registry: counters, gauges and fixed-memory
 * log-bucketed histograms.
 *
 * Two tiers with different lookup costs:
 *
 *  - Hot-path families are plain members (shm, policy, registry
 *    counters and the per-ApiId stage histograms): instrumented sites
 *    touch fixed storage with no name lookup and no allocation, gated
 *    on a single relaxed load so the disabled path costs one branch.
 *  - Name-keyed counters/gauges (`counter("remote.calls")`) back the
 *    RemoteStats facade and anything a bench wants to publish ad hoc;
 *    lookup allocates on first use only and callers are expected to
 *    cache the returned reference if they are hot.
 *
 * Everything is fixed-memory after registration: a histogram is 64
 * power-of-two buckets regardless of how many samples it absorbs.
 */

#include <atomic>
#include <bit>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace lake::obs {

/** Monotonic counter. Relaxed atomics; exact under quiescence. */
class Counter
{
  public:
    void add(std::uint64_t d = 1) { v_.fetch_add(d, std::memory_order_relaxed); }
    /** Facade overwrite, for mirroring externally-owned counters. */
    void set(std::uint64_t v) { v_.store(v, std::memory_order_relaxed); }
    std::uint64_t get() const { return v_.load(std::memory_order_relaxed); }
    void reset() { v_.store(0, std::memory_order_relaxed); }

  private:
    std::atomic<std::uint64_t> v_{0};
};

/** Last-write-wins instantaneous value. */
class Gauge
{
  public:
    void set(std::uint64_t v) { v_.store(v, std::memory_order_relaxed); }
    std::uint64_t get() const { return v_.load(std::memory_order_relaxed); }
    void reset() { v_.store(0, std::memory_order_relaxed); }

  private:
    std::atomic<std::uint64_t> v_{0};
};

/**
 * Log-bucketed histogram over unsigned samples (typically nanoseconds
 * or byte counts). Bucket i >= 1 holds values whose bit width is i,
 * i.e. [2^(i-1), 2^i); bucket 0 holds only zero. 64 buckets cover the
 * full uint64 range in fixed memory.
 */
class Histogram
{
  public:
    static constexpr int kBuckets = 64;

    /** Bucket index for a value: its bit width, clamped. */
    static int
    bucketOf(std::uint64_t v)
    {
        return std::min<int>(std::bit_width(v), kBuckets - 1);
    }

    /** Smallest value that lands in bucket @p i. */
    static std::uint64_t
    bucketLo(int i)
    {
        return i == 0 ? 0 : 1ull << (i - 1);
    }

    void
    record(std::uint64_t v)
    {
        counts_[bucketOf(v)].fetch_add(1, std::memory_order_relaxed);
        count_.fetch_add(1, std::memory_order_relaxed);
        sum_.fetch_add(v, std::memory_order_relaxed);
        std::uint64_t prev = max_.load(std::memory_order_relaxed);
        while (v > prev &&
               !max_.compare_exchange_weak(prev, v, std::memory_order_relaxed))
            ;
    }

    std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
    std::uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }
    std::uint64_t max() const { return max_.load(std::memory_order_relaxed); }
    std::uint64_t
    bucketCount(int i) const
    {
        return counts_[i].load(std::memory_order_relaxed);
    }

    void
    reset()
    {
        for (auto &c : counts_)
            c.store(0, std::memory_order_relaxed);
        count_.store(0, std::memory_order_relaxed);
        sum_.store(0, std::memory_order_relaxed);
        max_.store(0, std::memory_order_relaxed);
    }

  private:
    std::atomic<std::uint64_t> counts_[kBuckets]{};
    std::atomic<std::uint64_t> count_{0};
    std::atomic<std::uint64_t> sum_{0};
    std::atomic<std::uint64_t> max_{0};
};

/** Remoting lifecycle stages with per-ApiId latency histograms. */
enum class Stage : std::uint8_t
{
    Rpc = 0,      //!< kernel-side call issue -> response (or timeout)
    Send,         //!< kernel-side marshal + channel send
    Dispatch,     //!< daemon-side decode + dispatch
    Execute,      //!< daemon-side API body execution
    kCount,
};

/** Display name for a stage. */
const char *stageName(Stage s);

/**
 * Latency histograms keyed by ApiId within one stage. Fixed array:
 * the remoting wire has a small closed set of API ids. The API name
 * is borrowed from the caller (a literal from wire.h's apiName) so
 * this layer does not depend on remote/.
 */
class ApiHistograms
{
  public:
    /** Largest ApiId value storable; larger ids share a spill slot. */
    static constexpr std::uint32_t kMaxApi = 32;

    /** Records @p v for @p api, remembering its display name. */
    void
    record(std::uint32_t api, const char *api_name, std::uint64_t v)
    {
        std::uint32_t slot = api < kMaxApi ? api : kMaxApi - 1;
        names_[slot].store(api_name, std::memory_order_relaxed);
        hist_[slot].record(v);
    }

    const Histogram &at(std::uint32_t slot) const { return hist_[slot]; }
    const char *
    nameAt(std::uint32_t slot) const
    {
        return names_[slot].load(std::memory_order_relaxed);
    }

    void
    reset()
    {
        for (auto &h : hist_)
            h.reset();
    }

  private:
    Histogram hist_[kMaxApi];
    std::atomic<const char *> names_[kMaxApi]{};
};

/**
 * Process-wide metrics registry. Like the Tracer, disabled by default;
 * instrumented sites check enabled() (one relaxed load) before
 * touching any family.
 */
class Metrics
{
  public:
    static Metrics &global();

    void
    setEnabled(bool on)
    {
        enabled_.store(on, std::memory_order_relaxed);
    }
    bool
    enabled() const
    {
        return enabled_.load(std::memory_order_relaxed);
    }

    // ---- hot-path families: fixed storage, no lookup ----

    Counter shm_allocs;
    Counter shm_frees;
    Counter shm_alloc_failures;
    Gauge shm_used_bytes;
    Gauge shm_live_allocs;
    Gauge shm_highwater_bytes; //!< arena_highwater: peak bytes handed out
    Histogram shm_alloc_bytes;

    // Streaming DMA orchestration (DESIGN.md §10).
    Counter dma_acquires;
    Counter dma_releases;
    Counter dma_credit_stalls;
    Counter dma_sheds;
    Counter dma_gathers;
    Counter dma_gathered_vectors;
    Gauge dma_pool_free;            //!< pool occupancy: free buffers
    Gauge dma_pool_buffers;         //!< pool size (all classes)
    Histogram dma_credit_stall_ns;  //!< virtual ns blocked per stall
    Histogram dma_overlap_permille; //!< non-blocked share per sync window

    Counter policy_decide_cpu;
    Counter policy_decide_gpu;
    Counter policy_fallback_overrides;
    Histogram policy_util_permille; //!< utilization input, 0-1000

    // Sharded device fleet (DESIGN.md §13). Per-device lanes are
    // name-keyed ("fleet.dev<i>.*", FleetRouter::publishMetrics).
    Counter fleet_migrations; //!< sticky placements moved devices
    Counter fleet_setdevice;  //!< CuSetDevice switches actually sent

    Counter reg_capture_begins;
    Counter reg_features_captured;
    Counter reg_commits;
    Counter reg_scores;
    Counter reg_pack_bytes;  //!< bytes staged/gathered for scoring
    Counter reg_capture_ns;  //!< wall ns spent in capture calls
    Histogram reg_fv_len;

    // Async scoring service (DESIGN.md §7).
    Counter reg_async_submits;
    Counter reg_async_sheds;
    Counter reg_async_rejects;
    Counter reg_score_flushes;
    Gauge reg_score_queue_depth;    //!< pending vectors, all registries
    Histogram reg_score_batch;      //!< coalesced vectors per flush
    Histogram reg_score_queue_ns;   //!< submit -> scored, virtual ns

    // Multi-tenant serving front end (DESIGN.md §11).
    Counter serve_arrivals;
    Counter serve_admits;
    Counter serve_bucket_rejects;   //!< non-conformant at admission
    Counter serve_queue_sheds;      //!< tenant queue full
    Counter serve_backpressure;     //!< ScoreServer pushback, re-queued
    Counter serve_completions;
    Counter serve_failures;         //!< shed downstream / teardown
    Gauge serve_tenants;            //!< simulated tenant population
    Gauge serve_queue_depth;        //!< admitted, undispatched requests
    Histogram serve_latency_ns;     //!< arrival -> scored, virtual ns
    Histogram serve_batch;          //!< coalesced batch each ride took

    /** Per-ApiId latency histograms for one remoting stage. */
    ApiHistograms &
    stage(Stage s)
    {
        return stages_[static_cast<std::size_t>(s)];
    }
    const ApiHistograms &
    stage(Stage s) const
    {
        return stages_[static_cast<std::size_t>(s)];
    }

    // ---- name-keyed registry (facade / ad hoc) ----

    /**
     * Returns the counter registered under @p name, creating it on
     * first use. Allocation happens only then; hot callers cache the
     * reference.
     */
    Counter &counter(const std::string &name);

    /** Returns the gauge registered under @p name. */
    Gauge &gauge(const std::string &name);

    /** Registered counter names, sorted (for export). */
    std::vector<std::string> counterNames() const;
    /** Registered gauge names, sorted (for export). */
    std::vector<std::string> gaugeNames() const;

    /** Looks up a counter without creating it; nullptr when absent. */
    const Counter *findCounter(const std::string &name) const;
    /** Looks up a gauge without creating it; nullptr when absent. */
    const Gauge *findGauge(const std::string &name) const;

    /** Zeroes every family and named entry (names stay registered). */
    void reset();

  private:
    Metrics() = default;

    std::atomic<bool> enabled_{false};
    ApiHistograms stages_[static_cast<std::size_t>(Stage::kCount)];

    mutable std::mutex named_mu_;
    // node-based maps: references stay valid across inserts
    std::map<std::string, Counter> counters_;
    std::map<std::string, Gauge> gauges_;
};

} // namespace lake::obs

#endif // LAKE_OBS_METRICS_H
