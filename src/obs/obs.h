#ifndef LAKE_OBS_OBS_H
#define LAKE_OBS_OBS_H

/**
 * @file
 * Facade for the observability layer: one config knob that core::Lake
 * (or a bench) applies to the process-wide Tracer and Metrics.
 */

#include <cstdlib>
#include <string>

#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace lake::obs {

/**
 * Observability knobs, carried on core::LakeConfig. Everything
 * defaults to off: the uninstrumented virtual-time outputs are the
 * contract, and tracing/metrics only observe, never perturb.
 */
struct ObsConfig
{
    bool trace = false;   //!< record span/instant events
    bool metrics = false; //!< maintain counters/gauges/histograms
    /** When non-empty, Lake writes the Chrome trace here on teardown. */
    std::string trace_path;
};

/**
 * Trace path requested via the LAKE_OBS_TRACE environment variable;
 * nullptr when unset or empty. Lets a bench opt into tracing without
 * a command-line flag (its stdout must stay byte-identical).
 */
inline const char *
envTracePath()
{
    const char *p = std::getenv("LAKE_OBS_TRACE");
    return p && *p ? p : nullptr;
}

/**
 * Applies @p cfg to the global Tracer and Metrics. The LAKE_OBS_TRACE
 * environment opt-in also enables tracing, so harnesses whose Lake
 * instances are constructed deep inside library code (e.g. the e2e
 * storage rig) can be traced without plumbing a config through.
 */
inline void
configure(const ObsConfig &cfg)
{
    Tracer::global().setEnabled(cfg.trace || envTracePath() != nullptr);
    Metrics::global().setEnabled(cfg.metrics);
}

} // namespace lake::obs

#endif // LAKE_OBS_OBS_H
