#ifndef LAKE_OBS_EXPORT_H
#define LAKE_OBS_EXPORT_H

/**
 * @file
 * Exporters for the trace recorder and metrics registry.
 *
 *  - Chrome trace-event JSON: loadable in Perfetto or chrome://tracing.
 *    Each Side renders as its own process lane (kernel stub, daemon,
 *    runtime, device), spans carry their command seq as both an "id"
 *    and an arg so kernel-side and daemon-side halves of the same
 *    command correlate visually.
 *  - Metrics JSON: one object with counters, gauges, histograms and
 *    the per-stage / per-ApiId latency families, shaped so bench
 *    harnesses can splice it into BENCH_*.json next to the provenance
 *    block.
 */

#include <string>
#include <vector>

#include "base/status.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace lake::obs {

/** Renders @p events as a Chrome trace-event JSON document. */
std::string chromeTraceJson(const std::vector<TraceEvent> &events);

/**
 * Snapshots the global Tracer and writes the Chrome JSON to @p path.
 */
Status writeChromeTrace(const std::string &path);

/**
 * Serializes @p m as one JSON object (no trailing newline), suitable
 * for embedding under a "metrics" key in a larger document. Empty
 * histograms and stages are omitted.
 */
std::string metricsJsonObject(const Metrics &m = Metrics::global());

/** Writes the metrics object (plus newline) to @p path. */
Status writeMetricsJson(const std::string &path,
                        const Metrics &m = Metrics::global());

} // namespace lake::obs

#endif // LAKE_OBS_EXPORT_H
