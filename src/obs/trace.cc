#include "obs/trace.h"

#include <algorithm>

namespace lake::obs {

Tracer &
Tracer::global()
{
    static Tracer t;
    return t;
}

void
Tracer::record(Side side, const char *cat, const char *name, Nanos ts,
               Nanos dur, std::uint64_t id, const char *a0n, std::uint64_t a0,
               const char *a1n, std::uint64_t a1, bool instant)
{
    Ring &ring = threadRing();
    TraceEvent &e = ring.events[ring.next % kRingCapacity];
    ++ring.next;
    e.name = name;
    e.cat = cat;
    e.arg0_name = a0n;
    e.arg1_name = a1n;
    e.arg0 = a0;
    e.arg1 = a1;
    e.id = id;
    e.ts = ts;
    e.dur = dur;
    e.order = order_.fetch_add(1, std::memory_order_relaxed);
    e.tid = ring.tid;
    e.side = side;
    e.instant = instant;
}

Tracer::Ring &
Tracer::threadRing()
{
    // The cached pointer stays valid for the thread's lifetime: rings
    // are owned by the (never-destroyed) global Tracer and clear()
    // resets their contents without freeing them.
    thread_local Ring *ring = nullptr;
    if (!ring) {
        std::lock_guard<std::mutex> lock(rings_mu_);
        rings_.push_back(
            std::make_unique<Ring>(static_cast<std::uint32_t>(rings_.size())));
        ring = rings_.back().get();
    }
    return *ring;
}

std::vector<TraceEvent>
Tracer::snapshot() const
{
    std::vector<TraceEvent> out;
    {
        std::lock_guard<std::mutex> lock(rings_mu_);
        for (const auto &ring : rings_) {
            std::uint64_t n = std::min<std::uint64_t>(ring->next,
                                                      kRingCapacity);
            std::uint64_t first = ring->next - n;
            for (std::uint64_t i = 0; i < n; ++i)
                out.push_back(ring->events[(first + i) % kRingCapacity]);
        }
    }
    std::sort(out.begin(), out.end(),
              [](const TraceEvent &a, const TraceEvent &b) {
                  return a.order < b.order;
              });
    return out;
}

std::uint64_t
Tracer::dropped() const
{
    std::lock_guard<std::mutex> lock(rings_mu_);
    std::uint64_t d = 0;
    for (const auto &ring : rings_)
        if (ring->next > kRingCapacity)
            d += ring->next - kRingCapacity;
    return d;
}

void
Tracer::clear()
{
    std::lock_guard<std::mutex> lock(rings_mu_);
    for (auto &ring : rings_)
        ring->next = 0;
    order_.store(0, std::memory_order_relaxed);
}

} // namespace lake::obs
