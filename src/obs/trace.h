#ifndef LAKE_OBS_TRACE_H
#define LAKE_OBS_TRACE_H

/**
 * @file
 * Low-overhead trace recorder for the remoting lifecycle.
 *
 * Design constraints, in priority order:
 *
 *  1. The off path must be invisible: every record call starts with a
 *     single relaxed atomic load and returns. No locks, no allocation,
 *     no clock reads. With tracing off (the default) the virtual-time
 *     bench outputs stay byte-identical to an uninstrumented build.
 *  2. Events never advance virtual time. Call sites pass timestamps
 *     they already computed (or the recorder reads the bound Clock
 *     without charging anything); the recorder is an observer only.
 *  3. No allocation per event. Event names, categories and argument
 *     names must be string literals (const char* is stored, not
 *     copied); payloads are scalars. Each thread writes into its own
 *     fixed-capacity ring, registered once on first use.
 *
 * Cross-thread ordering: a global relaxed atomic counter stamps every
 * event with a program-order sequence number; snapshot() merges the
 * per-thread rings and sorts by it, so exported traces interleave
 * threads in the order the events actually happened.
 */

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "base/time.h"

namespace lake::obs {

/**
 * Which side of the kernel/daemon boundary an event belongs to. Maps
 * to the "pid" lane in the Chrome trace export so the kernel stub,
 * user daemon, runtime and device timelines render as separate tracks.
 */
enum class Side : std::uint8_t
{
    Kernel = 1,  //!< lakeLib, the in-kernel stub side
    Daemon = 2,  //!< lakeD, the user-space service side
    Runtime = 3, //!< core runtime: policy, registry, shm
    Gpu = 4,     //!< device engine timelines
};

/** Sentinel for events with no correlation id. */
inline constexpr std::uint64_t kNoId = ~0ull;

/** One recorded event. All strings are borrowed literals. */
struct TraceEvent
{
    const char *name;      //!< event name (literal)
    const char *cat;       //!< category (literal), e.g. "remote"
    const char *arg0_name; //!< nullptr when absent
    const char *arg1_name; //!< nullptr when absent
    std::uint64_t arg0;
    std::uint64_t arg1;
    std::uint64_t id;    //!< correlation id (command seq) or kNoId
    Nanos ts;            //!< virtual-time start
    Nanos dur;           //!< span length; 0 for instants
    std::uint64_t order; //!< global program-order stamp
    std::uint32_t tid;   //!< recorder thread lane (registration order)
    Side side;
    bool instant;
};

/**
 * Process-wide trace recorder. Off by default; every record call is a
 * single predictable branch until setEnabled(true).
 */
class Tracer
{
  public:
    /** Events retained per thread; older events are overwritten. */
    static constexpr std::size_t kRingCapacity = 8192;

    /** The process-wide recorder instance. */
    static Tracer &global();

    /** Turns recording on or off. Off is the default. */
    void
    setEnabled(bool on)
    {
        enabled_.store(on, std::memory_order_relaxed);
    }

    /** True when events are being recorded. */
    bool
    enabled() const
    {
        return enabled_.load(std::memory_order_relaxed);
    }

    /**
     * Binds the virtual clock that timestamps events from call sites
     * that do not carry their own (ShmArena, policies). The pointer is
     * borrowed; the owner must unbind before the clock dies. Records
     * made with no clock bound use ts 0.
     */
    void
    bindClock(const Clock *clock)
    {
        clock_.store(clock, std::memory_order_release);
    }

    /** Clears the bound clock. */
    void unbindClock() { clock_.store(nullptr, std::memory_order_release); }

    /** Current virtual time of the bound clock; 0 when none bound. */
    Nanos
    now() const
    {
        const Clock *c = clock_.load(std::memory_order_acquire);
        return c ? c->now() : 0;
    }

    /**
     * Records a completed span [begin, begin + dur). No-op when
     * disabled. All strings must be literals.
     */
    void
    span(Side side, const char *cat, const char *name, Nanos begin, Nanos dur,
         std::uint64_t id = kNoId, const char *a0n = nullptr,
         std::uint64_t a0 = 0, const char *a1n = nullptr, std::uint64_t a1 = 0)
    {
        if (!enabled_.load(std::memory_order_relaxed))
            return;
        record(side, cat, name, begin, dur, id, a0n, a0, a1n, a1, false);
    }

    /** Records a point-in-time event. No-op when disabled. */
    void
    instant(Side side, const char *cat, const char *name, Nanos ts,
            std::uint64_t id = kNoId, const char *a0n = nullptr,
            std::uint64_t a0 = 0, const char *a1n = nullptr,
            std::uint64_t a1 = 0)
    {
        if (!enabled_.load(std::memory_order_relaxed))
            return;
        record(side, cat, name, ts, 0, id, a0n, a0, a1n, a1, true);
    }

    /**
     * Copies out every retained event, merged across threads and
     * sorted by program order.
     */
    std::vector<TraceEvent> snapshot() const;

    /** Events lost to ring wrap-around since the last clear(). */
    std::uint64_t dropped() const;

    /**
     * Discards all retained events and resets the order stamp. Call
     * between runs, not concurrently with recording.
     */
    void clear();

  private:
    /** One thread's fixed-capacity event ring. */
    struct Ring
    {
        explicit Ring(std::uint32_t tid) : tid(tid)
        {
            events.resize(kRingCapacity);
        }

        std::vector<TraceEvent> events;
        std::uint64_t next = 0; //!< total events written (mod = slot)
        std::uint32_t tid;
    };

    Tracer() = default;

    void record(Side side, const char *cat, const char *name, Nanos ts,
                Nanos dur, std::uint64_t id, const char *a0n,
                std::uint64_t a0, const char *a1n, std::uint64_t a1,
                bool instant);

    /** Returns this thread's ring, registering it on first use. */
    Ring &threadRing();

    std::atomic<bool> enabled_{false};
    std::atomic<const Clock *> clock_{nullptr};
    std::atomic<std::uint64_t> order_{0};

    mutable std::mutex rings_mu_; //!< guards rings_ vector shape
    std::vector<std::unique_ptr<Ring>> rings_;
};

} // namespace lake::obs

#endif // LAKE_OBS_TRACE_H
