#include "registry/registry.h"

#include <utility>

#include "base/logging.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace lake::registry {

std::uint64_t
FeatureVector::get(std::uint64_t key) const
{
    auto it = values.find(key);
    if (it == values.end() || it->second.empty())
        return 0;
    return it->second[0];
}

std::uint64_t
FeatureVector::get(const std::string &name) const
{
    return get(featureKey(name));
}

Registry::Registry(std::string name, std::string sys, Schema schema,
                   std::size_t window)
    : name_(std::move(name)), sys_(std::move(sys)),
      schema_(std::move(schema)),
      open_values_(std::max<std::size_t>(schema_.featureCount(), 1) * 2),
      ring_(window)
{
    LAKE_ASSERT(schema_.featureCount() > 0,
                "registry %s/%s: empty schema", sys_.c_str(),
                name_.c_str());
}

void
Registry::beginFvCapture(Nanos ts)
{
    // The open map is intentionally *not* cleared: features like the
    // paper's pend_ios are incrementally maintained counters whose
    // value must persist across vectors; point-in-time features are
    // simply overwritten by the next captureFeature call.
    //
    // begin-while-open is a forward re-stamp (see the header). A
    // backwards re-stamp would commit a window claiming to start
    // before features it already holds were captured — refuse it
    // instead of quietly rewinding open_begin_.
    LAKE_ASSERT(!capture_open_ || ts >= open_begin_,
                "%s/%s: begin at %llu rewinds open capture begun at %llu",
                sys_.c_str(), name_.c_str(),
                static_cast<unsigned long long>(ts),
                static_cast<unsigned long long>(open_begin_));
    open_begin_ = ts;
    capture_open_ = true;
    auto &m = obs::Metrics::global();
    if (m.enabled())
        m.reg_capture_begins.add();
    auto &tr = obs::Tracer::global();
    if (tr.enabled())
        tr.instant(obs::Side::Runtime, "registry", "fv.begin", ts);
}

void
Registry::captureFeature(std::uint64_t key, std::uint64_t value)
{
    LAKE_ASSERT(schema_.find(key) != nullptr,
                "capture of undeclared feature key in %s/%s",
                sys_.c_str(), name_.c_str());
    open_values_.put(key, value);
    auto &m = obs::Metrics::global();
    if (m.enabled())
        m.reg_features_captured.add();
}

void
Registry::captureFeature(const std::string &name, std::uint64_t value)
{
    captureFeature(featureKey(name), value);
}

void
Registry::captureFeatureIncr(std::uint64_t key, std::int64_t delta)
{
    LAKE_ASSERT(schema_.find(key) != nullptr,
                "capture of undeclared feature key in %s/%s",
                sys_.c_str(), name_.c_str());
    open_values_.add(key, delta);
    auto &m = obs::Metrics::global();
    if (m.enabled())
        m.reg_features_captured.add();
}

void
Registry::captureFeatureIncr(const std::string &name, std::int64_t delta)
{
    captureFeatureIncr(featureKey(name), delta);
}

void
Registry::commitFvCapture(Nanos ts)
{
    LAKE_ASSERT(capture_open_, "%s/%s: commit without open capture",
                sys_.c_str(), name_.c_str());

    FeatureVector fv;
    fv.ts_begin = open_begin_;
    fv.ts_end = ts;

    open_values_.forEach([&](std::uint64_t key, std::uint64_t value) {
        const FeatureSpec *spec = schema_.find(key);
        LAKE_ASSERT(spec != nullptr, "undeclared key slipped into map");
        std::vector<std::uint64_t> entries(spec->entries, 0);
        entries[0] = value;
        if (spec->entries > 1 && has_last_) {
            // Inherit history: previous entry i becomes entry i+1.
            auto prev = last_committed_.values.find(key);
            if (prev != last_committed_.values.end()) {
                for (std::uint32_t i = 1; i < spec->entries; ++i) {
                    if (i - 1 < prev->second.size())
                        entries[i] = prev->second[i - 1];
                }
            }
        }
        fv.values.emplace(key, std::move(entries));
    });

    std::size_t fv_len = fv.values.size();
    last_committed_ = fv;
    has_last_ = true;
    ring_.push(std::move(fv));

    auto &m = obs::Metrics::global();
    if (m.enabled()) {
        m.reg_commits.add();
        m.reg_fv_len.record(fv_len);
    }
    auto &tr = obs::Tracer::global();
    if (tr.enabled())
        tr.span(obs::Side::Runtime, "registry", "fv.capture", open_begin_,
                ts - open_begin_, obs::kNoId, "features", fv_len);

    // Re-open immediately so incremental captures never race a closed
    // window; the paper's case study likewise begins the next capture
    // right after commit.
    open_begin_ = ts;
}

std::vector<FeatureVector>
Registry::getFeatures(std::optional<Nanos> ts) const
{
    std::vector<FeatureVector> out;
    if (!ts.has_value())
        return ring_.snapshot();
    for (std::size_t i = 0; i < ring_.size(); ++i) {
        const FeatureVector &fv = ring_.at(i);
        if (fv.ts_begin <= *ts && *ts <= fv.ts_end) {
            out.push_back(fv);
            break;
        }
    }
    return out;
}

void
Registry::truncateFeatures(std::optional<Nanos> ts)
{
    std::size_t keep_newest = schema_.hasHistory() ? 1 : 0;
    while (ring_.size() > keep_newest) {
        const FeatureVector &oldest = ring_.front();
        if (ts.has_value() && oldest.ts_end >= *ts)
            break;
        ring_.pop();
    }
}

Status
Registry::registerClassifier(Arch arch, Classifier fn)
{
    switch (arch) {
      case Arch::Cpu: cpu_classifier_ = std::move(fn); return Status::ok();
      case Arch::Gpu: gpu_classifier_ = std::move(fn); return Status::ok();
      case Arch::Xpu:
        break;
    }
    // No Engine::Xpu exists, so an Xpu classifier would be write-only:
    // registered, never dispatchable. Tell the caller instead.
    return Status(Code::InvalidArgument,
                  sys_ + "/" + name_ +
                      ": Arch::Xpu classifiers are not dispatchable "
                      "(policy::Engine has no Xpu leg)");
}

bool
Registry::hasClassifier(Arch arch) const
{
    switch (arch) {
      case Arch::Cpu: return cpu_classifier_ != nullptr;
      case Arch::Gpu: return gpu_classifier_ != nullptr;
      case Arch::Xpu: return false;
    }
    return false;
}

void
Registry::registerPolicy(std::unique_ptr<policy::ExecPolicy> p)
{
    policy_ = std::move(p);
}

std::vector<float>
Registry::scoreFeatures(const std::vector<FeatureVector> &fvs, Nanos now)
{
    if (fvs.empty())
        return {};
    LAKE_ASSERT(cpu_classifier_ != nullptr,
                "%s/%s: scoreFeatures without a CPU classifier",
                sys_.c_str(), name_.c_str());

    policy::Engine engine = policy::Engine::Cpu;
    if (policy_) {
        policy::PolicyInput in;
        in.batch_size = fvs.size();
        in.now = now;
        engine = policy_->decide(in);
    } else if (gpu_classifier_) {
        engine = policy::Engine::Gpu;
    }

    if (engine == policy::Engine::Gpu && !gpu_classifier_)
        engine = policy::Engine::Cpu; // no GPU variant installed

    last_engine_ = engine;
    auto &m = obs::Metrics::global();
    if (m.enabled())
        m.reg_scores.add();
    auto &tr = obs::Tracer::global();
    if (tr.enabled())
        tr.instant(obs::Side::Runtime, "registry", "fv.score", now,
                   obs::kNoId, "batch", fvs.size(),
                   engine == policy::Engine::Gpu ? "gpu" : "cpu", 1);
    Classifier &fn = engine == policy::Engine::Gpu ? gpu_classifier_
                                                   : cpu_classifier_;
    std::vector<float> scores = fn(fvs);
    LAKE_ASSERT(scores.size() == fvs.size(),
                "%s/%s: classifier returned %zu scores for %zu vectors",
                sys_.c_str(), name_.c_str(), scores.size(), fvs.size());
    return scores;
}

} // namespace lake::registry
