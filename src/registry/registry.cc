#include "registry/registry.h"

#include <chrono>
#include <utility>

#include "base/logging.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace lake::registry {

namespace {

/**
 * Host-clock capture timer feeding the reg_capture_ns counter: armed
 * only while metrics are enabled, so the default hot path pays one
 * predictable branch.
 */
class CaptureTimer
{
  public:
    explicit CaptureTimer(obs::Metrics &m) : m_(m), on_(m.enabled())
    {
        if (on_)
            t0_ = std::chrono::steady_clock::now();
    }
    ~CaptureTimer()
    {
        if (on_) {
            auto dt = std::chrono::steady_clock::now() - t0_;
            m_.reg_capture_ns.add(static_cast<std::uint64_t>(
                std::chrono::duration_cast<std::chrono::nanoseconds>(dt)
                    .count()));
        }
    }

  private:
    obs::Metrics &m_;
    bool on_;
    std::chrono::steady_clock::time_point t0_;
};

} // namespace

std::uint64_t
FeatureVector::get(std::uint64_t key) const
{
    auto it = values.find(key);
    if (it == values.end() || it->second.empty())
        return 0;
    return it->second[0];
}

std::uint64_t
FeatureVector::get(const std::string &name) const
{
    return get(featureKey(name));
}

Registry::Registry(std::string name, std::string sys, Schema schema,
                   std::size_t window)
    : name_(std::move(name)), sys_(std::move(sys)),
      schema_(std::move(schema)), window_(window),
      open_values_(std::max<std::size_t>(schema_.featureCount(), 1) * 2),
      ring_(window)
{
    LAKE_ASSERT(schema_.featureCount() > 0,
                "registry %s/%s: empty schema", sys_.c_str(),
                name_.c_str());
    col_keys_.reserve(schema_.featureCount());
    for (const FeatureSpec &spec : schema_.features())
        col_keys_.push_back(featureKey(spec.name));
}

void
Registry::attachSoa(std::unique_ptr<SoaStore> store)
{
    LAKE_ASSERT(store != nullptr, "attachSoa(nullptr)");
    LAKE_ASSERT(!capture_open_ && ring_.size() == 0 && !has_last_,
                "%s/%s: attachSoa after captures began", sys_.c_str(),
                name_.c_str());
    soa_ = std::move(store);
}

void
Registry::beginFvCapture(Nanos ts)
{
    // The open map is intentionally *not* cleared: features like the
    // paper's pend_ios are incrementally maintained counters whose
    // value must persist across vectors; point-in-time features are
    // simply overwritten by the next captureFeature call.
    //
    // begin-while-open is a forward re-stamp (see the header). A
    // backwards re-stamp would commit a window claiming to start
    // before features it already holds were captured — refuse it
    // instead of quietly rewinding open_begin_.
    LAKE_ASSERT(!capture_open_ || ts >= open_begin_,
                "%s/%s: begin at %llu rewinds open capture begun at %llu",
                sys_.c_str(), name_.c_str(),
                static_cast<unsigned long long>(ts),
                static_cast<unsigned long long>(open_begin_));
    open_begin_ = ts;
    capture_open_ = true;
    auto &m = obs::Metrics::global();
    if (m.enabled())
        m.reg_capture_begins.add();
    auto &tr = obs::Tracer::global();
    if (tr.enabled())
        tr.instant(obs::Side::Runtime, "registry", "fv.begin", ts);
}

void
Registry::captureFeature(std::uint64_t key, std::uint64_t value)
{
    auto &m = obs::Metrics::global();
    CaptureTimer timer(m);
    if (soa_) {
        std::uint32_t col = schema_.columnOf(key);
        LAKE_ASSERT(col != Schema::kNoColumn,
                    "capture of undeclared feature key in %s/%s",
                    sys_.c_str(), name_.c_str());
        soa_->set(col, value);
    } else {
        LAKE_ASSERT(schema_.find(key) != nullptr,
                    "capture of undeclared feature key in %s/%s",
                    sys_.c_str(), name_.c_str());
        open_values_.put(key, value);
    }
    if (m.enabled())
        m.reg_features_captured.add();
}

void
Registry::captureFeature(const std::string &name, std::uint64_t value)
{
    captureFeature(featureKey(name), value);
}

void
Registry::captureFeatureIncr(std::uint64_t key, std::int64_t delta)
{
    auto &m = obs::Metrics::global();
    CaptureTimer timer(m);
    if (soa_) {
        std::uint32_t col = schema_.columnOf(key);
        LAKE_ASSERT(col != Schema::kNoColumn,
                    "capture of undeclared feature key in %s/%s",
                    sys_.c_str(), name_.c_str());
        soa_->add(col, delta);
    } else {
        LAKE_ASSERT(schema_.find(key) != nullptr,
                    "capture of undeclared feature key in %s/%s",
                    sys_.c_str(), name_.c_str());
        open_values_.add(key, delta);
    }
    if (m.enabled())
        m.reg_features_captured.add();
}

void
Registry::captureFeatureIncr(const std::string &name, std::int64_t delta)
{
    captureFeatureIncr(featureKey(name), delta);
}

void
Registry::captureFeatureCol(std::uint32_t col, std::uint64_t value)
{
    LAKE_ASSERT(col < col_keys_.size(),
                "capture of out-of-schema column %u in %s/%s", col,
                sys_.c_str(), name_.c_str());
    auto &m = obs::Metrics::global();
    CaptureTimer timer(m);
    if (soa_)
        soa_->set(col, value);
    else
        open_values_.put(col_keys_[col], value);
    if (m.enabled())
        m.reg_features_captured.add();
}

void
Registry::captureFeatureIncrCol(std::uint32_t col, std::int64_t delta)
{
    LAKE_ASSERT(col < col_keys_.size(),
                "capture of out-of-schema column %u in %s/%s", col,
                sys_.c_str(), name_.c_str());
    auto &m = obs::Metrics::global();
    CaptureTimer timer(m);
    if (soa_)
        soa_->add(col, delta);
    else
        open_values_.add(col_keys_[col], delta);
    if (m.enabled())
        m.reg_features_captured.add();
}

void
Registry::commitFvCapture(Nanos ts)
{
    LAKE_ASSERT(capture_open_, "%s/%s: commit without open capture",
                sys_.c_str(), name_.c_str());

    if (soa_) {
        // Slot seal + ring-index append: history inheritance, the
        // presence snapshot, and the float-row encode all happen inside
        // the store — no map walk, no allocation.
        std::size_t fv_len = soa_->seal(open_begin_, ts);
        auto &m = obs::Metrics::global();
        if (m.enabled()) {
            m.reg_commits.add();
            m.reg_fv_len.record(fv_len);
        }
        auto &tr = obs::Tracer::global();
        if (tr.enabled())
            tr.span(obs::Side::Runtime, "registry", "fv.capture",
                    open_begin_, ts - open_begin_, obs::kNoId,
                    "features", fv_len);
        open_begin_ = ts;
        return;
    }

    FeatureVector fv;
    fv.ts_begin = open_begin_;
    fv.ts_end = ts;

    open_values_.forEach([&](std::uint64_t key, std::uint64_t value) {
        const FeatureSpec *spec = schema_.find(key);
        LAKE_ASSERT(spec != nullptr, "undeclared key slipped into map");
        std::vector<std::uint64_t> entries(spec->entries, 0);
        entries[0] = value;
        if (spec->entries > 1 && has_last_) {
            // Inherit history: previous entry i becomes entry i+1.
            auto prev = last_committed_.values.find(key);
            if (prev != last_committed_.values.end()) {
                for (std::uint32_t i = 1; i < spec->entries; ++i) {
                    if (i - 1 < prev->second.size())
                        entries[i] = prev->second[i - 1];
                }
            }
        }
        fv.values.emplace(key, std::move(entries));
    });

    std::size_t fv_len = fv.values.size();
    last_committed_ = fv;
    has_last_ = true;
    ring_.push(std::move(fv));

    auto &m = obs::Metrics::global();
    if (m.enabled()) {
        m.reg_commits.add();
        m.reg_fv_len.record(fv_len);
    }
    auto &tr = obs::Tracer::global();
    if (tr.enabled())
        tr.span(obs::Side::Runtime, "registry", "fv.capture", open_begin_,
                ts - open_begin_, obs::kNoId, "features", fv_len);

    // Re-open immediately so incremental captures never race a closed
    // window; the paper's case study likewise begins the next capture
    // right after commit.
    open_begin_ = ts;
}

std::vector<FeatureVector>
Registry::getFeatures(std::optional<Nanos> ts) const
{
    std::vector<FeatureVector> out;
    if (soa_) {
        // Compatibility shim: materialize sealed slots into legacy
        // vectors with identical selection semantics.
        std::size_t n = soa_->sealedCount();
        for (std::size_t i = 0; i < n; ++i) {
            FeatureVector fv = soa_->materializeAt(i);
            if (!ts.has_value()) {
                out.push_back(std::move(fv));
            } else if (fv.ts_begin <= *ts && *ts <= fv.ts_end) {
                out.push_back(std::move(fv));
                break;
            }
        }
        return out;
    }
    if (!ts.has_value())
        return ring_.snapshot();
    for (std::size_t i = 0; i < ring_.size(); ++i) {
        const FeatureVector &fv = ring_.at(i);
        if (fv.ts_begin <= *ts && *ts <= fv.ts_end) {
            out.push_back(fv);
            break;
        }
    }
    return out;
}

void
Registry::truncateFeatures(std::optional<Nanos> ts)
{
    std::size_t keep_newest = schema_.hasHistory() ? 1 : 0;
    if (soa_) {
        soa_->truncate(ts, keep_newest);
        return;
    }
    while (ring_.size() > keep_newest) {
        const FeatureVector &oldest = ring_.front();
        if (ts.has_value() && oldest.ts_end >= *ts)
            break;
        ring_.pop();
    }
}

FvBatchView
Registry::batchView()
{
    LAKE_ASSERT(soa_ != nullptr, "%s/%s: batchView on the legacy plane",
                sys_.c_str(), name_.c_str());
    return soa_->viewAll();
}

FvBatchView
Registry::tailView(std::size_t n)
{
    LAKE_ASSERT(soa_ != nullptr, "%s/%s: tailView on the legacy plane",
                sys_.c_str(), name_.c_str());
    return soa_->viewTail(n);
}

Status
Registry::registerClassifier(Arch arch, Classifier fn)
{
    switch (arch) {
      case Arch::Cpu: cpu_classifier_ = std::move(fn); return Status::ok();
      case Arch::Gpu: gpu_classifier_ = std::move(fn); return Status::ok();
      case Arch::Xpu:
        break;
    }
    // No Engine::Xpu exists, so an Xpu classifier would be write-only:
    // registered, never dispatchable. Tell the caller instead.
    return Status(Code::InvalidArgument,
                  sys_ + "/" + name_ +
                      ": Arch::Xpu classifiers are not dispatchable "
                      "(policy::Engine has no Xpu leg)");
}

bool
Registry::hasClassifier(Arch arch) const
{
    switch (arch) {
      case Arch::Cpu: return cpu_classifier_ != nullptr;
      case Arch::Gpu: return gpu_classifier_ != nullptr;
      case Arch::Xpu: return false;
    }
    return false;
}

Status
Registry::registerViewClassifier(Arch arch, ViewClassifier fn)
{
    switch (arch) {
      case Arch::Cpu:
        cpu_view_classifier_ = std::move(fn);
        return Status::ok();
      case Arch::Gpu:
        gpu_view_classifier_ = std::move(fn);
        return Status::ok();
      case Arch::Xpu:
        break;
    }
    return Status(Code::InvalidArgument,
                  sys_ + "/" + name_ +
                      ": Arch::Xpu classifiers are not dispatchable "
                      "(policy::Engine has no Xpu leg)");
}

bool
Registry::hasViewClassifier(Arch arch) const
{
    switch (arch) {
      case Arch::Cpu: return cpu_view_classifier_ != nullptr;
      case Arch::Gpu: return gpu_view_classifier_ != nullptr;
      case Arch::Xpu: return false;
    }
    return false;
}

void
Registry::registerPolicy(std::unique_ptr<policy::ExecPolicy> p)
{
    policy_ = std::move(p);
}

policy::Engine
Registry::decideEngine(std::size_t batch, Nanos now)
{
    policy::Engine engine = policy::Engine::Cpu;
    if (policy_) {
        policy::PolicyInput in;
        in.batch_size = batch;
        in.now = now;
        engine = policy_->decide(in);
    } else if (gpu_classifier_ || gpu_view_classifier_) {
        engine = policy::Engine::Gpu;
    }
    return engine;
}

std::vector<float>
Registry::scoreFeatures(const std::vector<FeatureVector> &fvs, Nanos now)
{
    if (fvs.empty())
        return {};
    LAKE_ASSERT(cpu_classifier_ != nullptr,
                "%s/%s: scoreFeatures without a CPU classifier",
                sys_.c_str(), name_.c_str());

    policy::Engine engine = decideEngine(fvs.size(), now);
    if (engine == policy::Engine::Gpu && !gpu_classifier_)
        engine = policy::Engine::Cpu; // no GPU variant installed

    last_engine_ = engine;
    auto &m = obs::Metrics::global();
    if (m.enabled()) {
        m.reg_scores.add();
        // The legacy path stages every vector's map payload into the
        // classifier's featurize/pack step; the SoA view path moves 0.
        std::size_t staged = 0;
        for (const FeatureVector &fv : fvs)
            for (const auto &[key, entries] : fv.values)
                staged += entries.size() * sizeof(std::uint64_t);
        m.reg_pack_bytes.add(staged);
    }
    auto &tr = obs::Tracer::global();
    if (tr.enabled())
        tr.instant(obs::Side::Runtime, "registry", "fv.score", now,
                   obs::kNoId, "batch", fvs.size(),
                   engine == policy::Engine::Gpu ? "gpu" : "cpu", 1);
    Classifier &fn = engine == policy::Engine::Gpu ? gpu_classifier_
                                                   : cpu_classifier_;
    std::vector<float> scores = fn(fvs);
    LAKE_ASSERT(scores.size() == fvs.size(),
                "%s/%s: classifier returned %zu scores for %zu vectors",
                sys_.c_str(), name_.c_str(), scores.size(), fvs.size());
    return scores;
}

std::vector<float>
Registry::scoreFeatures(const FvBatchView &view, Nanos now)
{
    if (view.empty())
        return {};
    LAKE_ASSERT(cpu_view_classifier_ != nullptr ||
                    cpu_classifier_ != nullptr,
                "%s/%s: scoreFeatures(view) without a CPU classifier",
                sys_.c_str(), name_.c_str());

    policy::Engine engine = decideEngine(view.size(), now);
    if (engine == policy::Engine::Gpu && !gpu_view_classifier_ &&
        !gpu_classifier_)
        engine = policy::Engine::Cpu;

    last_engine_ = engine;
    auto &m = obs::Metrics::global();
    bool use_view = engine == policy::Engine::Gpu
                        ? gpu_view_classifier_ != nullptr
                        : cpu_view_classifier_ != nullptr;
    if (m.enabled()) {
        m.reg_scores.add();
        // Zero-copy dispatch stages nothing; the materialize fallback
        // counts the same staged bytes the legacy path would.
        if (!use_view)
            m.reg_pack_bytes.add(view.packBytesAvoided());
    }
    auto &tr = obs::Tracer::global();
    if (tr.enabled())
        tr.instant(obs::Side::Runtime, "registry", "fv.score", now,
                   obs::kNoId, "batch", view.size(),
                   engine == policy::Engine::Gpu ? "gpu" : "cpu", 1);

    std::vector<float> scores;
    if (use_view) {
        ViewClassifier &fn = engine == policy::Engine::Gpu
                                 ? gpu_view_classifier_
                                 : cpu_view_classifier_;
        scores = fn(view);
    } else {
        // Compatibility shim: a legacy-only registry still scores SoA
        // batches, paying the gather the view path eliminates.
        Classifier &fn = engine == policy::Engine::Gpu
                             ? gpu_classifier_
                             : cpu_classifier_;
        scores = fn(view.materialize());
    }
    LAKE_ASSERT(scores.size() == view.size(),
                "%s/%s: classifier returned %zu scores for %zu vectors",
                sys_.c_str(), name_.c_str(), scores.size(), view.size());
    return scores;
}

} // namespace lake::registry
