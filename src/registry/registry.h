#ifndef LAKE_REGISTRY_REGISTRY_H
#define LAKE_REGISTRY_REGISTRY_H

/**
 * @file
 * One feature registry: a named combination of a model, a feature-vector
 * schema, a capture window, and the classifier/policy hooks (§5).
 *
 * Concurrency model, per §5.3: while a capture is open, any thread may
 * call captureFeature / captureFeatureIncr — the open vector is a
 * lock-free map. begin/commit/get/truncate/score are registry-owner
 * operations (the subsystem that created the registry), serialized by
 * the caller the way the I/O path serializes them in the paper's case
 * study.
 */

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "base/lockfree_map.h"
#include "base/ring_buffer.h"
#include "base/status.h"
#include "base/time.h"
#include "policy/policy.h"
#include "registry/schema.h"
#include "registry/soa.h"

namespace lake::registry {

/**
 * A committed (frozen) feature vector:
 * <numfeatures, kvpair*, ts_begin, ts_end> in the paper's notation.
 */
struct FeatureVector
{
    Nanos ts_begin = 0;
    Nanos ts_end = 0;
    /** key -> entries; [0] most recent, [1..] history (§5.2). */
    std::unordered_map<std::uint64_t, std::vector<std::uint64_t>> values;

    /** Scalar read of a feature's most recent entry (0 if absent). */
    std::uint64_t get(std::uint64_t key) const;
    /** Scalar read by feature name. */
    std::uint64_t get(const std::string &name) const;
};

/** Which implementation a classifier targets (Table 1's arch column). */
enum class Arch
{
    Cpu,
    Gpu,
    Xpu, //!< any other accelerator
};

/**
 * Batch inference callback: scores one batch of feature vectors.
 * Registered per Arch; the active execution policy picks which runs.
 */
using Classifier =
    std::function<std::vector<float>(const std::vector<FeatureVector> &)>;

/**
 * Zero-copy batch inference callback over the SoA plane: scores a
 * pinned batch view directly (typically via view.matrixViews() into
 * the strided GEMM/kNN substrate). Registered alongside the legacy
 * Classifier; scoreFeatures(view) prefers it and falls back to
 * materializing for a legacy-only registry.
 */
using ViewClassifier = std::function<std::vector<float>(const FvBatchView &)>;

/**
 * A feature registry.
 */
class Registry
{
  public:
    /**
     * @param name   registry name (e.g. the block device, "sda1")
     * @param sys    owning subsystem (e.g. "bio_latency_prediction")
     * @param schema feature-vector format
     * @param window ring capacity in feature vectors
     */
    Registry(std::string name, std::string sys, Schema schema,
             std::size_t window);

    /** Registry name. */
    const std::string &name() const { return name_; }
    /** Owning subsystem. */
    const std::string &sys() const { return sys_; }
    /** Schema in force. */
    const Schema &schema() const { return schema_; }
    /** Ring capacity in feature vectors. */
    std::size_t window() const { return window_; }

    /**
     * Attaches the SoA data plane: capture/commit/get/truncate route
     * through @p store instead of the legacy hashmap path. Must run
     * before the first capture (the two planes don't interconvert
     * mid-stream); the manager attaches at createRegistry time.
     */
    void attachSoa(std::unique_ptr<SoaStore> store);

    /** The SoA store; nullptr on the legacy path. */
    SoaStore *soa() const { return soa_.get(); }

    /// @name Capture (Table 1: begin/capture/capture_incr/commit)
    /// @{

    /**
     * Opens a new feature vector with begin timestamp @p ts.
     *
     * Calling begin while a capture is already open is a *re-stamp*:
     * the open window's begin moves forward to @p ts and every feature
     * captured so far is kept (the case study re-arms its window on
     * the submission path without an intervening commit). A re-stamp
     * may never move time backwards — @p ts earlier than the open
     * begin panics, since it would fabricate a window that pretends to
     * predate its own features.
     */
    void beginFvCapture(Nanos ts);

    /** True while a capture window is open. */
    bool captureOpen() const { return capture_open_; }

    /**
     * Sets feature @p key on the open vector. Callable from any thread
     * while a capture is open. Unknown keys panic (schema bug).
     */
    void captureFeature(std::uint64_t key, std::uint64_t value);
    /** Name-keyed convenience overload. */
    void captureFeature(const std::string &name, std::uint64_t value);

    /** Atomically increments feature @p key by @p delta. */
    void captureFeatureIncr(std::uint64_t key, std::int64_t delta);
    /** Name-keyed convenience overload. */
    void captureFeatureIncr(const std::string &name, std::int64_t delta);

    /**
     * Column-indexed capture: the hash-free hot path. @p col is the
     * schema declaration order index (Schema::columnOf, interned once
     * by the instrumentation site). On the SoA plane this is a single
     * relaxed-atomic store into the open slot's column lane; on the
     * legacy plane it forwards to the key-based capture.
     */
    void captureFeatureCol(std::uint32_t col, std::uint64_t value);
    /** Column-indexed atomic increment. */
    void captureFeatureIncrCol(std::uint32_t col, std::int64_t delta);

    /**
     * Freezes the open vector with end timestamp @p ts and appends it
     * to the ring (overwriting the oldest when full). History features
     * inherit entries 1..N-1 from the previous committed vector.
     * Implicitly opens the next capture at @p ts so incremental
     * counters (pending I/Os) persist across vectors.
     */
    void commitFvCapture(Nanos ts);

    /// @}
    /// @name Batch retrieval (Table 1: get/truncate)
    /// @{

    /**
     * With a timestamp: the first vector whose [ts_begin, ts_end]
     * contains @p ts. Without (nullopt): the whole ring, oldest first.
     */
    std::vector<FeatureVector>
    getFeatures(std::optional<Nanos> ts = std::nullopt) const;

    /**
     * Removes vectors older than @p ts (all vectors when nullopt).
     * When the schema declares history features, the most recent
     * vector is always preserved so future vectors can populate their
     * historical entries (§5.4).
     */
    void truncateFeatures(std::optional<Nanos> ts = std::nullopt);

    /** Committed vectors currently in the ring. */
    std::size_t pendingCount() const
    {
        return soa_ ? soa_->sealedCount() : ring_.size();
    }

    /**
     * Pinned zero-copy view over every committed vector, oldest first
     * (SoA plane only; panics on the legacy plane). The view keeps its
     * slots' bytes immutable until it destructs — window wraps and
     * truncates defer recycling behind it.
     */
    FvBatchView batchView();

    /** Pinned view over the newest @p n committed vectors. */
    FvBatchView tailView(std::size_t n);

    /// @}
    /// @name Inference dispatch (Table 1: register/score)
    /// @{

    /**
     * Installs the classifier for @p arch.
     *
     * Only Cpu and Gpu are dispatchable: policy::Engine has no third
     * leg, so an Arch::Xpu registration used to land in a write-only
     * slot that scoreFeatures could never reach. It is now rejected
     * with InvalidArgument instead of silently swallowed.
     */
    Status registerClassifier(Arch arch, Classifier fn);

    /** True when a classifier is installed for @p arch. */
    bool hasClassifier(Arch arch) const;

    /** Installs the zero-copy batch-view classifier for @p arch (same
     *  Arch::Xpu rejection as registerClassifier). */
    Status registerViewClassifier(Arch arch, ViewClassifier fn);

    /** True when a view classifier is installed for @p arch. */
    bool hasViewClassifier(Arch arch) const;

    /** Installs the execution policy (owned by the registry). */
    void registerPolicy(std::unique_ptr<policy::ExecPolicy> p);

    /**
     * Runs inference on @p fvs: consults the policy (batch size = the
     * batch), dispatches to the chosen arch's classifier (falling back
     * to the CPU one when the GPU variant is absent), and returns one
     * score per vector.
     * @param now virtual time, given to the policy
     */
    std::vector<float> scoreFeatures(const std::vector<FeatureVector> &fvs,
                                     Nanos now);

    /**
     * Zero-copy batch-view overload: same policy decision (batch size =
     * view.size()), dispatched to the engine's view classifier when one
     * is registered — no gather, no pack, reg_pack_bytes += 0 — and
     * otherwise materialized through the legacy classifier (the
     * compatibility shim, which counts its staged bytes).
     */
    std::vector<float> scoreFeatures(const FvBatchView &view, Nanos now);

    /** Engine the last scoreFeatures dispatch used. */
    policy::Engine lastEngine() const { return last_engine_; }

    /// @}

  private:
    /** Picks the engine for a batch of @p batch vectors at @p now. */
    policy::Engine decideEngine(std::size_t batch, Nanos now);

    std::string name_;
    std::string sys_;
    Schema schema_;
    std::size_t window_;

    /** The open (capturing) vector. */
    LockFreeMap open_values_;
    Nanos open_begin_ = 0;
    bool capture_open_ = false;

    RingBuffer<FeatureVector> ring_;
    /** Copy of the newest committed vector, for history inheritance. */
    FeatureVector last_committed_;
    bool has_last_ = false;

    /** The SoA data plane; capture/commit/get/truncate route through
     *  it when attached (LakeConfig.soa_plane / LAKE_SOA). */
    std::unique_ptr<SoaStore> soa_;
    /** Column → key, for the legacy fallback of the col capture path. */
    std::vector<std::uint64_t> col_keys_;

    Classifier cpu_classifier_;
    Classifier gpu_classifier_;
    ViewClassifier cpu_view_classifier_;
    ViewClassifier gpu_view_classifier_;
    std::unique_ptr<policy::ExecPolicy> policy_;
    policy::Engine last_engine_ = policy::Engine::Cpu;
};

} // namespace lake::registry

#endif // LAKE_REGISTRY_REGISTRY_H
