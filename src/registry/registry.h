#ifndef LAKE_REGISTRY_REGISTRY_H
#define LAKE_REGISTRY_REGISTRY_H

/**
 * @file
 * One feature registry: a named combination of a model, a feature-vector
 * schema, a capture window, and the classifier/policy hooks (§5).
 *
 * Concurrency model, per §5.3: while a capture is open, any thread may
 * call captureFeature / captureFeatureIncr — the open vector is a
 * lock-free map. begin/commit/get/truncate/score are registry-owner
 * operations (the subsystem that created the registry), serialized by
 * the caller the way the I/O path serializes them in the paper's case
 * study.
 */

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "base/lockfree_map.h"
#include "base/ring_buffer.h"
#include "base/status.h"
#include "base/time.h"
#include "policy/policy.h"
#include "registry/schema.h"

namespace lake::registry {

/**
 * A committed (frozen) feature vector:
 * <numfeatures, kvpair*, ts_begin, ts_end> in the paper's notation.
 */
struct FeatureVector
{
    Nanos ts_begin = 0;
    Nanos ts_end = 0;
    /** key -> entries; [0] most recent, [1..] history (§5.2). */
    std::unordered_map<std::uint64_t, std::vector<std::uint64_t>> values;

    /** Scalar read of a feature's most recent entry (0 if absent). */
    std::uint64_t get(std::uint64_t key) const;
    /** Scalar read by feature name. */
    std::uint64_t get(const std::string &name) const;
};

/** Which implementation a classifier targets (Table 1's arch column). */
enum class Arch
{
    Cpu,
    Gpu,
    Xpu, //!< any other accelerator
};

/**
 * Batch inference callback: scores one batch of feature vectors.
 * Registered per Arch; the active execution policy picks which runs.
 */
using Classifier =
    std::function<std::vector<float>(const std::vector<FeatureVector> &)>;

/**
 * A feature registry.
 */
class Registry
{
  public:
    /**
     * @param name   registry name (e.g. the block device, "sda1")
     * @param sys    owning subsystem (e.g. "bio_latency_prediction")
     * @param schema feature-vector format
     * @param window ring capacity in feature vectors
     */
    Registry(std::string name, std::string sys, Schema schema,
             std::size_t window);

    /** Registry name. */
    const std::string &name() const { return name_; }
    /** Owning subsystem. */
    const std::string &sys() const { return sys_; }
    /** Schema in force. */
    const Schema &schema() const { return schema_; }

    /// @name Capture (Table 1: begin/capture/capture_incr/commit)
    /// @{

    /**
     * Opens a new feature vector with begin timestamp @p ts.
     *
     * Calling begin while a capture is already open is a *re-stamp*:
     * the open window's begin moves forward to @p ts and every feature
     * captured so far is kept (the case study re-arms its window on
     * the submission path without an intervening commit). A re-stamp
     * may never move time backwards — @p ts earlier than the open
     * begin panics, since it would fabricate a window that pretends to
     * predate its own features.
     */
    void beginFvCapture(Nanos ts);

    /** True while a capture window is open. */
    bool captureOpen() const { return capture_open_; }

    /**
     * Sets feature @p key on the open vector. Callable from any thread
     * while a capture is open. Unknown keys panic (schema bug).
     */
    void captureFeature(std::uint64_t key, std::uint64_t value);
    /** Name-keyed convenience overload. */
    void captureFeature(const std::string &name, std::uint64_t value);

    /** Atomically increments feature @p key by @p delta. */
    void captureFeatureIncr(std::uint64_t key, std::int64_t delta);
    /** Name-keyed convenience overload. */
    void captureFeatureIncr(const std::string &name, std::int64_t delta);

    /**
     * Freezes the open vector with end timestamp @p ts and appends it
     * to the ring (overwriting the oldest when full). History features
     * inherit entries 1..N-1 from the previous committed vector.
     * Implicitly opens the next capture at @p ts so incremental
     * counters (pending I/Os) persist across vectors.
     */
    void commitFvCapture(Nanos ts);

    /// @}
    /// @name Batch retrieval (Table 1: get/truncate)
    /// @{

    /**
     * With a timestamp: the first vector whose [ts_begin, ts_end]
     * contains @p ts. Without (nullopt): the whole ring, oldest first.
     */
    std::vector<FeatureVector>
    getFeatures(std::optional<Nanos> ts = std::nullopt) const;

    /**
     * Removes vectors older than @p ts (all vectors when nullopt).
     * When the schema declares history features, the most recent
     * vector is always preserved so future vectors can populate their
     * historical entries (§5.4).
     */
    void truncateFeatures(std::optional<Nanos> ts = std::nullopt);

    /** Committed vectors currently in the ring. */
    std::size_t pendingCount() const { return ring_.size(); }

    /// @}
    /// @name Inference dispatch (Table 1: register/score)
    /// @{

    /**
     * Installs the classifier for @p arch.
     *
     * Only Cpu and Gpu are dispatchable: policy::Engine has no third
     * leg, so an Arch::Xpu registration used to land in a write-only
     * slot that scoreFeatures could never reach. It is now rejected
     * with InvalidArgument instead of silently swallowed.
     */
    Status registerClassifier(Arch arch, Classifier fn);

    /** True when a classifier is installed for @p arch. */
    bool hasClassifier(Arch arch) const;

    /** Installs the execution policy (owned by the registry). */
    void registerPolicy(std::unique_ptr<policy::ExecPolicy> p);

    /**
     * Runs inference on @p fvs: consults the policy (batch size = the
     * batch), dispatches to the chosen arch's classifier (falling back
     * to the CPU one when the GPU variant is absent), and returns one
     * score per vector.
     * @param now virtual time, given to the policy
     */
    std::vector<float> scoreFeatures(const std::vector<FeatureVector> &fvs,
                                     Nanos now);

    /** Engine the last scoreFeatures dispatch used. */
    policy::Engine lastEngine() const { return last_engine_; }

    /// @}

  private:
    std::string name_;
    std::string sys_;
    Schema schema_;

    /** The open (capturing) vector. */
    LockFreeMap open_values_;
    Nanos open_begin_ = 0;
    bool capture_open_ = false;

    RingBuffer<FeatureVector> ring_;
    /** Copy of the newest committed vector, for history inheritance. */
    FeatureVector last_committed_;
    bool has_last_ = false;

    Classifier cpu_classifier_;
    Classifier gpu_classifier_;
    std::unique_ptr<policy::ExecPolicy> policy_;
    policy::Engine last_engine_ = policy::Engine::Cpu;
};

} // namespace lake::registry

#endif // LAKE_REGISTRY_REGISTRY_H
