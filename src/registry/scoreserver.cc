#include "registry/scoreserver.h"

#include <cstdlib>
#include <utility>

#include "base/logging.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "registry/manager.h"

namespace lake::registry {

namespace {

/** Parses a non-negative integer env var; @p fallback when unset/bad. */
std::size_t
envSize(const char *name, std::size_t fallback)
{
    const char *v = std::getenv(name);
    if (!v || !*v)
        return fallback;
    char *end = nullptr;
    unsigned long long parsed = std::strtoull(v, &end, 10);
    if (end == v || *end != '\0')
        return fallback;
    return static_cast<std::size_t>(parsed);
}

/**
 * The server whose flush lock this thread currently holds (callbacks
 * run under it). Lets a re-entrant submit() skip the inline flush
 * trigger — re-locking the non-recursive flush mutex would deadlock —
 * and lets scoreSync() called from a callback dispatch directly.
 */
thread_local const void *tls_flushing = nullptr;

/** Marks this thread as flushing @p s for the enclosing scope. */
class FlushScope
{
  public:
    explicit FlushScope(const void *s) : prev_(tls_flushing)
    {
        tls_flushing = s;
    }
    ~FlushScope() { tls_flushing = prev_; }

  private:
    const void *prev_;
};

} // namespace

void
ScoringConfig::applyEnv()
{
    max_batch = envSize("LAKE_SCORE_MAX_BATCH", max_batch);
    queue_capacity = envSize("LAKE_SCORE_QUEUE_CAP", queue_capacity);
    max_delay =
        static_cast<Nanos>(envSize("LAKE_SCORE_MAX_DELAY_US",
                                   static_cast<std::size_t>(max_delay / 1000))) *
        1000ull;
    shed_oldest = envSize("LAKE_SCORE_SHED", shed_oldest ? 1 : 0) != 0;
}

ScoreServer::ScoreServer(RegistryManager &mgr, Clock &clock,
                         ScoringConfig cfg)
    : mgr_(mgr), clock_(clock), cfg_(cfg)
{
    LAKE_ASSERT(cfg_.max_batch > 0, "scoring max_batch must be positive");
    LAKE_ASSERT(cfg_.queue_capacity > 0,
                "scoring queue_capacity must be positive");
}

ScoreServer::~ScoreServer()
{
    flushAll(clock_.now());
}

Status
ScoreServer::submit(const std::string &name, const std::string &sys,
                    std::vector<FeatureVector> fvs, Nanos deadline,
                    ScoreCallback cb)
{
    if (fvs.empty())
        return Status(Code::InvalidArgument, "empty score batch");
    const std::size_t n = fvs.size();
    Request req;
    req.fvs = std::move(fvs);
    req.deadline = deadline;
    req.cb = std::move(cb);
    return submitImpl(name, sys, std::move(req), n, /*is_view=*/false);
}

Status
ScoreServer::submitView(const std::string &name, const std::string &sys,
                        FvBatchView view, Nanos deadline, ScoreCallback cb)
{
    if (view.empty())
        return Status(Code::InvalidArgument, "empty score batch");
    const std::size_t n = view.size();
    Request req;
    req.view = std::move(view);
    req.deadline = deadline;
    req.cb = std::move(cb);
    return submitImpl(name, sys, std::move(req), n, /*is_view=*/true);
}

Status
ScoreServer::submitImpl(const std::string &name, const std::string &sys,
                        Request req, std::size_t n, bool is_view)
{
    Nanos now = clock_.now();
    if (req.deadline == 0)
        req.deadline = now + cfg_.max_delay;
    req.enqueued = now;
    const Nanos deadline = req.deadline;

    std::vector<Request> to_shed;
    bool trigger = false;
    std::size_t total_pending;
    {
        // The registry lock spans lookup *and* enqueue, so a racing
        // destroyRegistry() either runs entirely before (lookup fails)
        // or entirely after (failPending drains this request) — the
        // pointer can never dangle in the queue.
        std::unique_lock<std::mutex> rlock = mgr_.lockRegistries();
        Registry *reg = mgr_.findLocked(name, sys);
        if (reg == nullptr)
            return Status(Code::InvalidArgument,
                          "no registry " + sys + "/" + name);
        // A view request can also ride the zero-copy view classifier;
        // either CPU leg admits it (dispatch materializes if needed).
        bool admissible =
            reg->hasClassifier(Arch::Cpu) ||
            (is_view && reg->hasViewClassifier(Arch::Cpu));
        if (!admissible)
            return Status(Code::InvalidArgument,
                          sys + "/" + name + " has no CPU classifier");
        req.reg = reg;

        std::lock_guard<std::mutex> lock(mu_);
        Group &g = groups_[sys];
        RegQueue &rq = g.queues[name];

        if (rq.depth + n > cfg_.queue_capacity) {
            if (!cfg_.shed_oldest || n > cfg_.queue_capacity) {
                rejected_.fetch_add(1, std::memory_order_relaxed);
                auto &m = obs::Metrics::global();
                if (m.enabled())
                    m.reg_async_rejects.add();
                return Status(Code::ResourceExhausted,
                              sys + "/" + name + " score queue full (" +
                                  std::to_string(rq.depth) + " pending)");
            }
            while (rq.depth + n > cfg_.queue_capacity && !rq.q.empty()) {
                Request victim = std::move(rq.q.front());
                rq.q.pop_front();
                std::size_t vn = victim.size();
                rq.depth -= vn;
                g.depth -= vn;
                pending_ -= vn;
                to_shed.push_back(std::move(victim));
            }
            // The victims may have established g.due; recompute the
            // earliest deadline from the survivors so poll() does not
            // flush the remaining queue against a dead deadline.
            g.due = minDueLocked(g);
        }

        rq.q.push_back(std::move(req));
        rq.depth += n;
        g.depth += n;
        pending_ += n;
        if (g.due == 0 || deadline < g.due)
            g.due = deadline;
        trigger = g.depth >= cfg_.max_batch;
        total_pending = pending_;
    }

    submitted_.fetch_add(1, std::memory_order_relaxed);
    auto &m = obs::Metrics::global();
    if (m.enabled()) {
        m.reg_async_submits.add();
        m.reg_score_queue_depth.set(total_pending);
    }

    // Shed callbacks fire outside mu_ so they may re-submit. A shed
    // view request's pinned slots release when the victim destructs.
    if (!to_shed.empty()) {
        shed_.fetch_add(to_shed.size(), std::memory_order_relaxed);
        auto &tr = obs::Tracer::global();
        for (Request &victim : to_shed) {
            if (m.enabled())
                m.reg_async_sheds.add();
            if (tr.enabled())
                tr.instant(obs::Side::Runtime, "registry", "score.shed",
                           now, obs::kNoId, "vectors", victim.size());
            if (victim.cb) {
                ScoreResult res;
                res.status = Status(Code::ResourceExhausted,
                                    "shed by newer submission");
                res.enqueued = victim.enqueued;
                res.scored = now;
                victim.cb(res);
            }
        }
    }

    // A submit() from a score callback runs with flush_mu_ already
    // held by this thread: skip the inline trigger — the flushWhere
    // loop that invoked the callback re-scans the groups after its
    // dispatch returns and picks the new work up itself.
    if (trigger && tls_flushing != this)
        flushWhere(now, /*due_only=*/true);
    return Status::ok();
}

std::vector<ScoreServer::Request>
ScoreServer::drainGroupLocked(Group &g)
{
    // Name-ordered concatenation: deterministic regardless of which
    // thread's submission triggered the flush.
    std::vector<Request> out;
    for (auto &[name, rq] : g.queues) {
        for (Request &r : rq.q) {
            pending_ -= r.size();
            out.push_back(std::move(r));
        }
        rq.q.clear();
        rq.depth = 0;
    }
    g.depth = 0;
    g.due = 0;
    return out;
}

Nanos
ScoreServer::minDueLocked(const Group &g)
{
    Nanos due = 0;
    for (const auto &[name, rq] : g.queues)
        for (const Request &r : rq.q)
            if (due == 0 || r.deadline < due)
                due = r.deadline;
    return due;
}

std::size_t
ScoreServer::flushWhere(Nanos now, bool due_only)
{
    LAKE_ASSERT(tls_flushing != this,
                "poll()/flushAll() re-entered from a score callback");
    std::lock_guard<std::mutex> flock(flush_mu_);
    FlushScope in_flush(this);
    std::size_t batches = 0;
    for (;;) {
        std::string sys;
        std::vector<Request> reqs;
        {
            std::lock_guard<std::mutex> lock(mu_);
            for (auto &[s, g] : groups_) {
                if (g.depth == 0)
                    continue;
                if (due_only && g.due > now && g.depth < cfg_.max_batch)
                    continue;
                sys = s;
                reqs = drainGroupLocked(g);
                break;
            }
            if (reqs.empty()) {
                updateDepthGauge(pending_);
                return batches;
            }
            updateDepthGauge(pending_);
        }
        dispatch(sys, std::move(reqs), now);
        ++batches;
    }
}

std::size_t
ScoreServer::poll(Nanos now)
{
    return flushWhere(now, /*due_only=*/true);
}

std::size_t
ScoreServer::flushAll(Nanos now)
{
    return flushWhere(now, /*due_only=*/false);
}

void
ScoreServer::dispatch(const std::string &sys, std::vector<Request> reqs,
                      Nanos now)
{
    (void)sys;
    std::size_t total = 0;
    bool all_views = true;
    for (const Request &r : reqs) {
        total += r.size();
        if (r.view.empty())
            all_views = false;
    }

    // The first name-ordered registry dispatches for the whole
    // subsystem: registries under one subsystem share classifier
    // semantics (the per-device registries of the case study), so its
    // policy — FallbackPolicy guard included — sees the *coalesced*
    // depth as PolicyInput::batch_size. The classifier's compute lands
    // on the ThreadPool-parallel GEMM/kNN substrate, which is where a
    // big batch beats per-call dispatch.
    // Virtual-time wrap audit: `start` is clamped to the clock, so a
    // poll(now) with a stale (smaller-than-clock) `now` cannot push
    // dispatch before an enqueue. scored >= start >= clock >= every
    // r.enqueued (the clock is monotone and stamped each enqueue), so
    // the interval subtractions below cannot wrap; the explicit clamp
    // keeps a telemetry value from turning a future regression into a
    // 2^64-scale histogram sample.
    Registry *rep = reqs.front().reg;
    Nanos start = std::max(now, clock_.now());
    std::vector<float> scores;
    if (all_views) {
        // Pure-view flush: append() coalesces the pinned windows (same-
        // store consecutive runs merge, so a steady capture stream
        // yields one strided MatrixView) and the batch dispatches with
        // zero bytes gathered.
        FvBatchView combined;
        // Request sizes are recorded first — append() steals the rows.
        std::vector<std::size_t> sizes;
        sizes.reserve(reqs.size());
        for (Request &r : reqs) {
            sizes.push_back(r.view.size());
            combined.append(std::move(r.view));
        }
        scores = rep->scoreFeatures(combined, start);
        Nanos scored = std::max(start, clock_.now());
        finish(reqs, sizes, scores, rep, total, start, scored);
        return;
    }

    std::vector<FeatureVector> batch;
    batch.reserve(total);
    // Elements are moved out individually (views materialized), so
    // r.size() recorded here stays valid for the scatter offsets.
    std::vector<std::size_t> sizes;
    sizes.reserve(reqs.size());
    for (Request &r : reqs) {
        sizes.push_back(r.size());
        for (FeatureVector &fv : r.fvs)
            batch.push_back(std::move(fv));
        if (!r.view.empty()) {
            // Mixed flush: a legacy-batch sibling forces the gather
            // this view was built to avoid; count the staged bytes.
            auto &m = obs::Metrics::global();
            if (m.enabled())
                m.reg_pack_bytes.add(r.view.packBytesAvoided());
            for (FeatureVector &fv : r.view.materialize())
                batch.push_back(std::move(fv));
        }
    }
    scores = rep->scoreFeatures(batch, start);
    Nanos scored = std::max(start, clock_.now());
    finish(reqs, sizes, scores, rep, total, start, scored);
}

void
ScoreServer::finish(std::vector<Request> &reqs,
                    const std::vector<std::size_t> &sizes,
                    const std::vector<float> &scores, Registry *rep,
                    std::size_t total, Nanos start, Nanos scored)
{
    flushes_.fetch_add(1, std::memory_order_relaxed);
    auto &m = obs::Metrics::global();
    if (m.enabled()) {
        m.reg_score_flushes.add();
        m.reg_score_batch.record(total);
        for (const Request &r : reqs)
            m.reg_score_queue_ns.record(
                scored >= r.enqueued ? scored - r.enqueued : 0);
    }
    auto &tr = obs::Tracer::global();
    if (tr.enabled())
        tr.span(obs::Side::Runtime, "registry", "score.flush", start,
                scored - start, obs::kNoId, "batch", total,
                "requests", reqs.size());

    ScoreResult res;
    res.status = Status::ok();
    res.scored = scored;
    res.engine = rep->lastEngine();
    res.batch = total;
    std::size_t off = 0;
    for (std::size_t i = 0; i < reqs.size(); ++i) {
        Request &r = reqs[i];
        std::size_t rn = sizes[i];
        if (r.cb) {
            res.enqueued = r.enqueued;
            res.scores.assign(scores.begin() + off,
                              scores.begin() + off + rn);
            r.cb(res);
        }
        off += rn;
    }
}

void
ScoreServer::failPending(const std::string &name, const std::string &sys)
{
    LAKE_ASSERT(tls_flushing != this,
                "destroy_registry re-entered from a score callback");
    // Taken in flush order (flush_mu_ then mu_) so no concurrent flush
    // still holds this registry's requests when the callbacks fire.
    std::lock_guard<std::mutex> flock(flush_mu_);
    FlushScope in_flush(this);
    std::deque<Request> orphaned;
    {
        std::lock_guard<std::mutex> lock(mu_);
        auto git = groups_.find(sys);
        if (git == groups_.end())
            return;
        auto qit = git->second.queues.find(name);
        if (qit == git->second.queues.end())
            return;
        orphaned = std::move(qit->second.q);
        for (const Request &r : orphaned) {
            git->second.depth -= r.size();
            pending_ -= r.size();
        }
        git->second.queues.erase(qit);
        // The erased queue may have carried the earliest deadline;
        // recompute from the surviving registries of the group.
        git->second.due = minDueLocked(git->second);
        updateDepthGauge(pending_);
    }
    Nanos now = clock_.now();
    for (Request &r : orphaned) {
        if (!r.cb)
            continue;
        ScoreResult res;
        res.status = Status(Code::Unavailable,
                            "registry " + sys + "/" + name + " destroyed");
        res.enqueued = r.enqueued;
        res.scored = now;
        r.cb(res);
    }
}

std::vector<float>
ScoreServer::scoreSync(Registry &reg, const std::vector<FeatureVector> &fvs,
                       Nanos now)
{
    // A score callback already runs under this thread's flush lock —
    // dispatch is serialized by construction, so score directly rather
    // than self-deadlocking on the re-lock.
    if (tls_flushing == this)
        return reg.scoreFeatures(fvs, now);
    std::lock_guard<std::mutex> flock(flush_mu_);
    return reg.scoreFeatures(fvs, now);
}

std::vector<float>
ScoreServer::scoreSync(Registry &reg, const FvBatchView &view, Nanos now)
{
    if (tls_flushing == this)
        return reg.scoreFeatures(view, now);
    std::lock_guard<std::mutex> flock(flush_mu_);
    return reg.scoreFeatures(view, now);
}

std::size_t
ScoreServer::pending() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return pending_;
}

void
ScoreServer::updateDepthGauge(std::size_t total) const
{
    auto &m = obs::Metrics::global();
    if (m.enabled())
        m.reg_score_queue_depth.set(total);
}

} // namespace lake::registry
