#include "registry/model_store.h"

namespace lake::registry {

namespace {

Nanos
blobCost(std::size_t bytes)
{
    return ModelStore::kFsOpCost +
           static_cast<Nanos>(static_cast<double>(bytes) /
                              ModelStore::kFsGbps);
}

} // namespace

Status
ModelStore::createModel(const std::string &path)
{
    if (models_.count(path))
        return Status(Code::AlreadyExists, "model exists: " + path);
    clock_.advance(kFsOpCost);
    models_.emplace(path, Entry{});
    return Status::ok();
}

Status
ModelStore::updateModel(const std::string &path,
                        std::vector<std::uint8_t> blob)
{
    auto it = models_.find(path);
    if (it == models_.end())
        return Status(Code::NotFound, "no model at " + path);
    clock_.advance(blobCost(blob.size()));
    it->second.durable = std::move(blob);
    return Status::ok();
}

Status
ModelStore::loadModel(const std::string &path)
{
    auto it = models_.find(path);
    if (it == models_.end())
        return Status(Code::NotFound, "no model at " + path);
    clock_.advance(blobCost(it->second.durable.size()));
    it->second.memory = it->second.durable;
    it->second.loaded = true;
    return Status::ok();
}

Status
ModelStore::deleteModel(const std::string &path)
{
    auto it = models_.find(path);
    if (it == models_.end())
        return Status(Code::NotFound, "no model at " + path);
    clock_.advance(kFsOpCost);
    models_.erase(it);
    return Status::ok();
}

const std::vector<std::uint8_t> *
ModelStore::inMemory(const std::string &path) const
{
    auto it = models_.find(path);
    if (it == models_.end() || !it->second.loaded)
        return nullptr;
    return &it->second.memory;
}

bool
ModelStore::exists(const std::string &path) const
{
    return models_.count(path) != 0;
}

} // namespace lake::registry
