#ifndef LAKE_REGISTRY_MODEL_STORE_H
#define LAKE_REGISTRY_MODEL_STORE_H

/**
 * @file
 * ML model lifecycle (Table 1: create/update/load/delete_model).
 *
 * §5.1: "ML models are committed to the file system and loaded into
 * memory at boot time. Loading and update are infrequent, so file
 * system overheads are acceptable, but at inference time, having the
 * model in memory is critical." The store therefore keeps two copies
 * per model — a durable blob (the "file system") and an in-memory
 * image — and charges file-system-scale virtual time only on the
 * durable operations.
 */

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "base/status.h"
#include "base/time.h"

namespace lake::registry {

/**
 * Named model blobs with durable/in-memory duality.
 */
class ModelStore
{
  public:
    /** Modeled cost of one durable (file-system) model operation. */
    static constexpr Nanos kFsOpCost = 2_ms;
    /** Modeled durable throughput for model bytes (GB/s). */
    static constexpr double kFsGbps = 1.0;

    /** @param clock clock charged for durable operations */
    explicit ModelStore(Clock &clock) : clock_(clock) {}

    /** create_model: registers an empty model at @p path. */
    Status createModel(const std::string &path);

    /**
     * update_model: commits @p blob as the durable copy at @p path.
     * The in-memory image is left untouched until the next loadModel —
     * inference keeps serving the old weights, the paper's intended
     * update discipline.
     */
    Status updateModel(const std::string &path,
                       std::vector<std::uint8_t> blob);

    /** load_model: loads the durable copy into memory. */
    Status loadModel(const std::string &path);

    /** delete_model: removes both durable and in-memory copies. */
    Status deleteModel(const std::string &path);

    /**
     * The in-memory image (inference-time access, no cost charged).
     * @return nullptr when not loaded.
     */
    const std::vector<std::uint8_t> *inMemory(const std::string &path) const;

    /** True when a durable copy exists at @p path. */
    bool exists(const std::string &path) const;

  private:
    struct Entry
    {
        std::vector<std::uint8_t> durable;
        std::vector<std::uint8_t> memory;
        bool loaded = false;
    };

    Clock &clock_;
    std::unordered_map<std::string, Entry> models_;
};

} // namespace lake::registry

#endif // LAKE_REGISTRY_MODEL_STORE_H
