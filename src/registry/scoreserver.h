#ifndef LAKE_REGISTRY_SCORESERVER_H
#define LAKE_REGISTRY_SCORESERVER_H

/**
 * @file
 * The asynchronous batched scoring service (DESIGN.md §7).
 *
 * `Registry::scoreFeatures` is a synchronous, caller-blocking call: one
 * instrumentation site pays one classifier dispatch. The paper's
 * profitability policy (Fig. 3) only wins when dispatches are *batched*
 * past the crossover point, and its registries capture from many
 * threads — so the natural scale-out is a service that queues score
 * requests per registry, coalesces compatible requests across the
 * registries of one subsystem, and issues a single batched classifier
 * dispatch once a depth or deadline trigger fires (the same trigger
 * shape as the remoting pipeline's command batching).
 *
 * Contract summary (normative version in DESIGN.md §7):
 *
 *  - submit() never blocks on inference. It either enqueues and
 *    returns Ok, flushes inline when the coalesced depth reaches
 *    `max_batch` (the submitting thread performs the dispatch — there
 *    is no hidden service thread, mirroring how the remoting pipeline
 *    flushes on the issuing thread), or reports backpressure.
 *  - Queues are bounded per registry (`queue_capacity` vectors). A
 *    full queue either rejects the new request with
 *    Status::ResourceExhausted (default) or, with `shed_oldest`, drops
 *    the oldest queued requests — whose callbacks fire with
 *    ResourceExhausted — to make room.
 *  - Coalescing merges requests across registries of the *same
 *    subsystem*; the paper's case study gives every block device its
 *    own registry under one subsystem precisely because they share a
 *    model. The dispatching registry is the first (name-ordered)
 *    registry with queued work, and its execution policy — including
 *    a FallbackPolicy degradation guard — decides the engine with
 *    `batch_size` equal to the full coalesced depth.
 *  - Deadlines are virtual-time absolute. The service has no timer
 *    thread (virtual time does not advance by itself); the owner
 *    drives expiry via poll(now), exactly like the event loops that
 *    drive every other virtual-time component.
 *  - Callbacks run on the flushing thread, under the flush lock:
 *    per-registry FIFO order, registries of one flush in name order.
 *    A callback may submit() — a re-entrant submission that reaches
 *    max_batch does not flush inline; the flush loop already running
 *    on this thread picks it up before returning. A callback must not
 *    call poll()/flushAll()/destroy_registry (asserted: re-locking the
 *    non-recursive flush lock would deadlock).
 *  - Synchronous scoring coexists with the service: the Table 1
 *    `score_features` facade routes through scoreSync(), which takes
 *    the same flush lock, so registry policies and classifiers never
 *    see concurrent dispatch from the mixed sync/async paths either.
 */

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "base/status.h"
#include "base/time.h"
#include "policy/policy.h"
#include "registry/registry.h"

namespace lake::registry {

class RegistryManager;

/** Boot-time knobs of the scoring service (LakeConfig.scoring). */
struct ScoringConfig
{
    /** Master switch; the service is not constructed while false. */
    bool enabled = false;
    /** Pending vectors one registry's queue may hold. */
    std::size_t queue_capacity = 256;
    /** Coalesced vectors (per subsystem) that force an inline flush. */
    std::size_t max_batch = 32;
    /**
     * Default deadline slack: a submit() with deadline 0 is due at
     * `now + max_delay`. Mirrors the remote pipeline's flush quantum.
     */
    Nanos max_delay = 50_us;
    /**
     * Full-queue behaviour: false rejects the *new* request with
     * ResourceExhausted; true sheds the *oldest* queued requests
     * (their callbacks observe ResourceExhausted) to make room.
     */
    bool shed_oldest = false;

    /**
     * Applies LAKE_SCORE_MAX_BATCH / LAKE_SCORE_MAX_DELAY_US /
     * LAKE_SCORE_QUEUE_CAP / LAKE_SCORE_SHED environment overrides.
     * Explicit opt-in (benches call it); a default-constructed Lake
     * never reads the environment.
     */
    void applyEnv();
};

/** Outcome of one async score request, delivered to its callback. */
struct ScoreResult
{
    /** Ok, ResourceExhausted (shed), or Unavailable (teardown). */
    Status status;
    /** One score per submitted vector; empty unless Ok. */
    std::vector<float> scores;
    /** Virtual time the request entered the queue. */
    Nanos enqueued = 0;
    /** Virtual time the batch was scored (== enqueued on failure). */
    Nanos scored = 0;
    /** Engine that scored the coalesced batch. */
    policy::Engine engine = policy::Engine::Cpu;
    /** Coalesced batch size this request rode in (0 on failure). */
    std::size_t batch = 0;
};

/** Completion callback; see the threading contract above. */
using ScoreCallback = std::function<void(const ScoreResult &)>;

/**
 * Asynchronous batched inference over a RegistryManager.
 *
 * Thread-safe: submit() may be called from any thread; poll() /
 * flushAll() / failPending() may race submissions. Flushes themselves
 * are serialized, so registry policies and classifiers never see
 * concurrent dispatch.
 */
class ScoreServer
{
  public:
    /**
     * @param mgr   registry owner; must outlive the server
     * @param clock virtual clock stamping enqueue/score times
     * @param cfg   knobs (enabled flag is ignored here — constructing
     *              the server *is* enabling it)
     */
    ScoreServer(RegistryManager &mgr, Clock &clock, ScoringConfig cfg);

    /** Drains every queue (one final flush per subsystem). */
    ~ScoreServer();

    ScoreServer(const ScoreServer &) = delete;
    ScoreServer &operator=(const ScoreServer &) = delete;

    /**
     * Queues @p fvs for batched scoring on registry @p name / @p sys.
     *
     * Non-blocking admission: returns InvalidArgument for an empty
     * batch, an unknown registry, or a registry with no CPU
     * classifier; ResourceExhausted when the registry's queue is full
     * (after shedding, if configured). On Ok the callback will fire
     * exactly once, from a later flush.
     *
     * @param deadline absolute virtual-time flush deadline; 0 means
     *        "now + max_delay"
     */
    Status submit(const std::string &name, const std::string &sys,
                  std::vector<FeatureVector> fvs, Nanos deadline,
                  ScoreCallback cb);

    /**
     * Queues a pinned SoA batch view for batched scoring — the
     * zero-copy fast path. Same admission/coalescing/deadline contract
     * as submit(); a flush whose requests are all views append()s them
     * into one combined view and dispatches through
     * Registry::scoreFeatures(view) (no gather, no pack), falling back
     * to materializing when legacy-batch requests are coalesced into
     * the same flush. Admission additionally accepts a registry that
     * only has a *view* classifier. The view's slots stay pinned until
     * its request completes (scored, shed, or failed).
     */
    Status submitView(const std::string &name, const std::string &sys,
                      FvBatchView view, Nanos deadline, ScoreCallback cb);

    /**
     * Flushes every subsystem whose deadline has passed (or whose
     * depth reached max_batch while a flush was already running).
     * @return coalesced batches dispatched
     */
    std::size_t poll(Nanos now);

    /** Flushes everything pending (sync points, shutdown). */
    std::size_t flushAll(Nanos now);

    /**
     * Fails every queued request of one registry with Unavailable —
     * the manager calls this after unlinking the registry from the
     * table (so no new submission can enqueue behind the drain) but
     * before freeing it (so an in-flight flush finishes first).
     */
    void failPending(const std::string &name, const std::string &sys);

    /**
     * Synchronous scoring serialized against async flushes: takes the
     * flush lock (unless already held by this thread's flush, i.e.
     * called from a score callback) and dispatches @p fvs through
     * @p reg. The `score_features` facade routes here while the
     * service is enabled so sync and async dispatch never race.
     */
    std::vector<float> scoreSync(Registry &reg,
                                 const std::vector<FeatureVector> &fvs,
                                 Nanos now);

    /** Zero-copy synchronous overload, same serialization contract. */
    std::vector<float> scoreSync(Registry &reg, const FvBatchView &view,
                                 Nanos now);

    /// @name Introspection (exact under quiescence)
    /// @{
    std::uint64_t submitted() const { return submitted_.load(std::memory_order_relaxed); }
    std::uint64_t flushes() const { return flushes_.load(std::memory_order_relaxed); }
    std::uint64_t shed() const { return shed_.load(std::memory_order_relaxed); }
    std::uint64_t rejected() const { return rejected_.load(std::memory_order_relaxed); }
    /** Vectors currently queued across all registries. */
    std::size_t pending() const;
    /// @}

    /** Knobs in force. */
    const ScoringConfig &config() const { return cfg_; }

  private:
    /** One queued submit() / submitView(). */
    struct Request
    {
        Registry *reg;
        /** Legacy payload; empty on the view path. */
        std::vector<FeatureVector> fvs;
        /** SoA payload; empty (unpinned) on the legacy path. Dropping
         *  the request — shed, teardown — unpins it via its dtor. */
        FvBatchView view;
        Nanos enqueued;
        /** Absolute flush deadline, kept so shedding/teardown can
         *  recompute the group's earliest deadline from survivors. */
        Nanos deadline;
        ScoreCallback cb;

        /** Vectors this request contributes to depth accounting. */
        std::size_t size() const { return fvs.size() + view.size(); }
    };

    /** One registry's FIFO queue, with its depth maintained inline so
     *  admission control is O(1) rather than a walk of the queue. */
    struct RegQueue
    {
        std::deque<Request> q;
        /** Pending vectors in q. */
        std::size_t depth = 0;
    };

    /** Pending work for one subsystem (the coalescing unit). */
    struct Group
    {
        /** Per-registry FIFO queues, name-ordered for determinism. */
        std::map<std::string, RegQueue> queues;
        /** Pending vectors across the queues. */
        std::size_t depth = 0;
        /** Earliest deadline among pending requests; 0 when empty. */
        Nanos due = 0;
    };

    /** Shared enqueue behind submit()/submitView(). */
    Status submitImpl(const std::string &name, const std::string &sys,
                      Request req, std::size_t n, bool is_view);

    /** Pops every pending request of @p g, oldest-deadline bookkeeping reset. */
    std::vector<Request> drainGroupLocked(Group &g);

    /** Earliest deadline among @p g's surviving requests; 0 if none. */
    static Nanos minDueLocked(const Group &g);

    /** Dispatches one coalesced batch; caller holds flush_mu_ only. */
    void dispatch(const std::string &sys, std::vector<Request> reqs,
                  Nanos now);

    /** Post-dispatch bookkeeping + callback scatter (by @p sizes). */
    void finish(std::vector<Request> &reqs,
                const std::vector<std::size_t> &sizes,
                const std::vector<float> &scores, Registry *rep,
                std::size_t total, Nanos start, Nanos scored);

    /** Flushes subsystems selected by @p due_only; see poll/flushAll. */
    std::size_t flushWhere(Nanos now, bool due_only);

    void updateDepthGauge(std::size_t total) const;

    RegistryManager &mgr_;
    Clock &clock_;
    ScoringConfig cfg_;

    mutable std::mutex mu_;        //!< guards groups_ / pending_
    std::map<std::string, Group> groups_;
    std::size_t pending_ = 0;      //!< total queued vectors

    /** Serializes dispatch: policies/classifiers never run twice at once. */
    std::mutex flush_mu_;

    std::atomic<std::uint64_t> submitted_{0};
    std::atomic<std::uint64_t> flushes_{0};
    std::atomic<std::uint64_t> shed_{0};
    std::atomic<std::uint64_t> rejected_{0};
};

} // namespace lake::registry

#endif // LAKE_REGISTRY_SCORESERVER_H
