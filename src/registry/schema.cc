#include "registry/schema.h"

#include "base/logging.h"

namespace lake::registry {

std::uint64_t
featureKey(const std::string &name)
{
    std::uint64_t h = 0xcbf29ce484222325ull;
    for (unsigned char c : name) {
        h ^= c;
        h *= 0x100000001b3ull;
    }
    // Key 0 is the lock-free map's empty sentinel.
    return h == 0 ? 1 : h;
}

Schema &
Schema::add(const std::string &name, std::uint32_t size,
            std::uint32_t entries)
{
    LAKE_ASSERT(size >= 1 && size <= 8,
                "feature '%s': size %u outside 1..8", name.c_str(), size);
    LAKE_ASSERT(entries >= 1, "feature '%s': entries must be >= 1",
                name.c_str());
    std::uint64_t key = featureKey(name);
    LAKE_ASSERT(!by_key_.count(key), "duplicate feature '%s'",
                name.c_str());
    by_key_.emplace(key, order_.size());
    order_.push_back(FeatureSpec{name, size, entries});
    if (entries > 1)
        has_history_ = true;
    return *this;
}

const FeatureSpec *
Schema::find(std::uint64_t key) const
{
    auto it = by_key_.find(key);
    return it == by_key_.end() ? nullptr : &order_[it->second];
}

std::uint32_t
Schema::columnOf(std::uint64_t key) const
{
    auto it = by_key_.find(key);
    return it == by_key_.end()
               ? kNoColumn
               : static_cast<std::uint32_t>(it->second);
}

} // namespace lake::registry
