#include "registry/manager.h"

#include "base/logging.h"

namespace lake::registry {

Status
RegistryManager::createRegistry(const std::string &name,
                                const std::string &sys, Schema schema,
                                std::size_t window)
{
    auto key = std::make_pair(name, sys);
    if (registries_.count(key)) {
        return Status(Code::AlreadyExists,
                      "registry " + sys + "/" + name + " exists");
    }
    registries_.emplace(key, std::make_unique<Registry>(
                                 name, sys, std::move(schema), window));
    return Status::ok();
}

Status
RegistryManager::destroyRegistry(const std::string &name,
                                 const std::string &sys)
{
    auto it = registries_.find(std::make_pair(name, sys));
    if (it == registries_.end()) {
        return Status(Code::NotFound,
                      "no registry " + sys + "/" + name);
    }
    registries_.erase(it);
    return Status::ok();
}

Registry *
RegistryManager::find(const std::string &name, const std::string &sys)
{
    auto it = registries_.find(std::make_pair(name, sys));
    return it == registries_.end() ? nullptr : it->second.get();
}

namespace {

Registry &
require(RegistryManager &m, const std::string &name, const std::string &sys)
{
    Registry *r = m.find(name, sys);
    if (r == nullptr)
        fatal("no registry %s/%s", sys.c_str(), name.c_str());
    return *r;
}

} // namespace

Status
create_registry(RegistryManager &m, const std::string &name,
                const std::string &sys, Schema schema, std::size_t window)
{
    return m.createRegistry(name, sys, std::move(schema), window);
}

Status
destroy_registry(RegistryManager &m, const std::string &name,
                 const std::string &sys)
{
    return m.destroyRegistry(name, sys);
}

Status
create_model(RegistryManager &m, const std::string &, const std::string &,
             const std::string &path)
{
    return m.models().createModel(path);
}

Status
update_model(RegistryManager &m, const std::string &, const std::string &,
             const std::string &path, std::vector<std::uint8_t> blob)
{
    return m.models().updateModel(path, std::move(blob));
}

Status
load_model(RegistryManager &m, const std::string &, const std::string &,
           const std::string &path)
{
    return m.models().loadModel(path);
}

Status
delete_model(RegistryManager &m, const std::string &, const std::string &,
             const std::string &path)
{
    return m.models().deleteModel(path);
}

void
register_classifier(RegistryManager &m, const std::string &name,
                    const std::string &sys, Classifier fn, Arch arch)
{
    require(m, name, sys).registerClassifier(arch, std::move(fn));
}

void
register_policy(RegistryManager &m, const std::string &name,
                const std::string &sys,
                std::unique_ptr<policy::ExecPolicy> p)
{
    require(m, name, sys).registerPolicy(std::move(p));
}

std::vector<float>
score_features(RegistryManager &m, const std::string &name,
               const std::string &sys,
               const std::vector<FeatureVector> &fvs, Nanos now)
{
    return require(m, name, sys).scoreFeatures(fvs, now);
}

std::vector<FeatureVector>
get_features(RegistryManager &m, const std::string &name,
             const std::string &sys, std::optional<Nanos> ts)
{
    return require(m, name, sys).getFeatures(ts);
}

void
begin_fv_capture(RegistryManager &m, const std::string &name,
                 const std::string &sys, Nanos ts)
{
    require(m, name, sys).beginFvCapture(ts);
}

void
capture_feature(RegistryManager &m, const std::string &name,
                const std::string &sys, const std::string &key,
                std::uint64_t val)
{
    require(m, name, sys).captureFeature(key, val);
}

void
capture_feature_incr(RegistryManager &m, const std::string &name,
                     const std::string &sys, const std::string &key,
                     std::int64_t incrval)
{
    require(m, name, sys).captureFeatureIncr(key, incrval);
}

void
commit_fv_capture(RegistryManager &m, const std::string &name,
                  const std::string &sys, Nanos ts)
{
    require(m, name, sys).commitFvCapture(ts);
}

void
truncate_features(RegistryManager &m, const std::string &name,
                  const std::string &sys, std::optional<Nanos> ts)
{
    require(m, name, sys).truncateFeatures(ts);
}

} // namespace lake::registry
