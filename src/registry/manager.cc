#include "registry/manager.h"

#include "base/logging.h"

namespace lake::registry {

std::uint64_t
CaptureHandle::key(const std::string &feature) const
{
    LAKE_ASSERT(reg_ != nullptr, "key() on an unbound capture handle");
    std::uint64_t k = featureKey(feature);
    LAKE_ASSERT(reg_->schema().find(k) != nullptr,
                "%s/%s: interning undeclared feature '%s'",
                reg_->sys().c_str(), reg_->name().c_str(),
                feature.c_str());
    return k;
}

std::uint32_t
CaptureHandle::column(const std::string &feature) const
{
    LAKE_ASSERT(reg_ != nullptr, "column() on an unbound capture handle");
    std::uint32_t col = reg_->schema().columnOf(featureKey(feature));
    LAKE_ASSERT(col != Schema::kNoColumn,
                "%s/%s: interning undeclared feature '%s'",
                reg_->sys().c_str(), reg_->name().c_str(),
                feature.c_str());
    return col;
}

// scorer_ is declared last, so it destroys first: its final drain
// still sees every registry alive.
RegistryManager::~RegistryManager() = default;

Status
RegistryManager::createRegistry(const std::string &name,
                                const std::string &sys, Schema schema,
                                std::size_t window)
{
    auto key = std::make_pair(name, sys);
    std::lock_guard<std::mutex> lock(reg_mu_);
    if (registries_.count(key)) {
        return Status(Code::AlreadyExists,
                      "registry " + sys + "/" + name + " exists");
    }
    auto reg = std::make_unique<Registry>(name, sys, std::move(schema),
                                          window);
    if (soa_cfg_.enabled) {
        auto store = SoaStore::create(reg->schema(), window, soa_cfg_,
                                      *soa_arena_);
        if (store == nullptr) {
            return Status(Code::ResourceExhausted,
                          "registry " + sys + "/" + name +
                              ": shm arena cannot fit the SoA plane");
        }
        reg->attachSoa(std::move(store));
    }
    registries_.emplace(key, std::move(reg));
    return Status::ok();
}

Status
RegistryManager::enableSoa(const SoaConfig &cfg, shm::ShmArena *arena)
{
    if (!cfg.enabled)
        return Status::ok();
    std::lock_guard<std::mutex> lock(reg_mu_);
    if (soa_cfg_.enabled)
        return Status(Code::AlreadyExists, "SoA plane already enabled");
    LAKE_ASSERT(arena != nullptr, "enableSoa without a shm arena");
    soa_cfg_ = cfg;
    soa_arena_ = arena;
    return Status::ok();
}

Status
RegistryManager::destroyRegistry(const std::string &name,
                                 const std::string &sys)
{
    // Unlink under reg_mu_ first: a submit() racing this holds reg_mu_
    // across lookup + enqueue, so it either enqueued before we got the
    // lock (failPending below fails it) or finds nothing. The object
    // stays alive in `doomed` until failPending has waited out any
    // in-flight flush still dispatching through it.
    std::unique_ptr<Registry> doomed;
    {
        std::lock_guard<std::mutex> lock(reg_mu_);
        auto it = registries_.find(std::make_pair(name, sys));
        if (it == registries_.end()) {
            return Status(Code::NotFound,
                          "no registry " + sys + "/" + name);
        }
        doomed = std::move(it->second);
        registries_.erase(it);
    }
    if (scorer_)
        scorer_->failPending(name, sys);
    return Status::ok();
}

CaptureHandle
RegistryManager::captureHandle(const std::string &name,
                               const std::string &sys)
{
    return CaptureHandle(find(name, sys));
}

Status
RegistryManager::enableScoring(ScoringConfig cfg)
{
    if (scorer_)
        return Status(Code::AlreadyExists, "scoring service already enabled");
    scorer_ = std::make_unique<ScoreServer>(*this, clock_, cfg);
    return Status::ok();
}

void
RegistryManager::disableScoring()
{
    scorer_.reset();
}

Registry *
RegistryManager::find(const std::string &name, const std::string &sys)
{
    std::lock_guard<std::mutex> lock(reg_mu_);
    return findLocked(name, sys);
}

Registry *
RegistryManager::findLocked(const std::string &name, const std::string &sys)
{
    // Reference-pair probe: the transparent comparator spares the hot
    // paths (every async submit routes through here) a string copy.
    auto it = registries_.find(
        std::pair<const std::string &, const std::string &>(name, sys));
    return it == registries_.end() ? nullptr : it->second.get();
}

namespace {

Registry &
require(RegistryManager &m, const std::string &name, const std::string &sys)
{
    Registry *r = m.find(name, sys);
    if (r == nullptr)
        fatal("no registry %s/%s", sys.c_str(), name.c_str());
    return *r;
}

} // namespace

Status
create_registry(RegistryManager &m, const std::string &name,
                const std::string &sys, Schema schema, std::size_t window)
{
    return m.createRegistry(name, sys, std::move(schema), window);
}

Status
destroy_registry(RegistryManager &m, const std::string &name,
                 const std::string &sys)
{
    return m.destroyRegistry(name, sys);
}

Status
create_model(RegistryManager &m, const std::string &, const std::string &,
             const std::string &path)
{
    return m.models().createModel(path);
}

Status
update_model(RegistryManager &m, const std::string &, const std::string &,
             const std::string &path, std::vector<std::uint8_t> blob)
{
    return m.models().updateModel(path, std::move(blob));
}

Status
load_model(RegistryManager &m, const std::string &, const std::string &,
           const std::string &path)
{
    return m.models().loadModel(path);
}

Status
delete_model(RegistryManager &m, const std::string &, const std::string &,
             const std::string &path)
{
    return m.models().deleteModel(path);
}

Status
register_classifier(RegistryManager &m, const std::string &name,
                    const std::string &sys, Classifier fn, Arch arch)
{
    return require(m, name, sys).registerClassifier(arch, std::move(fn));
}

void
register_policy(RegistryManager &m, const std::string &name,
                const std::string &sys,
                std::unique_ptr<policy::ExecPolicy> p)
{
    require(m, name, sys).registerPolicy(std::move(p));
}

std::vector<float>
score_features(RegistryManager &m, const std::string &name,
               const std::string &sys,
               const std::vector<FeatureVector> &fvs, Nanos now)
{
    Registry &reg = require(m, name, sys);
    // With the async service up, serialize against its flushes: sync
    // and async scoring share the registry's policy and classifier
    // state, which the flush lock alone protects.
    if (ScoreServer *s = m.scorer())
        return s->scoreSync(reg, fvs, now);
    return reg.scoreFeatures(fvs, now);
}

Status
score_features_async(RegistryManager &m, const std::string &name,
                     const std::string &sys,
                     std::vector<FeatureVector> fvs, Nanos deadline,
                     ScoreCallback cb)
{
    if (ScoreServer *s = m.scorer())
        return s->submit(name, sys, std::move(fvs), deadline,
                         std::move(cb));

    // Scoring service off (the default): degrade to synchronous inline
    // scoring with the same admission errors the async path reports.
    if (fvs.empty())
        return Status(Code::InvalidArgument, "empty score batch");
    Registry *reg = m.find(name, sys);
    if (reg == nullptr)
        return Status(Code::InvalidArgument,
                      "no registry " + sys + "/" + name);
    if (!reg->hasClassifier(Arch::Cpu))
        return Status(Code::InvalidArgument,
                      sys + "/" + name + " has no CPU classifier");

    Nanos now = m.clock().now();
    ScoreResult res;
    res.enqueued = now;
    res.scores = reg->scoreFeatures(fvs, now);
    res.scored = m.clock().now();
    res.engine = reg->lastEngine();
    res.batch = fvs.size();
    res.status = Status::ok();
    if (cb)
        cb(res);
    return Status::ok();
}

std::vector<FeatureVector>
get_features(RegistryManager &m, const std::string &name,
             const std::string &sys, std::optional<Nanos> ts)
{
    return require(m, name, sys).getFeatures(ts);
}

void
begin_fv_capture(RegistryManager &m, const std::string &name,
                 const std::string &sys, Nanos ts)
{
    require(m, name, sys).beginFvCapture(ts);
}

void
capture_feature(RegistryManager &m, const std::string &name,
                const std::string &sys, const std::string &key,
                std::uint64_t val)
{
    require(m, name, sys).captureFeature(key, val);
}

void
capture_feature_incr(RegistryManager &m, const std::string &name,
                     const std::string &sys, const std::string &key,
                     std::int64_t incrval)
{
    require(m, name, sys).captureFeatureIncr(key, incrval);
}

void
commit_fv_capture(RegistryManager &m, const std::string &name,
                  const std::string &sys, Nanos ts)
{
    require(m, name, sys).commitFvCapture(ts);
}

void
truncate_features(RegistryManager &m, const std::string &name,
                  const std::string &sys, std::optional<Nanos> ts)
{
    require(m, name, sys).truncateFeatures(ts);
}

CaptureHandle
capture_handle(RegistryManager &m, const std::string &name,
               const std::string &sys)
{
    return m.captureHandle(name, sys);
}

} // namespace lake::registry
