#ifndef LAKE_REGISTRY_MANAGER_H
#define LAKE_REGISTRY_MANAGER_H

/**
 * @file
 * The registry manager: Table 1's top-level entry points.
 *
 * Registries are keyed by (name, sys) — the case study gives each block
 * device its own registry ("the name parameter is the device's name,
 * e.g. sda1") under the "bio_latency_prediction" subsystem. The manager
 * also exposes the exact snake_case functions of Table 1 as a facade,
 * so instrumentation code reads like the paper's listings.
 */

#include <map>
#include <memory>
#include <optional>
#include <string>

#include "base/status.h"
#include "registry/model_store.h"
#include "registry/registry.h"

namespace lake::registry {

/**
 * Owner of all feature registries and the model store.
 */
class RegistryManager
{
  public:
    /** @param clock clock charged for durable model operations */
    explicit RegistryManager(Clock &clock) : models_(clock) {}

    /** create_registry(name, sys, schema, window). */
    Status createRegistry(const std::string &name, const std::string &sys,
                          Schema schema, std::size_t window);

    /** destroy_registry(name, sys). */
    Status destroyRegistry(const std::string &name, const std::string &sys);

    /** Looks up a registry; nullptr when absent. */
    Registry *find(const std::string &name, const std::string &sys);

    /** Model lifecycle operations. */
    ModelStore &models() { return models_; }

    /** Number of live registries. */
    std::size_t registryCount() const { return registries_.size(); }

  private:
    std::map<std::pair<std::string, std::string>, std::unique_ptr<Registry>>
        registries_;
    ModelStore models_;
};

/// @name Table 1 facade
/// The paper's exact API, as free functions over a manager. Listings
/// 4 and 5 of the paper transliterate one-to-one onto these.
/// @{

Status create_registry(RegistryManager &m, const std::string &name,
                       const std::string &sys, Schema schema,
                       std::size_t window);
Status destroy_registry(RegistryManager &m, const std::string &name,
                        const std::string &sys);

Status create_model(RegistryManager &m, const std::string &name,
                    const std::string &sys, const std::string &path);
Status update_model(RegistryManager &m, const std::string &name,
                    const std::string &sys, const std::string &path,
                    std::vector<std::uint8_t> blob);
Status load_model(RegistryManager &m, const std::string &name,
                  const std::string &sys, const std::string &path);
Status delete_model(RegistryManager &m, const std::string &name,
                    const std::string &sys, const std::string &path);

void register_classifier(RegistryManager &m, const std::string &name,
                         const std::string &sys, Classifier fn, Arch arch);
void register_policy(RegistryManager &m, const std::string &name,
                     const std::string &sys,
                     std::unique_ptr<policy::ExecPolicy> p);

std::vector<float> score_features(RegistryManager &m,
                                  const std::string &name,
                                  const std::string &sys,
                                  const std::vector<FeatureVector> &fvs,
                                  Nanos now);
std::vector<FeatureVector> get_features(RegistryManager &m,
                                        const std::string &name,
                                        const std::string &sys,
                                        std::optional<Nanos> ts);

void begin_fv_capture(RegistryManager &m, const std::string &name,
                      const std::string &sys, Nanos ts);
void capture_feature(RegistryManager &m, const std::string &name,
                     const std::string &sys, const std::string &key,
                     std::uint64_t val);
void capture_feature_incr(RegistryManager &m, const std::string &name,
                          const std::string &sys, const std::string &key,
                          std::int64_t incrval);
void commit_fv_capture(RegistryManager &m, const std::string &name,
                       const std::string &sys, Nanos ts);
void truncate_features(RegistryManager &m, const std::string &name,
                       const std::string &sys, std::optional<Nanos> ts);

/// @}

} // namespace lake::registry

#endif // LAKE_REGISTRY_MANAGER_H
