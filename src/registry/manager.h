#ifndef LAKE_REGISTRY_MANAGER_H
#define LAKE_REGISTRY_MANAGER_H

/**
 * @file
 * The registry manager: Table 1's top-level entry points.
 *
 * Registries are keyed by (name, sys) — the case study gives each block
 * device its own registry ("the name parameter is the device's name,
 * e.g. sda1") under the "bio_latency_prediction" subsystem. The manager
 * also exposes the exact snake_case functions of Table 1 as a facade,
 * so instrumentation code reads like the paper's listings.
 */

#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>

#include "base/status.h"
#include "registry/model_store.h"
#include "registry/registry.h"
#include "registry/scoreserver.h"

namespace lake::registry {

/**
 * A cached capture handle: the facade's `capture_feature(name, sys,
 * "feature", v)` pays a map<pair<string,string>> lookup plus a
 * featureKey() string hash on *every* hot-path capture. Instrumentation
 * sites resolve the registry once, intern their feature names to
 * schema keys once, and capture through this handle afterwards.
 *
 * Valid until the registry is destroyed; a default-constructed handle
 * is inert (valid() == false) and must not be used to capture.
 */
class CaptureHandle
{
  public:
    CaptureHandle() = default;

    /** True when bound to a live registry. */
    bool valid() const { return reg_ != nullptr; }

    /**
     * Interns a schema feature name to its numeric key; capture
     * through the key overloads afterwards. Panics on a name the
     * schema does not declare (same contract as captureFeature).
     */
    std::uint64_t key(const std::string &feature) const;

    /**
     * Interns a schema feature name to its declaration-order column
     * index — the SoA plane's hash-free capture coordinate (works on
     * the legacy plane too; the col overloads forward by key there).
     * Panics on an undeclared name.
     */
    std::uint32_t column(const std::string &feature) const;

    /// @name Capture, forwarded to the bound registry
    /// @{
    void beginFvCapture(Nanos ts) { reg_->beginFvCapture(ts); }
    void captureFeature(std::uint64_t key, std::uint64_t value)
    {
        reg_->captureFeature(key, value);
    }
    void captureFeatureIncr(std::uint64_t key, std::int64_t delta)
    {
        reg_->captureFeatureIncr(key, delta);
    }
    void captureFeatureCol(std::uint32_t col, std::uint64_t value)
    {
        reg_->captureFeatureCol(col, value);
    }
    void captureFeatureIncrCol(std::uint32_t col, std::int64_t delta)
    {
        reg_->captureFeatureIncrCol(col, delta);
    }
    void commitFvCapture(Nanos ts) { reg_->commitFvCapture(ts); }
    /// @}

    /** The bound registry (nullptr when invalid). */
    Registry *registry() const { return reg_; }

  private:
    friend class RegistryManager;
    explicit CaptureHandle(Registry *reg) : reg_(reg) {}

    Registry *reg_ = nullptr;
};

/**
 * Heterogeneous (name, sys) key order: lookups compare pairs of string
 * *references* against the stored pair<string, string> keys, so the
 * hot paths (find(), every async submit) build no temporary strings.
 */
struct RegistryKeyLess
{
    using is_transparent = void;

    template <typename A, typename B>
    bool operator()(const A &a, const B &b) const
    {
        if (a.first != b.first)
            return a.first < b.first;
        return a.second < b.second;
    }
};

/**
 * Owner of all feature registries, the model store, and (when enabled)
 * the async scoring service.
 */
class RegistryManager
{
  public:
    /** @param clock clock charged for durable model operations */
    explicit RegistryManager(Clock &clock) : clock_(clock), models_(clock) {}

    ~RegistryManager();

    /** create_registry(name, sys, schema, window). */
    Status createRegistry(const std::string &name, const std::string &sys,
                          Schema schema, std::size_t window);

    /**
     * destroy_registry(name, sys). The registry is first unlinked from
     * the table (new submissions see InvalidArgument), then its queued
     * async score requests fail with Unavailable — waiting out any
     * in-flight flush — and only then is the object freed.
     */
    Status destroyRegistry(const std::string &name, const std::string &sys);

    /**
     * Looks up a registry; nullptr when absent. Safe against a
     * concurrent destroyRegistry(), but the returned pointer is only
     * guaranteed live while no other thread may destroy it — async
     * submission holds the registry lock across lookup *and* enqueue
     * for exactly that reason (see lockRegistries()).
     */
    Registry *find(const std::string &name, const std::string &sys);

    /**
     * Resolves a capture handle for hot-path instrumentation; an
     * invalid handle when the registry does not exist.
     */
    CaptureHandle captureHandle(const std::string &name,
                                const std::string &sys);

    /**
     * Switches future createRegistry() calls onto the SoA data plane
     * (DESIGN.md §12): each new registry's capture window is carved
     * from @p arena as a columnar SoaStore. Registries created before
     * this call keep the legacy plane — enable at boot, before
     * instrumentation creates registries. AlreadyExists when already
     * enabled; a disabled @p cfg is a no-op returning Ok.
     */
    Status enableSoa(const SoaConfig &cfg, shm::ShmArena *arena);

    /** The SoA plane's arena; nullptr while the plane is off. */
    shm::ShmArena *soaArena() const { return soa_arena_; }

    /**
     * Brings up the async scoring service (DESIGN.md §7). Idempotent
     * per lifetime: a second call while enabled is AlreadyExists.
     */
    Status enableScoring(ScoringConfig cfg);

    /** Flushes and tears down the scoring service (no-op if off). */
    void disableScoring();

    /** The scoring service; nullptr while disabled (the default). */
    ScoreServer *scorer() { return scorer_.get(); }

    /** Model lifecycle operations. */
    ModelStore &models() { return models_; }

    /** The clock shared with the scoring service. */
    Clock &clock() { return clock_; }

    /** Number of live registries. */
    std::size_t registryCount() const
    {
        std::lock_guard<std::mutex> lock(reg_mu_);
        return registries_.size();
    }

  private:
    friend class ScoreServer;

    /**
     * Locks the registry table. ScoreServer::submit holds this across
     * findLocked() + enqueue so a racing destroyRegistry() — which
     * unlinks the registry under the same lock before failing its
     * queue — can never leave a dangling pointer in a queue.
     */
    std::unique_lock<std::mutex> lockRegistries()
    {
        return std::unique_lock<std::mutex>(reg_mu_);
    }

    /** find() body; caller holds reg_mu_ via lockRegistries(). */
    Registry *findLocked(const std::string &name, const std::string &sys);

    Clock &clock_;
    /** Guards registries_ (reads and lifecycle). */
    mutable std::mutex reg_mu_;
    std::map<std::pair<std::string, std::string>, std::unique_ptr<Registry>,
             RegistryKeyLess>
        registries_;
    ModelStore models_;
    std::unique_ptr<ScoreServer> scorer_;

    /** SoA plane settings; enabled == false until enableSoa(). */
    SoaConfig soa_cfg_;
    shm::ShmArena *soa_arena_ = nullptr;
};

/// @name Table 1 facade
/// The paper's exact API, as free functions over a manager. Listings
/// 4 and 5 of the paper transliterate one-to-one onto these.
/// @{

Status create_registry(RegistryManager &m, const std::string &name,
                       const std::string &sys, Schema schema,
                       std::size_t window);
Status destroy_registry(RegistryManager &m, const std::string &name,
                        const std::string &sys);

Status create_model(RegistryManager &m, const std::string &name,
                    const std::string &sys, const std::string &path);
Status update_model(RegistryManager &m, const std::string &name,
                    const std::string &sys, const std::string &path,
                    std::vector<std::uint8_t> blob);
Status load_model(RegistryManager &m, const std::string &name,
                  const std::string &sys, const std::string &path);
Status delete_model(RegistryManager &m, const std::string &name,
                    const std::string &sys, const std::string &path);

Status register_classifier(RegistryManager &m, const std::string &name,
                           const std::string &sys, Classifier fn, Arch arch);
void register_policy(RegistryManager &m, const std::string &name,
                     const std::string &sys,
                     std::unique_ptr<policy::ExecPolicy> p);

std::vector<float> score_features(RegistryManager &m,
                                  const std::string &name,
                                  const std::string &sys,
                                  const std::vector<FeatureVector> &fvs,
                                  Nanos now);

/**
 * Non-blocking batched scoring (Table 1 extension, DESIGN.md §7).
 *
 * With the scoring service enabled, queues @p fvs for a coalesced
 * flush and returns the admission status. With it disabled (the
 * default), degrades to synchronous inline scoring: the callback runs
 * before this returns, with batch == fvs.size(). Either way the
 * callback fires at most once, and only after an Ok return.
 */
Status score_features_async(RegistryManager &m, const std::string &name,
                            const std::string &sys,
                            std::vector<FeatureVector> fvs, Nanos deadline,
                            ScoreCallback cb);

std::vector<FeatureVector> get_features(RegistryManager &m,
                                        const std::string &name,
                                        const std::string &sys,
                                        std::optional<Nanos> ts);

void begin_fv_capture(RegistryManager &m, const std::string &name,
                      const std::string &sys, Nanos ts);
void capture_feature(RegistryManager &m, const std::string &name,
                     const std::string &sys, const std::string &key,
                     std::uint64_t val);
void capture_feature_incr(RegistryManager &m, const std::string &name,
                          const std::string &sys, const std::string &key,
                          std::int64_t incrval);
void commit_fv_capture(RegistryManager &m, const std::string &name,
                       const std::string &sys, Nanos ts);
void truncate_features(RegistryManager &m, const std::string &name,
                       const std::string &sys, std::optional<Nanos> ts);

/** Resolves a CaptureHandle (invalid when the registry is absent). */
CaptureHandle capture_handle(RegistryManager &m, const std::string &name,
                             const std::string &sys);

/// @}

} // namespace lake::registry

#endif // LAKE_REGISTRY_MANAGER_H
