#include "registry/soa.h"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <utility>

#include "base/logging.h"
#include "registry/registry.h"

namespace lake::registry {

namespace {

/** Parses a non-negative integer env var; @p fallback when unset/bad
 *  (same parse-safety idiom as ScoringConfig::applyEnv). */
std::size_t
envSize(const char *name, std::size_t fallback)
{
    const char *v = std::getenv(name);
    if (!v || !*v)
        return fallback;
    char *end = nullptr;
    unsigned long long parsed = std::strtoull(v, &end, 10);
    if (end == v || *end != '\0')
        return fallback;
    return static_cast<std::size_t>(parsed);
}

/** Rounds a u64 count up to a whole number of cache lines. */
std::size_t
roundUpLanes(std::size_t u64s)
{
    constexpr std::size_t per_line = base::kCacheLine / sizeof(std::uint64_t);
    return (u64s + per_line - 1) / per_line * per_line;
}

/** Rounds a float count up to a whole number of cache lines: the
 *  float-plane row stride, dense enough that a batch window stays
 *  cache-resident under the strided GEMM. */
std::size_t
roundUpFloats(std::size_t floats)
{
    constexpr std::size_t per_line = base::kCacheLine / sizeof(float);
    return (floats + per_line - 1) / per_line * per_line;
}

} // namespace

void
SoaConfig::applyEnv()
{
    enabled = envSize("LAKE_SOA", enabled ? 1 : 0) != 0;
    slack = envSize("LAKE_SOA_SLACK", slack);
}

// ---------------------------------------------------------------------------
// SoaStore

SoaStore::SoaStore(const Schema &schema, std::size_t window,
                   const SoaConfig &cfg, shm::ShmArena &arena)
    : schema_(schema), arena_(arena),
      capacity_(window + 1 + cfg.slack),
      words_((schema.featureCount() + 63) / 64),
      float_cols_(schema.featureCount()),
      float_stride_(roundUpFloats(schema.featureCount())),
      ring_(window)
{
    LAKE_ASSERT(schema_.featureCount() > 0, "soa store on empty schema");

    // Column layout: per feature, entries lanes of capacity u64s, the
    // whole region padded to cache-line multiples so concurrent writers
    // of different columns never share a line (the arena's base
    // alignment is already 64).
    std::size_t total = 0, lane_total = 0;
    cols_.reserve(schema_.featureCount());
    keys_.reserve(schema_.featureCount());
    for (const FeatureSpec &spec : schema_.features()) {
        cols_.push_back(Column{total, lane_total, spec.entries});
        keys_.push_back(featureKey(spec.name));
        total += roundUpLanes(static_cast<std::size_t>(spec.entries) *
                              capacity_);
        lane_total += spec.entries;
    }

    plane_off_ = arena_.alloc(total * sizeof(std::uint64_t));
    if (plane_off_ == shm::kNullOffset)
        return; // create() reports exhaustion via nullptr
    plane_ = static_cast<std::uint64_t *>(arena_.at(plane_off_));
    std::memset(plane_, 0, total * sizeof(std::uint64_t));

    ever_.assign(words_, 0);
    presence_.assign(capacity_ * words_, 0);
    ts_begin_.assign(capacity_, 0);
    ts_end_.assign(capacity_, 0);
    last_lanes_.assign(lane_total, 0);
    last_presence_.assign(words_, 0);
    state_.assign(capacity_, SlotState::Free);
    pins_.assign(capacity_, 0);

    // Descending free stack: pop_back claims ascending slot ids, so
    // steady-state seals produce consecutive slots (one MatrixView run).
    free_.reserve(capacity_);
    for (std::size_t s = capacity_; s-- > 0;)
        free_.push_back(static_cast<std::uint32_t>(s));

    std::lock_guard<std::mutex> lock(mu_);
    claimLocked();
}

SoaStore::~SoaStore()
{
    if (plane_off_ != shm::kNullOffset)
        arena_.free(plane_off_);
    if (fplane_off_ != shm::kNullOffset)
        arena_.free(fplane_off_);
}

std::unique_ptr<SoaStore>
SoaStore::create(const Schema &schema, std::size_t window,
                 const SoaConfig &cfg, shm::ShmArena &arena)
{
    std::unique_ptr<SoaStore> store(
        new SoaStore(schema, window, cfg, arena));
    if (store->plane_ == nullptr)
        return nullptr;
    return store;
}

void
SoaStore::setFloatEncoder(std::size_t float_cols, FloatEncoder fn)
{
    LAKE_ASSERT(fplane_off_ == shm::kNullOffset && !has_last_,
                "setFloatEncoder after the first seal");
    if (float_cols > 0) {
        float_cols_ = float_cols;
        float_stride_ = roundUpFloats(float_cols);
    }
    encoder_ = std::move(fn);
}

void
SoaStore::ensureFloatPlane()
{
    if (fplane_ != nullptr)
        return;
    fplane_off_ = arena_.alloc(capacity_ * float_stride_ * sizeof(float));
    LAKE_ASSERT(fplane_off_ != shm::kNullOffset,
                "lakeShm exhausted carving the soa float plane");
    fplane_ = static_cast<float *>(arena_.at(fplane_off_));
    std::memset(fplane_, 0, capacity_ * float_stride_ * sizeof(float));
}

std::uint64_t
SoaStore::RowReader::value(std::uint32_t col, std::uint32_t entry) const
{
    LAKE_ASSERT(col < store_->cols_.size() &&
                    entry < store_->cols_[col].entries,
                "row reader (%u, %u) out of schema range", col, entry);
    if (!store_->presentAt(slot_, col))
        return 0;
    return store_->lane(col, entry, slot_);
}

std::size_t
SoaStore::seal(Nanos ts_begin, Nanos ts_end)
{
    const std::uint32_t s = open_slot_;
    std::size_t fv_len = 0;

    // History inheritance from the shadow of the previous sealed
    // vector (never from a slot a window wrap may have recycled):
    // previous entry i becomes entry i+1, exactly the legacy map walk.
    for (std::size_t c = 0; c < cols_.size(); ++c) {
        if (!everCaptured(static_cast<std::uint32_t>(c)))
            continue;
        ++fv_len;
        const Column &col = cols_[c];
        bool prev_present =
            has_last_ && ((last_presence_[c >> 6] >> (c & 63)) & 1u);
        for (std::uint32_t i = col.entries; i-- > 1;) {
            plane_[col.base + i * capacity_ + s] =
                prev_present ? last_lanes_[col.lane_off + (i - 1)] : 0;
        }
    }

    // Presence snapshot: the ever-captured set at seal time (the open
    // map is never cleared, so presence is monotone across vectors).
    for (std::size_t w = 0; w < words_; ++w) {
        std::atomic_ref<std::uint64_t> ev(ever_[w]);
        presence_[s * words_ + w] = ev.load(std::memory_order_relaxed);
    }
    ts_begin_[s] = ts_begin;
    ts_end_[s] = ts_end;

    // Encode the float row once, at seal: score time is pure view
    // consumption (zero bytes moved per scored vector).
    ensureFloatPlane();
    float *frow = fplane_ + static_cast<std::size_t>(s) * float_stride_;
    RowReader row(this, s);
    if (encoder_) {
        encoder_(row, frow);
    } else {
        for (std::size_t c = 0; c < float_cols_; ++c)
            frow[c] = static_cast<float>(
                row.value(static_cast<std::uint32_t>(c), 0));
    }

    // Refresh the shadow from the just-sealed lanes.
    for (std::size_t c = 0; c < cols_.size(); ++c) {
        if (!presentAt(s, static_cast<std::uint32_t>(c)))
            continue;
        const Column &col = cols_[c];
        for (std::uint32_t i = 0; i < col.entries; ++i)
            last_lanes_[col.lane_off + i] =
                plane_[col.base + i * capacity_ + s];
    }
    std::memcpy(last_presence_.data(), presence_.data() + s * words_,
                words_ * sizeof(std::uint64_t));
    has_last_ = true;

    std::lock_guard<std::mutex> lock(mu_);
    state_[s] = SlotState::Sealed;
    if (ring_.full())
        recycleLocked(ring_.pop()); // window wrap: recycle the oldest
    ring_.push(s);
    claimLocked();
    return fv_len;
}

void
SoaStore::claimLocked()
{
    LAKE_ASSERT(!free_.empty(),
                "soa slot pool exhausted (%zu slots): every spare slot "
                "is pinned by an in-flight batch view — raise "
                "SoaConfig.slack / LAKE_SOA_SLACK",
                capacity_);
    std::uint32_t s = free_.back();
    free_.pop_back();
    state_[s] = SlotState::Open;
    open_slot_ = s;

    // Lane-0 carry-forward: incremental counters (pend_ios) persist
    // across commits because the legacy open map is never cleared.
    for (std::size_t c = 0; c < cols_.size(); ++c) {
        bool carry = has_last_ &&
                     everCaptured(static_cast<std::uint32_t>(c));
        plane_[cols_[c].base + s] =
            carry ? last_lanes_[cols_[c].lane_off] : 0;
    }
}

void
SoaStore::recycleLocked(std::uint32_t slot)
{
    if (pins_[slot] > 0) {
        // An in-flight batch view still reads these bytes: defer the
        // recycle until the last unpin so the view never sees a rewrite.
        state_[slot] = SlotState::Retired;
        return;
    }
    state_[slot] = SlotState::Free;
    free_.push_back(slot);
}

void
SoaStore::truncate(std::optional<Nanos> ts, std::size_t keep_newest)
{
    std::lock_guard<std::mutex> lock(mu_);
    while (ring_.size() > keep_newest) {
        std::uint32_t oldest = ring_.front();
        if (ts.has_value() && ts_end_[oldest] >= *ts)
            break;
        ring_.pop();
        recycleLocked(oldest);
    }
}

std::size_t
SoaStore::sealedCount() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return ring_.size();
}

std::size_t
SoaStore::retiredCount() const
{
    std::lock_guard<std::mutex> lock(mu_);
    std::size_t n = 0;
    for (SlotState s : state_)
        n += s == SlotState::Retired ? 1 : 0;
    return n;
}

FvBatchView
SoaStore::viewAll()
{
    FvBatchView v;
    std::lock_guard<std::mutex> lock(mu_);
    if (ring_.size() == 0)
        return v;
    std::vector<std::uint32_t> slots;
    slots.reserve(ring_.size());
    for (std::size_t i = 0; i < ring_.size(); ++i) {
        std::uint32_t s = ring_.at(i);
        ++pins_[s];
        slots.push_back(s);
    }
    v.rows_ = slots.size();
    v.blocks_.push_back(FvBatchView::Block{this, std::move(slots)});
    return v;
}

FvBatchView
SoaStore::viewTail(std::size_t n)
{
    FvBatchView v;
    std::lock_guard<std::mutex> lock(mu_);
    std::size_t have = ring_.size();
    std::size_t take = std::min(n, have);
    if (take == 0)
        return v;
    std::vector<std::uint32_t> slots;
    slots.reserve(take);
    for (std::size_t i = have - take; i < have; ++i) {
        std::uint32_t s = ring_.at(i);
        ++pins_[s];
        slots.push_back(s);
    }
    v.rows_ = slots.size();
    v.blocks_.push_back(FvBatchView::Block{this, std::move(slots)});
    return v;
}

FeatureVector
SoaStore::materializeAt(std::size_t idx) const
{
    std::uint32_t slot;
    {
        std::lock_guard<std::mutex> lock(mu_);
        slot = ring_.at(idx);
    }
    return materializeSlot(slot);
}

FeatureVector
SoaStore::materializeSlot(std::uint32_t slot) const
{
    FeatureVector fv;
    fv.ts_begin = ts_begin_[slot];
    fv.ts_end = ts_end_[slot];
    for (std::size_t c = 0; c < cols_.size(); ++c) {
        if (!presentAt(slot, static_cast<std::uint32_t>(c)))
            continue;
        const Column &col = cols_[c];
        std::vector<std::uint64_t> entries(col.entries, 0);
        for (std::uint32_t i = 0; i < col.entries; ++i)
            entries[i] = plane_[col.base + i * capacity_ + slot];
        fv.values.emplace(keys_[c], std::move(entries));
    }
    return fv;
}

void
SoaStore::pinSlots(const std::vector<std::uint32_t> &slots)
{
    std::lock_guard<std::mutex> lock(mu_);
    for (std::uint32_t s : slots)
        ++pins_[s];
}

void
SoaStore::unpinSlots(const std::vector<std::uint32_t> &slots)
{
    std::lock_guard<std::mutex> lock(mu_);
    for (std::uint32_t s : slots) {
        LAKE_ASSERT(pins_[s] > 0, "unpin of unpinned soa slot %u", s);
        if (--pins_[s] == 0 && state_[s] == SlotState::Retired) {
            state_[s] = SlotState::Free;
            free_.push_back(s);
        }
    }
}

// ---------------------------------------------------------------------------
// FvBatchView

FvBatchView::~FvBatchView()
{
    for (Block &b : blocks_)
        b.store->unpinSlots(b.slots);
}

FvBatchView &
FvBatchView::operator=(FvBatchView &&other) noexcept
{
    if (this != &other) {
        for (Block &b : blocks_)
            b.store->unpinSlots(b.slots);
        blocks_ = std::move(other.blocks_);
        rows_ = other.rows_;
        other.blocks_.clear();
        other.rows_ = 0;
    }
    return *this;
}

const FvBatchView::Block &
FvBatchView::blockOf(std::size_t row, std::size_t *idx) const
{
    LAKE_ASSERT(row < rows_, "view row %zu out of range", row);
    for (const Block &b : blocks_) {
        if (row < b.slots.size()) {
            *idx = row;
            return b;
        }
        row -= b.slots.size();
    }
    fatal("batch view row accounting corrupt");
}

Nanos
FvBatchView::tsBegin(std::size_t row) const
{
    std::size_t i;
    const Block &b = blockOf(row, &i);
    return b.store->ts_begin_[b.slots[i]];
}

Nanos
FvBatchView::tsEnd(std::size_t row) const
{
    std::size_t i;
    const Block &b = blockOf(row, &i);
    return b.store->ts_end_[b.slots[i]];
}

std::uint64_t
FvBatchView::get(std::size_t row, std::uint64_t key) const
{
    std::size_t i;
    const Block &b = blockOf(row, &i);
    std::uint32_t col = b.store->schema_.columnOf(key);
    if (col == Schema::kNoColumn)
        return 0;
    return value(row, col, 0);
}

std::uint64_t
FvBatchView::value(std::size_t row, std::uint32_t col,
                   std::uint32_t entry) const
{
    std::size_t i;
    const Block &b = blockOf(row, &i);
    std::uint32_t slot = b.slots[i];
    LAKE_ASSERT(col < b.store->cols_.size() &&
                    entry < b.store->cols_[col].entries,
                "view value (%u, %u) out of schema range", col, entry);
    if (!b.store->presentAt(slot, col))
        return 0;
    return b.store->lane(col, entry, slot);
}

std::vector<ml::MatrixView>
FvBatchView::matrixViews() const
{
    std::vector<ml::MatrixView> out;
    for (const Block &b : blocks_) {
        const SoaStore *st = b.store;
        if (st->fplane_ == nullptr || b.slots.empty())
            continue;
        // Maximal runs of consecutive slot ids share one uniform row
        // stride: each run is one strided window, zero bytes gathered.
        std::size_t run_start = 0;
        for (std::size_t i = 1; i <= b.slots.size(); ++i) {
            if (i < b.slots.size() &&
                b.slots[i] == b.slots[i - 1] + 1)
                continue;
            out.emplace_back(
                st->fplane_ +
                    static_cast<std::size_t>(b.slots[run_start]) *
                        st->float_stride_,
                i - run_start, st->float_cols_, st->float_stride_);
            run_start = i;
        }
    }
    return out;
}

FvBatchView
FvBatchView::select(const std::vector<std::size_t> &rows) const
{
    FvBatchView v;
    for (std::size_t row : rows) {
        std::size_t i;
        const Block &b = blockOf(row, &i);
        if (!v.blocks_.empty() && v.blocks_.back().store == b.store)
            v.blocks_.back().slots.push_back(b.slots[i]);
        else
            v.blocks_.push_back(Block{b.store, {b.slots[i]}});
    }
    for (Block &b : v.blocks_) {
        b.store->pinSlots(b.slots);
        v.rows_ += b.slots.size();
    }
    return v;
}

void
FvBatchView::append(FvBatchView other)
{
    rows_ += other.rows_;
    for (Block &b : other.blocks_) {
        // Merge same-store blocks so consecutive slots sealed across
        // requests still coalesce into one MatrixView run.
        if (!blocks_.empty() && blocks_.back().store == b.store) {
            blocks_.back().slots.insert(blocks_.back().slots.end(),
                                        b.slots.begin(), b.slots.end());
        } else {
            blocks_.push_back(std::move(b));
        }
    }
    other.blocks_.clear(); // pins transferred, not released
    other.rows_ = 0;
}

std::vector<FeatureVector>
FvBatchView::materialize() const
{
    std::vector<FeatureVector> out;
    out.reserve(rows_);
    for (const Block &b : blocks_)
        for (std::uint32_t slot : b.slots)
            out.push_back(b.store->materializeSlot(slot));
    return out;
}

std::size_t
FvBatchView::packBytesAvoided() const
{
    std::size_t bytes = 0;
    for (const Block &b : blocks_)
        for (std::uint32_t slot : b.slots)
            for (std::size_t c = 0; c < b.store->cols_.size(); ++c)
                if (b.store->presentAt(slot,
                                       static_cast<std::uint32_t>(c)))
                    bytes += b.store->cols_[c].entries *
                             sizeof(std::uint64_t);
    return bytes;
}

} // namespace lake::registry
