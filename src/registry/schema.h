#ifndef LAKE_REGISTRY_SCHEMA_H
#define LAKE_REGISTRY_SCHEMA_H

/**
 * @file
 * Feature-vector schemas.
 *
 * §5.2: "Each registry has a schema... a map from feature key (name) to
 * a tuple of <size, entries>". Values are untyped bytes of the given
 * size; entries > 1 declares the history idiom, where index 0 is the
 * most recent sample and indices 1..N-1 are the samples carried forward
 * from the previous N-1 feature vectors.
 */

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

namespace lake::registry {

/** Stable 64-bit key for a feature name (FNV-1a; never 0). */
std::uint64_t featureKey(const std::string &name);

/** Declared shape of one feature. */
struct FeatureSpec
{
    std::string name;
    std::uint32_t size = 8;   //!< bytes per entry (LAKE stores <= 8)
    std::uint32_t entries = 1; //!< 1 = scalar, N > 1 = history array
};

/** The format of every feature vector in a registry. */
class Schema
{
  public:
    /**
     * Declares a feature.
     * @param name    feature key
     * @param size    bytes per entry (1..8)
     * @param entries history depth (>= 1)
     * @return *this for chaining
     */
    Schema &add(const std::string &name, std::uint32_t size = 8,
                std::uint32_t entries = 1);

    /** Looks up a feature by key; nullptr when undeclared. */
    const FeatureSpec *find(std::uint64_t key) const;

    /** columnOf's undeclared-key sentinel. */
    static constexpr std::uint32_t kNoColumn = 0xffffffffu;

    /**
     * Declaration-order column index of @p key — the SoA plane's
     * hash-free capture coordinate; kNoColumn when undeclared.
     */
    std::uint32_t columnOf(std::uint64_t key) const;

    /** Number of declared features. */
    std::size_t featureCount() const { return by_key_.size(); }

    /** True when any feature declares history (entries > 1). */
    bool hasHistory() const { return has_history_; }

    /** Declared features in declaration order. */
    const std::vector<FeatureSpec> &features() const { return order_; }

  private:
    std::unordered_map<std::uint64_t, std::size_t> by_key_;
    std::vector<FeatureSpec> order_;
    bool has_history_ = false;
};

} // namespace lake::registry

#endif // LAKE_REGISTRY_SCHEMA_H
