#ifndef LAKE_REGISTRY_SOA_H
#define LAKE_REGISTRY_SOA_H

/**
 * @file
 * The zero-copy SoA capture→score data plane (DESIGN.md §12).
 *
 * The legacy capture path stores each feature vector as a heap
 * `unordered_map<key, vector<u64>>`: every capture hashes, every commit
 * allocates, and every score gathers the map back into a dense float
 * matrix. This plane replaces that with a schema-indexed, cache-line-
 * tiled structure-of-arrays column store carved directly from the
 * lakeShm arena:
 *
 *  - beginFvCapture claims a fixed-stride *slot*; captureFeature /
 *    captureFeatureIncr write through a column index resolved once from
 *    the Schema (no hashing, no allocation) with relaxed atomics into
 *    64-byte-aligned column regions (no false sharing between features);
 *  - commit is a slot *seal* — history-lane inheritance, a presence-mask
 *    snapshot, one float-row encode — plus a ring-index append;
 *  - a ScoreServer batch is an FvBatchView: a pinned, zero-copy window
 *    over committed slots whose float rows feed the blocked GEMM and
 *    batched kNN substrate as strided MatrixViews, with no gather/pack
 *    step (reg_pack_bytes stays 0 on this path).
 *
 * Slot lifecycle: free → open (exactly one per store) → sealed (in the
 * window ring) → recycled. Recycling a slot still referenced by an
 * in-flight FvBatchView is *deferred* until the last view unpins it, so
 * a window wrap or truncate can never rewrite bytes a batch is reading.
 *
 * Legacy-semantics contract (the equivalence tests pin this down):
 * a column captured once stays present in every later vector (the open
 * map is never cleared), lane 0 of every ever-captured column carries
 * forward across commits (incremental counters persist), and history
 * lanes 1..E-1 inherit from the previous sealed vector exactly as
 * commitFvCapture's map walk did. materialize() therefore reproduces
 * the legacy FeatureVector bit-for-bit.
 */

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <vector>

#include "base/aligned.h"
#include "base/ring_buffer.h"
#include "base/time.h"
#include "ml/matrix.h"
#include "registry/schema.h"
#include "shm/arena.h"

namespace lake::registry {

struct FeatureVector;
class SoaStore;

/** Boot-time knobs of the SoA data plane (LakeConfig.soa_plane). */
struct SoaConfig
{
    /** Master switch; registries store legacy FeatureVectors while off. */
    bool enabled = false;
    /**
     * Extra slots beyond window + 1 (sealed window plus the open slot)
     * that absorb recycle deferral while batch views are in flight. A
     * store panics only when every spare slot is pinned *and* the
     * window wraps — size this to the deepest concurrent batch.
     */
    std::size_t slack = 8;

    /** Applies LAKE_SOA / LAKE_SOA_SLACK environment overrides
     *  (explicit opt-in, same idiom as ScoringConfig::applyEnv). */
    void applyEnv();
};

/**
 * A pinned, zero-copy batch window over committed slots.
 *
 * Move-only RAII: every referenced slot stays unrecycled (its bytes
 * immutable) until the view destructs. Views are cheap to create —
 * pinning is a counter bump — and compose: ScoreServer coalescing
 * append()s per-request views into one dispatch view, and selection
 * (e2e's timestamp matching) re-pins a row subset.
 */
class FvBatchView
{
  public:
    FvBatchView() = default;
    ~FvBatchView();

    FvBatchView(FvBatchView &&other) noexcept
        : blocks_(std::move(other.blocks_)), rows_(other.rows_)
    {
        other.blocks_.clear();
        other.rows_ = 0;
    }
    FvBatchView &operator=(FvBatchView &&other) noexcept;

    FvBatchView(const FvBatchView &) = delete;
    FvBatchView &operator=(const FvBatchView &) = delete;

    /** Total committed vectors (rows) in the view. */
    std::size_t size() const { return rows_; }
    bool empty() const { return rows_ == 0; }

    /** Capture-window timestamps of row @p row. */
    Nanos tsBegin(std::size_t row) const;
    Nanos tsEnd(std::size_t row) const;

    /** Scalar read by schema key: lane 0, 0 when never captured —
     *  exactly FeatureVector::get. */
    std::uint64_t get(std::size_t row, std::uint64_t key) const;

    /** Lane read by column index (entry 0 = most recent). */
    std::uint64_t value(std::size_t row, std::uint32_t col,
                        std::uint32_t entry = 0) const;

    /**
     * The zero-copy float windows: one strided MatrixView per maximal
     * run of consecutive slots, in row order. Feeding these to the
     * view-classifier GEMM path moves zero bytes per scored vector.
     */
    std::vector<ml::MatrixView> matrixViews() const;

    /** Re-pinned view of a row subset (rows in the given order). */
    FvBatchView select(const std::vector<std::size_t> &rows) const;

    /** Steals @p other's rows onto the back of this view. */
    void append(FvBatchView other);

    /** Legacy-format copy of every row (the compatibility shim). */
    std::vector<FeatureVector> materialize() const;

    /** Bytes a legacy gather of this batch would have staged. */
    std::size_t packBytesAvoided() const;

  private:
    friend class SoaStore;

    /** Rows from one store: slots in view order, each pinned. */
    struct Block
    {
        SoaStore *store;
        std::vector<std::uint32_t> slots;
    };

    const Block &blockOf(std::size_t row, std::size_t *idx) const;

    std::vector<Block> blocks_;
    std::size_t rows_ = 0;
};

/**
 * The columnar slot store backing one registry's capture plane.
 *
 * Layout, carved in one arena allocation: per schema column c (declared
 * order) a region of entries(c) lanes × capacity slots of u64, each
 * region 64-byte aligned and padded — concurrent captures of different
 * features never share a cache line, and only lane 0 of the single open
 * slot is ever written concurrently (via relaxed atomic_ref; see
 * DESIGN.md §12 for why relaxed suffices). The float plane (capacity ×
 * roundUp(floatCols, 16) floats) is carved lazily at the first seal so
 * stores that never score pay no float memory.
 *
 * Threading: set()/add() are callable from any thread while a capture
 * is open (same contract as Registry::captureFeature). seal(),
 * truncate(), and view creation are owner/scorer operations; the
 * internal mutex serializes slot lifecycle against pin/unpin from
 * concurrent view destruction only.
 */
class SoaStore
{
  public:
    /** Reads one sealing slot's lanes for the float encoder. */
    class RowReader
    {
      public:
        /** Lane @p entry of column @p col; 0 when never captured. */
        std::uint64_t value(std::uint32_t col,
                            std::uint32_t entry = 0) const;

      private:
        friend class SoaStore;
        RowReader(const SoaStore *store, std::uint32_t slot)
            : store_(store), slot_(slot)
        {}
        const SoaStore *store_;
        std::uint32_t slot_;
    };

    /**
     * Seal-time float-row encoder: writes floatCols() floats for the
     * sealing slot. The default encodes lane 0 of every column in
     * schema order (featureCount floats).
     */
    using FloatEncoder =
        std::function<void(const RowReader &row, float *out)>;

    /**
     * Carves a store from @p arena. @p window is the sealed-slot ring
     * capacity (same meaning as the registry window); total slots are
     * window + 1 + cfg.slack.
     * @return nullptr when the arena cannot fit the column plane
     */
    static std::unique_ptr<SoaStore> create(const Schema &schema,
                                            std::size_t window,
                                            const SoaConfig &cfg,
                                            shm::ShmArena &arena);

    ~SoaStore();

    SoaStore(const SoaStore &) = delete;
    SoaStore &operator=(const SoaStore &) = delete;

    /// @name Capture plane (any thread while a capture is open)
    /// @{

    /** Sets column @p col lane 0 of the open slot (relaxed atomic). */
    void
    set(std::uint32_t col, std::uint64_t value)
    {
        std::atomic_ref<std::uint64_t> lane(
            plane_[cols_[col].base + open_slot_]);
        lane.store(value, std::memory_order_relaxed);
        markEver(col);
    }

    /** Adds @p delta to column @p col lane 0 (relaxed atomic RMW). */
    void
    add(std::uint32_t col, std::int64_t delta)
    {
        std::atomic_ref<std::uint64_t> lane(
            plane_[cols_[col].base + open_slot_]);
        lane.fetch_add(static_cast<std::uint64_t>(delta),
                       std::memory_order_relaxed);
        markEver(col);
    }

    /// @}
    /// @name Slot lifecycle (owner-serialized)
    /// @{

    /**
     * Seals the open slot as [ts_begin, ts_end]: inherits history
     * lanes, snapshots the presence mask, encodes the float row,
     * appends to the sealed ring (recycling the overwritten slot on a
     * window wrap), and claims the next open slot with lane-0
     * carry-forward.
     * @return features present in the sealed vector (the fv_len metric)
     */
    std::size_t seal(Nanos ts_begin, Nanos ts_end);

    /**
     * Installs the float encoder; must run before the first seal (the
     * float plane's width is fixed at first carve). @p float_cols = 0
     * keeps the default raw-lane encoding.
     */
    void setFloatEncoder(std::size_t float_cols, FloatEncoder fn);

    /**
     * Drops sealed slots older than @p ts front-first, keeping at least
     * @p keep_newest (the history-preservation rule), recycling each —
     * deferred while pinned. Nullopt @p ts drops unconditionally.
     */
    void truncate(std::optional<Nanos> ts, std::size_t keep_newest);

    /// @}
    /// @name Batch access
    /// @{

    /** Sealed vectors currently in the window ring. */
    std::size_t sealedCount() const;

    /** Pinned view over every sealed slot, oldest first. */
    FvBatchView viewAll();

    /** Pinned view over the newest @p n sealed slots, oldest first. */
    FvBatchView viewTail(std::size_t n);

    /** Legacy-format copy of sealed slot index @p idx (oldest = 0). */
    FeatureVector materializeAt(std::size_t idx) const;

    /// @}

    /** Floats per encoded row (columns of every MatrixView). */
    std::size_t floatCols() const { return float_cols_; }
    /** Float-plane row stride (floats between consecutive slots). */
    std::size_t floatStride() const { return float_stride_; }
    /** Total slots (window + 1 + slack). */
    std::size_t capacity() const { return capacity_; }
    /** Slots whose recycling is deferred behind a pinned view. */
    std::size_t retiredCount() const;

    /** Raw u64 address of (col, entry, slot) — alignment tests only. */
    const std::uint64_t *
    laneAddr(std::uint32_t col, std::uint32_t entry,
             std::uint32_t slot) const
    {
        return &plane_[cols_[col].base + entry * capacity_ + slot];
    }

  private:
    friend class FvBatchView;

    /** Per-column geometry: base u64 offset of lane 0 into plane_. */
    struct Column
    {
        std::size_t base;       //!< plane_ index of (lane 0, slot 0)
        std::size_t lane_off;   //!< offset into last_lanes_
        std::uint32_t entries;
    };

    enum class SlotState : std::uint8_t
    {
        Free,
        Open,
        Sealed,
        Retired, //!< recycled while pinned; freed at last unpin
    };

    SoaStore(const Schema &schema, std::size_t window,
             const SoaConfig &cfg, shm::ShmArena &arena);

    std::uint64_t lane(std::uint32_t col, std::uint32_t entry,
                       std::uint32_t slot) const
    {
        return plane_[cols_[col].base + entry * capacity_ + slot];
    }

    bool everCaptured(std::uint32_t col) const
    {
        // atomic_ref<const T> lands in C++26; cast away const for the
        // relaxed load (the referenced word is mutable in practice).
        std::atomic_ref<std::uint64_t> w(
            const_cast<std::uint64_t &>(ever_[col >> 6]));
        return (w.load(std::memory_order_relaxed) >> (col & 63)) & 1u;
    }

    void
    markEver(std::uint32_t col)
    {
        std::atomic_ref<std::uint64_t> w(ever_[col >> 6]);
        std::uint64_t bit = 1ull << (col & 63);
        if (!(w.load(std::memory_order_relaxed) & bit))
            w.fetch_or(bit, std::memory_order_relaxed);
    }

    bool presentAt(std::uint32_t slot, std::uint32_t col) const
    {
        return (presence_[slot * words_ + (col >> 6)] >>
                (col & 63)) & 1u;
    }

    void ensureFloatPlane();
    void claimLocked();
    void recycleLocked(std::uint32_t slot);
    void pinSlots(const std::vector<std::uint32_t> &slots);
    void unpinSlots(const std::vector<std::uint32_t> &slots);
    FeatureVector materializeSlot(std::uint32_t slot) const;

    const Schema &schema_;
    shm::ShmArena &arena_;
    std::size_t capacity_;
    std::size_t words_;      //!< presence words per slot
    std::vector<Column> cols_;
    /** Column index → schema key (materialize's reverse mapping). */
    std::vector<std::uint64_t> keys_;

    shm::ShmOffset plane_off_ = shm::kNullOffset;
    std::uint64_t *plane_ = nullptr;

    std::size_t float_cols_;
    std::size_t float_stride_;
    FloatEncoder encoder_;
    shm::ShmOffset fplane_off_ = shm::kNullOffset;
    float *fplane_ = nullptr;

    /** Ever-captured column bits (monotonic; the open map never
     *  cleared). Relaxed-atomic words: capture threads set them. */
    std::vector<std::uint64_t> ever_;

    /** Presence snapshot per sealed slot (capacity × words_). */
    std::vector<std::uint64_t> presence_;
    base::AlignedVec<Nanos> ts_begin_;
    base::AlignedVec<Nanos> ts_end_;

    /** Shadow of the newest sealed vector's lanes (Σ entries u64s):
     *  history inheritance and carry-forward never read a slot that a
     *  window wrap might already have recycled. */
    std::vector<std::uint64_t> last_lanes_;
    std::vector<std::uint64_t> last_presence_;
    bool has_last_ = false;

    /** Open slot id; written only by owner-serialized seal/claim. */
    std::uint32_t open_slot_ = 0;

    mutable std::mutex mu_; //!< guards ring_/free_/state_/pins_
    RingBuffer<std::uint32_t> ring_;
    std::vector<std::uint32_t> free_;
    std::vector<SlotState> state_;
    std::vector<std::uint32_t> pins_;
};

} // namespace lake::registry

#endif // LAKE_REGISTRY_SOA_H
