#ifndef LAKE_CHANNEL_CHANNEL_H
#define LAKE_CHANNEL_CHANNEL_H

/**
 * @file
 * Kernel/user communication channels.
 *
 * §6 of the paper evaluates Linux's kernel-to-user mechanisms — signals,
 * device read/write, Netlink sockets, and mmap'd memory with spinning —
 * and picks Netlink for commands (low latency without burning a core)
 * plus lakeShm for bulk data. This module reproduces that tradeoff
 * space: every transport really moves bytes through a queue, and each
 * charges a calibrated virtual-time cost (Table 2 doorbell costs; the
 * Fig. 6 message-size curve).
 */

#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "base/time.h"
#include "channel/fault.h"

namespace lake::channel {

/** The four §6 transport mechanisms. */
enum class Kind
{
    Signal,  //!< POSIX signal doorbell; payload via side buffer
    DevRw,   //!< character-device read/write
    Netlink, //!< Netlink socket (LAKE's choice)
    Mmap,    //!< shared page + spinning (fast but burns a CPU)
};

/** Printable transport name. */
const char *kindName(Kind k);

/**
 * Calibrated virtual-time costs of one transport.
 *
 * Doorbell numbers reproduce Table 2; the size-dependent terms
 * reproduce Fig. 6 (flat up to one netlink page, then linear in the
 * copied bytes).
 */
struct CostModel
{
    Nanos doorbell_call;    //!< sender-side cost of posting a doorbell
    Nanos doorbell_latency; //!< delay until the receiver observes it
    Nanos rt_base;          //!< round-trip time for a small message
    std::size_t bulk_threshold; //!< bytes covered by rt_base
    double per_byte_ns;     //!< marginal cost per byte past the threshold
    bool spins;             //!< true when the receiver busy-waits
};

/** The default cost model for a transport. */
CostModel defaultModel(Kind k);

/** A payload in flight, stamped with its delivery time. */
struct Message
{
    std::vector<std::uint8_t> payload;
    Nanos sent_at = 0;
    Nanos deliver_at = 0;
};

/**
 * A duplex kernel<->user channel bound to a shared virtual clock.
 *
 * The remoting layer is synchronous RPC, so both directions share the
 * clock: sending charges the sender-side cost immediately; receiving
 * advances the clock to the message's delivery time (modelling the
 * receiver blocking until the doorbell fires).
 */
class Channel
{
  public:
    /** Direction selector for send/recv. */
    enum class Dir
    {
        KernelToUser,
        UserToKernel,
    };

    /**
     * @param kind  transport mechanism
     * @param clock shared virtual clock (must outlive the channel)
     */
    Channel(Kind kind, Clock &clock);

    /** Channel with an explicit (e.g. perturbed) cost model. */
    Channel(Kind kind, Clock &clock, CostModel model);

    /** Transport mechanism. */
    Kind kind() const { return kind_; }
    /** Cost model in force. */
    const CostModel &model() const { return model_; }

    /**
     * Sends @p payload in direction @p dir.
     * Charges the sender-side share of the transfer cost to the clock.
     */
    void send(Dir dir, std::vector<std::uint8_t> payload);

    /**
     * Sends a copy of @p n bytes at @p data, staging it in a pooled
     * buffer so steady-state traffic (a scratch encoder on each side,
     * buffers recycled after consumption) performs no heap allocation.
     * Cost accounting is identical to the by-value overload.
     */
    void send(Dir dir, const void *data, std::size_t n);

    /**
     * Receives the oldest message in direction @p dir, blocking in
     * virtual time until its delivery instant. Panics when the queue is
     * empty — in the synchronous RPC protocol a receive without a prior
     * send is a protocol bug.
     */
    std::vector<std::uint8_t> recv(Dir dir);

    /**
     * Fallible receive: like recv, but returns nullopt when no message
     * is pending instead of panicking. Under fault injection a dropped
     * command or response makes an empty queue a *reachable* state, not
     * a protocol bug; lakeLib turns the nullopt into a timeout Status.
     */
    std::optional<std::vector<std::uint8_t>> tryRecv(Dir dir);

    /** True when a message is pending in direction @p dir. */
    bool pending(Dir dir) const;

    /** One-way transfer cost of @p bytes (half the Fig. 6 round trip). */
    Nanos transferCost(std::size_t bytes) const;

    /** Full modeled round trip for a request/response pair. */
    Nanos roundTripCost(std::size_t req_bytes, std::size_t resp_bytes) const;

    /** Messages sent since creation (both directions). */
    std::uint64_t messagesSent() const { return messages_sent_; }
    /** Payload bytes moved since creation (both directions). */
    std::uint64_t bytesSent() const { return bytes_sent_; }

    /**
     * Installs (replacing any previous) a fault injector that perturbs
     * every subsequent send. The injector is owned by the channel and
     * starts armed; use faults()->disarm() to suspend it.
     * @return the installed injector, for counter access
     */
    FaultInjector &installFaults(FaultSpec spec);

    /** The installed fault injector, or nullptr on a clean channel. */
    FaultInjector *faults() { return faults_.get(); }

    /// @name Buffer recycling (zero-alloc wire path)
    /// @{

    /**
     * A cleared buffer from the recycle pool (or a fresh one when the
     * pool is empty). Capacity is retained from its previous trip, so
     * the warm path assigns into it without allocating.
     */
    std::vector<std::uint8_t> takeBuffer();

    /**
     * Returns a consumed message buffer to the pool. Both sides share
     * the channel, so a command buffer lakeLib filled can be recycled
     * by lakeD after dispatch, and vice versa for responses. The pool
     * is bounded; excess buffers are simply destroyed.
     */
    void recycle(std::vector<std::uint8_t> buf);

    /// @}

    /**
     * The shared virtual clock. Exposed so the remoting layer can
     * charge timeout deadlines and retry backoff against the same
     * timeline the transport charges its costs to.
     */
    Clock &clock() { return clock_; }

  private:
    std::deque<Message> &queueFor(Dir dir);
    const std::deque<Message> &queueFor(Dir dir) const;

    Kind kind_;
    Clock &clock_;
    CostModel model_;
    /** Recycle-pool bound; beyond this, returned buffers are freed. */
    static constexpr std::size_t kPoolCap = 16;

    std::deque<Message> to_user_;
    std::deque<Message> to_kernel_;
    std::vector<std::vector<std::uint8_t>> pool_;
    std::unique_ptr<FaultInjector> faults_;
    std::uint64_t messages_sent_ = 0;
    std::uint64_t bytes_sent_ = 0;
};

} // namespace lake::channel

#endif // LAKE_CHANNEL_CHANNEL_H
