#include "channel/fault.h"

namespace lake::channel {

FaultInjector::FaultInjector(FaultSpec spec)
    : spec_(spec), rng_(spec.seed)
{
}

std::uint64_t
FaultInjector::injected() const
{
    return dropped_ + truncated_ + flipped_ + duplicated_ + delayed_;
}

FaultInjector::Outcome
FaultInjector::apply(bool kernel_to_user, std::vector<std::uint8_t> &payload)
{
    Outcome out;
    if (!armed_)
        return out;
    bool direction_armed =
        kernel_to_user ? spec_.kernel_to_user : spec_.user_to_kernel;
    if (!direction_armed)
        return out;
    ++seen_;

    if (rng_.chance(spec_.drop)) {
        ++dropped_;
        out.drop = true;
        return out;
    }
    if (!payload.empty() && rng_.chance(spec_.truncate)) {
        ++truncated_;
        payload.resize(static_cast<std::size_t>(
            rng_.uniformInt(0, payload.size() - 1)));
        out.truncated = true;
        return out;
    }
    if (!payload.empty() && rng_.chance(spec_.bitflip)) {
        ++flipped_;
        std::uint64_t bit = rng_.uniformInt(0, payload.size() * 8 - 1);
        payload[static_cast<std::size_t>(bit / 8)] ^=
            static_cast<std::uint8_t>(1u << (bit % 8));
        out.flipped = true;
        return out;
    }
    if (rng_.chance(spec_.duplicate)) {
        ++duplicated_;
        out.duplicate = true;
        return out;
    }
    if (rng_.chance(spec_.delay)) {
        ++delayed_;
        out.extra_delay = spec_.delay_ns;
        return out;
    }
    return out;
}

} // namespace lake::channel
