#ifndef LAKE_CHANNEL_FAULT_H
#define LAKE_CHANNEL_FAULT_H

/**
 * @file
 * Deterministic message-fault injection for the command channel.
 *
 * The remoting path is LAKE's trust boundary: kernel code must survive
 * a misbehaving lakeD (§3). The injector perturbs messages as they
 * enter a Channel queue — drop, truncate, bit-flip, duplicate, delay —
 * per direction and with a seeded generator, so every failure a test
 * observes replays bit-identically. Wiring it into Channel (rather
 * than any one transport) means all four §6 mechanisms can be
 * exercised with the same knobs.
 */

#include <cstdint>
#include <vector>

#include "base/rng.h"
#include "base/time.h"

namespace lake::channel {

/** Knobs for deterministic fault injection (probabilities in [0,1]). */
struct FaultSpec
{
    /** Seed for the injector's private generator. */
    std::uint64_t seed = 0x1a4e;
    /** Probability a message vanishes in transit. */
    double drop = 0.0;
    /** Probability a message is cut short at a random byte. */
    double truncate = 0.0;
    /** Probability one random bit of the payload flips. */
    double bitflip = 0.0;
    /** Probability a message is delivered twice. */
    double duplicate = 0.0;
    /** Probability delivery is delayed by an extra @ref delay_ns. */
    double delay = 0.0;
    /** Extra delivery latency charged when a delay fault fires. */
    Nanos delay_ns = 200_us;
    /** Arm the command direction (lakeLib -> lakeD). */
    bool kernel_to_user = true;
    /** Arm the response direction (lakeD -> lakeLib). */
    bool user_to_kernel = true;
};

/**
 * Seeded per-channel fault source.
 *
 * At most one fault fires per message (drop, truncate, bit-flip,
 * duplicate, delay — rolled in that fixed order), which keeps the
 * per-message fault distribution easy to reason about and replayable.
 */
class FaultInjector
{
  public:
    /** Delivery-side effects of one apply() call. */
    struct Outcome
    {
        bool drop = false;      //!< message never enqueued
        bool duplicate = false; //!< message enqueued twice
        bool truncated = false; //!< payload was cut short in place
        bool flipped = false;   //!< one payload bit was flipped
        Nanos extra_delay = 0;  //!< added to the delivery instant
    };

    explicit FaultInjector(FaultSpec spec);

    /**
     * Rolls the fault dice for one message. Truncate and bit-flip
     * mutate @p payload in place; drop/duplicate/delay are reported in
     * the Outcome for the channel to realise.
     * @param kernel_to_user direction of travel
     */
    Outcome apply(bool kernel_to_user, std::vector<std::uint8_t> &payload);

    /** Enables injection (constructed armed). */
    void arm() { armed_ = true; }
    /** Suspends injection; messages pass through untouched. */
    void disarm() { armed_ = false; }
    /** True while injection is active. */
    bool armed() const { return armed_; }

    /** Spec in force. */
    const FaultSpec &spec() const { return spec_; }

    /// @name Counters (per fault class, for tests and benches)
    /// @{
    std::uint64_t dropped() const { return dropped_; }
    std::uint64_t truncated() const { return truncated_; }
    std::uint64_t flipped() const { return flipped_; }
    std::uint64_t duplicated() const { return duplicated_; }
    std::uint64_t delayed() const { return delayed_; }
    /** Total faults injected (sum of the classes). */
    std::uint64_t injected() const;
    /** Messages inspected while armed. */
    std::uint64_t seen() const { return seen_; }
    /// @}

  private:
    FaultSpec spec_;
    Rng rng_;
    bool armed_ = true;
    std::uint64_t seen_ = 0;
    std::uint64_t dropped_ = 0;
    std::uint64_t truncated_ = 0;
    std::uint64_t flipped_ = 0;
    std::uint64_t duplicated_ = 0;
    std::uint64_t delayed_ = 0;
};

} // namespace lake::channel

#endif // LAKE_CHANNEL_FAULT_H
