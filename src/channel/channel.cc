#include "channel/channel.h"

#include <utility>

#include "base/logging.h"
#include "obs/trace.h"

namespace lake::channel {
namespace {

/** Emits one instant per fault class the injector realised. */
void
traceFaults(const FaultInjector::Outcome &out, bool kernel_to_user,
            Nanos now, std::size_t bytes)
{
    auto &tr = obs::Tracer::global();
    if (!tr.enabled())
        return;
    // Attribute the fault to the sending side so it lands on the same
    // trace lane as the message it mangled.
    obs::Side side = kernel_to_user ? obs::Side::Kernel : obs::Side::Daemon;
    if (out.drop)
        tr.instant(side, "fault", "fault.drop", now, obs::kNoId, "bytes",
                   bytes);
    if (out.truncated)
        tr.instant(side, "fault", "fault.truncate", now, obs::kNoId,
                   "bytes", bytes);
    if (out.flipped)
        tr.instant(side, "fault", "fault.bitflip", now, obs::kNoId,
                   "bytes", bytes);
    if (out.duplicate)
        tr.instant(side, "fault", "fault.duplicate", now, obs::kNoId,
                   "bytes", bytes);
    if (out.extra_delay > 0)
        tr.instant(side, "fault", "fault.delay", now, obs::kNoId,
                   "extra_ns", out.extra_delay);
}

} // namespace

const char *
kindName(Kind k)
{
    switch (k) {
      case Kind::Signal:  return "Signal";
      case Kind::DevRw:   return "Device R/W";
      case Kind::Netlink: return "Netlink";
      case Kind::Mmap:    return "Mmap";
    }
    return "Unknown";
}

CostModel
defaultModel(Kind k)
{
    // Doorbell costs are Table 2 of the paper; round-trip bases and the
    // per-byte slope are calibrated so the Netlink sweep reproduces
    // Fig. 6 (≈28-33 us flat through 4 KiB, 67.8 us at 8 KiB, 256.9 us
    // at 32 KiB => ~7.9 ns marginal per copied byte).
    switch (k) {
      case Kind::Signal:
        return {56_us, 56_us, 112_us, 4096, 15.0, false};
      case Kind::DevRw:
        return {6_us, 57_us, 63_us, 4096, 9.5, false};
      case Kind::Netlink:
        return {11_us, 54_us, 28_us, 4096, 7.9, false};
      case Kind::Mmap:
        return {6_us, 6_us, 12_us, 4096, 4.0, true};
    }
    panic("unknown channel kind");
}

Channel::Channel(Kind kind, Clock &clock)
    : Channel(kind, clock, defaultModel(kind))
{
}

Channel::Channel(Kind kind, Clock &clock, CostModel model)
    : kind_(kind), clock_(clock), model_(model)
{
    pool_.reserve(kPoolCap);
}

std::deque<Message> &
Channel::queueFor(Dir dir)
{
    return dir == Dir::KernelToUser ? to_user_ : to_kernel_;
}

const std::deque<Message> &
Channel::queueFor(Dir dir) const
{
    return dir == Dir::KernelToUser ? to_user_ : to_kernel_;
}

Nanos
Channel::transferCost(std::size_t bytes) const
{
    Nanos cost = model_.rt_base / 2;
    if (bytes > model_.bulk_threshold) {
        double extra =
            model_.per_byte_ns *
            static_cast<double>(bytes - model_.bulk_threshold);
        cost += static_cast<Nanos>(extra);
    }
    return cost;
}

Nanos
Channel::roundTripCost(std::size_t req_bytes, std::size_t resp_bytes) const
{
    return transferCost(req_bytes) + transferCost(resp_bytes);
}

FaultInjector &
Channel::installFaults(FaultSpec spec)
{
    faults_ = std::make_unique<FaultInjector>(spec);
    return *faults_;
}

void
Channel::send(Dir dir, std::vector<std::uint8_t> payload)
{
    // Sender pays roughly half the one-way cost (marshalling + enqueue);
    // the other half is queueing/wakeup delay realised at delivery.
    Nanos one_way = transferCost(payload.size());
    Nanos sender_share = one_way / 2;
    clock_.advance(sender_share);

    // Sender-side accounting covers what was *sent*, before any fault
    // mangles or loses it in flight.
    ++messages_sent_;
    bytes_sent_ += payload.size();

    Nanos extra_delay = 0;
    bool duplicate = false;
    if (faults_ && faults_->armed()) {
        std::size_t sent_bytes = payload.size();
        FaultInjector::Outcome out =
            faults_->apply(dir == Dir::KernelToUser, payload);
        traceFaults(out, dir == Dir::KernelToUser, clock_.now(),
                    sent_bytes);
        if (out.drop)
            return; // vanished in transit; the sender already paid
        extra_delay = out.extra_delay;
        duplicate = out.duplicate;
    }

    Message msg;
    msg.sent_at = clock_.now();
    msg.deliver_at = clock_.now() + (one_way - sender_share) + extra_delay;
    msg.payload = std::move(payload);
    if (duplicate)
        queueFor(dir).push_back(msg);
    queueFor(dir).push_back(std::move(msg));
}

void
Channel::send(Dir dir, const void *data, std::size_t n)
{
    std::vector<std::uint8_t> buf = takeBuffer();
    const auto *p = static_cast<const std::uint8_t *>(data);
    if (n > 0)
        buf.assign(p, p + n);
    send(dir, std::move(buf));
}

std::vector<std::uint8_t>
Channel::takeBuffer()
{
    if (pool_.empty())
        return {};
    std::vector<std::uint8_t> buf = std::move(pool_.back());
    pool_.pop_back();
    buf.clear();
    return buf;
}

void
Channel::recycle(std::vector<std::uint8_t> buf)
{
    if (pool_.size() < kPoolCap && buf.capacity() > 0)
        pool_.push_back(std::move(buf));
}

std::vector<std::uint8_t>
Channel::recv(Dir dir)
{
    auto &q = queueFor(dir);
    LAKE_ASSERT(!q.empty(), "recv on empty %s channel", kindName(kind_));
    Message msg = std::move(q.front());
    q.pop_front();
    clock_.advanceTo(msg.deliver_at);
    return std::move(msg.payload);
}

std::optional<std::vector<std::uint8_t>>
Channel::tryRecv(Dir dir)
{
    auto &q = queueFor(dir);
    if (q.empty())
        return std::nullopt;
    Message msg = std::move(q.front());
    q.pop_front();
    clock_.advanceTo(msg.deliver_at);
    return std::move(msg.payload);
}

bool
Channel::pending(Dir dir) const
{
    return !queueFor(dir).empty();
}

} // namespace lake::channel
