#ifndef LAKE_BASE_TIME_H
#define LAKE_BASE_TIME_H

/**
 * @file
 * Virtual time for the LAKE simulation substrate.
 *
 * All costs in the repository (boundary crossings, PCIe transfers, GPU
 * kernels, NVMe service times) are charged against virtual nanoseconds so
 * experiments are deterministic and independent of the host machine.
 */

#include <cstdint>

#include "base/logging.h"

namespace lake {

/** Virtual time in nanoseconds. */
using Nanos = std::uint64_t;

/** Unit helpers so cost tables read like the paper ("11 us", "5 ms"). */
constexpr Nanos operator"" _ns(unsigned long long v) { return v; }
constexpr Nanos operator"" _us(unsigned long long v) { return v * 1000ull; }
constexpr Nanos operator"" _ms(unsigned long long v)
{
    return v * 1000ull * 1000ull;
}
constexpr Nanos operator"" _s(unsigned long long v)
{
    return v * 1000ull * 1000ull * 1000ull;
}

/** Converts virtual nanoseconds to floating-point microseconds. */
constexpr double toUs(Nanos t) { return static_cast<double>(t) / 1e3; }
/** Converts virtual nanoseconds to floating-point milliseconds. */
constexpr double toMs(Nanos t) { return static_cast<double>(t) / 1e6; }
/** Converts virtual nanoseconds to floating-point seconds. */
constexpr double toSec(Nanos t) { return static_cast<double>(t) / 1e9; }

/**
 * A monotonically advancing virtual clock.
 *
 * Components that execute sequentially share one Clock and charge their
 * modeled costs to it. Concurrent behaviour (contention experiments) is
 * handled by sim::Simulator instead, which owns its own notion of now.
 */
class Clock
{
  public:
    Clock() = default;

    /** Current virtual time. */
    Nanos now() const { return now_; }

    /** Charges @p dt of virtual time. */
    void
    advance(Nanos dt)
    {
        now_ += dt;
    }

    /**
     * Moves the clock forward to an absolute deadline.
     * Never moves backwards; a stale deadline is a no-op.
     */
    void
    advanceTo(Nanos t)
    {
        if (t > now_)
            now_ = t;
    }

    /** Resets to time zero (between benchmark repetitions). */
    void reset() { now_ = 0; }

  private:
    Nanos now_ = 0;
};

} // namespace lake

#endif // LAKE_BASE_TIME_H
