#ifndef LAKE_BASE_RING_BUFFER_H
#define LAKE_BASE_RING_BUFFER_H

/**
 * @file
 * Fixed-capacity circular buffer.
 *
 * The feature registry stores feature vectors "in a circular buffer sized
 * according to the window parameter" (§5.1); when full, the oldest vector
 * is overwritten, which is the behaviour kernels want for telemetry.
 */

#include <cstddef>
#include <type_traits>
#include <utility>
#include <vector>

#include "base/logging.h"

namespace lake {

/**
 * A bounded ring that overwrites its oldest element when full.
 *
 * Not internally synchronized: the feature registry serializes access
 * with its own discipline (capture happens under the registry lock-free
 * map; commit/drain happen on the owning registry).
 */
template <typename T>
class RingBuffer
{
  public:
    /** @param capacity maximum number of live elements; must be > 0 */
    explicit RingBuffer(std::size_t capacity)
        : slots_(capacity)
    {
        LAKE_ASSERT(capacity > 0, "ring capacity must be positive");
    }

    /** Number of live elements. */
    std::size_t size() const { return size_; }
    /** Maximum number of live elements. */
    std::size_t capacity() const { return slots_.size(); }
    /** True when no live elements exist. */
    bool empty() const { return size_ == 0; }
    /** True when the next push will overwrite the oldest element. */
    bool full() const { return size_ == slots_.size(); }

    /**
     * Appends an element, overwriting the oldest when full.
     * @return true if an old element was overwritten.
     */
    bool
    push(T value)
    {
        bool overwrote = full();
        slots_[(head_ + size_) % slots_.size()] = std::move(value);
        if (overwrote)
            head_ = (head_ + 1) % slots_.size();
        else
            ++size_;
        return overwrote;
    }

    /** Removes and returns the oldest element; ring must not be empty. */
    T
    pop()
    {
        LAKE_ASSERT(!empty(), "pop from empty ring");
        T out = std::move(slots_[head_]);
        resetSlot(head_);
        head_ = (head_ + 1) % slots_.size();
        --size_;
        return out;
    }

    /** Oldest element (index 0) through newest (index size()-1). */
    const T &
    at(std::size_t idx) const
    {
        LAKE_ASSERT(idx < size_, "ring index %zu out of range", idx);
        return slots_[(head_ + idx) % slots_.size()];
    }

    /** Mutable access, same indexing as at(). */
    T &
    at(std::size_t idx)
    {
        LAKE_ASSERT(idx < size_, "ring index %zu out of range", idx);
        return slots_[(head_ + idx) % slots_.size()];
    }

    /** Newest element; ring must not be empty. */
    const T &back() const { return at(size_ - 1); }
    /** Oldest element; ring must not be empty. */
    const T &front() const { return at(0); }

    /**
     * Drops all elements. Dropped slots are reset to a
     * default-constructed T so their owned resources (a feature
     * vector's heap maps, say) are released now, not whenever the slot
     * is eventually overwritten.
     */
    void
    clear()
    {
        for (std::size_t i = 0; i < size_; ++i)
            resetSlot((head_ + i) % slots_.size());
        head_ = 0;
        size_ = 0;
    }

    /** Copies out the live elements oldest-first. */
    std::vector<T>
    snapshot() const
    {
        std::vector<T> out;
        out.reserve(size_);
        for (std::size_t i = 0; i < size_; ++i)
            out.push_back(at(i));
        return out;
    }

  private:
    /**
     * Releases the resources of a dead slot. A moved-from T is valid
     * but unspecified — notably a moved-from unordered_map may keep
     * its bucket array — so overwrite with a fresh T. Trivial types
     * own nothing and skip the store.
     */
    void
    resetSlot(std::size_t idx)
    {
        if constexpr (!std::is_trivially_destructible_v<T>)
            slots_[idx] = T();
    }

    std::vector<T> slots_;
    std::size_t head_ = 0;
    std::size_t size_ = 0;
};

} // namespace lake

#endif // LAKE_BASE_RING_BUFFER_H
