#include "base/logging.h"

#include <cstdio>
#include <mutex>
#include <vector>

namespace lake {
namespace detail {

std::string
vformat(const char *fmt, va_list ap)
{
    va_list ap_copy;
    va_copy(ap_copy, ap);
    int needed = std::vsnprintf(nullptr, 0, fmt, ap_copy);
    va_end(ap_copy);
    if (needed < 0)
        return std::string(fmt);
    std::vector<char> buf(static_cast<size_t>(needed) + 1);
    std::vsnprintf(buf.data(), buf.size(), fmt, ap);
    return std::string(buf.data(), static_cast<size_t>(needed));
}

std::string
format(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string s = vformat(fmt, ap);
    va_end(ap);
    return s;
}

void
emit(const char *tag, const std::string &msg)
{
    // One mutex so concurrent actors do not interleave partial lines.
    static std::mutex mu;
    std::lock_guard<std::mutex> lock(mu);
    std::fprintf(stderr, "%s: %s\n", tag, msg.c_str());
}

} // namespace detail

void
inform(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    detail::emit("info", detail::vformat(fmt, ap));
    va_end(ap);
}

void
warn(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    detail::emit("warn", detail::vformat(fmt, ap));
    va_end(ap);
}

void
fatal(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    detail::emit("fatal", detail::vformat(fmt, ap));
    va_end(ap);
    std::exit(1);
}

void
panic(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    detail::emit("panic", detail::vformat(fmt, ap));
    va_end(ap);
    std::abort();
}

} // namespace lake
