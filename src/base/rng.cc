#include "base/rng.h"

#include <cmath>

#include "base/logging.h"

namespace lake {

double
Rng::uniform01()
{
    return std::uniform_real_distribution<double>(0.0, 1.0)(engine_);
}

double
Rng::uniform(double lo, double hi)
{
    LAKE_ASSERT(lo <= hi, "inverted uniform range");
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
}

std::uint64_t
Rng::uniformInt(std::uint64_t lo, std::uint64_t hi)
{
    LAKE_ASSERT(lo <= hi, "inverted uniformInt range");
    return std::uniform_int_distribution<std::uint64_t>(lo, hi)(engine_);
}

double
Rng::exponential(double mean)
{
    LAKE_ASSERT(mean > 0.0, "exponential mean must be positive");
    return std::exponential_distribution<double>(1.0 / mean)(engine_);
}

double
Rng::normal(double mean, double stddev)
{
    return std::normal_distribution<double>(mean, stddev)(engine_);
}

double
Rng::lognormalByMoments(double mean, double stddev)
{
    LAKE_ASSERT(mean > 0.0, "lognormal mean must be positive");
    // Convert the desired value moments into the parameters (mu, sigma)
    // of the underlying normal: if X ~ LogNormal(mu, sigma) then
    //   E[X]   = exp(mu + sigma^2/2)
    //   Var[X] = (exp(sigma^2) - 1) exp(2 mu + sigma^2)
    double cv2 = (stddev / mean) * (stddev / mean);
    double sigma2 = std::log1p(cv2);
    double mu = std::log(mean) - 0.5 * sigma2;
    return std::lognormal_distribution<double>(mu, std::sqrt(sigma2))(
        engine_);
}

bool
Rng::chance(double p)
{
    if (p <= 0.0)
        return false;
    if (p >= 1.0)
        return true;
    return uniform01() < p;
}

} // namespace lake
