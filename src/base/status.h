#ifndef LAKE_BASE_STATUS_H
#define LAKE_BASE_STATUS_H

/**
 * @file
 * Fallible-operation results.
 *
 * The remoting layer forwards accelerator errors to the caller, which
 * "must do its own error checking" (§4.1); Status carries those codes
 * across module boundaries without exceptions.
 */

#include <optional>
#include <string>
#include <utility>

namespace lake {

/** Error category for cross-module results. */
enum class Code
{
    Ok = 0,
    InvalidArgument,
    NotFound,
    AlreadyExists,
    ResourceExhausted,
    Unavailable,
    Internal,
};

/** Human-readable name of a code. */
const char *codeName(Code c);

/** A code plus optional context message. */
class Status
{
  public:
    /** Builds an Ok status. */
    Status() = default;

    /** Builds a status with @p code and @p message. */
    Status(Code code, std::string message)
        : code_(code), message_(std::move(message))
    {}

    /** Convenience: the canonical Ok value. */
    static Status ok() { return Status(); }

    /** True when no error occurred. */
    bool isOk() const { return code_ == Code::Ok; }
    /** The error category. */
    Code code() const { return code_; }
    /** The context message (empty for Ok). */
    const std::string &message() const { return message_; }

    /** "OK" or "<CodeName>: <message>". */
    std::string toString() const;

  private:
    Code code_ = Code::Ok;
    std::string message_;
};

/** A Status plus a value that is only meaningful when the status is Ok. */
template <typename T>
class Result
{
  public:
    /** Success carrying @p value. */
    Result(T value) : value_(std::move(value)) {}
    /** Failure carrying @p status (must not be Ok). */
    Result(Status status) : status_(std::move(status)) {}

    /** True when a value is present. */
    bool isOk() const { return status_.isOk() && value_.has_value(); }
    /** The status. */
    const Status &status() const { return status_; }
    /** The value; only valid when isOk(). */
    const T &value() const { return *value_; }
    /** Moves the value out; only valid when isOk(). */
    T &&takeValue() { return std::move(*value_); }

  private:
    Status status_;
    std::optional<T> value_;
};

} // namespace lake

#endif // LAKE_BASE_STATUS_H
