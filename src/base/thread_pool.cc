#include "base/thread_pool.h"

#include <algorithm>
#include <cstdlib>
#include <memory>

#include "base/logging.h"

namespace lake::base {

namespace {

/** Set while the current thread is executing chunks of some job. */
thread_local bool tl_in_region = false;

std::mutex g_global_mu;
std::unique_ptr<ThreadPool> g_global;

} // namespace

std::size_t
ThreadPool::configuredThreads()
{
    if (const char *env = std::getenv("LAKE_CPU_THREADS")) {
        char *end = nullptr;
        unsigned long v = std::strtoul(env, &end, 10);
        if (end != env && *end == '\0' && v >= 1 && v <= 1024)
            return static_cast<std::size_t>(v);
        warn("ignoring bad LAKE_CPU_THREADS='%s' (want 1..1024)", env);
    }
    unsigned hw = std::thread::hardware_concurrency();
    return hw ? hw : 1;
}

ThreadPool &
ThreadPool::global()
{
    std::lock_guard<std::mutex> lk(g_global_mu);
    if (!g_global)
        g_global = std::make_unique<ThreadPool>(0);
    return *g_global;
}

void
ThreadPool::resetGlobal(std::size_t threads)
{
    std::lock_guard<std::mutex> lk(g_global_mu);
    g_global.reset(); // join the old pool before starting the new one
    g_global = std::make_unique<ThreadPool>(threads);
}

ThreadPool::ThreadPool(std::size_t threads)
{
    if (threads == 0)
        threads = configuredThreads();
    workers_.reserve(threads - 1);
    for (std::size_t t = 0; t + 1 < threads; ++t)
        workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    // Serialize with in-flight parallelFor calls so members stay valid
    // until every caller has drained its job.
    std::lock_guard<std::mutex> callers(caller_mu_);
    {
        std::lock_guard<std::mutex> lk(mu_);
        stop_ = true;
    }
    work_cv_.notify_all();
    for (std::thread &w : workers_)
        w.join();
}

void
ThreadPool::runChunks(Job &job)
{
    tl_in_region = true;
    for (;;) {
        std::size_t c = job.next.fetch_add(1, std::memory_order_relaxed);
        if (c >= job.nchunks)
            break;
        std::size_t b = job.begin + c * job.grain;
        std::size_t e = std::min(job.end, b + job.grain);
        try {
            (*job.fn)(b, e);
        } catch (...) {
            panic("exception escaped a ThreadPool::parallelFor task "
                  "(chunk [%zu, %zu)); LAKE tasks must not throw",
                  b, e);
        }
        if (job.done.fetch_add(1, std::memory_order_acq_rel) + 1 ==
            job.nchunks) {
            std::lock_guard<std::mutex> lk(mu_);
            done_cv_.notify_all();
        }
    }
    tl_in_region = false;
}

void
ThreadPool::workerLoop()
{
    std::uint64_t seen = 0;
    std::unique_lock<std::mutex> lk(mu_);
    for (;;) {
        work_cv_.wait(lk, [&] { return stop_ || generation_ != seen; });
        if (stop_)
            return;
        seen = generation_;
        Job *job = job_;
        if (!job)
            continue;
        ++job->active;
        lk.unlock();
        runChunks(*job);
        lk.lock();
        --job->active;
        if (job->active == 0 && job->done.load() >= job->nchunks)
            done_cv_.notify_all();
    }
}

void
ThreadPool::parallelFor(
    std::size_t begin, std::size_t end, std::size_t grain,
    const std::function<void(std::size_t, std::size_t)> &fn)
{
    if (end <= begin)
        return;
    if (grain == 0)
        grain = 1;
    std::size_t n = end - begin;
    std::size_t nchunks = (n + grain - 1) / grain;

    // Serial fast path: a 1-thread pool, a single chunk, or a nested
    // call from inside a task. Chunk boundaries are identical to the
    // parallel path, so any observable chunking is unchanged.
    if (workers_.empty() || nchunks == 1 || tl_in_region) {
        bool nested = tl_in_region;
        tl_in_region = true;
        for (std::size_t c = 0; c < nchunks; ++c) {
            std::size_t b = begin + c * grain;
            std::size_t e = std::min(end, b + grain);
            try {
                fn(b, e);
            } catch (...) {
                panic("exception escaped a ThreadPool::parallelFor task "
                      "(chunk [%zu, %zu)); LAKE tasks must not throw",
                      b, e);
            }
        }
        tl_in_region = nested;
        return;
    }

    std::lock_guard<std::mutex> callers(caller_mu_);
    Job job;
    job.begin = begin;
    job.end = end;
    job.grain = grain;
    job.nchunks = nchunks;
    job.fn = &fn;
    {
        std::lock_guard<std::mutex> lk(mu_);
        job_ = &job;
        ++generation_;
    }
    work_cv_.notify_all();

    runChunks(job); // the caller is always a participant

    std::unique_lock<std::mutex> lk(mu_);
    done_cv_.wait(lk, [&] {
        return job.done.load() >= job.nchunks && job.active == 0;
    });
    job_ = nullptr;
}

} // namespace lake::base
