#ifndef LAKE_BASE_LOCKFREE_MAP_H
#define LAKE_BASE_LOCKFREE_MAP_H

/**
 * @file
 * Lock-free fixed-capacity hash map.
 *
 * §5.1 of the paper: "The kvpair* is a key-value map from feature keys to
 * values supported by a lock-free hash table", and §5.3: "the register
 * relies on lock-free data structures to enable instrumentation calls on
 * arbitrary kernel threads without needing additional locking
 * disciplines."
 *
 * Design: open addressing with linear probing. Keys are claimed once with
 * a CAS and never removed (the map is cleared wholesale between feature
 * vectors), which keeps probes wait-free after insertion. Values are
 * 64-bit atomics supporting overwrite (capture_feature) and fetch-add
 * (capture_feature_incr).
 */

#include <atomic>
#include <cstdint>
#include <vector>

#include "base/logging.h"

namespace lake {

/**
 * Concurrent map from 64-bit key to 64-bit value.
 *
 * Capacity is fixed at construction; inserting more distinct keys than
 * capacity panics (a feature-vector schema bug, not a runtime condition).
 */
class LockFreeMap
{
  public:
    /** Reserved key meaning "slot empty"; never use as a real key. */
    static constexpr std::uint64_t kEmptyKey = 0;

    /** @param capacity maximum number of distinct keys */
    explicit LockFreeMap(std::size_t capacity)
        : slots_(nextPow2(capacity * 2)), mask_(slots_.size() - 1)
    {
        LAKE_ASSERT(capacity > 0, "map capacity must be positive");
    }

    LockFreeMap(const LockFreeMap &) = delete;
    LockFreeMap &operator=(const LockFreeMap &) = delete;

    /** Sets @p key to @p value, inserting the key if new. */
    void
    put(std::uint64_t key, std::uint64_t value)
    {
        slotFor(key).value.store(value, std::memory_order_release);
    }

    /** Atomically adds @p delta (two's complement) to @p key's value. */
    std::uint64_t
    add(std::uint64_t key, std::int64_t delta)
    {
        return slotFor(key).value.fetch_add(
                   static_cast<std::uint64_t>(delta),
                   std::memory_order_acq_rel) +
               static_cast<std::uint64_t>(delta);
    }

    /**
     * Looks up @p key.
     * @return true and fills @p out when present; false otherwise.
     */
    bool
    get(std::uint64_t key, std::uint64_t *out) const
    {
        LAKE_ASSERT(key != kEmptyKey, "key 0 is reserved");
        std::size_t idx = hash(key) & mask_;
        for (std::size_t probes = 0; probes <= mask_; ++probes) {
            const Slot &s = slots_[idx];
            std::uint64_t k = s.key.load(std::memory_order_acquire);
            if (k == key) {
                *out = s.value.load(std::memory_order_acquire);
                return true;
            }
            if (k == kEmptyKey)
                return false;
            idx = (idx + 1) & mask_;
        }
        return false;
    }

    /** Number of distinct keys inserted so far. */
    std::size_t size() const { return size_.load(std::memory_order_acquire); }

    /**
     * Removes every entry. Not safe concurrently with put/add/get; the
     * registry calls this only while the vector is quiescent (just after
     * commit, before the next capture opens).
     */
    void
    clear()
    {
        for (Slot &s : slots_) {
            s.key.store(kEmptyKey, std::memory_order_relaxed);
            s.value.store(0, std::memory_order_relaxed);
        }
        size_.store(0, std::memory_order_release);
    }

    /** Invokes fn(key, value) for each live entry; same caveat as clear. */
    template <typename Fn>
    void
    forEach(Fn &&fn) const
    {
        for (const Slot &s : slots_) {
            std::uint64_t k = s.key.load(std::memory_order_acquire);
            if (k != kEmptyKey)
                fn(k, s.value.load(std::memory_order_acquire));
        }
    }

  private:
    struct Slot
    {
        std::atomic<std::uint64_t> key{kEmptyKey};
        std::atomic<std::uint64_t> value{0};
    };

    static std::size_t
    nextPow2(std::size_t v)
    {
        std::size_t p = 1;
        while (p < v)
            p <<= 1;
        return p;
    }

    static std::size_t
    hash(std::uint64_t key)
    {
        // splitmix64 finalizer: cheap and well distributed.
        key ^= key >> 30;
        key *= 0xbf58476d1ce4e5b9ull;
        key ^= key >> 27;
        key *= 0x94d049bb133111ebull;
        key ^= key >> 31;
        return static_cast<std::size_t>(key);
    }

    /** Finds or claims the slot for @p key. */
    Slot &
    slotFor(std::uint64_t key)
    {
        LAKE_ASSERT(key != kEmptyKey, "key 0 is reserved");
        std::size_t idx = hash(key) & mask_;
        for (std::size_t probes = 0; probes <= mask_; ++probes) {
            Slot &s = slots_[idx];
            std::uint64_t k = s.key.load(std::memory_order_acquire);
            if (k == key)
                return s;
            if (k == kEmptyKey) {
                std::uint64_t expected = kEmptyKey;
                if (s.key.compare_exchange_strong(
                        expected, key, std::memory_order_acq_rel)) {
                    size_.fetch_add(1, std::memory_order_acq_rel);
                    return s;
                }
                if (expected == key)
                    return s; // another thread claimed it for us
            }
            idx = (idx + 1) & mask_;
        }
        panic("lock-free map over capacity (%zu slots)", slots_.size());
    }

    std::vector<Slot> slots_;
    std::size_t mask_;
    std::atomic<std::size_t> size_{0};
};

} // namespace lake

#endif // LAKE_BASE_LOCKFREE_MAP_H
