#ifndef LAKE_BASE_THREAD_POOL_H
#define LAKE_BASE_THREAD_POOL_H

/**
 * @file
 * Fixed-size worker pool with a deterministic parallel-for.
 *
 * This is *host* parallelism for the simulator: the real CPU cycles
 * spent executing model math, simulated-GPU kernel bodies, and bulk
 * transforms. It never touches virtual time — every cost charged to a
 * Clock is computed exactly as before, so figure benches are
 * bit-identical at any thread count.
 *
 * Determinism contract: parallelFor() splits [begin, end) into fixed
 * chunks of @c grain iterations. Chunk boundaries depend only on the
 * range and grain — never on the thread count — and each output
 * element is produced by exactly one chunk, so any computation whose
 * chunks write disjoint state yields bit-identical results with
 * LAKE_CPU_THREADS=1, 2, or 64. Workers race only for *which* chunk
 * they execute next, not for what the chunk computes.
 *
 * Exceptions are barred: LAKE modules report failure through
 * Status/panic, and an exception escaping a task on a worker thread
 * would otherwise terminate the process with no diagnostics. A
 * throwing task panics with a proper message instead.
 */

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace lake::base {

/**
 * Fixed worker pool. The calling thread always participates in
 * parallelFor, so a pool of size 1 has zero worker threads and runs
 * everything inline.
 */
class ThreadPool
{
  public:
    /**
     * @param threads total parallelism including the caller;
     *        0 = configuredThreads()
     */
    explicit ThreadPool(std::size_t threads = 0);

    /** Joins all workers; outstanding parallelFor calls finish first. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /**
     * The process-wide pool used by the ML compute layer and the
     * simulated-GPU kernel bodies. Created on first use, sized by
     * configuredThreads().
     */
    static ThreadPool &global();

    /**
     * Replaces the global pool with one of @p threads threads
     * (0 = configuredThreads()). Test/bench hook for thread-count
     * sweeps; callers must ensure no parallelFor is in flight.
     */
    static void resetGlobal(std::size_t threads);

    /**
     * Thread count requested via the LAKE_CPU_THREADS environment
     * variable, or std::thread::hardware_concurrency() when unset.
     * Always at least 1.
     */
    static std::size_t configuredThreads();

    /** Total parallelism (workers + the participating caller). */
    std::size_t threadCount() const { return workers_.size() + 1; }

    /**
     * Runs @p fn(chunk_begin, chunk_end) over [begin, end) split into
     * chunks of @p grain iterations (the last chunk may be short).
     * Blocks until every chunk has executed. Chunks run in arbitrary
     * order on arbitrary threads; the chunk decomposition itself is a
     * pure function of (begin, end, grain).
     *
     * Nested calls (from inside a task) execute inline and serially on
     * the calling thread — parallelism is applied at the outermost
     * level only, which keeps the pool deadlock-free.
     */
    void parallelFor(std::size_t begin, std::size_t end, std::size_t grain,
                     const std::function<void(std::size_t, std::size_t)> &fn);

  private:
    /** One parallelFor invocation's shared state. */
    struct Job
    {
        std::size_t begin = 0;
        std::size_t end = 0;
        std::size_t grain = 1;
        std::size_t nchunks = 0;
        const std::function<void(std::size_t, std::size_t)> *fn = nullptr;
        /** Next chunk index to claim. */
        std::atomic<std::size_t> next{0};
        /** Chunks fully executed. */
        std::atomic<std::size_t> done{0};
        /** Workers currently inside runChunks (guarded by mu_). */
        std::size_t active = 0;
    };

    void workerLoop();
    void runChunks(Job &job);

    std::vector<std::thread> workers_;

    std::mutex mu_;
    std::condition_variable work_cv_; ///< signals a new job / shutdown
    std::condition_variable done_cv_; ///< signals job completion
    Job *job_ = nullptr;              ///< guarded by mu_
    std::uint64_t generation_ = 0;    ///< bumped per job, guarded by mu_
    bool stop_ = false;               ///< guarded by mu_

    /** Serializes concurrent parallelFor callers. */
    std::mutex caller_mu_;
};

} // namespace lake::base

#endif // LAKE_BASE_THREAD_POOL_H
