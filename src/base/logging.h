#ifndef LAKE_BASE_LOGGING_H
#define LAKE_BASE_LOGGING_H

/**
 * @file
 * gem5-style status and error reporting.
 *
 * Severity ladder, mirroring src/base/logging.hh in gem5:
 *  - inform():    normal operating message, no connotation of a problem.
 *  - warn():      something may be wrong but execution can continue.
 *  - fatal():     the *user's* fault (bad configuration, bad arguments);
 *                 exits with code 1.
 *  - panic():     LAKE's own fault (an invariant that must never break);
 *                 aborts so a core dump / debugger can be used.
 */

#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <string>

namespace lake {

namespace detail {

/** Formats printf-style arguments into a std::string. */
std::string vformat(const char *fmt, va_list ap);

/** printf-style format into a std::string. */
std::string format(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Emits one log line with the given severity tag to stderr. */
void emit(const char *tag, const std::string &msg);

} // namespace detail

/** Prints an informational message. */
void inform(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Prints a warning; execution continues. */
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Reports a user-caused unrecoverable error and exits with code 1. */
[[noreturn]] void
fatal(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Reports an internal invariant violation and aborts. */
[[noreturn]] void
panic(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/**
 * Verifies an invariant that must hold regardless of user input.
 * Unlike assert(), stays active in release builds: LAKE is a simulator
 * and silent state corruption would invalidate every measurement.
 */
#define LAKE_ASSERT(cond, ...)                                              \
    do {                                                                    \
        if (!(cond)) {                                                      \
            ::lake::detail::emit(                                           \
                "panic",                                                    \
                ::lake::detail::format("assertion '%s' failed at %s:%d",    \
                                       #cond, __FILE__, __LINE__));         \
            ::lake::panic(__VA_ARGS__);                                     \
        }                                                                   \
    } while (0)

} // namespace lake

#endif // LAKE_BASE_LOGGING_H
