#ifndef LAKE_BASE_ALIGNED_H
#define LAKE_BASE_ALIGNED_H

/**
 * @file
 * Cache-line-aligned allocation for hot numeric containers.
 *
 * The tiled GEMM microkernels and the SoA capture plane both assume
 * their base pointers sit on cache-line boundaries: the compute layer
 * so vector loads never straddle lines, the column store so writers of
 * different columns never share one. std::vector<float> guarantees
 * only alignof(float); AlignedAlloc upgrades any std container to a
 * fixed alignment via the aligned operator new (C++17).
 */

#include <cstddef>
#include <new>
#include <vector>

namespace lake::base {

/** Cache-line size every aligned container in LAKE assumes. */
constexpr std::size_t kCacheLine = 64;

/**
 * Minimal std-compatible allocator handing out @p Align-aligned
 * storage. Alignment must be a power of two at least alignof(T).
 */
template <typename T, std::size_t Align = kCacheLine>
struct AlignedAlloc
{
    static_assert((Align & (Align - 1)) == 0, "alignment not a power of two");
    static_assert(Align >= alignof(T), "alignment below the type's own");

    using value_type = T;

    AlignedAlloc() noexcept = default;
    template <typename U>
    AlignedAlloc(const AlignedAlloc<U, Align> &) noexcept
    {}

    template <typename U>
    struct rebind
    {
        using other = AlignedAlloc<U, Align>;
    };

    T *
    allocate(std::size_t n)
    {
        return static_cast<T *>(::operator new(
            n * sizeof(T), std::align_val_t(Align)));
    }

    void
    deallocate(T *p, std::size_t) noexcept
    {
        ::operator delete(p, std::align_val_t(Align));
    }

    friend bool
    operator==(const AlignedAlloc &, const AlignedAlloc &) noexcept
    {
        return true;
    }
    friend bool
    operator!=(const AlignedAlloc &, const AlignedAlloc &) noexcept
    {
        return false;
    }
};

/** A std::vector whose data() is cache-line aligned. */
template <typename T>
using AlignedVec = std::vector<T, AlignedAlloc<T>>;

} // namespace lake::base

#endif // LAKE_BASE_ALIGNED_H
