#ifndef LAKE_BASE_RNG_H
#define LAKE_BASE_RNG_H

/**
 * @file
 * Deterministic random number generation and the distributions used by the
 * trace generators (§7.1 of the paper: exponential inter-arrival, lognormal
 * I/O size, uniform offset).
 */

#include <cstdint>
#include <random>

namespace lake {

/**
 * A seeded pseudo-random source.
 *
 * Thin wrapper over xoshiro-quality std engines; exists so every module
 * takes an explicit Rng and experiments replay bit-identically.
 */
class Rng
{
  public:
    /** Constructs a generator from a fixed seed (default: LAKE's answer). */
    explicit Rng(std::uint64_t seed = 0x1a4eull) : engine_(seed) {}

    /** Uniform double in [0, 1). */
    double uniform01();

    /** Uniform double in [lo, hi). */
    double uniform(double lo, double hi);

    /** Uniform integer in [lo, hi] inclusive. */
    std::uint64_t uniformInt(std::uint64_t lo, std::uint64_t hi);

    /** Exponential with the given mean (not rate). */
    double exponential(double mean);

    /** Normal with the given mean and standard deviation. */
    double normal(double mean, double stddev);

    /**
     * Lognormal parameterized by the mean and standard deviation of the
     * *resulting* value (not of the underlying normal), matching how the
     * paper reports trace I/O size moments in Table 4.
     */
    double lognormalByMoments(double mean, double stddev);

    /** Bernoulli trial with probability @p p of true. */
    bool chance(double p);

    /** Access to the raw engine for std::shuffle and friends. */
    std::mt19937_64 &engine() { return engine_; }

  private:
    std::mt19937_64 engine_;
};

} // namespace lake

#endif // LAKE_BASE_RNG_H
