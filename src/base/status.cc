#include "base/status.h"

namespace lake {

const char *
codeName(Code c)
{
    switch (c) {
      case Code::Ok:                return "Ok";
      case Code::InvalidArgument:   return "InvalidArgument";
      case Code::NotFound:          return "NotFound";
      case Code::AlreadyExists:     return "AlreadyExists";
      case Code::ResourceExhausted: return "ResourceExhausted";
      case Code::Unavailable:       return "Unavailable";
      case Code::Internal:          return "Internal";
    }
    return "Unknown";
}

std::string
Status::toString() const
{
    if (isOk())
        return "OK";
    std::string out = codeName(code_);
    if (!message_.empty()) {
        out += ": ";
        out += message_;
    }
    return out;
}

} // namespace lake
