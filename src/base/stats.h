#ifndef LAKE_BASE_STATS_H
#define LAKE_BASE_STATS_H

/**
 * @file
 * Measurement helpers used across the evaluation harnesses: running
 * moments, percentiles, windowed moving averages (the Fig. 3 policy),
 * rate meters (throughput timelines of Figs. 1/13) and busy-time
 * utilization integration (NVML model, Fig. 15).
 */

#include <cstddef>
#include <deque>
#include <vector>

#include "base/time.h"

namespace lake {

/** Single-pass mean / variance / min / max accumulator (Welford). */
class RunningStat
{
  public:
    /** Adds one sample. */
    void add(double x);

    /** Number of samples recorded so far. */
    std::size_t count() const { return n_; }
    /** Sample mean; 0 when empty. */
    double mean() const { return n_ ? mean_ : 0.0; }
    /** Unbiased sample variance; 0 with fewer than two samples. */
    double variance() const;
    /** Sample standard deviation. */
    double stddev() const;
    /** Smallest sample; 0 when empty. */
    double min() const { return n_ ? min_ : 0.0; }
    /** Largest sample; 0 when empty. */
    double max() const { return n_ ? max_ : 0.0; }
    /** Sum of all samples. */
    double sum() const { return sum_; }

    /** Clears all state. */
    void reset() { *this = RunningStat(); }

  private:
    std::size_t n_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
    double sum_ = 0.0;
};

/**
 * Percentile estimator that keeps every sample.
 *
 * The evaluation sweeps are small enough (at most a few million I/Os)
 * that exact percentiles are affordable and avoid sketch error bars.
 */
class PercentileTracker
{
  public:
    /** Adds one sample. */
    void
    add(double x)
    {
        samples_.push_back(x);
        // A sample appended after a percentile() call lands past the
        // sorted prefix; the flag must drop or later queries would
        // interpolate over partially-sorted data.
        sorted_ = false;
    }

    /**
     * Returns the p-th percentile (p in [0, 100]) by linear
     * interpolation between closest ranks; 0 when empty.
     */
    double percentile(double p) const;

    /** Number of samples. */
    std::size_t count() const { return samples_.size(); }

    /** Clears all samples. */
    void reset() { samples_.clear(); }

  private:
    mutable std::vector<double> samples_;
    mutable bool sorted_ = false;
};

/**
 * Fixed-width moving average over the last N samples.
 *
 * This is the `mov_avg` primitive of the paper's Fig. 3 contention
 * policy: it smooths instantaneous GPU utilization readings.
 */
class MovingAverage
{
  public:
    /** @param window number of most recent samples averaged; must be > 0 */
    explicit MovingAverage(std::size_t window);

    /** Adds a sample and returns the updated average. */
    double add(double x);

    /** Current average; 0 when no samples yet. */
    double value() const;

    /** True once a full window of samples has been seen. */
    bool warm() const { return buf_.size() == window_; }

    /** Clears all state. */
    void reset();

  private:
    /**
     * Evictions between exact re-derivations of sum_. Incremental
     * add/subtract accumulates float error (catastrophically so when a
     * large outlier leaves the window); re-summing the — small — window
     * every period bounds the drift to what at most kRederivePeriod
     * updates can introduce, while keeping add() O(1) amortized.
     */
    static constexpr std::size_t kRederivePeriod = 1024;

    std::size_t window_;
    std::deque<double> buf_;
    double sum_ = 0.0;
    std::size_t evictions_ = 0; //!< since the last re-derivation
};

/**
 * Integrates busy intervals on a timeline into utilization percentages.
 *
 * The GPU device model records [start, end) busy spans here; the NVML
 * shim answers "percent busy over the last W nanoseconds", which is the
 * signal the contention policy and Fig. 15 consume.
 */
class BusyTracker
{
  public:
    /** Records a busy span; spans may arrive out of order but not nest. */
    void addBusy(Nanos start, Nanos end);

    /**
     * Percent of [now - window, now] that was busy, in [0, 100].
     * Spans only partially inside the window count partially.
     *
     * The probe also bounds memory: spans that ended before
     * now - max(window ever probed) can never contribute to a later
     * query (probe times are monotone in every caller), so they are
     * compacted away here — the scan then starts at the first span
     * still inside the window (binary search; spans are start-ordered
     * and non-nesting, so ends are ordered too) instead of walking the
     * whole busy history.
     */
    double utilization(Nanos now, Nanos window) const;

    /** Total busy time accumulated since creation or reset(). */
    Nanos totalBusy() const { return total_busy_; }

    /** Drops spans that ended before @p horizon to bound memory. */
    void compact(Nanos horizon);

    /** Spans currently retained (memory-bound probe, for tests). */
    std::size_t spanCount() const { return spans_.size(); }

    /** Clears all state. */
    void reset();

  private:
    struct Span
    {
        Nanos start;
        Nanos end;
    };

    /**
     * Mutable: utilization() is logically const (same value as an
     * uncompacted scan) but physically drops spans no future probe can
     * observe. Trackers are probed from one execution context at a
     * time (device timelines, sim resources), like the rest of the
     * class.
     */
    mutable std::deque<Span> spans_;
    mutable Nanos max_window_ = 0; //!< largest window ever probed
    /**
     * Latest probe time seen. The compaction above is only sound while
     * probe times are monotone (the documented contract); utilization()
     * asserts it, because a backwards probe after compaction would
     * silently under-report — the spans it should see are gone — and
     * its clamped `now - window` arithmetic would mask the bug.
     */
    mutable Nanos last_probe_now_ = 0;
    Nanos total_busy_ = 0;
};

/**
 * Converts discrete completion events into a throughput-over-time
 * series, bucketed at a fixed interval. Backs the Fig. 1 / Fig. 13
 * timeline plots.
 */
class RateMeter
{
  public:
    /** @param bucket width of one time bucket */
    explicit RateMeter(Nanos bucket);

    /** Records that @p amount units completed at time @p t. */
    void record(Nanos t, double amount);

    /** One bucket of the series: [time, units-per-second]. */
    struct Point
    {
        Nanos time;      //!< bucket start
        double rate;     //!< units per second within the bucket
    };

    /** The full series, one point per non-empty bucket, time-ordered. */
    std::vector<Point> series() const;

  private:
    Nanos bucket_;
    std::vector<double> sums_; //!< indexed by bucket number
};

} // namespace lake

#endif // LAKE_BASE_STATS_H
