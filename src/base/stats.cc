#include "base/stats.h"

#include <algorithm>
#include <cmath>

#include "base/logging.h"

namespace lake {

void
RunningStat::add(double x)
{
    ++n_;
    sum_ += x;
    if (n_ == 1) {
        mean_ = x;
        min_ = x;
        max_ = x;
        m2_ = 0.0;
        return;
    }
    double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
}

double
RunningStat::variance() const
{
    if (n_ < 2)
        return 0.0;
    return m2_ / static_cast<double>(n_ - 1);
}

double
RunningStat::stddev() const
{
    return std::sqrt(variance());
}

double
PercentileTracker::percentile(double p) const
{
    LAKE_ASSERT(p >= 0.0 && p <= 100.0, "percentile out of range: %f", p);
    if (samples_.empty())
        return 0.0;
    if (!sorted_) {
        std::sort(samples_.begin(), samples_.end());
        sorted_ = true;
    }
    double rank = (p / 100.0) * static_cast<double>(samples_.size() - 1);
    std::size_t lo = static_cast<std::size_t>(rank);
    std::size_t hi = std::min(lo + 1, samples_.size() - 1);
    double frac = rank - static_cast<double>(lo);
    return samples_[lo] * (1.0 - frac) + samples_[hi] * frac;
}

MovingAverage::MovingAverage(std::size_t window) : window_(window)
{
    LAKE_ASSERT(window > 0, "moving average window must be positive");
}

double
MovingAverage::add(double x)
{
    buf_.push_back(x);
    sum_ += x;
    if (buf_.size() > window_) {
        sum_ -= buf_.front();
        buf_.pop_front();
        if (++evictions_ >= kRederivePeriod) {
            evictions_ = 0;
            sum_ = 0.0;
            for (double v : buf_)
                sum_ += v;
        }
    }
    return value();
}

double
MovingAverage::value() const
{
    if (buf_.empty())
        return 0.0;
    return sum_ / static_cast<double>(buf_.size());
}

void
MovingAverage::reset()
{
    buf_.clear();
    sum_ = 0.0;
    evictions_ = 0;
}

void
BusyTracker::addBusy(Nanos start, Nanos end)
{
    LAKE_ASSERT(end >= start, "inverted busy span");
    if (end == start)
        return;
    total_busy_ += end - start;
    // Spans usually arrive time-ordered (a device services one launch at
    // a time), so insertion at the back is the common case.
    if (spans_.empty() || spans_.back().start <= start) {
        spans_.push_back({start, end});
        return;
    }
    auto it = std::lower_bound(
        spans_.begin(), spans_.end(), start,
        [](const Span &s, Nanos t) { return s.start < t; });
    spans_.insert(it, {start, end});
}

double
BusyTracker::utilization(Nanos now, Nanos window) const
{
    LAKE_ASSERT(window > 0, "utilization window must be positive");
    // Probes must be monotone: spans behind the compaction horizon are
    // gone, so answering an earlier `now` would silently under-count
    // busy time instead of wrapping — panic rather than mis-measure.
    LAKE_ASSERT(now >= last_probe_now_,
                "non-monotone utilization probe: now=%llu after %llu",
                static_cast<unsigned long long>(now),
                static_cast<unsigned long long>(last_probe_now_));
    last_probe_now_ = now;
    max_window_ = std::max(max_window_, window);
    Nanos lo = now > window ? now - window : 0;
    // Probe times are monotone in every caller, so a span that ended
    // before now - (largest window ever asked for) cannot intersect
    // this probe or any later one; drop such spans here rather than
    // relying on an explicit compact() call nobody makes.
    Nanos keep = now > max_window_ ? now - max_window_ : 0;
    while (!spans_.empty() && spans_.front().end <= keep)
        spans_.pop_front();
    // Spans are start-ordered and never nest, so their ends are ordered
    // too: binary-search past everything that ends at or before lo
    // instead of rescanning the whole busy history each probe.
    auto it = std::partition_point(
        spans_.begin(), spans_.end(),
        [lo](const Span &s) { return s.end <= lo; });
    Nanos busy = 0;
    for (; it != spans_.end(); ++it) {
        if (it->start >= now)
            break; // starts are ordered: nothing later intersects
        Nanos a = std::max(it->start, lo);
        Nanos b = std::min(it->end, now);
        busy += b - a;
    }
    Nanos span = now - lo;
    if (span == 0)
        return 0.0;
    return 100.0 * static_cast<double>(busy) / static_cast<double>(span);
}

void
BusyTracker::compact(Nanos horizon)
{
    while (!spans_.empty() && spans_.front().end < horizon)
        spans_.pop_front();
}

void
BusyTracker::reset()
{
    spans_.clear();
    total_busy_ = 0;
    max_window_ = 0;
    // A reset tracker restarts its timeline (benchmark repetitions
    // reset the clock too), so the monotone-probe horizon restarts.
    last_probe_now_ = 0;
}

RateMeter::RateMeter(Nanos bucket) : bucket_(bucket)
{
    LAKE_ASSERT(bucket > 0, "rate meter bucket must be positive");
}

void
RateMeter::record(Nanos t, double amount)
{
    std::size_t idx = static_cast<std::size_t>(t / bucket_);
    if (idx >= sums_.size())
        sums_.resize(idx + 1, 0.0);
    sums_[idx] += amount;
}

std::vector<RateMeter::Point>
RateMeter::series() const
{
    std::vector<Point> out;
    out.reserve(sums_.size());
    double seconds = toSec(bucket_);
    for (std::size_t i = 0; i < sums_.size(); ++i)
        out.push_back({i * bucket_, sums_[i] / seconds});
    return out;
}

} // namespace lake
