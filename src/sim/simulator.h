#ifndef LAKE_SIM_SIMULATOR_H
#define LAKE_SIM_SIMULATOR_H

/**
 * @file
 * Discrete-event simulator.
 *
 * The timeline experiments (Fig. 1, Fig. 13, Fig. 15) involve genuinely
 * concurrent actors — a user-space hashing process and kernel-space
 * predictors sharing one GPU. Rather than depending on host-thread
 * scheduling (non-deterministic, machine-dependent), those experiments
 * run on this event queue: actors schedule callbacks at virtual times
 * and contend for sim::Resource objects.
 */

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "base/time.h"

namespace lake::sim {

/**
 * A deterministic event loop over virtual time.
 *
 * Events at equal times fire in scheduling order (FIFO tie-break), so a
 * run is a pure function of its inputs.
 */
class Simulator
{
  public:
    using Callback = std::function<void()>;

    Simulator() = default;
    Simulator(const Simulator &) = delete;
    Simulator &operator=(const Simulator &) = delete;

    /** Current virtual time (time of the most recently fired event). */
    Nanos now() const { return now_; }

    /** Schedules @p fn at absolute time @p when (>= now). */
    void schedule(Nanos when, Callback fn);

    /** Schedules @p fn @p delay after now. */
    void scheduleIn(Nanos delay, Callback fn)
    {
        schedule(now_ + delay, std::move(fn));
    }

    /** Runs until the queue drains. */
    void run();

    /**
     * Runs events with time <= @p deadline, then advances now to the
     * deadline even if the queue still holds later events.
     */
    void runUntil(Nanos deadline);

    /** Number of events fired since construction. */
    std::uint64_t eventsFired() const { return fired_; }

    /** True when no events remain. */
    bool idle() const { return queue_.empty(); }

  private:
    struct Event
    {
        Nanos when;
        std::uint64_t seq;
        Callback fn;
    };

    struct Later
    {
        bool
        operator()(const Event &a, const Event &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.seq > b.seq;
        }
    };

    std::priority_queue<Event, std::vector<Event>, Later> queue_;
    Nanos now_ = 0;
    std::uint64_t next_seq_ = 0;
    std::uint64_t fired_ = 0;
};

} // namespace lake::sim

#endif // LAKE_SIM_SIMULATOR_H
