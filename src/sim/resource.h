#ifndef LAKE_SIM_RESOURCE_H
#define LAKE_SIM_RESOURCE_H

/**
 * @file
 * A shared, serially-serviced resource inside the event simulator.
 *
 * Models a GPU compute engine (or any device queue): submissions are
 * serviced FIFO, one at a time; contention manifests as queueing delay —
 * exactly the effect Fig. 1 measures when kernel inference work lands on
 * a GPU already saturated by a user hashing job.
 */

#include <functional>
#include <string>

#include "base/stats.h"
#include "base/time.h"
#include "sim/simulator.h"

namespace lake::sim {

/**
 * FIFO resource with busy-time accounting.
 *
 * Work submitted while the resource is busy queues behind in-flight
 * work; each completed span is recorded in a BusyTracker so utilization
 * can be queried NVML-style.
 */
class Resource
{
  public:
    /** Called at completion with the span the work actually occupied. */
    using Done = std::function<void(Nanos start, Nanos end)>;

    /**
     * @param simulator owning event loop (must outlive the resource)
     * @param name      for diagnostics
     */
    Resource(Simulator &simulator, std::string name);

    /**
     * Enqueues @p service worth of work; @p done fires when it
     * completes. Returns the predicted completion time.
     */
    Nanos submit(Nanos service, Done done = nullptr);

    /** Earliest time new work could start (now if idle). */
    Nanos readyAt() const;

    /** Busy-span history for utilization queries. */
    const BusyTracker &busy() const { return busy_; }

    /** Percent busy over the trailing @p window ending now. */
    double utilization(Nanos window) const;

    /** Diagnostic name. */
    const std::string &name() const { return name_; }

  private:
    Simulator &sim_;
    std::string name_;
    Nanos busy_until_ = 0;
    BusyTracker busy_;
};

} // namespace lake::sim

#endif // LAKE_SIM_RESOURCE_H
