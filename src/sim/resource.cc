#include "sim/resource.h"

#include <algorithm>
#include <utility>

namespace lake::sim {

Resource::Resource(Simulator &simulator, std::string name)
    : sim_(simulator), name_(std::move(name))
{
}

Nanos
Resource::submit(Nanos service, Done done)
{
    Nanos start = std::max(sim_.now(), busy_until_);
    Nanos end = start + service;
    busy_until_ = end;
    busy_.addBusy(start, end);
    if (done) {
        sim_.schedule(end, [done = std::move(done), start, end] {
            done(start, end);
        });
    }
    return end;
}

Nanos
Resource::readyAt() const
{
    return std::max(sim_.now(), busy_until_);
}

double
Resource::utilization(Nanos window) const
{
    return busy_.utilization(sim_.now(), window);
}

} // namespace lake::sim
