#include "sim/simulator.h"

#include "base/logging.h"

namespace lake::sim {

void
Simulator::schedule(Nanos when, Callback fn)
{
    LAKE_ASSERT(when >= now_, "scheduling into the past (%llu < %llu)",
                static_cast<unsigned long long>(when),
                static_cast<unsigned long long>(now_));
    queue_.push(Event{when, next_seq_++, std::move(fn)});
}

void
Simulator::run()
{
    while (!queue_.empty()) {
        // The callback may schedule new events, so pop before firing.
        Event ev = queue_.top();
        queue_.pop();
        now_ = ev.when;
        ++fired_;
        ev.fn();
    }
}

void
Simulator::runUntil(Nanos deadline)
{
    while (!queue_.empty() && queue_.top().when <= deadline) {
        Event ev = queue_.top();
        queue_.pop();
        now_ = ev.when;
        ++fired_;
        ev.fn();
    }
    if (now_ < deadline)
        now_ = deadline;
}

} // namespace lake::sim
