#ifndef LAKE_CORE_LAKE_H
#define LAKE_CORE_LAKE_H

/**
 * @file
 * The LAKE runtime: one object that boots and wires every component of
 * Fig. 2 — the shared-memory region (lakeShm), the command channel,
 * the user-space daemon (lakeD), the kernel-side stub library
 * (lakeLib), the accelerator, and the feature-registry manager.
 *
 * This is the public entry point of the library:
 *
 * @code
 *   lake::core::Lake lake;                       // boot everything
 *   auto &lib = lake.lib();                      // kernel-space view
 *   gpu::DevicePtr p;
 *   lib.cuMemAlloc(&p, 4096);                    // remoted to lakeD
 * @endcode
 */

#include <memory>

#include "base/time.h"
#include "channel/channel.h"
#include "gpu/device.h"
#include "gpu/spec.h"
#include "ml/backends.h"
#include "policy/policy.h"
#include "registry/manager.h"
#include "remote/daemon.h"
#include "remote/lakelib.h"
#include "shm/arena.h"

namespace lake::core {

/** Boot-time configuration. */
struct LakeConfig
{
    /** Command transport (§6 picks Netlink). */
    channel::Kind channel = channel::Kind::Netlink;
    /** lakeShm region size (the paper boots with cma=128M). */
    std::size_t shm_bytes = 128ull << 20;
    /** Accelerator model. */
    gpu::DeviceSpec device = gpu::DeviceSpec::a100();
    /** Host CPU model (for in-kernel fallback execution). */
    gpu::CpuSpec cpu = gpu::CpuSpec::xeonGold6226R();
};

/**
 * A booted LAKE system sharing one virtual clock.
 */
class Lake
{
  public:
    /** Boots with the given configuration. */
    explicit Lake(LakeConfig config = LakeConfig{});

    /** The system-wide virtual clock. */
    Clock &clock() { return clock_; }
    /** The lakeShm arena (shared by both sides). */
    shm::ShmArena &arena() { return arena_; }
    /** The accelerator. */
    gpu::Device &device() { return device_; }
    /** The command channel. */
    channel::Channel &channel() { return channel_; }
    /** lakeD, the user-space API executor. */
    remote::LakeDaemon &daemon() { return daemon_; }
    /** lakeLib, the kernel-space stubs. */
    remote::LakeLib &lib() { return lib_; }
    /** Feature registries and models (Table 1). */
    registry::RegistryManager &registries() { return registries_; }
    /** Kernel-context CPU compute model. */
    ml::KernelCpu &kernelCpu() { return kernel_cpu_; }
    /** Configuration in force. */
    const LakeConfig &config() const { return config_; }

    /**
     * A utilization probe for contention policies: each call performs
     * a LAKE-remoted NVML query (so it really costs channel time and
     * really observes the simulated device).
     */
    policy::UtilProbe nvmlProbe();

  private:
    LakeConfig config_;
    Clock clock_;
    shm::ShmArena arena_;
    gpu::Device device_;
    channel::Channel channel_;
    remote::LakeDaemon daemon_;
    remote::LakeLib lib_;
    registry::RegistryManager registries_;
    ml::KernelCpu kernel_cpu_;
};

} // namespace lake::core

#endif // LAKE_CORE_LAKE_H
