#ifndef LAKE_CORE_LAKE_H
#define LAKE_CORE_LAKE_H

/**
 * @file
 * The LAKE runtime: one object that boots and wires every component of
 * Fig. 2 — the shared-memory region (lakeShm), the command channel,
 * the user-space daemon (lakeD), the kernel-side stub library
 * (lakeLib), the accelerator, and the feature-registry manager.
 *
 * This is the public entry point of the library:
 *
 * @code
 *   lake::core::Lake lake;                       // boot everything
 *   auto &lib = lake.lib();                      // kernel-space view
 *   gpu::DevicePtr p;
 *   lib.cuMemAlloc(&p, 4096);                    // remoted to lakeD
 * @endcode
 */

#include <atomic>
#include <memory>

#include "base/time.h"
#include "channel/channel.h"
#include "gpu/device.h"
#include "gpu/fleet.h"
#include "gpu/spec.h"
#include "remote/fleet.h"
#include "ml/backends.h"
#include "obs/obs.h"
#include "policy/policy.h"
#include "registry/manager.h"
#include "remote/daemon.h"
#include "serve/serve.h"
#include "remote/lakelib.h"
#include "remote/streampool.h"
#include "shm/arena.h"

namespace lake::core {

/** Boot-time configuration. */
struct LakeConfig
{
    /** Command transport (§6 picks Netlink). */
    channel::Kind channel = channel::Kind::Netlink;
    /** lakeShm region size (the paper boots with cma=128M). */
    std::size_t shm_bytes = 128ull << 20;
    /** Accelerator model. */
    gpu::DeviceSpec device = gpu::DeviceSpec::a100();
    /** Host CPU model (for in-kernel fallback execution). */
    gpu::CpuSpec cpu = gpu::CpuSpec::xeonGold6226R();
    /**
     * Consecutive remoting failures that latch degraded mode (CPU-only
     * policies). 0 disables degradation entirely.
     */
    std::size_t degrade_threshold = 3;
    /** Retry policy installed into lakeLib at boot. */
    remote::RetryPolicy retry;
    /**
     * Command pipelining installed into lakeLib at boot (default off:
     * one message + doorbell per command, the pre-pipelining behavior,
     * so existing virtual-time numbers are unchanged unless a caller
     * opts in).
     */
    remote::PipelineConfig pipeline;
    /**
     * Observability (tracing + metrics), default fully off. When
     * obs.trace is set the Tracer is bound to this Lake's clock so
     * clock-less instrumentation sites can timestamp their events.
     */
    obs::ObsConfig obs;
    /**
     * Async batched scoring service (DESIGN.md §7), default off: with
     * scoring.enabled false nothing is constructed and every
     * score_features_async call degrades to synchronous inline
     * scoring, so existing virtual-time numbers are unchanged unless
     * a caller opts in.
     */
    registry::ScoringConfig scoring;
    /**
     * Zero-copy SoA capture→score data plane (DESIGN.md §12), default
     * off: with soa_plane.enabled false every registry keeps the
     * legacy hashmap feature vectors and every figure bench is
     * byte-identical to the pre-SoA runtime. When enabled, registries
     * created after boot carve their capture windows from the lakeShm
     * arena as columnar SoaStores and score through zero-copy batch
     * views.
     */
    registry::SoaConfig soa_plane;
    /**
     * Streaming DMA orchestration (DESIGN.md §10), default off: with
     * streaming.enabled false no orchestrator is constructed, no pool
     * is carved from the arena, and every data-path number is
     * unchanged unless a caller opts in.
     */
    remote::StreamingConfig streaming;
    /**
     * Multi-tenant serving front end (DESIGN.md §11), default off.
     * When serving.enabled is true, boot brings up the scoring
     * service the generator dispatches through (using the `scoring`
     * knobs above even if scoring.enabled was left false); the
     * TrafficGenerator itself is constructed by the application once
     * its shard registries exist. While false nothing changes.
     */
    serve::ServeConfig serving;
    /**
     * Sharded multi-device fleet (DESIGN.md §13), default off: with
     * fleet.enabled false no extra device, shard, or router is
     * constructed and the single-device stack above is bit-identical
     * to the pre-fleet runtime. When enabled, boot builds
     * fleet.devices simulated devices in disjoint VA windows,
     * fleet.shards lakeD worker shards over them, and a FleetRouter
     * whose policies place work per device.
     */
    gpu::FleetConfig fleet;
};

/** Remoting-health counters surfaced for tests and benches. */
struct RemoteStats
{
    /** Failed RPC attempts lakeLib observed. */
    std::uint64_t faults_seen = 0;
    /** Retry attempts lakeLib issued. */
    std::uint64_t retries = 0;
    /** Inference dispatches forced onto the CPU by degradation. */
    std::uint64_t fallbacks = 0;
    /** True once degraded mode latched. */
    bool degraded = false;
};

/**
 * A booted LAKE system sharing one virtual clock.
 */
class Lake
{
  public:
    /** Boots with the given configuration. */
    explicit Lake(LakeConfig config = LakeConfig{});

    /**
     * Unbinds the Tracer from this Lake's clock (if the config bound
     * it) and, when the config names a trace_path, writes the Chrome
     * trace there so a crashing bench still leaves its trace behind.
     */
    ~Lake();

    /** The system-wide virtual clock. */
    Clock &clock() { return clock_; }
    /** The lakeShm arena (shared by both sides). */
    shm::ShmArena &arena() { return arena_; }
    /** The accelerator. */
    gpu::Device &device() { return device_; }
    /** The command channel. */
    channel::Channel &channel() { return channel_; }
    /** lakeD, the user-space API executor. */
    remote::LakeDaemon &daemon() { return daemon_; }
    /** lakeLib, the kernel-space stubs. */
    remote::LakeLib &lib() { return lib_; }
    /** Feature registries and models (Table 1). */
    registry::RegistryManager &registries() { return registries_; }
    /** Kernel-context CPU compute model. */
    ml::KernelCpu &kernelCpu() { return kernel_cpu_; }
    /**
     * The streaming DMA orchestrator, or nullptr when
     * config.streaming.enabled is false (the default).
     */
    remote::StreamOrchestrator *streaming() { return streaming_.get(); }
    /** Configuration in force. */
    const LakeConfig &config() const { return config_; }

    /// @name Device fleet (DESIGN.md §13); null unless fleet.enabled
    /// @{

    /** The device fleet, or nullptr (the default single-device path). */
    gpu::DeviceFleet *fleet() { return fleet_.get(); }
    /** The lakeD worker shards, or nullptr. */
    remote::ShardFleet *shardFleet() { return shards_.get(); }
    /** The placement router, or nullptr. */
    remote::FleetRouter *router() { return router_.get(); }

    /**
     * Remoting-health counters of one shard. Per-shard on purpose
     * (the bugfix this PR carries): one sick device's failures must
     * be visible — and actionable — without implicating the fleet.
     */
    RemoteStats shardStats(std::size_t shard) const;

    /// @}

    /**
     * A utilization probe for contention policies: each call performs
     * a LAKE-remoted NVML query (so it really costs channel time and
     * really observes the simulated device). When the query fails the
     * probe returns the last reading it saw (initially 100%, i.e.
     * "assume contended") instead of panicking.
     */
    policy::UtilProbe nvmlProbe();

    /// @name Failure semantics (ISSUE 2)
    /// @{

    /**
     * True once repeated remoting failures latched degraded mode:
     * policies wrapped by degradationGuard() pick the CPU from then on.
     */
    bool
    degraded() const
    {
        return health_.degraded.load(std::memory_order_relaxed);
    }

    /**
     * Operator action: re-arms accelerator use after the remoting path
     * has been repaired (e.g. lakeD restarted).
     */
    void resetDegraded();

    /** Remoting-health counters (faults_seen, retries, fallbacks). */
    RemoteStats remoteStats() const;

    /**
     * Reconfigures command pipelining at runtime (any pending batch is
     * flushed first, so no queued command is lost or reordered).
     */
    void setPipeline(remote::PipelineConfig p) { lib_.setPipeline(p); }

    /**
     * Wraps @p inner in a FallbackPolicy bound to this Lake's health:
     * while degraded() the wrapped policy returns Engine::Cpu and the
     * fallbacks counter grows. Drop the result into any registry via
     * registerPolicy — the Fig. 3 plumbing needs no other change.
     */
    std::unique_ptr<policy::ExecPolicy>
    degradationGuard(std::unique_ptr<policy::ExecPolicy> inner);

    /**
     * Records one classifier-level CPU fallback (a call site that
     * caught a remoting error mid-batch and finished on the CPU).
     */
    void noteFallback() { ++health_.fallbacks; }

    /// @}

    /**
     * Mirrors both sides' remoting counters (lakeLib and lakeD) into
     * the obs::Metrics registry. Call right before exporting metrics;
     * a no-op while metrics are disabled.
     */
    void publishObs() const;

  private:
    LakeConfig config_;
    Clock clock_;
    shm::ShmArena arena_;
    gpu::Device device_;
    channel::Channel channel_;
    remote::LakeDaemon daemon_;
    remote::LakeLib lib_;
    registry::RegistryManager registries_;
    ml::KernelCpu kernel_cpu_;
    /**
     * Declared after lib_ so it is destroyed first: the destructor
     * drains in-flight streams through lib_ and frees the pool's
     * arena carve-out.
     */
    std::unique_ptr<remote::StreamOrchestrator> streaming_;

    /** The device fleet and its shards; null unless fleet.enabled. */
    std::unique_ptr<gpu::DeviceFleet> fleet_;
    std::unique_ptr<remote::ShardFleet> shards_;
    std::unique_ptr<remote::FleetRouter> router_;

    /**
     * This Lake's own remoting lane's health. Same per-lane type the
     * fleet shards use: the degraded latch and fallback counter are
     * scoped to one remoting path, never to the system (the atomics
     * inside absorb the ScoreServer-flush-thread races the old
     * Lake-global members handled ad hoc).
     */
    remote::ShardHealth health_;
    /** True while the global Tracer is bound to this Lake's clock. */
    bool bound_tracer_clock_ = false;
};

} // namespace lake::core

#endif // LAKE_CORE_LAKE_H
