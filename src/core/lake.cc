#include "core/lake.h"

#include "base/logging.h"

namespace lake::core {

Lake::Lake(LakeConfig config)
    : config_(config), arena_(config.shm_bytes), device_(config.device),
      channel_(config.channel, clock_),
      daemon_(channel_, arena_, device_, clock_),
      lib_(channel_, arena_, [this] { daemon_.processPending(); }),
      registries_(clock_), kernel_cpu_(clock_, config.cpu)
{
}

policy::UtilProbe
Lake::nvmlProbe()
{
    return [this](Nanos) {
        remote::RemoteUtilization util;
        gpu::CuResult r = lib_.nvmlGetUtilization(&util);
        LAKE_ASSERT(r == gpu::CuResult::Success, "nvml probe failed");
        return static_cast<double>(util.gpu);
    };
}

} // namespace lake::core
