#include "core/lake.h"

#include <algorithm>
#include <utility>

#include "base/logging.h"

namespace lake::core {

Lake::Lake(LakeConfig config)
    : config_(config), arena_(config.shm_bytes), device_(config.device),
      channel_(config.channel, clock_),
      daemon_(channel_, arena_, device_, clock_),
      lib_(channel_, arena_, [this] { daemon_.processPending(); }),
      registries_(clock_), kernel_cpu_(clock_, config.cpu)
{
    obs::configure(config_.obs);
    // Bind the tracer to this system's clock while tracing is live
    // (whether the config or the LAKE_OBS_TRACE environment enabled
    // it), so clock-less instrumentation sites get real timestamps.
    bound_tracer_clock_ = obs::Tracer::global().enabled();
    if (bound_tracer_clock_)
        obs::Tracer::global().bindClock(&clock_);
    lib_.setRetryPolicy(config.retry);
    lib_.setPipeline(config.pipeline);
    // SoA plane first: it changes what createRegistry() builds, and
    // every subsystem (scoring service included) creates registries
    // only after boot returns.
    if (config_.soa_plane.enabled) {
        Status s = registries_.enableSoa(config_.soa_plane, &arena_);
        LAKE_ASSERT(s.isOk(), "SoA plane boot failed: %s",
                    s.message().c_str());
    }
    // The serving front end dispatches through the scoring service,
    // so enabling serving implies enabling scoring.
    if (config_.scoring.enabled || config_.serving.enabled) {
        Status s = registries_.enableScoring(config_.scoring);
        LAKE_ASSERT(s.isOk(), "scoring service boot failed: %s",
                    s.message().c_str());
    }
    if (config_.streaming.enabled)
        streaming_ = std::make_unique<remote::StreamOrchestrator>(
            lib_, clock_, config_.streaming);
    // Latch degraded mode after degrade_threshold consecutive RPC
    // failures; any success before that resets the streak. The latch
    // is per remoting lane (ShardHealth), not per system.
    lib_.setFailureObserver([this](const Status &s) {
        health_.observe(s, config_.degrade_threshold, "lake");
    });
    if (config_.fleet.enabled) {
        fleet_ = std::make_unique<gpu::DeviceFleet>(config_.fleet);
        remote::ShardParams params;
        params.channel = config_.channel;
        params.shm_bytes = config_.shm_bytes;
        params.degrade_threshold = config_.degrade_threshold;
        params.retry = config_.retry;
        params.pipeline = config_.pipeline;
        std::size_t shards =
            std::max<std::size_t>(1, config_.fleet.shards);
        shards = std::min(shards, fleet_->size());
        shards_ = std::make_unique<remote::ShardFleet>(*fleet_, shards,
                                                       params);
        router_ = std::make_unique<remote::FleetRouter>(
            *shards_, policy::FleetPlacementPolicy::Config{});
    }
}

Lake::~Lake()
{
    if (!bound_tracer_clock_)
        return;
    if (!config_.obs.trace_path.empty())
        obs::writeChromeTrace(config_.obs.trace_path);
    obs::Tracer::global().unbindClock();
}

void
Lake::publishObs() const
{
    if (!obs::Metrics::global().enabled())
        return;
    lib_.publishMetrics();
    daemon_.publishMetrics();
    if (streaming_)
        streaming_->publishMetrics();
    if (router_)
        router_->publishMetrics();
}

policy::UtilProbe
Lake::nvmlProbe()
{
    // Starts pessimistic: until a query succeeds, report the device as
    // fully contended so contention policies prefer the CPU.
    auto last = std::make_shared<double>(100.0);
    return [this, last](Nanos) {
        remote::RemoteUtilization util;
        gpu::CuResult r = lib_.nvmlGetUtilization(&util);
        if (r == gpu::CuResult::Success)
            *last = static_cast<double>(util.gpu);
        return *last;
    };
}

void
Lake::resetDegraded()
{
    health_.reset();
}

RemoteStats
Lake::remoteStats() const
{
    RemoteStats s;
    s.faults_seen = lib_.faultsSeen();
    s.retries = lib_.retries();
    s.fallbacks = health_.fallbacks.load(std::memory_order_relaxed);
    s.degraded = degraded();
    return s;
}

RemoteStats
Lake::shardStats(std::size_t shard) const
{
    RemoteStats s;
    if (!shards_ || shard >= shards_->size())
        return s;
    // shard() is non-const only because it hands out mutable stacks;
    // reading counters is safe from a const Lake.
    auto &sh = const_cast<remote::ShardFleet *>(shards_.get())->shard(shard);
    s.faults_seen = sh.lib().faultsSeen();
    s.retries = sh.lib().retries();
    s.fallbacks = sh.health().fallbacks.load(std::memory_order_relaxed);
    s.degraded = sh.health().degraded.load(std::memory_order_relaxed);
    return s;
}

std::unique_ptr<policy::ExecPolicy>
Lake::degradationGuard(std::unique_ptr<policy::ExecPolicy> inner)
{
    return std::make_unique<policy::FallbackPolicy>(
        std::move(inner), [this] { return degraded(); },
        [this] { ++health_.fallbacks; });
}

} // namespace lake::core
