#ifndef LAKE_SERVE_SERVE_H
#define LAKE_SERVE_SERVE_H

/**
 * @file
 * Boot-time configuration of the multi-tenant serving front end
 * (DESIGN.md §11).
 *
 * The serving layer is an *open-loop* traffic generator: simulated
 * tenants emit score requests on a virtual-time arrival schedule that
 * does not wait for completions, exactly like the offered-load
 * harnesses the paper's Fig. 7/8 latency numbers assume. In front of
 * the shared ScoreServer it adds the multi-tenancy mechanisms the
 * paper argues a kernel-resident ML substrate needs: per-tenant
 * token-bucket admission, bounded per-tenant queues with
 * shed-on-pressure, and deficit-round-robin fair sharing of the
 * coalesced GPU/CPU dispatch path.
 *
 * Everything here is default-off (LakeConfig.serving.enabled == false
 * constructs nothing), and all knobs have LAKE_SERVE_* environment
 * overrides applied only by an explicit applyEnv() call — the same
 * opt-in contract as ScoringConfig.
 */

#include <cstdint>
#include <string>
#include <vector>

#include "base/status.h"
#include "base/time.h"

namespace lake::serve {

/** Boot-time knobs of the serving front end (LakeConfig.serving). */
struct ServeConfig
{
    /**
     * Master switch. While false nothing is constructed and no
     * virtual-time number anywhere in the repository changes.
     */
    bool enabled = false;

    /** Simulated tenants (the paper's "hundreds of devices" scale). */
    std::size_t tenants = 64;

    /**
     * Per-tenant mean offered load, requests per virtual second.
     * Inter-arrival times are exponential (Poisson process) unless a
     * trace file overrides the schedule entirely.
     */
    double rate_rps = 1000.0;

    /** Seed for the arrival process (replays bit-identically). */
    std::uint64_t seed = 0x1a4e;

    /**
     * Token-bucket refill rate, tokens per virtual second. One request
     * costs one token; a tenant whose bucket is empty has its request
     * rejected at admission (counted, never queued).
     */
    double bucket_rate = 2000.0;

    /** Token-bucket capacity (burst tolerance), in tokens. */
    double bucket_burst = 16.0;

    /** Requests one tenant's queue may hold past admission. */
    std::size_t queue_capacity = 64;

    /**
     * Full-queue behaviour: true sheds the *oldest* queued request
     * (freshness-preserving, the ScoreServer convention); false
     * rejects the *new* arrival.
     */
    bool shed_oldest = true;

    /**
     * Deficit-round-robin quantum: requests one tenant may dispatch
     * per pump round before yielding to the next active tenant.
     */
    std::size_t drr_quantum = 4;

    /** Virtual-time interval between generator pump/poll ticks. */
    Nanos pump_interval = 50_us;

    /**
     * Dispatch window: classifiers charge the shared clock, so the
     * clock running ahead of the arrival schedule *is* the server's
     * backlog. While that runahead exceeds this bound the pump stops
     * dispatching — pressure propagates back into the bounded tenant
     * queues (which shed) instead of growing an unbounded virtual
     * backlog. 0 disables the gate.
     */
    Nanos max_runahead = 1_ms;

    /**
     * Registry shards the tenants hash onto. The shards live under one
     * subsystem, so the ScoreServer coalesces *across* tenants and the
     * execution policy sees the full cross-tenant batch depth —
     * multi-tenancy feeds the Fig. 3 profitability signal for free.
     */
    std::size_t shards = 4;

    /**
     * Optional trace file replacing the Poisson schedule: one
     * "<time_us> <tenant>" pair per line ('#' starts a comment).
     * Times are absolute virtual microseconds and must be
     * non-decreasing; tenant ids beyond `tenants` are rejected.
     */
    std::string trace_path;

    /**
     * Applies LAKE_SERVE_TENANTS / LAKE_SERVE_RATE_RPS /
     * LAKE_SERVE_BUCKET_RATE / LAKE_SERVE_BUCKET_BURST /
     * LAKE_SERVE_QUEUE_CAP / LAKE_SERVE_SHED / LAKE_SERVE_QUANTUM /
     * LAKE_SERVE_PUMP_US / LAKE_SERVE_RUNAHEAD_US /
     * LAKE_SERVE_SHARDS / LAKE_SERVE_SEED / LAKE_SERVE_TRACE
     * environment overrides. Explicit opt-in; a
     * default-constructed Lake never reads the environment.
     */
    void applyEnv();
};

/** One trace-driven arrival: absolute virtual time plus tenant. */
struct TraceEntry
{
    Nanos at = 0;
    std::size_t tenant = 0;
};

/**
 * Parses a serving trace file (format above) into @p out.
 *
 * Rejects unreadable files, malformed lines, times that move
 * backwards, and tenant ids >= @p tenants — a trace error aborts the
 * run at load time rather than mid-experiment.
 */
Status loadTrace(const std::string &path, std::size_t tenants,
                 std::vector<TraceEntry> &out);

} // namespace lake::serve

#endif // LAKE_SERVE_SERVE_H
