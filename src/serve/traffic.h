#ifndef LAKE_SERVE_TRAFFIC_H
#define LAKE_SERVE_TRAFFIC_H

/**
 * @file
 * The open-loop multi-tenant traffic generator (DESIGN.md §11).
 *
 * Pipeline per request:
 *
 *   arrival --(token bucket)--> tenant queue --(DRR pump)-->
 *       ScoreServer --(coalesced flush)--> completion
 *
 *  - *Arrival* follows the tenant's virtual-time schedule (seeded
 *    Poisson or a trace file) regardless of completions: offered load
 *    never backs off, which is what makes the generator open-loop.
 *  - *Admission* is a per-tenant token bucket; non-conformant
 *    arrivals are rejected immediately and never consume queue space
 *    or dispatch capacity.
 *  - *Queueing* is bounded per tenant. A full queue sheds its oldest
 *    request (default, freshness-preserving — matching the
 *    ScoreServer's shed_oldest convention) or rejects the new one.
 *  - *Dispatch* is deficit round-robin across tenants with queued
 *    work, so a hot tenant cannot starve the rest of the shared
 *    ScoreServer: each pump round gives every active tenant
 *    `drr_quantum` new credits and dispatches at most its accumulated
 *    deficit. Tenants hash onto a small set of registry shards under
 *    one subsystem, so the ScoreServer coalesces *across* tenants and
 *    the shard policy sees the full cross-tenant batch depth.
 *  - *Completion* latency is arrival-to-scored, so it includes both
 *    the tenant-queue wait and the ScoreServer's coalescing delay.
 *
 * Threading: offer() and pump() may race from multiple threads (the
 * sanitizer suite does exactly that); run() is the single-threaded
 * virtual-time event loop the benches drive. No internal lock is held
 * across a ScoreServer call — submit() can flush inline and re-enter
 * this generator through its completion callbacks.
 */

#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <vector>

#include "base/rng.h"
#include "base/status.h"
#include "base/time.h"
#include "registry/manager.h"
#include "serve/serve.h"
#include "serve/tenant.h"

namespace lake::serve {

/**
 * Builds the feature vector one simulated request scores. The default
 * factory emits a single "tenant" feature; benches substitute
 * model-shaped features (e.g. LinnOS history) when the classifier
 * cares.
 */
using RequestFactory =
    std::function<registry::FeatureVector(std::size_t tenant, Nanos now)>;

/** Aggregate counters and SLO percentiles over one run. */
struct ServeSummary
{
    std::uint64_t arrivals = 0;
    std::uint64_t admits = 0;
    std::uint64_t bucket_rejects = 0;
    std::uint64_t queue_sheds = 0;
    std::uint64_t backpressure = 0; //!< ScoreServer pushback, re-queued
    std::uint64_t dispatched = 0;
    std::uint64_t completions = 0;
    std::uint64_t failures = 0; //!< shed downstream / registry torn down
    /** Requests still queued when the summary was taken. */
    std::size_t queued_residual = 0;

    double p50_us = 0.0;
    double p99_us = 0.0;
    double p999_us = 0.0;
    /** Completions per virtual second over @p horizon. */
    double goodput_rps = 0.0;
    /** (bucket_rejects + queue_sheds + failures) / arrivals. */
    double reject_rate = 0.0;
    /** Per-tenant completion extremes (fairness: max/min near 1). */
    double min_tenant_completions = 0.0;
    double max_tenant_completions = 0.0;
};

/** One timeseries sample (queue depth / utilization over time). */
struct ServeSample
{
    Nanos at = 0;
    /** Requests queued across tenants (admitted, undispatched). */
    std::size_t queue_depth = 0;
    /** Vectors pending inside the ScoreServer. */
    std::size_t server_pending = 0;
    std::uint64_t admits = 0;      //!< cumulative
    std::uint64_t completions = 0; //!< cumulative
    std::uint64_t sheds = 0;       //!< cumulative (queue + downstream)
    /** Utilization probe reading (0-100); 0 when no probe is set. */
    double utilization = 0.0;
};

/**
 * The generator. Construction wires nothing into the Lake runtime —
 * the owner creates the shard registries, installs classifiers and
 * policies, and enables the scoring service first (exactly what
 * bench/serve_slo does); the generator only drives traffic through
 * them.
 */
class TrafficGenerator
{
  public:
    /**
     * @param mgr    registry owner; scoring service must be enabled
     * @param clock  the shared virtual clock
     * @param cfg    serving knobs (cfg.enabled is ignored here —
     *               constructing the generator *is* enabling it)
     * @param sys    subsystem the shard registries live under
     * @param shards shard registry names (all must exist in @p mgr);
     *               tenant t dispatches via shards[t % size]
     */
    TrafficGenerator(registry::RegistryManager &mgr, Clock &clock,
                     ServeConfig cfg, std::string sys,
                     std::vector<std::string> shards);

    /**
     * Flushes the ScoreServer so every submitted request's completion
     * callback — which captures `this` — runs while the generator is
     * still alive. Without it, requests left pending by a manual
     * offer()/pump() sequence would be dispatched by the §7
     * ScoreServer's own destructor during RegistryManager teardown,
     * after this object is gone.
     */
    ~TrafficGenerator();

    TrafficGenerator(const TrafficGenerator &) = delete;
    TrafficGenerator &operator=(const TrafficGenerator &) = delete;

    /** Substitutes the request-building callback (default: trivial). */
    void setRequestFactory(RequestFactory f);

    /**
     * Enables periodic timeseries sampling inside run(). @p util is
     * consulted at each sample point (pass nullptr for none).
     */
    void enableSampling(Nanos interval, std::function<double()> util);

    /**
     * One arrival for @p tenant at virtual time @p now: counts it,
     * runs admission, and queues or sheds. Thread-safe.
     *
     * @return Ok when queued (possibly shedding an older request),
     *         ResourceExhausted when the bucket or queue refused it
     */
    Status offer(std::size_t tenant, Nanos now);

    /**
     * One DRR round: gives every tenant with queued work a quantum of
     * credits, dispatches up to each tenant's deficit into the
     * ScoreServer, then poll()s expired deadlines. Thread-safe.
     *
     * @return requests handed to the ScoreServer this round
     */
    std::size_t pump(Nanos now);

    /**
     * The open-loop event loop: replays the arrival schedule (Poisson
     * from cfg.seed, or cfg.trace_path) against pump ticks for
     * @p duration virtual ns, then drains what remains queued and
     * flushes the ScoreServer so every dispatched request completes.
     */
    void run(Nanos duration);

    /** Aggregate counters + percentiles; goodput over @p horizon. */
    ServeSummary summary(Nanos horizon) const;

    /** Per-tenant state (exact under quiescence). */
    const std::vector<Tenant> &tenantStates() const { return tenants_; }

    /** Timeseries collected by run() (empty unless sampling enabled). */
    const std::vector<ServeSample> &timeseries() const { return samples_; }

    /** Knobs in force. */
    const ServeConfig &config() const { return cfg_; }

  private:
    /** One dispatch picked under mu_, submitted outside it. */
    struct Dispatch
    {
        std::size_t tenant;
        Nanos arrival;
    };

    /** Completion-callback body; takes mu_. */
    void onScored(std::size_t tenant, Nanos arrival,
                  const registry::ScoreResult &r);

    /** Records one sample (single-threaded run() path). */
    void sample(Nanos now);

    void updateDepthGauge() const;

    registry::RegistryManager &mgr_;
    Clock &clock_;
    ServeConfig cfg_;
    std::string sys_;
    std::vector<std::string> shards_;
    RequestFactory factory_;

    mutable std::mutex mu_; //!< guards tenants_, rr_next_, trackers
    std::vector<Tenant> tenants_;
    /** DRR cursor: the tenant the next pump round starts from. */
    std::size_t rr_next_ = 0;
    /** Admitted-but-undispatched requests across tenants. */
    std::size_t queued_ = 0;
    std::uint64_t backpressure_ = 0;
    std::uint64_t dispatched_ = 0;
    /** All-tenant latency population (percentiles over everything). */
    PercentileTracker latency_us_;

    Nanos sample_interval_ = 0;
    std::function<double()> util_probe_;
    std::vector<ServeSample> samples_;
};

} // namespace lake::serve

#endif // LAKE_SERVE_TRAFFIC_H
