#include "serve/tenant.h"

#include <algorithm>

#include "base/logging.h"

namespace lake::serve {

TokenBucket::TokenBucket(double rate, double burst)
    : rate_(rate), burst_(burst), tokens_(burst)
{
    LAKE_ASSERT(rate > 0.0, "token bucket rate must be positive");
    LAKE_ASSERT(burst >= 1.0, "token bucket burst must hold one token");
}

void
TokenBucket::refill(Nanos now)
{
    // Clamp instead of wrapping: a probe earlier than the last refill
    // point earns no tokens (and must not subtract into 2^64 ns).
    if (now <= last_)
        return;
    double dt = toSec(now - last_);
    tokens_ = std::min(burst_, tokens_ + dt * rate_);
    last_ = now;
}

bool
TokenBucket::tryAcquire(Nanos now, double tokens)
{
    refill(now);
    if (tokens_ < tokens)
        return false;
    tokens_ -= tokens;
    return true;
}

double
TokenBucket::available(Nanos now)
{
    refill(now);
    return tokens_;
}

} // namespace lake::serve
