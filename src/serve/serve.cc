#include "serve/serve.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace lake::serve {

namespace {

/** Parses a non-negative integer env var; @p fallback when unset/bad. */
std::size_t
envSize(const char *name, std::size_t fallback)
{
    const char *v = std::getenv(name);
    if (!v || !*v)
        return fallback;
    char *end = nullptr;
    unsigned long long parsed = std::strtoull(v, &end, 10);
    if (end == v || *end != '\0')
        return fallback;
    return static_cast<std::size_t>(parsed);
}

/** Parses a non-negative double env var; @p fallback when unset/bad. */
double
envDouble(const char *name, double fallback)
{
    const char *v = std::getenv(name);
    if (!v || !*v)
        return fallback;
    char *end = nullptr;
    double parsed = std::strtod(v, &end);
    if (end == v || *end != '\0' || parsed < 0.0)
        return fallback;
    return parsed;
}

} // namespace

void
ServeConfig::applyEnv()
{
    tenants = envSize("LAKE_SERVE_TENANTS", tenants);
    rate_rps = envDouble("LAKE_SERVE_RATE_RPS", rate_rps);
    seed = envSize("LAKE_SERVE_SEED", seed);
    bucket_rate = envDouble("LAKE_SERVE_BUCKET_RATE", bucket_rate);
    bucket_burst = envDouble("LAKE_SERVE_BUCKET_BURST", bucket_burst);
    queue_capacity = envSize("LAKE_SERVE_QUEUE_CAP", queue_capacity);
    shed_oldest = envSize("LAKE_SERVE_SHED", shed_oldest ? 1 : 0) != 0;
    drr_quantum = envSize("LAKE_SERVE_QUANTUM", drr_quantum);
    pump_interval =
        static_cast<Nanos>(envSize(
            "LAKE_SERVE_PUMP_US",
            static_cast<std::size_t>(pump_interval / 1000))) *
        1000ull;
    max_runahead =
        static_cast<Nanos>(envSize(
            "LAKE_SERVE_RUNAHEAD_US",
            static_cast<std::size_t>(max_runahead / 1000))) *
        1000ull;
    shards = envSize("LAKE_SERVE_SHARDS", shards);
    if (const char *v = std::getenv("LAKE_SERVE_TRACE"); v && *v)
        trace_path = v;
}

Status
loadTrace(const std::string &path, std::size_t tenants,
          std::vector<TraceEntry> &out)
{
    std::FILE *f = std::fopen(path.c_str(), "r");
    if (!f)
        return Status(Code::NotFound, "cannot open trace " + path);
    out.clear();
    char line[256];
    std::size_t lineno = 0;
    Nanos prev = 0;
    Status st = Status::ok();
    while (std::fgets(line, sizeof line, f)) {
        ++lineno;
        const char *p = line;
        while (*p == ' ' || *p == '\t')
            ++p;
        if (*p == '\0' || *p == '\n' || *p == '#')
            continue;
        char *end = nullptr;
        unsigned long long us = std::strtoull(p, &end, 10);
        if (end == p) {
            st = Status(Code::InvalidArgument,
                        path + ":" + std::to_string(lineno) +
                            ": expected \"<time_us> <tenant>\"");
            break;
        }
        p = end;
        unsigned long long tenant = std::strtoull(p, &end, 10);
        if (end == p) {
            st = Status(Code::InvalidArgument,
                        path + ":" + std::to_string(lineno) +
                            ": missing tenant id");
            break;
        }
        // Only trailing whitespace may follow the pair.
        for (p = end; *p; ++p) {
            if (*p != ' ' && *p != '\t' && *p != '\n' && *p != '\r') {
                st = Status(Code::InvalidArgument,
                            path + ":" + std::to_string(lineno) +
                                ": trailing garbage");
                break;
            }
        }
        if (!st.isOk())
            break;
        Nanos at = static_cast<Nanos>(us) * 1000ull;
        if (at < prev) {
            st = Status(Code::InvalidArgument,
                        path + ":" + std::to_string(lineno) +
                            ": time moves backwards");
            break;
        }
        if (tenant >= tenants) {
            st = Status(Code::InvalidArgument,
                        path + ":" + std::to_string(lineno) +
                            ": tenant " + std::to_string(tenant) +
                            " out of range (have " +
                            std::to_string(tenants) + ")");
            break;
        }
        prev = at;
        out.push_back(TraceEntry{at, static_cast<std::size_t>(tenant)});
    }
    std::fclose(f);
    if (!st.isOk())
        out.clear();
    return st;
}

} // namespace lake::serve
