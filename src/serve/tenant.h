#ifndef LAKE_SERVE_TENANT_H
#define LAKE_SERVE_TENANT_H

/**
 * @file
 * Per-tenant serving state: the token-bucket admission filter and the
 * bounded request queue the DRR pump drains (DESIGN.md §11).
 */

#include <cstdint>
#include <deque>

#include "base/stats.h"
#include "base/time.h"

namespace lake::serve {

/**
 * A virtual-time token bucket.
 *
 * Refills continuously at `rate` tokens per virtual second up to
 * `burst`; tryAcquire() debits one token or reports the request
 * non-conformant. Probe times that move backwards (two admission
 * paths racing on the same virtual instant, or a caller replaying a
 * stale timestamp) are clamped to the last refill point instead of
 * wrapping the elapsed-time subtraction — the same discipline as the
 * policy probe timers.
 */
class TokenBucket
{
  public:
    /**
     * @param rate  refill rate, tokens per virtual second (> 0)
     * @param burst bucket capacity in tokens (>= 1)
     */
    TokenBucket(double rate, double burst);

    /** Debits @p tokens at time @p now; false when non-conformant. */
    bool tryAcquire(Nanos now, double tokens = 1.0);

    /** Tokens available at @p now (refill applied, nothing debited). */
    double available(Nanos now);

  private:
    void refill(Nanos now);

    double rate_;
    double burst_;
    double tokens_;
    Nanos last_ = 0;
};

/** One admitted request waiting in a tenant's queue. */
struct PendingRequest
{
    /** Virtual arrival time (latency is measured from here). */
    Nanos arrival = 0;
};

/** Serving state and lifetime statistics for one tenant. */
struct Tenant
{
    Tenant(double rate, double burst) : bucket(rate, burst) {}

    TokenBucket bucket;
    /** Admitted requests not yet dispatched; bounded by config. */
    std::deque<PendingRequest> queue;
    /** DRR deficit carried across pump rounds. */
    std::size_t deficit = 0;

    /// @name Lifetime counters (one writer: the generator's lock)
    /// @{
    std::uint64_t arrivals = 0;
    std::uint64_t admits = 0;
    std::uint64_t bucket_rejects = 0;
    std::uint64_t queue_sheds = 0;
    std::uint64_t dispatched = 0;
    std::uint64_t completions = 0;
    std::uint64_t failures = 0; //!< shed downstream or registry torn down
    /// @}

    /** Arrival-to-scored latency of every completed request. */
    PercentileTracker latency_us;
};

} // namespace lake::serve

#endif // LAKE_SERVE_TENANT_H
