#include "serve/traffic.h"

#include <algorithm>
#include <queue>
#include <utility>

#include "base/logging.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "registry/schema.h"

namespace lake::serve {

TrafficGenerator::TrafficGenerator(registry::RegistryManager &mgr,
                                   Clock &clock, ServeConfig cfg,
                                   std::string sys,
                                   std::vector<std::string> shards)
    : mgr_(mgr), clock_(clock), cfg_(cfg), sys_(std::move(sys)),
      shards_(std::move(shards))
{
    LAKE_ASSERT(cfg_.tenants > 0, "serving needs at least one tenant");
    LAKE_ASSERT(cfg_.queue_capacity > 0,
                "serving queue_capacity must be positive");
    LAKE_ASSERT(cfg_.drr_quantum > 0, "DRR quantum must be positive");
    LAKE_ASSERT(cfg_.pump_interval > 0, "pump interval must be positive");
    LAKE_ASSERT(!shards_.empty(), "serving needs at least one shard");
    LAKE_ASSERT(mgr_.scorer() != nullptr,
                "serving requires the scoring service (enableScoring)");
    for (const std::string &s : shards_)
        LAKE_ASSERT(mgr_.find(s, sys_) != nullptr,
                    "serving shard %s/%s does not exist", sys_.c_str(),
                    s.c_str());
    tenants_.reserve(cfg_.tenants);
    for (std::size_t t = 0; t < cfg_.tenants; ++t)
        tenants_.emplace_back(cfg_.bucket_rate, cfg_.bucket_burst);
    factory_ = [](std::size_t tenant, Nanos now) {
        registry::FeatureVector fv;
        fv.ts_begin = now;
        fv.ts_end = now;
        fv.values[registry::featureKey("tenant")] = {tenant};
        return fv;
    };
    auto &m = obs::Metrics::global();
    if (m.enabled())
        m.serve_tenants.set(cfg_.tenants);
}

TrafficGenerator::~TrafficGenerator()
{
    // Pending submissions hold callbacks that capture `this`; complete
    // them before the capture dangles. When the manager (and with it
    // the ScoreServer) dies first instead, *its* destructor flushes
    // while this object is still alive, so both orders are safe.
    if (registry::ScoreServer *server = mgr_.scorer())
        server->flushAll(clock_.now());
}

void
TrafficGenerator::setRequestFactory(RequestFactory f)
{
    LAKE_ASSERT(f != nullptr, "request factory must be callable");
    factory_ = std::move(f);
}

void
TrafficGenerator::enableSampling(Nanos interval, std::function<double()> util)
{
    LAKE_ASSERT(interval > 0, "sample interval must be positive");
    sample_interval_ = interval;
    util_probe_ = std::move(util);
}

void
TrafficGenerator::updateDepthGauge() const
{
    auto &m = obs::Metrics::global();
    if (m.enabled())
        m.serve_queue_depth.set(queued_);
}

Status
TrafficGenerator::offer(std::size_t tenant, Nanos now)
{
    LAKE_ASSERT(tenant < tenants_.size(), "tenant %zu out of range",
                tenant);
    auto &m = obs::Metrics::global();
    std::lock_guard<std::mutex> lock(mu_);
    Tenant &t = tenants_[tenant];
    ++t.arrivals;
    if (m.enabled())
        m.serve_arrivals.add();

    if (!t.bucket.tryAcquire(now)) {
        ++t.bucket_rejects;
        if (m.enabled())
            m.serve_bucket_rejects.add();
        return Status(Code::ResourceExhausted,
                      "tenant " + std::to_string(tenant) +
                          " over admission rate");
    }

    if (t.queue.size() >= cfg_.queue_capacity) {
        if (!cfg_.shed_oldest) {
            ++t.queue_sheds;
            if (m.enabled())
                m.serve_queue_sheds.add();
            return Status(Code::ResourceExhausted,
                          "tenant " + std::to_string(tenant) +
                              " queue full");
        }
        // Shed the oldest admitted request: under sustained overload
        // the queue serves fresh work instead of aging backlog.
        t.queue.pop_front();
        --queued_;
        ++t.queue_sheds;
        if (m.enabled())
            m.serve_queue_sheds.add();
    }

    t.queue.push_back(PendingRequest{now});
    ++queued_;
    ++t.admits;
    if (m.enabled()) {
        m.serve_admits.add();
        m.serve_queue_depth.set(queued_);
    }
    return Status::ok();
}

std::size_t
TrafficGenerator::pump(Nanos now)
{
    registry::ScoreServer *server = mgr_.scorer();
    LAKE_ASSERT(server != nullptr, "scoring service torn down mid-run");

    // Busy gate: classifier compute charges the shared clock, so the
    // clock sitting further than max_runahead past this pump's
    // schedule slot means the server's virtual backlog exceeds the
    // dispatch window. Submitting more now would only deepen that
    // backlog unboundedly — instead hold the work in the bounded
    // tenant queues, where overload sheds (the §11 pressure path),
    // and keep polling so in-flight batches still complete.
    if (cfg_.max_runahead > 0 && clock_.now() > now &&
        clock_.now() - now > cfg_.max_runahead) {
        server->poll(clock_.now());
        return 0;
    }

    // Phase 1 (under mu_): one DRR cycle. Every tenant with queued
    // work earns a quantum of credits; each dispatches at most its
    // accumulated deficit, so a backlogged tenant catches up at the
    // same long-run rate as everyone else.
    std::vector<Dispatch> picked;
    {
        std::lock_guard<std::mutex> lock(mu_);
        const std::size_t n = tenants_.size();
        for (std::size_t i = 0; i < n; ++i) {
            std::size_t idx = (rr_next_ + i) % n;
            Tenant &t = tenants_[idx];
            if (t.queue.empty()) {
                // Classic DRR: an idle tenant banks no deficit.
                t.deficit = 0;
                continue;
            }
            t.deficit += cfg_.drr_quantum;
            while (t.deficit > 0 && !t.queue.empty()) {
                picked.push_back(Dispatch{idx, t.queue.front().arrival});
                t.queue.pop_front();
                --queued_;
                --t.deficit;
            }
            if (t.queue.empty())
                t.deficit = 0;
        }
        rr_next_ = n == 0 ? 0 : (rr_next_ + 1) % n;
    }

    // Phase 2 (no lock): hand the picks to the ScoreServer. submit()
    // may flush inline, running completion callbacks — which take
    // mu_ — on this thread, so mu_ must not be held here.
    std::size_t submitted = 0;
    std::vector<std::size_t> submitted_tenants;
    std::vector<Dispatch> requeue;
    bool stalled = false;
    for (std::size_t i = 0; i < picked.size(); ++i) {
        if (stalled) {
            requeue.push_back(picked[i]);
            continue;
        }
        const Dispatch &d = picked[i];
        std::vector<registry::FeatureVector> fvs;
        fvs.push_back(factory_(d.tenant, now));
        std::size_t tenant = d.tenant;
        Nanos arrival = d.arrival;
        Status st = server->submit(
            shards_[d.tenant % shards_.size()], sys_, std::move(fvs), 0,
            [this, tenant, arrival](const registry::ScoreResult &r) {
                onScored(tenant, arrival, r);
            });
        if (st.isOk()) {
            ++submitted;
            submitted_tenants.push_back(tenant);
            continue;
        }
        if (st.code() == Code::ResourceExhausted) {
            // Downstream backpressure: put the whole tail back (their
            // shards share the coalescing group, so more submits this
            // round would bounce too) and retry after the next poll
            // frees capacity.
            requeue.push_back(d);
            stalled = true;
            continue;
        }
        // Registry gone (teardown race) or otherwise unsubmittable:
        // the request is lost, account for it.
        std::lock_guard<std::mutex> lock(mu_);
        ++tenants_[tenant].failures;
        auto &m = obs::Metrics::global();
        if (m.enabled())
            m.serve_failures.add();
    }

    if (!requeue.empty()) {
        std::lock_guard<std::mutex> lock(mu_);
        backpressure_ += requeue.size();
        auto &m = obs::Metrics::global();
        if (m.enabled())
            m.serve_backpressure.add(requeue.size());
        // push_front in reverse pop order restores per-tenant FIFO.
        for (std::size_t i = requeue.size(); i-- > 0;) {
            tenants_[requeue[i].tenant].queue.push_front(
                PendingRequest{requeue[i].arrival});
            ++queued_;
        }
    }
    {
        std::lock_guard<std::mutex> lock(mu_);
        dispatched_ += submitted;
        for (std::size_t t : submitted_tenants)
            ++tenants_[t].dispatched;
        updateDepthGauge();
    }

    // Drive deadline expiry: virtual time never advances by itself.
    server->poll(std::max(now, clock_.now()));
    return submitted;
}

void
TrafficGenerator::onScored(std::size_t tenant, Nanos arrival,
                           const registry::ScoreResult &r)
{
    auto &m = obs::Metrics::global();
    std::lock_guard<std::mutex> lock(mu_);
    Tenant &t = tenants_[tenant];
    if (!r.status.isOk()) {
        // Shed by a newer submission downstream, or the registry was
        // torn down with this request in flight.
        ++t.failures;
        if (m.enabled())
            m.serve_failures.add();
        return;
    }
    ++t.completions;
    Nanos lat = r.scored >= arrival ? r.scored - arrival : 0;
    t.latency_us.add(toUs(lat));
    latency_us_.add(toUs(lat));
    if (m.enabled()) {
        m.serve_completions.add();
        m.serve_latency_ns.record(lat);
        m.serve_batch.record(r.batch);
    }
    auto &tr = obs::Tracer::global();
    if (tr.enabled())
        tr.instant(obs::Side::Runtime, "serve", "serve.scored", r.scored,
                   obs::kNoId, "tenant", tenant, "latency_ns", lat);
}

void
TrafficGenerator::sample(Nanos now)
{
    ServeSample s;
    s.at = now;
    s.utilization = util_probe_ ? util_probe_() : 0.0;
    s.server_pending = mgr_.scorer()->pending();
    {
        std::lock_guard<std::mutex> lock(mu_);
        s.queue_depth = queued_;
        for (const Tenant &t : tenants_) {
            s.admits += t.admits;
            s.completions += t.completions;
            s.sheds += t.queue_sheds + t.failures;
        }
    }
    samples_.push_back(s);
}

void
TrafficGenerator::run(Nanos duration)
{
    const Nanos start = clock_.now();
    const Nanos end = start + duration;

    // The arrival schedule: a min-heap of (time, tenant) fed either by
    // per-tenant Poisson processes (re-armed on every pop, so memory
    // stays O(tenants) no matter how long the run) or by the trace.
    using Event = std::pair<Nanos, std::size_t>;
    std::priority_queue<Event, std::vector<Event>, std::greater<Event>>
        arrivals;
    Rng rng(cfg_.seed);
    const double mean_gap_ns = 1e9 / cfg_.rate_rps;
    std::vector<TraceEntry> trace;
    std::size_t trace_next = 0;
    const bool traced = !cfg_.trace_path.empty();
    if (traced) {
        Status st = loadTrace(cfg_.trace_path, cfg_.tenants, trace);
        LAKE_ASSERT(st.isOk(), "serving trace rejected: %s",
                    st.toString().c_str());
    } else {
        for (std::size_t t = 0; t < cfg_.tenants; ++t)
            arrivals.push(
                {start + static_cast<Nanos>(rng.exponential(mean_gap_ns)),
                 t});
    }

    Nanos next_pump = start + cfg_.pump_interval;
    Nanos next_sample =
        sample_interval_ > 0 ? start + sample_interval_ : 0;
    for (;;) {
        Nanos ta = traced
                       ? (trace_next < trace.size()
                              ? start + trace[trace_next].at
                              : end + 1)
                       : (arrivals.empty() ? end + 1 : arrivals.top().first);
        Nanos t = std::min(ta, next_pump);
        if (sample_interval_ > 0)
            t = std::min(t, next_sample);
        if (t > end)
            break;
        // The classifier charges compute to the shared clock, so the
        // clock may already sit past this event: the arrival *time*
        // (its open-loop schedule slot) still stands for admission
        // and latency accounting, only the clock never moves back.
        clock_.advanceTo(t);
        if (sample_interval_ > 0 && t == next_sample) {
            sample(t);
            next_sample += sample_interval_;
            continue;
        }
        if (t == ta) {
            std::size_t tenant;
            if (traced) {
                tenant = trace[trace_next++].tenant;
            } else {
                tenant = arrivals.top().second;
                arrivals.pop();
                arrivals.push(
                    {ta + static_cast<Nanos>(rng.exponential(mean_gap_ns)),
                     tenant});
            }
            offer(tenant, t);
            continue;
        }
        pump(t);
        next_pump += cfg_.pump_interval;
    }

    // Offered load stops at the horizon; drain what was admitted so
    // every dispatched request completes and the percentiles cover
    // the whole population. Each drain tick advances virtual time
    // past the coalescing deadline, so poll() always makes progress.
    std::size_t guard = 0;
    for (;;) {
        std::size_t left;
        {
            std::lock_guard<std::mutex> lock(mu_);
            left = queued_;
        }
        if (left == 0)
            break;
        LAKE_ASSERT(++guard < 1000000, "serving drain did not converge");
        next_pump = std::max(next_pump, clock_.now()) + cfg_.pump_interval;
        clock_.advanceTo(next_pump);
        pump(next_pump);
    }
    mgr_.scorer()->flushAll(clock_.now());
    if (sample_interval_ > 0)
        sample(clock_.now());
}

ServeSummary
TrafficGenerator::summary(Nanos horizon) const
{
    ServeSummary s;
    std::lock_guard<std::mutex> lock(mu_);
    bool first = true;
    for (const Tenant &t : tenants_) {
        s.arrivals += t.arrivals;
        s.admits += t.admits;
        s.bucket_rejects += t.bucket_rejects;
        s.queue_sheds += t.queue_sheds;
        s.completions += t.completions;
        s.failures += t.failures;
        s.queued_residual += t.queue.size();
        double c = static_cast<double>(t.completions);
        if (first || c < s.min_tenant_completions)
            s.min_tenant_completions = c;
        if (first || c > s.max_tenant_completions)
            s.max_tenant_completions = c;
        first = false;
    }
    s.backpressure = backpressure_;
    s.dispatched = dispatched_;
    s.p50_us = latency_us_.percentile(50.0);
    s.p99_us = latency_us_.percentile(99.0);
    s.p999_us = latency_us_.percentile(99.9);
    if (horizon > 0)
        s.goodput_rps = static_cast<double>(s.completions) / toSec(horizon);
    if (s.arrivals > 0)
        s.reject_rate = static_cast<double>(s.bucket_rejects +
                                            s.queue_sheds + s.failures) /
                        static_cast<double>(s.arrivals);
    return s;
}

} // namespace lake::serve
