#ifndef LAKE_FS_PREFETCH_H
#define LAKE_FS_PREFETCH_H

/**
 * @file
 * KML-style file system prefetching (§7.4).
 *
 * KML classifies a process's recent I/O behaviour into access-pattern
 * classes, each mapped to an optimal readahead configuration. This
 * module provides: a workload generator emitting access streams of
 * known pattern, the 31-statistic feature extractor, label/dataset
 * helpers for training the classifier, and a readahead simulator that
 * scores a chosen configuration (cache hit rate / wasted prefetches) —
 * the end-to-end effect behind KML's reported 2.3x RocksDB gain.
 */

#include <cstdint>
#include <vector>

#include "base/rng.h"
#include "ml/mlp.h"

namespace lake::fs {

/** Access-pattern classes KML distinguishes. */
enum class AccessPattern : int
{
    Sequential = 0,
    Strided = 1,
    Random = 2,
    MixedZipf = 3,
};

/** Printable pattern name. */
const char *patternName(AccessPattern p);

/** Number of pattern classes. */
constexpr std::size_t kPatternClasses = 4;
/** Feature width of the readahead classifier. */
constexpr std::size_t kPrefetchFeatures = 31;
/** Readahead size (in 4 KiB pages) per predicted class. */
constexpr std::uint32_t kReadaheadPages[kPatternClasses] = {64, 32, 0, 8};

/** A stream of page-granular file accesses. */
using AccessStream = std::vector<std::uint64_t>;

/**
 * Generates @p count page accesses of the given pattern over a file of
 * @p file_pages pages.
 */
AccessStream generateAccesses(AccessPattern pattern, std::size_t count,
                              std::uint64_t file_pages, Rng &rng);

/**
 * Extracts the 31 KML statistics from a window of accesses: stride
 * histogram, monotonicity ratios, jump magnitudes, reuse distances.
 */
void extractPrefetchFeatures(const AccessStream &window,
                             float out[kPrefetchFeatures]);

/** One labelled example for the classifier. */
struct PrefetchSample
{
    std::vector<float> x; //!< kPrefetchFeatures wide
    int pattern;          //!< AccessPattern as int
};

/**
 * Builds a balanced labelled dataset of @p per_class windows per
 * pattern, each of @p window accesses.
 */
std::vector<PrefetchSample> buildPrefetchDataset(std::size_t per_class,
                                                 std::size_t window,
                                                 Rng &rng);

/** Trains the KML readahead classifier. */
ml::Mlp trainPrefetchModel(const std::vector<PrefetchSample> &data,
                           std::size_t epochs, float lr, Rng &rng);

/** Outcome of simulating one readahead configuration over a stream. */
struct ReadaheadOutcome
{
    double hit_rate = 0.0;       //!< demand accesses served from cache
    double wasted_fraction = 0.0; //!< prefetched pages never used
    std::uint64_t disk_reads = 0; //!< demand misses + prefetch I/Os
};

/**
 * Replays @p stream against a page cache of @p cache_pages with a
 * fixed readahead of @p ra_pages after each miss.
 */
ReadaheadOutcome simulateReadahead(const AccessStream &stream,
                                   std::uint32_t ra_pages,
                                   std::size_t cache_pages);

} // namespace lake::fs

#endif // LAKE_FS_PREFETCH_H
