#ifndef LAKE_FS_ECRYPTFS_H
#define LAKE_FS_ECRYPTFS_H

/**
 * @file
 * A stacked cryptographic file system in the image of eCryptfs (§7.7).
 *
 * Files are stored encrypted in extents on a lower file system; reads
 * fetch ciphertext extents from the (modeled) disk and decrypt them
 * with the configured cipher engine, writes encrypt and then flush.
 * With read-ahead enabled the lower-FS fetch of extent i+1 overlaps
 * the decryption of extent i — the overlap the paper arranges by
 * setting the read-ahead size to the block size. Throughput therefore
 * converges to min(disk bandwidth, cipher bandwidth), which is what
 * Fig. 14 sweeps across block sizes and engines.
 */

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "base/status.h"
#include "base/time.h"
#include "crypto/engines.h"

namespace lake::fs {

/** The lower file system + device, as a streaming model. */
struct LowerFsModel
{
    double read_gbps = 1.35;  //!< effective streaming read bandwidth
    double write_gbps = 1.30; //!< effective streaming write bandwidth
    Nanos per_extent = 9_us;  //!< request overhead per extent (VFS+NVMe)

    /** The testbed's NVMe through ext4, as the paper's setup sees it. */
    static LowerFsModel testbed() { return LowerFsModel{}; }
};

/** Counters for Fig. 15-style utilization accounting. */
struct ECryptFsStats
{
    std::uint64_t extents_read = 0;
    std::uint64_t extents_written = 0;
    std::uint64_t bytes_read = 0;
    std::uint64_t bytes_written = 0;
    Nanos disk_busy = 0;   //!< time the lower FS spent streaming
    Nanos crypto_busy = 0; //!< time the cipher engine was working
};

/**
 * The stacked encrypted file system.
 */
class ECryptFs
{
  public:
    /**
     * @param cipher      cipher engine (CPU / AES-NI / LAKE / hybrid)
     * @param clock       virtual clock shared with the engine
     * @param lower       lower FS model
     * @param extent_bytes encryption block size (Fig. 14's x axis)
     * @param readahead   true = lower-FS fetch overlaps decryption
     */
    ECryptFs(crypto::CipherEngine &cipher, Clock &clock,
             LowerFsModel lower, std::size_t extent_bytes,
             bool readahead = true);

    /** Writes (creates or replaces) a file; synchronous semantics. */
    Status writeFile(const std::string &path, const std::uint8_t *data,
                     std::size_t size);

    /** Reads a whole file back, decrypting and verifying every extent. */
    Result<std::vector<std::uint8_t>> readFile(const std::string &path);

    /** True when @p path exists. */
    bool exists(const std::string &path) const;

    /** Stored ciphertext size of a file (0 when absent). */
    std::size_t storedSize(const std::string &path) const;

    /** Extent size in force. */
    std::size_t extentBytes() const { return extent_bytes_; }

    /** Cumulative counters. */
    const ECryptFsStats &stats() const { return stats_; }

  private:
    struct Extent
    {
        std::vector<std::uint8_t> cipher;
        std::uint8_t iv[crypto::kGcmIvBytes];
        std::uint8_t tag[crypto::kGcmTagBytes];
        std::size_t plain_len;
    };

    struct File
    {
        std::vector<Extent> extents;
        std::size_t size = 0;
    };

    /** Modeled disk streaming time for @p bytes. */
    Nanos diskTime(std::size_t bytes, bool write) const;

    /**
     * Extents per capture group on the batched (streaming-cipher)
     * paths: the double-buffering grain — group i's crypto overlaps
     * the lower FS streaming group i+1 (read) or flushing group i-1
     * (write).
     */
    static constexpr std::size_t kBatchExtents = 32;

    /** writeFile body for engines with a pipelined batch path. */
    Status writeFileBatched(File &file, const std::uint8_t *data,
                            std::size_t size);

    /** readFile body for engines with a pipelined batch path. */
    Result<std::vector<std::uint8_t>> readFileBatched(const File &file);

    crypto::CipherEngine &cipher_;
    Clock &clock_;
    LowerFsModel lower_;
    std::size_t extent_bytes_;
    bool readahead_;
    std::map<std::string, File> files_;
    ECryptFsStats stats_;
    std::uint64_t iv_counter_ = 1;
};

} // namespace lake::fs

#endif // LAKE_FS_ECRYPTFS_H
