#include "fs/prefetch.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <unordered_map>
#include <unordered_set>

#include "base/logging.h"

namespace lake::fs {

const char *
patternName(AccessPattern p)
{
    switch (p) {
      case AccessPattern::Sequential: return "sequential";
      case AccessPattern::Strided:    return "strided";
      case AccessPattern::Random:     return "random";
      case AccessPattern::MixedZipf:  return "mixed-zipf";
    }
    return "?";
}

AccessStream
generateAccesses(AccessPattern pattern, std::size_t count,
                 std::uint64_t file_pages, Rng &rng)
{
    LAKE_ASSERT(file_pages > 64, "file too small for pattern generation");
    AccessStream out;
    out.reserve(count);

    switch (pattern) {
      case AccessPattern::Sequential: {
        std::uint64_t pos = rng.uniformInt(0, file_pages / 4);
        for (std::size_t i = 0; i < count; ++i) {
            out.push_back(pos % file_pages);
            // Occasional skip, as real sequential readers reposition.
            pos += rng.chance(0.02) ? rng.uniformInt(2, 16) : 1;
        }
        break;
      }
      case AccessPattern::Strided: {
        std::uint64_t stride = rng.uniformInt(4, 32);
        std::uint64_t pos = rng.uniformInt(0, file_pages / 4);
        for (std::size_t i = 0; i < count; ++i) {
            out.push_back(pos % file_pages);
            pos += stride;
            if (rng.chance(0.01))
                pos += rng.uniformInt(1, 3); // phase noise
        }
        break;
      }
      case AccessPattern::Random: {
        for (std::size_t i = 0; i < count; ++i)
            out.push_back(rng.uniformInt(0, file_pages - 1));
        break;
      }
      case AccessPattern::MixedZipf: {
        // Hot set + occasional sequential bursts: database-ish.
        std::uint64_t hot = std::max<std::uint64_t>(file_pages / 64, 16);
        std::size_t i = 0;
        while (i < count) {
            if (rng.chance(0.25)) {
                std::uint64_t pos = rng.uniformInt(0, file_pages - 1);
                std::size_t burst =
                    std::min<std::size_t>(count - i,
                                          rng.uniformInt(4, 12));
                for (std::size_t b = 0; b < burst; ++b, ++i)
                    out.push_back((pos + b) % file_pages);
            } else {
                // Approximate Zipf over the hot set by squaring a
                // uniform draw (mass concentrates near zero).
                double u = rng.uniform01();
                out.push_back(static_cast<std::uint64_t>(
                    u * u * static_cast<double>(hot)));
                ++i;
            }
        }
        break;
      }
    }
    return out;
}

void
extractPrefetchFeatures(const AccessStream &window,
                        float out[kPrefetchFeatures])
{
    std::fill(out, out + kPrefetchFeatures, 0.0f);
    if (window.size() < 2)
        return;
    std::size_t n = window.size() - 1;

    // Features 0..15: histogram of delta magnitudes in log2 buckets,
    // signed (forward 0..7, backward 8..15), normalized.
    // Features 16..19: +1/0/-stride/random ratios.
    // Features 20..27: reuse statistics and monotonicity.
    std::size_t fwd1 = 0, same_stride = 0, backward = 0, jumps = 0;
    std::int64_t prev_delta = 0;
    std::unordered_map<std::uint64_t, std::size_t> last_seen;
    double reuse_sum = 0.0;
    std::size_t reuse_count = 0;

    for (std::size_t i = 1; i < window.size(); ++i) {
        auto delta = static_cast<std::int64_t>(window[i]) -
                     static_cast<std::int64_t>(window[i - 1]);
        std::uint64_t mag =
            static_cast<std::uint64_t>(delta < 0 ? -delta : delta);
        int bucket = 0;
        while (mag > 1 && bucket < 7) {
            mag >>= 1;
            ++bucket;
        }
        out[delta < 0 ? 8 + bucket : bucket] += 1.0f;

        if (delta == 1)
            ++fwd1;
        else if (delta == prev_delta && delta != 0)
            ++same_stride;
        else if (delta < 0)
            ++backward;
        else if (delta > 64)
            ++jumps;
        prev_delta = delta;

        auto it = last_seen.find(window[i]);
        if (it != last_seen.end()) {
            reuse_sum += static_cast<double>(i - it->second);
            ++reuse_count;
        }
        last_seen[window[i]] = i;
    }

    for (int b = 0; b < 16; ++b)
        out[b] /= static_cast<float>(n);
    out[16] = static_cast<float>(fwd1) / n;
    out[17] = static_cast<float>(same_stride) / n;
    out[18] = static_cast<float>(backward) / n;
    out[19] = static_cast<float>(jumps) / n;

    out[20] = reuse_count
                  ? static_cast<float>(reuse_sum / reuse_count / n)
                  : 0.0f;
    out[21] = static_cast<float>(reuse_count) / n;
    out[22] = static_cast<float>(last_seen.size()) /
              static_cast<float>(window.size()); // distinct ratio

    // Features 23..30: quartile deltas of the access positions — cheap
    // spatial-locality summary.
    AccessStream sorted = window;
    std::sort(sorted.begin(), sorted.end());
    std::uint64_t span = sorted.back() - sorted.front() + 1;
    for (int q = 0; q < 8; ++q) {
        std::size_t idx = (sorted.size() - 1) * q / 7;
        out[23 + q] = static_cast<float>(
            static_cast<double>(sorted[idx] - sorted.front()) /
            static_cast<double>(span));
    }
}

std::vector<PrefetchSample>
buildPrefetchDataset(std::size_t per_class, std::size_t window, Rng &rng)
{
    std::vector<PrefetchSample> data;
    data.reserve(per_class * kPatternClasses);
    for (std::size_t cls = 0; cls < kPatternClasses; ++cls) {
        for (std::size_t i = 0; i < per_class; ++i) {
            AccessStream s =
                generateAccesses(static_cast<AccessPattern>(cls), window,
                                 1 << 20, rng);
            PrefetchSample sample;
            sample.x.resize(kPrefetchFeatures);
            extractPrefetchFeatures(s, sample.x.data());
            sample.pattern = static_cast<int>(cls);
            data.push_back(std::move(sample));
        }
    }
    std::shuffle(data.begin(), data.end(), rng.engine());
    return data;
}

ml::Mlp
trainPrefetchModel(const std::vector<PrefetchSample> &data,
                   std::size_t epochs, float lr, Rng &rng)
{
    LAKE_ASSERT(!data.empty(), "empty prefetch dataset");
    ml::Mlp net(ml::MlpConfig::kml(), rng);

    constexpr std::size_t kBatch = 32;
    std::vector<std::size_t> order(data.size());
    for (std::size_t i = 0; i < order.size(); ++i)
        order[i] = i;

    for (std::size_t e = 0; e < epochs; ++e) {
        std::shuffle(order.begin(), order.end(), rng.engine());
        for (std::size_t start = 0; start < order.size();
             start += kBatch) {
            std::size_t n = std::min(kBatch, order.size() - start);
            ml::Matrix x(n, kPrefetchFeatures);
            std::vector<int> y(n);
            for (std::size_t i = 0; i < n; ++i) {
                const PrefetchSample &s = data[order[start + i]];
                std::copy(s.x.begin(), s.x.end(), x.row(i));
                y[i] = s.pattern;
            }
            net.trainStep(x, y, lr);
        }
    }
    return net;
}

ReadaheadOutcome
simulateReadahead(const AccessStream &stream, std::uint32_t ra_pages,
                  std::size_t cache_pages)
{
    ReadaheadOutcome out;
    if (stream.empty())
        return out;

    // FIFO page cache with a prefetched-but-unused marker.
    std::unordered_map<std::uint64_t, bool> cached; // page -> was_used
    std::vector<std::uint64_t> fifo;
    std::size_t head = 0;
    std::uint64_t hits = 0, prefetched = 0, prefetched_used = 0;

    auto insert = [&](std::uint64_t page, bool demand) {
        if (cached.count(page))
            return;
        if (cached.size() >= cache_pages && head < fifo.size()) {
            cached.erase(fifo[head]);
            ++head;
        }
        cached.emplace(page, demand);
        fifo.push_back(page);
    };

    for (std::uint64_t page : stream) {
        auto it = cached.find(page);
        if (it != cached.end()) {
            ++hits;
            if (!it->second) {
                it->second = true;
                ++prefetched_used;
            }
            continue;
        }
        // Demand miss: one disk read, plus the readahead window.
        ++out.disk_reads;
        insert(page, true);
        for (std::uint32_t r = 1; r <= ra_pages; ++r) {
            if (!cached.count(page + r)) {
                ++prefetched;
                ++out.disk_reads;
                insert(page + r, false);
            }
        }
    }

    out.hit_rate =
        static_cast<double>(hits) / static_cast<double>(stream.size());
    out.wasted_fraction =
        prefetched == 0
            ? 0.0
            : 1.0 - static_cast<double>(prefetched_used) /
                        static_cast<double>(prefetched);
    return out;
}

} // namespace lake::fs
