#include "fs/ecryptfs.h"

#include <algorithm>
#include <cstring>

#include "base/logging.h"

namespace lake::fs {

ECryptFs::ECryptFs(crypto::CipherEngine &cipher, Clock &clock,
                   LowerFsModel lower, std::size_t extent_bytes,
                   bool readahead)
    : cipher_(cipher), clock_(clock), lower_(lower),
      extent_bytes_(extent_bytes), readahead_(readahead)
{
    LAKE_ASSERT(extent_bytes_ >= 4096, "extent must be >= 4 KiB");
}

Nanos
ECryptFs::diskTime(std::size_t bytes, bool write) const
{
    double gbps = write ? lower_.write_gbps : lower_.read_gbps;
    return lower_.per_extent +
           static_cast<Nanos>(static_cast<double>(bytes) / gbps);
}

Status
ECryptFs::writeFile(const std::string &path, const std::uint8_t *data,
                    std::size_t size)
{
    if (data == nullptr && size > 0)
        return Status(Code::InvalidArgument, "null data");

    File file;
    file.size = size;

    if (cipher_.batched() && size > extent_bytes_) {
        Status s = writeFileBatched(file, data, size);
        if (!s.isOk())
            return s;
        files_[path] = std::move(file);
        return Status::ok();
    }

    // Disk flushes overlap the encryption of subsequent extents: the
    // engine charges the shared clock, while the lower FS keeps its
    // own busy horizon.
    Nanos disk_free = clock_.now();

    for (std::size_t off = 0; off < size || (size == 0 && off == 0);
         off += extent_bytes_) {
        std::size_t n = std::min(extent_bytes_, size - off);
        Extent ext;
        ext.plain_len = n;
        ext.cipher.resize(n);
        std::memset(ext.iv, 0, sizeof(ext.iv));
        std::uint64_t ctr = iv_counter_++;
        std::memcpy(ext.iv, &ctr, sizeof(ctr));

        if (n > 0)
            cipher_.encryptExtent(ext.iv, data + off, n,
                                  ext.cipher.data(), ext.tag);

        Nanos t = diskTime(n, /*write=*/true);
        disk_free = std::max(disk_free, clock_.now()) + t;
        stats_.disk_busy += t;
        stats_.extents_written += 1;
        stats_.bytes_written += n;

        file.extents.push_back(std::move(ext));
        if (size == 0)
            break;
    }

    // Synchronous write semantics: wait for the last flush.
    clock_.advanceTo(disk_free);
    files_[path] = std::move(file);
    return Status::ok();
}

Status
ECryptFs::writeFileBatched(File &file, const std::uint8_t *data,
                           std::size_t size)
{
    // Double-buffered capture: extents are encrypted in groups of
    // kBatchExtents through the engine's pipelined batch path while
    // the lower FS flushes the previous group on its own horizon.
    std::size_t n_ext = (size + extent_bytes_ - 1) / extent_bytes_;
    file.extents.resize(n_ext);
    std::vector<crypto::ExtentOp> ops;
    ops.reserve(std::min(n_ext, kBatchExtents));

    Nanos disk_free = clock_.now();
    for (std::size_t g = 0; g < n_ext; g += kBatchExtents) {
        std::size_t last = std::min(n_ext, g + kBatchExtents);
        ops.clear();
        for (std::size_t i = g; i < last; ++i) {
            std::size_t off = i * extent_bytes_;
            std::size_t n = std::min(extent_bytes_, size - off);
            Extent &ext = file.extents[i];
            ext.plain_len = n;
            ext.cipher.resize(n);
            std::memset(ext.iv, 0, sizeof(ext.iv));
            std::uint64_t ctr = iv_counter_++;
            std::memcpy(ext.iv, &ctr, sizeof(ctr));

            crypto::ExtentOp op;
            op.iv = ext.iv;
            op.in = data + off;
            op.len = n;
            op.out = ext.cipher.data();
            ops.push_back(op);
        }
        cipher_.encryptBatch(ops.data(), ops.size());
        for (std::size_t i = g; i < last; ++i) {
            Extent &ext = file.extents[i];
            std::memcpy(ext.tag, ops[i - g].tag, sizeof(ext.tag));
            Nanos t = diskTime(ext.plain_len, /*write=*/true);
            disk_free = std::max(disk_free, clock_.now()) + t;
            stats_.disk_busy += t;
            stats_.extents_written += 1;
            stats_.bytes_written += ext.plain_len;
        }
    }
    clock_.advanceTo(disk_free);
    return Status::ok();
}

Result<std::vector<std::uint8_t>>
ECryptFs::readFile(const std::string &path)
{
    auto it = files_.find(path);
    if (it == files_.end()) {
        return Result<std::vector<std::uint8_t>>(
            Status(Code::NotFound, "no file " + path));
    }
    const File &file = it->second;

    if (cipher_.batched() && file.extents.size() > 1)
        return readFileBatched(file);

    std::vector<std::uint8_t> out(file.size);
    std::size_t off = 0;

    // Read-ahead pipeline: the lower FS streams extents on its own
    // horizon; decryption consumes them as they land. Without
    // read-ahead each fetch is demanded only when decryption finishes
    // the previous extent, fully serializing the two.
    Nanos disk_free = clock_.now();

    for (const Extent &ext : file.extents) {
        Nanos t = diskTime(ext.plain_len, /*write=*/false);
        Nanos issue = readahead_ ? disk_free
                                 : std::max(disk_free, clock_.now());
        Nanos available = issue + t;
        disk_free = available;
        stats_.disk_busy += t;

        // Decryption cannot start before the ciphertext arrives.
        clock_.advanceTo(available);

        if (ext.plain_len > 0) {
            Nanos c0 = clock_.now();
            bool ok = cipher_.decryptExtent(ext.iv, ext.cipher.data(),
                                            ext.plain_len, ext.tag,
                                            out.data() + off);
            stats_.crypto_busy += clock_.now() - c0;
            if (!ok) {
                return Result<std::vector<std::uint8_t>>(Status(
                    Code::Internal, "extent authentication failed"));
            }
        }
        stats_.extents_read += 1;
        stats_.bytes_read += ext.plain_len;
        off += ext.plain_len;
    }
    return Result<std::vector<std::uint8_t>>(std::move(out));
}

Result<std::vector<std::uint8_t>>
ECryptFs::readFileBatched(const File &file)
{
    std::vector<std::uint8_t> out(file.size);

    // Double-buffered capture, read side: the lower FS streams group
    // i+1 on its own horizon (readahead) while group i moves through
    // the engine's pipelined batch decrypt. Decryption of a group
    // starts when its last extent has landed.
    Nanos disk_free = clock_.now();
    std::vector<crypto::ExtentOp> ops;
    ops.reserve(std::min(file.extents.size(), kBatchExtents));

    std::size_t off = 0;
    for (std::size_t g = 0; g < file.extents.size(); g += kBatchExtents) {
        std::size_t last = std::min(file.extents.size(),
                                    g + kBatchExtents);
        ops.clear();
        Nanos available = clock_.now();
        for (std::size_t i = g; i < last; ++i) {
            const Extent &ext = file.extents[i];
            Nanos t = diskTime(ext.plain_len, /*write=*/false);
            Nanos issue = readahead_ ? disk_free
                                     : std::max(disk_free, clock_.now());
            available = issue + t;
            disk_free = available;
            stats_.disk_busy += t;

            if (ext.plain_len > 0) {
                crypto::ExtentOp op;
                op.iv = ext.iv;
                op.in = ext.cipher.data();
                op.len = ext.plain_len;
                op.out = out.data() + off;
                std::memcpy(op.tag, ext.tag, sizeof(op.tag));
                ops.push_back(op);
            }
            stats_.extents_read += 1;
            stats_.bytes_read += ext.plain_len;
            off += ext.plain_len;
        }
        clock_.advanceTo(available);
        Nanos c0 = clock_.now();
        bool ok = cipher_.decryptBatch(ops.data(), ops.size());
        stats_.crypto_busy += clock_.now() - c0;
        if (!ok) {
            return Result<std::vector<std::uint8_t>>(
                Status(Code::Internal, "extent authentication failed"));
        }
    }
    return Result<std::vector<std::uint8_t>>(std::move(out));
}

bool
ECryptFs::exists(const std::string &path) const
{
    return files_.count(path) != 0;
}

std::size_t
ECryptFs::storedSize(const std::string &path) const
{
    auto it = files_.find(path);
    if (it == files_.end())
        return 0;
    std::size_t n = 0;
    for (const Extent &e : it->second.extents)
        n += e.cipher.size() + sizeof(e.iv) + sizeof(e.tag);
    return n;
}

} // namespace lake::fs
