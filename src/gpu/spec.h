#ifndef LAKE_GPU_SPEC_H
#define LAKE_GPU_SPEC_H

/**
 * @file
 * Performance envelopes of the simulated hardware.
 *
 * The paper's finding C2 — "the benefit of acceleration is subsystem-,
 * workload- and hardware-dependent" — falls out of three numbers per
 * device: fixed per-operation overhead, interconnect bandwidth, and
 * sustained compute throughput. Crossover points (Table 3) are where
 * batched GPU work amortizes the fixed costs below the CPU's linear
 * cost. The default values are calibrated against the paper's testbed
 * (dual Xeon Gold 6226R + NVIDIA A100 over PCIe 4.0).
 */

#include <cstddef>
#include <string>

#include "base/time.h"

namespace lake::gpu {

/** Accelerator performance model. */
struct DeviceSpec
{
    std::string name;

    /** Device memory capacity in bytes. */
    std::size_t mem_capacity;

    /** Effective host<->device bandwidth (GB/s) over the interconnect. */
    double pcie_gbps;

    /** Fixed cost per DMA transfer (driver + doorbell + setup). */
    Nanos transfer_overhead;

    /** Fixed cost per kernel launch. */
    Nanos launch_overhead;

    /**
     * Sustained FP32 throughput (GFLOP/s) for the small-batch,
     * latency-bound kernels kernel subsystems run. Far below peak
     * tensor-core numbers on purpose: inference batches of tens to
     * thousands of rows cannot fill an A100.
     */
    double effective_gflops;

    /** Device memory bandwidth (GB/s). */
    double mem_gbps;

    /** Sustained AES-GCM throughput (GB/s) of the crypto kernels. */
    double aes_gbps;

    /** Calibrated to the paper's testbed A100 (PCIe 4.0). */
    static DeviceSpec a100();

    /**
     * A smaller, older part (think desktop Pascal over PCIe 3.0) used
     * by the hardware-dependence ablations: higher overheads, lower
     * throughput, so crossover points shift right.
     */
    static DeviceSpec modest();
};

/** Host CPU performance model (one core running kernel-space float code). */
struct CpuSpec
{
    std::string name;

    /**
     * Effective GFLOP/s of scalar kernel-space ML code. Low by design:
     * in-kernel float code runs between kernel_fpu_begin/end, without
     * the vectorized BLAS userspace enjoys. Calibrated so one LinnOS
     * inference (≈17 kFLOP) costs ≈15 us, the figure §7.1 reports.
     */
    double effective_gflops;

    /** Memory bandwidth (GB/s) seen by one core. */
    double mem_gbps;

    /** AES-GCM throughput (GB/s) of the scalar software cipher. */
    double aes_sw_gbps;

    /** AES-GCM throughput (GB/s) with AES-NI instructions. */
    double aes_ni_gbps;

    /** Calibrated to the paper's testbed Xeon Gold 6226R. */
    static CpuSpec xeonGold6226R();
};

} // namespace lake::gpu

#endif // LAKE_GPU_SPEC_H
