#ifndef LAKE_GPU_NVML_H
#define LAKE_GPU_NVML_H

/**
 * @file
 * NVML shim: device utilization queries for contention policies.
 *
 * The paper's Fig. 3 policy calls the (LAKE-remoted) NVML API
 * nvmlDeviceGetUtilizationRates at most every 5 ms and feeds the reading
 * into a moving average. This shim answers the same question from the
 * device's busy-span history.
 */

#include "base/time.h"
#include "gpu/device.h"

namespace lake::gpu {

/** Mirror of nvmlUtilization_t. */
struct NvmlUtilization
{
    /** Percent of the sample window the compute engine was busy. */
    double gpu = 0.0;
    /** Percent of the sample window the copy engine was busy. */
    double memory = 0.0;
};

/**
 * Utilization sampler over one device.
 */
class Nvml
{
  public:
    /** NVML's documented sampling period (we use it as the window). */
    static constexpr Nanos kSampleWindow = 20_ms;

    /** Fixed modeled cost of one NVML query (driver ioctl round trip). */
    static constexpr Nanos kQueryCost = 20_us;

    /** @param device device to sample */
    explicit Nvml(const Device &device) : device_(device) {}

    /**
     * nvmlDeviceGetUtilizationRates: utilization over the window ending
     * at @p now. Does not charge time; callers that model the query
     * cost add kQueryCost themselves (the remoting layer does).
     */
    NvmlUtilization utilization(Nanos now) const;

  private:
    const Device &device_;
};

} // namespace lake::gpu

#endif // LAKE_GPU_NVML_H
