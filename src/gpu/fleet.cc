#include "gpu/fleet.h"

#include <algorithm>
#include <cstdlib>
#include <cstring>

#include "base/logging.h"

namespace lake::gpu {

namespace {

/** Parses a positive integer env var; @p fallback when unset/bad. */
std::size_t
envSize(const char *name, std::size_t fallback)
{
    const char *v = std::getenv(name);
    if (!v || !*v)
        return fallback;
    char *end = nullptr;
    unsigned long long parsed = std::strtoull(v, &end, 10);
    if (end == v || *end != '\0' || parsed == 0)
        return fallback;
    return static_cast<std::size_t>(parsed);
}

} // namespace

void
FleetConfig::applyEnv()
{
    const char *on = std::getenv("LAKE_FLEET");
    if (on && *on)
        enabled = std::strcmp(on, "0") != 0;
    devices = envSize("LAKE_DEVICES", devices);
    shards = envSize("LAKE_SHARDS", shards);
    if (shards > devices)
        shards = devices;
}

DeviceSpec
scaleSpec(DeviceSpec spec, double w)
{
    w = std::clamp(w, 1e-3, 1.0);
    spec.mem_capacity =
        static_cast<std::size_t>(static_cast<double>(spec.mem_capacity) * w);
    spec.pcie_gbps *= w;
    spec.effective_gflops *= w;
    spec.mem_gbps *= w;
    spec.aes_gbps *= w;
    return spec;
}

DeviceFleet::DeviceFleet(const FleetConfig &cfg)
{
    LAKE_ASSERT(cfg.devices >= 1, "fleet needs at least one device");
    LAKE_ASSERT(cfg.weights.empty() || cfg.weights.size() == cfg.devices,
                "fleet weights (%zu) must match devices (%zu)",
                cfg.weights.size(), cfg.devices);
    devices_.reserve(cfg.devices);
    for (std::size_t i = 0; i < cfg.devices; ++i) {
        DeviceSpec spec = cfg.weights.empty()
                              ? cfg.spec
                              : scaleSpec(cfg.spec, cfg.weights[i]);
        DevicePtr base = Device::kVaBase + i * Device::kVaWindow;
        devices_.push_back(std::make_unique<Device>(
            std::move(spec), static_cast<std::uint32_t>(i), base,
            base + Device::kVaWindow));
    }
}

std::size_t
DeviceFleet::ownerOf(DevicePtr ptr) const
{
    for (std::size_t i = 0; i < devices_.size(); ++i)
        if (devices_[i]->ownsVa(ptr))
            return i;
    return devices_.size();
}

} // namespace lake::gpu
