#ifndef LAKE_GPU_CONTEXT_H
#define LAKE_GPU_CONTEXT_H

/**
 * @file
 * CUDA-driver-style context: the API surface lakeD calls on behalf of
 * kernel-space clients.
 *
 * Mirrors the driver-API subset the paper remotes (cuMemAlloc, cuMemFree,
 * cuMemcpyHtoD/DtoH and their async variants, cuLaunchKernel, stream
 * synchronization). Data effects happen eagerly (device memory is real);
 * durations are charged to the bound virtual clock, with async work
 * completing on per-stream timelines so copies overlap compute — the
 * distinction behind the paper's "LAKE" vs "LAKE (sync.)" series.
 */

#include <cstdint>
#include <unordered_map>

#include "base/time.h"
#include "gpu/device.h"
#include "gpu/kernels.h"

namespace lake::gpu {

/** Stream identifier; 0 is the default stream. */
using StreamId = std::uint32_t;

/**
 * One client's view of a device, bound to a virtual clock.
 */
class GpuContext
{
  public:
    /** Fixed cost charged for any driver API call. */
    static constexpr Nanos kDriverCallCost = 500_ns;

    /**
     * @param device shared accelerator (outlives the context)
     * @param clock  virtual clock of the calling execution context
     */
    GpuContext(Device &device, Clock &clock);

    /** Underlying device. */
    Device &device() { return device_; }
    /** Clock this context charges. */
    Clock &clock() { return clock_; }

    /// @name Memory
    /// @{

    /** cuMemAlloc. */
    CuResult memAlloc(DevicePtr *out, std::size_t bytes);
    /** cuMemFree. */
    CuResult memFree(DevicePtr ptr);

    /** cuMemcpyHtoD (synchronous: returns with the copy complete). */
    CuResult memcpyHtoD(DevicePtr dst, const void *src, std::size_t bytes);
    /** cuMemcpyDtoH (synchronous). */
    CuResult memcpyDtoH(void *dst, DevicePtr src, std::size_t bytes);

    /** cuMemcpyHtoDAsync: completes on @p stream's timeline. */
    CuResult memcpyHtoDAsync(DevicePtr dst, const void *src,
                             std::size_t bytes, StreamId stream);
    /** cuMemcpyDtoHAsync. */
    CuResult memcpyDtoHAsync(void *dst, DevicePtr src, std::size_t bytes,
                             StreamId stream);

    /// @}
    /// @name Execution
    /// @{

    /**
     * cuLaunchKernel: runs the registered kernel body, reserves the
     * compute engine after the stream's prior work, and returns
     * asynchronously (synchronize to observe the modeled finish time).
     */
    CuResult launchKernel(const LaunchConfig &cfg, StreamId stream = 0);

    /** cuStreamSynchronize: blocks (in virtual time) until the stream
     *  drains. */
    CuResult streamSynchronize(StreamId stream);

    /** cuCtxSynchronize: drains every stream. */
    CuResult ctxSynchronize();

    /// @}

    /** Completion time of the last operation queued on @p stream. */
    Nanos streamReadyAt(StreamId stream) const;

  private:
    /** Charges the fixed driver-call cost. */
    void chargeCall() { clock_.advance(kDriverCallCost); }

    Device &device_;
    Clock &clock_;
    std::unordered_map<StreamId, Nanos> stream_ready_;
};

} // namespace lake::gpu

#endif // LAKE_GPU_CONTEXT_H
