#ifndef LAKE_GPU_CONTEXT_H
#define LAKE_GPU_CONTEXT_H

/**
 * @file
 * CUDA-driver-style context: the API surface lakeD calls on behalf of
 * kernel-space clients.
 *
 * Mirrors the driver-API subset the paper remotes (cuMemAlloc, cuMemFree,
 * cuMemcpyHtoD/DtoH and their async variants, cuLaunchKernel, stream
 * synchronization). Data effects happen eagerly (device memory is real);
 * durations are charged to the bound virtual clock, with async work
 * completing on per-stream timelines so copies overlap compute — the
 * distinction behind the paper's "LAKE" vs "LAKE (sync.)" series.
 */

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "base/time.h"
#include "gpu/device.h"
#include "gpu/kernels.h"

namespace lake::gpu {

/** Stream identifier; 0 is the default stream. */
using StreamId = std::uint32_t;

/**
 * One client's view of a device, bound to a virtual clock.
 */
class GpuContext
{
  public:
    /** Fixed cost charged for any driver API call. */
    static constexpr Nanos kDriverCallCost = 500_ns;

    /**
     * @param device shared accelerator (outlives the context)
     * @param clock  virtual clock of the calling execution context
     */
    GpuContext(Device &device, Clock &clock);

    /** Underlying device. */
    Device &device() { return device_; }
    /** Clock this context charges. */
    Clock &clock() { return clock_; }

    /// @name Memory
    /// @{

    /** cuMemAlloc. */
    CuResult memAlloc(DevicePtr *out, std::size_t bytes);
    /** cuMemFree. */
    CuResult memFree(DevicePtr ptr);

    /**
     * cuMemFreeAsync: the free is ordered *after* the owning stream's
     * queued work. An allocation still referenced by an in-flight copy
     * or launch stays live until that stream's streamReadyAt passes —
     * freeing it at dispatch time would recycle a pooled buffer while
     * its transfer is mid-flight (a virtual-time use-after-free).
     * Unknown pointers — and pointers whose first free is still queued
     * (a double async free) — fail immediately with InvalidValue.
     */
    CuResult memFreeAsync(DevicePtr ptr);

    /** Deferred frees queued behind busy streams (test visibility). */
    std::size_t pendingFrees() const { return pending_frees_.size(); }

    /** cuMemcpyHtoD (synchronous: returns with the copy complete). */
    CuResult memcpyHtoD(DevicePtr dst, const void *src, std::size_t bytes);
    /** cuMemcpyDtoH (synchronous). */
    CuResult memcpyDtoH(void *dst, DevicePtr src, std::size_t bytes);

    /** cuMemcpyHtoDAsync: completes on @p stream's timeline. */
    CuResult memcpyHtoDAsync(DevicePtr dst, const void *src,
                             std::size_t bytes, StreamId stream);
    /** cuMemcpyDtoHAsync. */
    CuResult memcpyDtoHAsync(void *dst, DevicePtr src, std::size_t bytes,
                             StreamId stream);

    /// @}
    /// @name Execution
    /// @{

    /**
     * cuLaunchKernel: runs the registered kernel body, reserves the
     * compute engine after the stream's prior work, and returns
     * asynchronously (synchronize to observe the modeled finish time).
     */
    CuResult launchKernel(const LaunchConfig &cfg, StreamId stream = 0);

    /**
     * cuStreamSynchronize: blocks (in virtual time) until the stream
     * drains. Synchronizing a never-used StreamId is a guaranteed
     * no-op: it returns Success without inserting a timeline entry, so
     * probing random stream ids cannot grow stream_ready_.
     */
    CuResult streamSynchronize(StreamId stream);

    /** cuCtxSynchronize: drains every stream. */
    CuResult ctxSynchronize();

    /// @}

    /** Completion time of the last operation queued on @p stream. */
    Nanos streamReadyAt(StreamId stream) const;

    /**
     * Streams with a timeline entry. Synchronization never adds one
     * (only queued work does), so this stays bounded by the streams
     * actually used — the satellite-2 memory-growth guarantee.
     */
    std::size_t trackedStreams() const { return stream_ready_.size(); }

  private:
    /** Charges the fixed driver-call cost and runs any due frees. */
    void
    chargeCall()
    {
        clock_.advance(kDriverCallCost);
        if (!pending_frees_.empty())
            runDueFrees();
    }

    /** Records @p stream as the owner of the allocation under @p ptr. */
    void noteOwner(DevicePtr ptr, StreamId stream);

    /** Executes queued async frees whose owning stream has drained. */
    void runDueFrees();

    /** An async free waiting for its owning stream to drain. */
    struct PendingFree
    {
        DevicePtr ptr;
        Nanos due; //!< owning stream's streamReadyAt at queue time
    };

    Device &device_;
    Clock &clock_;
    std::unordered_map<StreamId, Nanos> stream_ready_;
    /** Last stream that touched each allocation (keyed by base). */
    std::unordered_map<DevicePtr, StreamId> owner_;
    std::vector<PendingFree> pending_frees_;
};

} // namespace lake::gpu

#endif // LAKE_GPU_CONTEXT_H
