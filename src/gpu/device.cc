#include "gpu/device.h"

#include <algorithm>

#include "base/logging.h"

namespace lake::gpu {

DeviceSpec
DeviceSpec::a100()
{
    DeviceSpec s;
    s.name = "Simulated NVIDIA A100 (PCIe 4.0)";
    s.mem_capacity = 4ull << 30; // modelled slice of the 40 GiB part
    s.pcie_gbps = 24.0;
    s.transfer_overhead = 6_us;
    s.launch_overhead = 10_us;
    s.effective_gflops = 1000.0;
    s.mem_gbps = 1555.0;
    // Effective single-stream AES-GCM rate of the crypto kernel: the
    // serial GHASH chain and per-extent launch structure keep this far
    // below raw AES throughput, and it is what caps eCryptfs at the
    // ~840 MB/s plateau of Fig. 14.
    s.aes_gbps = 0.95;
    return s;
}

DeviceSpec
DeviceSpec::modest()
{
    DeviceSpec s;
    s.name = "Simulated desktop GPU (PCIe 3.0)";
    s.mem_capacity = 1ull << 30;
    s.pcie_gbps = 10.0;
    s.transfer_overhead = 12_us;
    s.launch_overhead = 18_us;
    s.effective_gflops = 250.0;
    s.mem_gbps = 320.0;
    s.aes_gbps = 0.4;
    return s;
}

CpuSpec
CpuSpec::xeonGold6226R()
{
    CpuSpec s;
    s.name = "Simulated Xeon Gold 6226R core (kernel-space float)";
    s.effective_gflops = 1.16;
    s.mem_gbps = 12.0;
    s.aes_sw_gbps = 0.145;
    s.aes_ni_gbps = 0.70;
    return s;
}

const char *
cuResultName(CuResult r)
{
    switch (r) {
      case CuResult::Success:        return "CUDA_SUCCESS";
      case CuResult::InvalidValue:   return "CUDA_ERROR_INVALID_VALUE";
      case CuResult::OutOfMemory:    return "CUDA_ERROR_OUT_OF_MEMORY";
      case CuResult::NotFound:       return "CUDA_ERROR_NOT_FOUND";
      case CuResult::InvalidContext: return "CUDA_ERROR_INVALID_CONTEXT";
      case CuResult::LaunchFailed:   return "CUDA_ERROR_LAUNCH_FAILED";
      case CuResult::Unavailable:    return "CUDA_ERROR_UNAVAILABLE";
    }
    return "CUDA_ERROR_UNKNOWN";
}

Device::Device(DeviceSpec spec)
    : Device(std::move(spec), 0, kVaBase, ~DevicePtr{0})
{
}

Device::Device(DeviceSpec spec, std::uint32_t id, DevicePtr va_base,
               DevicePtr va_limit)
    : spec_(std::move(spec)), id_(id), va_base_(va_base),
      va_limit_(va_limit), next_ptr_(va_base)
{
    LAKE_ASSERT(va_base >= kVaBase && va_limit > va_base,
                "device %u VA window [%llx, %llx) is malformed", id,
                static_cast<unsigned long long>(va_base),
                static_cast<unsigned long long>(va_limit));
}

CuResult
Device::memAlloc(DevicePtr *out, std::size_t bytes)
{
    if (out == nullptr || bytes == 0)
        return CuResult::InvalidValue;
    if (mem_used_ + bytes > spec_.mem_capacity)
        return CuResult::OutOfMemory;
    DevicePtr ptr = next_ptr_;
    // Keep allocations 256-byte aligned and non-adjacent so interior
    // pointer arithmetic bugs fault instead of silently aliasing.
    DevicePtr next = next_ptr_ + (bytes + 511) / 256 * 256;
    // Running off the end of this device's VA window would let the
    // bump allocator mint pointers that alias the next fleet device.
    if (next > va_limit_)
        return CuResult::OutOfMemory;
    next_ptr_ = next;
    allocs_.emplace(ptr, std::vector<std::uint8_t>(bytes));
    mem_used_ += bytes;
    *out = ptr;
    return CuResult::Success;
}

CuResult
Device::memFree(DevicePtr ptr)
{
    auto it = allocs_.find(ptr);
    if (it == allocs_.end())
        return CuResult::InvalidValue;
    mem_used_ -= it->second.size();
    allocs_.erase(it);
    return CuResult::Success;
}

void *
Device::resolve(DevicePtr ptr, std::size_t bytes)
{
    if (!ownsVa(ptr))
        return nullptr;
    // Find the allocation with the greatest base <= ptr.
    auto it = allocs_.upper_bound(ptr);
    if (it == allocs_.begin())
        return nullptr;
    --it;
    std::uint64_t off = ptr - it->first;
    if (off + bytes > it->second.size())
        return nullptr;
    return it->second.data() + off;
}

const void *
Device::resolve(DevicePtr ptr, std::size_t bytes) const
{
    return const_cast<Device *>(this)->resolve(ptr, bytes);
}

DevicePtr
Device::baseOf(DevicePtr ptr) const
{
    if (!ownsVa(ptr))
        return 0;
    auto it = allocs_.upper_bound(ptr);
    if (it == allocs_.begin())
        return 0;
    --it;
    return ptr - it->first < it->second.size() ? it->first : 0;
}

Nanos
Device::transferTime(std::size_t bytes) const
{
    double ns = static_cast<double>(bytes) / spec_.pcie_gbps; // GB/s==B/ns
    return spec_.transfer_overhead + static_cast<Nanos>(ns);
}

Nanos
Device::computeTime(double flops, std::size_t bytes_touched) const
{
    double compute_ns = flops / spec_.effective_gflops; // GFLOP/s==FLOP/ns
    double memory_ns = static_cast<double>(bytes_touched) / spec_.mem_gbps;
    return static_cast<Nanos>(std::max(compute_ns, memory_ns));
}

EngineSpan
Device::reserveCompute(Nanos at, Nanos duration)
{
    Nanos start = std::max(at, compute_busy_until_);
    Nanos end = start + duration;
    compute_busy_until_ = end;
    compute_busy_.addBusy(start, end);
    return {start, end};
}

EngineSpan
Device::reserveCopy(Nanos at, Nanos duration)
{
    Nanos start = std::max(at, copy_busy_until_);
    Nanos end = start + duration;
    copy_busy_until_ = end;
    copy_busy_.addBusy(start, end);
    return {start, end};
}

Nanos
Device::computeReadyAt(Nanos now) const
{
    return std::max(now, compute_busy_until_);
}

double
Device::utilization(Nanos now, Nanos window) const
{
    return compute_busy_.utilization(now, window);
}

} // namespace lake::gpu
