#ifndef LAKE_GPU_KERNELS_H
#define LAKE_GPU_KERNELS_H

/**
 * @file
 * Kernel registry for the simulated GPU.
 *
 * The real system loads PTX through cuModuleLoad / cuModuleGetFunction;
 * here "modules" are host functors registered under the kernel's name.
 * Each kernel carries two callables: a body that performs the actual
 * computation on device memory (so results are bit-real and testable)
 * and a cost model that maps a launch configuration to virtual time.
 *
 * Subsystem libraries (ml, crypto) register their kernels at static
 * initialization, exactly as their .cubin would ship alongside lakeD.
 */

#include <cstdint>
#include <cstring>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "base/time.h"
#include "gpu/device.h"

namespace lake::gpu {

/** Arguments and geometry of one kernel launch. */
struct LaunchConfig
{
    std::string kernel;
    std::uint32_t grid_x = 1;
    std::uint32_t block_x = 1;
    /** Raw 64-bit argument slots: device pointers or bit-cast scalars. */
    std::vector<std::uint64_t> args;

    /** Appends a device pointer argument. */
    LaunchConfig &
    arg(DevicePtr p)
    {
        args.push_back(p);
        return *this;
    }

    /** Appends an integral scalar argument. */
    LaunchConfig &
    arg(std::uint64_t v, std::nullptr_t)
    {
        args.push_back(v);
        return *this;
    }

    /** Appends a bit-cast float scalar argument. */
    LaunchConfig &
    argF(float f)
    {
        std::uint64_t v = 0;
        std::memcpy(&v, &f, sizeof(f));
        args.push_back(v);
        return *this;
    }

    /** Reads argument @p i as a float. */
    float
    floatArg(std::size_t i) const
    {
        float f = 0.0f;
        std::memcpy(&f, &args.at(i), sizeof(f));
        return f;
    }

    /** Reads argument @p i as a 64-bit integer / device pointer. */
    std::uint64_t u64Arg(std::size_t i) const { return args.at(i); }

    /** Total threads requested. */
    std::uint64_t
    threads() const
    {
        return static_cast<std::uint64_t>(grid_x) * block_x;
    }
};

/**
 * Name -> {body, cost} table shared by every simulated device.
 */
class KernelRegistry
{
  public:
    /** Executes the computation against device memory. */
    using Body = std::function<CuResult(Device &, const LaunchConfig &)>;
    /** Maps a launch to modeled device time (excluding launch overhead). */
    using Cost = std::function<Nanos(const Device &, const LaunchConfig &)>;

    /** The process-wide registry. */
    static KernelRegistry &global();

    /** One registered kernel: its computation and its cost model. */
    struct Entry
    {
        Body body;
        Cost cost;
    };

    /**
     * One-lookup handle for the launch fast path: has() + run() +
     * cost() each hash the kernel name again, which showed up as the
     * dominant per-launch cost in the remoting pipeline bench.
     * @return the entry, or nullptr for unknown kernels. Invalidated
     *         by the next add().
     */
    const Entry *find(const std::string &name) const;

    /**
     * Registers a kernel; re-registering a name replaces the previous
     * entry (module reload semantics).
     */
    void add(const std::string &name, Body body, Cost cost);

    /** True when @p name is registered. */
    bool has(const std::string &name) const;

    /** Runs the kernel body. @return NotFound for unknown kernels. */
    CuResult run(Device &dev, const LaunchConfig &cfg) const;

    /** Modeled duration; 0 for unknown kernels. */
    Nanos cost(const Device &dev, const LaunchConfig &cfg) const;

    /** Registered kernel names (sorted), for diagnostics. */
    std::vector<std::string> names() const;

  private:
    std::unordered_map<std::string, Entry> table_;
};

/**
 * Registers the built-in demo kernels:
 *  - "vec_add":  c[i] = a[i] + b[i]                (args: a, b, c, n)
 *  - "saxpy":    y[i] = alpha*x[i] + y[i]          (args: alpha, x, y, n)
 *  - "page_hash": 64-bit FNV-1a hash per 4 KiB page (args: in, out, npages)
 *
 * "page_hash" is the compute-bound user-space workload of the Fig. 1 /
 * Fig. 13 contention experiments.
 * Idempotent; called by GpuContext construction.
 */
void registerBuiltinKernels();

} // namespace lake::gpu

#endif // LAKE_GPU_KERNELS_H
