#include "gpu/kernels.h"

#include <algorithm>
#include <limits>

#include "base/logging.h"
#include "base/thread_pool.h"

namespace lake::gpu {

KernelRegistry &
KernelRegistry::global()
{
    static KernelRegistry registry;
    return registry;
}

void
KernelRegistry::add(const std::string &name, Body body, Cost cost)
{
    LAKE_ASSERT(body && cost, "kernel '%s' missing body or cost",
                name.c_str());
    table_[name] = Entry{std::move(body), std::move(cost)};
}

bool
KernelRegistry::has(const std::string &name) const
{
    return table_.count(name) != 0;
}

const KernelRegistry::Entry *
KernelRegistry::find(const std::string &name) const
{
    auto it = table_.find(name);
    return it == table_.end() ? nullptr : &it->second;
}

CuResult
KernelRegistry::run(Device &dev, const LaunchConfig &cfg) const
{
    auto it = table_.find(cfg.kernel);
    if (it == table_.end())
        return CuResult::NotFound;
    return it->second.body(dev, cfg);
}

Nanos
KernelRegistry::cost(const Device &dev, const LaunchConfig &cfg) const
{
    auto it = table_.find(cfg.kernel);
    if (it == table_.end())
        return 0;
    return it->second.cost(dev, cfg);
}

std::vector<std::string>
KernelRegistry::names() const
{
    std::vector<std::string> out;
    out.reserve(table_.size());
    for (const auto &[name, entry] : table_)
        out.push_back(name);
    std::sort(out.begin(), out.end());
    return out;
}

namespace {

/**
 * Rejects element counts whose byte size would overflow 64 bits: the
 * wrapped product can slip past Device::resolve's range check and send
 * a body walking far out of bounds. Reachable from the wire (a garbled
 * launch arg), so this is a malformed-command defense, not pedantry.
 */
bool
sizeOverflows(std::uint64_t count, std::uint64_t elem_size)
{
    return count > std::numeric_limits<std::uint64_t>::max() / elem_size;
}

CuResult
vecAddBody(Device &dev, const LaunchConfig &cfg)
{
    if (cfg.args.size() != 4)
        return CuResult::InvalidValue;
    std::uint64_t n = cfg.u64Arg(3);
    if (sizeOverflows(n, sizeof(float)))
        return CuResult::InvalidValue;
    auto *a = static_cast<const float *>(
        dev.resolve(cfg.u64Arg(0), n * sizeof(float)));
    auto *b = static_cast<const float *>(
        dev.resolve(cfg.u64Arg(1), n * sizeof(float)));
    auto *c = static_cast<float *>(
        dev.resolve(cfg.u64Arg(2), n * sizeof(float)));
    if (!a || !b || !c)
        return CuResult::LaunchFailed;
    // Host execution of the functor rides the pool (element-disjoint
    // chunks, so bit-identical at any thread count); the modeled
    // device time below is untouched.
    base::ThreadPool::global().parallelFor(
        0, n, 65536, [&](std::size_t lo, std::size_t hi) {
            for (std::size_t i = lo; i < hi; ++i)
                c[i] = a[i] + b[i];
        });
    return CuResult::Success;
}

CuResult
saxpyBody(Device &dev, const LaunchConfig &cfg)
{
    if (cfg.args.size() != 4)
        return CuResult::InvalidValue;
    float alpha = cfg.floatArg(0);
    std::uint64_t n = cfg.u64Arg(3);
    if (sizeOverflows(n, sizeof(float)))
        return CuResult::InvalidValue;
    auto *x = static_cast<const float *>(
        dev.resolve(cfg.u64Arg(1), n * sizeof(float)));
    auto *y = static_cast<float *>(
        dev.resolve(cfg.u64Arg(2), n * sizeof(float)));
    if (!x || !y)
        return CuResult::LaunchFailed;
    base::ThreadPool::global().parallelFor(
        0, n, 65536, [&](std::size_t lo, std::size_t hi) {
            for (std::size_t i = lo; i < hi; ++i)
                y[i] = alpha * x[i] + y[i];
        });
    return CuResult::Success;
}

constexpr std::size_t kPageSize = 4096;

CuResult
pageHashBody(Device &dev, const LaunchConfig &cfg)
{
    if (cfg.args.size() != 3)
        return CuResult::InvalidValue;
    std::uint64_t npages = cfg.u64Arg(2);
    if (sizeOverflows(npages, kPageSize))
        return CuResult::InvalidValue;
    auto *in = static_cast<const std::uint8_t *>(
        dev.resolve(cfg.u64Arg(0), npages * kPageSize));
    auto *out = static_cast<std::uint64_t *>(
        dev.resolve(cfg.u64Arg(1), npages * sizeof(std::uint64_t)));
    if (!in || !out)
        return CuResult::LaunchFailed;
    // Pages hash independently, exactly like the real kernel's
    // one-thread-per-page mapping.
    base::ThreadPool::global().parallelFor(
        0, npages, 16, [&](std::size_t lo, std::size_t hi) {
            for (std::size_t p = lo; p < hi; ++p) {
                std::uint64_t h = 0xcbf29ce484222325ull; // FNV-1a
                const std::uint8_t *page = in + p * kPageSize;
                for (std::size_t i = 0; i < kPageSize; ++i) {
                    h ^= page[i];
                    h *= 0x100000001b3ull;
                }
                out[p] = h;
            }
        });
    return CuResult::Success;
}

} // namespace

void
registerBuiltinKernels()
{
    static bool done = false;
    if (done)
        return;
    done = true;

    KernelRegistry &r = KernelRegistry::global();

    r.add("vec_add", vecAddBody,
          [](const Device &dev, const LaunchConfig &cfg) {
              std::uint64_t n = cfg.u64Arg(3);
              return dev.computeTime(static_cast<double>(n),
                                     n * 3 * sizeof(float));
          });

    r.add("saxpy", saxpyBody,
          [](const Device &dev, const LaunchConfig &cfg) {
              std::uint64_t n = cfg.u64Arg(3);
              return dev.computeTime(2.0 * static_cast<double>(n),
                                     n * 3 * sizeof(float));
          });

    r.add("page_hash", pageHashBody,
          [](const Device &dev, const LaunchConfig &cfg) {
              std::uint64_t npages = cfg.u64Arg(2);
              // Byte-serial hashing parallelizes across pages but not
              // within one: each thread walks its page dependently, so
              // the effective cost is ~10 ops/byte, calibrated to the
              // ~2e7 pages/s peak the Fig. 1 app sustains on the A100.
              double flops = 10.0 * static_cast<double>(npages) *
                             kPageSize;
              return dev.computeTime(flops, npages * kPageSize);
          });
}

} // namespace lake::gpu
