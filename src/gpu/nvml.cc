#include "gpu/nvml.h"

namespace lake::gpu {

NvmlUtilization
Nvml::utilization(Nanos now) const
{
    NvmlUtilization out;
    out.gpu = device_.computeBusy().utilization(now, kSampleWindow);
    out.memory = device_.copyBusy().utilization(now, kSampleWindow);
    return out;
}

} // namespace lake::gpu
