#ifndef LAKE_GPU_FLEET_H
#define LAKE_GPU_FLEET_H

/**
 * @file
 * Multi-device backend: a fleet of simulated accelerators.
 *
 * A DeviceFleet owns N Device instances carved out of disjoint VA
 * windows (Device::kVaWindow apart), each optionally scaled by a
 * MIG-style weight fraction — a 0.5 weight halves memory capacity and
 * every throughput number while fixed overheads stay put, which is how
 * real MIG slices behave. The fleet is pure state: shard daemons and
 * the placement policy (src/remote/fleet.h, src/policy) decide who
 * talks to which device.
 *
 * Everything is default-off. FleetConfig.enabled == false constructs
 * nothing anywhere and no virtual-time figure in the repository
 * changes (DESIGN.md §13).
 */

#include <cstddef>
#include <memory>
#include <vector>

#include "gpu/device.h"
#include "gpu/spec.h"

namespace lake::gpu {

/** Boot-time knobs of the device fleet (LakeConfig.fleet). */
struct FleetConfig
{
    /**
     * Master switch. While false, core::Lake builds the classic
     * single-device stack and the fleet types are never constructed.
     */
    bool enabled = false;

    /** Simulated devices in the fleet. */
    std::size_t devices = 1;

    /**
     * lakeD worker shards. Shard k owns devices {i : i % shards == k};
     * must be in [1, devices].
     */
    std::size_t shards = 1;

    /** Performance envelope each device starts from. */
    DeviceSpec spec = DeviceSpec::a100();

    /**
     * MIG-style partition weights, one per device; empty means every
     * device gets the full spec. Weight w scales capacity and all
     * throughput rates by w (fixed overheads are unchanged). Values
     * are clamped to (0, 1].
     */
    std::vector<double> weights;

    /**
     * Applies LAKE_FLEET / LAKE_DEVICES / LAKE_SHARDS environment
     * overrides. Explicit opt-in, same contract as ServeConfig: a
     * default-constructed Lake never reads the environment.
     */
    void applyEnv();
};

/**
 * Scales @p spec by MIG weight @p w: capacity and sustained rates
 * multiply by w, fixed per-op overheads do not.
 */
DeviceSpec scaleSpec(DeviceSpec spec, double w);

/**
 * N devices with disjoint VA windows: device i allocates from
 * [kVaBase + i*kVaWindow, kVaBase + (i+1)*kVaWindow).
 */
class DeviceFleet
{
  public:
    explicit DeviceFleet(const FleetConfig &cfg);

    DeviceFleet(const DeviceFleet &) = delete;
    DeviceFleet &operator=(const DeviceFleet &) = delete;

    std::size_t size() const { return devices_.size(); }

    Device &at(std::size_t i) { return *devices_.at(i); }
    const Device &at(std::size_t i) const { return *devices_.at(i); }

    /** Fleet index owning @p ptr; size() when no device's window does. */
    std::size_t ownerOf(DevicePtr ptr) const;

  private:
    std::vector<std::unique_ptr<Device>> devices_;
};

} // namespace lake::gpu

#endif // LAKE_GPU_FLEET_H
