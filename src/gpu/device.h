#ifndef LAKE_GPU_DEVICE_H
#define LAKE_GPU_DEVICE_H

/**
 * @file
 * The simulated accelerator.
 *
 * A Device owns device memory (real bytes, so kernels compute real
 * results) and two engine timelines — compute and copy — that serialize
 * work FIFO the way a GPU context does. The device never touches a
 * clock itself: callers pass "submit at time t" and receive the span
 * the work occupies, which makes the same device usable from both the
 * sequential remoting path and the discrete-event contention
 * experiments.
 */

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "base/stats.h"
#include "base/time.h"
#include "gpu/spec.h"

namespace lake::gpu {

/** Device memory handle, mirroring the CUDA driver API's CUdeviceptr. */
using DevicePtr = std::uint64_t;

/** Driver-API result codes (the subset LAKE remotes). */
enum class CuResult
{
    Success = 0,
    InvalidValue,
    OutOfMemory,
    NotFound,
    InvalidContext,
    LaunchFailed,
    /**
     * The remoting transport failed (dropped, corrupted, or timed-out
     * command/response). Mirrors CUDA_ERROR_SYSTEM_NOT_READY-class
     * errors: the device may be fine, the path to it is not.
     */
    Unavailable,
};

/** Printable result name. */
const char *cuResultName(CuResult r);

/** A reserved span on one of the device engines. */
struct EngineSpan
{
    Nanos start;
    Nanos end;
};

/**
 * Simulated GPU: real memory, modeled time.
 */
class Device
{
  public:
    /**
     * Bottom of the fake device VA space. Every DevicePtr handed out
     * by memAlloc is >= this, so values below it can never name an
     * allocation — the property launchKernel uses to tell scalar
     * kernel arguments (lengths, counts, bit-cast floats) apart from
     * device pointers without a tagged argument list.
     */
    static constexpr DevicePtr kVaBase = 0x0100'0000'0000ull;

    /**
     * Width of one fleet device's VA window. Fleet device i allocates
     * out of [kVaBase + i*kVaWindow, kVaBase + (i+1)*kVaWindow), so a
     * DevicePtr names exactly one device and a foreign pointer is
     * detectable instead of silently aliasing (DESIGN.md §13).
     */
    static constexpr DevicePtr kVaWindow = 1ull << 40;

    /** @param spec performance envelope */
    explicit Device(DeviceSpec spec);

    /**
     * Fleet constructor: device @p id allocating out of the disjoint
     * half-open window [@p va_base, @p va_limit). The single-device
     * constructor above delegates here with an unbounded window so
     * existing callers are bit-identical.
     */
    Device(DeviceSpec spec, std::uint32_t id, DevicePtr va_base,
           DevicePtr va_limit);

    Device(const Device &) = delete;
    Device &operator=(const Device &) = delete;

    /** Performance envelope. */
    const DeviceSpec &spec() const { return spec_; }

    /** Fleet index (0 for a standalone device). */
    std::uint32_t id() const { return id_; }

    /**
     * True when @p ptr falls inside this device's VA window. Scalars
     * below kVaBase are never owned; for a standalone device every
     * value >= kVaBase is (the window is unbounded above).
     */
    bool ownsVa(DevicePtr ptr) const
    {
        return ptr >= va_base_ && ptr < va_limit_;
    }

    /// @name Device memory
    /// @{

    /** Allocates @p bytes of device memory. */
    CuResult memAlloc(DevicePtr *out, std::size_t bytes);

    /** Frees an allocation made by memAlloc. */
    CuResult memFree(DevicePtr ptr);

    /**
     * Resolves a device pointer (possibly interior) to host-visible
     * storage with at least @p bytes available.
     * @return nullptr when the range is not covered by an allocation.
     */
    void *resolve(DevicePtr ptr, std::size_t bytes);
    /** Const overload of resolve. */
    const void *resolve(DevicePtr ptr, std::size_t bytes) const;

    /**
     * Base pointer of the live allocation containing @p ptr (possibly
     * interior); 0 when no allocation covers it. Lets the context
     * attribute per-stream work to whole allocations.
     */
    DevicePtr baseOf(DevicePtr ptr) const;

    /** Bytes currently allocated. */
    std::size_t memUsed() const { return mem_used_; }

    /// @}
    /// @name Timing models
    /// @{

    /** Modeled duration of one host<->device DMA of @p bytes. */
    Nanos transferTime(std::size_t bytes) const;

    /**
     * Modeled duration of a kernel doing @p flops floating-point work
     * over @p bytes_touched of device memory (roofline: whichever of
     * compute or memory is the bottleneck), excluding launch overhead.
     */
    Nanos computeTime(double flops, std::size_t bytes_touched) const;

    /// @}
    /// @name Engine timelines
    /// @{

    /**
     * Reserves the compute engine for @p duration, starting no earlier
     * than @p at; work queues FIFO behind in-flight kernels.
     */
    EngineSpan reserveCompute(Nanos at, Nanos duration);

    /** Same as reserveCompute but for the DMA engine. */
    EngineSpan reserveCopy(Nanos at, Nanos duration);

    /** Time the compute engine next becomes free (>= @p now). */
    Nanos computeReadyAt(Nanos now) const;

    /**
     * Percent of [now-window, now] the compute engine was busy —
     * the signal the NVML shim reports to contention policies.
     */
    double utilization(Nanos now, Nanos window) const;

    /** Busy-span history of the compute engine. */
    const BusyTracker &computeBusy() const { return compute_busy_; }

    /** Busy-span history of the DMA engine. */
    const BusyTracker &copyBusy() const { return copy_busy_; }

    /// @}

    /** Kernel launches since creation. */
    std::uint64_t launches() const { return launches_; }
    /** Marks one launch (called by the context). */
    void countLaunch() { ++launches_; }

  private:
    DeviceSpec spec_;
    std::uint32_t id_ = 0;
    DevicePtr va_base_ = kVaBase;
    DevicePtr va_limit_ = ~DevicePtr{0};

    /** Live allocations keyed by base pointer. */
    std::map<DevicePtr, std::vector<std::uint8_t>> allocs_;
    DevicePtr next_ptr_ = kVaBase;
    std::size_t mem_used_ = 0;

    Nanos compute_busy_until_ = 0;
    Nanos copy_busy_until_ = 0;
    BusyTracker compute_busy_;
    BusyTracker copy_busy_;
    std::uint64_t launches_ = 0;
};

} // namespace lake::gpu

#endif // LAKE_GPU_DEVICE_H
