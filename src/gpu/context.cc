#include "gpu/context.h"

#include <algorithm>
#include <cstring>

#include "base/logging.h"
#include "obs/trace.h"

namespace lake::gpu {
namespace {

/**
 * Emits the engine reservation as a device-lane trace span. The span
 * carries the engine's own timeline ([start, end) in virtual time),
 * which may sit ahead of the caller's clock for async work.
 */
void
traceEngineSpan(const Device &dev, const char *name, const EngineSpan &span,
                std::uint64_t stream, std::uint64_t bytes_or_grid)
{
    auto &tr = obs::Tracer::global();
    if (tr.enabled())
        // The span correlation id carries the fleet device index, so a
        // multi-device export separates per-device engine lanes.
        tr.span(obs::Side::Gpu, "gpu", name, span.start,
                span.end - span.start, dev.id(), "stream", stream,
                "arg", bytes_or_grid);
}

} // namespace

GpuContext::GpuContext(Device &device, Clock &clock)
    : device_(device), clock_(clock)
{
    registerBuiltinKernels();
}

CuResult
GpuContext::memAlloc(DevicePtr *out, std::size_t bytes)
{
    chargeCall();
    return device_.memAlloc(out, bytes);
}

CuResult
GpuContext::memFree(DevicePtr ptr)
{
    chargeCall();
    owner_.erase(ptr);
    return device_.memFree(ptr);
}

void
GpuContext::noteOwner(DevicePtr ptr, StreamId stream)
{
    DevicePtr base = device_.baseOf(ptr);
    if (base != 0)
        owner_[base] = stream;
}

void
GpuContext::runDueFrees()
{
    Nanos now = clock_.now();
    for (std::size_t i = 0; i < pending_frees_.size();) {
        if (pending_frees_[i].due <= now) {
            owner_.erase(pending_frees_[i].ptr);
            device_.memFree(pending_frees_[i].ptr);
            pending_frees_[i] = pending_frees_.back();
            pending_frees_.pop_back();
        } else {
            ++i;
        }
    }
}

CuResult
GpuContext::memFreeAsync(DevicePtr ptr)
{
    chargeCall();
    if (device_.baseOf(ptr) != ptr)
        return CuResult::InvalidValue;
    // A second free of a pointer whose first free is still queued must
    // fail the way the eventual device free would — queueing a
    // duplicate would mask the double free (runDueFrees discards the
    // second InvalidValue).
    for (const PendingFree &f : pending_frees_)
        if (f.ptr == ptr)
            return CuResult::InvalidValue;
    // Order the free after the owning stream's queued work: freeing at
    // dispatch time would let a buffer pool recycle the allocation
    // while a copy is still in flight on its stream.
    auto own = owner_.find(ptr);
    Nanos due = own == owner_.end() ? 0 : streamReadyAt(own->second);
    if (due <= clock_.now()) {
        owner_.erase(ptr);
        return device_.memFree(ptr);
    }
    pending_frees_.push_back({ptr, due});
    return CuResult::Success;
}

CuResult
GpuContext::memcpyHtoD(DevicePtr dst, const void *src, std::size_t bytes)
{
    chargeCall();
    void *d = device_.resolve(dst, bytes);
    if (!d || !src)
        return CuResult::InvalidValue;
    std::memcpy(d, src, bytes);
    // Legacy default-stream semantics: synchronous copies serialize
    // behind work previously queued on stream 0.
    Nanos at = std::max(clock_.now(), streamReadyAt(0));
    EngineSpan span = device_.reserveCopy(at, device_.transferTime(bytes));
    stream_ready_[0] = span.end;
    clock_.advanceTo(span.end);
    traceEngineSpan(device_, "dma.htod", span, 0, bytes);
    return CuResult::Success;
}

CuResult
GpuContext::memcpyDtoH(void *dst, DevicePtr src, std::size_t bytes)
{
    chargeCall();
    // Serialize behind stream-0 work *before* reading device memory, so
    // a preceding kernel's output is observed (the kernel body already
    // ran eagerly, but ordering is modeled for completeness).
    Nanos at = std::max(clock_.now(), streamReadyAt(0));
    const void *d = device_.resolve(src, bytes);
    if (!d || !dst)
        return CuResult::InvalidValue;
    std::memcpy(dst, d, bytes);
    EngineSpan span = device_.reserveCopy(at, device_.transferTime(bytes));
    stream_ready_[0] = span.end;
    clock_.advanceTo(span.end);
    traceEngineSpan(device_, "dma.dtoh", span, 0, bytes);
    return CuResult::Success;
}

CuResult
GpuContext::memcpyHtoDAsync(DevicePtr dst, const void *src,
                            std::size_t bytes, StreamId stream)
{
    chargeCall();
    void *d = device_.resolve(dst, bytes);
    if (!d || !src)
        return CuResult::InvalidValue;
    // Data moves eagerly; only the completion time is deferred. Callers
    // must not mutate the source until synchronize, same contract as
    // cudaMemcpyAsync with pinned memory.
    std::memcpy(d, src, bytes);
    noteOwner(dst, stream);
    Nanos at = std::max(clock_.now(), streamReadyAt(stream));
    EngineSpan span = device_.reserveCopy(at, device_.transferTime(bytes));
    stream_ready_[stream] = span.end;
    traceEngineSpan(device_, "dma.htod_async", span, stream, bytes);
    return CuResult::Success;
}

CuResult
GpuContext::memcpyDtoHAsync(void *dst, DevicePtr src, std::size_t bytes,
                            StreamId stream)
{
    chargeCall();
    const void *d = device_.resolve(src, bytes);
    if (!d || !dst)
        return CuResult::InvalidValue;
    std::memcpy(dst, d, bytes);
    noteOwner(src, stream);
    Nanos at = std::max(clock_.now(), streamReadyAt(stream));
    EngineSpan span = device_.reserveCopy(at, device_.transferTime(bytes));
    stream_ready_[stream] = span.end;
    traceEngineSpan(device_, "dma.dtoh_async", span, stream, bytes);
    return CuResult::Success;
}

CuResult
GpuContext::launchKernel(const LaunchConfig &cfg, StreamId stream)
{
    chargeCall();
    // Single name lookup; body, countLaunch and cost then run in the
    // same order the has()/run()/cost() sequence used, so modeled time
    // is unchanged.
    const KernelRegistry::Entry *entry =
        KernelRegistry::global().find(cfg.kernel);
    if (!entry)
        return CuResult::NotFound;

    // A pointer-ranged argument minted by another fleet device must be
    // rejected before the body touches memory: disjoint VA windows make
    // foreign pointers detectable (they used to alias silently when
    // every Device allocated from the same kVaBase).
    for (std::uint64_t a : cfg.args)
        if (a >= Device::kVaBase && !device_.ownsVa(a))
            return CuResult::InvalidValue;

    CuResult res = entry->body(device_, cfg);
    if (res != CuResult::Success)
        return res;

    device_.countLaunch();
    // Pointer args pin their allocations to this stream so a later
    // memFreeAsync orders behind the launch. The wire format carries
    // untagged 64-bit slots, so scalars are told apart by range: only
    // values inside the device VA space can name an allocation, and a
    // scalar below kVaBase must never reassign an owning stream (it
    // would mis-order a later free).
    for (std::uint64_t a : cfg.args)
        if (a >= Device::kVaBase)
            noteOwner(a, stream);
    Nanos duration =
        device_.spec().launch_overhead + entry->cost(device_, cfg);
    Nanos at = std::max(clock_.now(), streamReadyAt(stream));
    EngineSpan span = device_.reserveCompute(at, duration);
    stream_ready_[stream] = span.end;
    traceEngineSpan(device_, "kernel", span, stream, cfg.grid_x);
    return CuResult::Success;
}

CuResult
GpuContext::streamSynchronize(StreamId stream)
{
    chargeCall();
    // streamReadyAt is a pure lookup (0 for unknown ids): a sync on a
    // never-used stream must not insert into stream_ready_, or random
    // probe ids would grow the map without bound.
    clock_.advanceTo(streamReadyAt(stream));
    if (!pending_frees_.empty())
        runDueFrees();
    return CuResult::Success;
}

CuResult
GpuContext::ctxSynchronize()
{
    chargeCall();
    for (const auto &[id, ready] : stream_ready_)
        clock_.advanceTo(ready);
    if (!pending_frees_.empty())
        runDueFrees();
    return CuResult::Success;
}

Nanos
GpuContext::streamReadyAt(StreamId stream) const
{
    auto it = stream_ready_.find(stream);
    return it == stream_ready_.end() ? 0 : it->second;
}

} // namespace lake::gpu
