#include "storage/e2e.h"

#include <array>
#include <deque>
#include <memory>
#include <unordered_map>

#include "base/logging.h"
#include "ml/backends.h"
#include "policy/mlgate.h"
#include "registry/manager.h"
#include "sim/simulator.h"
#include "storage/linnos.h"

namespace lake::storage {

const char *
e2eModeName(E2eMode m)
{
    switch (m) {
      case E2eMode::Baseline: return "Baseline";
      case E2eMode::CpuNn:    return "NN cpu";
      case E2eMode::LakeNn:   return "NN LAKE";
      case E2eMode::LakeAdaptive: return "NN LAKE+gate";
    }
    return "?";
}

namespace {

constexpr std::size_t kDevices = 3;
constexpr const char *kSys = "bio_latency_prediction";

/** Names of the four explicit latency-history features. */
const std::array<std::string, kLinnosHistory> kLatFeature = {
    "io_lat0", "io_lat1", "io_lat2", "io_lat3"};

/** One read waiting in a device's inference batch. */
struct QueuedRead
{
    Io io;
    Nanos arrival;
    Nanos commit_ts;
};

/** Mutable per-device state of the experiment. */
struct DeviceState
{
    std::unique_ptr<NvmeDevice> dev;
    std::array<std::uint32_t, kLinnosHistory> history{};
    std::vector<QueuedRead> queued;
    bool flush_scheduled = false;
    Nanos next_commit_ts = 1;
    registry::Registry *reg = nullptr;
    /** Cached capture handle + interned columns: the completion and
     *  submission paths fire per I/O, so they must not re-hash feature
     *  names or re-walk the manager's registry map. */
    registry::CaptureHandle cap;
    std::array<std::uint32_t, kLinnosHistory> lat_cols{};
    std::uint32_t pend_col = 0;
};

/** Builds the 31-feature matrix from registry feature vectors. */
ml::Matrix
featurize(const std::vector<registry::FeatureVector> &fvs)
{
    // Interned once, outside the hot loop: per-row get() by name would
    // re-hash every feature string for every scored vector.
    static const std::uint64_t pend_key = registry::featureKey("pend_ios");
    static const std::array<std::uint64_t, kLinnosHistory> lat_keys = [] {
        std::array<std::uint64_t, kLinnosHistory> keys{};
        for (std::size_t h = 0; h < kLinnosHistory; ++h)
            keys[h] = registry::featureKey(kLatFeature[h]);
        return keys;
    }();
    ml::Matrix x(fvs.size(), kLinnosFeatures);
    for (std::size_t r = 0; r < fvs.size(); ++r) {
        std::array<std::uint32_t, kLinnosHistory> hist{};
        for (std::size_t h = 0; h < kLinnosHistory; ++h)
            hist[h] =
                static_cast<std::uint32_t>(fvs[r].get(lat_keys[h]));
        encodeLinnosFeatures(
            static_cast<std::uint32_t>(fvs[r].get(pend_key)), hist,
            x.row(r));
    }
    return x;
}

} // namespace

E2eResult
runE2e(const std::vector<TraceSpec> &per_device, const E2eConfig &config)
{
    LAKE_ASSERT(per_device.size() == kDevices,
                "expected %zu trace specs, got %zu", kDevices,
                per_device.size());
    LAKE_ASSERT(config.mode == E2eMode::Baseline ||
                    config.model != nullptr,
                "prediction modes need a model");

    sim::Simulator simr;
    core::LakeConfig lake_cfg;
    lake_cfg.streaming = config.streaming;
    lake_cfg.soa_plane = config.soa;
    core::Lake lake(lake_cfg);
    E2eResult result;
    PercentileTracker read_lats;
    RunningStat read_stat;

    std::uint64_t rr = 0; // round-robin reroute cursor
    RunningStat batch_sizes;

    // Optional GPU backend (LakeNn only).
    std::unique_ptr<ml::LakeMlp> lake_mlp;
    std::unique_ptr<ml::CpuMlp> cpu_mlp;
    if (config.mode != E2eMode::Baseline) {
        cpu_mlp = std::make_unique<ml::CpuMlp>(*config.model,
                                               lake.kernelCpu());
    }
    bool lake_mode = config.mode == E2eMode::LakeNn ||
                     config.mode == E2eMode::LakeAdaptive;
    if (lake_mode) {
        lake_mlp = std::make_unique<ml::LakeMlp>(
            *config.model, lake.lib(), /*sync_copy=*/false,
            config.batch_max);
        if (lake.streaming() != nullptr)
            lake_mlp->enableStreaming(lake.streaming());
    }
    // Arm faults only after the model upload so boot staging is clean;
    // everything from here on must survive a misbehaving channel.
    if (config.inject_faults)
        lake.channel().installFaults(config.faults);
    policy::MlGate gate(config.gate);
    bool use_gate = config.mode == E2eMode::LakeAdaptive;

    std::array<DeviceState, kDevices> devs;
    for (std::size_t d = 0; d < kDevices; ++d) {
        devs[d].dev = std::make_unique<NvmeDevice>(
            simr, config.device, config.seed * 1000003ull + d,
            detail::format("nvme%zu", d));

        if (lake_mode) {
            registry::Schema schema;
            schema.add("pend_ios");
            for (const std::string &f : kLatFeature)
                schema.add(f);
            Status st = lake.registries().createRegistry(
                devs[d].dev->name(), kSys, schema,
                config.batch_max * 4);
            LAKE_ASSERT(st.isOk(), "registry: %s",
                        st.toString().c_str());
            devs[d].reg =
                lake.registries().find(devs[d].dev->name(), kSys);
            devs[d].cap =
                lake.registries().captureHandle(devs[d].dev->name(),
                                                kSys);
            for (std::size_t h = 0; h < kLinnosHistory; ++h)
                devs[d].lat_cols[h] = devs[d].cap.column(kLatFeature[h]);
            devs[d].pend_col = devs[d].cap.column("pend_ios");
            // Fig. 3 plumbing with the ISSUE-2 guard: once remoting
            // degrades, every decision comes back Engine::Cpu.
            devs[d].reg->registerPolicy(lake.degradationGuard(
                std::make_unique<policy::BatchThresholdPolicy>(
                    config.gpu_batch_threshold)));
            devs[d].reg->registerClassifier(
                registry::Arch::Cpu,
                [&cpu_mlp](const std::vector<registry::FeatureVector>
                               &fvs) {
                    ml::Matrix x = featurize(fvs);
                    std::vector<int> c = cpu_mlp->classify(x);
                    return std::vector<float>(c.begin(), c.end());
                });
            devs[d].reg->registerClassifier(
                registry::Arch::Gpu,
                [&lake_mlp, &cpu_mlp,
                 &lake](const std::vector<registry::FeatureVector>
                            &fvs) {
                    ml::Matrix x = featurize(fvs);
                    // A remoting failure mid-batch must not kill the
                    // I/O path: finish this batch on the CPU and count
                    // the fallback.
                    Result<std::vector<int>> r =
                        lake_mlp->tryClassify(x);
                    std::vector<int> c;
                    if (r.isOk()) {
                        c = r.takeValue();
                    } else {
                        lake.noteFallback();
                        c = cpu_mlp->classify(x);
                    }
                    return std::vector<float>(c.begin(), c.end());
                });
            if (registry::SoaStore *store = devs[d].reg->soa()) {
                // Seal-time encoder: the LinnOS digit encoding runs
                // once per commit, so scoring reads finished float
                // rows straight out of shm.
                const auto lat_cols = devs[d].lat_cols;
                const std::uint32_t pend_col = devs[d].pend_col;
                store->setFloatEncoder(
                    kLinnosFeatures,
                    [lat_cols, pend_col](
                        const registry::SoaStore::RowReader &row,
                        float *out) {
                        std::array<std::uint32_t, kLinnosHistory> hist{};
                        for (std::size_t h = 0; h < kLinnosHistory; ++h)
                            hist[h] = static_cast<std::uint32_t>(
                                row.value(lat_cols[h]));
                        encodeLinnosFeatures(
                            static_cast<std::uint32_t>(
                                row.value(pend_col)),
                            hist, out);
                    });
                // Zero-copy CPU dispatch: the strided windows feed the
                // GEMM substrate in place.
                devs[d].reg->registerViewClassifier(
                    registry::Arch::Cpu,
                    [&cpu_mlp](const registry::FvBatchView &v) {
                        std::vector<int> c =
                            cpu_mlp->classify(v.matrixViews());
                        return std::vector<float>(c.begin(), c.end());
                    });
                // GPU dispatch uploads to the device regardless;
                // gather the strided rows into the staging matrix
                // directly (no FeatureVector materialization).
                devs[d].reg->registerViewClassifier(
                    registry::Arch::Gpu,
                    [&lake_mlp, &cpu_mlp,
                     &lake](const registry::FvBatchView &v) {
                        ml::Matrix x(v.size(), kLinnosFeatures);
                        std::size_t r = 0;
                        for (const ml::MatrixView &mv : v.matrixViews())
                            for (std::size_t i = 0; i < mv.rows();
                                 ++i, ++r)
                                std::copy(mv.row(i),
                                          mv.row(i) + mv.cols(),
                                          x.row(r));
                        Result<std::vector<int>> res =
                            lake_mlp->tryClassify(x);
                        std::vector<int> c;
                        if (res.isOk()) {
                            c = res.takeValue();
                        } else {
                            lake.noteFallback();
                            c = cpu_mlp->classify(x);
                        }
                        return std::vector<float>(c.begin(), c.end());
                    });
            }
            devs[d].reg->beginFvCapture(0);
        }
    }

    // ---- completion bookkeeping -------------------------------------
    auto onReadComplete = [&](std::size_t d, Nanos arrival, Nanos lat) {
        Nanos total = simr.now() - arrival;
        read_lats.add(toUs(total));
        read_stat.add(toUs(total));
        (void)lat;
        DeviceState &ds = devs[d];
        std::uint32_t lat_us = static_cast<std::uint32_t>(
            toUs(simr.now() - arrival));
        for (std::size_t i = kLinnosHistory - 1; i > 0; --i)
            ds.history[i] = ds.history[i - 1];
        ds.history[0] = lat_us;
        if (ds.cap.valid()) {
            for (std::size_t h = 0; h < kLinnosHistory; ++h)
                ds.cap.captureFeatureCol(ds.lat_cols[h], ds.history[h]);
            ds.cap.captureFeatureCol(
                ds.pend_col,
                static_cast<std::uint64_t>(ds.dev->pending()));
        }
    };

    // ---- submission helpers -----------------------------------------
    auto submitRead = [&](std::size_t target, const Io &io,
                          Nanos arrival) {
        ++result.reads;
        devs[target].dev->submit(io, [&, target, arrival](Nanos lat) {
            onReadComplete(target, arrival, lat);
        });
    };

    auto submitWrite = [&](std::size_t d, const Io &io) {
        ++result.writes;
        DeviceState &ds = devs[d];
        ds.dev->submit(io, [&, d](Nanos) {
            DeviceState &s = devs[d];
            if (s.cap.valid()) {
                s.cap.captureFeatureCol(
                    s.pend_col,
                    static_cast<std::uint64_t>(s.dev->pending()));
            }
        });
        if (ds.cap.valid()) {
            ds.cap.captureFeatureCol(
                ds.pend_col,
                static_cast<std::uint64_t>(ds.dev->pending()));
        }
    };

    // ---- LakeNn batch flush ------------------------------------------
    std::function<void(std::size_t)> flush = [&](std::size_t d) {
        DeviceState &ds = devs[d];
        ds.flush_scheduled = false;
        if (ds.queued.empty())
            return;

        std::unordered_map<Nanos, std::size_t> by_ts;
        for (std::size_t i = 0; i < ds.queued.size(); ++i)
            by_ts.emplace(ds.queued[i].commit_ts, i);
        std::vector<std::size_t> order;
        std::vector<registry::FeatureVector> batch;
        registry::FvBatchView view;
        const bool soa = ds.reg->soa() != nullptr;
        if (soa) {
            // Listing 4 on the SoA plane: pin the window and select
            // the queued rows — no copies, the scored floats stay in
            // shm, and a truncate below defers recycling behind the
            // pinned view.
            registry::FvBatchView all = ds.reg->batchView();
            std::vector<std::size_t> rows;
            for (std::size_t i = 0; i < all.size(); ++i) {
                auto it = by_ts.find(all.tsEnd(i));
                if (it != by_ts.end()) {
                    rows.push_back(i);
                    order.push_back(it->second);
                }
            }
            view = all.select(rows);
        } else {
            // Listing 4: pull the ring, score it, act, truncate.
            std::vector<registry::FeatureVector> fvs =
                ds.reg->getFeatures();
            for (auto &fv : fvs) {
                auto it = by_ts.find(fv.ts_end);
                if (it != by_ts.end()) {
                    batch.push_back(std::move(fv));
                    order.push_back(it->second);
                }
            }
        }

        // The §7.1 modulation gate: when recent batches produced no
        // slow predictions, skip inference entirely — the I/Os go
        // straight to their home device with zero added latency.
        if (use_gate && !gate.shouldInfer(simr.now())) {
            ++result.gated_batches;
            std::vector<QueuedRead> queued = std::move(ds.queued);
            ds.queued.clear();
            ds.reg->truncateFeatures();
            for (const QueuedRead &qr : queued)
                submitRead(d, qr.io, qr.arrival);
            return;
        }

        // Inference runs in the issuing context: its cost delays only
        // this batch's reads (LinnOS performs inference inline in the
        // submitter, not on a shared thread).
        Clock &clk = lake.clock();
        clk.advanceTo(simr.now());
        Nanos t0 = clk.now();
        std::vector<float> scores =
            soa ? ds.reg->scoreFeatures(view, clk.now())
                : ds.reg->scoreFeatures(batch, clk.now());
        Nanos infer = clk.now() - t0;
        if (use_gate) {
            std::size_t positives = 0;
            for (float v : scores)
                positives += v >= 0.5f ? 1 : 0;
            gate.observe(positives, scores.size(), simr.now());
        }

        ++result.inference_batches;
        batch_sizes.add(static_cast<double>(order.size()));
        if (ds.reg->lastEngine() == policy::Engine::Gpu)
            ++result.gpu_batches;

        std::vector<QueuedRead> queued = std::move(ds.queued);
        ds.queued.clear();
        ds.reg->truncateFeatures();

        // GPU inference finishes the whole batch at once; the CPU
        // fallback classifies sequentially, so read i resumes after
        // (i+1)/n of the batch's inference time.
        bool on_gpu = ds.reg->lastEngine() == policy::Engine::Gpu;
        std::size_t n = order.size();
        for (std::size_t i = 0; i < n; ++i) {
            Nanos done = on_gpu
                             ? infer
                             : infer * static_cast<Nanos>(i + 1) /
                                   static_cast<Nanos>(n);
            const QueuedRead &qr = queued[order[i]];
            bool slow = scores[i] >= 0.5f;
            std::size_t target = d;
            if (slow) {
                ++result.rerouted;
                target = (d + 1 + (rr++ % (kDevices - 1))) % kDevices;
            }
            Io io = qr.io;
            Nanos arrival = qr.arrival;
            simr.scheduleIn(done, [&, target, io, arrival] {
                submitRead(target, io, arrival);
            });
        }
    };

    // ---- arrivals -----------------------------------------------------
    Rng trace_rng(config.seed);
    for (std::size_t d = 0; d < kDevices; ++d) {
        std::vector<TraceEvent> trace =
            generateTrace(per_device[d], config.duration, trace_rng);
        for (const TraceEvent &ev : trace) {
            simr.schedule(ev.at, [&, d, ev] {
                if (!ev.io.is_read) {
                    submitWrite(d, ev.io);
                    return;
                }
                DeviceState &ds = devs[d];

                switch (config.mode) {
                  case E2eMode::Baseline:
                    submitRead(d, ev.io, simr.now());
                    break;

                  case E2eMode::CpuNn: {
                    // LinnOS: synchronous per-I/O inference on the
                    // issue path, in the submitting context.
                    Clock &clk = lake.clock();
                    clk.advanceTo(simr.now());
                    Nanos t0 = clk.now();
                    ml::Matrix x(1, kLinnosFeatures);
                    encodeLinnosFeatures(
                        static_cast<std::uint32_t>(ds.dev->pending()),
                        ds.history, x.row(0));
                    std::vector<int> cls = cpu_mlp->classify(x);
                    Nanos infer = clk.now() - t0;

                    bool slow = cls[0] == 1;
                    std::size_t target = d;
                    if (slow) {
                        ++result.rerouted;
                        target = (d + 1 + (rr++ % (kDevices - 1))) %
                                 kDevices;
                    }
                    Nanos arrival = simr.now();
                    Io io = ev.io;
                    simr.scheduleIn(infer, [&, target, io, arrival] {
                        submitRead(target, io, arrival);
                    });
                    break;
                  }

                  case E2eMode::LakeNn:
                  case E2eMode::LakeAdaptive: {
                    // While the modulation gate is closed, reads skip
                    // the whole inference path — no batch-formation
                    // wait, no feature vector — unless a probe is due.
                    if (use_gate && gate.gated() &&
                        !gate.probeDue(simr.now())) {
                        ++result.gated_batches;
                        submitRead(d, ev.io, simr.now());
                        break;
                    }
                    // Listing 4: the arriving I/O becomes a feature
                    // vector; flush on batch size or quantum.
                    ds.cap.captureFeatureCol(
                        ds.pend_col,
                        static_cast<std::uint64_t>(ds.dev->pending()));
                    Nanos ts = std::max(simr.now(), ds.next_commit_ts);
                    ds.next_commit_ts = ts + 1;
                    ds.reg->commitFvCapture(ts);
                    ds.queued.push_back(
                        QueuedRead{ev.io, simr.now(), ts});

                    if (ds.queued.size() >= config.batch_max) {
                        flush(d);
                    } else if (!ds.flush_scheduled) {
                        ds.flush_scheduled = true;
                        simr.scheduleIn(config.quantum,
                                        [&, d] { flush(d); });
                    }
                    break;
                  }
                }
            });
        }
    }

    simr.run();
    // The quantum timers always fire inside the run, so every queued
    // batch has been flushed by the time the event queue drains.

    core::RemoteStats rs = lake.remoteStats();
    result.remote_faults = rs.faults_seen;
    result.remote_retries = rs.retries;
    result.cpu_fallbacks = rs.fallbacks;
    result.degraded = rs.degraded;

    result.gate_closures = gate.closures();
    result.avg_read_lat_us = read_stat.mean();
    result.p95_read_lat_us = read_lats.percentile(95.0);
    result.p99_read_lat_us = read_lats.percentile(99.0);
    result.avg_batch = batch_sizes.mean();
    return result;
}

} // namespace lake::storage
