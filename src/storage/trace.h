#ifndef LAKE_STORAGE_TRACE_H
#define LAKE_STORAGE_TRACE_H

/**
 * @file
 * Block-trace generation (Table 4).
 *
 * "The traces used by LinnOS are not available publicly, so we generate
 * traces with similar characteristics based on parameters presented in
 * the paper, using an exponential distribution for inter-arrival time,
 * a lognormal distribution for I/O size and a uniform distribution for
 * I/O offset" (§7.1) — this module is that generator, including the
 * re-rating knob (scaling IOPS to stress newer devices).
 */

#include <cstdint>
#include <string>
#include <vector>

#include "base/rng.h"
#include "base/time.h"
#include "storage/nvme.h"

namespace lake::storage {

/** Statistical shape of one workload (Table 4 row). */
struct TraceSpec
{
    std::string name;
    double avg_iops = 1000.0;
    double read_ratio = 0.75;
    /** Lognormal read-size moments, KB. */
    double read_kb_mean = 30.0;
    double read_kb_std = 30.0;
    /** Lognormal write-size moments, KB. */
    double write_kb_mean = 19.0;
    double write_kb_std = 19.0;
    /** Inter-arrival cap (Table 4's max arrival column). */
    Nanos max_arrival = 2_ms;
    /** Addressable span for the uniform offset draw. */
    std::uint64_t span_bytes = 256ull << 30;

    /** Azure trace, already rerated to 2x per §7.1: 26k IOPS, 30/19 KB. */
    static TraceSpec azure();
    /** Bing-I, rerated 2x: 4.8k IOPS, 73/59 KB. */
    static TraceSpec bingI();
    /** Cosmos (not rerated): 2.5k IOPS, 657/609 KB. */
    static TraceSpec cosmos();

    /** Returns a copy with IOPS scaled by @p factor (re-rating). */
    TraceSpec rerated(double factor) const;
};

/** One trace record. */
struct TraceEvent
{
    Nanos at = 0; //!< arrival time
    Io io;
};

/** Aggregate statistics of a generated trace (Table 4 verification). */
struct TraceStats
{
    double iops = 0.0;
    double read_kb_mean = 0.0;
    double write_kb_mean = 0.0;
    Nanos min_arrival = 0;
    Nanos max_arrival = 0;
    std::size_t count = 0;
};

/**
 * Generates a trace of @p duration from @p spec.
 * Events are time-ordered; sizes are rounded up to 4 KiB blocks.
 */
std::vector<TraceEvent> generateTrace(const TraceSpec &spec, Nanos duration,
                                      Rng &rng);

/** Measures a trace (for Table 4 and the generator's own tests). */
TraceStats measureTrace(const std::vector<TraceEvent> &trace);

} // namespace lake::storage

#endif // LAKE_STORAGE_TRACE_H
