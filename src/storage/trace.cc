#include "storage/trace.h"

#include <algorithm>

#include "base/logging.h"

namespace lake::storage {

TraceSpec
TraceSpec::azure()
{
    TraceSpec t;
    t.name = "Azure";
    t.avg_iops = 26000.0;
    t.read_ratio = 0.72;
    t.read_kb_mean = 30.0;
    t.read_kb_std = 28.0;
    t.write_kb_mean = 19.0;
    t.write_kb_std = 16.0;
    t.max_arrival = 324_us;
    return t;
}

TraceSpec
TraceSpec::bingI()
{
    TraceSpec t;
    t.name = "Bing-I";
    t.avg_iops = 4800.0;
    t.read_ratio = 0.78;
    t.read_kb_mean = 73.0;
    t.read_kb_std = 65.0;
    t.write_kb_mean = 59.0;
    t.write_kb_std = 50.0;
    t.max_arrival = 1800_us;
    return t;
}

TraceSpec
TraceSpec::cosmos()
{
    TraceSpec t;
    t.name = "Cosmos";
    t.avg_iops = 2500.0;
    t.read_ratio = 0.68;
    t.read_kb_mean = 657.0;
    t.read_kb_std = 500.0;
    t.write_kb_mean = 609.0;
    t.write_kb_std = 480.0;
    t.max_arrival = 1600_us;
    return t;
}

TraceSpec
TraceSpec::rerated(double factor) const
{
    LAKE_ASSERT(factor > 0.0, "re-rate factor must be positive");
    TraceSpec t = *this;
    t.avg_iops *= factor;
    t.name += detail::format(" x%.1f", factor);
    // Re-rating compresses inter-arrival times; the cap scales with it.
    t.max_arrival = static_cast<Nanos>(
        static_cast<double>(t.max_arrival) / factor);
    return t;
}

std::vector<TraceEvent>
generateTrace(const TraceSpec &spec, Nanos duration, Rng &rng)
{
    LAKE_ASSERT(spec.avg_iops > 0.0, "trace needs positive IOPS");
    std::vector<TraceEvent> out;
    out.reserve(static_cast<std::size_t>(
        spec.avg_iops * toSec(duration) * 1.1));

    double mean_gap_ns = 1e9 / spec.avg_iops;
    Nanos t = 0;
    while (true) {
        double gap = std::min(rng.exponential(mean_gap_ns),
                              static_cast<double>(spec.max_arrival));
        t += static_cast<Nanos>(gap);
        if (t >= duration)
            break;

        TraceEvent ev;
        ev.at = t;
        ev.io.is_read = rng.chance(spec.read_ratio);
        double kb = ev.io.is_read
                        ? rng.lognormalByMoments(spec.read_kb_mean,
                                                 spec.read_kb_std)
                        : rng.lognormalByMoments(spec.write_kb_mean,
                                                 spec.write_kb_std);
        // Round up to whole 4 KiB blocks, capped at 4 MiB per request.
        double bytes = std::clamp(kb * 1024.0, 4096.0, 4096.0 * 1024.0);
        ev.io.bytes = static_cast<std::uint32_t>(
            (static_cast<std::uint64_t>(bytes) + 4095) / 4096 * 4096);
        ev.io.offset =
            rng.uniformInt(0, spec.span_bytes / 4096 - 1) * 4096;
        out.push_back(ev);
    }
    return out;
}

TraceStats
measureTrace(const std::vector<TraceEvent> &trace)
{
    TraceStats s;
    s.count = trace.size();
    if (trace.empty())
        return s;

    RunningStat reads, writes;
    Nanos prev = 0;
    s.min_arrival = ~0ull;
    for (const TraceEvent &ev : trace) {
        if (ev.io.is_read)
            reads.add(ev.io.bytes / 1024.0);
        else
            writes.add(ev.io.bytes / 1024.0);
        Nanos gap = ev.at - prev;
        prev = ev.at;
        s.min_arrival = std::min(s.min_arrival, gap);
        s.max_arrival = std::max(s.max_arrival, gap);
    }
    s.read_kb_mean = reads.mean();
    s.write_kb_mean = writes.mean();
    s.iops = static_cast<double>(trace.size()) / toSec(trace.back().at);
    return s;
}

} // namespace lake::storage
