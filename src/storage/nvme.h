#ifndef LAKE_STORAGE_NVME_H
#define LAKE_STORAGE_NVME_H

/**
 * @file
 * NVMe SSD latency model.
 *
 * §7.1 attributes its divergence from LinnOS's original results to
 * device behaviour: modern NVMes have "read latencies up to three
 * times lower", "much larger DRAM caches" that "absorb much more of
 * the load, particularly for small I/Os", and only exhibit latency
 * variance under real queue pressure. The model captures exactly those
 * effects: a DRAM cache fast path, queue-depth-dependent service
 * latency, size-proportional transfer time, and a lognormal GC tail.
 */

#include <cstdint>
#include <functional>
#include <string>

#include "base/rng.h"
#include "base/stats.h"
#include "base/time.h"
#include "sim/simulator.h"

namespace lake::storage {

/** Device performance envelope. */
struct NvmeSpec
{
    std::string name;

    Nanos read_base = 75_us;   //!< flash random-read service time
    Nanos write_base = 15_us;  //!< write into the DRAM buffer
    double read_gbps = 5.0;    //!< sequential read bandwidth
    double write_gbps = 3.0;   //!< sustained write bandwidth

    Nanos cache_hit = 12_us;   //!< DRAM cache hit latency
    /** Probability a read <= cache_max_bytes hits the DRAM cache. */
    double cache_hit_rate = 0.55;
    std::size_t cache_max_bytes = 128 * 1024;

    /** Queue depth where latency starts climbing. */
    std::size_t qd_knee = 8;
    /** Extra service time per pending I/O beyond the knee. */
    Nanos qd_penalty = 3_us;

    /** Probability of a random internal-housekeeping stall. */
    double tail_prob = 0.01;
    /** Mean of the exponential stall duration. */
    Nanos tail_mean = 600_us;

    /**
     * Write interference: a read issued while writes are in flight
     * waits behind part of the outstanding write stream. Large-write
     * workloads (Cosmos) therefore produce frequent, *predictable*
     * slow reads — visible through the pending-I/O and recent-latency
     * features — while small-write workloads barely register. This is
     * the primary learnable slowness source, as in LinnOS.
     */
    double write_interference = 0.6; //!< fraction of write stream waited
    Nanos interference_cap = 1500_us;

    /**
     * Garbage-collection storms: writes stochastically trigger GC
     * (one expected storm per gc_trigger_bytes written) during which
     * reads pay a large penalty. Rare on modern over-provisioned
     * devices; the LinnOS-era spec makes them frequent.
     */
    std::size_t gc_trigger_bytes = 96 << 20;  //!< mean writes per storm
    Nanos gc_duration_mean = 12_ms;           //!< mean storm length
    Nanos gc_read_penalty = 600_us;           //!< extra read latency

    /** Samsung 980 Pro 1TB over PCIe 4.0 (the paper's testbed disks). */
    static NvmeSpec samsung980Pro();

    /**
     * The older enterprise SATA/NVMe class LinnOS measured: slower
     * flash, smaller cache, earlier queue knee — used by the
     * hardware-evolution ablation.
     */
    static NvmeSpec enterprise2019();
};

/** One block I/O. */
struct Io
{
    bool is_read = true;
    std::uint64_t offset = 0; //!< bytes
    std::uint32_t bytes = 4096;
};

/**
 * A simulated NVMe device inside the event simulator.
 *
 * NVMe devices service many commands concurrently (multiple channels),
 * so there is no serial service queue: each submission samples a
 * service latency as a function of the *current* queue depth and
 * schedules its completion independently.
 */
class NvmeDevice
{
  public:
    /** Completion callback: total device latency of the I/O. */
    using Done = std::function<void(Nanos latency)>;

    /**
     * @param simulator owning event loop
     * @param spec      performance envelope
     * @param seed      per-device RNG seed (devices must not share
     *                  streams, or "random" stalls would correlate)
     */
    NvmeDevice(sim::Simulator &simulator, NvmeSpec spec, std::uint64_t seed,
               std::string name);

    /** Submits an I/O; @p done fires at completion. */
    void submit(const Io &io, Done done);

    /** I/Os currently in flight. */
    std::size_t pending() const { return pending_; }

    /** Samples the service latency the model would assign right now
     *  (exposed for calibration and tests; does not submit). */
    Nanos sampleLatency(const Io &io);

    /** Completed I/O count. */
    std::uint64_t completed() const { return completed_; }
    /** Latency statistics over completed I/Os. */
    const RunningStat &latencyStat() const { return lat_stat_; }
    /** Device name ("sda1"-style registry key). */
    const std::string &name() const { return name_; }

    /** True while a GC storm is in progress. */
    bool inGcStorm() const { return sim_.now() < gc_until_; }

  private:
    sim::Simulator &sim_;
    NvmeSpec spec_;
    Rng rng_;
    std::string name_;
    std::size_t pending_ = 0;
    std::uint64_t completed_ = 0;
    RunningStat lat_stat_;

    /** End time of the current GC storm (0 = none yet). */
    Nanos gc_until_ = 0;

    /** Bytes of writes currently in flight. */
    std::uint64_t write_bytes_inflight_ = 0;
};

} // namespace lake::storage

#endif // LAKE_STORAGE_NVME_H
