#ifndef LAKE_STORAGE_E2E_H
#define LAKE_STORAGE_E2E_H

/**
 * @file
 * The §7.1 end-to-end study: ML-driven I/O rerouting on a 3-NVMe array.
 *
 * Reads arriving for a device are queued into that device's feature
 * registry (Listing 4's flow: capture -> commit -> batch -> score ->
 * act -> truncate). When a batch closes — size threshold or time
 * quantum — the registered classifier scores it; reads predicted slow
 * are reissued round-robin to another device. Inference runs on the
 * CPU or through LAKE on the GPU per the installed execution policy,
 * and its cost lands on the I/O issue path, so the experiment exposes
 * both the benefit (rerouting around queue buildup) and the harm
 * (batch-formation and inference latency) the paper reports.
 */

#include <memory>
#include <string>
#include <vector>

#include "base/stats.h"
#include "base/time.h"
#include "channel/fault.h"
#include "core/lake.h"
#include "policy/mlgate.h"
#include "ml/mlp.h"
#include "storage/nvme.h"
#include "storage/trace.h"

namespace lake::storage {

/** Prediction configurations of Fig. 7. */
enum class E2eMode
{
    Baseline,     //!< kernel default: no prediction, no rerouting
    CpuNn,        //!< LinnOS: synchronous per-I/O inference on the CPU
    LakeNn,       //!< LAKE: batched inference, CPU/GPU by policy
    LakeAdaptive, //!< LakeNn + MlGate: skips ML while it is not paying
                  //!< (the paper's §7.1 future-work policy)
};

/** Printable mode name. */
const char *e2eModeName(E2eMode m);

/** Experiment knobs. */
struct E2eConfig
{
    E2eMode mode = E2eMode::Baseline;
    /** Trained predictor (ignored for Baseline). */
    const ml::Mlp *model = nullptr;
    /** Slow/fast latency threshold per device, microseconds. */
    double threshold_us = 300.0;
    /** Batch flush size for LakeNn. */
    std::size_t batch_max = 16;
    /** Batch flush quantum for LakeNn. */
    Nanos quantum = 20_us;
    /** Crossover batch size for the CPU/GPU policy. */
    std::size_t gpu_batch_threshold = 8;
    /** Modulation gate knobs (LakeAdaptive only). */
    policy::MlGate::Config gate;
    /** Device model. */
    NvmeSpec device = NvmeSpec::samsung980Pro();
    /** Experiment duration. */
    Nanos duration = 2_s;
    std::uint64_t seed = 42;
    /**
     * Arm the channel fault injector (after model upload, so boot-time
     * staging stays clean). Exercises the ISSUE-2 failure path: lakeLib
     * reports Status errors, inference falls back to the CPU, and with
     * enough consecutive failures the run latches degraded mode.
     */
    bool inject_faults = false;
    /** Fault mix when inject_faults is set. */
    channel::FaultSpec faults{};
    /**
     * Streaming DMA orchestration for the GPU inference path
     * (DESIGN.md §10), default off: LakeNn's classifier then splits
     * each batch across the orchestrator's streams with pooled
     * buffers. Off = the classic single-stream path, byte-identical
     * virtual time.
     */
    remote::StreamingConfig streaming{};
    /**
     * Zero-copy SoA capture→score data plane (DESIGN.md §12), default
     * off: each device registry then stores its capture window as a
     * columnar SoaStore, the LinnOS digit encoding runs once at commit
     * (seal-time float encoder), and batch scoring consumes strided
     * MatrixViews with no gather. Off = the legacy hashmap plane,
     * byte-identical virtual time.
     */
    registry::SoaConfig soa{};
};

/** Per-run measurements (one Fig. 7 bar). */
struct E2eResult
{
    double avg_read_lat_us = 0.0;
    double p95_read_lat_us = 0.0;
    double p99_read_lat_us = 0.0;
    std::uint64_t reads = 0;
    std::uint64_t writes = 0;
    std::uint64_t rerouted = 0;
    std::uint64_t inference_batches = 0;
    double avg_batch = 0.0;
    std::uint64_t gpu_batches = 0; //!< batches dispatched to the GPU
    std::uint64_t gated_batches = 0; //!< reads/batches that skipped ML
    std::uint64_t gate_closures = 0; //!< MlGate off-switches
    std::uint64_t remote_faults = 0; //!< failed RPC attempts (lakeLib)
    std::uint64_t remote_retries = 0; //!< retry attempts (lakeLib)
    std::uint64_t cpu_fallbacks = 0; //!< inferences forced onto the CPU
    bool degraded = false; //!< run ended in degraded (CPU-only) mode
};

/**
 * Runs one configuration over three devices.
 * @param per_device one trace spec per device (size 3); the "mixed"
 *        workloads of Fig. 7 pass different specs per slot
 */
E2eResult runE2e(const std::vector<TraceSpec> &per_device,
                 const E2eConfig &config);

} // namespace lake::storage

#endif // LAKE_STORAGE_E2E_H
