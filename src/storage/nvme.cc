#include "storage/nvme.h"

#include <algorithm>
#include <utility>

#include "base/logging.h"

namespace lake::storage {

NvmeSpec
NvmeSpec::samsung980Pro()
{
    NvmeSpec s;
    s.name = "Samsung 980 Pro 1TB (PCIe 4.0)";
    return s; // defaults are this device
}

NvmeSpec
NvmeSpec::enterprise2019()
{
    NvmeSpec s;
    s.name = "Enterprise SSD (LinnOS-era)";
    s.read_base = 220_us;
    s.write_base = 35_us;
    s.read_gbps = 2.0;
    s.write_gbps = 1.2;
    s.cache_hit = 25_us;
    s.cache_hit_rate = 0.15;
    s.cache_max_bytes = 32 * 1024;
    s.qd_knee = 4;
    s.qd_penalty = 8_us;
    s.tail_prob = 0.03;
    s.tail_mean = 2000_us;
    // Older devices: smaller over-provisioning, longer/likelier GC,
    // worse read/write isolation.
    s.gc_trigger_bytes = 16 << 20;
    s.gc_duration_mean = 30_ms;
    s.gc_read_penalty = 2000_us;
    s.write_interference = 1.0;
    s.interference_cap = 5000_us;
    return s;
}

NvmeDevice::NvmeDevice(sim::Simulator &simulator, NvmeSpec spec,
                       std::uint64_t seed, std::string name)
    : sim_(simulator), spec_(std::move(spec)), rng_(seed),
      name_(std::move(name))
{
}

Nanos
NvmeDevice::sampleLatency(const Io &io)
{
    if (!io.is_read) {
        // Each written byte contributes to the chance of kicking off a
        // GC storm; storms extend if re-triggered while active.
        double p = static_cast<double>(io.bytes) /
                   static_cast<double>(spec_.gc_trigger_bytes);
        if (rng_.chance(p)) {
            Nanos dur = static_cast<Nanos>(rng_.exponential(
                static_cast<double>(spec_.gc_duration_mean)));
            gc_until_ = std::max(gc_until_, sim_.now()) + dur;
        }
    }

    Nanos lat;
    double gbps;
    if (io.is_read) {
        bool storming = inGcStorm();
        bool cacheable = io.bytes <= spec_.cache_max_bytes;
        if (!storming && cacheable && rng_.chance(spec_.cache_hit_rate)) {
            // DRAM hit: size-independent and queue-independent, the
            // effect that flattens modern devices at low load.
            return spec_.cache_hit +
                   static_cast<Nanos>(rng_.exponential(2000.0));
        }
        lat = spec_.read_base;
        gbps = spec_.read_gbps;

        // GC storm: flash reads stall behind internal housekeeping.
        if (storming)
            lat += spec_.gc_read_penalty;

        // Write interference: wait behind a share of the outstanding
        // write stream.
        if (write_bytes_inflight_ > 0) {
            double wait = spec_.write_interference *
                          static_cast<double>(write_bytes_inflight_) /
                          spec_.write_gbps;
            lat += std::min(static_cast<Nanos>(wait),
                            spec_.interference_cap);
        }
    } else {
        lat = spec_.write_base;
        gbps = spec_.write_gbps;
    }

    lat += static_cast<Nanos>(static_cast<double>(io.bytes) / gbps);

    if (pending_ > spec_.qd_knee)
        lat += spec_.qd_penalty * (pending_ - spec_.qd_knee);

    if (rng_.chance(spec_.tail_prob)) {
        lat += static_cast<Nanos>(
            rng_.exponential(static_cast<double>(spec_.tail_mean)));
    }

    // +-10% service jitter.
    double jitter = rng_.uniform(0.9, 1.1);
    return static_cast<Nanos>(static_cast<double>(lat) * jitter);
}

void
NvmeDevice::submit(const Io &io, Done done)
{
    ++pending_;
    if (!io.is_read)
        write_bytes_inflight_ += io.bytes;
    Nanos lat = sampleLatency(io);
    bool is_read = io.is_read;
    std::uint32_t bytes = io.bytes;
    sim_.scheduleIn(lat, [this, lat, is_read, bytes,
                          done = std::move(done)] {
        LAKE_ASSERT(pending_ > 0, "completion without pending I/O");
        --pending_;
        if (!is_read) {
            LAKE_ASSERT(write_bytes_inflight_ >= bytes,
                        "write accounting underflow");
            write_bytes_inflight_ -= bytes;
        }
        ++completed_;
        lat_stat_.add(toUs(lat));
        if (done)
            done(lat);
    });
}

} // namespace lake::storage
