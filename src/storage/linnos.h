#ifndef LAKE_STORAGE_LINNOS_H
#define LAKE_STORAGE_LINNOS_H

/**
 * @file
 * LinnOS-style I/O latency prediction: feature encoding, labelling and
 * offline training.
 *
 * LinnOS classifies each read as fast or slow from "the number of
 * pending I/Os and the completion latency of a fixed number of previous
 * I/Os", encoding the numbers digit-by-digit so the network sees
 * magnitude structure: 31 inputs = 3 decimal digits of the pending
 * count + 4 recent latencies x 7 decimal digits each.
 */

#include <array>
#include <cstdint>
#include <vector>

#include "base/rng.h"
#include "base/time.h"
#include "ml/mlp.h"
#include "storage/nvme.h"
#include "storage/trace.h"

namespace lake::storage {

/** LinnOS input width: 3 + 4*7. */
constexpr std::size_t kLinnosFeatures = 31;
/** Latency history depth. */
constexpr std::size_t kLinnosHistory = 4;

/**
 * Digit-encodes device state into the 31 LinnOS features.
 * @param pending queued I/Os on the target device (clamped to 999)
 * @param lat_us  last 4 read latencies, microseconds, most recent
 *                first (each clamped to 9,999,999)
 * @param out     31 floats, each a digit scaled to [0, 0.9]
 */
void encodeLinnosFeatures(std::uint32_t pending,
                          const std::array<std::uint32_t,
                                           kLinnosHistory> &lat_us,
                          float out[kLinnosFeatures]);

/** One labelled training example. */
struct LinnosSample
{
    std::array<float, kLinnosFeatures> x;
    int slow = 0; //!< 1 = latency exceeded the threshold
};

/** Output of a data-collection run. */
struct LinnosDataset
{
    std::vector<LinnosSample> samples;
    /** The slow/fast boundary used for labels, microseconds. */
    double threshold_us = 0.0;
    /** Fraction of samples labelled slow. */
    double slow_fraction = 0.0;
};

/**
 * Replays @p spec against one device (no rerouting) and collects
 * (features at issue, observed latency) pairs for reads. Labels use
 * LinnOS-style inflection thresholding: the @p quantile-th percentile
 * latency, floored at 3.5x the median so the slow class is always the
 * mechanistic tail rather than fast-mode noise.
 */
LinnosDataset collectLinnosData(const TraceSpec &spec,
                                const NvmeSpec &device, Nanos duration,
                                double quantile, std::uint64_t seed);

/**
 * Trains an MLP on the dataset with minibatch SGD.
 * @param extra_layers 0 for LinnOS's model, 1/2 for the augmented nets
 * @return the trained network
 */
ml::Mlp trainLinnosModel(const LinnosDataset &data,
                         std::size_t extra_layers, std::size_t epochs,
                         float lr, Rng &rng);

} // namespace lake::storage

#endif // LAKE_STORAGE_LINNOS_H
