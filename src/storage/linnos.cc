#include "storage/linnos.h"

#include <algorithm>
#include <deque>

#include "base/logging.h"
#include "base/stats.h"
#include "sim/simulator.h"

namespace lake::storage {

void
encodeLinnosFeatures(std::uint32_t pending,
                     const std::array<std::uint32_t, kLinnosHistory>
                         &lat_us,
                     float out[kLinnosFeatures])
{
    auto digits = [](std::uint32_t value, std::uint32_t ndigits,
                     float *dst) {
        std::uint32_t cap = 1;
        for (std::uint32_t i = 0; i < ndigits; ++i)
            cap *= 10;
        value = std::min(value, cap - 1);
        // Most significant digit first; scaled so each feature is
        // in [0, 0.9] (keeps the net's inputs comparable).
        for (std::uint32_t i = 0; i < ndigits; ++i) {
            cap /= 10;
            dst[i] = static_cast<float>((value / cap) % 10) * 0.1f;
        }
    };

    digits(pending, 3, out);
    for (std::size_t h = 0; h < kLinnosHistory; ++h)
        digits(lat_us[h], 7, out + 3 + h * 7);
}

LinnosDataset
collectLinnosData(const TraceSpec &spec, const NvmeSpec &device,
                  Nanos duration, double quantile, std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<TraceEvent> trace = generateTrace(spec, duration, rng);

    sim::Simulator simulator;
    NvmeDevice dev(simulator, device, seed ^ 0x9e3779b97f4a7c15ull,
                   "train0");

    std::array<std::uint32_t, kLinnosHistory> history{};
    struct Pending
    {
        std::array<float, kLinnosFeatures> x;
        double latency_us;
    };
    std::vector<Pending> observed;
    observed.reserve(trace.size());

    for (const TraceEvent &ev : trace) {
        simulator.schedule(ev.at, [&, ev] {
            if (!ev.io.is_read) {
                dev.submit(ev.io, nullptr);
                return;
            }
            std::size_t slot = observed.size();
            observed.push_back(Pending{});
            encodeLinnosFeatures(
                static_cast<std::uint32_t>(dev.pending()), history,
                observed[slot].x.data());
            dev.submit(ev.io, [&, slot](Nanos lat) {
                observed[slot].latency_us = toUs(lat);
                for (std::size_t i = kLinnosHistory - 1; i > 0; --i)
                    history[i] = history[i - 1];
                history[0] = static_cast<std::uint32_t>(toUs(lat));
            });
        });
    }
    simulator.run();

    LinnosDataset out;
    PercentileTracker lats;
    for (const Pending &p : observed)
        lats.add(p.latency_us);
    // LinnOS thresholds at the latency CDF's inflection point. A raw
    // quantile would sit inside the normal-mode noise band (cache hit
    // vs flash read is a coin flip no feature can predict) whenever a
    // run contains few genuinely slow periods. Flooring the threshold
    // well above an ordinary flash read keeps the slow class
    // mechanistic — GC storms, write interference, deep queues — on
    // every workload.
    double flash_read_us = toUs(device.read_base);
    out.threshold_us = std::max(lats.percentile(quantile * 100.0),
                                1.8 * flash_read_us);

    std::size_t slow = 0;
    out.samples.reserve(observed.size());
    for (const Pending &p : observed) {
        LinnosSample s;
        s.x = p.x;
        s.slow = p.latency_us > out.threshold_us ? 1 : 0;
        slow += s.slow;
        out.samples.push_back(s);
    }
    out.slow_fraction = observed.empty()
                            ? 0.0
                            : static_cast<double>(slow) /
                                  static_cast<double>(observed.size());
    return out;
}

ml::Mlp
trainLinnosModel(const LinnosDataset &data, std::size_t extra_layers,
                 std::size_t epochs, float lr, Rng &rng)
{
    LAKE_ASSERT(!data.samples.empty(), "empty LinnOS training set");
    ml::Mlp net(ml::MlpConfig::linnos(extra_layers), rng);

    // Slow I/Os are the minority class (the labelling quantile puts
    // them at 15-20%); without rebalancing, SGD collapses to the
    // always-fast majority answer and the reroute path never fires.
    // Oversample the slow class to rough parity, LinnOS's own
    // false-submission-biased training in spirit.
    std::vector<std::size_t> slow_idx, fast_idx;
    for (std::size_t i = 0; i < data.samples.size(); ++i)
        (data.samples[i].slow ? slow_idx : fast_idx).push_back(i);

    std::vector<std::size_t> order;
    order.reserve(2 * fast_idx.size());
    order.insert(order.end(), fast_idx.begin(), fast_idx.end());
    order.insert(order.end(), slow_idx.begin(), slow_idx.end());
    if (!slow_idx.empty()) {
        std::size_t want = fast_idx.size() > slow_idx.size()
                               ? fast_idx.size() - slow_idx.size()
                               : 0;
        for (std::size_t i = 0; i < want; ++i)
            order.push_back(slow_idx[i % slow_idx.size()]);
    }

    constexpr std::size_t kBatch = 64;

    // Halve the step size each epoch: the class boundary sits in a
    // noisy region and a constant rate keeps the classifier swinging
    // between the two classes instead of settling.
    float epoch_lr = lr;
    for (std::size_t epoch = 0; epoch < epochs; ++epoch) {
        std::shuffle(order.begin(), order.end(), rng.engine());
        for (std::size_t start = 0; start < order.size();
             start += kBatch) {
            std::size_t n =
                std::min(kBatch, order.size() - start);
            ml::Matrix x(n, kLinnosFeatures);
            std::vector<int> y(n);
            for (std::size_t i = 0; i < n; ++i) {
                const LinnosSample &s = data.samples[order[start + i]];
                std::copy(s.x.begin(), s.x.end(), x.row(i));
                y[i] = s.slow;
            }
            net.trainStep(x, y, epoch_lr);
        }
        epoch_lr *= 0.5f;
    }
    return net;
}

} // namespace lake::storage
