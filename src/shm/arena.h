#ifndef LAKE_SHM_ARENA_H
#define LAKE_SHM_ARENA_H

/**
 * @file
 * lakeShm: the shared-memory arena between kernel applications and lakeD.
 *
 * The real system reserves a contiguous DMA region with
 * dma_alloc_coherent at module load and mmaps the same physical pages
 * into the lakeD process; "a best-fit based memory allocator algorithm
 * is used" (§6). Here one heap allocation plays the part of the CMA
 * region; the kernel context and the user context both hold the same
 * ShmArena, so a buffer allocated on one side is readable on the other
 * without copies — the zero-copy property the paper relies on.
 *
 * Cross-boundary references travel as byte offsets (ShmOffset), because
 * in the real system kernel virtual addresses and lakeD's mmap addresses
 * differ even though they name the same bytes.
 */

#include <cstddef>
#include <cstdint>
#include <map>
#include <mutex>
#include <set>
#include <utility>
#include <vector>

#include "base/aligned.h"

namespace lake::shm {

/** Position of a buffer within the arena, valid in both address spaces. */
using ShmOffset = std::uint64_t;

/** Sentinel for "no buffer". */
constexpr ShmOffset kNullOffset = ~0ull;

/**
 * Contiguous region + best-fit allocator.
 *
 * Thread-safe: capture paths in kernel context and completion paths in
 * lakeD may allocate concurrently.
 */
class ShmArena
{
  public:
    /** Allocation alignment; matches a cache line. */
    static constexpr std::size_t kAlign = 64;

    /** @param capacity size of the shared region in bytes */
    explicit ShmArena(std::size_t capacity);

    ShmArena(const ShmArena &) = delete;
    ShmArena &operator=(const ShmArena &) = delete;

    /**
     * Allocates @p bytes using best-fit: the smallest free block that
     * satisfies the request, lowest offset among equals. Served from a
     * size-ordered index in O(log n) — placement is bit-identical to
     * the original linear scan over the offset map (the property test
     * in shm_test.cc holds the two algorithms together).
     * @return offset of the new buffer, or kNullOffset when no free
     *         block is large enough.
     */
    ShmOffset alloc(std::size_t bytes);

    /** Releases a buffer previously returned by alloc. */
    void free(ShmOffset offset);

    /** Pointer to a buffer (identical bytes from either context). */
    void *
    at(ShmOffset offset)
    {
        return region_.data() + offset;
    }

    /** Const pointer to a buffer. */
    const void *
    at(ShmOffset offset) const
    {
        return region_.data() + offset;
    }

    /** Size originally requested for a live buffer; 0 if unknown. */
    std::size_t sizeOf(ShmOffset offset) const;

    /**
     * True when [offset, offset+bytes) lies entirely inside one live
     * allocation. This is lakeD's defense against malformed commands:
     * a decoder-supplied offset/length pair must name bytes the kernel
     * side actually allocated before at() may be dereferenced.
     * Interior offsets are accepted; spans across allocations are not.
     */
    bool validRange(ShmOffset offset, std::size_t bytes) const;

    /** Total region capacity. */
    std::size_t capacity() const { return region_.size(); }
    /** Bytes currently handed out (after alignment rounding). */
    std::size_t used() const;
    /**
     * Peak of used() over the arena's lifetime. A recycling carve-out
     * (the streaming buffer pool) must hold this flat across
     * acquire/release cycles: growth here means the free index failed
     * to coalesce and the same logical buffers landed at new offsets.
     */
    std::size_t highwater() const;
    /** Number of live allocations. */
    std::size_t liveAllocs() const;
    /** Size of the largest free block (fragmentation probe). */
    std::size_t largestFree() const;

  private:
    /** Rounds a size up to the allocation alignment. */
    static std::size_t roundUp(std::size_t n);

    /** Inserts a free block into both indexes. */
    void insertFree(ShmOffset offset, std::size_t size);
    /** Removes a free block from both indexes. */
    void eraseFree(ShmOffset offset, std::size_t size);

    mutable std::mutex mu_;
    /**
     * Cache-line-aligned backing: every offset alloc() hands out is a
     * kAlign multiple, so the *base* must sit on a cache line too or
     * no carve-out (SoA column planes, GEMM staging buffers) actually
     * gets the alignment the offsets promise.
     */
    std::vector<std::uint8_t, base::AlignedAlloc<std::uint8_t>> region_;
    /** Free blocks by offset, for neighbour coalescing. */
    std::map<ShmOffset, std::size_t> free_by_offset_;
    /**
     * The same free blocks ordered by (size, offset): lower_bound on
     * (need, 0) lands on the best-fit block — smallest sufficient
     * size, lowest offset among equal sizes — in O(log n), exactly the
     * block the linear scan used to pick.
     */
    std::set<std::pair<std::size_t, ShmOffset>> free_by_size_;
    /**
     * Live allocation sizes (rounded) by offset. Ordered so
     * validRange can find the allocation containing an arbitrary
     * (possibly interior) offset with one upper_bound.
     */
    std::map<ShmOffset, std::size_t> live_;
    std::size_t used_ = 0;
    std::size_t highwater_ = 0;
};

} // namespace lake::shm

#endif // LAKE_SHM_ARENA_H
