#include "shm/arena.h"

#include "base/logging.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace lake::shm {

ShmArena::ShmArena(std::size_t capacity) : region_(roundUp(capacity))
{
    LAKE_ASSERT(capacity > 0, "arena capacity must be positive");
    insertFree(0, region_.size());
}

std::size_t
ShmArena::roundUp(std::size_t n)
{
    return (n + kAlign - 1) / kAlign * kAlign;
}

void
ShmArena::insertFree(ShmOffset offset, std::size_t size)
{
    auto [it, ok] = free_by_offset_.emplace(offset, size);
    (void)it;
    LAKE_ASSERT(ok, "free-block collision at shm offset %llu",
                static_cast<unsigned long long>(offset));
    free_by_size_.emplace(size, offset);
}

void
ShmArena::eraseFree(ShmOffset offset, std::size_t size)
{
    free_by_offset_.erase(offset);
    free_by_size_.erase({size, offset});
}

ShmOffset
ShmArena::alloc(std::size_t bytes)
{
    if (bytes == 0)
        bytes = 1;
    std::size_t need = roundUp(bytes);
    ShmOffset result = kNullOffset;
    std::size_t used_now = 0;
    std::size_t live_now = 0;
    std::size_t high_now = 0;
    {
        std::lock_guard<std::mutex> lock(mu_);

        // Best fit in O(log n): the (size, offset) ordering makes the
        // first block at or past (need, 0) the smallest sufficient
        // block, lowest offset among equal sizes — the same block the
        // original linear scan over free_by_offset_ selected.
        auto best = free_by_size_.lower_bound({need, 0});
        if (best != free_by_size_.end()) {
            auto [block, offset] = *best;
            eraseFree(offset, block);
            if (block > need)
                insertFree(offset + need, block - need);

            live_.emplace(offset, need);
            used_ += need;
            if (used_ > highwater_)
                highwater_ = used_;
            result = offset;
        }
        used_now = used_;
        live_now = live_.size();
        high_now = highwater_;
    }
    // Observability outside the lock: metric updates and the trace
    // instant must not extend the critical section.
    auto &m = obs::Metrics::global();
    if (m.enabled()) {
        if (result == kNullOffset) {
            m.shm_alloc_failures.add();
        } else {
            m.shm_allocs.add();
            m.shm_alloc_bytes.record(need);
            m.shm_used_bytes.set(used_now);
            m.shm_live_allocs.set(live_now);
            m.shm_highwater_bytes.set(high_now);
        }
    }
    auto &tr = obs::Tracer::global();
    if (tr.enabled())
        tr.instant(obs::Side::Runtime, "shm",
                   result == kNullOffset ? "shm.alloc_fail" : "shm.alloc",
                   tr.now(), obs::kNoId, "bytes", need, "offset", result);
    return result;
}

void
ShmArena::free(ShmOffset offset)
{
    std::unique_lock<std::mutex> lock(mu_);
    auto it = live_.find(offset);
    LAKE_ASSERT(it != live_.end(), "free of unknown shm offset %llu",
                static_cast<unsigned long long>(offset));
    std::size_t size = it->second;
    live_.erase(it);
    used_ -= size;

    // Coalesce with both neighbours before inserting, so each index
    // sees exactly one update for the merged block.
    ShmOffset start = offset;
    std::size_t len = size;

    auto next = free_by_offset_.lower_bound(offset);
    if (next != free_by_offset_.end() && offset + size == next->first) {
        len += next->second;
        eraseFree(next->first, next->second);
    }
    auto after = free_by_offset_.upper_bound(offset);
    if (after != free_by_offset_.begin()) {
        auto prev = std::prev(after);
        if (prev->first + prev->second == offset) {
            start = prev->first;
            len += prev->second;
            eraseFree(prev->first, prev->second);
        }
    }
    insertFree(start, len);
    std::size_t used_now = used_;
    std::size_t live_now = live_.size();
    lock.unlock();

    auto &m = obs::Metrics::global();
    if (m.enabled()) {
        m.shm_frees.add();
        m.shm_used_bytes.set(used_now);
        m.shm_live_allocs.set(live_now);
    }
    auto &tr = obs::Tracer::global();
    if (tr.enabled())
        tr.instant(obs::Side::Runtime, "shm", "shm.free", tr.now(),
                   obs::kNoId, "bytes", size, "offset", offset);
}

bool
ShmArena::validRange(ShmOffset offset, std::size_t bytes) const
{
    std::lock_guard<std::mutex> lock(mu_);
    if (offset >= region_.size())
        return false;
    // The candidate is the live allocation with the greatest base not
    // past the offset.
    auto it = live_.upper_bound(offset);
    if (it == live_.begin())
        return false;
    --it;
    ShmOffset base = it->first;
    std::size_t size = it->second;
    ShmOffset into = offset - base;
    if (into >= size)
        return false;
    // Subtraction form avoids overflow on attacker-chosen lengths.
    return bytes <= size - into;
}

std::size_t
ShmArena::sizeOf(ShmOffset offset) const
{
    std::lock_guard<std::mutex> lock(mu_);
    auto it = live_.find(offset);
    return it == live_.end() ? 0 : it->second;
}

std::size_t
ShmArena::used() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return used_;
}

std::size_t
ShmArena::highwater() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return highwater_;
}

std::size_t
ShmArena::liveAllocs() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return live_.size();
}

std::size_t
ShmArena::largestFree() const
{
    std::lock_guard<std::mutex> lock(mu_);
    // The size index keeps blocks sorted, so the answer is its tail.
    return free_by_size_.empty() ? 0 : free_by_size_.rbegin()->first;
}

} // namespace lake::shm
