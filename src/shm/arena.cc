#include "shm/arena.h"

#include <limits>

#include "base/logging.h"

namespace lake::shm {

ShmArena::ShmArena(std::size_t capacity) : region_(roundUp(capacity))
{
    LAKE_ASSERT(capacity > 0, "arena capacity must be positive");
    free_by_offset_.emplace(0, region_.size());
}

std::size_t
ShmArena::roundUp(std::size_t n)
{
    return (n + kAlign - 1) / kAlign * kAlign;
}

ShmOffset
ShmArena::alloc(std::size_t bytes)
{
    if (bytes == 0)
        bytes = 1;
    std::size_t need = roundUp(bytes);
    std::lock_guard<std::mutex> lock(mu_);

    // Best fit: the smallest free block that satisfies the request.
    auto best = free_by_offset_.end();
    std::size_t best_size = std::numeric_limits<std::size_t>::max();
    for (auto it = free_by_offset_.begin(); it != free_by_offset_.end();
         ++it) {
        if (it->second >= need && it->second < best_size) {
            best = it;
            best_size = it->second;
            if (best_size == need)
                break; // exact fit cannot be beaten
        }
    }
    if (best == free_by_offset_.end())
        return kNullOffset;

    ShmOffset offset = best->first;
    std::size_t block = best->second;
    free_by_offset_.erase(best);
    if (block > need)
        free_by_offset_.emplace(offset + need, block - need);

    live_.emplace(offset, need);
    used_ += need;
    return offset;
}

void
ShmArena::free(ShmOffset offset)
{
    std::lock_guard<std::mutex> lock(mu_);
    auto it = live_.find(offset);
    LAKE_ASSERT(it != live_.end(), "free of unknown shm offset %llu",
                static_cast<unsigned long long>(offset));
    std::size_t size = it->second;
    live_.erase(it);
    used_ -= size;

    auto [ins, ok] = free_by_offset_.emplace(offset, size);
    LAKE_ASSERT(ok, "double free at shm offset %llu",
                static_cast<unsigned long long>(offset));

    // Coalesce with the following block.
    auto next = std::next(ins);
    if (next != free_by_offset_.end() &&
        ins->first + ins->second == next->first) {
        ins->second += next->second;
        free_by_offset_.erase(next);
    }
    // Coalesce with the preceding block.
    if (ins != free_by_offset_.begin()) {
        auto prev = std::prev(ins);
        if (prev->first + prev->second == ins->first) {
            prev->second += ins->second;
            free_by_offset_.erase(ins);
        }
    }
}

bool
ShmArena::validRange(ShmOffset offset, std::size_t bytes) const
{
    std::lock_guard<std::mutex> lock(mu_);
    if (offset >= region_.size())
        return false;
    // The candidate is the live allocation with the greatest base not
    // past the offset.
    auto it = live_.upper_bound(offset);
    if (it == live_.begin())
        return false;
    --it;
    ShmOffset base = it->first;
    std::size_t size = it->second;
    ShmOffset into = offset - base;
    if (into >= size)
        return false;
    // Subtraction form avoids overflow on attacker-chosen lengths.
    return bytes <= size - into;
}

std::size_t
ShmArena::sizeOf(ShmOffset offset) const
{
    std::lock_guard<std::mutex> lock(mu_);
    auto it = live_.find(offset);
    return it == live_.end() ? 0 : it->second;
}

std::size_t
ShmArena::used() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return used_;
}

std::size_t
ShmArena::liveAllocs() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return live_.size();
}

std::size_t
ShmArena::largestFree() const
{
    std::lock_guard<std::mutex> lock(mu_);
    std::size_t best = 0;
    for (const auto &[off, size] : free_by_offset_)
        best = std::max(best, size);
    return best;
}

} // namespace lake::shm
