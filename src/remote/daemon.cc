#include "remote/daemon.h"

#include <cstring>

#include "base/logging.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace lake::remote {

using gpu::CuResult;
using gpu::DevicePtr;

LakeDaemon::LakeDaemon(channel::Channel &chan, shm::ShmArena &arena,
                       gpu::Device &dev, Clock &clock)
    : chan_(chan), arena_(arena), clock_(clock)
{
    addDevice(dev);
}

void
LakeDaemon::addDevice(gpu::Device &dev)
{
    ctxs_.push_back(std::make_unique<gpu::GpuContext>(dev, clock_));
    nvmls_.emplace_back(dev);
}

void
LakeDaemon::registerHighLevel(const std::string &name, Handler handler,
                              Nanos cost)
{
    high_level_[name] = HighLevel{std::move(handler), cost};
}

void
LakeDaemon::processPending()
{
    using Dir = channel::Channel::Dir;
    while (chan_.pending(Dir::KernelToUser)) {
        std::vector<std::uint8_t> buf = chan_.recv(Dir::KernelToUser);
        handleOne(buf);
        // Hand the drained buffer back to the channel pool so the next
        // send can reuse its capacity instead of allocating.
        chan_.recycle(std::move(buf));
    }
}

namespace {

/**
 * One-way commands: no response travels back; failures surface at the
 * next synchronizing call, CUDA's asynchronous-error contract.
 */
bool
isOneWay(ApiId id)
{
    switch (id) {
      case ApiId::CuMemcpyHtoDShmAsync:
      case ApiId::CuMemcpyDtoHShmAsync:
      case ApiId::CuLaunchKernel:
      case ApiId::CuMemFreeAsync:
        return true;
      default:
        return false;
    }
}

} // namespace

void
LakeDaemon::handleOne(const std::vector<std::uint8_t> &buf)
{
    if (buf.size() >= sizeof(std::uint32_t)) {
        std::uint32_t magic = 0;
        std::memcpy(&magic, buf.data(), sizeof(magic));
        if (magic == kBatchMagic) {
            handleBatch(buf);
            return;
        }
    }
    handleCommand(buf.data(), buf.size());
}

void
LakeDaemon::handleBatch(const std::vector<std::uint8_t> &buf)
{
    ++batches_;
    Nanos t0 = clock_.now();
    Decoder dec(buf);
    dec.u32(); // magic, verified by handleOne
    std::uint32_t count = dec.u32();
    auto batchSpan = [&](std::uint32_t dispatched) {
        auto &tr = obs::Tracer::global();
        if (tr.enabled())
            tr.span(obs::Side::Daemon, "remote", "batch.dispatch", t0,
                    clock_.now() - t0, obs::kNoId, "commands", dispatched,
                    "bytes", buf.size());
    };
    for (std::uint32_t i = 0; i < count; ++i) {
        // Each frame is a u32-length-prefixed block; a corrupt *body*
        // still leaves the next prefix reachable, so it costs exactly
        // one command.
        std::uint32_t len = dec.u32();
        const std::uint8_t *frame = dec.raw(len);
        if (!dec.ok()) {
            // Truncated framing: no trustworthy boundary remains. The
            // lost tail is one-way traffic, so like a dropped message
            // its absence surfaces at the next synchronizing call.
            ++malformed_;
            warn("lakeD: batch framing truncated at command %u of %u",
                 i, count);
            auto &tr = obs::Tracer::global();
            if (tr.enabled())
                tr.instant(obs::Side::Daemon, "remote",
                           "batch.truncated", clock_.now(), obs::kNoId,
                           "at", i, "declared", count);
            batchSpan(i);
            return;
        }
        handleCommand(frame, len);
    }
    if (!dec.atEnd()) {
        // Count understated the frames present (corrupt header): the
        // orphaned tail is never executed, only counted.
        ++malformed_;
        warn("lakeD: batch carries %zu bytes past its declared count",
             dec.remaining());
    }
    batchSpan(count);
}

void
LakeDaemon::handleCommand(const std::uint8_t *data, std::size_t size)
{
    Decoder dec(data, size);
    CommandHead head = readHead(dec);
    ++handled_;
    Nanos t0 = clock_.now();
    auto api = static_cast<std::uint32_t>(head.id);

    if (!dec.ok()) {
        // Prologue truncated: without a trustworthy seq any answer
        // would be attributed to the wrong command, so stay silent and
        // let the kernel side time out.
        ++malformed_;
        warn("lakeD: dropping %zu-byte command with truncated prologue",
             size);
        auto &tr = obs::Tracer::global();
        if (tr.enabled())
            tr.instant(obs::Side::Daemon, "remote", "cmd.malformed",
                       clock_.now(), obs::kNoId, "bytes", size);
        return;
    }

    auto dispatchSpan = [&] {
        Nanos dur = clock_.now() - t0;
        auto &tr = obs::Tracer::global();
        if (tr.enabled())
            tr.span(obs::Side::Daemon, "remote", apiName(head.id), t0,
                    dur, head.seq, "api", api);
        auto &m = obs::Metrics::global();
        if (m.enabled())
            m.stage(obs::Stage::Dispatch)
                .record(api, apiName(head.id), dur);
    };

    if (isOneWay(head.id)) {
        resp_enc_.reset(); // scratch only; one-way commands never reply
        handleCuda(head.id, head.seq, dec, resp_enc_);
        dispatchSpan();
        return;
    }

    resp_enc_.reset();
    Encoder &resp = resp_enc_;
    resp.u32(head.seq);

    if (head.id == ApiId::HighLevelCall) {
        std::string name = dec.str();
        if (!dec.ok()) {
            ++malformed_;
            resp.u32(static_cast<std::uint32_t>(CuResult::InvalidValue));
        } else if (auto it = high_level_.find(name);
                   it == high_level_.end()) {
            warn("lakeD: no handler for high-level API '%s'",
                 name.c_str());
            resp.u32(static_cast<std::uint32_t>(CuResult::NotFound));
        } else {
            resp.u32(static_cast<std::uint32_t>(CuResult::Success));
            Nanos exec_t0 = clock_.now();
            clock_.advance(it->second.cost);
            it->second.handler(dec, resp);
            Nanos exec_dur = clock_.now() - exec_t0;
            auto &tr = obs::Tracer::global();
            if (tr.enabled())
                tr.span(obs::Side::Daemon, "remote", "highlevel.execute",
                        exec_t0, exec_dur, head.seq, "api", api);
            auto &m = obs::Metrics::global();
            if (m.enabled())
                m.stage(obs::Stage::Execute)
                    .record(api, apiName(head.id), exec_dur);
        }
    } else {
        handleCuda(head.id, head.seq, dec, resp);
    }

    chan_.send(channel::Channel::Dir::UserToKernel, resp.data(),
               resp.size());
    dispatchSpan();
}

void
LakeDaemon::recordDeferred(CuResult r)
{
    if (r != CuResult::Success) {
        warn("lakeD: async command failed: %s", gpu::cuResultName(r));
        if (deferred_error_ == CuResult::Success)
            deferred_error_ = r;
    }
}

CuResult
LakeDaemon::drainDeferred(CuResult r)
{
    if (deferred_error_ != CuResult::Success) {
        CuResult e = deferred_error_;
        deferred_error_ = CuResult::Success;
        return e;
    }
    return r;
}

void
LakeDaemon::handleCuda(ApiId id, std::uint32_t seq, Decoder &dec,
                       Encoder &resp)
{
    Nanos exec_t0 = clock_.now();
    // Bound once per command: a CuSetDevice handled *by* this command
    // switches the binding for the commands that follow it.
    gpu::GpuContext &ctx = *ctxs_[active_];
    auto status = [&resp](CuResult r) {
        resp.u32(static_cast<std::uint32_t>(r));
    };
    // Defensive rejection of a malformed two-way command: counted,
    // answered InvalidValue, and never dispatched to the context.
    auto reject = [&] {
        ++malformed_;
        status(CuResult::InvalidValue);
        auto &tr = obs::Tracer::global();
        if (tr.enabled())
            tr.instant(obs::Side::Daemon, "remote", "cmd.malformed",
                       clock_.now(), seq, "api",
                       static_cast<std::uint32_t>(id));
    };

    switch (id) {
      case ApiId::CuMemAlloc: {
        std::uint64_t bytes = dec.u64();
        if (!dec.ok()) {
            reject();
            resp.u64(0);
            break;
        }
        DevicePtr ptr = 0;
        CuResult r = ctx.memAlloc(&ptr, bytes);
        status(r);
        resp.u64(ptr);
        break;
      }
      case ApiId::CuMemFree: {
        DevicePtr ptr = dec.u64();
        if (!dec.ok()) {
            reject();
            break;
        }
        status(ctx.memFree(ptr));
        break;
      }
      case ApiId::CuMemFreeAsync: {
        // Deferred free from the pipelined fast path: one-way, so a
        // bad pointer is reported by the next synchronizing call.
        DevicePtr ptr = dec.u64();
        if (!dec.ok()) {
            ++malformed_;
            recordDeferred(CuResult::InvalidValue);
            break;
        }
        // memFreeAsync (not memFree): the free must order after the
        // owning stream's in-flight work, or a pooled buffer could be
        // recycled while its copy is mid-flight.
        recordDeferred(ctx.memFreeAsync(ptr));
        break;
      }
      case ApiId::CuMemcpyHtoD: {
        // Marshalled path: payload travelled inside the command.
        DevicePtr dst = dec.u64();
        std::size_t n = 0;
        const std::uint8_t *src = dec.bytes(&n);
        if (!dec.ok()) {
            reject();
            break;
        }
        status(ctx.memcpyHtoD(dst, src, n));
        break;
      }
      case ApiId::CuMemcpyDtoH: {
        DevicePtr src = dec.u64();
        std::uint64_t n = dec.u64();
        // Validate the decoder-supplied length *before* sizing the
        // bounce buffer: a truncated command must not become an
        // arbitrary-size allocation.
        if (!dec.ok() || n > kMaxMarshalledCopy) {
            reject();
            resp.bytes(nullptr, 0);
            break;
        }
        dtoh_scratch_.resize(static_cast<std::size_t>(n));
        CuResult r = ctx.memcpyDtoH(dtoh_scratch_.data(), src, n);
        status(r);
        if (r == CuResult::Success)
            resp.bytes(dtoh_scratch_.data(), dtoh_scratch_.size());
        else
            resp.bytes(nullptr, 0);
        break;
      }
      case ApiId::CuMemcpyHtoDShm:
      case ApiId::CuMemcpyHtoDShmAsync: {
        // Zero-copy path: the command carries only the shm offset.
        DevicePtr dst = dec.u64();
        shm::ShmOffset off = dec.u64();
        std::uint64_t n = dec.u64();
        std::uint32_t stream = dec.u32();
        // The offset/length pair must name bytes inside a live lakeShm
        // allocation before at() may be dereferenced.
        bool valid = dec.ok() &&
                     arena_.validRange(off, static_cast<std::size_t>(n));
        if (id == ApiId::CuMemcpyHtoDShm) {
            if (!valid) {
                reject();
                break;
            }
            const void *src = arena_.at(off);
            status(drainDeferred(ctx.memcpyHtoD(dst, src, n)));
        } else {
            if (!valid) {
                ++malformed_;
                recordDeferred(CuResult::InvalidValue);
                break;
            }
            const void *src = arena_.at(off);
            recordDeferred(ctx.memcpyHtoDAsync(dst, src, n, stream));
        }
        break;
      }
      case ApiId::CuMemcpyDtoHShm:
      case ApiId::CuMemcpyDtoHShmAsync: {
        DevicePtr src = dec.u64();
        shm::ShmOffset off = dec.u64();
        std::uint64_t n = dec.u64();
        std::uint32_t stream = dec.u32();
        bool valid = dec.ok() &&
                     arena_.validRange(off, static_cast<std::size_t>(n));
        if (id == ApiId::CuMemcpyDtoHShm) {
            if (!valid) {
                reject();
                break;
            }
            void *dst = arena_.at(off);
            status(drainDeferred(ctx.memcpyDtoH(dst, src, n)));
        } else {
            if (!valid) {
                ++malformed_;
                recordDeferred(CuResult::InvalidValue);
                break;
            }
            void *dst = arena_.at(off);
            recordDeferred(ctx.memcpyDtoHAsync(dst, src, n, stream));
        }
        break;
      }
      case ApiId::CuLaunchKernel: {
        gpu::LaunchConfig &cfg = launch_scratch_;
        cfg.kernel = dec.str();
        cfg.grid_x = dec.u32();
        cfg.block_x = dec.u32();
        cfg.args.clear();
        std::uint32_t nargs = dec.u32();
        // Cap the arg count by the bytes actually present so a corrupt
        // count cannot drive a 4-billion-iteration decode loop.
        if (!dec.ok() || nargs > dec.remaining() / 8) {
            ++malformed_;
            recordDeferred(CuResult::InvalidValue);
            break;
        }
        for (std::uint32_t i = 0; i < nargs; ++i)
            cfg.args.push_back(dec.u64());
        std::uint32_t stream = dec.u32();
        if (!dec.ok()) {
            ++malformed_;
            recordDeferred(CuResult::InvalidValue);
            break;
        }
        recordDeferred(ctx.launchKernel(cfg, stream));
        break;
      }
      case ApiId::CuStreamSynchronize: {
        std::uint32_t stream = dec.u32();
        if (!dec.ok()) {
            reject();
            break;
        }
        status(drainDeferred(ctx.streamSynchronize(stream)));
        break;
      }
      case ApiId::CuCtxSynchronize: {
        status(drainDeferred(ctx.ctxSynchronize()));
        break;
      }
      case ApiId::NvmlGetUtilization: {
        clock_.advance(gpu::Nvml::kQueryCost);
        gpu::NvmlUtilization u = nvmls_[active_].utilization(clock_.now());
        status(CuResult::Success);
        resp.f32(static_cast<float>(u.gpu));
        resp.f32(static_cast<float>(u.memory));
        break;
      }
      case ApiId::CuSetDevice: {
        std::uint32_t idx = dec.u32();
        if (!dec.ok() || idx >= ctxs_.size()) {
            reject();
            break;
        }
        active_ = idx;
        clock_.advance(gpu::GpuContext::kDriverCallCost);
        status(CuResult::Success);
        break;
      }
      default:
        warn("lakeD: unknown API id %u", static_cast<unsigned>(id));
        ++malformed_;
        status(CuResult::InvalidValue);
        break;
    }

    // Execute stage: the API body alone, excluding response transport
    // (which handleCommand's dispatch span covers).
    Nanos exec_dur = clock_.now() - exec_t0;
    auto &tr = obs::Tracer::global();
    if (tr.enabled())
        tr.span(obs::Side::Daemon, "remote", "cuda.execute", exec_t0,
                exec_dur, seq, "api", static_cast<std::uint32_t>(id));
    auto &m = obs::Metrics::global();
    if (m.enabled())
        m.stage(obs::Stage::Execute)
            .record(static_cast<std::uint32_t>(id), apiName(id), exec_dur);
}

void
LakeDaemon::publishMetrics() const
{
    obs::Metrics &m = obs::Metrics::global();
    m.counter("daemon.commands_handled").set(handled_);
    m.counter("daemon.batches_received").set(batches_);
    m.counter("daemon.malformed_rejected").set(malformed_);
}

} // namespace lake::remote
