#include "remote/wire.h"

namespace lake::remote {

const char *
apiName(ApiId id)
{
    switch (id) {
      case ApiId::CuMemAlloc:           return "cuMemAlloc";
      case ApiId::CuMemFree:            return "cuMemFree";
      case ApiId::CuMemcpyHtoD:         return "cuMemcpyHtoD";
      case ApiId::CuMemcpyDtoH:         return "cuMemcpyDtoH";
      case ApiId::CuMemcpyHtoDShm:      return "cuMemcpyHtoD[shm]";
      case ApiId::CuMemcpyDtoHShm:      return "cuMemcpyDtoH[shm]";
      case ApiId::CuMemcpyHtoDShmAsync: return "cuMemcpyHtoDAsync[shm]";
      case ApiId::CuMemcpyDtoHShmAsync: return "cuMemcpyDtoHAsync[shm]";
      case ApiId::CuLaunchKernel:       return "cuLaunchKernel";
      case ApiId::CuStreamSynchronize:  return "cuStreamSynchronize";
      case ApiId::CuCtxSynchronize:     return "cuCtxSynchronize";
      case ApiId::NvmlGetUtilization:   return "nvmlGetUtilization";
      case ApiId::HighLevelCall:        return "highLevelCall";
    }
    return "unknown";
}

Encoder &
Encoder::u32(std::uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    return *this;
}

Encoder &
Encoder::u64(std::uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    return *this;
}

Encoder &
Encoder::f32(float v)
{
    std::uint32_t bits = 0;
    std::memcpy(&bits, &v, sizeof(bits));
    return u32(bits);
}

Encoder &
Encoder::bytes(const void *data, std::size_t n)
{
    u64(n);
    // Empty blocks are legal (e.g. a failed DtoH response carries no
    // payload); `nullptr + 0` pointer arithmetic is UB, so bail early.
    if (n == 0)
        return *this;
    const auto *p = static_cast<const std::uint8_t *>(data);
    buf_.insert(buf_.end(), p, p + n);
    return *this;
}

Encoder &
Encoder::str(const std::string &s)
{
    return bytes(s.data(), s.size());
}

bool
Decoder::need(std::size_t n)
{
    // Compare against the remaining bytes rather than `pos_ + n`: a
    // corrupt u64 length near UINT64_MAX would wrap the addition and
    // let bytes() hand out an out-of-bounds pointer.
    if (!ok_ || n > size_ - pos_) {
        ok_ = false;
        return false;
    }
    return true;
}

std::uint32_t
Decoder::u32()
{
    if (!need(4))
        return 0;
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
        v |= static_cast<std::uint32_t>(data_[pos_ + i]) << (8 * i);
    pos_ += 4;
    return v;
}

std::uint64_t
Decoder::u64()
{
    if (!need(8))
        return 0;
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
        v |= static_cast<std::uint64_t>(data_[pos_ + i]) << (8 * i);
    pos_ += 8;
    return v;
}

float
Decoder::f32()
{
    std::uint32_t bits = u32();
    float v = 0.0f;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
}

const std::uint8_t *
Decoder::bytes(std::size_t *n)
{
    std::uint64_t len = u64();
    if (!need(static_cast<std::size_t>(len))) {
        *n = 0;
        return nullptr;
    }
    const std::uint8_t *p = data_ + pos_;
    pos_ += static_cast<std::size_t>(len);
    *n = static_cast<std::size_t>(len);
    return p;
}

std::string
Decoder::str()
{
    std::size_t n = 0;
    const std::uint8_t *p = bytes(&n);
    return p ? std::string(reinterpret_cast<const char *>(p), n)
             : std::string();
}

Encoder
makeCommand(ApiId id, std::uint32_t seq)
{
    Encoder enc;
    enc.u32(static_cast<std::uint32_t>(id)).u32(seq);
    return enc;
}

CommandHead
readHead(Decoder &dec)
{
    CommandHead head;
    head.id = static_cast<ApiId>(dec.u32());
    head.seq = dec.u32();
    return head;
}

} // namespace lake::remote
