#include "remote/wire.h"

#include "base/logging.h"

namespace lake::remote {

const char *
apiName(ApiId id)
{
    switch (id) {
      case ApiId::CuMemAlloc:           return "cuMemAlloc";
      case ApiId::CuMemFree:            return "cuMemFree";
      case ApiId::CuMemcpyHtoD:         return "cuMemcpyHtoD";
      case ApiId::CuMemcpyDtoH:         return "cuMemcpyDtoH";
      case ApiId::CuMemcpyHtoDShm:      return "cuMemcpyHtoD[shm]";
      case ApiId::CuMemcpyDtoHShm:      return "cuMemcpyDtoH[shm]";
      case ApiId::CuMemcpyHtoDShmAsync: return "cuMemcpyHtoDAsync[shm]";
      case ApiId::CuMemcpyDtoHShmAsync: return "cuMemcpyDtoHAsync[shm]";
      case ApiId::CuLaunchKernel:       return "cuLaunchKernel";
      case ApiId::CuStreamSynchronize:  return "cuStreamSynchronize";
      case ApiId::CuCtxSynchronize:     return "cuCtxSynchronize";
      case ApiId::NvmlGetUtilization:   return "nvmlGetUtilization";
      case ApiId::HighLevelCall:        return "highLevelCall";
      case ApiId::CuMemFreeAsync:       return "cuMemFreeAsync";
      case ApiId::CuSetDevice:          return "cuSetDevice";
    }
    return "unknown";
}

Encoder &
Encoder::u32(std::uint32_t v)
{
    // Staged through a local array so the vector grows once per field
    // (a bulk insert) instead of once per byte: the encoder is on the
    // per-command fast path, where byte-at-a-time push_back dominated.
    const std::uint8_t b[4] = {
        static_cast<std::uint8_t>(v),
        static_cast<std::uint8_t>(v >> 8),
        static_cast<std::uint8_t>(v >> 16),
        static_cast<std::uint8_t>(v >> 24),
    };
    buf_.insert(buf_.end(), b, b + sizeof(b));
    return *this;
}

Encoder &
Encoder::u64(std::uint64_t v)
{
    const std::uint8_t b[8] = {
        static_cast<std::uint8_t>(v),
        static_cast<std::uint8_t>(v >> 8),
        static_cast<std::uint8_t>(v >> 16),
        static_cast<std::uint8_t>(v >> 24),
        static_cast<std::uint8_t>(v >> 32),
        static_cast<std::uint8_t>(v >> 40),
        static_cast<std::uint8_t>(v >> 48),
        static_cast<std::uint8_t>(v >> 56),
    };
    buf_.insert(buf_.end(), b, b + sizeof(b));
    return *this;
}

Encoder &
Encoder::f32(float v)
{
    std::uint32_t bits = 0;
    std::memcpy(&bits, &v, sizeof(bits));
    return u32(bits);
}

Encoder &
Encoder::bytes(const void *data, std::size_t n)
{
    u64(n);
    // Empty blocks are legal (e.g. a failed DtoH response carries no
    // payload); `nullptr + 0` pointer arithmetic is UB, so bail early.
    if (n == 0)
        return *this;
    const auto *p = static_cast<const std::uint8_t *>(data);
    buf_.insert(buf_.end(), p, p + n);
    return *this;
}

Encoder &
Encoder::str(const std::string &s)
{
    return bytes(s.data(), s.size());
}

Encoder &
Encoder::raw(const void *data, std::size_t n)
{
    if (n == 0)
        return *this;
    const auto *p = static_cast<const std::uint8_t *>(data);
    buf_.insert(buf_.end(), p, p + n);
    return *this;
}

void
Encoder::patchU32(std::size_t at, std::uint32_t v)
{
    LAKE_ASSERT(at + 4 <= buf_.size(), "patchU32 past encoded bytes");
    for (int i = 0; i < 4; ++i)
        buf_[at + i] = static_cast<std::uint8_t>(v >> (8 * i));
}

bool
Decoder::need(std::size_t n)
{
    // Compare against the remaining bytes rather than `pos_ + n`: a
    // corrupt u64 length near UINT64_MAX would wrap the addition and
    // let bytes() hand out an out-of-bounds pointer.
    if (!ok_ || n > size_ - pos_) {
        ok_ = false;
        return false;
    }
    return true;
}

std::uint32_t
Decoder::u32()
{
    if (!need(4))
        return 0;
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
        v |= static_cast<std::uint32_t>(data_[pos_ + i]) << (8 * i);
    pos_ += 4;
    return v;
}

std::uint64_t
Decoder::u64()
{
    if (!need(8))
        return 0;
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
        v |= static_cast<std::uint64_t>(data_[pos_ + i]) << (8 * i);
    pos_ += 8;
    return v;
}

float
Decoder::f32()
{
    std::uint32_t bits = u32();
    float v = 0.0f;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
}

const std::uint8_t *
Decoder::bytes(std::size_t *n)
{
    std::uint64_t len = u64();
    if (!need(static_cast<std::size_t>(len))) {
        *n = 0;
        return nullptr;
    }
    const std::uint8_t *p = data_ + pos_;
    pos_ += static_cast<std::size_t>(len);
    *n = static_cast<std::size_t>(len);
    return p;
}

const std::uint8_t *
Decoder::raw(std::size_t n)
{
    if (!need(n))
        return nullptr;
    const std::uint8_t *p = data_ + pos_;
    pos_ += n;
    return p;
}

std::string
Decoder::str()
{
    std::size_t n = 0;
    const std::uint8_t *p = bytes(&n);
    return p ? std::string(reinterpret_cast<const char *>(p), n)
             : std::string();
}

Encoder
makeCommand(ApiId id, std::uint32_t seq)
{
    Encoder enc;
    enc.u32(static_cast<std::uint32_t>(id)).u32(seq);
    return enc;
}

CommandHead
readHead(Decoder &dec)
{
    CommandHead head;
    head.id = static_cast<ApiId>(dec.u32());
    head.seq = dec.u32();
    return head;
}

} // namespace lake::remote
