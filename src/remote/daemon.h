#ifndef LAKE_REMOTE_DAEMON_H
#define LAKE_REMOTE_DAEMON_H

/**
 * @file
 * lakeD: the user-space daemon that realizes remoted APIs.
 *
 * "lakeD is a user space daemon that listens for commands coming from
 * lakeLib, deserializes them and executes the requested APIs" (§4). It
 * holds the only GpuContext — kernel space never touches the vendor
 * stack directly. High-level APIs (§4.4, e.g. TensorFlow-backed model
 * inference) are added by registering named handlers, mirroring how the
 * real lakeD grows a new entry point per manually-added API.
 */

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "base/time.h"
#include "channel/channel.h"
#include "gpu/context.h"
#include "gpu/nvml.h"
#include "remote/wire.h"
#include "shm/arena.h"

namespace lake::remote {

/**
 * Command dispatch loop.
 */
class LakeDaemon
{
  public:
    /**
     * A high-level API implementation. Reads its arguments from the
     * decoder and appends its results to the encoder (the daemon has
     * already written the seq echo and an Ok status).
     */
    using Handler = std::function<void(Decoder &, Encoder &)>;

    /**
     * @param chan  command channel shared with lakeLib
     * @param arena lakeShm region shared with kernel space
     * @param dev   the accelerator
     * @param clock virtual clock (shared with the kernel context in the
     *              synchronous RPC regime)
     */
    LakeDaemon(channel::Channel &chan, shm::ShmArena &arena,
               gpu::Device &dev, Clock &clock);

    /**
     * Adds a further device behind this daemon (fleet shards owning
     * more than one). Commands target the *active* device; CuSetDevice
     * switches it. Call before traffic starts — each device gets its
     * own GpuContext and Nvml probe at registration time.
     */
    void addDevice(gpu::Device &dev);

    /** Devices this daemon fronts (>= 1). */
    std::size_t deviceCount() const { return ctxs_.size(); }

    /** Index of the device commands currently execute on. */
    std::size_t activeDevice() const { return active_; }

    /** Drains and executes every pending command. */
    void processPending();

    /**
     * Registers (or replaces) the implementation of a high-level API.
     * @param name API name the kernel side passes to highLevelCall
     * @param cost fixed modeled execution cost charged per invocation
     *             on top of whatever GPU work the handler performs
     */
    void registerHighLevel(const std::string &name, Handler handler,
                           Nanos cost = 0);

    /** The active device's GPU context (handlers may use it directly). */
    gpu::GpuContext &gpuContext() { return *ctxs_[active_]; }

    /** Shared memory region. */
    shm::ShmArena &arena() { return arena_; }

    /** Commands executed since start. */
    std::uint64_t commandsHandled() const { return handled_; }

    /** Multi-command batch messages received (pipelined fast path). */
    std::uint64_t batchesReceived() const { return batches_; }

    /**
     * Malformed commands rejected defensively: truncated prologues,
     * decode underruns, over-cap lengths, shm ranges outside live
     * allocations. Each produced an InvalidValue answer (or, when the
     * prologue itself was unreadable, no answer at all) instead of UB.
     */
    std::uint64_t malformedRejected() const { return malformed_; }

    /**
     * Mirrors the daemon counters into the obs::Metrics registry under
     * "daemon.*" names; benches call it right before exporting.
     */
    void publishMetrics() const;

    /**
     * Largest marshalled copy a command may request. A truncated or
     * corrupt length field must not translate into an arbitrary-size
     * daemon allocation; real lakeD bulk data travels via lakeShm, so
     * the marshalled path never legitimately approaches this.
     */
    static constexpr std::uint64_t kMaxMarshalledCopy = 64ull << 20;

  private:
    /**
     * Routes one channel message: a kBatchMagic message fans out to
     * handleBatch, anything else is a single command.
     */
    void handleOne(const std::vector<std::uint8_t> &buf);

    /**
     * Executes every length-prefixed frame of a batch message. A frame
     * whose *body* fails to decode costs exactly that command (the
     * length prefix still locates the next frame); truncated *framing*
     * ends the batch, since no further boundary is trustworthy.
     */
    void handleBatch(const std::vector<std::uint8_t> &buf);

    /** Executes one command and sends the response (if two-way). */
    void handleCommand(const std::uint8_t *data, std::size_t size);

    /**
     * Dispatches the CUDA driver API subset. @p seq is the command's
     * sequence number, carried through for trace correlation only.
     */
    void handleCuda(ApiId id, std::uint32_t seq, Decoder &dec,
                    Encoder &resp);

    /** Stores the first failure of a one-way command. */
    void recordDeferred(gpu::CuResult r);

    /**
     * Merges the pending deferred error (if any) into a synchronizing
     * call's result and clears it.
     */
    gpu::CuResult drainDeferred(gpu::CuResult r);

    channel::Channel &chan_;
    shm::ShmArena &arena_;
    Clock &clock_;
    /**
     * One context + NVML probe per fronted device, parallel vectors
     * indexed by the daemon-local device id CuSetDevice selects.
     * Single-device daemons never see a CuSetDevice, so active_ stays
     * 0 and dispatch is bit-identical to the pre-fleet layout.
     */
    std::vector<std::unique_ptr<gpu::GpuContext>> ctxs_;
    std::vector<gpu::Nvml> nvmls_;
    std::size_t active_ = 0;

    struct HighLevel
    {
        Handler handler;
        Nanos cost;
    };
    std::unordered_map<std::string, HighLevel> high_level_;

    /**
     * First failure of a one-way (async) command since the last
     * synchronizing call, per CUDA's deferred-error contract.
     */
    gpu::CuResult deferred_error_ = gpu::CuResult::Success;

    /**
     * Scratch state reused across commands so steady-state dispatch
     * stops allocating once grown to the working-set size: the response
     * encoder, the DtoH bounce buffer, and the launch config.
     */
    Encoder resp_enc_;
    std::vector<std::uint8_t> dtoh_scratch_;
    gpu::LaunchConfig launch_scratch_;

    std::uint64_t handled_ = 0;
    std::uint64_t batches_ = 0;
    std::uint64_t malformed_ = 0;
};

} // namespace lake::remote

#endif // LAKE_REMOTE_DAEMON_H
