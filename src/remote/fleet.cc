#include "remote/fleet.h"

#include <algorithm>
#include <utility>

#include "base/logging.h"
#include "obs/metrics.h"

namespace lake::remote {

void
ShardHealth::observe(const Status &s, std::size_t threshold, const char *who)
{
    if (s.isOk()) {
        consecutive_failures = 0;
        return;
    }
    ++consecutive_failures;
    if (threshold > 0 && !degraded.load(std::memory_order_relaxed) &&
        consecutive_failures >= threshold) {
        degraded.store(true, std::memory_order_relaxed);
        warn("%s: remoting degraded after %zu consecutive failures "
             "(last: %s); policies fall back to CPU",
             who, consecutive_failures, s.message().c_str());
    }
}

LakeShard::LakeShard(std::size_t index, std::vector<gpu::Device *> devices,
                     const ShardParams &params)
    : index_(index), devs_(std::move(devices)), arena_(params.shm_bytes),
      channel_(params.channel, clock_),
      daemon_(channel_, arena_, *devs_.at(0), clock_),
      lib_(channel_, arena_, [this] { daemon_.processPending(); }),
      degrade_threshold_(params.degrade_threshold)
{
    for (std::size_t i = 1; i < devs_.size(); ++i)
        daemon_.addDevice(*devs_[i]);
    lib_.setRetryPolicy(params.retry);
    lib_.setPipeline(params.pipeline);
    lib_.setFailureObserver([this](const Status &s) {
        health_.observe(s, degrade_threshold_, "lake shard");
    });
}

gpu::CuResult
LakeShard::activate(std::size_t local)
{
    LAKE_ASSERT(local < devs_.size(),
                "shard %zu has no local device %zu", index_, local);
    if (local == lib_active_)
        return gpu::CuResult::Success;
    gpu::CuResult r = lib_.cuSetDevice(static_cast<std::uint32_t>(local));
    if (r == gpu::CuResult::Success) {
        lib_active_ = local;
        auto &m = obs::Metrics::global();
        if (m.enabled())
            m.fleet_setdevice.add();
    }
    return r;
}

ShardFleet::ShardFleet(gpu::DeviceFleet &fleet, std::size_t shards,
                       const ShardParams &params)
    : device_count_(fleet.size())
{
    LAKE_ASSERT(shards >= 1 && shards <= fleet.size(),
                "shard count %zu must be in [1, %zu]", shards, fleet.size());
    shards_.reserve(shards);
    for (std::size_t k = 0; k < shards; ++k) {
        std::vector<gpu::Device *> devs;
        for (std::size_t i = k; i < fleet.size(); i += shards)
            devs.push_back(&fleet.at(i));
        shards_.push_back(
            std::make_unique<LakeShard>(k, std::move(devs), params));
    }
}

Nanos
ShardFleet::makespan() const
{
    Nanos t = 0;
    for (const auto &s : shards_)
        t = std::max(t, s->clock().now());
    return t;
}

std::uint64_t
ShardFleet::totalCalls() const
{
    std::uint64_t n = 0;
    for (const auto &s : shards_)
        n += s->lib().calls();
    return n;
}

namespace {

/** ExecPolicy adapter: one registry key's view of the router. */
class RouterPolicy final : public policy::ExecPolicy
{
  public:
    RouterPolicy(FleetRouter &router, std::string key)
        : router_(router), key_(std::move(key))
    {
    }

    policy::Engine
    decide(const policy::PolicyInput &in) override
    {
        return router_.placeFor(key_, in).engine;
    }

    const char *name() const override { return "fleet-router"; }

  private:
    FleetRouter &router_;
    std::string key_;
};

} // namespace

FleetRouter::FleetRouter(ShardFleet &fleet,
                         policy::FleetPlacementPolicy::Config cfg)
    : fleet_(fleet)
{
    std::vector<policy::UtilProbe> probes;
    probes.reserve(fleet_.deviceCount());
    for (std::size_t d = 0; d < fleet_.deviceCount(); ++d)
        probes.push_back(probeFor(d));
    policy_ = std::make_unique<policy::FleetPlacementPolicy>(
        std::move(probes), cfg);
    policy_->setDepthProbe(
        [this](std::size_t d) { return pendingDepth(d); });
    policy_->setVeto([this](std::size_t d) {
        return fleet_.shardFor(d).health().degraded.load(
            std::memory_order_relaxed);
    });
    pending_ =
        std::make_unique<std::atomic<std::size_t>[]>(fleet_.deviceCount());
    for (std::size_t d = 0; d < fleet_.deviceCount(); ++d)
        pending_[d].store(0, std::memory_order_relaxed);
}

policy::UtilProbe
FleetRouter::probeFor(std::size_t device)
{
    LakeShard *shard = &fleet_.shardFor(device);
    std::size_t local = fleet_.localIndex(device);
    // Starts pessimistic, same contract as core::Lake::nvmlProbe: until
    // a query succeeds the device reads as fully contended.
    auto last = std::make_shared<double>(100.0);
    return [shard, local, last](Nanos) {
        std::lock_guard<std::mutex> lock(shard->mu());
        if (shard->activate(local) != gpu::CuResult::Success)
            return *last;
        RemoteUtilization util;
        if (shard->lib().nvmlGetUtilization(&util) ==
            gpu::CuResult::Success)
            *last = static_cast<double>(util.gpu);
        return *last;
    };
}

policy::Placement
FleetRouter::placeFor(const std::string &key, const policy::PolicyInput &in)
{
    std::size_t sticky;
    {
        std::lock_guard<std::mutex> lock(mu_);
        auto it = keys_.find(key);
        if (it == keys_.end()) {
            // Round-robin initial stickiness spreads keys across the
            // fleet before any utilization differential exists.
            sticky = next_key_device_++ % fleet_.deviceCount();
            keys_.emplace(key, sticky);
        } else {
            sticky = it->second;
        }
    }
    // The policy takes its own mutex and its probes take shard
    // mutexes; the router map mutex is never held across this call.
    policy::Placement p = policy_->place(in, sticky);
    if (p.engine == policy::Engine::Gpu && p.device != sticky) {
        std::lock_guard<std::mutex> lock(mu_);
        keys_[key] = p.device;
        migrations_.fetch_add(1, std::memory_order_relaxed);
        auto &m = obs::Metrics::global();
        if (m.enabled())
            m.fleet_migrations.add();
    }
    return p;
}

std::unique_ptr<policy::ExecPolicy>
FleetRouter::policyFor(std::string key)
{
    return std::make_unique<RouterPolicy>(*this, std::move(key));
}

std::size_t
FleetRouter::lastPlacement(const std::string &key)
{
    std::lock_guard<std::mutex> lock(mu_);
    auto it = keys_.find(key);
    if (it != keys_.end())
        return it->second;
    std::size_t sticky = next_key_device_++ % fleet_.deviceCount();
    keys_.emplace(key, sticky);
    return sticky;
}

void
FleetRouter::noteDispatch(std::size_t device, std::size_t)
{
    pending_[device].fetch_add(1, std::memory_order_relaxed);
}

void
FleetRouter::noteDone(std::size_t device)
{
    pending_[device].fetch_sub(1, std::memory_order_relaxed);
}

std::size_t
FleetRouter::pendingDepth(std::size_t device) const
{
    return pending_[device].load(std::memory_order_relaxed);
}

void
FleetRouter::publishMetrics()
{
    auto &m = obs::Metrics::global();
    if (!m.enabled())
        return;
    m.counter("fleet.migrations").set(migrations());
    for (std::size_t d = 0; d < fleet_.deviceCount(); ++d) {
        std::string prefix = "fleet.dev" + std::to_string(d);
        m.gauge(prefix + ".util_permille")
            .set(static_cast<std::uint64_t>(
                policy_->smoothedUtilization(d) * 10.0));
        m.gauge(prefix + ".pending").set(pendingDepth(d));
        LakeShard &shard = fleet_.shardFor(d);
        m.counter(prefix + ".launches")
            .set(shard.device(fleet_.localIndex(d)).launches());
    }
}

} // namespace lake::remote
