#ifndef LAKE_REMOTE_WIRE_H
#define LAKE_REMOTE_WIRE_H

/**
 * @file
 * Wire format for LAKE commands.
 *
 * Every remoted call is "an API identifier and all of the API parameters
 * serialized into a command" (§4). The format is little-endian,
 * length-prefixed for variable fields, and versioned by the ApiId enum —
 * exactly enough structure for the stub/daemon pair, nothing more.
 *
 * Pipelined one-way traffic additionally uses a *batch* framing: one
 * channel message carrying N commands behind a magic word, a command
 * count, and a per-command u32 length prefix. The length prefixes mean
 * a garbled command body costs exactly that command — the decoder can
 * always find the next frame boundary.
 */

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

namespace lake::remote {

/** Identifiers of the APIs lakeLib exposes to kernel space. */
enum class ApiId : std::uint32_t
{
    // CUDA driver API (§6: "CUDA driver API version 11.0").
    CuMemAlloc = 1,
    CuMemFree,
    CuMemcpyHtoD,      //!< payload marshalled through the channel
    CuMemcpyDtoH,
    CuMemcpyHtoDShm,   //!< zero-copy: payload already in lakeShm
    CuMemcpyDtoHShm,
    CuMemcpyHtoDShmAsync,
    CuMemcpyDtoHShmAsync,
    CuLaunchKernel,
    CuStreamSynchronize,
    CuCtxSynchronize,

    // NVML (used by contention policies, §4.3).
    NvmlGetUtilization,

    // High-level APIs (§4.4) dispatch by registered name.
    HighLevelCall,

    /**
     * One-way cuMemFree, used by the pipelined fast path when
     * PipelineConfig::defer_frees is set: the free rides the pending
     * batch and a failure surfaces at the next synchronizing call
     * instead of paying its own doorbell round trip.
     */
    CuMemFreeAsync,
    /**
     * Selects the active device of a multi-device daemon (fleet
     * shards owning >1 device). Appended at the enum tail so every
     * pre-fleet ApiId keeps its wire value.
     */
    CuSetDevice,
};

/** Printable API name. */
const char *apiName(ApiId id);

/**
 * First u32 of a multi-command batch message. Far outside the ApiId
 * range, so a batch can never be misparsed as a single command (and
 * vice versa).
 */
constexpr std::uint32_t kBatchMagic = 0xB47C4D01u;

/** Serializes one command or response. */
class Encoder
{
  public:
    /** Appends a 32-bit little-endian value. */
    Encoder &u32(std::uint32_t v);
    /** Appends a 64-bit little-endian value. */
    Encoder &u64(std::uint64_t v);
    /** Appends a 32-bit float. */
    Encoder &f32(float v);
    /** Appends a length-prefixed byte block. */
    Encoder &bytes(const void *data, std::size_t n);
    /** Appends a length-prefixed UTF-8 string. */
    Encoder &str(const std::string &s);
    /** Appends raw bytes with no length prefix (batch frame bodies). */
    Encoder &raw(const void *data, std::size_t n);

    /** Takes the finished buffer (the encoder loses its capacity). */
    std::vector<std::uint8_t> take() { return std::move(buf_); }

    /**
     * Clears the buffer but keeps its capacity: a scratch encoder that
     * is reset between commands stops allocating once it has grown to
     * the steady-state command size.
     */
    void reset() { buf_.clear(); }

    /** Overwrites 4 already-encoded bytes at @p at (e.g. a count
     *  placeholder patched once the final value is known). */
    void patchU32(std::size_t at, std::uint32_t v);

    /** The encoded bytes, without giving up ownership. */
    const std::uint8_t *data() const { return buf_.data(); }
    /** Mutable view, for in-place seq restamping on retries. */
    std::uint8_t *data() { return buf_.data(); }
    /** Bytes encoded so far. */
    std::size_t size() const { return buf_.size(); }

  private:
    std::vector<std::uint8_t> buf_;
};

/** Deserializes one command or response; sticky failure on underrun. */
class Decoder
{
  public:
    /** @param buf serialized bytes (must outlive the decoder) */
    explicit Decoder(const std::vector<std::uint8_t> &buf)
        : data_(buf.data()), size_(buf.size())
    {}

    /** Decodes a sub-span (one frame of a batch message). */
    Decoder(const std::uint8_t *data, std::size_t size)
        : data_(data), size_(size)
    {}

    /** Reads a 32-bit value; 0 on underrun. */
    std::uint32_t u32();
    /** Reads a 64-bit value; 0 on underrun. */
    std::uint64_t u64();
    /** Reads a float; 0 on underrun. */
    float f32();
    /**
     * Reads a length-prefixed byte block without copying.
     * @return pointer into the buffer, and the length via @p n.
     */
    const std::uint8_t *bytes(std::size_t *n);
    /** Reads a length-prefixed string. */
    std::string str();
    /**
     * Consumes @p n raw bytes (a batch frame body whose u32 length was
     * already read). @return pointer into the buffer; nullptr on
     * underrun.
     */
    const std::uint8_t *raw(std::size_t n);

    /** False once any read ran past the end. */
    bool ok() const { return ok_; }
    /** True when all bytes were consumed. */
    bool atEnd() const { return pos_ == size_; }
    /** Bytes not yet consumed. */
    std::size_t remaining() const { return size_ - pos_; }

  private:
    bool need(std::size_t n);

    const std::uint8_t *data_;
    std::size_t size_;
    std::size_t pos_ = 0;
    bool ok_ = true;
};

/**
 * Builds a command buffer starting with the ApiId and a sequence number.
 */
Encoder makeCommand(ApiId id, std::uint32_t seq);

/** Parsed command prologue. */
struct CommandHead
{
    ApiId id;
    std::uint32_t seq;
};

/** Reads the prologue written by makeCommand. */
CommandHead readHead(Decoder &dec);

} // namespace lake::remote

#endif // LAKE_REMOTE_WIRE_H
