#ifndef LAKE_REMOTE_WIRE_H
#define LAKE_REMOTE_WIRE_H

/**
 * @file
 * Wire format for LAKE commands.
 *
 * Every remoted call is "an API identifier and all of the API parameters
 * serialized into a command" (§4). The format is little-endian,
 * length-prefixed for variable fields, and versioned by the ApiId enum —
 * exactly enough structure for the stub/daemon pair, nothing more.
 */

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

namespace lake::remote {

/** Identifiers of the APIs lakeLib exposes to kernel space. */
enum class ApiId : std::uint32_t
{
    // CUDA driver API (§6: "CUDA driver API version 11.0").
    CuMemAlloc = 1,
    CuMemFree,
    CuMemcpyHtoD,      //!< payload marshalled through the channel
    CuMemcpyDtoH,
    CuMemcpyHtoDShm,   //!< zero-copy: payload already in lakeShm
    CuMemcpyDtoHShm,
    CuMemcpyHtoDShmAsync,
    CuMemcpyDtoHShmAsync,
    CuLaunchKernel,
    CuStreamSynchronize,
    CuCtxSynchronize,

    // NVML (used by contention policies, §4.3).
    NvmlGetUtilization,

    // High-level APIs (§4.4) dispatch by registered name.
    HighLevelCall,
};

/** Printable API name. */
const char *apiName(ApiId id);

/** Serializes one command or response. */
class Encoder
{
  public:
    /** Appends a 32-bit little-endian value. */
    Encoder &u32(std::uint32_t v);
    /** Appends a 64-bit little-endian value. */
    Encoder &u64(std::uint64_t v);
    /** Appends a 32-bit float. */
    Encoder &f32(float v);
    /** Appends a length-prefixed byte block. */
    Encoder &bytes(const void *data, std::size_t n);
    /** Appends a length-prefixed UTF-8 string. */
    Encoder &str(const std::string &s);

    /** Takes the finished buffer. */
    std::vector<std::uint8_t> take() { return std::move(buf_); }
    /** Bytes encoded so far. */
    std::size_t size() const { return buf_.size(); }

  private:
    std::vector<std::uint8_t> buf_;
};

/** Deserializes one command or response; sticky failure on underrun. */
class Decoder
{
  public:
    /** @param buf serialized bytes (must outlive the decoder) */
    explicit Decoder(const std::vector<std::uint8_t> &buf)
        : data_(buf.data()), size_(buf.size())
    {}

    /** Reads a 32-bit value; 0 on underrun. */
    std::uint32_t u32();
    /** Reads a 64-bit value; 0 on underrun. */
    std::uint64_t u64();
    /** Reads a float; 0 on underrun. */
    float f32();
    /**
     * Reads a length-prefixed byte block without copying.
     * @return pointer into the buffer, and the length via @p n.
     */
    const std::uint8_t *bytes(std::size_t *n);
    /** Reads a length-prefixed string. */
    std::string str();

    /** False once any read ran past the end. */
    bool ok() const { return ok_; }
    /** True when all bytes were consumed. */
    bool atEnd() const { return pos_ == size_; }
    /** Bytes not yet consumed. */
    std::size_t remaining() const { return size_ - pos_; }

  private:
    bool need(std::size_t n);

    const std::uint8_t *data_;
    std::size_t size_;
    std::size_t pos_ = 0;
    bool ok_ = true;
};

/**
 * Builds a command buffer starting with the ApiId and a sequence number.
 */
Encoder makeCommand(ApiId id, std::uint32_t seq);

/** Parsed command prologue. */
struct CommandHead
{
    ApiId id;
    std::uint32_t seq;
};

/** Reads the prologue written by makeCommand. */
CommandHead readHead(Decoder &dec);

} // namespace lake::remote

#endif // LAKE_REMOTE_WIRE_H
