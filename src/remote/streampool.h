#ifndef LAKE_REMOTE_STREAMPOOL_H
#define LAKE_REMOTE_STREAMPOOL_H

/**
 * @file
 * StreamOrchestrator: streaming DMA orchestration over the remoting
 * fast path (DESIGN.md §10).
 *
 * PR 3 made commands cheap; the next ceiling is the data path itself:
 * every steady-state request still pays alloc -> HtoD -> kernel ->
 * DtoH -> free serially on stream 0, with a fresh lakeShm allocation
 * per transfer. This layer supplies the three missing mechanisms the
 * DMA-streaming literature prescribes as kernel-level orchestration:
 *
 *  - a recycling **buffer pool** carved from the ShmArena once at
 *    construction: fixed-size-class rings with O(1) acquire/release,
 *    so the steady-state path performs zero arena alloc/free calls
 *    and zero cuMemAlloc/cuMemFree RPCs;
 *  - **credit-based flow control**: each pooled buffer is a credit.
 *    When a producer outruns the device, acquire() blocks in virtual
 *    time by synchronizing the stream owning the oldest in-flight
 *    buffer (tryAcquire() sheds instead), so a burst can never exhaust
 *    the arena;
 *  - **multi-stream pipelining**: work round-robins across K
 *    gpu::StreamIds. Per-stream completion times are independent while
 *    the copy and compute engines serialize FIFO, so HtoD(i+1)
 *    overlaps kernel(i) overlaps DtoH(i-1) on the modeled timelines —
 *    plus scatter-gather submission (gatherIn) that coalesces many
 *    small feature vectors into one strided copy.
 *
 * Opt-in via core::LakeConfig.streaming; nothing here runs unless a
 * caller asks for it.
 */

#include <cstdint>
#include <vector>

#include "base/status.h"
#include "base/time.h"
#include "gpu/context.h"
#include "remote/lakelib.h"
#include "shm/arena.h"

namespace lake::remote {

/**
 * Streaming DMA knobs (core::LakeConfig.streaming; default off, so all
 * existing virtual-time numbers are unchanged unless a caller opts in).
 */
struct StreamingConfig
{
    /** Master switch; everything below is inert while false. */
    bool enabled = false;
    /** Streams to round-robin across (K >= 1). */
    std::uint32_t streams = 4;
    /**
     * Buffers per size class (the credit budget per class). Clamped up
     * to >= streams at construction: with fewer credits than streams,
     * a stalled acquire() would recycle a buffer whose stream the
     * caller has not synchronized — and therefore not read — yet.
     */
    std::size_t pool_buffers = 4;
    /** Capacity of the smallest size class, bytes. */
    std::size_t class_bytes = 64ull << 10;
    /** Size classes; class i holds buffers of class_bytes << i. */
    std::size_t size_classes = 3;

    /**
     * Environment overrides: LAKE_STREAMS, LAKE_POOL_BUFFERS,
     * LAKE_POOL_CLASS_BYTES. Explicit opt-in only — a bench calls this
     * when it wants its arms steerable without recompiling.
     */
    void applyEnv();
};

/**
 * Streaming DMA orchestrator bound to one LakeLib.
 *
 * Single-owner discipline (matching the kernel-side call sites): one
 * execution context drives acquire/stage/sync. Buffers staged in or
 * out become *in flight* on their stream and return to the free ring
 * when that stream synchronizes — including when the sync itself fails
 * (a dropped response must not leak the credit). After syncStream
 * returns, the caller may read retired buffers' shm contents until its
 * next acquire() of the same class ("read-after-sync window"). The
 * constructor clamps pool_buffers >= streams so a depth-1-per-stream
 * producer that harvests each stream before reusing it never trips a
 * credit stall — a stalled acquire() closes the window for buffers the
 * caller never had a chance to read.
 */
class StreamOrchestrator
{
  public:
    /** First StreamId used; stream 0 stays legacy default-stream. */
    static constexpr gpu::StreamId kStreamBase = 1;

    /** One pooled buffer (a slice of the arena carved at boot). */
    struct Buffer
    {
        shm::ShmOffset shm = shm::kNullOffset;
        std::size_t capacity = 0;
        std::uint32_t cls = 0;       //!< size class
        std::uint32_t slot = 0;      //!< global slot id
        bool held = false;           //!< acquired, not yet staged
        bool in_flight = false;      //!< staged, awaiting stream sync
        gpu::StreamId stream = 0;    //!< binding while in flight
        std::uint64_t stage_seq = 0; //!< stage order (oldest-first)
    };

    /** Lifetime counters (always maintained; obs mirrors them). */
    struct Stats
    {
        std::uint64_t acquires = 0;
        std::uint64_t releases = 0; //!< returns to the ring (all paths)
        std::uint64_t credit_stalls = 0;
        std::uint64_t sheds = 0;
        std::uint64_t gathers = 0;
        std::uint64_t gathered_vectors = 0;
        std::uint64_t stage_ins = 0;
        std::uint64_t stage_outs = 0;
        std::uint64_t syncs = 0;
        std::uint64_t sync_failures = 0;
        Nanos stalled_ns = 0; //!< virtual time blocked in credit stalls
    };

    /**
     * Carves the pool out of @p lib's arena (one allocation per
     * buffer, never repeated) and validates the configuration.
     */
    StreamOrchestrator(LakeLib &lib, Clock &clock, StreamingConfig cfg);

    /** Drains in-flight work and returns the carve-out to the arena. */
    ~StreamOrchestrator();

    StreamOrchestrator(const StreamOrchestrator &) = delete;
    StreamOrchestrator &operator=(const StreamOrchestrator &) = delete;

    /** Configuration in force. */
    const StreamingConfig &config() const { return cfg_; }
    /** Streams being round-robined. */
    std::uint32_t streams() const { return cfg_.streams; }

    /** Stream for pipeline position @p k (round-robin). */
    gpu::StreamId
    streamAt(std::uint64_t k) const
    {
        return kStreamBase + static_cast<gpu::StreamId>(k % cfg_.streams);
    }

    /** Next stream in round-robin order. */
    gpu::StreamId nextStream() { return streamAt(ticket_++); }

    /**
     * O(1) acquire of a buffer with capacity >= @p bytes from the
     * smallest sufficient size class. When the class ring is dry,
     * blocks in virtual time (credit stall): synchronizes the stream
     * owning the class's oldest in-flight buffer, which retires that
     * stream's buffers and replenishes the ring.
     * @return nullptr when no class fits @p bytes, or when the ring is
     *         dry with nothing in flight to wait for (the caller holds
     *         every credit).
     */
    Buffer *acquire(std::size_t bytes);

    /** Non-blocking acquire: sheds (returns nullptr) instead of
     *  stalling. */
    Buffer *tryAcquire(std::size_t bytes);

    /** Returns a held (never-staged) buffer to its ring. */
    void release(Buffer *b);

    /**
     * Posts one async HtoD of @p bytes from @p b to @p dst on stream
     * @p s and marks @p b in flight there. One-way: transport failures
     * surface at the next synchronizing call.
     */
    Status stageIn(Buffer *b, gpu::DevicePtr dst, std::size_t bytes,
                   gpu::StreamId s);

    /** Async DtoH from @p src into @p b on stream @p s. */
    Status stageOut(Buffer *b, gpu::DevicePtr src, std::size_t bytes,
                    gpu::StreamId s);

    /**
     * Scatter-gather submission: copies @p n small vectors into @p b
     * back to back (host bookkeeping, like all shm staging) and posts
     * ONE strided HtoD of their total size — the coalescing that turns
     * n tiny transfers into one.
     */
    Status gatherIn(Buffer *b, gpu::DevicePtr dst,
                    const void *const *srcs, const std::size_t *lens,
                    std::size_t n, gpu::StreamId s);

    /**
     * Synchronizes stream @p s and retires every buffer in flight on
     * it back to its free ring. Credits are released even when the
     * sync fails (degraded transport must not leak buffers); the
     * CuResult still reports the failure so callers can latch
     * degraded mode.
     */
    gpu::CuResult syncStream(gpu::StreamId s);

    /** Synchronizes every stream with in-flight buffers. */
    gpu::CuResult drain();

    /** Buffers currently in a free ring (pool occupancy). */
    std::size_t freeBuffers() const;
    /** Total pooled buffers across all classes. */
    std::size_t
    totalBuffers() const
    {
        return buffers_.size();
    }

    /** Lifetime counters. */
    const Stats &stats() const { return stats_; }

    /**
     * Mirrors the counters into obs::Metrics ("dma.*" families) and
     * refreshes the pool-occupancy gauges. Benches call it right
     * before exporting; a no-op while metrics are disabled.
     */
    void publishMetrics() const;

  private:
    /** Fixed-capacity FIFO ring of slot ids (one per size class). */
    struct Ring
    {
        std::vector<std::uint32_t> slots;
        std::size_t head = 0;
        std::size_t count = 0;
    };

    /** Smallest class whose capacity fits @p bytes; -1 when none. */
    int classFor(std::size_t bytes) const;

    /** Pops a free slot from @p cls (must be non-empty). */
    Buffer *popFree(int cls);

    /** Pushes @p slot back onto its class ring. */
    void pushFree(std::uint32_t slot);

    /** Marks @p b in flight on @p s (stage bookkeeping). */
    void bind(Buffer *b, gpu::StreamId s);

    /** Refreshes the pool-occupancy gauge (when metrics enabled). */
    void updateGauge() const;

    LakeLib &lib_;
    shm::ShmArena &arena_;
    Clock &clock_;
    StreamingConfig cfg_;

    std::vector<Buffer> buffers_;
    std::vector<Ring> rings_; //!< one per size class
    std::uint64_t ticket_ = 0;
    std::uint64_t next_stage_seq_ = 1;
    /** Virtual time each stream's current sync window opened. */
    std::vector<Nanos> window_start_;

    Stats stats_;
};

} // namespace lake::remote

#endif // LAKE_REMOTE_STREAMPOOL_H
