#ifndef LAKE_REMOTE_LAKELIB_H
#define LAKE_REMOTE_LAKELIB_H

/**
 * @file
 * lakeLib: the kernel-side API provider.
 *
 * "lakeLib is a kernel module that exposes APIs such as the vendor's
 * user space library of an accelerator as symbols to kernel space"
 * (§4). Each method here is one exported symbol: it serializes an API
 * identifier plus parameters into a command, ships it over the channel,
 * rings the doorbell that wakes lakeD, and blocks (in virtual time) on
 * the response.
 *
 * Bulk data has two paths, matching §4.1's operation classes:
 *  - *marshalled*: the buffer rides inside the command and is copied at
 *    each boundary — the "extra data copies" LAKE exists to avoid;
 *  - *shm* (copiable memory allocations): the buffer lives in lakeShm
 *    and only its offset crosses, the zero-copy fast path.
 */

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "base/status.h"
#include "base/time.h"
#include "channel/channel.h"
#include "gpu/device.h"
#include "gpu/kernels.h"
#include "remote/wire.h"
#include "shm/arena.h"

namespace lake::remote {

/** GPU utilization pair returned by the remoted NVML query. */
struct RemoteUtilization
{
    float gpu = 0.0f;
    float memory = 0.0f;
};

/**
 * Bounded retry-with-backoff for *idempotent* remoted calls.
 *
 * Only calls whose re-execution is harmless retry (memcpys, NVML
 * queries); allocation and synchronization calls fail fast because a
 * lost response leaves daemon-side state the kernel cannot see.
 */
struct RetryPolicy
{
    /** Total attempts, including the first (1 = never retry). */
    std::uint32_t max_attempts = 1;
    /** Virtual-time wait before the first retry. */
    Nanos backoff = 100_us;
    /** Backoff growth factor per further retry. */
    double multiplier = 2.0;
};

/**
 * Opt-in command pipelining (NVMe-style doorbell coalescing; the AvA
 * batching insight applied to LAKE's one-way traffic).
 *
 * When enabled, one-way commands — kernel launches, async shm memcpys,
 * and (optionally) deferred frees — are queued locally and shipped as a
 * single multi-command batch message at the next flush point: a
 * synchronizing call, any two-way RPC, @ref max_batch queued commands,
 * or an explicit LakeLib::flush(). One doorbell and one channel
 * message then amortize over the whole batch.
 *
 * Default off: the fast path changes no virtual-time number unless a
 * caller asks for it.
 *
 * Failure semantics (DESIGN.md §6): a batch is one message, lost or
 * delivered as a unit. Its contents are one-way and non-idempotent, so
 * per the RetryPolicy rules it is never re-sent — exactly like an
 * unbatched one-way post, loss surfaces (if at all) at the next
 * synchronizing call, which *does* time out, count faults, and latch
 * degraded mode when the transport is down.
 */
struct PipelineConfig
{
    /** Master switch; everything below is inert while false. */
    bool enabled = false;
    /** Queued one-way commands that force a flush (min 1). */
    std::size_t max_batch = 16;
    /**
     * Route cuMemFree through the batch as a one-way deferred free.
     * The call then returns Success immediately and a daemon-side
     * failure surfaces at the next synchronizing call.
     */
    bool defer_frees = false;
};

/**
 * Kernel-space stub library.
 */
class LakeLib
{
  public:
    /**
     * Wakes the daemon to drain the command queue. In the real system
     * this is the Netlink doorbell; here the LAKE core wires it to
     * LakeDaemon::processPending so the synchronous RPC completes
     * within the caller's turn.
     */
    using Doorbell = std::function<void()>;

    /**
     * Invoked with the final outcome of every round-trip RPC —
     * Status::ok() on success, the transport error otherwise (after
     * retries are exhausted). The LAKE core uses it to latch degraded
     * mode after repeated failures.
     */
    using FailureObserver = std::function<void(const Status &)>;

    /** Round trips a response may take before the caller gives up. */
    static constexpr Nanos kTimeoutRounds = 4;

    /**
     * @param chan     command channel shared with lakeD
     * @param arena    lakeShm region
     * @param doorbell daemon wakeup
     */
    LakeLib(channel::Channel &chan, shm::ShmArena &arena,
            Doorbell doorbell);

    /// @name CUDA driver API exported to kernel space
    /// @{

    /** cuMemAlloc. */
    gpu::CuResult cuMemAlloc(gpu::DevicePtr *out, std::size_t bytes);
    /** cuMemFree. */
    gpu::CuResult cuMemFree(gpu::DevicePtr ptr);

    /** cuMemcpyHtoD from an ordinary kernel buffer (marshalled). */
    gpu::CuResult cuMemcpyHtoD(gpu::DevicePtr dst, const void *src,
                               std::size_t bytes);
    /** cuMemcpyDtoH into an ordinary kernel buffer (marshalled). */
    gpu::CuResult cuMemcpyDtoH(void *dst, gpu::DevicePtr src,
                               std::size_t bytes);

    /** cuMemcpyHtoD from a lakeShm buffer (zero-copy). */
    gpu::CuResult cuMemcpyHtoDShm(gpu::DevicePtr dst, shm::ShmOffset src,
                                  std::size_t bytes);
    /** cuMemcpyDtoH into a lakeShm buffer (zero-copy). */
    gpu::CuResult cuMemcpyDtoHShm(shm::ShmOffset dst, gpu::DevicePtr src,
                                  std::size_t bytes);
    /**
     * Async HtoD from lakeShm on @p stream. One-way command: always
     * returns Success; failures surface at the next synchronizing call.
     */
    gpu::CuResult cuMemcpyHtoDShmAsync(gpu::DevicePtr dst,
                                       shm::ShmOffset src,
                                       std::size_t bytes,
                                       std::uint32_t stream);
    /** Async DtoH into lakeShm on @p stream (one-way, like HtoD). */
    gpu::CuResult cuMemcpyDtoHShmAsync(shm::ShmOffset dst,
                                       gpu::DevicePtr src,
                                       std::size_t bytes,
                                       std::uint32_t stream);

    /**
     * cuLaunchKernel. One-way: always returns Success; launch failures
     * (unknown kernel, bad pointers) are reported by the next
     * synchronizing call, matching CUDA's asynchronous-error contract.
     */
    gpu::CuResult cuLaunchKernel(const gpu::LaunchConfig &cfg,
                                 std::uint32_t stream = 0);
    /** cuStreamSynchronize. */
    gpu::CuResult cuStreamSynchronize(std::uint32_t stream);
    /** cuCtxSynchronize. */
    gpu::CuResult cuCtxSynchronize();

    /**
     * cuSetDevice: selects which of a multi-device daemon's devices
     * subsequent commands execute on. Single-device stacks never call
     * this (remote::LakeShard elides the no-op switch), keeping their
     * wire traffic bit-identical to the pre-fleet protocol.
     */
    gpu::CuResult cuSetDevice(std::uint32_t device);

    /// @}

    /** Remoted nvmlDeviceGetUtilizationRates. */
    gpu::CuResult nvmlGetUtilization(RemoteUtilization *out);

    /**
     * Invokes a high-level API (§4.4) by name with opaque arguments.
     * @param idempotent true when the handler may safely re-execute;
     *        enables the retry policy for this call
     * @return the handler's response payload on success.
     */
    Result<std::vector<std::uint8_t>>
    highLevelCall(const std::string &name,
                  const std::vector<std::uint8_t> &args,
                  bool idempotent = false);

    /** The lakeShm arena (kernel code allocates staging buffers here). */
    shm::ShmArena &arena() { return arena_; }

    /** Installs the retry policy for idempotent calls. */
    void setRetryPolicy(RetryPolicy p) { retry_ = p; }
    /** Retry policy in force. */
    const RetryPolicy &retryPolicy() const { return retry_; }

    /**
     * Installs the pipelining configuration. Flushes any pending batch
     * first, so reconfiguration never strands queued commands.
     */
    void setPipeline(PipelineConfig p);
    /** Pipeline configuration in force. */
    const PipelineConfig &pipeline() const { return pipeline_; }

    /**
     * Ships the pending one-way batch (if any) as one channel message
     * and rings the doorbell once. No-op when nothing is queued.
     */
    void flush();

    /** One-way commands queued but not yet flushed. */
    std::size_t pendingBatched() const { return batch_pending_; }

    /** Installs (or clears, with nullptr) the RPC outcome observer. */
    void setFailureObserver(FailureObserver obs);

    /**
     * Virtual-time deadline after which a missing response counts as
     * lost: a few CostModel round trips plus the doorbell latency.
     */
    Nanos responseTimeout(std::size_t cmd_bytes) const;

    /** Remoted calls issued since construction (retries included). */
    std::uint64_t calls() const { return calls_; }
    /** Bytes marshalled through command payloads (not shm). */
    std::uint64_t bytesMarshalled() const { return bytes_marshalled_; }
    /** Failed RPC attempts observed (timeouts, corrupt responses). */
    std::uint64_t faultsSeen() const { return faults_seen_; }
    /** Retry attempts issued by the retry policy. */
    std::uint64_t retries() const { return retries_; }
    /** Doorbell rings since construction (the coalescing win). */
    std::uint64_t doorbells() const { return doorbells_; }
    /** Batch messages flushed by the pipeline. */
    std::uint64_t batchesFlushed() const { return batches_flushed_; }
    /** One-way commands that rode a batch instead of their own
     *  message. */
    std::uint64_t commandsBatched() const { return commands_batched_; }

    /**
     * Mirrors the counters above into the obs::Metrics registry under
     * "remote.*" names (the RemoteStats facade). Cheap; benches call
     * it right before exporting metrics.
     */
    void publishMetrics() const;

  private:
    /**
     * Starts a command in the reusable scratch encoder: resets it and
     * writes the ApiId + a fresh seq. Every stub encodes through this,
     * so steady-state traffic allocates nothing on the send side.
     */
    Encoder &begin(ApiId id);

    /**
     * Sends the scratch command (retrying per policy when
     * @p idempotent), wakes the daemon, and returns the response
     * positioned after the verified sequence echo — or the transport
     * error the caller must handle: seq mismatch, short/garbled
     * response, or timeout. Flushes the pending batch first so queued
     * one-way commands execute before this call, in submission order.
     */
    Result<std::vector<std::uint8_t>> rpc(bool idempotent);

    /** One send/receive attempt of rpc, no retries. */
    Result<std::vector<std::uint8_t>> attempt(std::uint32_t seq);

    /** Runs an RPC whose response is just a status code. */
    gpu::CuResult statusRpc(bool idempotent);

    /**
     * Ships the scratch command one-way: queued into the pending batch
     * when pipelining is on (flushing at max_batch), sent as its own
     * message + doorbell otherwise.
     */
    void post();

    /** Rings the daemon doorbell (counted). */
    void ring();

    /** Reports an RPC outcome to the observer (when installed). */
    void observe(const Status &s);

    /**
     * Records a response that echoed the right seq but failed to
     * decode — counted as a fault and reported to the observer, since
     * a garbling transport is as unhealthy as a dropping one.
     */
    gpu::CuResult garbled(const char *what);

    channel::Channel &chan_;
    shm::ShmArena &arena_;
    Doorbell doorbell_;
    RetryPolicy retry_;
    PipelineConfig pipeline_;
    FailureObserver observer_;

    /** Scratch encoder for the command being built (reset per call). */
    Encoder cmd_enc_;
    /**
     * Pending batch: kBatchMagic, a count placeholder patched at
     * flush, then the queued frames. Reset (capacity retained) after
     * every flush.
     */
    Encoder batch_enc_;
    std::size_t batch_pending_ = 0;

    /** ApiId of the command in the scratch encoder (set by begin()). */
    std::uint32_t cur_api_ = 0;
    /** Display name matching cur_api_ (borrowed literal). */
    const char *cur_api_name_ = "?";

    std::uint32_t next_seq_ = 1;
    std::uint64_t calls_ = 0;
    std::uint64_t bytes_marshalled_ = 0;
    std::uint64_t faults_seen_ = 0;
    std::uint64_t retries_ = 0;
    std::uint64_t doorbells_ = 0;
    std::uint64_t batches_flushed_ = 0;
    std::uint64_t commands_batched_ = 0;
};

} // namespace lake::remote

#endif // LAKE_REMOTE_LAKELIB_H
