#ifndef LAKE_REMOTE_LAKELIB_H
#define LAKE_REMOTE_LAKELIB_H

/**
 * @file
 * lakeLib: the kernel-side API provider.
 *
 * "lakeLib is a kernel module that exposes APIs such as the vendor's
 * user space library of an accelerator as symbols to kernel space"
 * (§4). Each method here is one exported symbol: it serializes an API
 * identifier plus parameters into a command, ships it over the channel,
 * rings the doorbell that wakes lakeD, and blocks (in virtual time) on
 * the response.
 *
 * Bulk data has two paths, matching §4.1's operation classes:
 *  - *marshalled*: the buffer rides inside the command and is copied at
 *    each boundary — the "extra data copies" LAKE exists to avoid;
 *  - *shm* (copiable memory allocations): the buffer lives in lakeShm
 *    and only its offset crosses, the zero-copy fast path.
 */

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "base/status.h"
#include "base/time.h"
#include "channel/channel.h"
#include "gpu/device.h"
#include "gpu/kernels.h"
#include "shm/arena.h"

namespace lake::remote {

/** GPU utilization pair returned by the remoted NVML query. */
struct RemoteUtilization
{
    float gpu = 0.0f;
    float memory = 0.0f;
};

/**
 * Kernel-space stub library.
 */
class LakeLib
{
  public:
    /**
     * Wakes the daemon to drain the command queue. In the real system
     * this is the Netlink doorbell; here the LAKE core wires it to
     * LakeDaemon::processPending so the synchronous RPC completes
     * within the caller's turn.
     */
    using Doorbell = std::function<void()>;

    /**
     * @param chan     command channel shared with lakeD
     * @param arena    lakeShm region
     * @param doorbell daemon wakeup
     */
    LakeLib(channel::Channel &chan, shm::ShmArena &arena,
            Doorbell doorbell);

    /// @name CUDA driver API exported to kernel space
    /// @{

    /** cuMemAlloc. */
    gpu::CuResult cuMemAlloc(gpu::DevicePtr *out, std::size_t bytes);
    /** cuMemFree. */
    gpu::CuResult cuMemFree(gpu::DevicePtr ptr);

    /** cuMemcpyHtoD from an ordinary kernel buffer (marshalled). */
    gpu::CuResult cuMemcpyHtoD(gpu::DevicePtr dst, const void *src,
                               std::size_t bytes);
    /** cuMemcpyDtoH into an ordinary kernel buffer (marshalled). */
    gpu::CuResult cuMemcpyDtoH(void *dst, gpu::DevicePtr src,
                               std::size_t bytes);

    /** cuMemcpyHtoD from a lakeShm buffer (zero-copy). */
    gpu::CuResult cuMemcpyHtoDShm(gpu::DevicePtr dst, shm::ShmOffset src,
                                  std::size_t bytes);
    /** cuMemcpyDtoH into a lakeShm buffer (zero-copy). */
    gpu::CuResult cuMemcpyDtoHShm(shm::ShmOffset dst, gpu::DevicePtr src,
                                  std::size_t bytes);
    /**
     * Async HtoD from lakeShm on @p stream. One-way command: always
     * returns Success; failures surface at the next synchronizing call.
     */
    gpu::CuResult cuMemcpyHtoDShmAsync(gpu::DevicePtr dst,
                                       shm::ShmOffset src,
                                       std::size_t bytes,
                                       std::uint32_t stream);
    /** Async DtoH into lakeShm on @p stream (one-way, like HtoD). */
    gpu::CuResult cuMemcpyDtoHShmAsync(shm::ShmOffset dst,
                                       gpu::DevicePtr src,
                                       std::size_t bytes,
                                       std::uint32_t stream);

    /**
     * cuLaunchKernel. One-way: always returns Success; launch failures
     * (unknown kernel, bad pointers) are reported by the next
     * synchronizing call, matching CUDA's asynchronous-error contract.
     */
    gpu::CuResult cuLaunchKernel(const gpu::LaunchConfig &cfg,
                                 std::uint32_t stream = 0);
    /** cuStreamSynchronize. */
    gpu::CuResult cuStreamSynchronize(std::uint32_t stream);
    /** cuCtxSynchronize. */
    gpu::CuResult cuCtxSynchronize();

    /// @}

    /** Remoted nvmlDeviceGetUtilizationRates. */
    gpu::CuResult nvmlGetUtilization(RemoteUtilization *out);

    /**
     * Invokes a high-level API (§4.4) by name with opaque arguments.
     * @return the handler's response payload on success.
     */
    Result<std::vector<std::uint8_t>>
    highLevelCall(const std::string &name,
                  const std::vector<std::uint8_t> &args);

    /** The lakeShm arena (kernel code allocates staging buffers here). */
    shm::ShmArena &arena() { return arena_; }

    /** Remoted calls issued since construction. */
    std::uint64_t calls() const { return calls_; }
    /** Bytes marshalled through command payloads (not shm). */
    std::uint64_t bytesMarshalled() const { return bytes_marshalled_; }

  private:
    /**
     * Sends one command, wakes the daemon, and returns the response
     * body positioned after the verified sequence echo.
     */
    std::vector<std::uint8_t> rpc(std::vector<std::uint8_t> cmd);

    /** Runs an RPC whose response is just a status code. */
    gpu::CuResult statusRpc(std::vector<std::uint8_t> cmd);

    /** Sends a one-way command (no response expected). */
    void post(std::vector<std::uint8_t> cmd);

    channel::Channel &chan_;
    shm::ShmArena &arena_;
    Doorbell doorbell_;
    std::uint32_t next_seq_ = 1;
    std::uint64_t calls_ = 0;
    std::uint64_t bytes_marshalled_ = 0;
};

} // namespace lake::remote

#endif // LAKE_REMOTE_LAKELIB_H
