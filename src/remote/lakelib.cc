#include "remote/lakelib.h"

#include <algorithm>
#include <cstring>
#include <utility>

#include "base/logging.h"
#include "remote/wire.h"

namespace lake::remote {

using gpu::CuResult;
using gpu::DevicePtr;

namespace {

/** Validates a wire status code; garbled values become Unavailable. */
CuResult
toCuResult(std::uint32_t code)
{
    if (code > static_cast<std::uint32_t>(CuResult::Unavailable))
        return CuResult::Unavailable;
    return static_cast<CuResult>(code);
}

/** Reads the seq a makeCommand buffer carries at bytes [4, 8). */
std::uint32_t
seqOf(const std::vector<std::uint8_t> &cmd)
{
    std::uint32_t seq = 0;
    for (int i = 0; i < 4; ++i)
        seq |= static_cast<std::uint32_t>(cmd[4 + i]) << (8 * i);
    return seq;
}

/** Overwrites the seq in a makeCommand buffer (fresh seq per retry). */
void
patchSeq(std::vector<std::uint8_t> &cmd, std::uint32_t seq)
{
    for (int i = 0; i < 4; ++i)
        cmd[4 + i] = static_cast<std::uint8_t>(seq >> (8 * i));
}

} // namespace

LakeLib::LakeLib(channel::Channel &chan, shm::ShmArena &arena,
                 Doorbell doorbell)
    : chan_(chan), arena_(arena), doorbell_(std::move(doorbell))
{
    LAKE_ASSERT(doorbell_ != nullptr, "lakeLib requires a doorbell");
}

void
LakeLib::setFailureObserver(FailureObserver obs)
{
    observer_ = std::move(obs);
}

void
LakeLib::observe(const Status &s)
{
    if (observer_)
        observer_(s);
}

CuResult
LakeLib::garbled(const char *what)
{
    ++faults_seen_;
    observe(Status(Code::Unavailable, what));
    return CuResult::Unavailable;
}

Nanos
LakeLib::responseTimeout(std::size_t cmd_bytes) const
{
    const channel::CostModel &m = chan_.model();
    return kTimeoutRounds *
           (chan_.roundTripCost(cmd_bytes, m.bulk_threshold) +
            m.doorbell_latency);
}

Result<std::vector<std::uint8_t>>
LakeLib::attempt(const std::vector<std::uint8_t> &cmd, std::uint32_t seq)
{
    using Dir = channel::Channel::Dir;
    ++calls_;
    chan_.send(Dir::KernelToUser, cmd); // keep cmd: retries resend it
    doorbell_();

    // Drain until our echo appears: under faults the queue may hold
    // duplicates or responses whose matching command attempt timed out.
    while (true) {
        std::optional<std::vector<std::uint8_t>> resp =
            chan_.tryRecv(Dir::UserToKernel);
        if (!resp) {
            // Nothing will ever arrive — the command or its response
            // was lost. Model the caller blocking out its deadline.
            chan_.clock().advance(responseTimeout(cmd.size()));
            return Result<std::vector<std::uint8_t>>(
                Status(Code::Unavailable,
                       detail::format("rpc seq %u: response timeout",
                                      seq)));
        }
        if (resp->size() < 4)
            continue; // too short to carry an echo: corrupt, discard
        std::uint32_t echo = 0;
        std::memcpy(&echo, resp->data(), sizeof(echo));
        if (echo == seq)
            return Result<std::vector<std::uint8_t>>(std::move(*resp));
        // Stale or corrupted-seq response: discard and keep draining.
    }
}

Result<std::vector<std::uint8_t>>
LakeLib::rpc(std::vector<std::uint8_t> cmd, bool idempotent)
{
    std::uint32_t attempts =
        idempotent ? std::max<std::uint32_t>(1, retry_.max_attempts) : 1;
    Nanos backoff = retry_.backoff;

    Status last;
    for (std::uint32_t a = 0; a < attempts; ++a) {
        if (a > 0) {
            ++retries_;
            // Back off in virtual time, and stamp a fresh seq so a
            // late response to a previous attempt can never satisfy
            // this one.
            chan_.clock().advance(backoff);
            backoff = static_cast<Nanos>(static_cast<double>(backoff) *
                                         retry_.multiplier);
            patchSeq(cmd, next_seq_++);
        }
        Result<std::vector<std::uint8_t>> r = attempt(cmd, seqOf(cmd));
        if (r.isOk()) {
            // Success is reported by the caller once the response body
            // also decodes; a seq-valid but garbled payload must count
            // as a transport failure, not a success.
            return r;
        }
        ++faults_seen_;
        last = r.status();
    }
    observe(last);
    return Result<std::vector<std::uint8_t>>(std::move(last));
}

gpu::CuResult
LakeLib::statusRpc(std::vector<std::uint8_t> cmd, bool idempotent)
{
    Result<std::vector<std::uint8_t>> r = rpc(std::move(cmd), idempotent);
    if (!r.isOk())
        return CuResult::Unavailable;
    Decoder dec(r.value());
    dec.u32(); // seq echo
    std::uint32_t code = dec.u32();
    if (!dec.ok())
        return garbled("rpc: truncated status response");
    observe(Status::ok());
    return toCuResult(code);
}

void
LakeLib::post(std::vector<std::uint8_t> cmd)
{
    // One-way command: failures surface at the next synchronizing call
    // (CUDA's asynchronous-error contract), so no response is awaited —
    // the caller only pays the send-side cost.
    ++calls_;
    chan_.send(channel::Channel::Dir::KernelToUser, std::move(cmd));
    doorbell_();
}

CuResult
LakeLib::cuMemAlloc(DevicePtr *out, std::size_t bytes)
{
    if (out == nullptr)
        return CuResult::InvalidValue;
    Encoder cmd = makeCommand(ApiId::CuMemAlloc, next_seq_++);
    cmd.u64(bytes);
    // Not idempotent: a lost response would leak the daemon-side block.
    auto r = rpc(cmd.take(), /*idempotent=*/false);
    if (!r.isOk())
        return CuResult::Unavailable;
    Decoder dec(r.value());
    dec.u32(); // seq
    CuResult res = toCuResult(dec.u32());
    DevicePtr ptr = dec.u64();
    if (!dec.ok())
        return garbled("cuMemAlloc: garbled response");
    observe(Status::ok());
    *out = ptr;
    return res;
}

CuResult
LakeLib::cuMemFree(DevicePtr ptr)
{
    Encoder cmd = makeCommand(ApiId::CuMemFree, next_seq_++);
    cmd.u64(ptr);
    // Not idempotent: the block may have been re-handed-out meanwhile.
    return statusRpc(cmd.take(), /*idempotent=*/false);
}

CuResult
LakeLib::cuMemcpyHtoD(DevicePtr dst, const void *src, std::size_t bytes)
{
    if (src == nullptr)
        return CuResult::InvalidValue;
    // Marshalled: the payload is copied into the command and again out
    // of it in lakeD — the double buffering §3 calls out.
    bytes_marshalled_ += bytes;
    Encoder cmd = makeCommand(ApiId::CuMemcpyHtoD, next_seq_++);
    cmd.u64(dst).bytes(src, bytes);
    return statusRpc(cmd.take(), /*idempotent=*/true);
}

CuResult
LakeLib::cuMemcpyDtoH(void *dst, DevicePtr src, std::size_t bytes)
{
    if (dst == nullptr)
        return CuResult::InvalidValue;
    bytes_marshalled_ += bytes;
    Encoder cmd = makeCommand(ApiId::CuMemcpyDtoH, next_seq_++);
    cmd.u64(src).u64(bytes);
    auto r = rpc(cmd.take(), /*idempotent=*/true);
    if (!r.isOk())
        return CuResult::Unavailable;
    Decoder dec(r.value());
    dec.u32(); // seq
    CuResult res = toCuResult(dec.u32());
    std::size_t n = 0;
    const std::uint8_t *data = dec.bytes(&n);
    if (res == CuResult::Success) {
        if (!dec.ok() || n != bytes || data == nullptr)
            return garbled("cuMemcpyDtoH: garbled payload");
        std::memcpy(dst, data, n);
    }
    observe(Status::ok());
    return res;
}

CuResult
LakeLib::cuMemcpyHtoDShm(DevicePtr dst, shm::ShmOffset src,
                         std::size_t bytes)
{
    Encoder cmd = makeCommand(ApiId::CuMemcpyHtoDShm, next_seq_++);
    cmd.u64(dst).u64(src).u64(bytes).u32(0);
    return statusRpc(cmd.take(), /*idempotent=*/true);
}

CuResult
LakeLib::cuMemcpyDtoHShm(shm::ShmOffset dst, DevicePtr src,
                         std::size_t bytes)
{
    Encoder cmd = makeCommand(ApiId::CuMemcpyDtoHShm, next_seq_++);
    cmd.u64(src).u64(dst).u64(bytes).u32(0);
    return statusRpc(cmd.take(), /*idempotent=*/true);
}

CuResult
LakeLib::cuMemcpyHtoDShmAsync(DevicePtr dst, shm::ShmOffset src,
                              std::size_t bytes, std::uint32_t stream)
{
    Encoder cmd = makeCommand(ApiId::CuMemcpyHtoDShmAsync, next_seq_++);
    cmd.u64(dst).u64(src).u64(bytes).u32(stream);
    post(cmd.take());
    return CuResult::Success;
}

CuResult
LakeLib::cuMemcpyDtoHShmAsync(shm::ShmOffset dst, DevicePtr src,
                              std::size_t bytes, std::uint32_t stream)
{
    Encoder cmd = makeCommand(ApiId::CuMemcpyDtoHShmAsync, next_seq_++);
    cmd.u64(src).u64(dst).u64(bytes).u32(stream);
    post(cmd.take());
    return CuResult::Success;
}

CuResult
LakeLib::cuLaunchKernel(const gpu::LaunchConfig &cfg, std::uint32_t stream)
{
    Encoder cmd = makeCommand(ApiId::CuLaunchKernel, next_seq_++);
    cmd.str(cfg.kernel);
    cmd.u32(cfg.grid_x).u32(cfg.block_x);
    cmd.u32(static_cast<std::uint32_t>(cfg.args.size()));
    for (std::uint64_t a : cfg.args)
        cmd.u64(a);
    cmd.u32(stream);
    post(cmd.take());
    return CuResult::Success;
}

CuResult
LakeLib::cuStreamSynchronize(std::uint32_t stream)
{
    Encoder cmd = makeCommand(ApiId::CuStreamSynchronize, next_seq_++);
    cmd.u32(stream);
    // Not idempotent: the sync drains the deferred-error slot, so a
    // retried sync could silently swallow an async failure report.
    return statusRpc(cmd.take(), /*idempotent=*/false);
}

CuResult
LakeLib::cuCtxSynchronize()
{
    Encoder cmd = makeCommand(ApiId::CuCtxSynchronize, next_seq_++);
    return statusRpc(cmd.take(), /*idempotent=*/false);
}

CuResult
LakeLib::nvmlGetUtilization(RemoteUtilization *out)
{
    if (out == nullptr)
        return CuResult::InvalidValue;
    Encoder cmd = makeCommand(ApiId::NvmlGetUtilization, next_seq_++);
    auto r = rpc(cmd.take(), /*idempotent=*/true);
    if (!r.isOk())
        return CuResult::Unavailable;
    Decoder dec(r.value());
    dec.u32(); // seq
    CuResult res = toCuResult(dec.u32());
    float gpu_util = dec.f32();
    float mem_util = dec.f32();
    if (!dec.ok())
        return garbled("nvmlGetUtilization: garbled response");
    observe(Status::ok());
    out->gpu = gpu_util;
    out->memory = mem_util;
    return res;
}

Result<std::vector<std::uint8_t>>
LakeLib::highLevelCall(const std::string &name,
                       const std::vector<std::uint8_t> &args,
                       bool idempotent)
{
    Encoder cmd = makeCommand(ApiId::HighLevelCall, next_seq_++);
    cmd.str(name);
    // Args ride verbatim after the name; the handler owns their format.
    std::vector<std::uint8_t> buf = cmd.take();
    buf.insert(buf.end(), args.begin(), args.end());

    auto rpc_result = rpc(std::move(buf), idempotent);
    if (!rpc_result.isOk())
        return rpc_result; // transport error, already a Status
    const std::vector<std::uint8_t> &resp = rpc_result.value();
    Decoder dec(resp);
    dec.u32(); // seq
    std::uint32_t code = dec.u32();
    if (!dec.ok()) {
        Status s(Code::Unavailable, std::string("high-level API '") +
                                        name + "': truncated response");
        ++faults_seen_;
        observe(s);
        return Result<std::vector<std::uint8_t>>(std::move(s));
    }
    observe(Status::ok());
    CuResult r = toCuResult(code);
    if (r != CuResult::Success) {
        Code c = r == CuResult::Unavailable ? Code::Unavailable
                                            : Code::NotFound;
        return Result<std::vector<std::uint8_t>>(
            Status(c, std::string("high-level API '") + name +
                          "' failed: " + cuResultName(r)));
    }
    // Hand back the remainder of the response after seq + status.
    std::vector<std::uint8_t> payload(resp.begin() + 8, resp.end());
    return Result<std::vector<std::uint8_t>>(std::move(payload));
}

} // namespace lake::remote
