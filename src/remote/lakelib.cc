#include "remote/lakelib.h"

#include <algorithm>
#include <cstring>
#include <utility>

#include "base/logging.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace lake::remote {

using gpu::CuResult;
using gpu::DevicePtr;

namespace {

/** Validates a wire status code; garbled values become Unavailable. */
CuResult
toCuResult(std::uint32_t code)
{
    if (code > static_cast<std::uint32_t>(CuResult::Unavailable))
        return CuResult::Unavailable;
    return static_cast<CuResult>(code);
}

/** Reads the seq a makeCommand buffer carries at bytes [4, 8). */
std::uint32_t
seqOf(const Encoder &cmd)
{
    std::uint32_t seq = 0;
    for (int i = 0; i < 4; ++i)
        seq |= static_cast<std::uint32_t>(cmd.data()[4 + i]) << (8 * i);
    return seq;
}

} // namespace

LakeLib::LakeLib(channel::Channel &chan, shm::ShmArena &arena,
                 Doorbell doorbell)
    : chan_(chan), arena_(arena), doorbell_(std::move(doorbell))
{
    LAKE_ASSERT(doorbell_ != nullptr, "lakeLib requires a doorbell");
}

void
LakeLib::setFailureObserver(FailureObserver obs)
{
    observer_ = std::move(obs);
}

void
LakeLib::setPipeline(PipelineConfig p)
{
    flush();
    pipeline_ = p;
    if (pipeline_.max_batch == 0)
        pipeline_.max_batch = 1;
}

void
LakeLib::observe(const Status &s)
{
    if (observer_)
        observer_(s);
}

CuResult
LakeLib::garbled(const char *what)
{
    ++faults_seen_;
    observe(Status(Code::Unavailable, what));
    return CuResult::Unavailable;
}

Nanos
LakeLib::responseTimeout(std::size_t cmd_bytes) const
{
    const channel::CostModel &m = chan_.model();
    return kTimeoutRounds *
           (chan_.roundTripCost(cmd_bytes, m.bulk_threshold) +
            m.doorbell_latency);
}

Encoder &
LakeLib::begin(ApiId id)
{
    cmd_enc_.reset();
    cmd_enc_.u32(static_cast<std::uint32_t>(id)).u32(next_seq_++);
    cur_api_ = static_cast<std::uint32_t>(id);
    cur_api_name_ = apiName(id);
    return cmd_enc_;
}

void
LakeLib::ring()
{
    ++doorbells_;
    auto &tr = obs::Tracer::global();
    if (tr.enabled())
        tr.instant(obs::Side::Kernel, "remote", "doorbell",
                   chan_.clock().now());
    doorbell_();
}

void
LakeLib::flush()
{
    if (batch_pending_ == 0)
        return;
    Nanos t0 = chan_.clock().now();
    std::size_t count = batch_pending_;
    std::size_t bytes = batch_enc_.size();
    // Patch the count placeholder (bytes [4, 8), after the magic),
    // ship the whole batch as one message, and ring one doorbell for
    // all of it — the coalescing that amortizes the §6 crossing cost.
    batch_enc_.patchU32(4, static_cast<std::uint32_t>(batch_pending_));
    chan_.send(channel::Channel::Dir::KernelToUser, batch_enc_.data(),
               batch_enc_.size());
    ++batches_flushed_;
    batch_pending_ = 0;
    batch_enc_.reset();
    ring();
    auto &tr = obs::Tracer::global();
    if (tr.enabled())
        tr.span(obs::Side::Kernel, "remote", "batch.flush", t0,
                chan_.clock().now() - t0, obs::kNoId, "commands", count,
                "bytes", bytes);
}

void
LakeLib::post()
{
    // One-way command: failures surface at the next synchronizing call
    // (CUDA's asynchronous-error contract), so no response is awaited —
    // the caller only pays the send-side cost.
    ++calls_;
    if (!pipeline_.enabled) {
        Nanos t0 = chan_.clock().now();
        std::uint32_t seq = seqOf(cmd_enc_);
        chan_.send(channel::Channel::Dir::KernelToUser, cmd_enc_.data(),
                   cmd_enc_.size());
        ring();
        Nanos dur = chan_.clock().now() - t0;
        auto &tr = obs::Tracer::global();
        if (tr.enabled())
            tr.span(obs::Side::Kernel, "remote", cur_api_name_, t0, dur,
                    seq, "api", cur_api_, "oneway", 1);
        auto &m = obs::Metrics::global();
        if (m.enabled())
            m.stage(obs::Stage::Send).record(cur_api_, cur_api_name_, dur);
        return;
    }
    // Pipelined: append a length-prefixed frame to the pending batch;
    // the doorbell waits for a flush point.
    if (batch_pending_ == 0) {
        batch_enc_.reset();
        batch_enc_.u32(kBatchMagic).u32(0); // count patched at flush
    }
    batch_enc_.u32(static_cast<std::uint32_t>(cmd_enc_.size()));
    batch_enc_.raw(cmd_enc_.data(), cmd_enc_.size());
    ++batch_pending_;
    ++commands_batched_;
    auto &tr = obs::Tracer::global();
    if (tr.enabled())
        tr.instant(obs::Side::Kernel, "remote", "batch.queue",
                   chan_.clock().now(), seqOf(cmd_enc_), "api", cur_api_,
                   "pending", batch_pending_);
    if (batch_pending_ >= pipeline_.max_batch)
        flush();
}

Result<std::vector<std::uint8_t>>
LakeLib::attempt(std::uint32_t seq)
{
    using Dir = channel::Channel::Dir;
    ++calls_;
    // The scratch command stays intact across the drain loop, so a
    // retry can resend it (with a restamped seq) without a copy.
    Nanos send_t0 = chan_.clock().now();
    chan_.send(Dir::KernelToUser, cmd_enc_.data(), cmd_enc_.size());
    ring();
    {
        auto &m = obs::Metrics::global();
        if (m.enabled())
            m.stage(obs::Stage::Send)
                .record(cur_api_, cur_api_name_,
                        chan_.clock().now() - send_t0);
    }

    // Drain until our echo appears: under faults the queue may hold
    // duplicates or responses whose matching command attempt timed out.
    while (true) {
        std::optional<std::vector<std::uint8_t>> resp =
            chan_.tryRecv(Dir::UserToKernel);
        if (!resp) {
            // Nothing will ever arrive — the command or its response
            // was lost. Model the caller blocking out its deadline.
            chan_.clock().advance(responseTimeout(cmd_enc_.size()));
            auto &tr = obs::Tracer::global();
            if (tr.enabled())
                tr.instant(obs::Side::Kernel, "remote", "rpc.timeout",
                           chan_.clock().now(), seq, "api", cur_api_);
            return Result<std::vector<std::uint8_t>>(
                Status(Code::Unavailable,
                       detail::format("rpc seq %u: response timeout",
                                      seq)));
        }
        if (resp->size() < 4) {
            // Too short to carry an echo: corrupt, discard.
            chan_.recycle(std::move(*resp));
            continue;
        }
        std::uint32_t echo = 0;
        std::memcpy(&echo, resp->data(), sizeof(echo));
        if (echo == seq)
            return Result<std::vector<std::uint8_t>>(std::move(*resp));
        // Stale or corrupted-seq response: discard and keep draining.
        chan_.recycle(std::move(*resp));
    }
}

Result<std::vector<std::uint8_t>>
LakeLib::rpc(bool idempotent)
{
    // Queued one-way commands must execute before this call: flushing
    // here preserves submission order and lets the flush share the
    // two-way call's daemon wakeup window.
    flush();

    std::uint32_t attempts =
        idempotent ? std::max<std::uint32_t>(1, retry_.max_attempts) : 1;
    Nanos backoff = retry_.backoff;
    Nanos rpc_t0 = chan_.clock().now();

    auto observeRpc = [&](std::uint32_t seq, std::uint32_t attempt_count,
                          bool ok) {
        Nanos dur = chan_.clock().now() - rpc_t0;
        auto &tr = obs::Tracer::global();
        if (tr.enabled())
            tr.span(obs::Side::Kernel, "remote", cur_api_name_, rpc_t0,
                    dur, seq, "api", cur_api_,
                    ok ? "attempts" : "failed_attempts", attempt_count);
        auto &m = obs::Metrics::global();
        if (m.enabled())
            m.stage(obs::Stage::Rpc).record(cur_api_, cur_api_name_, dur);
    };

    Status last;
    std::uint32_t a = 0;
    for (; a < attempts; ++a) {
        if (a > 0) {
            ++retries_;
            auto &tr = obs::Tracer::global();
            if (tr.enabled())
                tr.instant(obs::Side::Kernel, "remote", "rpc.retry",
                           chan_.clock().now(), seqOf(cmd_enc_), "api",
                           cur_api_, "attempt", a + 1);
            // Back off in virtual time, and stamp a fresh seq so a
            // late response to a previous attempt can never satisfy
            // this one.
            chan_.clock().advance(backoff);
            backoff = static_cast<Nanos>(static_cast<double>(backoff) *
                                         retry_.multiplier);
            cmd_enc_.patchU32(4, next_seq_++);
        }
        std::uint32_t seq = seqOf(cmd_enc_);
        Result<std::vector<std::uint8_t>> r = attempt(seq);
        if (r.isOk()) {
            // Success is reported by the caller once the response body
            // also decodes; a seq-valid but garbled payload must count
            // as a transport failure, not a success.
            observeRpc(seq, a + 1, true);
            return r;
        }
        ++faults_seen_;
        last = r.status();
    }
    observeRpc(seqOf(cmd_enc_), a, false);
    observe(last);
    return Result<std::vector<std::uint8_t>>(std::move(last));
}

gpu::CuResult
LakeLib::statusRpc(bool idempotent)
{
    Result<std::vector<std::uint8_t>> r = rpc(idempotent);
    if (!r.isOk())
        return CuResult::Unavailable;
    std::vector<std::uint8_t> resp = r.takeValue();
    Decoder dec(resp);
    dec.u32(); // seq echo
    std::uint32_t code = dec.u32();
    bool ok = dec.ok();
    chan_.recycle(std::move(resp));
    if (!ok)
        return garbled("rpc: truncated status response");
    observe(Status::ok());
    return toCuResult(code);
}

CuResult
LakeLib::cuMemAlloc(DevicePtr *out, std::size_t bytes)
{
    if (out == nullptr)
        return CuResult::InvalidValue;
    begin(ApiId::CuMemAlloc).u64(bytes);
    // Not idempotent: a lost response would leak the daemon-side block.
    auto r = rpc(/*idempotent=*/false);
    if (!r.isOk())
        return CuResult::Unavailable;
    std::vector<std::uint8_t> resp = r.takeValue();
    Decoder dec(resp);
    dec.u32(); // seq
    CuResult res = toCuResult(dec.u32());
    DevicePtr ptr = dec.u64();
    bool ok = dec.ok();
    chan_.recycle(std::move(resp));
    if (!ok)
        return garbled("cuMemAlloc: garbled response");
    observe(Status::ok());
    *out = ptr;
    return res;
}

CuResult
LakeLib::cuMemFree(DevicePtr ptr)
{
    if (pipeline_.enabled && pipeline_.defer_frees) {
        // Deferred free: rides the pending batch as a one-way command;
        // an unknown-pointer failure surfaces at the next sync.
        begin(ApiId::CuMemFreeAsync).u64(ptr);
        post();
        return CuResult::Success;
    }
    begin(ApiId::CuMemFree).u64(ptr);
    // Not idempotent: the block may have been re-handed-out meanwhile.
    return statusRpc(/*idempotent=*/false);
}

CuResult
LakeLib::cuMemcpyHtoD(DevicePtr dst, const void *src, std::size_t bytes)
{
    if (src == nullptr)
        return CuResult::InvalidValue;
    // Marshalled: the payload is copied into the command and again out
    // of it in lakeD — the double buffering §3 calls out.
    bytes_marshalled_ += bytes;
    begin(ApiId::CuMemcpyHtoD).u64(dst).bytes(src, bytes);
    return statusRpc(/*idempotent=*/true);
}

CuResult
LakeLib::cuMemcpyDtoH(void *dst, DevicePtr src, std::size_t bytes)
{
    if (dst == nullptr)
        return CuResult::InvalidValue;
    bytes_marshalled_ += bytes;
    begin(ApiId::CuMemcpyDtoH).u64(src).u64(bytes);
    auto r = rpc(/*idempotent=*/true);
    if (!r.isOk())
        return CuResult::Unavailable;
    std::vector<std::uint8_t> resp = r.takeValue();
    Decoder dec(resp);
    dec.u32(); // seq
    CuResult res = toCuResult(dec.u32());
    std::size_t n = 0;
    const std::uint8_t *data = dec.bytes(&n);
    if (res == CuResult::Success) {
        if (!dec.ok() || n != bytes || data == nullptr) {
            chan_.recycle(std::move(resp));
            return garbled("cuMemcpyDtoH: garbled payload");
        }
        std::memcpy(dst, data, n);
    }
    chan_.recycle(std::move(resp));
    observe(Status::ok());
    return res;
}

CuResult
LakeLib::cuMemcpyHtoDShm(DevicePtr dst, shm::ShmOffset src,
                         std::size_t bytes)
{
    begin(ApiId::CuMemcpyHtoDShm).u64(dst).u64(src).u64(bytes).u32(0);
    return statusRpc(/*idempotent=*/true);
}

CuResult
LakeLib::cuMemcpyDtoHShm(shm::ShmOffset dst, DevicePtr src,
                         std::size_t bytes)
{
    begin(ApiId::CuMemcpyDtoHShm).u64(src).u64(dst).u64(bytes).u32(0);
    return statusRpc(/*idempotent=*/true);
}

CuResult
LakeLib::cuMemcpyHtoDShmAsync(DevicePtr dst, shm::ShmOffset src,
                              std::size_t bytes, std::uint32_t stream)
{
    begin(ApiId::CuMemcpyHtoDShmAsync)
        .u64(dst)
        .u64(src)
        .u64(bytes)
        .u32(stream);
    post();
    return CuResult::Success;
}

CuResult
LakeLib::cuMemcpyDtoHShmAsync(shm::ShmOffset dst, DevicePtr src,
                              std::size_t bytes, std::uint32_t stream)
{
    begin(ApiId::CuMemcpyDtoHShmAsync)
        .u64(src)
        .u64(dst)
        .u64(bytes)
        .u32(stream);
    post();
    return CuResult::Success;
}

CuResult
LakeLib::cuLaunchKernel(const gpu::LaunchConfig &cfg, std::uint32_t stream)
{
    Encoder &cmd = begin(ApiId::CuLaunchKernel);
    cmd.str(cfg.kernel);
    cmd.u32(cfg.grid_x).u32(cfg.block_x);
    cmd.u32(static_cast<std::uint32_t>(cfg.args.size()));
    for (std::uint64_t a : cfg.args)
        cmd.u64(a);
    cmd.u32(stream);
    post();
    return CuResult::Success;
}

CuResult
LakeLib::cuStreamSynchronize(std::uint32_t stream)
{
    begin(ApiId::CuStreamSynchronize).u32(stream);
    // Not idempotent: the sync drains the deferred-error slot, so a
    // retried sync could silently swallow an async failure report.
    return statusRpc(/*idempotent=*/false);
}

CuResult
LakeLib::cuCtxSynchronize()
{
    begin(ApiId::CuCtxSynchronize);
    return statusRpc(/*idempotent=*/false);
}

CuResult
LakeLib::cuSetDevice(std::uint32_t device)
{
    begin(ApiId::CuSetDevice).u32(device);
    // Idempotent: re-selecting the same device is a no-op on the
    // daemon, so a duplicated retry cannot corrupt state.
    return statusRpc(/*idempotent=*/true);
}

CuResult
LakeLib::nvmlGetUtilization(RemoteUtilization *out)
{
    if (out == nullptr)
        return CuResult::InvalidValue;
    begin(ApiId::NvmlGetUtilization);
    auto r = rpc(/*idempotent=*/true);
    if (!r.isOk())
        return CuResult::Unavailable;
    std::vector<std::uint8_t> resp = r.takeValue();
    Decoder dec(resp);
    dec.u32(); // seq
    CuResult res = toCuResult(dec.u32());
    float gpu_util = dec.f32();
    float mem_util = dec.f32();
    bool ok = dec.ok();
    chan_.recycle(std::move(resp));
    if (!ok)
        return garbled("nvmlGetUtilization: garbled response");
    observe(Status::ok());
    out->gpu = gpu_util;
    out->memory = mem_util;
    return res;
}

Result<std::vector<std::uint8_t>>
LakeLib::highLevelCall(const std::string &name,
                       const std::vector<std::uint8_t> &args,
                       bool idempotent)
{
    Encoder &cmd = begin(ApiId::HighLevelCall);
    cmd.str(name);
    // Args ride verbatim after the name; the handler owns their format.
    cmd.raw(args.data(), args.size());

    auto rpc_result = rpc(idempotent);
    if (!rpc_result.isOk())
        return rpc_result; // transport error, already a Status
    std::vector<std::uint8_t> resp = rpc_result.takeValue();
    Decoder dec(resp);
    dec.u32(); // seq
    std::uint32_t code = dec.u32();
    if (!dec.ok()) {
        chan_.recycle(std::move(resp));
        Status s(Code::Unavailable, std::string("high-level API '") +
                                        name + "': truncated response");
        ++faults_seen_;
        observe(s);
        return Result<std::vector<std::uint8_t>>(std::move(s));
    }
    observe(Status::ok());
    CuResult r = toCuResult(code);
    if (r != CuResult::Success) {
        chan_.recycle(std::move(resp));
        Code c = r == CuResult::Unavailable ? Code::Unavailable
                                            : Code::NotFound;
        return Result<std::vector<std::uint8_t>>(
            Status(c, std::string("high-level API '") + name +
                          "' failed: " + cuResultName(r)));
    }
    // Hand back the remainder of the response after seq + status.
    std::vector<std::uint8_t> payload(resp.begin() + 8, resp.end());
    chan_.recycle(std::move(resp));
    return Result<std::vector<std::uint8_t>>(std::move(payload));
}

void
LakeLib::publishMetrics() const
{
    obs::Metrics &m = obs::Metrics::global();
    m.counter("remote.calls").set(calls_);
    m.counter("remote.bytes_marshalled").set(bytes_marshalled_);
    m.counter("remote.faults_seen").set(faults_seen_);
    m.counter("remote.retries").set(retries_);
    m.counter("remote.doorbells").set(doorbells_);
    m.counter("remote.batches_flushed").set(batches_flushed_);
    m.counter("remote.commands_batched").set(commands_batched_);
}

} // namespace lake::remote
